let () =
  Alcotest.run "dpsyn"
    [
      ("tech", Test_tech.suite);
      ("expr", Test_expr.suite);
      ("netlist", Test_netlist.suite);
      ("matrix", Test_matrix.suite);
      ("core", Test_core.suite);
      ("counters", Test_counters.suite);
      ("timing", Test_timing.suite);
      ("power", Test_power.suite);
      ("sim", Test_sim.suite);
      ("adders", Test_adders.suite);
      ("baselines", Test_baselines.suite);
      ("flow", Test_flow.suite);
      ("signed", Test_signed.suite);
      ("booth", Test_booth.suite);
      ("multi", Test_multi.suite);
      ("event_sim", Test_event_sim.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("pipeline", Test_pipeline.suite);
      ("misc", Test_misc.suite);
      ("verify", Test_verify.suite);
      ("fuzz", Test_fuzz.suite);
      ("properties", Test_props.suite);
      ("perf", Test_perf.suite);
      ("properties2", Test_props2.suite);
      ("cache", Test_cache.suite);
      ("gov", Test_gov.suite);
      ("server", Test_server.suite);
      ("journal", Test_journal.suite);
    ]
