open Dp_netlist
open Dp_bitmatrix
open Dp_expr
open Helpers

(* ------------------------------------------------------------------ *)
(* Matrix data structure *)

let test_matrix_basic () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:3 in
  let m = Matrix.create () in
  Matrix.add m ~weight:0 bits.(0);
  Matrix.add m ~weight:0 bits.(1);
  Matrix.add m ~weight:2 bits.(2);
  checki "width" 3 (Matrix.width m);
  checki "height" 2 (Matrix.height m);
  checki "total" 3 (Matrix.total_addends m);
  checki "col0" 2 (List.length (Matrix.column m 0));
  checki "col1" 0 (List.length (Matrix.column m 1));
  checkb "not reduced with 3 in col" true (Matrix.is_reduced m)

let test_matrix_truncation () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:2 in
  let m = Matrix.create ~max_width:4 () in
  Matrix.add m ~weight:3 bits.(0);
  Matrix.add m ~weight:4 bits.(1);
  (* dropped *)
  checki "width capped" 4 (Matrix.width m);
  checki "only one addend" 1 (Matrix.total_addends m)

let test_matrix_growth () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:1 in
  let m = Matrix.create () in
  Matrix.add m ~weight:40 bits.(0);
  checki "width 41" 41 (Matrix.width m)

let test_matrix_operand_rows () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:4 in
  let m = Matrix.create () in
  Matrix.add m ~weight:0 bits.(0);
  Matrix.add m ~weight:0 bits.(1);
  Matrix.add m ~weight:1 bits.(2);
  let a, b = Matrix.operand_rows m in
  checkb "a0" true (a.(0) = Some bits.(0));
  checkb "b0" true (b.(0) = Some bits.(1));
  checkb "a1" true (a.(1) = Some bits.(2));
  checkb "b1 empty" true (b.(1) = None)

let test_matrix_operand_rows_rejects_tall () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:3 in
  let m = Matrix.create () in
  Array.iter (fun b -> Matrix.add m ~weight:0 b) bits;
  Alcotest.check_raises "3 addends"
    (Invalid_argument "Matrix.operand_rows: matrix is not reduced") (fun () ->
      ignore (Matrix.operand_rows m))

let test_matrix_negative_weight () =
  let m = Matrix.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Matrix.add: negative weight")
    (fun () -> Matrix.add m ~weight:(-1) 0)

(* ------------------------------------------------------------------ *)
(* Lowering: the matrix must denote the expression mod 2^W for every
   assignment. *)

let matrix_denotes ?config expr_s widths width () =
  let env = Env.of_widths widths in
  let expr = Parse.expr expr_s in
  let n = mk_netlist () in
  let m = Lower.lower ?config n env expr ~width in
  let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 widths in
  let trials = min (1 lsl total_bits) 256 in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to trials do
    let alist = List.map (fun (v, w) -> (v, Random.State.int rng (1 lsl w))) widths in
    let values = Dp_sim.Simulator.run n ~assign:(assign_of alist) in
    let expected = Eval.eval_mod ~width (assign_of alist) expr in
    let got = Matrix.value m values land Eval.mask width in
    if got <> expected then
      Alcotest.failf "matrix of %s: expected %d got %d under %s" expr_s expected
        got
        (String.concat "," (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) alist))
  done

let test_lower_add = matrix_denotes "x + y" [ ("x", 4); ("y", 4) ] 5
let test_lower_sub = matrix_denotes "x - y" [ ("x", 4); ("y", 4) ] 5
let test_lower_mul = matrix_denotes "x*y" [ ("x", 4); ("y", 4) ] 8
let test_lower_square = matrix_denotes "x^2" [ ("x", 3) ] 6
let test_lower_cube = matrix_denotes "x^3" [ ("x", 4) ] 12

let test_lower_mixed =
  matrix_denotes "x + y - z + x*y - y*z + 10" [ ("x", 3); ("y", 3); ("z", 3) ] 9

let test_lower_binomial =
  matrix_denotes "x^2 + 2*x*y + y^2 + 2*x + 2*y + 1" [ ("x", 3); ("y", 3) ] 8

let test_lower_negative_total = matrix_denotes "0 - x" [ ("x", 4) ] 6
let test_lower_const_only = matrix_denotes "42 - 7" [ ("x", 1) ] 6

let test_lower_truncated_narrow =
  (* output narrower than the natural width: modular wrap must hold *)
  matrix_denotes "x*y + 100" [ ("x", 4); ("y", 4) ] 4

let test_lower_binary_recoding =
  matrix_denotes
    ~config:{ Lower.default_config with Lower.recoding = Lower.Binary }
    "x + y - z + x*y - y*z + 10"
    [ ("x", 3); ("y", 3); ("z", 3) ]
    9

(* ------------------------------------------------------------------ *)
(* Lowering structure *)

let test_squarer_folding () =
  (* 3-bit x^2: supports {x0}, {x1}, {x2} (diagonal) and {x0x1}, {x0x2},
     {x1x2} (folded symmetric pairs) — exactly 6 addends, 3 AND gates. *)
  let env = Env.of_widths [ ("x", 3) ] in
  let n = mk_netlist () in
  let m = Lower.lower n env (Parse.expr "x^2") ~width:6 in
  checki "6 addends" 6 (Matrix.total_addends m);
  let ands =
    Netlist.fold_cells
      (fun acc (c : Netlist.cell) ->
        match c.kind with
        | Dp_tech.Cell_kind.And_n _ -> acc + 1
        | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha | Dp_tech.Cell_kind.C42
        | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63
        | Dp_tech.Cell_kind.C73 | Dp_tech.Cell_kind.Or_n _
        | Dp_tech.Cell_kind.Xor_n _ | Dp_tech.Cell_kind.Not
        | Dp_tech.Cell_kind.Buf -> acc)
      0 n
  in
  checki "3 AND gates" 3 ands

let test_constant_presummation () =
  (* 3 + 7 + 6 = 16: a single constant addend in column 4 *)
  let env = Env.of_widths [ ("x", 2) ] in
  let n = mk_netlist () in
  let m = Lower.lower n env (Parse.expr "x + 3 + 7 + 6") ~width:6 in
  let const_addends =
    List.concat_map
      (fun j ->
        List.filter (fun net -> Netlist.const_value n net <> None) (Matrix.column m j))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  checki "single constant addend" 1 (List.length const_addends);
  checki "in column 4" 1
    (List.length
       (List.filter (fun net -> Netlist.const_value n net <> None) (Matrix.column m 4)))

let test_csd_fewer_addends_than_binary () =
  let env = Env.of_widths [ ("x", 8) ] in
  let count recoding =
    let n = mk_netlist () in
    let config = { Lower.default_config with Lower.recoding } in
    let m = Lower.lower ~config n env (Parse.expr "255*x") ~width:16 in
    Matrix.total_addends m
  in
  let csd = count Lower.Csd in
  let binary = count Lower.Binary in
  checkb (Printf.sprintf "csd %d < binary %d" csd binary) true (csd < binary)

let test_partial_products_shared () =
  (* x*y + 2*x*y: the same AND gates serve both terms (coefficient 3 total,
     CSD = 4 - 1) *)
  let env = Env.of_widths [ ("x", 2); ("y", 2) ] in
  let n = mk_netlist () in
  ignore (Lower.lower n env (Parse.expr "x*y + 2*x*y") ~width:6);
  let ands =
    Netlist.fold_cells
      (fun acc (c : Netlist.cell) ->
        match c.kind with
        | Dp_tech.Cell_kind.And_n _ -> acc + 1
        | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha | Dp_tech.Cell_kind.C42
        | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63
        | Dp_tech.Cell_kind.C73 | Dp_tech.Cell_kind.Or_n _
        | Dp_tech.Cell_kind.Xor_n _ | Dp_tech.Cell_kind.Not
        | Dp_tech.Cell_kind.Buf -> acc)
      0 n
  in
  checki "4 AND gates (one per bit pair)" 4 ands

let test_lower_bad_width () =
  let env = Env.of_widths [ ("x", 2) ] in
  Alcotest.check_raises "width 0" (Invalid_argument "Lower.lower: width out of [1,62]")
    (fun () -> ignore (Lower.lower (mk_netlist ()) env (Parse.expr "x") ~width:0))

let test_lower_unbound_var () =
  Alcotest.check_raises "unbound"
    (Invalid_argument "Env.check_covers: x has no binding") (fun () ->
      ignore (Lower.lower (mk_netlist ()) Env.empty (Parse.expr "x") ~width:4))

let test_input_profile_carried () =
  let env =
    Env.add "x" ~width:2 ~arrival:[| 0.5; 1.5 |] ~prob:[| 0.1; 0.9 |] Env.empty
  in
  let n = mk_netlist () in
  let m = Lower.lower n env (Parse.expr "x") ~width:2 in
  let col0 = Matrix.column m 0 in
  checki "one addend" 1 (List.length col0);
  (match col0 with
  | [ net ] ->
    checkf "arrival" 0.5 (Netlist.arrival n net);
    checkf "prob" 0.1 (Netlist.prob n net)
  | _ -> Alcotest.fail "expected one addend");
  match Matrix.column m 1 with
  | [ net ] -> checkf "bit1 arrival" 1.5 (Netlist.arrival n net)
  | _ -> Alcotest.fail "expected one addend in column 1"

let suite =
  [
    case "matrix: add/column/height" test_matrix_basic;
    case "matrix: modular truncation" test_matrix_truncation;
    case "matrix: growth" test_matrix_growth;
    case "matrix: operand rows" test_matrix_operand_rows;
    case "matrix: operand rows reject unreduced" test_matrix_operand_rows_rejects_tall;
    case "matrix: negative weight rejected" test_matrix_negative_weight;
    case "lower: x + y" test_lower_add;
    case "lower: x - y (two's complement)" test_lower_sub;
    case "lower: x*y" test_lower_mul;
    case "lower: x^2" test_lower_square;
    case "lower: x^3" test_lower_cube;
    case "lower: mixed poly with subtractions" test_lower_mixed;
    case "lower: binomial square" test_lower_binomial;
    case "lower: pure negation" test_lower_negative_total;
    case "lower: constant expression" test_lower_const_only;
    case "lower: truncated output width" test_lower_truncated_narrow;
    case "lower: binary recoding variant" test_lower_binary_recoding;
    case "lower: squarer folding (x_i x_i = x_i)" test_squarer_folding;
    case "lower: constants pre-summed" test_constant_presummation;
    case "lower: CSD reduces addends vs binary" test_csd_fewer_addends_than_binary;
    case "lower: partial products shared across terms" test_partial_products_shared;
    case "lower: bad width rejected" test_lower_bad_width;
    case "lower: unbound variable rejected" test_lower_unbound_var;
    case "lower: input arrival/prob profiles carried" test_input_profile_carried;
  ]
