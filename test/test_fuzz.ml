(* The fuzzing subsystem's own tests: deterministic generation, bignum
   reference semantics, shrinker soundness, budget enforcement, corpus
   round-trips, fault-injection detection, and the replay harness that
   turns every file under test/corpus/ into a regression test. *)

open Helpers
module Fz = Dp_fuzz

(* A fast oracle config for tests: two strategies, one adder, few trials. *)
let quick_oracle =
  {
    Fz.Oracle.default_config with
    strategies = [ Dp_flow.Strategy.Fa_aot; Dp_flow.Strategy.Conventional ];
    adders = [ Dp_adders.Adder.Ripple ];
    trials = 8;
  }

(* ------------------------------------------------------------------ *)
(* Bigval: the independent reference must agree with native ints
   wherever natives are exact. *)

let bigval_matches_native () =
  let module B = Fz.Bigval in
  let vals = [ 0; 1; -1; 7; -13; 255; 1 lsl 20; -(1 lsl 20); 123456789 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checki (Printf.sprintf "%d+%d" a b) (a + b)
            (Option.get (B.to_int_opt (B.add (B.of_int a) (B.of_int b))));
          checki (Printf.sprintf "%d-%d" a b) (a - b)
            (Option.get (B.to_int_opt (B.sub (B.of_int a) (B.of_int b))));
          checki (Printf.sprintf "%d*%d" a b) (a * b)
            (Option.get (B.to_int_opt (B.mul (B.of_int a) (B.of_int b)))))
        vals;
      (* cubes only where they stay exact in a native int *)
      if abs a <= 1 lsl 20 then
        checki (Printf.sprintf "%d^3" a) (a * a * a)
          (Option.get (B.to_int_opt (B.pow (B.of_int a) 3)));
      check Alcotest.string (Printf.sprintf "to_string %d" a) (string_of_int a)
        (B.to_string (B.of_int a)))
    vals;
  (* two's-complement reduction matches the native mask semantics *)
  List.iter
    (fun a ->
      List.iter
        (fun w ->
          checki
            (Printf.sprintf "%d mod 2^%d" a w)
            (a land Dp_expr.Eval.mask w)
            (B.to_int_mod ~width:w (B.of_int a)))
        [ 1; 2; 7; 16; 62 ])
    vals

let bigval_grows_beyond_native () =
  let module B = Fz.Bigval in
  (* (2^40)^3 = 2^120 overflows a native int but must round-trip through
     the decimal printer and reduce correctly mod 2^62. *)
  let big = B.pow (B.of_int (1 lsl 40)) 3 in
  checkb "no longer fits an int" true (B.to_int_opt big = None);
  check Alcotest.string "2^120" "1329227995784915872903807060280344576"
    (B.to_string big);
  checki "2^120 mod 2^62" 0 (B.to_int_mod ~width:62 big)

(* ------------------------------------------------------------------ *)
(* Generator determinism *)

let generator_deterministic () =
  let stream seed =
    let rng = Random.State.make [| seed |] in
    List.init 60 (Fz.Gen.case rng)
  in
  let a = stream 7 and b = stream 7 and c = stream 8 in
  List.iteri
    (fun i (x, y) -> checkb (Printf.sprintf "case %d equal" i) true (Fz.Case.equal x y))
    (List.combine a b);
  checkb "different seeds differ somewhere" true
    (List.exists2 (fun x y -> not (Fz.Case.equal x y)) a c)

let generator_cases_well_formed () =
  let rng = Random.State.make [| 3 |] in
  for i = 0 to 99 do
    let case = Fz.Gen.case rng i in
    checkb "has a port" true (case.Fz.Case.ports <> []);
    List.iter
      (fun (_, _, w) ->
        checkb (Printf.sprintf "case %d width %d in [1,62]" i w) true
          (w >= 1 && w <= 62))
      case.Fz.Case.ports;
    (* every used variable is bound, so Case.env cannot raise *)
    ignore (Fz.Case.env case)
  done

(* ------------------------------------------------------------------ *)
(* Shrinker *)

(* Synthetic predicate: fails iff some port's expression contains a
   multiplication AND some variable is at least 4 bits wide.  The
   shrinker must preserve the code and reach a locally minimal case. *)
let shrink_synthetic () =
  let rec has_mul = function
    | Dp_expr.Ast.Mul _ -> true
    | Dp_expr.Ast.Var _ | Dp_expr.Ast.Const _ -> false
    | Dp_expr.Ast.Add (a, b) | Dp_expr.Ast.Sub (a, b) -> has_mul a || has_mul b
    | Dp_expr.Ast.Neg a -> has_mul a
    | Dp_expr.Ast.Pow (a, _) -> has_mul a
  in
  let test (c : Fz.Case.t) =
    if
      List.exists (fun (_, e, _) -> has_mul e) c.ports
      && List.exists (fun (v : Fz.Case.var_spec) -> v.width >= 4) c.vars
    then
      Some (Dp_diag.Diag.v ~code:"T-MUL" ~subsystem:"test" "mul with a wide var")
    else None
  in
  let vars =
    [
      Fz.Case.make_var "a" ~width:8 ~signed:true ~arrival:2.5 ~prob:0.9;
      Fz.Case.make_var "b" ~width:6;
      Fz.Case.make_var "c" ~width:1;
    ]
  in
  let expr = Dp_expr.Parse.expr "a*b + c*3 - (b + a)*(c + 2)" in
  let case = Fz.Case.single ~vars expr ~width:30 in
  let shrunk, diag = Fz.Shrink.minimize ~test case in
  check Alcotest.string "code preserved" "T-MUL" diag.Dp_diag.Diag.code;
  checkb "shrunk case still fails" true (test shrunk <> None);
  checkb "strictly smaller" true (Fz.Case.size shrunk < Fz.Case.size case);
  (* local minimality: a single Mul of one wide variable and a constant
     is the least structure satisfying the predicate (size analysis:
     1 var + Mul node + two leaves = 4). *)
  checkb "reached the minimal shape" true (Fz.Case.size shrunk <= 4)

let shrink_rejects_passing_case () =
  let case =
    Fz.Case.single ~vars:[ Fz.Case.make_var "x" ~width:4 ]
      (Dp_expr.Parse.expr "x + 1") ~width:5
  in
  checkb "invalid_arg on a passing case" true
    (match Fz.Shrink.minimize ~test:(fun _ -> None) case with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Budgets *)

let budget_static_rows () =
  (* x^3 * y^3 * x * y at 8 bits explodes the partial-product estimate *)
  let vars =
    [ Fz.Case.make_var "x" ~width:8; Fz.Case.make_var "y" ~width:8 ]
  in
  let case =
    Fz.Case.single ~vars (Dp_expr.Parse.expr "(x*y)^3 * x * y") ~width:62
  in
  (match Fz.Budget.check_static Fz.Budget.default case with
  | Ok () -> Alcotest.fail "expected DP-BUDGET003"
  | Error d -> check Alcotest.string "code" "DP-BUDGET003" d.Dp_diag.Diag.code);
  (* ... and the oracle reports it as Bounded, not as a failure *)
  (match Fz.Oracle.check ~config:quick_oracle case with
  | Fz.Oracle.Bounded d ->
    check Alcotest.string "bounded code" "DP-BUDGET003" d.Dp_diag.Diag.code
  | Fz.Oracle.Pass -> Alcotest.fail "expected Bounded, got Pass"
  | Fz.Oracle.Fail f ->
    Alcotest.failf "expected Bounded, got Fail %s" f.diag.Dp_diag.Diag.code);
  (* unlimited budget lets the same case through the static check *)
  checkb "unlimited passes" true
    (Fz.Budget.check_static Fz.Budget.unlimited case = Ok ())

let budget_timeout_fires () =
  let b = { Fz.Budget.default with timeout_s = 0.05 } in
  let t0 = Unix.gettimeofday () in
  (match
     Fz.Budget.with_timeout b (fun () ->
         let rec spin acc =
           if Unix.gettimeofday () -. t0 > 10.0 then acc
           else spin (acc + (acc mod 7))
         in
         Ok (spin 1))
   with
  | Ok _ -> Alcotest.fail "expected the 50ms budget to fire"
  | Error _ -> Alcotest.fail "expected an exception, got Error"
  | exception Dp_diag.Diag.E d ->
    check Alcotest.string "code" "DP-BUDGET001" d.Dp_diag.Diag.code);
  checkb "fired well before the 10s workload" true
    (Unix.gettimeofday () -. t0 < 5.0)

(* ------------------------------------------------------------------ *)
(* Oracle on known-good and known-bad inputs *)

let oracle_passes_clean_cases () =
  let rng = Random.State.make [| 11 |] in
  for i = 0 to 11 do
    let case = Fz.Gen.case rng i in
    match Fz.Oracle.check ~config:quick_oracle case with
    | Fz.Oracle.Pass | Fz.Oracle.Bounded _ -> ()
    | Fz.Oracle.Fail f ->
      Alcotest.failf "case %d: %s" i (Dp_diag.Diag.to_string f.diag)
  done

let oracle_catches_wrong_netlist () =
  (* Synthesize x+y but check it against x*y: the differential oracle
     must report a divergence. *)
  let vars =
    [ Fz.Case.make_var "x" ~width:4; Fz.Case.make_var "y" ~width:4 ]
  in
  let good = Fz.Case.single ~vars (Dp_expr.Parse.expr "x + y") ~width:5 in
  let claimed = Fz.Case.single ~vars (Dp_expr.Parse.expr "x * y") ~width:5 in
  let r =
    Dp_diag.Diag.get_ok
      (Dp_flow.Synth.run_res ~width:5 Dp_flow.Strategy.Fa_aot
         (Fz.Case.env good) (Dp_expr.Parse.expr "x + y"))
  in
  checkb "x+y netlist diverges from x*y" true
    (Fz.Oracle.diverges claimed ~port:"out" ~width:5 r.netlist);
  checkb "x+y netlist matches x+y" false
    (Fz.Oracle.diverges good ~port:"out" ~width:5 r.netlist)

(* ------------------------------------------------------------------ *)
(* Driver: a small end-to-end batch must be clean and deterministic *)

let driver_small_batch () =
  let config =
    {
      Fz.Driver.default_config with
      seed = 5;
      cases = 25;
      oracle = quick_oracle;
      inject_every = 4;
    }
  in
  let r1 = Fz.Driver.run config in
  let r2 = Fz.Driver.run config in
  checki "executed" 25 r1.executed;
  checkb "no findings" true (r1.findings = []);
  checkb "some faults were injected" true (r1.injected > 0);
  checkb "injected faults were caught" true (r1.injected_caught > 0);
  checki "deterministic: passed" r1.passed r2.passed;
  checki "deterministic: injected_caught" r1.injected_caught r2.injected_caught

(* ------------------------------------------------------------------ *)
(* Fault injection: the acceptance criterion — an intentionally injected
   fault is caught and shrunk to a corpus-format reproducer. *)

let injected_fault_shrinks_to_corpus_entry () =
  let vars =
    [ Fz.Case.make_var "x" ~width:6; Fz.Case.make_var "y" ~width:6 ]
  in
  let case =
    Fz.Case.single ~vars (Dp_expr.Parse.expr "x*y + 3*x - y + 7") ~width:13
  in
  (* Find a (mutation, seed) pair this netlist detects, as the fuzz loop
     does, then shrink while detection persists. *)
  let detected =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun mseed ->
            match
              Fz.Driver.fault_detected ~oracle:quick_oracle ~mutation:m ~mseed
                case
            with
            | `Caught_by_lint _ | `Caught_by_divergence _ -> Some (m, mseed)
            | `No_site | `Not_synthesizable _ | `Neutral _ | `Escaped _ -> None)
          [ 0; 1; 2 ])
      Dp_verify.Inject.all
  in
  checkb "at least one mutation is detected" true (detected <> []);
  let mutation, mseed = List.hd detected in
  match
    Fz.Driver.shrink_detected_fault ~oracle:quick_oracle ~mutation ~mseed case
  with
  | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  | Ok entry ->
    check Alcotest.string "entry records the detection code" "DP-FUZZ006"
      (Option.get entry.Fz.Corpus.diag_code);
    checkb "entry records the mutation" true
      (entry.Fz.Corpus.inject = Some (mutation, mseed));
    checkb "shrunk no bigger than the original" true
      (Fz.Case.size entry.Fz.Corpus.case <= Fz.Case.size case);
    (* the corpus round-trip preserves the entry... *)
    let text = Fz.Corpus.to_string entry in
    (match Fz.Corpus.of_string text with
    | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
    | Ok reloaded ->
      checkb "round-trips through the corpus format" true
        (Fz.Case.equal entry.Fz.Corpus.case reloaded.Fz.Corpus.case
        && reloaded.Fz.Corpus.inject = Some (mutation, mseed));
      (* ... and replaying it re-detects the fault *)
      (match Fz.Driver.replay ~oracle:quick_oracle reloaded with
      | Ok () -> ()
      | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)))

(* ------------------------------------------------------------------ *)
(* Corpus format *)

let corpus_round_trip () =
  let vars =
    [
      Fz.Case.make_var "x" ~width:5 ~signed:true ~arrival:1.25 ~prob:0.125;
      Fz.Case.make_var "y" ~width:1;
    ]
  in
  let case =
    {
      Fz.Case.vars;
      ports =
        [
          ("out0", Dp_expr.Parse.expr "x*y - 7", 9);
          ("out1", Dp_expr.Parse.expr "x + y + x*x", 11);
        ];
    }
  in
  let entry =
    Fz.Corpus.entry ~strategy:Dp_flow.Strategy.Dadda
      ~adder:Dp_adders.Adder.Kogge_stone ~diag_code:"DP-FUZZ001"
      ~comment:"round-trip fixture" case
  in
  match Fz.Corpus.of_string (Fz.Corpus.to_string entry) with
  | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  | Ok e ->
    checkb "case preserved" true (Fz.Case.equal case e.Fz.Corpus.case);
    checkb "strategy preserved" true
      (e.Fz.Corpus.strategy = Some Dp_flow.Strategy.Dadda);
    checkb "adder preserved" true
      (e.Fz.Corpus.adder = Some Dp_adders.Adder.Kogge_stone);
    check Alcotest.string "diag preserved" "DP-FUZZ001"
      (Option.get e.Fz.Corpus.diag_code);
    check Alcotest.string "comment preserved" "round-trip fixture"
      (Option.get e.Fz.Corpus.comment)

let corpus_rejects_malformed () =
  let expect_error text =
    match Fz.Corpus.of_string text with
    | Ok _ -> Alcotest.failf "accepted malformed corpus entry: %S" text
    | Error d -> check Alcotest.string "code" "DP-CORPUS001" d.Dp_diag.Diag.code
  in
  expect_error "";  (* no port *)
  expect_error "port out 5 = x + 1";  (* unbound variable *)
  expect_error "var x:4\nport out 99 = x";  (* width out of range *)
  expect_error "var x:4\nport out 5 = x\nfrobnicate 3"  (* unknown key *)

let corpus_save_is_deterministic () =
  let dir = Filename.temp_file "dp_corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let entry =
    Fz.Corpus.entry ~diag_code:"DP-FUZZ001"
      (Fz.Case.single ~vars:[ Fz.Case.make_var "x" ~width:3 ]
         (Dp_expr.Parse.expr "x*x") ~width:6)
  in
  let p1 = Fz.Corpus.save ~dir entry in
  let p2 = Fz.Corpus.save ~dir entry in
  check Alcotest.string "same content, same filename" p1 p2;
  (match Fz.Corpus.load_dir dir with
  | Ok [ (path, e) ] ->
    check Alcotest.string "path" p1 path;
    checkb "entry survives the disk round-trip" true
      (Fz.Case.equal entry.Fz.Corpus.case e.Fz.Corpus.case)
  | Ok l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)
  | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d));
  Sys.remove p1;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Replay the checked-in crash corpus: every file under test/corpus/ is
   a regression test. *)

let replay_checked_in_corpus () =
  match Fz.Driver.replay_dir "corpus" with
  | Ok n -> checkb "corpus is non-empty" true (n >= 3)
  | Error failures ->
    Alcotest.failf "%d corpus entries regressed; first: %s: %s"
      (List.length failures)
      (fst (List.hd failures))
      (Dp_diag.Diag.to_string (snd (List.hd failures)))

(* ------------------------------------------------------------------ *)
(* Synth.run_res hardening: exceptions become diagnostics (DP-INTERNAL
   is the catch-all; DP-ENV003 covers unbound variables on both entry
   points). *)

let run_res_never_leaks_exceptions () =
  let env = Dp_expr.Env.add_uniform "x" ~width:4 Dp_expr.Env.empty in
  (match
     Dp_flow.Synth.run_res Dp_flow.Strategy.Fa_aot env
       (Dp_expr.Parse.expr "x + nope")
   with
  | Ok _ -> Alcotest.fail "expected an error for an unbound variable"
  | Error d -> check Alcotest.string "env code" "DP-ENV003" d.Dp_diag.Diag.code);
  match
    Dp_flow.Synth.run_multi_res Dp_flow.Strategy.Fa_aot env
      [ { Dp_flow.Synth.name = "o"; expr = Dp_expr.Parse.expr "nope * 2"; width = 4 } ]
  with
  | Ok _ -> Alcotest.fail "expected an error for an unbound variable"
  | Error d ->
    check Alcotest.string "multi env code" "DP-ENV003" d.Dp_diag.Diag.code

let suite =
  [
    case "bigval matches native ints" bigval_matches_native;
    case "bigval grows beyond native ints" bigval_grows_beyond_native;
    case "generator is deterministic per seed" generator_deterministic;
    case "generated cases are well-formed" generator_cases_well_formed;
    case "shrinker preserves the diag code and minimizes" shrink_synthetic;
    case "shrinker rejects a passing case" shrink_rejects_passing_case;
    case "matrix-height budget trips as DP-BUDGET003" budget_static_rows;
    case "wall-clock budget trips as DP-BUDGET001" budget_timeout_fires;
    case "oracle passes clean generated cases" oracle_passes_clean_cases;
    case "oracle catches a wrong netlist" oracle_catches_wrong_netlist;
    case "driver runs a clean deterministic batch" driver_small_batch;
    case "injected fault is caught and shrunk to a reproducer"
      injected_fault_shrinks_to_corpus_entry;
    case "corpus entries round-trip" corpus_round_trip;
    case "corpus rejects malformed entries" corpus_rejects_malformed;
    case "corpus save is deterministic" corpus_save_is_deterministic;
    case "checked-in corpus replays clean" replay_checked_in_corpus;
    case "run_res returns diagnostics, not exceptions" run_res_never_leaks_exceptions;
  ]
