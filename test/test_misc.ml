(* Coverage for smaller corners: Dadda staging, column isolation at the
   column level, matrix dot diagrams, printers. *)

open Dp_netlist
open Dp_bitmatrix
open Helpers

let unit = Dp_tech.Tech.unit_delay

(* ------------------------------------------------------------------ *)
(* Dadda *)

let test_dadda_minimality_on_multiplier () =
  (* Dadda uses no more FAs/HAs than Wallace on the same 8x8 multiplier
     matrix (its defining property is minimal compression work) *)
  let env = Dp_expr.Env.of_widths [ ("x", 8); ("y", 8) ] in
  let expr = Dp_expr.Parse.expr "x*y" in
  let cells allocate =
    let n = mk_netlist () in
    let m = Lower.lower n env expr ~width:16 in
    allocate n m;
    let s = Stats.of_netlist n in
    s.fa_count + s.ha_count
  in
  let dadda = cells Dp_core.Dadda.allocate in
  let wallace = cells Dp_core.Wallace.allocate in
  checkb (Printf.sprintf "dadda %d <= wallace %d" dadda wallace) true
    (dadda <= wallace)

let test_dadda_single_column_tall () =
  (* 40 addends in one column must still reach two *)
  let n = mk_netlist ~tech:unit () in
  let bits = Netlist.add_input n "x" ~width:40 in
  let m = Matrix.create () in
  Array.iter (fun b -> Matrix.add m ~weight:0 b) bits;
  Dp_core.Dadda.allocate n m;
  checkb "reduced" true (Matrix.is_reduced m)

(* ------------------------------------------------------------------ *)
(* Column isolation at the column level *)

let test_column_isolation_prefers_inputs () =
  let n = mk_netlist ~tech:unit () in
  let col = mk_column n [| 1.0; 1.0; 1.0; 1.0; 1.0; 9.0 |] in
  (* 6 addends: the first FA consumes three original inputs even though
     its own sum (arriving later than 1.0) would be "original" to SC_T *)
  let kept, carries = Dp_core.Column_isolation.reduce_column n col in
  checki "kept" 2 (List.length kept);
  checki "carries" 2 (List.length carries);
  (* every FA input (cells 0 and 1) must be a primary input *)
  for cell_id = 0 to 1 do
    let c = Netlist.cell n cell_id in
    Array.iter
      (fun input ->
        match Netlist.driver n input with
        | Netlist.From_input _ -> ()
        | Netlist.From_const _ | Netlist.From_cell _ ->
          Alcotest.failf "cell %d consumed a non-input addend" cell_id)
      c.inputs
  done

(* ------------------------------------------------------------------ *)
(* Matrix dot diagram *)

let test_matrix_pp_dots () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:4 in
  let m = Matrix.create () in
  Matrix.add m ~weight:0 bits.(0);
  Matrix.add m ~weight:0 bits.(1);
  Matrix.add m ~weight:1 bits.(2);
  Matrix.add m ~weight:2 bits.(3);
  let s = Fmt.str "%a" Matrix.pp_dots m in
  (* 3 columns, 2 rows: "o o o" / ". . o" *)
  check (Alcotest.list Alcotest.string) "diagram" [ "o o o"; ". . o" ]
    (String.split_on_char '\n' s)

(* ------------------------------------------------------------------ *)
(* Printers *)

let test_stats_pp_mentions_key_numbers () =
  let d = Dp_designs.Catalog.x2 in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let s = Fmt.str "%a" Stats.pp r.stats in
  checkb "mentions area" true
    (Option.is_some (String.index_opt s 'F'));
  checkb "long enough" true (String.length s > 30)

let test_strategy_pp () =
  checkb "prints" true
    (String.equal (Fmt.str "%a" Dp_flow.Strategy.pp Dp_flow.Strategy.Fa_aot) "FA_AOT")

let test_design_pp () =
  let s = Fmt.str "%a" Dp_designs.Design.pp Dp_designs.Catalog.iir in
  checkb "mentions name" true (String.length s > 10)

let test_pipeline_pp () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:2 in
  let s, _ = Netlist.ha n bits.(0) bits.(1) in
  Netlist.set_output n "o" [| s |];
  let p = Dp_pipeline.Pipeline.plan n ~cycle_time:5.0 in
  let str = Fmt.str "%a" Dp_pipeline.Pipeline.pp p in
  checkb "mentions T" true (String.length str > 10)

(* ------------------------------------------------------------------ *)
(* Tie-break coverage *)

let test_sc_t_tie_break_prefers_high_q () =
  let n = mk_netlist ~tech:unit () in
  (* all arrivals equal: the combined rule must pick the three largest |q| *)
  let col =
    mk_column ~probs:[| 0.5; 0.1; 0.9; 0.45 |] n (Array.make 4 0.0)
  in
  let kept, _ =
    Dp_core.Sc_t.reduce_column ~tie_break:Dp_core.Sc_t.Prefer_high_q n col
  in
  (* the weakest |q| addend (p = 0.5) must survive *)
  checkb "p=0.5 survives" true
    (List.exists (fun net -> Float.abs (Netlist.prob n net -. 0.5) < 1e-9) kept)

let test_sc_lp_tie_break_prefers_early () =
  let n = mk_netlist ~tech:unit () in
  (* all |q| exactly equal: the combined rule must pick the three earliest
     (note 0.3 and 0.7 are NOT exactly symmetric around 0.5 in floats) *)
  let col =
    Netlist.add_input n "c" ~width:4
      ~prob:[| 0.3; 0.3; 0.3; 0.3 |]
      ~arrival:[| 5.0; 1.0; 1.0; 1.0 |]
    |> Array.to_list
  in
  let kept, _ =
    Dp_core.Sc_lp.reduce_column ~tie_break:Dp_core.Sc_lp.Prefer_early n col
  in
  (* the latest addend must survive unconsumed *)
  checkb "t=5 survives" true
    (List.exists (fun net -> Netlist.arrival n net = 5.0) kept)

(* The compare table must stay aligned when a strategy name (e.g. the
   *_GPC family) is longer than the header or any neighbour: every
   rendered line has the same length and the first column is as wide as
   the longest name. *)
let test_report_table_aligns_long_names () =
  let rows =
    List.map
      (fun s ->
        [ Dp_flow.Strategy.name s; "9.99 ns"; "123"; "4"; "5"; "6.789" ])
      Dp_flow.Strategy.all
  in
  let rows = [ "a"; "1"; "2"; "3"; "4"; "5" ] :: rows in
  let rendered =
    Dp_flow.Report.table
      ~header:[ "strategy"; "delay"; "area"; "FA"; "HA"; "E(tree)" ]
      ~rows
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered)
  in
  let widths = List.map String.length lines in
  checkb "all lines equal length" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  let longest =
    List.fold_left
      (fun acc s -> max acc (String.length (Dp_flow.Strategy.name s)))
      (String.length "strategy")
      Dp_flow.Strategy.all
  in
  List.iter
    (fun line ->
      checkb "second column starts after the longest name" true
        (String.length line > longest + 2
        && String.sub line longest 2 = "  "
           || String.length (String.trim line) = 0))
    lines

let suite =
  [
    case "report table aligns long strategy names"
      test_report_table_aligns_long_names;
    case "dadda: no more compressors than wallace" test_dadda_minimality_on_multiplier;
    case "dadda: 40-addend column" test_dadda_single_column_tall;
    case "column isolation prefers input addends" test_column_isolation_prefers_inputs;
    case "matrix dot diagram" test_matrix_pp_dots;
    case "stats printer" test_stats_pp_mentions_key_numbers;
    case "strategy printer" test_strategy_pp;
    case "design printer" test_design_pp;
    case "pipeline printer" test_pipeline_pp;
    case "SC_T combined tie-break" test_sc_t_tie_break_prefers_high_q;
    case "SC_LP combined tie-break" test_sc_lp_tie_break_prefers_early;
  ]
