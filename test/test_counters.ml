open Dp_netlist
open Dp_core
open Dp_counters
open Helpers

let kind_name = Dp_tech.Cell_kind.name

(* ------------------------------------------------------------------ *)
(* Arithmetic spec: the defining popcount invariant *)

let test_spec_popcount_invariant () =
  List.iter
    (fun k ->
      let m = Spec.arity k in
      for v = 0 to (1 lsl m) - 1 do
        checki
          (Fmt.str "%s weighted value on %d" (kind_name k) v)
          (Spec.popcount v) (Spec.weighted_value k v)
      done)
    Spec.kinds

(* ------------------------------------------------------------------ *)
(* Exact synthesis: every body matches the spec on all 2^m assignments *)

let test_body_exhaustive () =
  List.iter
    (fun k ->
      let r = Exact.recipe k in
      let m = Spec.arity k in
      for v = 0 to (1 lsl m) - 1 do
        for port = 0 to 2 do
          checkb
            (Fmt.str "%s port %d on %d" (kind_name k) port v)
            (Spec.port_value k ~port v)
            (Body.port_value r ~port v)
        done
      done)
    Spec.kinds

(* The search is deterministic and the memo cache returns the same recipe
   as a from-scratch run — synthesis results cannot drift within or
   across processes. *)
let test_exact_deterministic () =
  List.iter
    (fun k ->
      let a = Exact.synthesize k in
      let b = Exact.synthesize k in
      checkb (Fmt.str "%s: repeat searches agree" (kind_name k)) true (a = b);
      checkb
        (Fmt.str "%s: memo cache agrees with fresh search" (kind_name k))
        true
        (Exact.recipe k = a))
    Spec.kinds

(* Known-minimal costs, locked as a regression: a search change that
   finds a bigger (or deeper) body must fail loudly. *)
let test_exact_costs () =
  List.iter
    (fun (k, fa, ha, depth) ->
      let r = Exact.recipe k in
      checki (Fmt.str "%s FA count" (kind_name k)) fa (Exact.fa_count r);
      checki (Fmt.str "%s HA count" (kind_name k)) ha (Exact.ha_count r);
      checki
        (Fmt.str "%s area units" (kind_name k))
        ((2 * fa) + ha)
        (Exact.area_units r);
      checki (Fmt.str "%s depth" (kind_name k)) depth (Exact.depth r))
    [
      (Dp_tech.Cell_kind.C42, 2, 0, 2);
      (Dp_tech.Cell_kind.C53, 2, 1, 3);
      (Dp_tech.Cell_kind.C63, 3, 1, 3);
      (Dp_tech.Cell_kind.C73, 4, 0, 3);
    ]

(* ------------------------------------------------------------------ *)
(* Monolithic cell vs expanded body: exhaustive netlist equivalence *)

let cell_builder = function
  | Dp_tech.Cell_kind.C53 -> Netlist.c53
  | Dp_tech.Cell_kind.C63 -> Netlist.c63
  | Dp_tech.Cell_kind.C73 -> Netlist.c73
  | Dp_tech.Cell_kind.C42 -> Netlist.c42
  | k -> Alcotest.failf "not a counter: %s" (kind_name k)

let test_cell_matches_expanded_body () =
  List.iter
    (fun k ->
      let m = Spec.arity k in
      let nl = mk_netlist () in
      let pins = Netlist.add_input nl "p" ~width:m in
      let s0, s1, s2 = (cell_builder k) nl pins in
      let b0, b1, b2 = Body.expand nl (Exact.recipe k) pins in
      Netlist.set_output nl "cell" [| s0; s1; s2 |];
      Netlist.set_output nl "body" [| b0; b1; b2 |];
      for v = 0 to (1 lsl m) - 1 do
        let values = Dp_sim.Simulator.run nl ~assign:(fun _ -> v) in
        checki
          (Fmt.str "%s cell = body on %d" (kind_name k) v)
          (Dp_sim.Simulator.output_value nl values "body")
          (Dp_sim.Simulator.output_value nl values "cell")
      done)
    Spec.kinds

(* ------------------------------------------------------------------ *)
(* Certification and the closed-form delay/energy models *)

let techs = [ Dp_tech.Tech.lcb_like; Dp_tech.Tech.unit_delay ]

let test_certify_passes () =
  List.iter
    (fun tech ->
      Certify.ensure tech;
      (* second call hits the per-technology memo *)
      Certify.ensure tech)
    techs

(* The technology's monolithic closed forms must equal the recipe-derived
   model on every (pin, port) pair, including path absence — this is the
   contract Certify enforces; assert it directly so a drift is pinned to
   the exact pin. *)
let test_closed_forms_match_model () =
  List.iter
    (fun tech ->
      List.iter
        (fun k ->
          let r = Exact.recipe k in
          for pin = 0 to Spec.arity k - 1 do
            for port = 0 to 2 do
              let label =
                Fmt.str "%s %s pin %d port %d" tech.Dp_tech.Tech.name
                  (kind_name k) pin port
              in
              match
                ( Dp_tech.Tech.pin_delay tech k ~pin ~port,
                  Model.pin_delay tech r ~pin ~port )
              with
              | None, None -> ()
              | Some a, Some b -> checkf label b a
              | Some _, None -> Alcotest.failf "%s: closed form invents a path" label
              | None, Some _ -> Alcotest.failf "%s: closed form misses a path" label
            done
          done)
        Spec.kinds)
    techs

(* ------------------------------------------------------------------ *)
(* GPC column reduction: heap and sort-per-step reference make identical
   decisions (same counters, same FA/HA order, same carries) *)

let cell_trace nl =
  let acc = ref [] in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      acc := (id, c.kind, Array.to_list c.inputs) :: !acc)
    nl;
  List.rev !acc

let run_column ?probs arrivals f =
  let nl = mk_netlist () in
  let col = mk_column ?probs nl arrivals in
  let kept, ones, twos = f nl col in
  (kept, ones, twos, cell_trace nl)

let check_identical label ?probs arrivals heap reference =
  let a = run_column ?probs arrivals heap in
  let b = run_column ?probs arrivals reference in
  checkb label true (a = b)

(* Eleven near-simultaneous bits (one 7:3 counter plus FA/HA fill) and
   two stragglers outside the SC_T cohort. *)
let spread_arrivals =
  [| 0.0; 0.1; 0.2; 0.3; 0.05; 0.15; 0.25; 0.35; 0.12; 0.18; 0.22; 2.0; 2.2 |]

let spread_probs =
  [| 0.5; 0.1; 0.9; 0.5; 0.3; 0.7; 0.5; 0.2; 0.8; 0.4; 0.6; 0.5; 0.5 |]

let test_gpc_heap_vs_reference_fixed () =
  List.iter
    (fun tb ->
      check_identical "sc_t_gpc column" ~probs:spread_probs spread_arrivals
        (fun nl col -> Gpc.reduce_column_t ~tie_break:tb nl col)
        (fun nl col -> Gpc.reduce_column_t_reference ~tie_break:tb nl col))
    [ Sc_t.Arrival_only; Sc_t.Prefer_high_q ];
  List.iter
    (fun tb ->
      check_identical "sc_lp_gpc column" ~probs:spread_probs spread_arrivals
        (fun nl col -> Gpc.reduce_column_lp ~tie_break:tb nl col)
        (fun nl col -> Gpc.reduce_column_lp_reference ~tie_break:tb nl col))
    [ Sc_lp.Q_only; Sc_lp.Prefer_early ]

let test_gpc_heap_vs_reference_random () =
  let rng = Random.State.make [| 0xC7 |] in
  for case = 0 to 39 do
    let n = 3 + Random.State.int rng 14 in
    let arrivals =
      Array.init n (fun _ -> Float.of_int (Random.State.int rng 12) /. 8.0)
    in
    let probs =
      Array.init n (fun _ ->
          Float.of_int (Random.State.int rng 101) /. 100.0)
    in
    List.iter
      (fun tb ->
        check_identical
          (Fmt.str "random column %d (t)" case)
          ~probs arrivals
          (fun nl col -> Gpc.reduce_column_t ~tie_break:tb nl col)
          (fun nl col -> Gpc.reduce_column_t_reference ~tie_break:tb nl col))
      [ Sc_t.Arrival_only; Sc_t.Prefer_high_q ];
    List.iter
      (fun tb ->
        check_identical
          (Fmt.str "random column %d (lp)" case)
          ~probs arrivals
          (fun nl col -> Gpc.reduce_column_lp ~tie_break:tb nl col)
          (fun nl col -> Gpc.reduce_column_lp_reference ~tie_break:tb nl col))
      [ Sc_lp.Q_only; Sc_lp.Prefer_early ]
  done

(* ------------------------------------------------------------------ *)
(* Whole-flow determinism: two runs of a counter strategy emit the same
   netlist bit for bit, and the tree really does contain counters *)

let env = Dp_expr.Env.of_widths [ ("x", 5); ("y", 4); ("z", 6) ]
let expr = Dp_expr.Parse.expr "x*y + y*z + z*x + 9"

let test_gpc_run_deterministic () =
  List.iter
    (fun strategy ->
      let a = Dp_flow.Synth.run strategy env expr in
      let b = Dp_flow.Synth.run strategy env expr in
      check Alcotest.string
        (Dp_flow.Strategy.name strategy ^ " deterministic")
        (Verilog.emit a.netlist) (Verilog.emit b.netlist);
      checkb
        (Dp_flow.Strategy.name strategy ^ " places counters")
        true
        ((Stats.of_netlist a.netlist).Stats.counter_count > 0))
    [
      Dp_flow.Strategy.Sc_t_gpc;
      Dp_flow.Strategy.Sc_lp_gpc;
      Dp_flow.Strategy.Dadda_gpc;
    ]

(* Every counter strategy is exhaustively equivalent to the source
   expression on a small design (all 2^9 assignments). *)
let small_env = Dp_expr.Env.of_widths [ ("a", 3); ("b", 3); ("c", 3) ]
let small_expr = Dp_expr.Parse.expr "a*b + b*c + c*a + 5"

let test_gpc_exhaustive_equivalence () =
  List.iter
    (fun strategy ->
      let r = Dp_flow.Synth.run strategy small_env small_expr in
      match
        Dp_sim.Equiv.check_exhaustive r.netlist small_expr ~output:"out"
          ~width:r.width
      with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "%s: %a"
          (Dp_flow.Strategy.name strategy)
          Dp_sim.Equiv.pp_mismatch m)
    [
      Dp_flow.Strategy.Sc_t_gpc;
      Dp_flow.Strategy.Sc_lp_gpc;
      Dp_flow.Strategy.Dadda_gpc;
    ]

let suite =
  [
    case "spec: weighted ports equal popcount" test_spec_popcount_invariant;
    case "exact: bodies match spec on all 2^m inputs" test_body_exhaustive;
    case "exact: search and memo cache deterministic" test_exact_deterministic;
    case "exact: minimal costs locked" test_exact_costs;
    case "cell: monolithic equals expanded body" test_cell_matches_expanded_body;
    case "certify: lcb_like and unit_delay pass" test_certify_passes;
    case "model: closed forms equal recipe model" test_closed_forms_match_model;
    case "gpc: heap equals reference (fixed column)"
      test_gpc_heap_vs_reference_fixed;
    case "gpc: heap equals reference (random columns)"
      test_gpc_heap_vs_reference_random;
    case "gpc: strategies deterministic and place counters"
      test_gpc_run_deterministic;
    case "gpc: exhaustive equivalence on a small design"
      test_gpc_exhaustive_equivalence;
  ]
