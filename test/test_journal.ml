(* The durability layer: the request journal (append-only checksummed
   WAL), router crash recovery and replay, hedged dispatch, network-level
   chaos, and the offline store fsck. *)

open Helpers
module S = Dp_server
module Json = Dp_server.Json
module P = Dp_server.Protocol
module J = Dp_server.Journal
module SP = Dp_server.Shard_pool
module R = Dp_server.Router
module C = Dp_cache

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpsyn-jtest-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  if Sys.file_exists path then Sys.remove path;
  path

let fresh_dir tag =
  let path = Filename.temp_file ("dpsyn-" ^ tag) "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let faild d = Alcotest.fail (Dp_diag.Diag.to_string d)

let rpc socket request =
  match S.Client.connect socket with
  | Error d -> faild d
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> S.Client.close c)
      (fun () ->
        match S.Client.rpc c request with Ok r -> r | Error d -> faild d)

let synth_json ?(expr = "x*y + z") ?(id = 1) () =
  Json.Obj
    [
      ("id", Json.Int id);
      ("op", Json.Str "synth");
      ("expr", Json.Str expr);
      ( "vars",
        Json.List
          (List.map
             (fun n -> Json.Obj [ ("name", Json.Str n); ("width", Json.Int 8) ])
             [ "x"; "y"; "z" ]) );
    ]

let get path j =
  List.fold_left
    (fun acc k -> Option.bind acc (Json.member k))
    (Some j) path

let get_bool path j = Option.bind (get path j) Json.to_bool

let params_xyz () =
  match
    P.synth_params
      ~vars:
        [
          P.var_spec "x" ~width:8;
          P.var_spec "y" ~width:8;
          P.var_spec "z" ~width:8;
        ]
      "x*y + z"
  with
  | Ok p -> p
  | Error d -> faild d

(* ------------------------------------------------------------------ *)
(* Journal: WAL semantics *)

let journal_records_and_recovers () =
  let dir = fresh_dir "journal" in
  let j = J.open_ ~dir () in
  let params = Json.Obj [ ("expr", Json.Str "x+y") ] in
  let s1 = J.admit j ~digest:"d1" ~params in
  let s2 = J.admit j ~digest:"d2" ~params in
  J.dispatch j ~seq:s1 ~shard:0;
  J.complete j ~seq:s1;
  J.complete j ~seq:s1 (* idempotent *);
  J.dispatch j ~seq:s2 ~shard:1;
  checki "two entries" 2 (List.length (J.entries j));
  checki "one incomplete" 1 (List.length (J.incomplete j));
  J.close j;
  let j2 = J.open_ ~dir () in
  (match J.recovered j2 with
  | [ e1; e2 ] ->
    checkb "seq order" true (e1.J.seq = s1 && e2.J.seq = s2);
    checkb "completed state survives" true (e1.J.state = J.Completed);
    checkb "dispatched state survives with its shard" true
      (e2.J.state = J.Dispatched && e2.J.shard = Some 1);
    check Alcotest.string "params ride the admitted record"
      (Json.to_string params)
      (Json.to_string e2.J.params)
  | other -> Alcotest.failf "expected two entries, got %d" (List.length other));
  checki "stats count the recovery" 2 (J.stats j2).J.recovered;
  J.close j2

let journal_truncates_torn_tail () =
  let dir = fresh_dir "torn" in
  let j = J.open_ ~dir () in
  let params = Json.Obj [] in
  ignore (J.admit j ~digest:"aa" ~params);
  J.close j;
  let path = Filename.concat dir "journal.log" in
  let good = (Unix.stat path).Unix.st_size in
  (* a crash mid-append: a partial record with no trailing newline *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "deadbeef torn mid-write";
  close_out oc;
  let j2 = J.open_ ~dir () in
  checki "the good prefix survives" 1 (List.length (J.recovered j2));
  checkb "torn bytes counted" true ((J.stats j2).J.torn_bytes > 0);
  checki "file truncated back to the good prefix" good
    (Unix.stat path).Unix.st_size;
  (* the handle keeps appending cleanly after the truncation *)
  ignore (J.admit j2 ~digest:"bb" ~params);
  J.close j2;
  let j3 = J.open_ ~dir () in
  checki "both records readable after the repair" 2
    (List.length (J.recovered j3));
  J.close j3

let journal_corrupt_record_stops_the_scan () =
  let dir = fresh_dir "flip" in
  let j = J.open_ ~dir () in
  ignore (J.admit j ~digest:"aa" ~params:(Json.Obj []));
  ignore (J.admit j ~digest:"bb" ~params:(Json.Obj []));
  J.close j;
  let path = Filename.concat dir "journal.log" in
  let raw = In_channel.with_open_bin path In_channel.input_all in
  (* flip a byte inside the second record's payload: its checksum no
     longer matches, so the scan must stop at the first record *)
  let first_nl = String.index raw '\n' in
  let bytes = Bytes.of_string raw in
  Bytes.set bytes (first_nl + 40) 'X';
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  let j2 = J.open_ ~dir () in
  checki "only the prefix before the bad checksum survives" 1
    (List.length (J.recovered j2));
  checkb "the corrupt suffix was counted" true ((J.stats j2).J.torn_bytes > 0);
  J.close j2

let journal_compaction_keeps_incomplete () =
  let dir = fresh_dir "compact" in
  let j = J.open_ ~dir () in
  let params = Json.Obj [] in
  let seqs =
    List.init 5 (fun i ->
        J.admit j ~digest:(Printf.sprintf "d%d" i) ~params)
  in
  List.iteri
    (fun i s ->
      J.dispatch j ~seq:s ~shard:0;
      if i < 3 then J.complete j ~seq:s)
    seqs;
  J.compact j;
  checki "compaction counted" 1 (J.stats j).J.compactions;
  checki "only incomplete entries survive in memory" 2
    (List.length (J.entries j));
  J.close j;
  let j2 = J.open_ ~dir () in
  let entries = J.recovered j2 in
  checki "replay-after-compaction sees only the incomplete" 2
    (List.length entries);
  checkb "their dispatched state was preserved" true
    (List.for_all (fun e -> e.J.state = J.Dispatched) entries);
  (* completing and compacting again leaves nothing to replay: a second
     recovery of the same log is idempotent *)
  List.iter (fun e -> J.complete j2 ~seq:e.J.seq) entries;
  J.compact j2;
  J.close j2;
  let j3 = J.open_ ~dir () in
  checki "nothing left to replay" 0 (List.length (J.recovered j3));
  J.close j3

(* ------------------------------------------------------------------ *)
(* Router recovery and hedging over a real forked fleet *)

let quick_sup =
  {
    S.Supervisor.max_crashes = 10;
    window_s = 5.0;
    cooldown_s = 0.4;
    backoff_base_s = 0.03;
    backoff_max_s = 0.1;
  }

let shard_spawn ~cache_dir =
  SP.Spawn_fork
    (fun ~id:_ ~socket_path ->
      let store = C.Store.create ~capacity:32 ~dir:cache_dir () in
      S.Server.run
        {
          (S.Server.default_config ~socket_path) with
          S.Server.store = Some store;
          workers = 1;
          log = ignore;
        })

let with_pool ?(shards = 2) ~cache_dir base f =
  let pool =
    SP.start
      {
        (SP.default_config ~shards
           ~socket_for:(fun i -> base ^ "." ^ string_of_int i)
           ~spawn:(shard_spawn ~cache_dir))
        with
        SP.health_period_s = 0.1;
        health_timeout_s = 0.5;
        health_failures = 3;
        startup_grace_s = 0.3;
        stable_s = 0.2;
        poll_period_s = 0.02;
        grace_s = 3.0;
        supervisor = quick_sup;
        log = ignore;
      }
  in
  Fun.protect
    ~finally:(fun () -> SP.shutdown pool)
    (fun () ->
      checkb "pool came up" true (SP.wait_all_up ~timeout_s:20.0 pool);
      f pool)

let router_replays_incomplete_entry () =
  let base = fresh_socket () in
  let cache_dir = fresh_dir "replay-cache" in
  let jdir = fresh_dir "replay-journal" in
  let p = params_xyz () in
  let digest =
    match P.digest_of_params ~tech:Dp_tech.Tech.lcb_like p with
    | Some d -> d
    | None -> Alcotest.fail "no digest for the test params"
  in
  (* a previous incarnation crashed between dispatch and completion *)
  let j0 = J.open_ ~dir:jdir () in
  let s = J.admit j0 ~digest ~params:(P.params_to_json p) in
  J.dispatch j0 ~seq:s ~shard:0;
  J.close j0;
  with_pool ~cache_dir base @@ fun pool ->
  let j = J.open_ ~dir:jdir () in
  let rt =
    R.start
      {
        (R.default_config ~socket_path:base ~pool) with
        R.forward_timeout_s = 10.0;
        log = ignore;
        journal = Some j;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      R.request_shutdown rt;
      R.wait rt)
    (fun () ->
      let replayed, redispatched = R.replay_counters rt in
      checki "the incomplete entry was replayed" 1 replayed;
      checki "it was re-dispatched to its home shard" 1 redispatched;
      (* the replay filled the shared store: a client asking for the same
         params is served the stored bytes, not a fresh synthesis *)
      let r = rpc base (synth_json ()) in
      checkb "ok" true (get_bool [ "ok" ] r = Some true);
      checkb "served from the store the replay filled" true
        (get_bool [ "cached" ] r = Some true));
  (* the replay completed and compacted the log: a second restart finds
     nothing incomplete to re-dispatch (double-replay idempotence) — the
     client request above left its own completed record behind, which a
     replay merely counts *)
  let j2 = J.open_ ~dir:jdir () in
  checki "second restart has nothing to re-dispatch" 0
    (List.length (J.incomplete j2));
  J.close j2

let hedge_covers_hung_home_shard () =
  let base = fresh_socket () in
  let cache_dir = fresh_dir "hedge-cache" in
  with_pool ~cache_dir base @@ fun pool ->
  let rt =
    R.start
      {
        (R.default_config ~socket_path:base ~pool) with
        R.forward_timeout_s = 3.0;
        log = ignore;
        hedge = Some { R.percentile = 0.5; min_delay_s = 0.01; max_delay_s = 0.05 };
      }
  in
  Fun.protect
    ~finally:(fun () ->
      R.request_shutdown rt;
      R.wait rt)
    (fun () ->
      (* warm the shared store through the healthy home shard *)
      let r1 = rpc base (synth_json ~id:1 ()) in
      checkb "warm request ok" true (get_bool [ "ok" ] r1 = Some true);
      let home = R.home_of rt (params_xyz ()) in
      checkb "stopped the home shard" true
        (SP.signal_shard pool home Sys.sigstop);
      (* the home shard holds its socket but answers nothing: only the
         hedge can answer inside the forward timeout *)
      let r2 = rpc base (synth_json ~id:2 ()) in
      checkb "answered despite the hung home shard" true
        (get_bool [ "ok" ] r2 = Some true);
      check Alcotest.string "hedge answer byte-identical to the home's"
        (Json.to_string (Option.get (get [ "result" ] r1)))
        (Json.to_string (Option.get (get [ "result" ] r2)));
      let fired, wins, diverges = R.hedge_counters rt in
      checkb "hedge fired" true (fired >= 1);
      checkb "the duplicate won" true (wins >= 1);
      checki "no divergence between shards" 0 diverges;
      ignore (SP.signal_shard pool home Sys.sigcont))

(* ------------------------------------------------------------------ *)
(* Chaos soaks: network faults; the journaled router-kill topology *)

let soak_net_chaos_holds_invariants () =
  let config =
    {
      (S.Soak.default_config ~socket_path:(fresh_socket ())) with
      S.Soak.clients = 3;
      requests_per_client = 10;
      seed = 13;
      workers = 2;
      chaos =
        Some
          {
            S.Chaos.seed = 13;
            every = 3;
            slow_s = 0.02;
            faults = S.Chaos.process_faults @ S.Chaos.net_faults;
          };
      cache_dir = Some (fresh_dir "net-cache");
    }
  in
  let report = S.Soak.run config in
  checki "all requests accounted for" 30 report.S.Soak.requests;
  checki "zero wrong answers" 0 report.S.Soak.wrong_answers;
  checki "zero protocol violations" 0 report.S.Soak.violations;
  checkb "soak passes" true (S.Soak.passed report);
  checkb "some requests succeeded" true (report.S.Soak.ok > 0)

let soak_journaled_router_kill_recovers () =
  (* scale the run until the pacer has landed a router kill —
     wall-clock-paced chaos cannot promise a count for a fixed load *)
  let rec attempt tries per_client =
    let config =
      {
        (S.Soak.default_config ~socket_path:(fresh_socket ())) with
        S.Soak.clients = 4;
        requests_per_client = per_client;
        seed = 17;
        workers = 1;
        shards = 2;
        journal_dir = Some (fresh_dir "soak-journal");
        (* every 4th pacer tick: enough kills to exercise recovery
           without a kill storm that starves the clients of any window
           to make progress (and the test of an upper time bound) *)
        router_chaos =
          Some
            {
              S.Chaos.default_config with
              seed = 17;
              every = 4;
              faults = S.Chaos.router_faults;
            };
        cache_dir = Some (fresh_dir "soak-journal-cache");
      }
    in
    let report = S.Soak.run config in
    checki "all requests accounted for" (4 * per_client)
      report.S.Soak.requests;
    checki "zero wrong answers" 0 report.S.Soak.wrong_answers;
    checki "zero protocol violations" 0 report.S.Soak.violations;
    checki "zero divergences" 0 report.S.Soak.diverges;
    checkb "soak passes" true (S.Soak.passed report);
    checkb "some requests succeeded" true (report.S.Soak.ok > 0);
    if report.S.Soak.router_kills >= 1 then report
    else if tries >= 3 then
      Alcotest.failf "router chaos landed %d kills after %d runs"
        report.S.Soak.router_kills tries
    else attempt (tries + 1) (per_client * 2)
  in
  let report = attempt 1 40 in
  checkb "the router came back" true (report.S.Soak.router_restarts >= 1);
  checkb "the new incarnation adopted the still-live shards" true
    (report.S.Soak.shard_reattaches >= 1)

(* ------------------------------------------------------------------ *)
(* Store fsck *)

let e = Dp_expr.Parse.expr

let env_xyz =
  Dp_expr.Env.empty
  |> Dp_expr.Env.add_uniform "x" ~width:8
  |> Dp_expr.Env.add_uniform "y" ~width:8
  |> Dp_expr.Env.add_uniform "z" ~width:8

let outcome ~store src =
  match C.Serve.run ~store (C.Serve.request env_xyz (e src)) with
  | Ok o -> o
  | Error d -> Alcotest.failf "%s: %s" src (Dp_diag.Diag.to_string d)

let fsck_finds_and_prunes () =
  let dir = fresh_dir "fsck" in
  let store = C.Store.create ~dir () in
  ignore (outcome ~store "x*y + z");
  ignore (outcome ~store "x + y");
  let dpcs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".dpc")
    |> List.sort compare
  in
  let a, b =
    match dpcs with
    | [ a; b ] -> (a, b)
    | other -> Alcotest.failf "expected two entries, got %d" (List.length other)
  in
  (* corrupt entry [a] in place: its checksum no longer matches *)
  let a_path = Filename.concat dir a in
  let raw = In_channel.with_open_bin a_path In_channel.input_all in
  let bytes = Bytes.of_string raw in
  Bytes.set bytes (Bytes.length bytes - 5)
    (if Bytes.get bytes (Bytes.length bytes - 5) = 'X' then 'Y' else 'X');
  Out_channel.with_open_bin a_path (fun oc -> Out_channel.output_bytes oc bytes);
  (* misfile a whole copy of [b] under the wrong digest *)
  let b_raw =
    In_channel.with_open_bin (Filename.concat dir b) In_channel.input_all
  in
  Out_channel.with_open_bin
    (Filename.concat dir (String.make 32 'f' ^ ".dpc"))
    (fun oc -> Out_channel.output_string oc b_raw);
  (* an orphaned staging file from a long-dead writer *)
  let tmp = Filename.concat dir (a ^ ".tmp.99999.0") in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc "junk");
  Unix.utimes tmp 1.0 1.0;
  (* a lock file whose entry no longer exists *)
  Out_channel.with_open_bin
    (Filename.concat dir (String.make 32 'e' ^ ".lock"))
    (fun _ -> ());
  let r = C.Store.fsck ~dir () in
  checki "scanned" 3 r.C.Store.scanned;
  checki "valid" 1 r.C.Store.valid;
  checki "corrupt" 1 r.C.Store.fsck_corrupt;
  checki "misfiled" 1 r.C.Store.misfiled;
  checki "orphaned tmp" 1 r.C.Store.orphaned_tmp;
  checki "stale lock" 1 r.C.Store.stale_locks;
  checki "nothing pruned without --prune" 0 r.C.Store.pruned;
  let r2 = C.Store.fsck ~prune:true ~dir () in
  checki "prune removes every finding" 4 r2.C.Store.pruned;
  let r3 = C.Store.fsck ~dir () in
  checki "clean after the prune: scanned" 1 r3.C.Store.scanned;
  checki "clean after the prune: valid" 1 r3.C.Store.valid;
  checki "no corrupt left" 0 r3.C.Store.fsck_corrupt;
  checki "no misfiled left" 0 r3.C.Store.misfiled;
  checki "no orphans left" 0 r3.C.Store.orphaned_tmp;
  checki "no stale locks left" 0 r3.C.Store.stale_locks;
  (* exactly one of the two requests still hits: the corrupted entry is
     gone, the valid one survived the prune (which of the two digests
     sorted first decided which file was corrupted) *)
  let store2 = C.Store.create ~dir () in
  let o1 = outcome ~store:store2 "x*y + z" in
  let o2 = outcome ~store:store2 "x + y" in
  checkb "exactly the surviving entry is a hit" true
    (o1.C.Serve.cached <> o2.C.Serve.cached)

(* ------------------------------------------------------------------ *)

let suite =
  [
    case "journal: records, transitions, recovery" journal_records_and_recovers;
    case "journal: torn tail is truncated, log stays usable"
      journal_truncates_torn_tail;
    case "journal: checksum mismatch stops the scan"
      journal_corrupt_record_stops_the_scan;
    case "journal: compaction keeps only incomplete; replay idempotent"
      journal_compaction_keeps_incomplete;
    case "router: replays a dispatched-but-incomplete entry on restart"
      router_replays_incomplete_entry;
    case "router: hedge covers a hung home shard, no divergence"
      hedge_covers_hung_home_shard;
    case "soak: network chaos holds the invariants"
      soak_net_chaos_holds_invariants;
    case "soak: journaled router SIGKILL recovers with replay + reattach"
      soak_journaled_router_kill_recovers;
    case "store: fsck finds corruption, misfiling, orphans; prune cleans"
      fsck_finds_and_prunes;
  ]
