open Dp_flow
open Dp_netlist
open Dp_verify
open Helpers

(* ------------------------------------------------------------------ *)
(* Positive matrix: the lint is silent on every netlist the flow builds *)

let env = Dp_expr.Env.of_widths [ ("x", 5); ("y", 4); ("z", 6) ]

let mixed_exprs =
  List.map Dp_expr.Parse.expr
    [ "x + y - z + x*y"; "x*y + 3*z + 7"; "x^2 - y*z + 5" ]

(* "Clean" = nothing at Warning+ severity.  Info-level dead-gate notes are
   expected of legitimate construction (dropped MSB carry-outs). *)
let assert_clean label netlist =
  match Lint.significant (Lint.run netlist) with
  | [] -> ()
  | f :: _ as fs ->
    Alcotest.failf "%s: %d lint findings, first: %a" label (List.length fs)
      Lint.pp_finding f

let test_lint_clean_every_strategy () =
  List.iter
    (fun expr ->
      List.iter
        (fun strategy ->
          let r = Synth.run strategy env expr in
          assert_clean
            (Fmt.str "%a under %s" Dp_expr.Ast.pp expr (Strategy.name strategy))
            r.netlist)
        Strategy.all)
    mixed_exprs

let test_lint_clean_every_adder () =
  List.iter
    (fun adder ->
      let r = Synth.run ~adder Strategy.Fa_aot env (List.hd mixed_exprs) in
      assert_clean (Dp_adders.Adder.name adder) r.netlist)
    Dp_adders.Adder.all

let test_lint_clean_multi_output () =
  let ports =
    List.map
      (fun (name, e) ->
        { Synth.name; expr = e; width = Dp_expr.Range.natural_width env e })
      (Dp_expr.Parse.program "t = x + y; u = t*z - y; v = t + 2")
  in
  List.iter
    (fun strategy ->
      let r = Synth.run_multi strategy env ports in
      assert_clean (Strategy.name strategy ^ " multi") r.netlist)
    Strategy.all

let test_strict_gate_passes_every_strategy () =
  List.iter
    (fun strategy ->
      List.iter
        (fun expr ->
          match
            Synth.run_res ~check_level:Lint.Strict strategy env expr
          with
          | Ok _ -> ()
          | Error d ->
            Alcotest.failf "%s rejected by strict gate: %a"
              (Strategy.name strategy) Dp_diag.Diag.pp d)
        mixed_exprs)
    Strategy.all

(* ------------------------------------------------------------------ *)
(* Negative: every injected fault class is caught by lint or equivalence *)

let victim_expr = Dp_expr.Parse.expr "x*y + z"
let fresh () = Synth.run Strategy.Fa_aot env victim_expr

(* Counter-cell faults need a victim whose reduction tree actually holds
   compressors: the 4:2 Dadda tree over a three-product sum is tall
   enough that every stage places C42 cells. *)
let counter_victim_expr = Dp_expr.Parse.expr "x*y + y*z + z*x"
let fresh_gpc () = Synth.run Strategy.Dadda_gpc env counter_victim_expr
let seeds = [ 0; 1; 2; 3; 4 ]

let has_rule rule findings = List.exists (fun f -> f.Lint.rule = rule) findings

let test_inject_detected_on (fresh : unit -> Synth.result) expr
    (m : Inject.mutation) () =
  List.iter
    (fun seed ->
      let r = fresh () in
      match Inject.apply ~seed r.netlist m with
      | None -> Alcotest.failf "%s: no applicable site" (Inject.name m)
      | Some descr -> (
        let errors = Lint.errors (Lint.run r.netlist) in
        match Inject.expected_rule m with
        | Some rule ->
          if not (has_rule rule errors) then
            Alcotest.failf "%s (%s): lint missed it; %d other errors"
              (Inject.name m) descr (List.length errors)
        | None -> (
          (* A semantic-only fault must leave the structure clean — the
             whole point is that only equivalence checking can see it. *)
          (match errors with
          | [] -> ()
          | f :: _ ->
            Alcotest.failf "%s (%s): unexpectedly structural: %a"
              (Inject.name m) descr Lint.pp_finding f);
          match Synth.verify ~trials:500 r expr with
          | Error _ -> ()
          | Ok () ->
            Alcotest.failf "%s (%s): equivalence check did not notice"
              (Inject.name m) descr)))
    seeds

let test_inject_detected = test_inject_detected_on fresh victim_expr

let test_inject_counter_detected =
  test_inject_detected_on fresh_gpc counter_victim_expr

let test_every_mutation_applicable () =
  List.iter
    (fun m ->
      let r =
        match m with
        | Inject.Counter_retype | Inject.Counter_chain -> fresh_gpc ()
        | _ -> fresh ()
      in
      match Inject.apply ~seed:11 r.netlist m with
      | Some _ -> ()
      | None -> Alcotest.failf "%s inapplicable" (Inject.name m))
    Inject.all

(* ------------------------------------------------------------------ *)
(* Targeted lint rules through the raw mutation API *)

let test_lint_flags_empty_outputs () =
  let nl = mk_netlist () in
  let a = Netlist.add_input nl "a" ~width:2 in
  Netlist.set_output nl "o" [||];
  ignore a;
  let fs = Lint.run nl in
  checkb "empty port" true (has_rule Lint.Empty_port fs);
  checkb "unreachable input-less netlist is otherwise fine" true
    (Lint.errors fs = [])

let test_lint_flags_bad_prob () =
  let r = fresh () in
  Netlist.Mutate.set_prob r.netlist 0 1.5;
  checkb "prob range" true (has_rule Lint.Prob_range (Lint.run r.netlist))

let test_lint_flags_cycle () =
  let nl = mk_netlist () in
  let a = Netlist.add_input nl "a" ~width:1 in
  (* buffers: the builder neither caches nor simplifies them away *)
  let b = Netlist.buf nl a.(0) in
  let c = Netlist.buf nl b in
  Netlist.set_output nl "o" [| c |];
  (* feed the first buffer from the second's output: a genuine loop *)
  Netlist.Mutate.set_cell_input nl ~cell:0 ~pin:0 c;
  let fs = Lint.run nl in
  checkb "cycle" true (has_rule Lint.Combinational_cycle fs);
  checkb "order violation too" true (has_rule Lint.Topo_violation fs)

let test_lint_flags_unreachable () =
  let nl = mk_netlist () in
  let a = Netlist.add_input nl "a" ~width:2 in
  let dead = Netlist.and_n nl [ a.(0); a.(1) ] in
  ignore dead;
  Netlist.set_output nl "o" [| a.(0) |];
  let fs = Lint.run nl in
  checkb "unreachable" true (has_rule Lint.Unreachable_cell fs);
  checkb "info only" true (Lint.significant fs = [])

(* ------------------------------------------------------------------ *)
(* Typed diagnostics on the user-facing entry points *)

let test_parse_diag () =
  (match Dp_expr.Parse.expr_res "x + " with
  | Error d ->
    checkb "code" true (d.Dp_diag.Diag.code = "DP-PARSE001");
    checkb "subsystem" true (d.Dp_diag.Diag.subsystem = "parse");
    checkb "context carries input" true
      (List.mem_assoc "input" d.Dp_diag.Diag.context)
  | Ok _ -> Alcotest.fail "parsed garbage");
  match Dp_expr.Parse.expr_res "x + y" with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "rejected good input: %a" Dp_diag.Diag.pp d

let test_env_diag () =
  (match Dp_expr.Env.add_res "w" ~width:0 Dp_expr.Env.empty with
  | Error d -> checkb "width code" true (d.Dp_diag.Diag.code = "DP-ENV001")
  | Ok _ -> Alcotest.fail "accepted width 0");
  match
    Dp_expr.Env.check_covers_res
      (Dp_expr.Parse.expr "p + q + x")
      (Dp_expr.Env.of_widths [ ("x", 4) ])
  with
  | Error d ->
    checkb "covers code" true (d.Dp_diag.Diag.code = "DP-ENV003");
    checki "lists both unbound" 2
      (List.length
         (List.filter (fun (k, _) -> k = "unbound") d.Dp_diag.Diag.context))
  | Ok () -> Alcotest.fail "missed unbound variables"

let test_tech_diag () =
  (match Dp_tech.Tech_file.of_string_res "bogus_key 1.0" with
  | Error d -> checkb "tech code" true (d.Dp_diag.Diag.code = "DP-TECH001")
  | Ok _ -> Alcotest.fail "accepted unknown key");
  match Dp_tech.Tech_file.of_file_res "/nonexistent/path.tech" with
  | Error d -> checkb "io code" true (d.Dp_diag.Diag.code = "DP-TECH002")
  | Ok _ -> Alcotest.fail "read a nonexistent file"

let test_synth_diag () =
  (match Synth.run_res Strategy.Fa_aot Dp_expr.Env.empty victim_expr with
  | Error d -> checkb "unbound" true (d.Dp_diag.Diag.code = "DP-ENV003")
  | Ok _ -> Alcotest.fail "synthesized with an empty environment");
  match Synth.run_multi_res Strategy.Fa_aot env [] with
  | Error d -> checkb "no ports" true (d.Dp_diag.Diag.code = "DP-SYNTH001")
  | Ok _ -> Alcotest.fail "synthesized an empty port list"

let test_strict_gate_rejects_corruption () =
  let r = fresh () in
  ignore (Inject.apply ~seed:7 r.netlist Inject.Drop_gate);
  match
    Lint.gate ~level:Lint.Strict ~on_finding:(fun _ -> ()) r.netlist
  with
  | Error d -> checkb "gate code" true (d.Dp_diag.Diag.code = "DP-SYNTH002")
  | Ok () -> Alcotest.fail "strict gate passed a corrupted netlist"

let test_check_level_names () =
  List.iter
    (fun l ->
      match Lint.check_level_of_name (Lint.check_level_name l) with
      | Some l' -> checkb "roundtrip" true (l = l')
      | None -> Alcotest.failf "%s not parsed" (Lint.check_level_name l))
    [ Lint.Off; Lint.Warn; Lint.Strict ];
  checkb "unknown" true (Lint.check_level_of_name "loose" = None)

let suite =
  [
    case "lint: clean on every strategy x mixed exprs"
      test_lint_clean_every_strategy;
    case "lint: clean on every final adder" test_lint_clean_every_adder;
    case "lint: clean on multi-output netlists" test_lint_clean_multi_output;
    case "strict gate passes every strategy" test_strict_gate_passes_every_strategy;
    case "inject: rewire-input caught" (test_inject_detected Inject.Rewire_input);
    case "inject: cross-outputs caught" (test_inject_detected Inject.Cross_outputs);
    case "inject: drop-gate caught" (test_inject_detected Inject.Drop_gate);
    case "inject: flip-const caught" (test_inject_detected Inject.Flip_const);
    case "inject: forward-input caught" (test_inject_detected Inject.Forward_input);
    case "inject: duplicate-driver caught"
      (test_inject_detected Inject.Duplicate_driver);
    case "inject: dangling-input caught"
      (test_inject_detected Inject.Dangling_input);
    case "inject: counter-retype caught"
      (test_inject_counter_detected Inject.Counter_retype);
    case "inject: counter-chain caught"
      (test_inject_counter_detected Inject.Counter_chain);
    case "inject: every class has a site" test_every_mutation_applicable;
    case "lint: empty output port" test_lint_flags_empty_outputs;
    case "lint: probability out of range" test_lint_flags_bad_prob;
    case "lint: combinational cycle" test_lint_flags_cycle;
    case "lint: unreachable cell is a warning" test_lint_flags_unreachable;
    case "diag: parse" test_parse_diag;
    case "diag: env" test_env_diag;
    case "diag: tech" test_tech_diag;
    case "diag: synth" test_synth_diag;
    case "diag: strict gate rejects corruption" test_strict_gate_rejects_corruption;
    case "check levels roundtrip" test_check_level_names;
  ]
