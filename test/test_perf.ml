(* Tests for the performance PR: the heap-based SC_T/SC_LP must make
   byte-identical decisions to the retained sort-per-step references, the
   64-lane bit-parallel simulator must agree with the scalar simulator and
   the bignum reference, and the supporting structures (Pqueue, the
   netlist name index, the one-pass FA_random selection) keep their
   contracts. *)

open Dp_netlist
open Helpers

(* ------------------------------------------------------------------ *)
(* Byte-identity of two netlists: every net (driver, arrival,
   probability), every cell (kind, inputs), and the declared busses must
   match exactly.  Floats are compared for equality on purpose — the two
   implementations are supposed to perform the very same operations in
   the very same order. *)

let same_driver a b =
  match (a, b) with
  | Netlist.From_input x, Netlist.From_input y -> x.var = y.var && x.bit = y.bit
  | Netlist.From_const x, Netlist.From_const y -> x = y
  | Netlist.From_cell x, Netlist.From_cell y ->
    x.cell = y.cell && x.port = y.port
  | _ -> false

let explain_netlist_diff a b =
  if Netlist.net_count a <> Netlist.net_count b then
    Some
      (Printf.sprintf "net counts differ: %d vs %d" (Netlist.net_count a)
         (Netlist.net_count b))
  else if Netlist.cell_count a <> Netlist.cell_count b then
    Some
      (Printf.sprintf "cell counts differ: %d vs %d" (Netlist.cell_count a)
         (Netlist.cell_count b))
  else begin
    let diff = ref None in
    for net = Netlist.net_count a - 1 downto 0 do
      if not (same_driver (Netlist.driver a net) (Netlist.driver b net)) then
        diff := Some (Printf.sprintf "net %d: drivers differ" net)
      else if Netlist.arrival a net <> Netlist.arrival b net then
        diff :=
          Some
            (Printf.sprintf "net %d: arrival %g vs %g" net
               (Netlist.arrival a net) (Netlist.arrival b net))
      else if Netlist.prob a net <> Netlist.prob b net then
        diff :=
          Some
            (Printf.sprintf "net %d: prob %g vs %g" net (Netlist.prob a net)
               (Netlist.prob b net))
    done;
    for id = Netlist.cell_count a - 1 downto 0 do
      let ca = Netlist.cell a id and cb = Netlist.cell b id in
      if ca.kind <> cb.kind || ca.inputs <> cb.inputs then
        diff := Some (Printf.sprintf "cell %d differs" id)
    done;
    if Netlist.inputs a <> Netlist.inputs b then diff := Some "inputs differ";
    if Netlist.outputs a <> Netlist.outputs b then diff := Some "outputs differ";
    !diff
  end

let check_identical what a b =
  match explain_netlist_diff a b with
  | None -> ()
  | Some why -> Alcotest.failf "%s: netlists diverge (%s)" what why

(* ------------------------------------------------------------------ *)
(* Decision identity on random single columns, across every tie-break and
   three-policy.  Arrivals come from a tiny integer set and probabilities
   from a tiny symmetric set (|q| of 0.2 and 0.8 coincide) so ties — the
   only place a heap could legally reorder — occur constantly. *)

let gen_column_spec =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (pair
         (map float_of_int (int_range 0 4))
         (oneofl [ 0.05; 0.2; 0.5; 0.8; 0.95 ])))

let print_column_spec spec =
  String.concat "; "
    (List.map (fun (a, p) -> Printf.sprintf "@%g p%g" a p) spec)

let build_column netlist spec =
  let arrival = Array.of_list (List.map fst spec) in
  let prob = Array.of_list (List.map snd spec) in
  Array.to_list
    (Netlist.add_input netlist "col" ~width:(List.length spec) ~arrival ~prob)

let sc_t_combos =
  [
    ("arrival_only/ha", Dp_core.Sc_t.Arrival_only, Dp_core.Sc_t.Ha_finish);
    ("arrival_only/fa3", Dp_core.Sc_t.Arrival_only, Dp_core.Sc_t.Fa_finish);
    ("prefer_high_q/ha", Dp_core.Sc_t.Prefer_high_q, Dp_core.Sc_t.Ha_finish);
    ("prefer_high_q/fa3", Dp_core.Sc_t.Prefer_high_q, Dp_core.Sc_t.Fa_finish);
  ]

let sc_lp_combos =
  [
    ("q_only", Dp_core.Sc_lp.Q_only);
    ("prefer_early", Dp_core.Sc_lp.Prefer_early);
  ]

let sc_t_column_identity spec =
  List.iter
    (fun (label, tie_break, three_policy) ->
      let nl_heap = mk_netlist () in
      let kept_h, carries_h =
        Dp_core.Sc_t.reduce_column ~tie_break ~three_policy nl_heap
          (build_column nl_heap spec)
      in
      let nl_ref = mk_netlist () in
      let kept_r, carries_r =
        Dp_core.Sc_t.reduce_column_reference ~tie_break ~three_policy nl_ref
          (build_column nl_ref spec)
      in
      if kept_h <> kept_r then
        Alcotest.failf "sc_t %s: kept lists differ" label;
      if carries_h <> carries_r then
        Alcotest.failf "sc_t %s: carry lists differ" label;
      check_identical ("sc_t " ^ label) nl_heap nl_ref)
    sc_t_combos;
  true

let sc_lp_column_identity spec =
  List.iter
    (fun (label, tie_break) ->
      let nl_heap = mk_netlist () in
      let kept_h, carries_h =
        Dp_core.Sc_lp.reduce_column ~tie_break nl_heap
          (build_column nl_heap spec)
      in
      let nl_ref = mk_netlist () in
      let kept_r, carries_r =
        Dp_core.Sc_lp.reduce_column_reference ~tie_break nl_ref
          (build_column nl_ref spec)
      in
      if kept_h <> kept_r then
        Alcotest.failf "sc_lp %s: kept lists differ" label;
      if carries_h <> carries_r then
        Alcotest.failf "sc_lp %s: carry lists differ" label;
      check_identical ("sc_lp " ^ label) nl_heap nl_ref)
    sc_lp_combos;
  true

let mk_prop name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:150 ~print:print_column_spec
       gen_column_spec prop)

(* ------------------------------------------------------------------ *)
(* Whole-matrix identity on fuzz-generated expressions: FA_AOT/FA_ALP
   (heap inside) versus an explicit sweep with the reference reducers,
   over the same lowered matrix. *)

let fuzz_cases n =
  let rng = Random.State.make [| 0x9a7e51 |] in
  List.init n (fun i -> Dp_fuzz.Gen.case rng i)

let matrix_identity () =
  List.iter
    (fun case_ ->
      let case_ = Dp_fuzz.Case.drop_unused_vars case_ in
      let env = Dp_fuzz.Case.env case_ in
      List.iter
        (fun (port, expr, width) ->
          List.iter
            (fun (label, tie_break, three_policy) ->
              let nl_heap = mk_netlist () in
              let m = Dp_bitmatrix.Lower.lower nl_heap env expr ~width in
              Dp_core.Fa_aot.allocate ~tie_break ~three_policy nl_heap m;
              let nl_ref = mk_netlist () in
              let m = Dp_bitmatrix.Lower.lower nl_ref env expr ~width in
              Dp_core.Reduce.sweep nl_ref m ~reducer:(fun nl col ->
                  Dp_core.Sc_t.reduce_column_reference ~tie_break ~three_policy
                    nl col);
              check_identical
                (Printf.sprintf "fa_aot %s on %s" label port)
                nl_heap nl_ref)
            sc_t_combos;
          List.iter
            (fun (label, tie_break) ->
              let nl_heap = mk_netlist () in
              let m = Dp_bitmatrix.Lower.lower nl_heap env expr ~width in
              Dp_core.Fa_alp.allocate ~tie_break nl_heap m;
              let nl_ref = mk_netlist () in
              let m = Dp_bitmatrix.Lower.lower nl_ref env expr ~width in
              Dp_core.Reduce.sweep nl_ref m ~reducer:(fun nl col ->
                  Dp_core.Sc_lp.reduce_column_reference ~tie_break nl col);
              check_identical
                (Printf.sprintf "fa_alp %s on %s" label port)
                nl_heap nl_ref)
            sc_lp_combos)
        case_.ports)
    (fuzz_cases 25)

(* ------------------------------------------------------------------ *)
(* Bit-parallel simulation: every lane of [Bitsim.run_lanes] must equal a
   scalar [Simulator.run] of the same assignment, net for net, and the
   declared outputs must match the bignum reference evaluation. *)

let unsigned_cases n =
  let config =
    { Dp_fuzz.Gen.default_config with allow_signed = false; multi_every = 0 }
  in
  let rng = Random.State.make [| 0xb175 |] in
  List.init n (fun i -> Dp_fuzz.Gen.case ~config rng i)

let bitsim_matches_scalar () =
  let rng = Random.State.make [| 0x51d |] in
  List.iter
    (fun case_ ->
      match Dp_fuzz.Case.single_port case_ with
      | None -> ()
      | Some (expr, width) ->
        let env = Dp_fuzz.Case.env (Dp_fuzz.Case.drop_unused_vars case_) in
        let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot env expr ~width in
        let netlist = r.netlist in
        let widths =
          List.map
            (fun (name, nets) -> (name, Array.length nets))
            (Netlist.inputs netlist)
        in
        let lanes = 1 + Random.State.int rng 64 in
        let alists =
          Array.init lanes (fun _ ->
              List.map
                (fun (name, w) -> (name, Random.State.int rng (1 lsl w)))
                widths)
        in
        let values =
          Dp_sim.Bitsim.run_lanes netlist ~lanes ~assign:(fun lane name ->
              List.assoc name alists.(lane))
        in
        for lane = 0 to lanes - 1 do
          let scalar =
            Dp_sim.Simulator.run netlist ~assign:(fun name ->
                List.assoc name alists.(lane))
          in
          Array.iteri
            (fun net v ->
              if Dp_sim.Bitsim.lane_bit values net ~lane <> v then
                Alcotest.failf "net %d, lane %d/%d: bitsim disagrees" net lane
                  lanes)
            scalar;
          let packed =
            Dp_sim.Bitsim.output_value netlist values ~lane r.output
          in
          let big =
            Dp_fuzz.Bigval.eval
              (fun x -> Dp_fuzz.Bigval.of_int (List.assoc x alists.(lane)))
              expr
          in
          checki "output vs bignum"
            (Dp_fuzz.Bigval.to_int_mod ~width big)
            packed
        done)
    (unsigned_cases 15)

(* The batched equivalence checker and the Monte-Carlo estimators went
   bit-parallel; their results for a fixed seed must equal a scalar
   recomputation that replays the identical random draws. *)

let equiv_batched_matches_scalar () =
  List.iter
    (fun case_ ->
      match Dp_fuzz.Case.single_port case_ with
      | None -> ()
      | Some (expr, width) ->
        let env = Dp_fuzz.Case.env (Dp_fuzz.Case.drop_unused_vars case_) in
        let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_alp env expr ~width in
        (match
           Dp_sim.Equiv.check_random ~seed:0xE0 ~trials:150 r.netlist expr
             ~output:r.output ~width
         with
        | Ok () -> ()
        | Error m ->
          Alcotest.failf "batched check_random found a false mismatch: %a"
            Dp_sim.Equiv.pp_mismatch m);
        (* Scalar replay of the same seeded vector stream. *)
        let rng = Random.State.make [| 0xE0 |] in
        let widths =
          List.map
            (fun (name, nets) -> (name, Array.length nets))
            (Netlist.inputs r.netlist)
        in
        for _ = 1 to 150 do
          let alist =
            List.map
              (fun (name, w) -> (name, Random.State.int rng (1 lsl w)))
              widths
          in
          match
            Dp_sim.Equiv.check_assignment r.netlist expr ~output:r.output
              ~width alist
          with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "scalar replay disagrees: %a" Dp_sim.Equiv.pp_mismatch
              m
        done)
    (unsigned_cases 8)

let scalar_toggle_rates ~seed ~vectors netlist =
  (* Replays [Monte_carlo]'s exact draw order (inputs in declaration
     order, bits LSB-first) through the scalar simulator. *)
  let rng = Random.State.make [| seed |] in
  let n = Netlist.net_count netlist in
  let toggles = Array.make n 0 in
  let ones = Array.make n 0 in
  let prev = Array.make n false in
  for v = 0 to vectors - 1 do
    let values = Hashtbl.create 16 in
    List.iter
      (fun (name, nets) ->
        let value = ref 0 in
        Array.iteri
          (fun bit net ->
            if Random.State.float rng 1.0 < Netlist.prob netlist net then
              value := !value lor (1 lsl bit))
          nets;
        Hashtbl.replace values name !value)
      (Netlist.inputs netlist);
    let sim =
      Dp_sim.Simulator.run netlist ~assign:(fun name -> Hashtbl.find values name)
    in
    Array.iteri
      (fun net bit ->
        if bit then ones.(net) <- ones.(net) + 1;
        if v > 0 && bit <> prev.(net) then toggles.(net) <- toggles.(net) + 1;
        prev.(net) <- bit)
      sim
  done;
  ( Array.map (fun t -> float_of_int t /. float_of_int (vectors - 1)) toggles,
    Array.map (fun o -> float_of_int o /. float_of_int vectors) ones )

let monte_carlo_matches_scalar () =
  let env = Dp_expr.Env.of_widths [ ("a", 5); ("b", 4); ("c", 3) ] in
  let expr = Dp_expr.Parse.expr "a*b + 3*c - b" in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_alp env expr ~width:11 in
  (* 150 vectors spans two 64-lane blocks plus a 22-lane tail, covering
     the partial-block masking and the block-boundary toggle. *)
  let vectors = 150 and seed = 0x3c4 in
  let got = Dp_sim.Monte_carlo.toggle_rates ~seed ~vectors r.netlist in
  let probs = Dp_sim.Monte_carlo.measured_prob ~seed ~vectors r.netlist in
  let want_rates, want_probs = scalar_toggle_rates ~seed ~vectors r.netlist in
  checki "vector count" vectors got.vectors;
  Array.iteri
    (fun net want ->
      if got.toggle_rate.(net) <> want then
        Alcotest.failf "net %d: toggle rate %g, scalar replay says %g" net
          got.toggle_rate.(net) want)
    want_rates;
  Array.iteri
    (fun net want ->
      if probs.(net) <> want then
        Alcotest.failf "net %d: measured prob %g, scalar replay says %g" net
          probs.(net) want)
    want_probs

(* ------------------------------------------------------------------ *)
(* Pqueue: drains ascending under the comparator, pops track a sorted
   model under arbitrary push/pop interleavings, and errors on empty. *)

let pqueue_drain_sorts =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"pqueue drain = sort" ~count:200
       ~print:QCheck2.Print.(list int)
       QCheck2.Gen.(list (int_range (-50) 50))
       (fun xs ->
         let q = Dp_core.Pqueue.of_list ~cmp:Int.compare ~dummy:0 xs in
         Dp_core.Pqueue.drain q = List.sort Int.compare xs))

let pqueue_model =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"pqueue pop tracks sorted model" ~count:200
       ~print:QCheck2.Print.(list (option int))
       (* [Some x] pushes x, [None] pops (ignored when empty). *)
       QCheck2.Gen.(list (option (int_range (-50) 50)))
       (fun ops ->
         let q = Dp_core.Pqueue.create ~cmp:Int.compare ~dummy:0 in
         let model = ref [] in
         List.for_all
           (fun op ->
             match op with
             | Some x ->
               Dp_core.Pqueue.push q x;
               model := List.sort Int.compare (x :: !model);
               Dp_core.Pqueue.length q = List.length !model
             | None -> (
               match !model with
               | [] -> Dp_core.Pqueue.is_empty q
               | m :: rest ->
                 model := rest;
                 Dp_core.Pqueue.pop q = m))
           ops))

let pqueue_empty_pop () =
  let q = Dp_core.Pqueue.create ~cmp:Int.compare ~dummy:0 in
  checkb "fresh queue is empty" true (Dp_core.Pqueue.is_empty q);
  match Dp_core.Pqueue.pop q with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "pop on empty returned %d" v

(* ------------------------------------------------------------------ *)
(* Netlist name index: lookups stay correct, duplicates still raise, and
   declaration order survives the hashtable. *)

let netlist_name_index () =
  let netlist = mk_netlist () in
  let names = List.init 40 (fun i -> Printf.sprintf "in%02d" i) in
  List.iter
    (fun name -> ignore (Netlist.add_input netlist name ~width:2))
    names;
  check
    Alcotest.(list string)
    "inputs keep declaration order" names
    (List.map fst (Netlist.inputs netlist));
  List.iteri
    (fun i name ->
      let nets = Netlist.add_input netlist (name ^ "_chk") ~width:1 in
      Netlist.set_output netlist (Printf.sprintf "out%02d" i) nets)
    names;
  List.iteri
    (fun i _ ->
      let nets = Netlist.find_output netlist (Printf.sprintf "out%02d" i) in
      checki (Printf.sprintf "out%02d width" i) 1 (Array.length nets))
    names;
  check
    Alcotest.(list string)
    "outputs keep declaration order"
    (List.init 40 (fun i -> Printf.sprintf "out%02d" i))
    (List.map fst (Netlist.outputs netlist));
  (match Netlist.add_input netlist "in00" ~width:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate input accepted");
  match Netlist.set_output netlist "out00" (Netlist.find_output netlist "out01")
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate output accepted"

(* FA_random's one-pass selection: still a valid reduction (at most two
   kept per column) and still deterministic under a fixed seed. *)

let sc_random_deterministic () =
  let run seed =
    let rng = Random.State.make [| seed |] in
    let netlist = mk_netlist () in
    let col =
      build_column netlist
        (List.init 23 (fun i -> (float_of_int (i mod 5), 0.5)))
    in
    let kept, carries = Dp_core.Sc_random.reduce_column rng netlist col in
    (kept, carries, netlist)
  in
  let kept1, carries1, nl1 = run 7 in
  let kept2, carries2, nl2 = run 7 in
  checkb "kept count <= 2" true (List.length kept1 <= 2);
  (* 23 addends: ten FAs down to three, one HA to finish — 11 carries. *)
  checki "carry count" 11 (List.length carries1);
  check Alcotest.(list int) "same seed, same kept" kept1 kept2;
  check Alcotest.(list int) "same seed, same carries" carries1 carries2;
  check_identical "sc_random determinism" nl1 nl2

let suite =
  [
    mk_prop "sc_t heap = reference on random columns" sc_t_column_identity;
    mk_prop "sc_lp heap = reference on random columns" sc_lp_column_identity;
    case "fa_aot/fa_alp heap = reference on fuzzed matrices" matrix_identity;
    case "bitsim lanes = scalar simulator and bignum" bitsim_matches_scalar;
    case "batched equiv = scalar replay" equiv_batched_matches_scalar;
    case "monte carlo bit-parallel = scalar replay" monte_carlo_matches_scalar;
    pqueue_drain_sorts;
    pqueue_model;
    case "pqueue empty pop raises" pqueue_empty_pop;
    case "netlist name index" netlist_name_index;
    case "sc_random one-pass selection" sc_random_deterministic;
  ]
