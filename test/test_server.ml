(* The serving layer: JSON wire format, protocol parsing, the in-process
   server over a real Unix-domain socket, and the reentrant wall-clock
   budget that makes per-request timeouts safe inside the worker pool. *)

open Helpers
module S = Dp_server
module Json = Dp_server.Json
module P = Dp_server.Protocol
module Fz = Dp_fuzz

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_round_trips () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Error msg -> Alcotest.failf "%s: %s" text msg
      | Ok v -> check Alcotest.string text text (Json.to_string v))
    [
      "null";
      "true";
      "[1,2,3]";
      "{\"a\":1,\"b\":[true,null],\"c\":\"x\\ny\"}";
      "{\"nested\":{\"deep\":[{\"k\":-12}]}}";
      "3.25";
      "\"quote \\\" backslash \\\\\"";
    ]

let json_rejects_malformed () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Ok v -> Alcotest.failf "%s parsed as %s" text (Json.to_string v)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\"}"; "tru"; "1 2"; "\"unterminated" ]

let json_floats_deterministic () =
  check Alcotest.string "integral float" "1.0" (Json.to_string (Json.Float 1.0));
  check Alcotest.string "fraction" "0.1" (Json.to_string (Json.Float 0.1));
  (* shortest form that round-trips exactly *)
  let f = 22.145835939275589 in
  match Json.of_string (Json.to_string (Json.Float f)) with
  | Ok (Json.Float f') -> checkb "float round-trips exactly" true (f = f')
  | other ->
    Alcotest.failf "unexpected %s"
      (match other with Ok v -> Json.to_string v | Error m -> m)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let proto_parses_synth () =
  let line =
    {|{"id":7,"op":"synth","expr":"x*y + z","vars":[{"name":"x","width":8},{"name":"y","width":8,"signed":true,"arrival":1.5},{"name":"z","width":2,"prob":[0.1,0.9]}],"strategy":"dadda","adder":"ripple","width":2}|}
  in
  let line = String.concat "" [ line ] in
  match P.request_of_line line with
  | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  | Ok { id; req } -> (
    checkb "id echoed" true (id = Json.Int 7);
    match req with
    | P.Synth p ->
      check Alcotest.string "expr" "x*y + z" p.expr_text;
      checki "vars" 3 (List.length p.vars);
      let y = List.nth p.vars 1 in
      checkb "signed" true y.vsigned;
      checkb "uniform arrival broadcast" true
        (Array.for_all (fun t -> t = 1.5) y.varrival);
      let z = List.nth p.vars 2 in
      checkb "per-bit prob array" true (z.vprob = [| 0.1; 0.9 |]);
      checkb "strategy" true (p.strategy = Dp_flow.Strategy.Dadda);
      checkb "adder" true (p.adder = Dp_adders.Adder.Ripple);
      checkb "width" true (p.width = Some 2)
    | _ -> Alcotest.fail "expected Synth")

let proto_error_codes () =
  let code line =
    match P.request_of_line line with
    | Ok _ -> Alcotest.failf "%s parsed" line
    | Error d -> d.Dp_diag.Diag.code
  in
  check Alcotest.string "not JSON" "DP-PROTO001" (code "this is not json");
  check Alcotest.string "no op" "DP-PROTO002" (code {|{"id":1}|});
  check Alcotest.string "unknown op" "DP-PROTO002" (code {|{"op":"frobnicate"}|});
  check Alcotest.string "missing expr" "DP-PROTO002" (code {|{"op":"synth"}|});
  check Alcotest.string "bad expr" "DP-PROTO002"
    (code {|{"op":"synth","expr":"x +"}|});
  check Alcotest.string "bad strategy" "DP-PROTO002"
    (code {|{"op":"synth","expr":"x","strategy":"nope","vars":[{"name":"x","width":4}]}|});
  check Alcotest.string "bad prob arity" "DP-PROTO002"
    (code
       {|{"op":"synth","expr":"x","vars":[{"name":"x","width":4,"prob":[0.5]}]}|})

let proto_request_round_trips () =
  let p =
    match
      P.synth_params
        ~vars:
          [
            P.var_spec "x" ~width:8;
            P.var_spec ~signed:true ~arrival:(Array.make 4 2.5) "y" ~width:4;
          ]
        ~width:(Some 10) ~strategy:Dp_flow.Strategy.Csa_opt "x*y - 3"
    with
    | Ok p -> p
    | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  in
  let envelope = { P.id = Json.Int 3; req = P.Synth p } in
  match P.request_of_json (Json.of_string (Json.to_string (P.request_to_json envelope)) |> Result.get_ok) with
  | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  | Ok { id; req } -> (
    checkb "id" true (id = Json.Int 3);
    match req with
    | P.Synth p' ->
      check Alcotest.string "expr" p.expr_text p'.expr_text;
      checkb "width" true (p'.width = Some 10);
      checkb "strategy" true (p'.strategy = Dp_flow.Strategy.Csa_opt);
      let y = List.nth p'.vars 1 in
      checkb "signed survives" true y.vsigned;
      checkb "arrival survives" true (y.varrival = Array.make 4 2.5)
    | _ -> Alcotest.fail "expected Synth")

(* ------------------------------------------------------------------ *)
(* In-process server over a real socket *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpsyn-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  if Sys.file_exists path then Sys.remove path;
  path

let with_server ?(configure = fun c -> c) f =
  let socket = fresh_socket () in
  let config = configure (S.Server.default_config ~socket_path:socket) in
  let t = S.Server.start config in
  Fun.protect
    ~finally:(fun () ->
      S.Server.request_shutdown t;
      S.Server.wait t)
    (fun () -> f socket t)

let rpc socket request =
  match S.Client.connect socket with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> S.Client.close c)
      (fun () ->
        match S.Client.rpc c request with
        | Ok response -> response
        | Error msg -> Alcotest.fail msg)

let synth_json ?(expr = "x*y + z") ?(id = 1) () =
  Json.Obj
    [
      ("id", Json.Int id);
      ("op", Json.Str "synth");
      ("expr", Json.Str expr);
      ( "vars",
        Json.List
          (List.map
             (fun n ->
               Json.Obj [ ("name", Json.Str n); ("width", Json.Int 8) ])
             [ "x"; "y"; "z" ]) );
    ]

let get path j =
  List.fold_left
    (fun acc k ->
      match Option.bind acc (Json.member k) with
      | Some v -> Some v
      | None -> None)
    (Some j) path

let get_bool path j = Option.bind (get path j) Json.to_bool
let get_str path j = Option.bind (get path j) Json.to_str
let get_int path j = Option.bind (get path j) Json.to_int

let server_synth_and_cache () =
  with_server @@ fun socket _ ->
  let r1 = rpc socket (synth_json ()) in
  checkb "ok" true (get_bool [ "ok" ] r1 = Some true);
  checkb "id echoed" true (get_int [ "id" ] r1 = Some 1);
  checkb "fresh" true (get_bool [ "cached" ] r1 = Some false);
  checkb "schema" true
    (get_str [ "result"; "schema" ] r1 = Some "dpsyn-result/1");
  checkb "digest present" true
    (match get_str [ "result"; "digest" ] r1 with
    | Some d -> String.length d = 32
    | None -> false);
  (* repeat: served from cache, record byte-identical *)
  let r2 = rpc socket (synth_json ()) in
  checkb "cached" true (get_bool [ "cached" ] r2 = Some true);
  check Alcotest.string "records byte-identical"
    (Json.to_string (Option.get (get [ "result" ] r1)))
    (Json.to_string (Option.get (get [ "result" ] r2)));
  (* a canonical reordering also hits *)
  let r3 = rpc socket (synth_json ~expr:"z + y*x" ()) in
  checkb "reordering hits" true (get_bool [ "cached" ] r3 = Some true);
  check Alcotest.string "same digest"
    (Option.get (get_str [ "result"; "digest" ] r1))
    (Option.get (get_str [ "result"; "digest" ] r3))

let server_batch_order_and_errors () =
  with_server @@ fun socket _ ->
  let elem expr vars =
    Json.Obj
      [
        ("expr", Json.Str expr);
        ( "vars",
          Json.List
            (List.map
               (fun n ->
                 Json.Obj [ ("name", Json.Str n); ("width", Json.Int 6) ])
               vars) );
      ]
  in
  let req =
    Json.Obj
      [
        ("id", Json.Int 9);
        ("op", Json.Str "batch");
        ( "requests",
          Json.List
            [
              elem "a + b" [ "a"; "b" ];
              elem "a * nope" [ "a" ] (* unbound: must fail in place *);
              elem "a - b" [ "a"; "b" ];
            ] );
      ]
  in
  let r = rpc socket req in
  checkb "envelope ok" true (get_bool [ "ok" ] r = Some true);
  match Option.bind (get [ "results" ] r) Json.to_list with
  | Some [ e1; e2; e3 ] ->
    checkb "first ok" true (get_bool [ "ok" ] e1 = Some true);
    check Alcotest.string "order preserved" "a + b"
      (Option.get (get_str [ "result"; "expr" ] e1));
    checkb "second failed" true (get_bool [ "ok" ] e2 = Some false);
    check Alcotest.string "typed diagnostic" "DP-ENV003"
      (Option.get (get_str [ "error"; "code" ] e2));
    checkb "third ok" true (get_bool [ "ok" ] e3 = Some true);
    check Alcotest.string "order preserved" "a - b"
      (Option.get (get_str [ "result"; "expr" ] e3))
  | _ -> Alcotest.fail "expected exactly 3 batch elements"

let server_survives_bad_input () =
  with_server @@ fun socket _ ->
  match S.Client.connect socket with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> S.Client.close c)
      (fun () ->
        S.Client.send_line c "garbage that is not json";
        (match S.Client.recv_line c with
        | None -> Alcotest.fail "connection died on bad input"
        | Some line ->
          let j = Result.get_ok (Json.of_string line) in
          checkb "error envelope" true (get_bool [ "ok" ] j = Some false);
          check Alcotest.string "code" "DP-PROTO001"
            (Option.get (get_str [ "error"; "code" ] j)));
        (* a field-validation failure still echoes the request id *)
        S.Client.send_line c {|{"id":9,"op":"nope"}|};
        (match S.Client.recv_line c with
        | None -> Alcotest.fail "connection died on bad op"
        | Some line ->
          let j = Result.get_ok (Json.of_string line) in
          checkb "id recovered" true (get_int [ "id" ] j = Some 9);
          check Alcotest.string "code" "DP-PROTO002"
            (Option.get (get_str [ "error"; "code" ] j)));
        (* the same connection still serves a valid request *)
        match S.Client.rpc c (synth_json ()) with
        | Error msg -> Alcotest.fail msg
        | Ok r -> checkb "still usable" true (get_bool [ "ok" ] r = Some true))

let server_stats () =
  with_server @@ fun socket _ ->
  ignore (rpc socket (synth_json ()));
  ignore (rpc socket (synth_json ()));
  let r = rpc socket (Json.Obj [ ("id", Json.Int 2); ("op", Json.Str "stats") ]) in
  checkb "ok" true (get_bool [ "ok" ] r = Some true);
  checkb "served" true (get_int [ "stats"; "served" ] r = Some 2);
  checkb "cache hit counted" true
    (get_int [ "stats"; "cache"; "hits" ] r = Some 1);
  checkb "cache miss counted" true
    (get_int [ "stats"; "cache"; "misses" ] r = Some 1);
  match Option.bind (get [ "stats"; "latency_ms" ] r) Json.to_list with
  | Some buckets ->
    let total =
      List.fold_left
        (fun acc b -> acc + Option.value (get_int [ "count" ] b) ~default:0)
        0 buckets
    in
    checki "every request lands in a latency bucket" 2 total
  | None -> Alcotest.fail "missing latency histogram"

let server_enforces_cell_budget () =
  (* max_cells is deterministic (unlike wall-clock), so the budget error
     path over the wire is testable without flakiness *)
  let configure c =
    { c with S.Server.budget = { Fz.Budget.unlimited with max_cells = 40 } }
  in
  with_server ~configure @@ fun socket _ ->
  let r = rpc socket (synth_json ~expr:"x*y + z" ()) in
  checkb "rejected" true (get_bool [ "ok" ] r = Some false);
  check Alcotest.string "code" "DP-BUDGET002"
    (Option.get (get_str [ "error"; "code" ] r));
  (* a small request on the same server still fits the budget *)
  let ok =
    rpc socket
      (Json.Obj
         [
           ("id", Json.Int 2);
           ("op", Json.Str "synth");
           ("expr", Json.Str "x + 1");
           ( "vars",
             Json.List [ Json.Obj [ ("name", Json.Str "x"); ("width", Json.Int 2) ] ] );
         ])
  in
  checkb "small request survives" true (get_bool [ "ok" ] ok = Some true)

let server_shutdown_op () =
  let socket = fresh_socket () in
  let t = S.Server.start (S.Server.default_config ~socket_path:socket) in
  let r = rpc socket (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "shutdown") ]) in
  checkb "ok" true (get_bool [ "ok" ] r = Some true);
  (* wait must return: the accept loop and the workers all exit *)
  S.Server.wait t;
  checkb "socket file removed" false (Sys.file_exists socket)

(* ------------------------------------------------------------------ *)
(* Reentrant wall-clock budgets *)

let spin_until deadline_s =
  let t0 = Unix.gettimeofday () in
  let rec go acc =
    if Unix.gettimeofday () -. t0 > deadline_s then acc
    else go (acc + (acc mod 7))
  in
  go 1

let budget_code f =
  match f () with
  | _ -> "no-exception"
  | exception Dp_diag.Diag.E d -> d.Dp_diag.Diag.code

let nested_inner_timeout_fires () =
  let outer = { Fz.Budget.unlimited with timeout_s = 10.0 } in
  let inner = { Fz.Budget.unlimited with timeout_s = 0.05 } in
  let inner_code = ref "unset" in
  let v =
    Fz.Budget.with_timeout outer (fun () ->
        (inner_code :=
           budget_code (fun () ->
               Fz.Budget.with_timeout inner (fun () -> spin_until 5.0)));
        (* the outer budget survives the inner expiry *)
        42)
  in
  check Alcotest.string "inner code" "DP-BUDGET001" !inner_code;
  checki "outer completes" 42 v;
  (* process timer fully restored *)
  let it = Unix.getitimer Unix.ITIMER_REAL in
  checkb "timer disarmed" true (it.Unix.it_value = 0.0)

let nested_outer_timeout_wins () =
  let outer = { Fz.Budget.unlimited with timeout_s = 0.05 } in
  let inner = { Fz.Budget.unlimited with timeout_s = 10.0 } in
  let t0 = Unix.gettimeofday () in
  let code =
    budget_code (fun () ->
        Fz.Budget.with_timeout outer (fun () ->
            Fz.Budget.with_timeout inner (fun () -> spin_until 5.0)))
  in
  check Alcotest.string "outer's DP-BUDGET001 propagates" "DP-BUDGET001" code;
  checkb "fired promptly, not after the inner allowance" true
    (Unix.gettimeofday () -. t0 < 5.0)

let budget_reusable_after_nesting () =
  nested_inner_timeout_fires ();
  (* plain single-level use still works after nested traffic *)
  let b = { Fz.Budget.unlimited with timeout_s = 0.05 } in
  let code =
    budget_code (fun () -> Fz.Budget.with_timeout b (fun () -> spin_until 5.0))
  in
  check Alcotest.string "still fires" "DP-BUDGET001" code;
  checki "and still completes fast work" 7
    (Fz.Budget.with_timeout b (fun () -> 7))

let concurrent_budgets_are_independent () =
  (* two threads, each under its own budget: the short one times out, the
     long one finishes — no cross-thread misattribution *)
  let short_code = ref "unset" in
  let long_result = ref 0 in
  let short =
    Thread.create
      (fun () ->
        short_code :=
          budget_code (fun () ->
              Fz.Budget.with_timeout
                { Fz.Budget.unlimited with timeout_s = 0.05 }
                (fun () -> spin_until 5.0)))
      ()
  in
  let long =
    Thread.create
      (fun () ->
        long_result :=
          Fz.Budget.with_timeout
            { Fz.Budget.unlimited with timeout_s = 10.0 }
            (fun () ->
              ignore (spin_until 0.2);
              99))
      ()
  in
  Thread.join short;
  Thread.join long;
  check Alcotest.string "short thread timed out" "DP-BUDGET001" !short_code;
  checki "long thread unaffected" 99 !long_result

let suite =
  [
    case "json: printer/parser round-trips" json_round_trips;
    case "json: rejects malformed input" json_rejects_malformed;
    case "json: deterministic float emission" json_floats_deterministic;
    case "protocol: parses a synth request" proto_parses_synth;
    case "protocol: DP-PROTO001/002 on bad input" proto_error_codes;
    case "protocol: client request round-trips" proto_request_round_trips;
    case "server: synth, cache hit, canonical reuse" server_synth_and_cache;
    case "server: batch keeps order, errors in place" server_batch_order_and_errors;
    case "server: survives malformed lines" server_survives_bad_input;
    case "server: stats counters and histogram" server_stats;
    case "server: per-request cell budget" server_enforces_cell_budget;
    case "server: shutdown op stops everything" server_shutdown_op;
    case "budget: nested inner timeout fires alone" nested_inner_timeout_fires;
    case "budget: nested outer timeout wins" nested_outer_timeout_wins;
    case "budget: reusable after nesting" budget_reusable_after_nesting;
    case "budget: concurrent budgets independent" concurrent_budgets_are_independent;
  ]
