(* The serving layer: JSON wire format, protocol parsing, the in-process
   server over a real Unix-domain socket, and the reentrant wall-clock
   budget that makes per-request timeouts safe inside the worker pool. *)

open Helpers
module S = Dp_server
module Json = Dp_server.Json
module P = Dp_server.Protocol
module Fz = Dp_fuzz

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_round_trips () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Error msg -> Alcotest.failf "%s: %s" text msg
      | Ok v -> check Alcotest.string text text (Json.to_string v))
    [
      "null";
      "true";
      "[1,2,3]";
      "{\"a\":1,\"b\":[true,null],\"c\":\"x\\ny\"}";
      "{\"nested\":{\"deep\":[{\"k\":-12}]}}";
      "3.25";
      "\"quote \\\" backslash \\\\\"";
    ]

let json_rejects_malformed () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Ok v -> Alcotest.failf "%s parsed as %s" text (Json.to_string v)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\"}"; "tru"; "1 2"; "\"unterminated" ]

let json_floats_deterministic () =
  check Alcotest.string "integral float" "1.0" (Json.to_string (Json.Float 1.0));
  check Alcotest.string "fraction" "0.1" (Json.to_string (Json.Float 0.1));
  (* shortest form that round-trips exactly *)
  let f = 22.145835939275589 in
  match Json.of_string (Json.to_string (Json.Float f)) with
  | Ok (Json.Float f') -> checkb "float round-trips exactly" true (f = f')
  | other ->
    Alcotest.failf "unexpected %s"
      (match other with Ok v -> Json.to_string v | Error m -> m)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let proto_parses_synth () =
  let line =
    {|{"id":7,"op":"synth","expr":"x*y + z","vars":[{"name":"x","width":8},{"name":"y","width":8,"signed":true,"arrival":1.5},{"name":"z","width":2,"prob":[0.1,0.9]}],"strategy":"dadda","adder":"ripple","width":2}|}
  in
  let line = String.concat "" [ line ] in
  match P.request_of_line line with
  | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  | Ok { id; req } -> (
    checkb "id echoed" true (id = Json.Int 7);
    match req with
    | P.Synth p ->
      check Alcotest.string "expr" "x*y + z" p.expr_text;
      checki "vars" 3 (List.length p.vars);
      let y = List.nth p.vars 1 in
      checkb "signed" true y.vsigned;
      checkb "uniform arrival broadcast" true
        (Array.for_all (fun t -> t = 1.5) y.varrival);
      let z = List.nth p.vars 2 in
      checkb "per-bit prob array" true (z.vprob = [| 0.1; 0.9 |]);
      checkb "strategy" true (p.strategy = Dp_flow.Strategy.Dadda);
      checkb "adder" true (p.adder = Dp_adders.Adder.Ripple);
      checkb "width" true (p.width = Some 2)
    | _ -> Alcotest.fail "expected Synth")

let proto_error_codes () =
  let code line =
    match P.request_of_line line with
    | Ok _ -> Alcotest.failf "%s parsed" line
    | Error d -> d.Dp_diag.Diag.code
  in
  check Alcotest.string "not JSON" "DP-PROTO001" (code "this is not json");
  check Alcotest.string "no op" "DP-PROTO002" (code {|{"id":1}|});
  check Alcotest.string "unknown op" "DP-PROTO002" (code {|{"op":"frobnicate"}|});
  check Alcotest.string "missing expr" "DP-PROTO002" (code {|{"op":"synth"}|});
  check Alcotest.string "bad expr" "DP-PROTO002"
    (code {|{"op":"synth","expr":"x +"}|});
  check Alcotest.string "bad strategy" "DP-PROTO002"
    (code {|{"op":"synth","expr":"x","strategy":"nope","vars":[{"name":"x","width":4}]}|});
  check Alcotest.string "bad prob arity" "DP-PROTO002"
    (code
       {|{"op":"synth","expr":"x","vars":[{"name":"x","width":4,"prob":[0.5]}]}|})

let proto_request_round_trips () =
  let p =
    match
      P.synth_params
        ~vars:
          [
            P.var_spec "x" ~width:8;
            P.var_spec ~signed:true ~arrival:(Array.make 4 2.5) "y" ~width:4;
          ]
        ~width:(Some 10) ~strategy:Dp_flow.Strategy.Csa_opt "x*y - 3"
    with
    | Ok p -> p
    | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  in
  let envelope = { P.id = Json.Int 3; req = P.Synth p } in
  match P.request_of_json (Json.of_string (Json.to_string (P.request_to_json envelope)) |> Result.get_ok) with
  | Error d -> Alcotest.fail (Dp_diag.Diag.to_string d)
  | Ok { id; req } -> (
    checkb "id" true (id = Json.Int 3);
    match req with
    | P.Synth p' ->
      check Alcotest.string "expr" p.expr_text p'.expr_text;
      checkb "width" true (p'.width = Some 10);
      checkb "strategy" true (p'.strategy = Dp_flow.Strategy.Csa_opt);
      let y = List.nth p'.vars 1 in
      checkb "signed survives" true y.vsigned;
      checkb "arrival survives" true (y.varrival = Array.make 4 2.5)
    | _ -> Alcotest.fail "expected Synth")

(* ------------------------------------------------------------------ *)
(* In-process server over a real socket *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpsyn-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  if Sys.file_exists path then Sys.remove path;
  path

let with_server ?(configure = fun c -> c) f =
  let socket = fresh_socket () in
  let config = configure (S.Server.default_config ~socket_path:socket) in
  let t = S.Server.start config in
  Fun.protect
    ~finally:(fun () ->
      S.Server.request_shutdown t;
      S.Server.wait t)
    (fun () -> f socket t)

let faild d = Alcotest.fail (Dp_diag.Diag.to_string d)

let rpc_res socket request =
  match S.Client.connect socket with
  | Error d -> Error d
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> S.Client.close c)
      (fun () -> S.Client.rpc c request)

let rpc socket request =
  match rpc_res socket request with Ok r -> r | Error d -> faild d

let synth_json ?(expr = "x*y + z") ?(id = 1) ?deadline_ms () =
  Json.Obj
    ([
       ("id", Json.Int id);
       ("op", Json.Str "synth");
       ("expr", Json.Str expr);
       ( "vars",
         Json.List
           (List.map
              (fun n ->
                Json.Obj [ ("name", Json.Str n); ("width", Json.Int 8) ])
              [ "x"; "y"; "z" ]) );
     ]
    @
    match deadline_ms with
    | Some d -> [ ("deadline_ms", Json.Float d) ]
    | None -> [])

(* A unique empty scratch directory (crash corpora, disk caches). *)
let fresh_dir tag =
  let path = Filename.temp_file ("dpsyn-" ^ tag) "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let get path j =
  List.fold_left
    (fun acc k ->
      match Option.bind acc (Json.member k) with
      | Some v -> Some v
      | None -> None)
    (Some j) path

let get_bool path j = Option.bind (get path j) Json.to_bool
let get_str path j = Option.bind (get path j) Json.to_str
let get_int path j = Option.bind (get path j) Json.to_int

let server_synth_and_cache () =
  with_server @@ fun socket _ ->
  let r1 = rpc socket (synth_json ()) in
  checkb "ok" true (get_bool [ "ok" ] r1 = Some true);
  checkb "id echoed" true (get_int [ "id" ] r1 = Some 1);
  checkb "fresh" true (get_bool [ "cached" ] r1 = Some false);
  checkb "schema" true
    (get_str [ "result"; "schema" ] r1 = Some "dpsyn-result/1");
  checkb "digest present" true
    (match get_str [ "result"; "digest" ] r1 with
    | Some d -> String.length d = 32
    | None -> false);
  (* repeat: served from cache, record byte-identical *)
  let r2 = rpc socket (synth_json ()) in
  checkb "cached" true (get_bool [ "cached" ] r2 = Some true);
  check Alcotest.string "records byte-identical"
    (Json.to_string (Option.get (get [ "result" ] r1)))
    (Json.to_string (Option.get (get [ "result" ] r2)));
  (* a canonical reordering also hits *)
  let r3 = rpc socket (synth_json ~expr:"z + y*x" ()) in
  checkb "reordering hits" true (get_bool [ "cached" ] r3 = Some true);
  check Alcotest.string "same digest"
    (Option.get (get_str [ "result"; "digest" ] r1))
    (Option.get (get_str [ "result"; "digest" ] r3))

let server_batch_order_and_errors () =
  with_server @@ fun socket _ ->
  let elem expr vars =
    Json.Obj
      [
        ("expr", Json.Str expr);
        ( "vars",
          Json.List
            (List.map
               (fun n ->
                 Json.Obj [ ("name", Json.Str n); ("width", Json.Int 6) ])
               vars) );
      ]
  in
  let req =
    Json.Obj
      [
        ("id", Json.Int 9);
        ("op", Json.Str "batch");
        ( "requests",
          Json.List
            [
              elem "a + b" [ "a"; "b" ];
              elem "a * nope" [ "a" ] (* unbound: must fail in place *);
              elem "a - b" [ "a"; "b" ];
            ] );
      ]
  in
  let r = rpc socket req in
  checkb "envelope ok" true (get_bool [ "ok" ] r = Some true);
  match Option.bind (get [ "results" ] r) Json.to_list with
  | Some [ e1; e2; e3 ] ->
    checkb "first ok" true (get_bool [ "ok" ] e1 = Some true);
    check Alcotest.string "order preserved" "a + b"
      (Option.get (get_str [ "result"; "expr" ] e1));
    checkb "second failed" true (get_bool [ "ok" ] e2 = Some false);
    check Alcotest.string "typed diagnostic" "DP-ENV003"
      (Option.get (get_str [ "error"; "code" ] e2));
    checkb "third ok" true (get_bool [ "ok" ] e3 = Some true);
    check Alcotest.string "order preserved" "a - b"
      (Option.get (get_str [ "result"; "expr" ] e3))
  | _ -> Alcotest.fail "expected exactly 3 batch elements"

let server_survives_bad_input () =
  with_server @@ fun socket _ ->
  match S.Client.connect socket with
  | Error d -> faild d
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> S.Client.close c)
      (fun () ->
        (match S.Client.send_line c "garbage that is not json" with
        | Error d -> faild d
        | Ok () -> ());
        (match S.Client.recv_response c with
        | Error _ -> Alcotest.fail "connection died on bad input"
        | Ok j ->
          checkb "error envelope" true (get_bool [ "ok" ] j = Some false);
          check Alcotest.string "code" "DP-PROTO001"
            (Option.get (get_str [ "error"; "code" ] j)));
        (* a field-validation failure still echoes the request id *)
        (match S.Client.send_line c {|{"id":9,"op":"nope"}|} with
        | Error d -> faild d
        | Ok () -> ());
        (match S.Client.recv_response c with
        | Error _ -> Alcotest.fail "connection died on bad op"
        | Ok j ->
          checkb "id recovered" true (get_int [ "id" ] j = Some 9);
          check Alcotest.string "code" "DP-PROTO002"
            (Option.get (get_str [ "error"; "code" ] j)));
        (* the same connection still serves a valid request *)
        match S.Client.rpc c (synth_json ()) with
        | Error d -> faild d
        | Ok r -> checkb "still usable" true (get_bool [ "ok" ] r = Some true))

let server_stats () =
  with_server @@ fun socket _ ->
  ignore (rpc socket (synth_json ()));
  ignore (rpc socket (synth_json ()));
  let r = rpc socket (Json.Obj [ ("id", Json.Int 2); ("op", Json.Str "stats") ]) in
  checkb "ok" true (get_bool [ "ok" ] r = Some true);
  checkb "served" true (get_int [ "stats"; "served" ] r = Some 2);
  checkb "cache hit counted" true
    (get_int [ "stats"; "cache"; "hits" ] r = Some 1);
  checkb "cache miss counted" true
    (get_int [ "stats"; "cache"; "misses" ] r = Some 1);
  match Option.bind (get [ "stats"; "latency_ms" ] r) Json.to_list with
  | Some buckets ->
    let total =
      List.fold_left
        (fun acc b -> acc + Option.value (get_int [ "count" ] b) ~default:0)
        0 buckets
    in
    checki "every request lands in a latency bucket" 2 total
  | None -> Alcotest.fail "missing latency histogram"

let server_enforces_cell_budget () =
  (* max_cells is deterministic (unlike wall-clock), so the budget error
     path over the wire is testable without flakiness *)
  let configure c =
    { c with S.Server.budget = { Fz.Budget.unlimited with max_cells = 40 } }
  in
  with_server ~configure @@ fun socket _ ->
  let r = rpc socket (synth_json ~expr:"x*y + z" ()) in
  checkb "rejected" true (get_bool [ "ok" ] r = Some false);
  check Alcotest.string "code" "DP-BUDGET002"
    (Option.get (get_str [ "error"; "code" ] r));
  (* a small request on the same server still fits the budget *)
  let ok =
    rpc socket
      (Json.Obj
         [
           ("id", Json.Int 2);
           ("op", Json.Str "synth");
           ("expr", Json.Str "x + 1");
           ( "vars",
             Json.List [ Json.Obj [ ("name", Json.Str "x"); ("width", Json.Int 2) ] ] );
         ])
  in
  checkb "small request survives" true (get_bool [ "ok" ] ok = Some true)

let server_shutdown_op () =
  let socket = fresh_socket () in
  let t = S.Server.start (S.Server.default_config ~socket_path:socket) in
  let r = rpc socket (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "shutdown") ]) in
  checkb "ok" true (get_bool [ "ok" ] r = Some true);
  (* wait must return: the accept loop and the workers all exit *)
  S.Server.wait t;
  checkb "socket file removed" false (Sys.file_exists socket)

(* ------------------------------------------------------------------ *)
(* Supervision, deadlines, chaos *)

(* With a single fault class the chaos schedule is fully deterministic:
   each sequential request consumes one worker-site tick and one
   respond-site tick, so [every = 3] fires at ticks 3, 6, 9... — the 2nd
   request's worker tick, the 3rd request's respond tick (filtered for
   worker-only faults), the 5th request's worker tick, and so on. *)
let chaos_only ?(every = 3) fault =
  { S.Chaos.seed = 1; every; slow_s = 0.05; faults = [ fault ] }

let tiny_backoff =
  {
    S.Supervisor.default_policy with
    backoff_base_s = 0.001;
    backoff_max_s = 0.01;
  }

let server_crash_restart_and_dump () =
  let crash_dir = fresh_dir "crash" in
  let configure c =
    {
      c with
      S.Server.chaos = Some (chaos_only S.Chaos.Worker_panic);
      crash_dir = Some crash_dir;
      supervisor = { tiny_backoff with max_crashes = 100 };
    }
  in
  with_server ~configure @@ fun socket t ->
  let r1 = rpc socket (synth_json ~id:1 ()) in
  checkb "1st ok" true (get_bool [ "ok" ] r1 = Some true);
  (* 2nd request hits the worker-site injection: typed crash, not a hang *)
  let r2 = rpc socket (synth_json ~id:2 ~expr:"x + y" ()) in
  checkb "2nd failed" true (get_bool [ "ok" ] r2 = Some false);
  check Alcotest.string "crash code" "DP-SRV-CRASH"
    (Option.get (get_str [ "error"; "code" ] r2));
  (* the worker restarted: the same server keeps serving *)
  let r3 = rpc socket (synth_json ~id:3 ()) in
  checkb "3rd ok after restart" true (get_bool [ "ok" ] r3 = Some true);
  (* the crash left a parseable reproducer in the corpus *)
  (match Fz.Corpus.load_dir crash_dir with
  | Error d -> faild d
  | Ok entries ->
    checki "one crash dump" 1 (List.length entries);
    let _, e = List.hd entries in
    checkb "dump tagged with the crash code" true
      (e.Fz.Corpus.diag_code = Some "DP-SRV-CRASH");
    check Alcotest.string "dump pins the expression" "x + y"
      (match e.Fz.Corpus.case.Fz.Case.ports with
      | [ (_, expr, _) ] -> Dp_expr.Ast.to_string expr
      | _ -> "?"));
  let stats = S.Server.stats_json t in
  checkb "crash counted" true
    (get_int [ "supervisor"; "crashes" ] stats = Some 1);
  checkb "restart counted" true
    (get_int [ "supervisor"; "restarts" ] stats = Some 1);
  checkb "dump counted" true
    (get_int [ "supervisor"; "crash_dumps" ] stats = Some 1)

let server_breaker_opens_under_crash_storm () =
  (* every worker tick panics: two crashes exceed [max_crashes = 1] and
     open the breaker, so the 3rd request is rejected at admission *)
  let configure c =
    {
      c with
      S.Server.chaos = Some (chaos_only ~every:1 S.Chaos.Worker_panic);
      supervisor = { tiny_backoff with max_crashes = 1; cooldown_s = 30.0 };
    }
  in
  with_server ~configure @@ fun socket t ->
  let code r = Option.get (get_str [ "error"; "code" ] r) in
  check Alcotest.string "1st crash" "DP-SRV-CRASH"
    (code (rpc socket (synth_json ~id:1 ())));
  check Alcotest.string "2nd crash" "DP-SRV-CRASH"
    (code (rpc socket (synth_json ~id:2 ())));
  check Alcotest.string "breaker open" "DP-SRV-OVERLOAD"
    (code (rpc socket (synth_json ~id:3 ())));
  let stats = S.Server.stats_json t in
  check Alcotest.string "breaker state" "open"
    (Option.get (get_str [ "supervisor"; "breaker" ] stats));
  checkb "rejection counted" true
    (get_int [ "supervisor"; "rejected" ] stats = Some 1)

let breaker_half_open_cycle () =
  (* the state machine itself, without server scheduling noise *)
  let policy =
    {
      S.Supervisor.default_policy with
      max_crashes = 2;
      cooldown_s = 0.05;
      backoff_base_s = 0.001;
      backoff_max_s = 0.01;
    }
  in
  let sup = S.Supervisor.create ~policy ~log:ignore () in
  let admit () = S.Supervisor.admit sup in
  checkb "closed admits" true (admit () = Ok false);
  for _ = 1 to 3 do
    ignore (S.Supervisor.record_crash sup ~trial:false)
  done;
  checkb "opens past the intensity limit" true
    (S.Supervisor.breaker_state sup = S.Supervisor.Open);
  (match admit () with
  | Error d ->
    check Alcotest.string "overload code" "DP-SRV-OVERLOAD" d.Dp_diag.Diag.code
  | Ok _ -> Alcotest.fail "open breaker admitted work");
  Thread.delay 0.08;
  (* cooldown elapsed: exactly one probe goes through *)
  checkb "half-open admits one trial" true (admit () = Ok true);
  checkb "half-open state" true
    (S.Supervisor.breaker_state sup = S.Supervisor.Half_open);
  checkb "second probe rejected while trial in flight" true
    (Result.is_error (admit ()));
  (* trial crash re-opens; next cooldown's trial success closes *)
  ignore (S.Supervisor.record_crash sup ~trial:true);
  checkb "trial crash re-opens" true
    (S.Supervisor.breaker_state sup = S.Supervisor.Open);
  Thread.delay 0.08;
  checkb "re-probes after second cooldown" true (admit () = Ok true);
  S.Supervisor.record_success sup ~trial:true;
  checkb "trial success closes" true
    (S.Supervisor.breaker_state sup = S.Supervisor.Closed);
  checkb "closed again admits normally" true (admit () = Ok false)

let server_deadline_expires_in_queue () =
  (* one worker, stalled by chaos on every job: a queued request with a
     small deadline must fail fast with DP-SRV-DEADLINE, not synthesize *)
  let configure c =
    {
      c with
      S.Server.workers = 1;
      chaos =
        Some { S.Chaos.seed = 1; every = 1; slow_s = 0.4; faults = [ S.Chaos.Slow_worker ] };
    }
  in
  with_server ~configure @@ fun socket _ ->
  let blocker =
    Thread.create (fun () -> ignore (rpc_res socket (synth_json ~id:1 ()))) ()
  in
  Thread.delay 0.1;
  (* the worker is mid-stall; this request waits in the queue past its
     100 ms deadline *)
  let r = rpc socket (synth_json ~id:2 ~deadline_ms:100.0 ()) in
  Thread.join blocker;
  checkb "failed" true (get_bool [ "ok" ] r = Some false);
  check Alcotest.string "deadline code" "DP-SRV-DEADLINE"
    (Option.get (get_str [ "error"; "code" ] r))

let server_torn_response_is_typed () =
  (* [every = 4] with sequential requests tears every other respond tick:
     sanity rpc (ticks 1-2), retrying call (attempt ticks 3-4 torn, 5-6
     ok), direct rpc (ticks 7-8 torn -> DP-PROTO003) *)
  let configure c =
    { c with S.Server.chaos = Some (chaos_only ~every:4 S.Chaos.Truncate_response) }
  in
  with_server ~configure @@ fun socket _ ->
  let r1 = rpc socket (synth_json ~id:1 ()) in
  checkb "sanity ok" true (get_bool [ "ok" ] r1 = Some true);
  (* the retrying client reconnects through the torn attempt *)
  let retry =
    { S.Client.default_retry with attempts = 3; base_backoff_s = 0.001 }
  in
  (match S.Client.call ~retry ~socket (synth_json ~id:2 ()) with
  | Error d -> faild d
  | Ok r -> checkb "retry recovered" true (get_bool [ "ok" ] r = Some true));
  (* without retries, the tear surfaces as the typed truncation code *)
  match rpc_res socket (synth_json ~id:3 ()) with
  | Ok r -> Alcotest.failf "expected a torn response, got %s" (Json.to_string r)
  | Error d ->
    check Alcotest.string "truncation code" "DP-PROTO003" d.Dp_diag.Diag.code

let server_corrupt_cache_entry_is_a_miss () =
  let cache_dir = fresh_dir "cache" in
  let store = Dp_cache.Store.create ~capacity:8 ~dir:cache_dir () in
  let configure c = { c with S.Server.store = Some store } in
  with_server ~configure @@ fun socket t ->
  let r1 = rpc socket (synth_json ()) in
  checkb "seeded" true (get_bool [ "ok" ] r1 = Some true);
  let expected = Json.to_string (Option.get (get [ "result" ] r1)) in
  (* rot every on-disk entry, then force the next lookups through disk *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".dpc" then
        Out_channel.with_open_bin (Filename.concat cache_dir f) (fun oc ->
            Out_channel.output_string oc "rotten bytes"))
    (Sys.readdir cache_dir);
  Dp_cache.Store.invalidate_memory store;
  (* concurrent identical requests: every one must be served fresh and
     byte-identical — never the rotten entry, never a crash *)
  let results = Array.make 4 None in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () -> results.(i) <- Some (rpc_res socket (synth_json ())))
          ())
  in
  List.iter Thread.join threads;
  Array.iter
    (fun r ->
      match r with
      | Some (Ok r) ->
        checkb "ok under corruption" true (get_bool [ "ok" ] r = Some true);
        check Alcotest.string "record identical"
          expected
          (Json.to_string (Option.get (get [ "result" ] r)))
      | Some (Error d) -> faild d
      | None -> Alcotest.fail "thread never delivered")
    results;
  let stats = S.Server.stats_json t in
  checkb "corruption detected and counted" true
    (match get_int [ "cache"; "corrupt" ] stats with
    | Some n -> n >= 1
    | None -> false)

let server_sigterm_graceful () =
  let logged = ref [] in
  let log_lock = Mutex.create () in
  let configure c =
    {
      c with
      S.Server.handle_signals = true;
      log =
        (fun m -> Mutex.protect log_lock (fun () -> logged := m :: !logged));
    }
  in
  let socket = fresh_socket () in
  let t =
    S.Server.start (configure (S.Server.default_config ~socket_path:socket))
  in
  let r = rpc socket (synth_json ()) in
  checkb "served before the signal" true (get_bool [ "ok" ] r = Some true);
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  (* the handler only wakes the accept loop; the drain happens there *)
  S.Server.wait t;
  checkb "socket removed" false (Sys.file_exists socket);
  let lines = Mutex.protect log_lock (fun () -> !logged) in
  checkb "histogram flushed on drain" true
    (List.exists
       (fun l -> String.length l >= 11 && String.sub l 0 11 = "latency_ms:")
       lines);
  checkb "drain summary flushed" true
    (List.exists
       (fun l -> String.length l >= 8 && String.sub l 0 8 = "drained:")
       lines)

let soak_chaos_holds_invariants () =
  let config =
    {
      (S.Soak.default_config ~socket_path:(fresh_socket ())) with
      S.Soak.clients = 3;
      requests_per_client = 12;
      seed = 7;
      workers = 2;
      chaos =
        Some { S.Chaos.default_config with seed = 7; every = 5; slow_s = 0.02 };
      cache_dir = Some (fresh_dir "soak-cache");
      crash_dir = Some (fresh_dir "soak-crash");
      deadline_ms = Some 4000.0;
    }
  in
  let report = S.Soak.run config in
  checki "all requests accounted for" 36 report.S.Soak.requests;
  checki "zero wrong answers" 0 report.S.Soak.wrong_answers;
  checki "zero protocol violations" 0 report.S.Soak.violations;
  checkb "soak passes" true (S.Soak.passed report);
  checkb "some requests succeeded" true (report.S.Soak.ok > 0)

(* ------------------------------------------------------------------ *)
(* Liveness probe and EPIPE-safe writes *)

let server_ping_op () =
  with_server @@ fun socket _ ->
  let r = rpc socket (Json.Obj [ ("id", Json.Int 5); ("op", Json.Str "ping") ]) in
  checkb "ok" true (get_bool [ "ok" ] r = Some true);
  checkb "pong" true (get_bool [ "pong" ] r = Some true);
  checkb "id echoed" true (get_int [ "id" ] r = Some 5)

let lineio_epipe_is_typed () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  let big = String.make (1 lsl 20) 'x' in
  (* the kernel may buffer a write or two before the reset surfaces *)
  let rec go n =
    if n = 0 then Alcotest.fail "EPIPE never surfaced as a typed error"
    else
      match S.Lineio.write_line a big with
      | Ok () -> go (n - 1)
      | Error d ->
        check Alcotest.string "peer-gone code" "DP-PROTO004"
          d.Dp_diag.Diag.code
  in
  go 10;
  Unix.close a

(* ------------------------------------------------------------------ *)
(* Cross-process store safety *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A real key and synthesis result to store under it. *)
let store_fixture () =
  let env =
    Dp_expr.Env.empty
    |> Dp_expr.Env.add_uniform "x" ~width:6
    |> Dp_expr.Env.add_uniform "y" ~width:6
  in
  let expr = Dp_expr.Parse.expr "x*y + 3" in
  let key = Dp_cache.Key.make Dp_flow.Strategy.Fa_aot env expr in
  match Dp_cache.Serve.run (Dp_cache.Serve.request env expr) with
  | Error d -> faild d
  | Ok (o : Dp_cache.Serve.outcome) ->
    let entry tag =
      {
        Dp_cache.Store.fingerprint = Dp_cache.Key.fingerprint key;
        result = o.result;
        verilog = String.make 20000 tag;
      }
    in
    (key, entry)

let store_concurrent_writers_leave_one_whole_entry () =
  let dir = fresh_dir "store-xproc" in
  let key, entry = store_fixture () in
  let payload tag = String.make 20000 tag in
  let writer tag =
    match Unix.fork () with
    | 0 ->
      (* [_exit], never [exit]: Alcotest's at_exit must not run here *)
      (try
         let s = Dp_cache.Store.create ~capacity:4 ~dir () in
         for _ = 1 to 25 do
           Dp_cache.Store.add s key (entry tag)
         done;
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid -> pid
  in
  let pa = writer 'A' in
  let pb = writer 'B' in
  (* a reader racing both writers sees the old entry, the new entry, or
     nothing — never a torn one *)
  let whole v = v = payload 'A' || v = payload 'B' in
  for _ = 1 to 40 do
    let s = Dp_cache.Store.create ~capacity:4 ~dir () in
    (match Dp_cache.Store.find s key with
    | None -> ()
    | Some e ->
      checkb "raced read is whole" true (whole e.Dp_cache.Store.verilog);
      checki "raced read never counts corruption" 0
        (Dp_cache.Store.stats s).Dp_cache.Store.corrupt);
    Thread.delay 0.002
  done;
  let _, st_a = Unix.waitpid [] pa in
  let _, st_b = Unix.waitpid [] pb in
  checkb "writer A exited cleanly" true (st_a = Unix.WEXITED 0);
  checkb "writer B exited cleanly" true (st_b = Unix.WEXITED 0);
  (* exactly one whole, checksummed entry survives *)
  let s = Dp_cache.Store.create ~capacity:4 ~dir () in
  (match Dp_cache.Store.find s key with
  | Some e -> checkb "final entry is one writer's payload, whole" true
                (whole e.Dp_cache.Store.verilog)
  | None -> Alcotest.fail "entry lost after concurrent writes");
  checki "no corruption detected" 0
    (Dp_cache.Store.stats s).Dp_cache.Store.corrupt;
  let files = Sys.readdir dir |> Array.to_list in
  checki "exactly one entry file" 1
    (List.length (List.filter (fun f -> Filename.check_suffix f ".dpc") files));
  checkb "no leaked temp files" true
    (not (List.exists (fun f -> contains_sub f ".tmp.") files))

let store_partial_write_degrades_to_miss () =
  let dir = fresh_dir "store-torn" in
  let key, entry = store_fixture () in
  let s = Dp_cache.Store.create ~capacity:4 ~dir () in
  Dp_cache.Store.add s key (entry 'A');
  let dpc =
    match
      Sys.readdir dir |> Array.to_list
      |> List.find_opt (fun f -> Filename.check_suffix f ".dpc")
    with
    | Some f -> Filename.concat dir f
    | None -> Alcotest.fail "entry never reached disk"
  in
  (* simulate a torn write published without the rename discipline *)
  let len = (Unix.stat dpc).Unix.st_size in
  Unix.truncate dpc (len / 2);
  let s2 = Dp_cache.Store.create ~capacity:4 ~dir () in
  checkb "partial entry is a miss" true (Dp_cache.Store.find s2 key = None);
  checkb "and is counted as corruption" true
    ((Dp_cache.Store.stats s2).Dp_cache.Store.corrupt >= 1)

(* ------------------------------------------------------------------ *)
(* Sharded serving: pool supervision, routing, failover *)

module SP = S.Shard_pool
module R = S.Router

let quick_sup =
  {
    S.Supervisor.max_crashes = 30;
    window_s = 5.0;
    cooldown_s = 0.2;
    backoff_base_s = 0.03;
    backoff_max_s = 0.1;
  }

(* Each shard is a full forked server sharing one disk store. *)
let shard_spawn ~cache_dir =
  SP.Spawn_fork
    (fun ~id:_ ~socket_path ->
      let store = Dp_cache.Store.create ~capacity:32 ~dir:cache_dir () in
      S.Server.run
        {
          (S.Server.default_config ~socket_path) with
          S.Server.store = Some store;
          workers = 1;
          log = ignore;
        })

let with_pool ?(shards = 2) ?(sup = quick_sup) f =
  let base = fresh_socket () in
  let cache_dir = fresh_dir "pool-cache" in
  let pool =
    SP.start
      {
        (SP.default_config ~shards
           ~socket_for:(fun i -> base ^ "." ^ string_of_int i)
           ~spawn:(shard_spawn ~cache_dir))
        with
        SP.health_period_s = 0.05;
        health_timeout_s = 0.4;
        health_failures = 2;
        startup_grace_s = 0.3;
        stable_s = 0.2;
        poll_period_s = 0.02;
        grace_s = 3.0;
        supervisor = sup;
        log = ignore;
      }
  in
  Fun.protect
    ~finally:(fun () -> SP.shutdown pool)
    (fun () ->
      checkb "pool came up" true (SP.wait_all_up ~timeout_s:20.0 pool);
      f base pool)

let with_sharded ?shards ?sup f =
  with_pool ?shards ?sup @@ fun base pool ->
  let rt =
    R.start
      {
        (R.default_config ~socket_path:base ~pool) with
        R.forward_timeout_s = 10.0;
        log = ignore;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      R.request_shutdown rt;
      R.wait rt)
    (fun () -> f base pool rt)

let wait_for ?(timeout_s = 15.0) ~msg pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.fail msg
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let home_params rt =
  match
    P.synth_params
      ~vars:
        [
          P.var_spec "x" ~width:8;
          P.var_spec "y" ~width:8;
          P.var_spec "z" ~width:8;
        ]
      "x*y + z"
  with
  | Ok p -> R.home_of rt p
  | Error d -> faild d

let router_failover_and_rejoin () =
  (* long backoff: a killed shard stays down long enough to observe the
     failover window deterministically *)
  let sup = { quick_sup with S.Supervisor.backoff_base_s = 0.5; backoff_max_s = 0.5 } in
  with_sharded ~sup @@ fun base pool rt ->
  let r1 = rpc base (synth_json ~id:1 ()) in
  checkb "served via home shard" true (get_bool [ "ok" ] r1 = Some true);
  let home = home_params rt in
  checkb "killed the home shard" true (SP.signal_shard pool home Sys.sigkill);
  (* during the backoff window the request must fail over, not fail *)
  let r2 = rpc base (synth_json ~id:2 ()) in
  checkb "served during downtime" true (get_bool [ "ok" ] r2 = Some true);
  check Alcotest.string "failover answer byte-identical"
    (Json.to_string (Option.get (get [ "result" ] r1)))
    (Json.to_string (Option.get (get [ "result" ] r2)));
  let failovers () =
    Option.value ~default:0 (get_int [ "router"; "failovers" ] (R.stats_json rt))
  in
  checkb "failover counted" true (failovers () >= 1);
  (* the shard restarts with backoff and rejoins routing *)
  wait_for ~msg:"killed shard never restarted" (fun () ->
      SP.is_up pool home && fst (SP.counters pool) >= 1);
  wait_for ~msg:"restarted shard never answered" (fun () ->
      match rpc_res base (synth_json ~id:3 ()) with
      | Ok r -> get_bool [ "ok" ] r = Some true
      | Error _ -> false);
  let before = failovers () in
  let r4 = rpc base (synth_json ~id:4 ()) in
  checkb "served after rejoin" true (get_bool [ "ok" ] r4 = Some true);
  checki "home shard serves again — no new failover" before (failovers ())

let router_all_shards_down_is_typed () =
  let sup =
    { quick_sup with S.Supervisor.backoff_base_s = 2.0; backoff_max_s = 2.0 }
  in
  with_sharded ~sup @@ fun base pool _rt ->
  ignore (SP.signal_shard pool 0 Sys.sigkill);
  ignore (SP.signal_shard pool 1 Sys.sigkill);
  (* give the monitor a beat to notice both deaths *)
  Thread.delay 0.2;
  let r = rpc base (synth_json ()) in
  checkb "typed failure" true (get_bool [ "ok" ] r = Some false);
  check Alcotest.string "retryable shard-down code" "DP-SRV-SHARD-DOWN"
    (Option.get (get_str [ "error"; "code" ] r))

let pool_health_kills_hung_shard () =
  with_pool ~shards:1 @@ fun _base pool ->
  (* age past the startup grace so failed probes score *)
  Thread.delay 0.4;
  checkb "stopped the shard" true (SP.signal_shard pool 0 Sys.sigstop);
  (* waitpid cannot see a stopped child; only the ping timeout can — the
     health check must SIGKILL it and the monitor must restart it *)
  wait_for ~msg:"hung shard never health-killed" (fun () ->
      snd (SP.counters pool) >= 1);
  checkb "restarted after the health kill" true
    (SP.wait_all_up ~timeout_s:20.0 pool)

let router_aggregates_stats () =
  with_sharded ~shards:3 @@ fun base _pool _rt ->
  let exprs = [ "x*y + z"; "x + y"; "x - z"; "y*z + x"; "x*z"; "y + z" ] in
  List.iteri
    (fun i e ->
      let r = rpc base (synth_json ~expr:e ~id:i ()) in
      checkb "ok" true (get_bool [ "ok" ] r = Some true))
    exprs;
  let r = rpc base (Json.Obj [ ("id", Json.Int 99); ("op", Json.Str "stats") ]) in
  checkb "ok" true (get_bool [ "ok" ] r = Some true);
  (* worker counters summed across all three shards *)
  checkb "served sums across shards" true
    (get_int [ "stats"; "served" ] r = Some (List.length exprs));
  checkb "every request routed by the front" true
    (get_int [ "stats"; "router"; "routed" ] r = Some (List.length exprs));
  checkb "no failovers on a healthy fleet" true
    (get_int [ "stats"; "router"; "failovers" ] r = Some 0);
  checkb "all shards reporting" true
    (get_int [ "stats"; "router"; "shards_reporting" ] r = Some 3);
  checkb "pool section present" true
    (get_int [ "stats"; "shard_pool"; "shards" ] r = Some 3);
  checkb "cache stores summed" true
    (get_int [ "stats"; "cache"; "stores" ] r = Some (List.length exprs));
  match Option.bind (get [ "stats"; "latency_ms" ] r) Json.to_list with
  | Some buckets ->
    let total =
      List.fold_left
        (fun acc b -> acc + Option.value (get_int [ "count" ] b) ~default:0)
        0 buckets
    in
    checki "latency histograms merge positionally" (List.length exprs) total
  | None -> Alcotest.fail "missing aggregated latency histogram"

let soak_sharded_kill_chaos_holds_invariants () =
  (* scale the run until the pacer has landed at least two shard kills —
     wall-clock-paced chaos cannot promise a count for a fixed load *)
  let rec attempt tries per_client =
    let config =
      {
        (S.Soak.default_config ~socket_path:(fresh_socket ())) with
        S.Soak.clients = 4;
        requests_per_client = per_client;
        seed = 11;
        workers = 1;
        shards = 3;
        shard_chaos =
          Some
            {
              S.Chaos.default_config with
              seed = 11;
              every = 1;
              faults = S.Chaos.shard_faults;
            };
        cache_dir = Some (fresh_dir "soak-shard-cache");
      }
    in
    let report = S.Soak.run config in
    (* the safety invariants hold at any scale *)
    checki "all requests accounted for" (4 * per_client)
      report.S.Soak.requests;
    checki "zero wrong answers" 0 report.S.Soak.wrong_answers;
    checki "zero protocol violations" 0 report.S.Soak.violations;
    checkb "soak passes" true (S.Soak.passed report);
    checkb "some requests succeeded" true (report.S.Soak.ok > 0);
    if report.S.Soak.shard_kills >= 2 then report
    else if tries >= 3 then
      Alcotest.failf "chaos landed %d kills after %d runs"
        report.S.Soak.shard_kills tries
    else attempt (tries + 1) (per_client * 2)
  in
  let report = attempt 1 40 in
  checkb "kills were followed by restarts" true
    (report.S.Soak.shard_restarts >= report.S.Soak.shard_kills - 1)

(* ------------------------------------------------------------------ *)
(* Reentrant wall-clock budgets *)

let spin_until deadline_s =
  let t0 = Unix.gettimeofday () in
  let rec go acc =
    if Unix.gettimeofday () -. t0 > deadline_s then acc
    else go (acc + (acc mod 7))
  in
  go 1

let budget_code f =
  match f () with
  | _ -> "no-exception"
  | exception Dp_diag.Diag.E d -> d.Dp_diag.Diag.code

let nested_inner_timeout_fires () =
  let outer = { Fz.Budget.unlimited with timeout_s = 10.0 } in
  let inner = { Fz.Budget.unlimited with timeout_s = 0.05 } in
  let inner_code = ref "unset" in
  let v =
    Fz.Budget.with_timeout outer (fun () ->
        (inner_code :=
           budget_code (fun () ->
               Fz.Budget.with_timeout inner (fun () -> spin_until 5.0)));
        (* the outer budget survives the inner expiry *)
        42)
  in
  check Alcotest.string "inner code" "DP-BUDGET001" !inner_code;
  checki "outer completes" 42 v;
  (* process timer fully restored *)
  let it = Unix.getitimer Unix.ITIMER_REAL in
  checkb "timer disarmed" true (it.Unix.it_value = 0.0)

let nested_outer_timeout_wins () =
  let outer = { Fz.Budget.unlimited with timeout_s = 0.05 } in
  let inner = { Fz.Budget.unlimited with timeout_s = 10.0 } in
  let t0 = Unix.gettimeofday () in
  let code =
    budget_code (fun () ->
        Fz.Budget.with_timeout outer (fun () ->
            Fz.Budget.with_timeout inner (fun () -> spin_until 5.0)))
  in
  check Alcotest.string "outer's DP-BUDGET001 propagates" "DP-BUDGET001" code;
  checkb "fired promptly, not after the inner allowance" true
    (Unix.gettimeofday () -. t0 < 5.0)

let budget_reusable_after_nesting () =
  nested_inner_timeout_fires ();
  (* plain single-level use still works after nested traffic *)
  let b = { Fz.Budget.unlimited with timeout_s = 0.05 } in
  let code =
    budget_code (fun () -> Fz.Budget.with_timeout b (fun () -> spin_until 5.0))
  in
  check Alcotest.string "still fires" "DP-BUDGET001" code;
  checki "and still completes fast work" 7
    (Fz.Budget.with_timeout b (fun () -> 7))

let concurrent_budgets_are_independent () =
  (* two threads, each under its own budget: the short one times out, the
     long one finishes — no cross-thread misattribution *)
  let short_code = ref "unset" in
  let long_result = ref 0 in
  let short =
    Thread.create
      (fun () ->
        short_code :=
          budget_code (fun () ->
              Fz.Budget.with_timeout
                { Fz.Budget.unlimited with timeout_s = 0.05 }
                (fun () -> spin_until 5.0)))
      ()
  in
  let long =
    Thread.create
      (fun () ->
        long_result :=
          Fz.Budget.with_timeout
            { Fz.Budget.unlimited with timeout_s = 10.0 }
            (fun () ->
              ignore (spin_until 0.2);
              99))
      ()
  in
  Thread.join short;
  Thread.join long;
  check Alcotest.string "short thread timed out" "DP-BUDGET001" !short_code;
  checki "long thread unaffected" 99 !long_result

(* ------------------------------------------------------------------ *)
(* Resource governance: admission control and the per-request governor *)

let server_admission_rejects_oversized () =
  let configure c =
    { c with S.Server.budget = { Fz.Budget.unlimited with max_rows = 4 } }
  in
  with_server ~configure @@ fun socket _ ->
  (* x*y alone lowers to an addend matrix taller than 4 rows: refused at
     the door, before a worker is occupied *)
  let r = rpc socket (synth_json ~expr:"x*y + z" ()) in
  checkb "rejected" true (get_bool [ "ok" ] r = Some false);
  check Alcotest.string "code" "DP-SRV-TOOBIG"
    (Option.get (get_str [ "error"; "code" ] r));
  (* a short sum fits the same row budget: the server keeps serving *)
  let ok =
    rpc socket
      (Json.Obj
         [
           ("id", Json.Int 2);
           ("op", Json.Str "synth");
           ("expr", Json.Str "x + 1");
           ( "vars",
             Json.List [ Json.Obj [ ("name", Json.Str "x"); ("width", Json.Int 2) ] ] );
         ])
  in
  checkb "small request admitted" true (get_bool [ "ok" ] ok = Some true);
  let st = rpc socket (Json.Obj [ ("id", Json.Int 3); ("op", Json.Str "stats") ]) in
  checki "toobig counted" 1
    (Option.value
       (get_int [ "stats"; "governance"; "toobig_rejects" ] st)
       ~default:(-1))

let server_memory_watermark_sheds () =
  (* A one-word watermark is always exceeded: every new request is shed
     with the typed overload envelope instead of deepening the pressure *)
  let configure c = { c with S.Server.mem_watermark_words = Some 1 } in
  with_server ~configure @@ fun socket _ ->
  let r = rpc socket (synth_json ()) in
  checkb "shed" true (get_bool [ "ok" ] r = Some false);
  check Alcotest.string "code" "DP-SRV-OVERLOAD"
    (Option.get (get_str [ "error"; "code" ] r));
  check Alcotest.string "reason" "memory"
    (Option.value (get_str [ "error"; "context"; "reason" ] r) ~default:"?");
  let st = rpc socket (Json.Obj [ ("id", Json.Int 2); ("op", Json.Str "stats") ]) in
  checkb "shed counted" true
    (match get_int [ "stats"; "governance"; "mem_sheds" ] st with
    | Some n -> n >= 1
    | None -> false)

let server_mem_squeeze_aborts_and_recovers () =
  (* Ticks: each request is one worker tick and one respond tick, so
     [every = 3] with only [Mem_squeeze] configured fires on the 2nd
     request's worker tick (squeezing that job under a one-word
     watermark) and on the 3rd request's respond tick, where the class
     is not applicable — a fully deterministic schedule. *)
  let configure c =
    { c with S.Server.chaos = Some (chaos_only ~every:3 S.Chaos.Mem_squeeze) }
  in
  with_server ~configure @@ fun socket _ ->
  let r1 = rpc socket (synth_json ()) in
  checkb "first request serves" true (get_bool [ "ok" ] r1 = Some true);
  let r2 = rpc socket (synth_json ~id:2 ()) in
  checkb "squeezed request fails typed" true (get_bool [ "ok" ] r2 = Some false);
  check Alcotest.string "code" "DP-BUDGET-MEM"
    (Option.get (get_str [ "error"; "code" ] r2));
  (* the worker survived the abort and the cache entry is whole: the
     same request now serves from cache, byte-identical *)
  let r3 = rpc socket (synth_json ~id:3 ()) in
  checkb "worker reused" true (get_bool [ "ok" ] r3 = Some true);
  checkb "cached" true (get_bool [ "cached" ] r3 = Some true);
  check Alcotest.string "byte-identical after abort"
    (Json.to_string (Option.get (get [ "result" ] r1)))
    (Json.to_string (Option.get (get [ "result" ] r3)));
  let st = rpc socket (Json.Obj [ ("id", Json.Int 4); ("op", Json.Str "stats") ]) in
  checki "cancellation counted" 1
    (Option.value (get_int [ "stats"; "governance"; "cancelled" ] st) ~default:(-1));
  checki "no worker crash" 0
    (Option.value (get_int [ "stats"; "supervisor"; "crashes" ] st) ~default:(-1))

let suite =
  [
    case "json: printer/parser round-trips" json_round_trips;
    case "json: rejects malformed input" json_rejects_malformed;
    case "json: deterministic float emission" json_floats_deterministic;
    case "protocol: parses a synth request" proto_parses_synth;
    case "protocol: DP-PROTO001/002 on bad input" proto_error_codes;
    case "protocol: client request round-trips" proto_request_round_trips;
    case "server: synth, cache hit, canonical reuse" server_synth_and_cache;
    case "server: batch keeps order, errors in place" server_batch_order_and_errors;
    case "server: survives malformed lines" server_survives_bad_input;
    case "server: stats counters and histogram" server_stats;
    case "server: per-request cell budget" server_enforces_cell_budget;
    case "server: shutdown op stops everything" server_shutdown_op;
    case "server: worker crash -> typed error, dump, restart"
      server_crash_restart_and_dump;
    case "server: crash storm opens the breaker"
      server_breaker_opens_under_crash_storm;
    case "supervisor: open/half-open/close cycle" breaker_half_open_cycle;
    case "server: deadline expires in the queue" server_deadline_expires_in_queue;
    case "server: torn response is typed; retry recovers"
      server_torn_response_is_typed;
    case "server: corrupted cache entry is a miss under load"
      server_corrupt_cache_entry_is_a_miss;
    case "server: SIGTERM drains and flushes the histogram"
      server_sigterm_graceful;
    case "soak: chaos run holds the safety invariants"
      soak_chaos_holds_invariants;
    case "server: ping answers inline" server_ping_op;
    case "lineio: EPIPE surfaces as DP-PROTO004" lineio_epipe_is_typed;
    case "store: concurrent cross-process writers never tear an entry"
      store_concurrent_writers_leave_one_whole_entry;
    case "store: a partial disk write is a miss"
      store_partial_write_degrades_to_miss;
    case "shards: failover during downtime, restart, rejoin"
      router_failover_and_rejoin;
    case "shards: every shard down is a typed retryable error"
      router_all_shards_down_is_typed;
    case "shards: hung shard is health-killed and restarted"
      pool_health_kills_hung_shard;
    case "shards: router aggregates stats across the fleet"
      router_aggregates_stats;
    case "soak: sharded run with shard kills holds the invariants"
      soak_sharded_kill_chaos_holds_invariants;
    case "budget: nested inner timeout fires alone" nested_inner_timeout_fires;
    case "server: admission rejects oversized requests"
      server_admission_rejects_oversized;
    case "server: memory watermark sheds new work"
      server_memory_watermark_sheds;
    case "server: mem-squeeze chaos aborts typed, worker recovers"
      server_mem_squeeze_aborts_and_recovers;
    case "budget: nested outer timeout wins" nested_outer_timeout_wins;
    case "budget: reusable after nesting" budget_reusable_after_nesting;
    case "budget: concurrent budgets independent" concurrent_budgets_are_independent;
  ]
