open Dp_netlist
open Dp_bitmatrix
open Dp_core
open Helpers

let unit = Dp_tech.Tech.unit_delay

(* ------------------------------------------------------------------ *)
(* SC_T on single columns *)

let reduced_arrivals netlist (kept, carries) =
  ( List.sort Float.compare (List.map (Netlist.arrival netlist) kept),
    List.sort Float.compare (List.map (Netlist.arrival netlist) carries) )

let test_sc_t_small_column () =
  let n = mk_netlist ~tech:unit () in
  let col = mk_column n [| 1.0; 2.0; 3.0; 4.0 |] in
  let kept, carries = Sc_t.reduce_column n col in
  checki "two kept" 2 (List.length kept);
  checki "one carry" 1 (List.length carries);
  (* FA(1,2,3): sum@5, carry@4; kept = {sum@5, input@4} *)
  let kept_t, carry_t = reduced_arrivals n (kept, carries) in
  check (Alcotest.list (Alcotest.float 1e-9)) "kept" [ 4.0; 5.0 ] kept_t;
  check (Alcotest.list (Alcotest.float 1e-9)) "carries" [ 4.0 ] carry_t

let test_sc_t_three_uses_ha () =
  let n = mk_netlist ~tech:unit () in
  let col = mk_column n [| 1.0; 2.0; 9.0 |] in
  let kept, carries = Sc_t.reduce_column n col in
  (* HA(1,2): sum@4 (ha_ds = 2), carry@3; kept = {sum@4, 9.0} *)
  let kept_t, carry_t = reduced_arrivals n (kept, carries) in
  check (Alcotest.list (Alcotest.float 1e-9)) "kept" [ 4.0; 9.0 ] kept_t;
  check (Alcotest.list (Alcotest.float 1e-9)) "carries" [ 3.0 ] carry_t

let mk_column_fresh =
  let counter = ref 0 in
  fun n arrivals ->
    incr counter;
    let name = Printf.sprintf "col%d" !counter in
    Array.to_list
      (Netlist.add_input n name ~width:(Array.length arrivals) ~arrival:arrivals)

let test_sc_t_small_columns_pass_through () =
  let n = mk_netlist ~tech:unit () in
  List.iter
    (fun arrivals ->
      let netlist_before = Netlist.cell_count n in
      let col = mk_column_fresh n arrivals in
      let kept, carries = Sc_t.reduce_column n col in
      checki "no cells" netlist_before (Netlist.cell_count n);
      checki "kept all" (Array.length arrivals) (List.length kept);
      checki "no carries" 0 (List.length carries))
    [ [| 1.0 |]; [| 1.0; 2.0 |] ]

(* Lemma 1: SC_T's sorted sum and carry arrival vectors are pointwise <=
   those of ANY allocation.  Brute-forced over all allocations of random
   columns. *)
let test_lemma1_dominance () =
  let rng = Random.State.make [| 42 |] in
  for _trial = 1 to 25 do
    let m = 3 + Random.State.int rng 4 in
    let arrivals = Array.init m (fun _ -> float_of_int (Random.State.int rng 12)) in
    let n = mk_netlist ~tech:unit () in
    let col = mk_column n arrivals in
    let kept, carries = Sc_t.reduce_column n col in
    let ours_final, ours_carries = reduced_arrivals n (kept, carries) in
    let alternatives =
      enumerate_timed ~ds:2.0 ~dc:1.0 ~ha_ds:2.0 ~ha_dc:1.0 (Array.to_list arrivals)
    in
    (* Lemma 1, in the delay-relevant form: SC_T minimizes both the latest
       remaining signal (which drives the final adder) and the latest carry
       (which drives the next column).  Full sorted-vector pointwise
       dominance does not hold verbatim: a suboptimal allocation can leave
       an early original untouched, or mix late addends into the FA so its
       HA emits one very early carry — without ever beating SC_T's maxima,
       which is what Theorem 1 uses (checked end-to-end below). *)
    let max_of l = List.fold_left Float.max neg_infinity l in
    let our_max = max_of ours_final and our_carry_max = max_of ours_carries in
    List.iter
      (fun alt ->
        let alt_max = max_of alt.final in
        if our_max > alt_max +. 1e-9 then
          Alcotest.failf "max dominance violated: %.1f > %.1f" our_max alt_max;
        let alt_carry_max = max_of alt.carries in
        if our_carry_max > alt_carry_max +. 1e-9 then
          Alcotest.failf "carry max dominance violated: %.1f > %.1f"
            our_carry_max alt_carry_max)
      alternatives
  done

(* ------------------------------------------------------------------ *)
(* FA_AOT end-to-end timing optimality (Theorem 1), brute-forced on small
   multi-column matrices with a pure float model. *)

let rec enumerate_matrix ~ds ~dc ~ha_ds ~ha_dc columns =
  (* columns: float list array; returns all possible max-final-signal times
     over the column-by-column allocation space *)
  match columns with
  | [] -> [ neg_infinity ]
  | col :: rest ->
    let allocations = enumerate_timed ~ds ~dc ~ha_ds ~ha_dc col in
    List.concat_map
      (fun alloc ->
        let col_max = List.fold_left Float.max neg_infinity alloc.final in
        let rest =
          match rest with
          | [] ->
            if alloc.carries = [] then []
            else [ alloc.carries ]
          | next :: others -> (next @ alloc.carries) :: others
        in
        List.map (Float.max col_max) (enumerate_matrix ~ds ~dc ~ha_ds ~ha_dc rest))
      allocations

(* Theorem 1 claims FA_AOT is delay-optimal.  Exhaustive search over the
   column-sequential allocation space confirms this almost always, but rare
   instances (about 0.3% of random small matrices) beat the greedy by up to
   Dc: the HA-on-exactly-three rule can make a carry one Dc later than a
   cleverer mix.  We therefore assert near-optimality — never worse than
   brute force by more than Dc, and exactly optimal in the vast majority —
   and record the deviation in EXPERIMENTS.md. *)
let test_fa_aot_optimal_vs_bruteforce () =
  let rng = Random.State.make [| 1234 |] in
  let suboptimal = ref 0 in
  for _trial = 1 to 25 do
    let cols = 2 + Random.State.int rng 2 in
    let heights = Array.init cols (fun _ -> 1 + Random.State.int rng 4) in
    let arrivals =
      Array.map (fun h -> List.init h (fun _ -> float_of_int (Random.State.int rng 9))) heights
    in
    (* our implementation *)
    let n = mk_netlist ~tech:unit () in
    let matrix = Matrix.create () in
    Array.iteri
      (fun j col ->
        List.iteri
          (fun i t ->
            let name = Printf.sprintf "i%d_%d" j i in
            let bit = (Netlist.add_input n name ~width:1 ~arrival:[| t |]).(0) in
            Matrix.add matrix ~weight:j bit)
          col)
      arrivals;
    Fa_aot.allocate n matrix;
    let ours =
      List.fold_left
        (fun acc j ->
          List.fold_left
            (fun acc net -> Float.max acc (Netlist.arrival n net))
            acc (Matrix.column matrix j))
        neg_infinity
        (List.init (Matrix.width matrix) Fun.id)
    in
    (* brute force *)
    let best =
      List.fold_left Float.min infinity
        (enumerate_matrix ~ds:2.0 ~dc:1.0 ~ha_ds:2.0 ~ha_dc:1.0
           (Array.to_list arrivals))
    in
    if ours < best -. 1e-9 then
      Alcotest.failf "greedy %.1f beat exhaustive search %.1f?!" ours best;
    if ours > best +. 1.0 +. 1e-9 then
      Alcotest.failf "greedy %.1f worse than best %.1f by more than Dc" ours best;
    if ours > best +. 1e-9 then incr suboptimal
  done;
  checkb
    (Printf.sprintf "suboptimal in %d/25 trials (expect ~0)" !suboptimal)
    true (!suboptimal <= 2)

(* ------------------------------------------------------------------ *)
(* Fig. 2: the three allocation strategies on the paper's example *)

let fig2_matrix () =
  (* col-0: x0@7, y0@2, z0@3, w0@2 (listed order = Wallace's fixed order);
     col-1: x1@7, y1@5, w1@4 *)
  let n = mk_netlist ~tech:unit () in
  let add name ~arrival = (Netlist.add_input n name ~width:1 ~arrival:[| arrival |]).(0) in
  let x0 = add "x0" ~arrival:7.0 and y0 = add "y0" ~arrival:2.0 in
  let z0 = add "z0" ~arrival:3.0 and w0 = add "w0" ~arrival:2.0 in
  let x1 = add "x1" ~arrival:7.0 and y1 = add "y1" ~arrival:5.0 in
  let w1 = add "w1" ~arrival:4.0 in
  let m = Matrix.create () in
  List.iter (fun b -> Matrix.add m ~weight:0 b) [ x0; y0; z0; w0 ];
  List.iter (fun b -> Matrix.add m ~weight:1 b) [ x1; y1; w1 ];
  n, m

let matrix_max_arrival n m =
  List.fold_left
    (fun acc j ->
      List.fold_left
        (fun acc net -> Float.max acc (Netlist.arrival n net))
        acc (Matrix.column m j))
    neg_infinity
    (List.init (Matrix.width m) Fun.id)

let test_fig2_wallace () =
  let n, m = fig2_matrix () in
  Wallace.allocate n m;
  (* fixed selection x0,y0,z0 -> sum@9: the paper's 9 ns *)
  checkf "delay 9" 9.0 (matrix_max_arrival n m)

let test_fig2_column_isolation () =
  let n, m = fig2_matrix () in
  Column_isolation.allocate n m;
  (* col-0 takes the 3 earliest inputs (y0,w0,z0), col-1 takes x1,y1,w1:
     s1 = 7 + 2 = 9, the paper's 9 ns *)
  checkf "delay 9" 9.0 (matrix_max_arrival n m)

let test_fig2_fa_aot () =
  let n, m = fig2_matrix () in
  Fa_aot.allocate n m;
  (* column interaction: col-1's FA consumes c0@4 instead of x1@7; every
     signal arrives by 7 (the paper reports 8; see EXPERIMENTS.md) *)
  checkf "delay 7" 7.0 (matrix_max_arrival n m);
  checkb "strictly better than isolation" true (7.0 < 9.0)

(* ------------------------------------------------------------------ *)
(* SC_LP on single columns *)

let test_sc_lp_selects_largest_q () =
  (* probs 0.1 0.2 0.3 0.4: |q| = .4 .3 .2 .1 — the FA takes the first
     three (Fig. 4's T2 shape), so the weakest addend survives *)
  let n = mk_netlist ~tech:unit () in
  let col = mk_column ~probs:[| 0.1; 0.2; 0.3; 0.4 |] n (Array.make 4 0.0) in
  let kept, _ = Sc_lp.reduce_column n col in
  checki "two kept" 2 (List.length kept);
  let survivor_probs = List.map (Netlist.prob n) kept in
  checkb "p=0.4 survives" true
    (List.exists (fun p -> Float.abs (p -. 0.4) < 1e-9) survivor_probs)

let test_fig4_energy_values () =
  (* The paper's Fig. 4 with Ws = Wc = 1: p = 0.1/0.2/0.3/0.4.  Under the
     paper's own q-formulas the exact energies are E(T1) = 0.41648 (FA on
     the three weakest, x2 x3 x4) and E(T2) = 0.32918 (FA on the three
     strongest, x1 x2 x3); the printed 0.411/0.400 appear to be rounded
     from a slightly different evaluation, but the qualitative claim —
     largest-|q| selection dissipates less — is exactly what we verify. *)
  let q1 = -0.4 and q2 = -0.3 and q3 = -0.2 and q4 = -0.1 in
  let e qx qy qz =
    let qs = Dp_power.Prob.fa_sum_q qx qy qz in
    let qc = Dp_power.Prob.fa_carry_q qx qy qz in
    (0.25 -. (qs *. qs)) +. (0.25 -. (qc *. qc))
  in
  let t1 = e q2 q3 q4 and t2 = e q1 q2 q3 in
  checkf_eps 1e-5 "T1" 0.41648 t1;
  checkf_eps 1e-5 "T2" 0.32918 t2;
  checkb "T2 consumes less" true (t2 < t1)

let test_sc_lp_odd_column_allocates_ha_first () =
  let n = mk_netlist ~tech:unit () in
  let col = mk_column ~probs:[| 0.1; 0.2; 0.3; 0.4; 0.45 |] n (Array.make 5 0.0) in
  let kept, carries = Sc_lp.reduce_column n col in
  checki "two kept" 2 (List.length kept);
  checki "two carries" 2 (List.length carries);
  (* the first allocated cell must be the HA (pseudo-zero has max |q|),
     pairing the two strongest addends p=0.1 (|q|=.4) and p=0.2 (|q|=.3) *)
  let first = Netlist.cell n 0 in
  checkb "first is HA" true (Dp_tech.Cell_kind.equal first.kind Dp_tech.Cell_kind.Ha);
  let in_probs = Array.map (Netlist.prob n) first.inputs in
  Array.sort Float.compare in_probs;
  checkf "strongest" 0.1 in_probs.(0);
  checkf "second strongest" 0.2 in_probs.(1)

(* Property 2: with Wc = 0, SC_LP minimizes E_switching over all
   allocations.  Brute-forced with the pure q-algebra model. *)
let sc_lp_energy netlist ~ws ~wc =
  let total = ref 0.0 in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      match c.kind with
      | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha ->
        let outs = Netlist.cell_output_nets netlist id in
        let act port = Dp_power.Switching.net_activity netlist outs.(port) in
        total := !total +. (ws *. act 0) +. (wc *. act 1)
      | Dp_tech.Cell_kind.C42 | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63
      | Dp_tech.Cell_kind.C73 | Dp_tech.Cell_kind.And_n _
      | Dp_tech.Cell_kind.Or_n _ | Dp_tech.Cell_kind.Xor_n _
      | Dp_tech.Cell_kind.Not | Dp_tech.Cell_kind.Buf -> ())
    netlist;
  !total

let test_property2_wc_zero_optimality () =
  let rng = Random.State.make [| 77 |] in
  let failures = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    let m = 3 + Random.State.int rng 3 in
    let probs = Array.init m (fun _ -> 0.05 +. Random.State.float rng 0.9) in
    let n = mk_netlist ~tech:unit () in
    let col = mk_column ~probs n (Array.make m 0.0) in
    let _kept, _carries = Sc_lp.reduce_column n col in
    let ours = sc_lp_energy n ~ws:1.0 ~wc:0.0 in
    let qs = Array.to_list (Array.map (fun p -> p -. 0.5) probs) in
    let best =
      List.fold_left
        (fun acc (alt : power_alloc) -> Float.min acc alt.energy)
        infinity
        (enumerate_power ~ws:1.0 ~wc:0.0 qs)
    in
    if ours > best +. 1e-9 then incr failures
  done;
  checki "SC_LP optimal when Wc = 0" 0 !failures

(* ------------------------------------------------------------------ *)
(* Whole-matrix comparisons on random matrices *)

let random_matrix rng n ~cols ~max_height =
  let matrix = Matrix.create () in
  for j = 0 to cols - 1 do
    let h = 1 + Random.State.int rng max_height in
    for i = 0 to h - 1 do
      let name = Printf.sprintf "b%d_%d" j i in
      let arrival = [| float_of_int (Random.State.int rng 10) |] in
      let prob = [| 0.05 +. Random.State.float rng 0.9 |] in
      let bit = (Netlist.add_input n name ~width:1 ~arrival ~prob).(0) in
      Matrix.add matrix ~weight:j bit
    done
  done;
  matrix

let test_fa_aot_never_slower_than_fixed_schemes () =
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 15 do
    let seed = Random.State.int rng 10000 in
    let run allocate =
      let rng' = Random.State.make [| seed |] in
      let n = mk_netlist ~tech:unit () in
      let m = random_matrix rng' n ~cols:4 ~max_height:6 in
      allocate n m;
      matrix_max_arrival n m
    in
    let aot = run Fa_aot.allocate in
    let wallace = run Wallace.allocate in
    let dadda = run Dadda.allocate in
    let iso = run Column_isolation.allocate in
    if aot > wallace +. 1e-9 then Alcotest.failf "AOT %f > Wallace %f" aot wallace;
    if aot > dadda +. 1e-9 then Alcotest.failf "AOT %f > Dadda %f" aot dadda;
    if aot > iso +. 1e-9 then Alcotest.failf "AOT %f > Col-Iso %f" aot iso
  done

let test_fa_alp_beats_random_on_average () =
  let rng = Random.State.make [| 4242 |] in
  let total_alp = ref 0.0 and total_rand = ref 0.0 in
  for _ = 1 to 12 do
    let seed = Random.State.int rng 10000 in
    let run allocate =
      let rng' = Random.State.make [| seed |] in
      let n = mk_netlist () in
      let m = random_matrix rng' n ~cols:4 ~max_height:6 in
      allocate n m;
      Dp_power.Switching.tree_switching n
    in
    total_alp := !total_alp +. run Fa_alp.allocate;
    total_rand := !total_rand +. run (Fa_random.allocate ~seed:1)
  done;
  checkb
    (Printf.sprintf "ALP %.3f <= random %.3f" !total_alp !total_rand)
    true (!total_alp <= !total_rand)

let test_all_reducers_reach_two_rows () =
  let rng = Random.State.make [| 31337 |] in
  List.iter
    (fun allocate ->
      let n = mk_netlist () in
      let m = random_matrix rng n ~cols:5 ~max_height:9 in
      allocate n m;
      checkb "reduced" true (Matrix.is_reduced m))
    [
      Fa_aot.allocate ?tie_break:None;
      Fa_alp.allocate ?tie_break:None;
      Fa_random.allocate ~seed:3;
      Wallace.allocate;
      Dadda.allocate;
      Column_isolation.allocate;
    ]

(* Reductions preserve the denoted sum: simulate before/after matrices. *)
let test_reduction_preserves_value () =
  List.iter
    (fun allocate ->
      let n = mk_netlist () in
      (* one 6-bit input feeds addends across columns *)
      let bits = Netlist.add_input n "v" ~width:6 in
      let m = Matrix.create () in
      Array.iteri
        (fun i bit ->
          Matrix.add m ~weight:(i mod 3) bit;
          if i mod 2 = 0 then Matrix.add m ~weight:((i + 1) mod 3) bit)
        bits;
      let reference = Matrix.create () in
      for j = 0 to Matrix.width m - 1 do
        List.iter (fun net -> Matrix.add reference ~weight:j net) (Matrix.column m j)
      done;
      allocate n m;
      for v = 0 to 63 do
        let values = Dp_sim.Simulator.run n ~assign:(fun _ -> v) in
        checki "sum preserved" (Matrix.value reference values) (Matrix.value m values)
      done)
    [ Fa_aot.allocate ?tie_break:None; Fa_alp.allocate ?tie_break:None;
      Wallace.allocate; Dadda.allocate; Column_isolation.allocate ]

let test_sweep_rejects_bad_reducer () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:3 in
  let m = Matrix.create () in
  Array.iter (fun b -> Matrix.add m ~weight:0 b) bits;
  Alcotest.check_raises "bad reducer"
    (Invalid_argument "Reduce.sweep: reducer left more than two addends")
    (fun () -> Reduce.sweep n m ~reducer:(fun _ col -> col, []))

let suite =
  [
    case "SC_T: 4-addend column" test_sc_t_small_column;
    case "SC_T: exactly 3 uses an HA" test_sc_t_three_uses_ha;
    case "SC_T: short columns pass through" test_sc_t_small_columns_pass_through;
    case "Lemma 1: SC_T dominates all allocations" test_lemma1_dominance;
    case "Theorem 1: FA_AOT near-optimal (brute force)" test_fa_aot_optimal_vs_bruteforce;
    case "Fig. 2(a): Wallace delay 9" test_fig2_wallace;
    case "Fig. 2(b): column isolation delay 9" test_fig2_column_isolation;
    case "Fig. 2(c): column interaction wins" test_fig2_fa_aot;
    case "SC_LP: selects largest |q|" test_sc_lp_selects_largest_q;
    case "Fig. 4: energy values 0.411 vs 0.400" test_fig4_energy_values;
    case "SC_LP: odd column allocates HA first" test_sc_lp_odd_column_allocates_ha_first;
    case "Property 2: optimal when Wc = 0" test_property2_wc_zero_optimality;
    case "FA_AOT never slower than fixed schemes" test_fa_aot_never_slower_than_fixed_schemes;
    case "FA_ALP beats FA_random on average" test_fa_alp_beats_random_on_average;
    case "all reducers reach two rows" test_all_reducers_reach_two_rows;
    case "reduction preserves the denoted sum" test_reduction_preserves_value;
    case "sweep rejects a bad reducer" test_sweep_rejects_bad_reducer;
  ]
