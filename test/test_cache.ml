(* The caching layer: canonicalizer soundness, key/digest stability, LRU
   behaviour, the on-disk store's corruption defenses, and the central
   serving property — a cache hit is byte-identical to fresh synthesis. *)

open Helpers
module C = Dp_cache
module Fz = Dp_fuzz
module Ast = Dp_expr.Ast
module Env = Dp_expr.Env

let e = Dp_expr.Parse.expr

let env_xyz =
  Env.empty
  |> Env.add_uniform "x" ~width:8
  |> Env.add_uniform "y" ~width:8
  |> Env.add_uniform "z" ~width:8

(* ------------------------------------------------------------------ *)
(* Canonicalizer *)

(* Random fuzzer expressions: the canonical form must evaluate exactly
   like the original for random assignments (exact native-int evaluation;
   commutativity/associativity hold over the wrap-around ring, so this is
   the modulo-2^W property for every W at once). *)
let canon_eval_equivalent () =
  let rng = Random.State.make [| 2026 |] in
  for i = 0 to 199 do
    let case = Fz.Gen.case rng i in
    match Fz.Case.single_port case with
    | None -> ()
    | Some (expr, _) ->
      let canon = C.Canon.canonicalize expr in
      for _ = 1 to 20 do
        let assignment =
          List.map
            (fun (v : Fz.Case.var_spec) ->
              (v.name, Random.State.int rng (1 lsl min v.width 20)))
            case.vars
        in
        let a = Dp_expr.Eval.eval_alist assignment expr in
        let b = Dp_expr.Eval.eval_alist assignment canon in
        if a <> b then
          Alcotest.failf "case %d: %s evaluates to %d, canonical %s to %d" i
            (Ast.to_string expr) a (Ast.to_string canon) b
      done
  done

let canon_idempotent () =
  let rng = Random.State.make [| 7 |] in
  for i = 0 to 199 do
    let case = Fz.Gen.case rng i in
    match Fz.Case.single_port case with
    | None -> ()
    | Some (expr, _) ->
      let once = C.Canon.canonicalize expr in
      let twice = C.Canon.canonicalize once in
      if once <> twice then
        Alcotest.failf "case %d not idempotent: %s -> %s -> %s" i
          (Ast.to_string expr) (Ast.to_string once) (Ast.to_string twice)
  done

(* The netlist synthesized from the canonical form still computes the
   original expression — the end-to-end soundness the cache rests on. *)
let canon_netlist_equivalent () =
  List.iter
    (fun src ->
      let expr = e src in
      let canon = C.Canon.canonicalize expr in
      let width = Dp_expr.Range.natural_width env_xyz canon in
      let r = Dp_flow.Synth.run ~width Dp_flow.Strategy.Fa_aot env_xyz canon in
      match
        Dp_sim.Equiv.check_random ~trials:200 r.netlist expr ~output:r.output
          ~width:r.width
      with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "%s (canonical %s): %a" src (Ast.to_string canon)
          Dp_sim.Equiv.pp_mismatch m)
    [
      "x + y - z";
      "z*y + y*x - 3*z";
      "x - y - z + y*y";
      "0 - x + 5*z - y*x";
      "(x + y)*(z - y) + x^2";
    ]

let canon_merges_reorderings () =
  List.iter
    (fun (a, b) ->
      let ca = C.Canon.canonicalize (e a) and cb = C.Canon.canonicalize (e b) in
      if ca <> cb then
        Alcotest.failf "%s and %s canonicalize apart: %s vs %s" a b
          (Ast.to_string ca) (Ast.to_string cb))
    [
      ("x + y", "y + x");
      ("x*y + z", "z + y*x");
      ("x + y - z", "0 - z + y + x");
      ("2*x*y", "y*2*x");
      ("x - y", "0 - y + x");
      ("x + 0", "x");
      ("1*x*y", "y*x");
    ]

(* ------------------------------------------------------------------ *)
(* Keys and digests *)

let key ?width ?(strategy = Dp_flow.Strategy.Fa_aot) ?adder ?(env = env_xyz) src =
  C.Key.make ?width ?adder strategy env (e src)

let digest_stable_across_reorder () =
  check Alcotest.string "operand order" (C.Key.digest (key "x*y + z - x"))
    (C.Key.digest (key "z - x + y*x"));
  check Alcotest.string "explicit width" (C.Key.digest (key ~width:12 "x + y"))
    (C.Key.digest (key ~width:12 "y + x"))

let digest_separates_requests () =
  let d = C.Key.digest in
  checkb "distinct exprs" true (d (key "x + y") <> d (key "x * y"));
  checkb "strategy matters" true
    (d (key "x + y") <> d (key ~strategy:Dp_flow.Strategy.Dadda "x + y"));
  checkb "adder matters" true
    (d (key "x + y") <> d (key ~adder:Dp_adders.Adder.Ripple "x + y"));
  checkb "width matters" true (d (key "x + y") <> d (key ~width:4 "x + y"));
  (* the arrival profile is part of the key: same expr, different timing *)
  let late =
    Env.empty
    |> Env.add_uniform "x" ~width:8 ~arrival:3.0
    |> Env.add_uniform "y" ~width:8
    |> Env.add_uniform "z" ~width:8
  in
  checkb "arrival profile matters" true
    (d (key "x + y") <> d (key ~env:late "x + y"));
  (* ... but only variables the expression references count *)
  let extra = Env.add_uniform "unused" ~width:4 env_xyz in
  check Alcotest.string "unused bindings ignored" (d (key "x + y"))
    (d (key ~env:extra "x + y"))

(* ------------------------------------------------------------------ *)
(* In-memory LRU *)

let outcome ?store src =
  match C.Serve.run ?store (C.Serve.request env_xyz (e src)) with
  | Ok o -> o
  | Error d -> Alcotest.failf "%s: %s" src (Dp_diag.Diag.to_string d)

let lru_evicts_in_order () =
  let store = C.Store.create ~capacity:2 () in
  let o1 = outcome ~store "x + 1" in
  let o2 = outcome ~store "x + 2" in
  let o3 = outcome ~store "x + 3" in
  (* capacity 2: the oldest (o1) is gone, o3 is most recent *)
  check
    Alcotest.(list string)
    "after 3 inserts" [ o3.digest; o2.digest ]
    (C.Store.mem_digests store);
  checki "evictions" 1 (C.Store.stats store).evictions;
  (* a hit refreshes recency: touch o2, insert o4, o3 is the victim *)
  let o2' = outcome ~store "x + 2" in
  checkb "o2 served from cache" true o2'.cached;
  let o4 = outcome ~store "x + 4" in
  check
    Alcotest.(list string)
    "LRU victim is the stale entry" [ o4.digest; o2.digest ]
    (C.Store.mem_digests store);
  (* the evicted entry synthesizes again as a miss *)
  let o1' = outcome ~store "x + 1" in
  checkb "evicted entry is a miss" false o1'.cached;
  check Alcotest.string "same digest either way" o1.digest o1'.digest

(* ------------------------------------------------------------------ *)
(* On-disk store *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpsyn-cache-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let disk_round_trip () =
  with_tmpdir @@ fun dir ->
  let store1 = C.Store.create ~dir () in
  let fresh = outcome ~store:store1 "x*y + z" in
  (* a brand-new store over the same directory: cold memory, warm disk *)
  let store2 = C.Store.create ~dir () in
  let reloaded = outcome ~store:store2 "z + y*x" in
  checkb "served from disk" true reloaded.cached;
  checki "disk hit counted" 1 (C.Store.stats store2).disk_hits;
  check Alcotest.string "digest" fresh.digest reloaded.digest;
  check Alcotest.string "verilog byte-identical" fresh.verilog reloaded.verilog;
  (* promoted into memory: the next lookup is a memory hit *)
  let again = outcome ~store:store2 "x*y + z" in
  checkb "promoted" true again.cached;
  checki "memory hit" 1 (C.Store.stats store2).hits

let corrupt_entry_degrades_to_miss () =
  with_tmpdir @@ fun dir ->
  let store1 = C.Store.create ~dir () in
  let _ = outcome ~store:store1 "x*y + z" in
  let path =
    (* ignore the advisory .lock files the cross-process write
       discipline leaves behind; only the entry itself matters *)
    match
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".dpc")
    with
    | [ name ] -> Filename.concat dir name
    | files -> Alcotest.failf "expected 1 cache entry, found %d" (List.length files)
  in
  (* flip one byte in the marshalled body: the checksum must catch it *)
  let bytes = In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string in
  let i = Bytes.length bytes - 10 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x55));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
  let store2 = C.Store.create ~dir () in
  let o = outcome ~store:store2 "x*y + z" in
  checkb "resynthesized" false o.cached;
  checki "corruption counted" 1 (C.Store.stats store2).corrupt;
  (* the re-synthesis overwrote the bad file; a third store reads it fine *)
  let store3 = C.Store.create ~dir () in
  checkb "healed" true (outcome ~store:store3 "x*y + z").cached

let garbage_file_degrades_to_miss () =
  with_tmpdir @@ fun dir ->
  let store1 = C.Store.create ~dir () in
  let good = outcome ~store:store1 "x + y" in
  let path = Filename.concat dir (good.digest ^ ".dpc") in
  Out_channel.with_open_bin path (fun oc -> output_string oc "not a cache entry");
  let store2 = C.Store.create ~dir () in
  checkb "garbage is a miss" false (outcome ~store:store2 "x + y").cached;
  checki "counted" 1 (C.Store.stats store2).corrupt

(* A structurally corrupt netlist that survives the checksum (it was
   checksummed after corruption) must still be rejected — by lint. *)
let lint_rejects_corrupt_netlist () =
  with_tmpdir @@ fun dir ->
  let o = outcome "x*y + z" in
  let k = C.Key.make Dp_flow.Strategy.Fa_aot env_xyz (e "x*y + z") in
  (match Dp_verify.Inject.apply ~seed:3 o.result.netlist Dp_verify.Inject.Drop_gate with
  | Some _ -> ()
  | None -> Alcotest.fail "no injection site");
  let writer = C.Store.create ~dir () in
  C.Store.add writer k
    {
      C.Store.fingerprint = C.Key.fingerprint k;
      result = o.result;
      verilog = o.verilog;
    };
  let store = C.Store.create ~dir () in
  let served = outcome ~store "x*y + z" in
  checkb "lint-rejected entry resynthesizes" false served.cached;
  checki "counted as corrupt" 1 (C.Store.stats store).corrupt

(* ------------------------------------------------------------------ *)
(* Serving: cached == fresh, byte for byte *)

let serve_request ?width ~strategy ~adder src =
  C.Serve.request ~width ~strategy ~adder env_xyz (e src)

let cached_identical_to_fresh () =
  let store = C.Store.create () in
  List.iter
    (fun strategy ->
      List.iter
        (fun adder ->
          let r = serve_request ~strategy ~adder "x*y + z - y" in
          let fresh, cached =
            match (C.Serve.run ~store r, C.Serve.run ~store r) with
            | Ok a, Ok b -> (a, b)
            | Error d, _ | _, Error d ->
              Alcotest.fail (Dp_diag.Diag.to_string d)
          in
          let label =
            Printf.sprintf "%s/%s"
              (Dp_flow.Strategy.name strategy)
              (Dp_adders.Adder.name adder)
          in
          checkb (label ^ " first is fresh") false fresh.cached;
          checkb (label ^ " second is cached") true cached.cached;
          check Alcotest.string (label ^ " verilog") fresh.verilog cached.verilog;
          (* ... and both match a direct Synth.run of the canonical form *)
          let direct =
            Dp_flow.Synth.run ~adder ~width:fresh.width strategy env_xyz
              (C.Canon.canonicalize (e "x*y + z - y"))
          in
          check Alcotest.string
            (label ^ " matches direct synthesis")
            (Dp_netlist.Verilog.emit direct.netlist)
            cached.verilog)
        Dp_adders.Adder.all)
    Dp_flow.Strategy.all

(* Requests that differ only by operand order share one entry. *)
let canonical_class_shares_entry () =
  let store = C.Store.create () in
  let first = outcome ~store "x + y*z" in
  let second = outcome ~store "z*y + x" in
  checkb "reordered request hits" true second.cached;
  check Alcotest.string "same digest" first.digest second.digest;
  check Alcotest.string "same verilog" first.verilog second.verilog;
  checki "one entry" 1 (C.Store.stats store).entries

let suite =
  [
    case "canon: eval-equivalent on random exprs" canon_eval_equivalent;
    case "canon: idempotent" canon_idempotent;
    case "canon: netlist still computes the original" canon_netlist_equivalent;
    case "canon: reorderings merge" canon_merges_reorderings;
    case "key: digest stable across operand reorder" digest_stable_across_reorder;
    case "key: digest separates distinct requests" digest_separates_requests;
    case "store: LRU evicts in recency order" lru_evicts_in_order;
    case "store: disk round-trip" disk_round_trip;
    case "store: corrupt entry degrades to miss" corrupt_entry_degrades_to_miss;
    case "store: garbage file degrades to miss" garbage_file_degrades_to_miss;
    case "store: lint rejects corrupt netlist" lint_rejects_corrupt_netlist;
    case "serve: cached identical to fresh (all strategies x adders)"
      cached_identical_to_fresh;
    case "serve: canonical class shares one entry" canonical_class_shares_entry;
  ]
