(* Signed (two's-complement) inputs: the lowering gives the MSB of a signed
   factor negative weight, so Baugh-Wooley-style signed multipliers fall
   out of the ordinary signed-digit machinery.  These tests exercise the
   whole pipeline on signed operands, exhaustively where feasible. *)

open Dp_expr
open Helpers

let signed_env bindings =
  List.fold_left
    (fun env (name, width, signed) -> Env.add_uniform name ~width ~signed env)
    Env.empty bindings

let signed_of env x = Env.mem x env && Env.is_signed x env

let exhaustive_equiv strategy expr_s bindings width () =
  let env = signed_env bindings in
  let expr = Parse.expr expr_s in
  let r = Dp_flow.Synth.run strategy env expr ~width in
  match
    Dp_sim.Equiv.check_exhaustive ~signed:(signed_of env) r.netlist expr
      ~output:"out" ~width
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %a" expr_s Dp_sim.Equiv.pp_mismatch m

let strategies =
  [
    Dp_flow.Strategy.Fa_aot;
    Dp_flow.Strategy.Fa_alp;
    Dp_flow.Strategy.Wallace;
    Dp_flow.Strategy.Csa_opt;
    Dp_flow.Strategy.Conventional;
  ]

let all_strategies expr_s bindings width () =
  List.iter
    (fun strategy -> exhaustive_equiv strategy expr_s bindings width ())
    strategies

let test_signed_identity =
  all_strategies "x" [ ("x", 4, true) ] 6

let test_signed_add =
  all_strategies "x + y" [ ("x", 4, true); ("y", 4, true) ] 5

let test_signed_sub =
  all_strategies "x - y" [ ("x", 4, true); ("y", 4, true) ] 5

let test_signed_mul =
  (* Baugh-Wooley: 4x4 signed product, full natural width *)
  all_strategies "x*y" [ ("x", 4, true); ("y", 4, true) ] 8

let test_signed_square =
  all_strategies "x^2" [ ("x", 4, true) ] 7

let test_mixed_signedness =
  all_strategies "x*y + z" [ ("x", 4, true); ("y", 3, false); ("z", 4, true) ] 8

let test_signed_poly =
  all_strategies "x^2 - 2*x*y + y^2" [ ("x", 3, true); ("y", 3, true) ] 7

let test_signed_one_bit =
  (* a 1-bit signed variable takes values {0, -1} *)
  all_strategies "x*y" [ ("x", 1, true); ("y", 3, true) ] 4

let test_signed_range () =
  let env = signed_env [ ("x", 4, true) ] in
  let r = Range.of_expr env (Ast.Var "x") in
  checki "lo" (-8) (r : Range.t).lo;
  checki "hi" 7 r.hi;
  checki "natural width of x*y" 8
    (Range.natural_width
       (signed_env [ ("x", 4, true); ("y", 4, true) ])
       (Parse.expr "x*y"))

let test_signed_pattern_interpretation () =
  checki "0b1111 = -1" (-1) (Eval.signed_of_pattern ~width:4 15);
  checki "0b0111 = 7" 7 (Eval.signed_of_pattern ~width:4 7);
  checki "0b1000 = -8" (-8) (Eval.signed_of_pattern ~width:4 8);
  checki "width 1: 1 = -1" (-1) (Eval.signed_of_pattern ~width:1 1)

let test_signed_msb_complemented_in_lowering () =
  (* Baugh-Wooley structure: the partial products involving exactly one
     MSB must appear complemented (negative digit) in the matrix *)
  let env = signed_env [ ("x", 3, true); ("y", 3, false) ] in
  let n = mk_netlist () in
  let m = Dp_bitmatrix.Lower.lower n env (Parse.expr "x*y") ~width:6 in
  let has_not = ref false in
  for j = 0 to Dp_bitmatrix.Matrix.width m - 1 do
    List.iter
      (fun net ->
        match Dp_netlist.Netlist.driver n net with
        | Dp_netlist.Netlist.From_cell { cell; port = _ } -> (
          match (Dp_netlist.Netlist.cell n cell).kind with
          | Dp_tech.Cell_kind.Not -> has_not := true
          | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha
          | Dp_tech.Cell_kind.C42 | Dp_tech.Cell_kind.C53
          | Dp_tech.Cell_kind.C63 | Dp_tech.Cell_kind.C73
          | Dp_tech.Cell_kind.And_n _ | Dp_tech.Cell_kind.Or_n _
          | Dp_tech.Cell_kind.Xor_n _ | Dp_tech.Cell_kind.Buf -> ())
        | Dp_netlist.Netlist.From_input _ | Dp_netlist.Netlist.From_const _ -> ())
      (Dp_bitmatrix.Matrix.column m j)
  done;
  checkb "complemented partial products present" true !has_not

let test_signed_env_pp () =
  let env = signed_env [ ("x", 4, true) ] in
  let s = Fmt.str "%a" Env.pp env in
  checkb "signed marker" true
    (Option.is_some (String.index_opt s 's'))

let suite =
  [
    case "signed identity (all strategies, exhaustive)" test_signed_identity;
    case "signed addition" test_signed_add;
    case "signed subtraction" test_signed_sub;
    case "signed multiplication (Baugh-Wooley)" test_signed_mul;
    case "signed square" test_signed_square;
    case "mixed signed/unsigned product" test_mixed_signedness;
    case "signed (x-y)^2 polynomial" test_signed_poly;
    case "1-bit signed variable" test_signed_one_bit;
    case "signed ranges" test_signed_range;
    case "two's-complement pattern interpretation" test_signed_pattern_interpretation;
    case "lowering complements MSB partial products" test_signed_msb_complemented_in_lowering;
    case "env printer marks signedness" test_signed_env_pp;
  ]
