(* Resource governance: cooperative cancellation at every checkpoint
   class, abort-leaves-no-torn-state (no partial disk-cache entry,
   lint-clean partial netlists, byte-identical retry), and the
   crypto-catalog acceptance properties — a governed crypto synthesis
   aborts within two checkpoint intervals, and the same request without
   limits completes and passes equivalence. *)

open Helpers
module Gov = Dp_gov.Gov
module Diag = Dp_diag.Diag
module C = Dp_cache
module Netlist = Dp_netlist.Netlist

(* ------------------------------------------------------------------ *)
(* Scratch stores *)

let fresh_dir tag =
  let path = Filename.temp_file ("dpsyn-" ^ tag) "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let dpc_files dir =
  List.filter
    (fun f -> Filename.check_suffix f ".dpc")
    (Array.to_list (Sys.readdir dir))

(* The lightest crypto-catalog member: a real Montgomery-step shape, but
   cheap enough to synthesize many times in a unit test. *)
let design = Dp_designs.Crypto.montgomery_step

let request_of (d : Dp_designs.Design.t) =
  C.Serve.request ~width:(Some d.width) d.env d.expr

(* [Serve.run] converts a mid-synthesis governor trip into [Error]
   (through [Synth.run_res]), but [with_ambient]'s exit re-raises the
   sticky diagnostic so a cancellation is never lost — accept either
   shape and return the diagnostic. *)
let run_governed gov ~store req =
  match Gov.with_ambient gov (fun () -> C.Serve.run ~store req) with
  | Ok _ -> None
  | Error d -> Some d
  | exception Diag.E d -> Some d

(* ------------------------------------------------------------------ *)
(* Retry semantics of the diagnostic family *)

let code_classification () =
  List.iter
    (fun c -> checkb (c ^ " is a cancel code") true (Gov.is_cancel_code c))
    [ "DP-CANCEL001"; "DP-CANCEL002"; "DP-CANCEL003"; "DP-BUDGET-MEM" ];
  List.iter
    (fun c -> checkb (c ^ " is not a cancel code") false (Gov.is_cancel_code c))
    [ "DP-BUDGET001"; "DP-BUDGET002"; "DP-SRV-TOOBIG"; "DP-ENV003" ];
  List.iter
    (fun c -> checkb (c ^ " retryable") true (Gov.retryable c))
    [ "DP-CANCEL001"; "DP-CANCEL002"; "DP-BUDGET-MEM" ];
  (* the request itself exceeds the budget: retrying cannot help *)
  checkb "DP-CANCEL003 not retryable" false (Gov.retryable "DP-CANCEL003")

(* ------------------------------------------------------------------ *)
(* A fault aimed at each checkpoint class trips exactly there, and the
   abort leaves no partial disk-cache entry. *)

let site_diag site d =
  check Alcotest.string "code" "DP-CANCEL002" d.Diag.code;
  check Alcotest.string "site context" (Gov.site_name site)
    (Option.value (List.assoc_opt "site" d.Diag.context) ~default:"?")

(* Sites polled inside the synthesis flow itself. *)
let fault_in_flow_sites () =
  List.iter
    (fun site ->
      let dir = fresh_dir "gov-site" in
      let store = C.Store.create ~dir () in
      let gov = Gov.create ~poll_every:1 ~fault:(fun s _ -> s = site) () in
      (match run_governed gov ~store (request_of design) with
      | None ->
        Alcotest.failf "site %s: synthesis completed under an injected fault"
          (Gov.site_name site)
      | Some d -> site_diag site d);
      (* no torn state: nothing was published to the disk cache *)
      checkb "no partial cache entry" true (dpc_files dir = []);
      checki "no stores counted" 0 (C.Store.stats store).C.Store.stores;
      (* stickiness: the same governor keeps refusing with the same code *)
      match run_governed gov ~store (request_of design) with
      | Some d -> check Alcotest.string "sticky code" "DP-CANCEL002" d.Diag.code
      | None -> Alcotest.fail "tripped governor allowed a second run")
    [ Gov.Lower; Gov.Reduce; Gov.Netlist ]

(* Sites polled by the analysis passes over a finished netlist: build
   clean (the fault never matches during synthesis), then aim the pass
   at the netlist's captured governor. *)
let fault_in_analysis_sites () =
  let build site =
    let gov = Gov.create ~poll_every:1 ~fault:(fun s _ -> s = site) () in
    let r =
      Gov.with_ambient gov (fun () ->
          Dp_flow.Synth.run ~width:design.width Dp_flow.Strategy.Fa_aot
            design.env design.expr)
    in
    (gov, r)
  in
  let expect site f =
    match f () with
    | _ -> Alcotest.failf "site %s: pass completed under an injected fault"
             (Gov.site_name site)
    | exception Diag.E d -> site_diag site d
  in
  let _, r = build Gov.Sta in
  expect Gov.Sta (fun () -> Dp_timing.Sta.arrivals r.netlist);
  let _, r = build Gov.Prob in
  expect Gov.Prob (fun () -> Dp_power.Prob.probabilities r.netlist);
  let _, r = build Gov.Sim in
  expect Gov.Sim (fun () ->
      Dp_sim.Equiv.check_random ~trials:4 r.netlist design.expr
        ~output:r.output ~width:r.width)

(* ------------------------------------------------------------------ *)
(* A mid-loop abort leaves the partial netlist structurally sound:
   every published cell is complete, so the lint error sweep is clean. *)

let abort_leaves_lint_clean_netlist () =
  let gov = Gov.create ~poll_every:1 ~fault:(fun s _ -> s = Gov.Reduce) () in
  let nl =
    Gov.with_ambient gov (fun () -> Netlist.create ~tech:Dp_tech.Tech.lcb_like)
  in
  let matrix =
    Dp_bitmatrix.Lower.lower nl design.env design.expr ~width:design.width
  in
  (match Dp_core.Fa_aot.allocate nl matrix with
  | _ -> Alcotest.fail "reduction completed under an injected fault"
  | exception Diag.E d -> site_diag Gov.Reduce d);
  checkb "partial netlist has error-severity lint findings" true
    (Dp_verify.Lint.errors (Dp_verify.Lint.run nl) = [])

(* ------------------------------------------------------------------ *)
(* Acceptance: a crypto synthesis under an expired deadline aborts
   within two checkpoint intervals; the same request without limits
   completes, passes equivalence, and a retry is byte-identical. *)

let deadline_abort_then_clean_retry () =
  let dir = fresh_dir "gov-deadline" in
  let store = C.Store.create ~dir () in
  let gov = Gov.create ~deadline_s:0.0 () in
  (match run_governed gov ~store (request_of design) with
  | Some d ->
    check Alcotest.string "code" "DP-CANCEL001" d.Diag.code;
    checkb "retryable" true (Gov.retryable d.Diag.code)
  | None -> Alcotest.fail "expired deadline did not abort");
  checkb "aborted within 2 checkpoint intervals" true (Gov.polls gov <= 2);
  checkb "no partial cache entry" true (dpc_files dir = []);
  (* the same request, same store, no governor: completes cleanly *)
  let o1 =
    match C.Serve.run ~store (request_of design) with
    | Ok o -> o
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  checkb "fresh synthesis" false o1.cached;
  (* equivalence against the catalog expression *)
  (match
     Dp_sim.Equiv.check_random ~trials:64 o1.result.netlist design.expr
       ~output:o1.result.output ~width:o1.result.width
   with
  | Ok () -> ()
  | Error m -> Alcotest.failf "equivalence: %a" Dp_sim.Equiv.pp_mismatch m);
  (* byte-identity: a store never touched by the aborted run agrees *)
  let dir2 = fresh_dir "gov-clean" in
  let o2 =
    match C.Serve.run ~store:(C.Store.create ~dir:dir2 ()) (request_of design) with
    | Ok o -> o
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  check Alcotest.string "digest identical" o1.digest o2.digest;
  check Alcotest.string "verilog byte-identical" o1.verilog o2.verilog;
  (* and the post-abort store serves the entry it cached *)
  match C.Serve.run ~store (request_of design) with
  | Ok o3 ->
    checkb "cached" true o3.cached;
    check Alcotest.string "cache hit byte-identical" o1.verilog o3.verilog
  | Error d -> Alcotest.fail (Diag.to_string d)

let memory_watermark_abort () =
  let dir = fresh_dir "gov-mem" in
  let store = C.Store.create ~dir () in
  let gov = Gov.create ~max_heap_words:1 ~poll_every:1 () in
  (match run_governed gov ~store (request_of design) with
  | Some d ->
    check Alcotest.string "code" "DP-BUDGET-MEM" d.Diag.code;
    checkb "retryable" true (Gov.retryable d.Diag.code)
  | None -> Alcotest.fail "one-word watermark did not abort");
  checkb "no partial cache entry" true (dpc_files dir = [])

let cell_budget_abort_mid_loop () =
  let gov = Gov.create ~max_cells:64 ~poll_every:1 () in
  match run_governed gov ~store:(C.Store.create ()) (request_of design) with
  | Some d ->
    check Alcotest.string "code" "DP-CANCEL003" d.Diag.code;
    checkb "not retryable" false (Gov.retryable d.Diag.code)
  | None -> Alcotest.fail "64-cell budget did not abort a crypto design"

(* ------------------------------------------------------------------ *)
(* Cross-thread cancellation is sticky and never lost, and an untripped
   governor never retracts a completed result. *)

let external_cancel_never_lost () =
  let gov = Gov.create () in
  Gov.cancel ~reason:"operator abort" gov;
  (match Gov.with_ambient gov (fun () -> 42) with
  | _ -> Alcotest.fail "cancelled governor returned a result"
  | exception Diag.E d ->
    check Alcotest.string "code" "DP-CANCEL002" d.Diag.code);
  (* idempotent: the first diagnostic wins *)
  Gov.cancel ~reason:"second caller" gov;
  (match Gov.cancelled gov with
  | Some d ->
    check Alcotest.string "first reason wins" "operator abort"
      (Option.value (List.assoc_opt "reason" d.Diag.context) ~default:"?")
  | None -> Alcotest.fail "sticky flag lost");
  (* an untripped governor is invisible *)
  checki "clean governor passes results through" 7
    (Gov.with_ambient (Gov.create ()) (fun () -> 7))

let suite =
  [
    case "gov: cancel-code classification and retryability" code_classification;
    case "gov: fault trips at each in-flow checkpoint class, no torn cache"
      fault_in_flow_sites;
    case "gov: fault trips in STA/probability/simulation passes"
      fault_in_analysis_sites;
    case "gov: mid-loop abort leaves a lint-clean partial netlist"
      abort_leaves_lint_clean_netlist;
    case "gov: crypto deadline abort within 2 intervals, byte-identical retry"
      deadline_abort_then_clean_retry;
    case "gov: memory watermark aborts with DP-BUDGET-MEM" memory_watermark_abort;
    case "gov: cell budget aborts mid-loop with DP-CANCEL003"
      cell_budget_abort_mid_loop;
    case "gov: external cancel is sticky and never lost" external_cancel_never_lost;
  ]
