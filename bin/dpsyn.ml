(* dpsyn — the command-line front end: parse an arithmetic expression with
   per-input bit-widths/arrival-times/probabilities, synthesize it with a
   chosen strategy, and report delay/area/power or emit Verilog/DOT.

   Examples:
     dpsyn synth -e "x^2 + x + y" -v x:8:0.7 -v y:8 --strategy fa_aot
     dpsyn synth -e "a*c - b*d" -v a:16 -v b:16 -v c:16 -v d:16 \
           --verilog out.v --check
     dpsyn compare -e "x + y - z + x*y - y*z + 10" -v x:8 -v y:8 -v z:8
     dpsyn designs
     dpsyn design IDCT --strategy csa_opt *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Argument parsing *)

let parse_var_spec spec =
  (* name:width[s][:arrival[:prob]] — every field validated here so a bad
     spec fails at the command line with a precise message instead of
     deep in the flow (or, for probabilities, not at all).  A trailing
     [s] on the width marks the variable as signed (two's complement). *)
  let err fmt = Fmt.kstr (fun s -> Error (`Msg (spec ^ ": " ^ s))) fmt in
  let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e in
  let width_of s =
    let n = String.length s in
    let signed = n > 0 && (s.[n - 1] = 's' || s.[n - 1] = 'S') in
    let s = if signed then String.sub s 0 (n - 1) else s in
    match int_of_string_opt s with
    | None -> err "width %S is not an integer" s
    | Some w when w < 1 -> err "width must be >= 1 (got %d)" w
    | Some w -> Ok (w, signed)
  in
  let arrival_of s =
    match float_of_string_opt s with
    | None -> err "arrival time %S is not a number" s
    | Some t when not (Float.is_finite t) -> err "arrival time must be finite"
    | Some t when t < 0.0 -> err "arrival time must be >= 0 (got %g)" t
    | Some t -> Ok t
  in
  let prob_of s =
    match float_of_string_opt s with
    | None -> err "probability %S is not a number" s
    | Some p when not (p >= 0.0 && p <= 1.0) ->
      err "probability must be within [0,1] (got %g)" p
    | Some p -> Ok p
  in
  let checked name w t p =
    if name = "" then err "empty variable name"
    else
      let* w, signed = width_of w in
      let* t = match t with None -> Ok 0.0 | Some t -> arrival_of t in
      let* p = match p with None -> Ok 0.5 | Some p -> prob_of p in
      Ok (name, w, signed, t, p)
  in
  match String.split_on_char ':' spec with
  | [ name; w ] -> checked name w None None
  | [ name; w; t ] -> checked name w (Some t) None
  | [ name; w; t; p ] -> checked name w (Some t) (Some p)
  | _ -> Error (`Msg (spec ^ ": expected name:width[s][:arrival[:prob]]"))

let var_conv =
  let print ppf (name, w, signed, t, p) =
    Fmt.pf ppf "%s:%d%s:%g:%g" name w (if signed then "s" else "") t p
  in
  Arg.conv (parse_var_spec, print)

let expr_conv =
  let parse s =
    match Dp_expr.Parse.expr s with
    | e -> Ok e
    | exception Dp_expr.Parse.Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Dp_expr.Ast.pp)

let strategy_conv =
  let parse s =
    match Dp_flow.Strategy.of_name s with
    | Some st -> Ok st
    | None -> Error (`Msg (s ^ ": unknown strategy"))
  in
  Arg.conv (parse, Dp_flow.Strategy.pp)

let adder_conv =
  let parse s =
    match Dp_adders.Adder.of_name s with
    | Some a -> Ok a
    | None -> Error (`Msg (s ^ ": unknown adder (ripple|cla|carry-select|kogge-stone)"))
  in
  Arg.conv (parse, Dp_adders.Adder.pp)

let expr_arg =
  Arg.(
    required
    & opt (some expr_conv) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Arithmetic expression (+ - * ^ parens).")

let vars_arg =
  Arg.(
    value & opt_all var_conv []
    & info [ "v"; "var" ] ~docv:"NAME:W[s][:T[:P]]"
        ~doc:
          "Input variable: name, bit-width (suffix 's' for signed), optional \
           arrival time (ns) and 1-probability, applied uniformly to all \
           bits.")

let width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "width" ] ~docv:"W" ~doc:"Output width (default: natural width).")

let strategy_arg ~default =
  Arg.(
    value & opt strategy_conv default
    & info [ "strategy" ] ~docv:"S"
        ~doc:
          "Allocation strategy: fa_aot, fa_alp, fa_random, wallace, dadda, \
           column-isolation, csa_opt, conventional, sc_t_gpc, sc_lp_gpc, \
           dadda_gpc.")

let tech_arg =
  let tech_conv =
    let parse path =
      match Dp_tech.Tech_file.of_file_res path with
      | Ok t -> Ok t
      | Error d -> Error (`Msg (Dp_diag.Diag.to_string d))
    in
    Arg.conv (parse, Dp_tech.Tech.pp)
  in
  Arg.(
    value & opt tech_conv Dp_tech.Tech.lcb_like
    & info [ "tech" ] ~docv:"FILE"
        ~doc:"Technology file (key value lines); defaults inherit lcb_like.")

let adder_arg =
  Arg.(
    value & opt adder_conv Dp_adders.Adder.Cla
    & info [ "adder" ] ~docv:"A" ~doc:"Final adder: ripple, cla, carry-select, kogge-stone.")

let recoding_arg =
  Arg.(
    value
    & opt (enum [ ("csd", Dp_bitmatrix.Lower.Csd); ("binary", Dp_bitmatrix.Lower.Binary) ])
        Dp_bitmatrix.Lower.Csd
    & info [ "recoding" ] ~doc:"Coefficient recoding: csd or binary.")

let multiplier_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("and-array", Dp_bitmatrix.Lower.And_array);
             ("booth", Dp_bitmatrix.Lower.Booth) ])
        Dp_bitmatrix.Lower.And_array
    & info [ "multiplier" ]
        ~doc:"Partial products for eligible variable products: and-array or booth.")

let verilog_arg =
  Arg.(
    value & opt (some string) None
    & info [ "verilog" ] ~docv:"FILE" ~doc:"Write the netlist as Verilog.")

let dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the netlist as Graphviz DOT.")

let testbench_arg =
  Arg.(
    value & opt (some string) None
    & info [ "testbench" ] ~docv:"FILE"
        ~doc:"Write DUT + self-checking testbench as one Verilog file.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ] ~doc:"Verify the netlist against the expression on random vectors.")

let cells_arg =
  Arg.(value & flag & info [ "cells" ] ~doc:"Print every cell with its output arrivals.")

let pipeline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "pipeline" ] ~docv:"T"
        ~doc:"Report a pipeline plan (latency, register bits) for cycle time T ns.")

let check_level_arg =
  let level_conv =
    let parse s =
      match Dp_verify.Lint.check_level_of_name s with
      | Some l -> Ok l
      | None -> Error (`Msg (s ^ ": expected off, warn or strict"))
    in
    let print ppf l = Fmt.string ppf (Dp_verify.Lint.check_level_name l) in
    Arg.conv (parse, print)
  in
  Arg.(
    value & opt level_conv Dp_verify.Lint.Off
    & info [ "check-level" ] ~docv:"LEVEL"
        ~doc:
          "Structural integrity gate on the synthesized netlist: off (default), \
           warn (report lint findings, proceed), strict (fail on any \
           warning-or-worse finding).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print one machine-readable dpsyn-result/1 record per synthesized \
           netlist (the same record the server protocol returns) instead of \
           the human-readable report.  See doc/protocol.md.")

(* ------------------------------------------------------------------ *)
(* Shared actions *)

let env_of_vars expr vars =
  let env =
    List.fold_left
      (fun env (name, width, signed, arrival, prob) ->
        Dp_expr.Env.add_uniform name ~width ~signed ~arrival ~prob env)
      Dp_expr.Env.empty vars
  in
  match Dp_expr.Env.check_covers_res expr env with
  | Ok () -> Ok env
  | Error d -> Error (Dp_diag.Diag.to_string d)

let fail_diag d =
  Fmt.epr "error: %a@." Dp_diag.Diag.pp d;
  exit 3

let fail_diag_json d =
  prerr_endline
    (Dp_server.Json.to_string
       (Dp_server.Json.Obj [ ("error", Dp_server.Protocol.diag_to_json d) ]));
  exit 3

(* CLI -v specs carry one uniform arrival/probability per variable. *)
let var_specs_of_vars vars =
  List.map
    (fun (name, width, signed, arrival, prob) ->
      Dp_server.Protocol.var_spec ~signed
        ~arrival:(Array.make width arrival)
        ~prob:(Array.make width prob) name ~width)
    vars

let var_specs_of_env env =
  List.map
    (fun (name, (v : Dp_expr.Env.var_info)) ->
      Dp_server.Protocol.var_spec ~signed:v.signed ~arrival:v.arrival
        ~prob:v.prob name ~width:v.width)
    (Dp_expr.Env.bindings env)

(* The --json path goes through the same cache-layer serving core as the
   server, so the record (digest included) matches what [dpsyn serve]
   returns for the same request. *)
let synth_record ?(emit_verilog = false) ~tech ~vars ~width ~strategy ~adder
    ~lower_config ~check_level expr =
  let ( let* ) r k = match r with Ok v -> k v | Error d -> fail_diag_json d in
  let* p =
    Dp_server.Protocol.synth_params ~vars ~width ~strategy ~adder
      ~lower_config ~check_level ~emit_verilog
      (Dp_expr.Ast.to_string expr)
  in
  let* r = Dp_server.Protocol.serve_request ~tech p in
  let* o = Dp_cache.Serve.run r in
  (p, o)

let print_record (p, o) =
  print_endline
    (Dp_server.Json.to_string (Dp_server.Protocol.result_record p o))

let report_result (r : Dp_flow.Synth.result) ~env ~check ~cells ~verilog ~dot
    ?testbench ?pipeline expr =
  Fmt.pr "strategy:   %a@." Dp_flow.Strategy.pp r.strategy;
  Fmt.pr "output:     %s[%d:0]@." r.output (r.width - 1);
  Fmt.pr "stats:      %a@." Dp_netlist.Stats.pp r.stats;
  (match r.reduced_max_arrival with
  | Some t -> Fmt.pr "final adder sees its last input at %.3f ns@." t
  | None -> ());
  Fmt.pr "E_switching(tree) = %.4f, E_switching(total) = %.4f@."
    r.tree_switching r.total_switching;
  let e = Dp_timing.Sta.critical_endpoint r.netlist in
  Fmt.pr "critical endpoint: %a@." Dp_timing.Sta.pp_endpoint e;
  (match pipeline with
  | Some cycle_time -> (
    match Dp_pipeline.Pipeline.plan r.netlist ~cycle_time with
    | p -> Fmt.pr "pipeline:   %a@." Dp_pipeline.Pipeline.pp p
    | exception Invalid_argument msg -> Fmt.pr "pipeline:   %s@." msg)
  | None -> ());
  if cells then Fmt.pr "@.cells:@.%a" Dp_netlist.Stats.pp_cells r.netlist;
  (match verilog with
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Dp_netlist.Verilog.emit r.netlist));
    Fmt.pr "wrote %s@." file
  | None -> ());
  (match dot with
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Dp_netlist.Dot.emit r.netlist));
    Fmt.pr "wrote %s@." file
  | None -> ());
  (match testbench with
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Dp_sim.Testbench.emit_with_dut r.netlist));
    Fmt.pr "wrote %s@." file
  | None -> ());
  if check then
    (* ~env so signed inputs are interpreted in two's complement *)
    match Dp_flow.Synth.verify ~trials:500 ~env r expr with
    | Ok () -> Fmt.pr "equivalence check: OK (500 random vectors)@."
    | Error m ->
      Fmt.epr "equivalence check FAILED: %a@." Dp_sim.Equiv.pp_mismatch m;
      exit 2

(* ------------------------------------------------------------------ *)
(* Commands *)

let synth_cmd =
  let action expr vars width strategy tech adder recoding multiplier_style
      verilog dot testbench pipeline check cells check_level json =
    if json then begin
      let ((_, o) as record) =
        synth_record ~tech ~vars:(var_specs_of_vars vars) ~width ~strategy
          ~adder
          ~lower_config:{ recoding; multiplier_style }
          ~check_level expr
      in
      (match verilog with
      | Some file ->
        Out_channel.with_open_text file (fun oc ->
            output_string oc o.Dp_cache.Serve.verilog)
      | None -> ());
      print_record record
    end
    else
      match env_of_vars expr vars with
      | Error msg ->
        Fmt.epr "error: %s (bind it with -v)@." msg;
        exit 1
      | Ok env -> (
        match
          Dp_flow.Synth.run_res ~tech ~adder
            ~lower_config:{ recoding; multiplier_style }
            ?width ~check_level strategy env expr
        with
        | Error d -> fail_diag d
        | Ok r ->
          report_result r ~env ~check ~cells ~verilog ~dot ?testbench ?pipeline
            expr)
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize one expression")
    Term.(
      const action $ expr_arg $ vars_arg $ width_arg
      $ strategy_arg ~default:Dp_flow.Strategy.Fa_aot
      $ tech_arg $ adder_arg $ recoding_arg $ multiplier_arg $ verilog_arg
      $ dot_arg $ testbench_arg $ pipeline_arg $ check_arg $ cells_arg
      $ check_level_arg $ json_arg)

let compare_cmd =
  let action expr vars width adder check_level json =
    if json then
      (* One dpsyn-result/1 record per strategy, one line each. *)
      List.iter
        (fun strategy ->
          print_record
            (synth_record ~tech:Dp_tech.Tech.lcb_like
               ~vars:(var_specs_of_vars vars) ~width ~strategy ~adder
               ~lower_config:Dp_bitmatrix.Lower.default_config ~check_level
               expr))
        Dp_flow.Strategy.all
    else
    match env_of_vars expr vars with
    | Error msg ->
      Fmt.epr "error: %s (bind it with -v)@." msg;
      exit 1
    | Ok env ->
      let rows =
        List.map
          (fun strategy ->
            let r =
              match
                Dp_flow.Synth.run_res ~adder ?width ~check_level strategy env
                  expr
              with
              | Ok r -> r
              | Error d -> fail_diag d
            in
            [
              Dp_flow.Strategy.name strategy;
              Dp_flow.Report.ns r.stats.delay;
              Dp_flow.Report.units r.stats.area;
              string_of_int r.stats.fa_count;
              string_of_int r.stats.ha_count;
              Printf.sprintf "%.3f" r.tree_switching;
            ])
          Dp_flow.Strategy.all
      in
      Fmt.pr "%s@."
        (Dp_flow.Report.table
           ~header:[ "strategy"; "delay"; "area"; "FA"; "HA"; "E(tree)" ]
           ~rows)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Synthesize with every strategy and tabulate")
    Term.(
      const action $ expr_arg $ vars_arg $ width_arg $ adder_arg
      $ check_level_arg $ json_arg)

let lint_cmd =
  let action expr vars width strategy tech adder =
    match env_of_vars expr vars with
    | Error msg ->
      Fmt.epr "error: %s (bind it with -v)@." msg;
      exit 1
    | Ok env -> (
      match Dp_flow.Synth.run_res ~tech ~adder ?width strategy env expr with
      | Error d -> fail_diag d
      | Ok r ->
        let findings = Dp_verify.Lint.run r.netlist in
        List.iter (Fmt.pr "%a@." Dp_verify.Lint.pp_finding) findings;
        let count sev =
          List.length
            (List.filter
               (fun (f : Dp_verify.Lint.finding) -> f.severity = sev)
               findings)
        in
        let errors = count Dp_diag.Diag.Error in
        Fmt.pr "lint: %d error(s), %d warning(s), %d note(s) over %d nets, %d cells@."
          errors
          (count Dp_diag.Diag.Warning)
          (count Dp_diag.Diag.Info)
          (Dp_netlist.Netlist.net_count r.netlist)
          (Dp_netlist.Netlist.cell_count r.netlist);
        if errors > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Synthesize one expression and report every structural integrity \
          finding of the resulting netlist")
    Term.(
      const action $ expr_arg $ vars_arg $ width_arg
      $ strategy_arg ~default:Dp_flow.Strategy.Fa_aot
      $ tech_arg $ adder_arg)

let program_conv =
  let parse s =
    match Dp_expr.Parse.program s with
    | ports -> Ok ports
    | exception Dp_expr.Parse.Error msg -> Error (`Msg msg)
  in
  let print ppf ports =
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any " = ") string Dp_expr.Ast.pp)) ppf ports
  in
  Arg.conv (parse, print)

let synth_multi_cmd =
  let program_arg =
    Arg.(
      required
      & opt (some program_conv) None
      & info [ "p"; "program" ] ~docv:"PROG"
          ~doc:
            "Program: ';'-separated 'name = expr' statements.  Bindings \
             referenced later are inlined; the rest become output ports.")
  in
  let action ports vars strategy adder verilog check =
    let env =
      List.fold_left
        (fun env (name, width, signed, arrival, prob) ->
          Dp_expr.Env.add_uniform name ~width ~signed ~arrival ~prob env)
        Dp_expr.Env.empty vars
    in
    let missing =
      List.concat_map
        (fun (_, e) ->
          List.filter (fun v -> not (Dp_expr.Env.mem v env)) (Dp_expr.Ast.vars e))
        ports
    in
    (match missing with
    | [] -> ()
    | v :: _ ->
      Fmt.epr "error: %s has no binding (bind it with -v)@." v;
      exit 1);
    let ports =
      List.map
        (fun (name, e) ->
          { Dp_flow.Synth.name; expr = e; width = Dp_expr.Range.natural_width env e })
        ports
    in
    let r = Dp_flow.Synth.run_multi ~adder strategy env ports in
    Fmt.pr "outputs:@.";
    List.iter
      (fun (p : Dp_flow.Synth.port) ->
        Fmt.pr "  %s[%d:0] = %a@." p.name (p.width - 1) Dp_expr.Ast.pp p.expr)
      r.ports;
    Fmt.pr "stats: %a@." Dp_netlist.Stats.pp r.stats;
    (match verilog with
    | Some file ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc (Dp_netlist.Verilog.emit r.netlist));
      Fmt.pr "wrote %s@." file
    | None -> ());
    if check then
      match Dp_flow.Synth.verify_multi ~env r with
      | Ok () -> Fmt.pr "equivalence check: OK (all ports)@."
      | Error (port, m) ->
        Fmt.epr "port %s FAILED: %a@." port Dp_sim.Equiv.pp_mismatch m;
        exit 2
  in
  Cmd.v
    (Cmd.info "synth-multi"
       ~doc:"Synthesize a multi-statement program into one netlist")
    Term.(
      const action $ program_arg $ vars_arg
      $ strategy_arg ~default:Dp_flow.Strategy.Fa_aot
      $ adder_arg $ verilog_arg $ check_arg)

let fuzz_cmd =
  let ival ~default name doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let seed_arg = ival ~default:42 "seed" "PRNG seed; the run is a pure function of it." in
  let cases_arg = ival ~default:500 "cases" "Number of generated cases." in
  let max_size_arg =
    ival ~default:Dp_fuzz.Gen.default_config.max_size "max-size"
      "Maximum expression size (AST nodes) per generated case."
  in
  let trials_arg =
    ival ~default:Dp_fuzz.Oracle.default_config.trials "trials"
      "Random input vectors per case, on top of the corner patterns."
  in
  let strategy_opt =
    Arg.(
      value & opt (some strategy_conv) None
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Restrict the oracle to one strategy (default: all).")
  in
  let adder_opt =
    Arg.(
      value & opt (some adder_conv) None
      & info [ "adder" ] ~docv:"A"
          ~doc:"Restrict the oracle to one final adder (default: all).")
  in
  let timeout_arg =
    Arg.(
      value & opt float Dp_fuzz.Budget.default.timeout_s
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget per strategy/adder pair; 0 disables.")
  in
  let max_cells_arg =
    ival ~default:Dp_fuzz.Budget.default.max_cells "max-cells"
      "Cell-count budget per synthesized netlist; 0 disables."
  in
  let max_rows_arg =
    ival ~default:Dp_fuzz.Budget.default.max_rows "max-rows"
      "Estimated addend-matrix-height budget per case; 0 disables."
  in
  let inject_every_arg =
    ival ~default:0 "inject-every"
      "Every Nth case also runs a netlist fault-injection check (0: off)."
  in
  let multi_every_arg =
    ival ~default:Dp_fuzz.Gen.default_config.multi_every "multi-every"
      "Every Nth case is a multi-output program (0: never)."
  in
  let crypto_fuzz_arg =
    Arg.(
      value & flag
      & info [ "crypto" ]
          ~doc:
            "Generate from the crypto envelope (Gen.crypto_config: \
             limb-sized operands up to 48 bits, deep MAC chains, \
             wNAF-style signed sums) and tighten the per-case budget \
             (timeout and row ceiling clamped to 2 s / 1024 rows) so \
             heavyweight cases prove graceful bounded aborts instead of \
             dominating the run.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Save shrunk reproducers for every finding into DIR.")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Replay every *.repro file in DIR instead of generating cases; \
             exits non-zero if any entry regresses.")
  in
  let action seed cases max_size trials strategy adder timeout max_cells
      max_rows inject_every multi_every crypto corpus replay =
    match replay with
    | Some dir -> (
      match Dp_fuzz.Driver.replay_dir dir with
      | Ok n -> Fmt.pr "replayed %d corpus entries: all OK@." n
      | Error failures ->
        List.iter
          (fun (path, d) -> Fmt.epr "%s: %a@." path Dp_diag.Diag.pp d)
          failures;
        exit 2)
    | None ->
      let base_gen =
        if crypto then Dp_fuzz.Gen.crypto_config
        else Dp_fuzz.Gen.default_config
      in
      let gen = { base_gen with max_size; multi_every } in
      let budget =
        if crypto then
          {
            Dp_fuzz.Budget.timeout_s =
              (if timeout <= 0.0 then 2.0 else Float.min timeout 2.0);
            max_cells;
            max_rows = (if max_rows <= 0 then 1024 else min max_rows 1024);
          }
        else { Dp_fuzz.Budget.timeout_s = timeout; max_cells; max_rows }
      in
      let oracle =
        {
          Dp_fuzz.Oracle.default_config with
          trials;
          budget;
          strategies =
            (match strategy with
            | Some s -> [ s ]
            | None -> Dp_flow.Strategy.all);
          adders =
            (match adder with Some a -> [ a ] | None -> Dp_adders.Adder.all);
        }
      in
      let config =
        {
          Dp_fuzz.Driver.default_config with
          seed;
          cases;
          gen;
          oracle;
          inject_every;
          corpus_dir = corpus;
          log = (fun msg -> Fmt.epr "%s@." msg);
        }
      in
      let report = Dp_fuzz.Driver.run config in
      Fmt.pr "%a@." Dp_fuzz.Driver.pp_report report;
      List.iter
        (fun (f : Dp_fuzz.Driver.finding) ->
          Fmt.pr "@.finding %s under %a/%a:@." f.shrunk_diag.Dp_diag.Diag.code
            Dp_flow.Strategy.pp f.failure.Dp_fuzz.Oracle.strategy
            Dp_adders.Adder.pp f.failure.Dp_fuzz.Oracle.adder;
          Fmt.pr "  %a@." Dp_diag.Diag.pp f.shrunk_diag;
          Fmt.pr "  repro: %s@."
            (Dp_fuzz.Case.synth_command
               ~strategy:f.failure.Dp_fuzz.Oracle.strategy
               ~adder:f.failure.Dp_fuzz.Oracle.adder f.shrunk);
          match f.saved with
          | Some path -> Fmt.pr "  saved: %s@." path
          | None -> ())
        report.findings;
      if report.findings <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random cases through every strategy and \
          adder, checked against an arbitrary-precision reference; failures \
          are shrunk to minimal reproducers")
    Term.(
      const action $ seed_arg $ cases_arg $ max_size_arg $ trials_arg
      $ strategy_opt $ adder_opt $ timeout_arg $ max_cells_arg $ max_rows_arg
      $ inject_every_arg $ multi_every_arg $ crypto_fuzz_arg $ corpus_arg
      $ replay_arg)

let designs_cmd =
  let action () =
    List.iter
      (fun (d : Dp_designs.Design.t) ->
        Fmt.pr "%-16s W=%-3d %a@.                 %s@." d.name d.width
          Dp_expr.Ast.pp d.expr d.description)
      Dp_designs.Catalog.all
  in
  Cmd.v (Cmd.info "designs" ~doc:"List the paper's benchmark designs")
    Term.(const action $ const ())

let design_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let action name strategy adder check cells verilog dot check_level =
    match Dp_designs.Catalog.find name with
    | None ->
      Fmt.epr "unknown design %s; see 'dpsyn designs'@." name;
      exit 1
    | Some d -> (
      match
        Dp_flow.Synth.run_res ~adder ~width:d.width ~check_level strategy
          d.env d.expr
      with
      | Error diag -> fail_diag diag
      | Ok r ->
        Fmt.pr "design: %s — %s@." d.name d.description;
        report_result r ~env:d.env ~check ~cells ~verilog ~dot d.expr)
  in
  Cmd.v (Cmd.info "design" ~doc:"Synthesize one of the paper's designs")
    Term.(
      const action $ name_arg
      $ strategy_arg ~default:Dp_flow.Strategy.Fa_aot
      $ adder_arg $ check_arg $ cells_arg $ verilog_arg $ dot_arg
      $ check_level_arg)

(* ------------------------------------------------------------------ *)
(* Server mode *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker threads in the pool.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Bound on queued jobs; producers block past it (backpressure).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget per request; 0 disables.")
  in
  let max_cells_arg =
    Arg.(
      value
      & opt int Dp_fuzz.Budget.default.max_cells
      & info [ "max-cells" ] ~docv:"N"
          ~doc:"Cell-count budget per synthesized netlist; 0 disables.")
  in
  let max_rows_arg =
    Arg.(
      value
      & opt int Dp_fuzz.Budget.default.max_rows
      & info [ "max-rows" ] ~docv:"N"
          ~doc:
            "Admission bound on the statically estimated addend-matrix \
             height; a request over it is refused with DP-SRV-TOOBIG \
             before it is queued.  0 disables.")
  in
  let mem_watermark_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-watermark-mb" ] ~docv:"MB"
          ~doc:
            "Heap watermark: above it, new requests are shed with \
             DP-SRV-OVERLOAD and in-flight requests abort at their next \
             checkpoint with DP-BUDGET-MEM.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Content-addressed on-disk store (created if missing).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"In-memory LRU capacity (entries).")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the netlist cache.")
  in
  let crash_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-dir" ] ~docv:"DIR"
          ~doc:
            "Write a .repro crash dump (fuzz-corpus format) for every worker \
             crash.")
  in
  let max_crashes_arg =
    Arg.(
      value
      & opt int Dp_server.Supervisor.default_policy.max_crashes
      & info [ "max-crashes" ] ~docv:"N"
          ~doc:
            "Worker crashes tolerated per window before the circuit breaker \
             opens.")
  in
  let cooldown_arg =
    Arg.(
      value
      & opt float Dp_server.Supervisor.default_policy.cooldown_s
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:"Open-breaker cooldown before the half-open probe.")
  in
  let guard_arg =
    Arg.(
      value & flag
      & info [ "guard-responses" ]
          ~doc:
            "Lint every outgoing netlist; findings become DP-SRV-CORRUPT \
             errors instead of wrong answers (always on under --chaos).")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Inject seeded faults (worker panics, stalls, torn responses, \
             cache corruption, result corruption) to exercise the resilience \
             layer.  Testing only.")
  in
  let chaos_every_arg =
    Arg.(
      value
      & opt int Dp_server.Chaos.default_config.every
      & info [ "chaos-every" ] ~docv:"K" ~doc:"Inject on every Kth action.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Chaos schedule seed.")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serve as a sharded topology: N shard server processes (one per \
             digest range, each exec'd as its own 'dpsyn serve' on \
             SOCKET.<i>, sharing --cache-dir) behind a health-checked \
             router on SOCKET that fails over while a dead shard restarts. \
             0 or 1 = a single in-process server.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Durable exactly-once serving (sharded only): journal every \
             admitted request to DIR and record the shard fleet there, so \
             a crashed router's next incarnation replays incomplete \
             requests and reattaches to still-live shards instead of \
             respawning them.")
  in
  let hedge_arg =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:
            "Hedged dispatch (sharded only): duplicate a request that \
             outlives the p95 of recent forward latencies to the next \
             live shard; first answer wins, both are byte-compared \
             (mismatch = DP-SRV-DIVERGE, never a silently picked \
             answer).")
  in
  (* The shard processes are real 'dpsyn serve' invocations, so the tech
     option stays a file *path* here — it must survive re-serialization
     into a shard's argv. *)
  let tech_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tech" ] ~docv:"FILE"
          ~doc:"Technology file (key value lines); defaults inherit lcb_like.")
  in
  let action socket shards workers queue_depth timeout max_cells max_rows
      mem_watermark_mb cache_dir capacity no_cache tech_file crash_dir
      max_crashes cooldown guard chaos chaos_every chaos_seed journal_dir
      hedge =
    let mem_watermark_words =
      Option.map (fun mb -> mb * 1024 * 1024 / (Sys.word_size / 8))
        mem_watermark_mb
    in
    let tech =
      match tech_file with
      | None -> Dp_tech.Tech.lcb_like
      | Some path -> (
        match Dp_tech.Tech_file.of_file_res path with
        | Ok t -> t
        | Error d -> fail_diag d)
    in
    let log = fun msg -> Fmt.epr "dpsyn serve: %s@." msg in
    if shards < 2 && (journal_dir <> None || hedge) then begin
      Fmt.epr
        "error: --journal and --hedge need the sharded topology \
         (--shards >= 2)@.";
      exit 1
    end;
    (* The shard state file lives in the journal directory, and the pool
       writes it before the journal is opened — make the directory now. *)
    (match journal_dir with
    | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
    | _ -> ());
    if shards >= 2 then begin
      (* Shard argv: this same executable, serving one shard's socket
         with the same knobs.  Shards never shard further. *)
      let shard_argv ~id:_ ~socket_path =
        Array.of_list
          ([
             Sys.executable_name; "serve";
             "--socket"; socket_path;
             "--workers"; string_of_int workers;
             "--queue-depth"; string_of_int queue_depth;
             "--timeout"; string_of_float timeout;
             "--max-cells"; string_of_int max_cells;
             "--max-rows"; string_of_int max_rows;
             "--cache-capacity"; string_of_int capacity;
             "--max-crashes"; string_of_int max_crashes;
             "--breaker-cooldown"; string_of_float cooldown;
           ]
          @ (match mem_watermark_mb with
            | Some mb -> [ "--mem-watermark-mb"; string_of_int mb ]
            | None -> [])
          @ (match cache_dir with Some d -> [ "--cache-dir"; d ] | None -> [])
          @ (if no_cache then [ "--no-cache" ] else [])
          @ (match tech_file with Some f -> [ "--tech"; f ] | None -> [])
          @ (match crash_dir with Some d -> [ "--crash-dir"; d ] | None -> [])
          @ (if guard then [ "--guard-responses" ] else [])
          @
          if chaos then
            [
              "--chaos";
              "--chaos-every"; string_of_int chaos_every;
              "--chaos-seed"; string_of_int chaos_seed;
            ]
          else [])
      in
      let pool =
        Dp_server.Shard_pool.start
          {
            (Dp_server.Shard_pool.default_config ~shards
               ~socket_for:(fun i -> socket ^ "." ^ string_of_int i)
               ~spawn:(Dp_server.Shard_pool.Spawn_exec shard_argv))
            with
            Dp_server.Shard_pool.log;
            state_file =
              Option.map
                (fun d -> Filename.concat d "shards.json")
                journal_dir;
          }
      in
      if not (Dp_server.Shard_pool.wait_all_up ~timeout_s:30.0 pool) then begin
        Fmt.epr "error: shards did not come up within 30s@.";
        Dp_server.Shard_pool.shutdown pool;
        exit 1
      end;
      let journal =
        Option.map
          (fun dir -> Dp_server.Journal.open_ ~dir ~log ())
          journal_dir
      in
      match
        Dp_server.Router.run
          {
            (Dp_server.Router.default_config ~socket_path:socket ~pool) with
            Dp_server.Router.tech;
            handle_signals = true;
            log;
            journal;
            hedge = (if hedge then Some Dp_server.Router.default_hedge else None);
          }
      with
      | () -> ()
      | exception Unix.Unix_error (e, fn, arg) ->
        Fmt.epr "error: %s: %s (%s)@." fn (Unix.error_message e) arg;
        Dp_server.Shard_pool.shutdown pool;
        exit 1
    end
    else begin
      let store =
        if no_cache then None
        else Some (Dp_cache.Store.create ~capacity ?dir:cache_dir ())
      in
      let config =
        {
          Dp_server.Server.socket_path = socket;
          store;
          workers;
          queue_depth;
          budget = { Dp_fuzz.Budget.timeout_s = timeout; max_cells; max_rows };
          mem_watermark_words;
          tech;
          log;
          supervisor =
            {
              Dp_server.Supervisor.default_policy with
              max_crashes;
              cooldown_s = cooldown;
            };
          crash_dir;
          chaos =
            (if chaos then
               Some
                 {
                   Dp_server.Chaos.default_config with
                   seed = chaos_seed;
                   every = chaos_every;
                 }
             else None);
          guard_responses = guard;
          handle_signals = true;
        }
      in
      match Dp_server.Server.run config with
      | () -> ()
      | exception Unix.Unix_error (e, fn, arg) ->
        Fmt.epr "error: %s: %s (%s)@." fn (Unix.error_message e) arg;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve synthesis over a Unix-domain socket (line-delimited JSON; \
          see doc/protocol.md) with a canonicalizing netlist cache, worker \
          supervision and deadline enforcement; --shards N serves a \
          fault-tolerant multi-process topology behind a routing front")
    Term.(
      const action $ socket_arg $ shards_arg $ workers_arg $ queue_arg
      $ timeout_arg $ max_cells_arg $ max_rows_arg $ mem_watermark_arg
      $ cache_dir_arg $ capacity_arg $ no_cache_arg $ tech_file_arg
      $ crash_dir_arg $ max_crashes_arg $ cooldown_arg $ guard_arg
      $ chaos_arg $ chaos_every_arg $ chaos_seed_arg $ journal_arg
      $ hedge_arg)

(* Shared retry flags for the client-side commands. *)
let retries_arg =
  Arg.(
    value
    & opt int Dp_server.Client.default_retry.attempts
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total attempts (including the first) for retryable failures \
           (transport errors, DP-SRV-CRASH, DP-SRV-OVERLOAD); retried \
           requests are answered from the server's cache, so retrying is \
           idempotent.")

let attempt_timeout_arg =
  Arg.(
    value
    & opt float Dp_server.Client.default_retry.per_attempt_timeout_s
    & info [ "attempt-timeout" ] ~docv:"SECONDS"
        ~doc:"Client-side timeout per attempt; 0 disables.")

let retry_seed_arg =
  Arg.(
    value
    & opt int Dp_server.Client.default_retry.seed
    & info [ "retry-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the retry loop's backoff-jitter PRNG, so a failing \
           run's exact retry timing can be replayed.")

let retry_of ~retries ~attempt_timeout ~retry_seed =
  {
    Dp_server.Client.default_retry with
    attempts = max 1 retries;
    per_attempt_timeout_s = attempt_timeout;
    seed = retry_seed;
  }

let client_cmd =
  let op_arg =
    Arg.(
      value
      & opt (enum [ ("synth", `Synth); ("stats", `Stats); ("shutdown", `Shutdown) ]) `Synth
      & info [ "op" ] ~docv:"OP" ~doc:"Request: synth (default), stats, shutdown.")
  in
  let expr_opt =
    Arg.(
      value
      & opt (some expr_conv) None
      & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Expression (op synth).")
  in
  let emit_verilog_arg =
    Arg.(
      value & flag
      & info [ "emit-verilog" ] ~doc:"Ask for the full Verilog text in the record.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Request deadline: the server fails the request fast with \
             DP-SRV-DEADLINE if it cannot finish (queue wait included) \
             within MS milliseconds.")
  in
  let action socket op expr vars width strategy adder recoding multiplier_style
      check_level emit_verilog deadline_ms retries attempt_timeout retry_seed =
    let envelope =
      match op with
      | `Stats -> { Dp_server.Protocol.id = Dp_server.Json.Int 1; req = Stats }
      | `Shutdown -> { Dp_server.Protocol.id = Dp_server.Json.Int 1; req = Shutdown }
      | `Synth -> (
        match expr with
        | None ->
          Fmt.epr "error: --op synth needs an expression (-e)@.";
          exit 1
        | Some expr -> (
          match
            Dp_server.Protocol.synth_params ~vars:(var_specs_of_vars vars)
              ~width ~strategy ~adder
              ~lower_config:{ recoding; multiplier_style }
              ~check_level ~emit_verilog ~deadline_ms
              (Dp_expr.Ast.to_string expr)
          with
          | Error d -> fail_diag_json d
          | Ok p ->
            { Dp_server.Protocol.id = Dp_server.Json.Int 1; req = Synth p }))
    in
    match
      Dp_server.Client.call
        ~retry:(retry_of ~retries ~attempt_timeout ~retry_seed)
        ~socket
        (Dp_server.Protocol.request_to_json envelope)
    with
    | Error d -> fail_diag d
    | Ok response ->
      print_endline (Dp_server.Json.to_string response);
      (match Dp_server.Json.(member "ok" response |> Fun.flip Option.bind to_bool) with
      | Some true -> ()
      | _ -> exit 2)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running dpsyn serve and print the response")
    Term.(
      const action $ socket_arg $ op_arg $ expr_opt $ vars_arg $ width_arg
      $ strategy_arg ~default:Dp_flow.Strategy.Fa_aot
      $ adder_arg $ recoding_arg $ multiplier_arg $ check_level_arg
      $ emit_verilog_arg $ deadline_arg $ retries_arg $ attempt_timeout_arg
      $ retry_seed_arg)

let batch_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"JSONL file: one synth request object per line.")
  in
  let designs_arg =
    Arg.(
      value & flag
      & info [ "designs" ]
          ~doc:"Use the paper's benchmark designs as the batch input.")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:"Write a dpsyn-batch-summary/1 JSON object to FILE.")
  in
  let params_of_file path =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match Dp_server.Json.of_string line with
           | Error msg ->
             Fmt.epr "error: %s: %s@." path msg;
             exit 1
           | Ok j -> (
             match Dp_server.Protocol.params_of_json j with
             | Ok p -> p
             | Error d -> fail_diag_json d))
  in
  let params_of_designs strategy adder =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        match
          Dp_server.Protocol.synth_params ~vars:(var_specs_of_env d.env)
            ~width:(Some d.width) ~strategy ~adder
            (Dp_expr.Ast.to_string d.expr)
        with
        | Ok p -> p
        | Error d -> fail_diag_json d)
      Dp_designs.Catalog.all
  in
  let action socket file designs summary strategy adder retries attempt_timeout
      retry_seed =
    let params =
      match (file, designs) with
      | Some path, false -> params_of_file path
      | None, true -> params_of_designs strategy adder
      | _ ->
        Fmt.epr "error: give exactly one of FILE or --designs@.";
        exit 1
    in
    let envelope =
      { Dp_server.Protocol.id = Dp_server.Json.Int 1; req = Batch params }
    in
    match
      Dp_server.Client.call
        ~retry:(retry_of ~retries ~attempt_timeout ~retry_seed)
        ~socket
        (Dp_server.Protocol.request_to_json envelope)
    with
    | Error d -> fail_diag d
    | Ok response -> (
      let open Dp_server.Json in
      match member "results" response |> Fun.flip Option.bind to_list with
      | None ->
        (* Top-level failure (e.g. a DP-PROTO diagnostic). *)
        prerr_endline (to_string response);
        exit 2
      | Some elements ->
        let ok = ref 0 and errors = ref 0 and cached = ref 0 in
        List.iter
          (fun el ->
            (match member "ok" el |> Fun.flip Option.bind to_bool with
            | Some true ->
              incr ok;
              if member "cached" el |> Fun.flip Option.bind to_bool
                 = Some true
              then incr cached
            | _ -> incr errors);
            (* One line per element, in request order: the bare record on
               success (byte-comparable across passes), the error object
               otherwise. *)
            match member "result" el with
            | Some record -> print_endline (to_string record)
            | None -> print_endline (to_string el))
          elements;
        (match summary with
        | None -> ()
        | Some path ->
          let s =
            Obj
              [
                ("schema", Str "dpsyn-batch-summary/1");
                ("requests", Int (List.length elements));
                ("ok", Int !ok);
                ("errors", Int !errors);
                ("cached", Int !cached);
              ]
          in
          Out_channel.with_open_text path (fun oc ->
              output_string oc (to_string s);
              output_char oc '\n'));
        if !errors > 0 then exit 2)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Send a concurrent batch of synthesis requests to a running dpsyn \
          serve; prints one result record per line, in request order")
    Term.(
      const action $ socket_arg $ file_arg $ designs_arg $ summary_arg
      $ strategy_arg ~default:Dp_flow.Strategy.Fa_aot
      $ adder_arg $ retries_arg $ attempt_timeout_arg $ retry_seed_arg)

let soak_cmd =
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let requests_arg =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client thread.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Deterministic schedule for requests and chaos.")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Server worker threads.")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ] ~doc:"Inject seeded faults while soaking.")
  in
  let chaos_every_arg =
    Arg.(
      value
      & opt int Dp_server.Chaos.default_config.every
      & info [ "chaos-every" ] ~docv:"K" ~doc:"Inject on every Kth action.")
  in
  let mem_chaos_arg =
    Arg.(
      value & flag
      & info [ "mem-chaos" ]
          ~doc:
            "Add the memory fault class (Mem_squeeze: run a request under \
             a one-word heap watermark, which must surface as a typed \
             DP-BUDGET-MEM) to the chaos schedule.  Implies --chaos.")
  in
  let crypto_arg =
    Arg.(
      value & flag
      & info [ "crypto" ]
          ~doc:
            "Mix the crypto catalog's light designs (wide limbs, signed \
             wNAF operands, large coefficients) into the request pool.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "On-disk cache for the soaked server (gives cache-corruption \
             chaos something to corrupt).")
  in
  let crash_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-dir" ] ~docv:"DIR" ~doc:"Crash-dump corpus directory.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Attach this deadline to every 5th request.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the dpsyn-soak/1 report object to FILE.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress server log lines.")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Soak the sharded topology: N forked shard servers under a \
             health-checked pool, routed on SOCKET.  0 or 1 = a single \
             in-process server.")
  in
  let shard_chaos_arg =
    Arg.(
      value & flag
      & info [ "shard-chaos" ]
          ~doc:
            "Inject seeded shard faults (SIGKILL / SIGSTOP a random \
             shard) while the sharded soak is in flight.")
  in
  let shard_chaos_every_arg =
    Arg.(
      value & opt int 5
      & info [ "shard-chaos-every" ] ~docv:"K"
          ~doc:"Inject a shard fault on every Kth pacer tick.")
  in
  let net_chaos_arg =
    Arg.(
      value & flag
      & info [ "net-chaos" ]
          ~doc:
            "Add the network fault class (delayed responses, duplicated \
             response lines, connections dropped mid-line) to the chaos \
             schedule.  Implies --chaos.")
  in
  let journal_soak_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Soak the journaled topology: the router (owning the shard \
             pool) runs in a child process, journaling every admitted \
             request to DIR, so --router-chaos can SIGKILL and restart \
             it mid-flight.  Requires --shards >= 2.")
  in
  let router_chaos_arg =
    Arg.(
      value & flag
      & info [ "router-chaos" ]
          ~doc:
            "Inject seeded router faults (SIGKILL the journaled router \
             child, refork it, measure recovery) while the soak is in \
             flight.  Journaled runs only.")
  in
  let router_chaos_every_arg =
    Arg.(
      value & opt int 5
      & info [ "router-chaos-every" ] ~docv:"K"
          ~doc:"Inject a router fault on every Kth pacer tick.")
  in
  let hedge_arg =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:
            "Enable hedged dispatch (+ cross-shard divergence audit) on \
             the soaked router.  Sharded runs only.")
  in
  let action socket clients requests seed workers chaos chaos_every mem_chaos
      net_chaos crypto cache_dir crash_dir deadline_ms json_out quiet shards
      shard_chaos shard_chaos_every journal_dir router_chaos
      router_chaos_every hedge =
    let config =
      {
        Dp_server.Soak.socket_path = socket;
        clients;
        requests_per_client = requests;
        seed;
        workers;
        chaos =
          (if chaos || mem_chaos || net_chaos then
             Some
               {
                 Dp_server.Chaos.default_config with
                 seed;
                 every = chaos_every;
                 faults =
                   (Dp_server.Chaos.process_faults
                   @ (if mem_chaos then Dp_server.Chaos.mem_faults else [])
                   @ if net_chaos then Dp_server.Chaos.net_faults else []);
               }
           else None);
        cache_dir;
        crash_dir;
        deadline_ms;
        crypto_mix = crypto;
        shards;
        shard_chaos =
          (if shard_chaos then
             Some
               {
                 Dp_server.Chaos.default_config with
                 seed;
                 every = shard_chaos_every;
                 faults = Dp_server.Chaos.shard_faults;
               }
           else None);
        journal_dir;
        router_chaos =
          (if router_chaos then
             Some
               {
                 Dp_server.Chaos.default_config with
                 seed;
                 every = router_chaos_every;
                 faults = Dp_server.Chaos.router_faults;
               }
           else None);
        hedge;
        log =
          (if quiet then ignore
           else fun msg -> Fmt.epr "dpsyn soak: %s@." msg);
      }
    in
    let report = Dp_server.Soak.run config in
    Fmt.pr "%a@." Dp_server.Soak.pp_report report;
    (match json_out with
    | None -> ()
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Dp_server.Json.to_string (Dp_server.Soak.report_json report));
          output_char oc '\n'));
    if not (Dp_server.Soak.passed report) then begin
      Fmt.epr
        "soak FAILED: %d protocol violations, %d wrong answers@."
        report.violations report.wrong_answers;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Hammer an in-process (optionally chaos-injected) server from \
          concurrent clients; fails on any protocol violation or wrong \
          answer")
    Term.(
      const action $ socket_arg $ clients_arg $ requests_arg $ seed_arg
      $ workers_arg $ chaos_arg $ chaos_every_arg $ mem_chaos_arg
      $ net_chaos_arg $ crypto_arg $ cache_dir_arg $ crash_dir_arg
      $ deadline_arg $ json_out_arg $ quiet_arg $ shards_arg
      $ shard_chaos_arg $ shard_chaos_every_arg $ journal_soak_arg
      $ router_chaos_arg $ router_chaos_every_arg $ hedge_arg)

let fsck_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"The store directory to verify.")
  in
  let prune_arg =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:
            "Remove everything found wrong (corrupt or misfiled entries, \
             orphaned temp files, stale locks).  Entry removals take the \
             per-digest advisory lock, so pruning is safe against a live \
             fleet.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the dpsyn-fsck/1 report object to FILE.")
  in
  let action dir prune json_out =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Fmt.epr "error: %s: not a directory@." dir;
      exit 1
    end;
    let r = Dp_cache.Store.fsck ~prune ~dir () in
    Fmt.pr
      "fsck %s: %d entries scanned, %d valid, %d corrupt, %d misfiled, %d \
       orphaned tmp, %d stale locks%s@."
      dir r.scanned r.valid r.fsck_corrupt r.misfiled r.orphaned_tmp
      r.stale_locks
      (if prune then Fmt.str ", %d pruned" r.pruned else "");
    (match json_out with
    | None -> ()
    | Some path ->
      let open Dp_server.Json in
      let j =
        Obj
          [
            ("schema", Str "dpsyn-fsck/1");
            ("dir", Str dir);
            ("scanned", Int r.scanned);
            ("valid", Int r.valid);
            ("corrupt", Int r.fsck_corrupt);
            ("misfiled", Int r.misfiled);
            ("orphaned_tmp", Int r.orphaned_tmp);
            ("stale_locks", Int r.stale_locks);
            ("pruned", Int r.pruned);
          ]
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (to_string j);
          output_char oc '\n'));
    let problems =
      r.fsck_corrupt + r.misfiled + r.orphaned_tmp + r.stale_locks
    in
    if problems > 0 && r.pruned < problems then exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify a content-addressed store directory offline (checksums, \
          filename-vs-fingerprint, lint, crashed-writer leftovers); exits \
          1 if problems remain")
    Term.(const action $ dir_arg $ prune_arg $ json_arg)

let () =
  let doc = "fine-grained arithmetic datapath synthesis (DAC 2000 reproduction)" in
  let info = Cmd.info "dpsyn" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            synth_cmd; synth_multi_cmd; compare_cmd; lint_cmd; fuzz_cmd;
            designs_cmd; design_cmd; serve_cmd; client_cmd; batch_cmd;
            soak_cmd; fsck_cmd;
          ]))
