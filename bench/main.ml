(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 5), plus the ablations listed in DESIGN.md, plus
   Bechamel micro-benchmarks of the allocation algorithms themselves.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1     # one experiment
   Experiments: table1 table2 fig1 fig2 fig3 fig4
                ablation-csd ablation-adder ablation-tie speed *)

open Dp_flow

let section title = Fmt.pr "@.=== %s ===@.@." title

let run ?adder ?lower_config strategy (d : Dp_designs.Design.t) =
  Synth.run ?adder ?lower_config strategy d.env d.expr ~width:d.width

let verified ?adder ?lower_config strategy (d : Dp_designs.Design.t) =
  let r = run ?adder ?lower_config strategy d in
  (match Synth.verify ~trials:40 r d.expr with
  | Ok () -> ()
  | Error m ->
    Fmt.failwith "%s under %s is NOT equivalent: %a" d.name
      (Strategy.name strategy) Dp_sim.Equiv.pp_mismatch m);
  r

(* Reduction-tree depth in cell levels: the longest chain of FA/HA/
   counter cells through the netlist.  A counter collapses several FA
   levels into one, which is the stage win the GPC strategies buy; plain
   gates (partial products, CPA logic) pass levels through without adding
   any. *)
let reduction_levels netlist =
  let level = Array.make (max 1 (Dp_netlist.Netlist.net_count netlist)) 0 in
  let worst = ref 0 in
  Dp_netlist.Netlist.iter_cells
    (fun id (c : Dp_netlist.Netlist.cell) ->
      let reduces =
        match c.kind with
        | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha -> true
        | k -> Dp_tech.Cell_kind.is_counter k
      in
      let base =
        Array.fold_left (fun acc n -> max acc level.(n)) 0 c.inputs
      in
      let l = if reduces then base + 1 else base in
      worst := max !worst l;
      Array.iter
        (fun n -> level.(n) <- l)
        (Dp_netlist.Netlist.cell_output_nets netlist id))
    netlist;
  !worst

(* ------------------------------------------------------------------ *)
(* Table 1: timing/area, Conventional vs CSA_OPT vs FA_AOT *)

let table1 () =
  section
    "Table 1 — designs optimized for timing (delay ns / area units, CLA \
     CPAs everywhere)\npaper: FA_AOT improves delay 37.8% vs Conventional, \
     23.5% vs CSA_OPT on average";
  let acc_conv_t = ref 0.0 and acc_csa_t = ref 0.0 and acc_aot_t = ref 0.0 in
  let acc_conv_a = ref 0.0 and acc_csa_a = ref 0.0 and acc_aot_a = ref 0.0 in
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let conv = verified Strategy.Conventional d in
        let csa = verified Strategy.Csa_opt d in
        let aot = verified Strategy.Fa_aot d in
        acc_conv_t := !acc_conv_t +. conv.stats.delay;
        acc_csa_t := !acc_csa_t +. csa.stats.delay;
        acc_aot_t := !acc_aot_t +. aot.stats.delay;
        acc_conv_a := !acc_conv_a +. conv.stats.area;
        acc_csa_a := !acc_csa_a +. csa.stats.area;
        acc_aot_a := !acc_aot_a +. aot.stats.area;
        [
          d.name;
          Report.ns conv.stats.delay;
          Report.units conv.stats.area;
          Report.ns csa.stats.delay;
          Report.units csa.stats.area;
          Report.ns aot.stats.delay;
          Report.units aot.stats.area;
          Report.pct ~baseline:conv.stats.delay ~ours:aot.stats.delay;
          Report.pct ~baseline:conv.stats.area ~ours:aot.stats.area;
          Report.pct ~baseline:csa.stats.delay ~ours:aot.stats.delay;
          Report.pct ~baseline:csa.stats.area ~ours:aot.stats.area;
        ])
      Dp_designs.Catalog.table1
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:
         [
           "Design"; "Conv t"; "Conv a"; "CSA t"; "CSA a"; "AOT t"; "AOT a";
           "dT/Conv"; "dA/Conv"; "dT/CSA"; "dA/CSA";
         ]
       ~rows);
  let n = float_of_int (List.length rows) in
  Fmt.pr
    "Averages: delay improvement vs Conventional %.1f%% (paper: 37.8%%), vs \
     CSA_OPT %.1f%% (paper: 23.5%%)@."
    (Report.improvement ~baseline:(!acc_conv_t /. n) ~ours:(!acc_aot_t /. n))
    (Report.improvement ~baseline:(!acc_csa_t /. n) ~ours:(!acc_aot_t /. n));
  Fmt.pr "          area improvement vs Conventional %.1f%%, vs CSA_OPT %.1f%%@."
    (Report.improvement ~baseline:(!acc_conv_a /. n) ~ours:(!acc_aot_a /. n))
    (Report.improvement ~baseline:(!acc_csa_a /. n) ~ours:(!acc_aot_a /. n))

(* ------------------------------------------------------------------ *)
(* Table 2: power, FA_random vs FA_ALP *)

let table2 () =
  section
    "Table 2 — designs optimized for power (E_switching of the FA-tree, \
     scaled to mW)\npaper: FA_ALP improves 11.8% on average";
  let acc_rand = ref 0.0 and acc_alp = ref 0.0 in
  let random_seeds = [ 1; 2; 3; 4; 5 ] in
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let rand_avg =
          let total =
            List.fold_left
              (fun acc seed ->
                acc +. (verified (Strategy.Fa_random seed) d).tree_switching)
              0.0 random_seeds
          in
          total /. float_of_int (List.length random_seeds)
        in
        let alp = (verified Strategy.Fa_alp d).tree_switching in
        acc_rand := !acc_rand +. rand_avg;
        acc_alp := !acc_alp +. alp;
        [
          d.name;
          Report.mw (Dp_power.Switching.milliwatts rand_avg);
          Report.mw (Dp_power.Switching.milliwatts alp);
          Report.pct ~baseline:rand_avg ~ours:alp;
        ])
      Dp_designs.Catalog.table2
  in
  Fmt.pr "%s@."
    (Report.table ~header:[ "Design"; "FA_random"; "FA_ALP"; "Impr." ] ~rows);
  Fmt.pr "Average improvement: %.1f%% (paper: 11.8%%)@."
    (Report.improvement ~baseline:!acc_rand ~ours:!acc_alp);
  Fmt.pr
    "(FA_random is averaged over %d seeds; the paper ran a single random \
     allocation.)@."
    (List.length random_seeds)

(* ------------------------------------------------------------------ *)
(* Extended benchmarks beyond the paper *)

let extended () =
  section
    "Extended benchmarks (beyond the paper) — Conventional vs CSA_OPT vs \
     FA_AOT, CLA CPAs";
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let conv = verified Strategy.Conventional d in
        let csa = verified Strategy.Csa_opt d in
        let aot = verified Strategy.Fa_aot d in
        [
          d.name;
          Report.ns conv.stats.delay;
          Report.units conv.stats.area;
          Report.ns csa.stats.delay;
          Report.units csa.stats.area;
          Report.ns aot.stats.delay;
          Report.units aot.stats.area;
          Report.pct ~baseline:conv.stats.delay ~ours:aot.stats.delay;
          Report.pct ~baseline:csa.stats.delay ~ours:aot.stats.delay;
        ])
      Dp_designs.Catalog.extended
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:
         [
           "Design"; "Conv t"; "Conv a"; "CSA t"; "CSA a"; "AOT t"; "AOT a";
           "dT/Conv"; "dT/CSA";
         ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Fig. 1: FA allocation for F = X + Y + Z + W *)

let fig1_design () =
  let env =
    Dp_expr.Env.empty
    |> Dp_expr.Env.add_uniform "x" ~width:2
    |> Dp_expr.Env.add_uniform "y" ~width:2
    |> Dp_expr.Env.add_uniform "z" ~width:1
    |> Dp_expr.Env.add_uniform "w" ~width:2
  in
  (env, Dp_expr.Parse.expr "x + y + z + w")

let fig1 () =
  section "Fig. 1 — FA allocation for F = X + Y + Z + W (X,Y,W: 2-bit, Z: 1-bit)";
  let env, expr = fig1_design () in
  let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.unit_delay in
  let matrix = Dp_bitmatrix.Lower.lower netlist env expr ~width:3 in
  Fmt.pr "addend matrix (col populations, MSB..LSB): %a@."
    Dp_bitmatrix.Matrix.pp_shape matrix;
  Dp_core.Fa_aot.allocate netlist matrix;
  Fmt.pr "after FA allocation: %a@." Dp_bitmatrix.Matrix.pp_shape matrix;
  Fmt.pr "cells (paper: two FAs feeding the final adder):@.%a"
    Dp_netlist.Stats.pp_cells netlist

(* ------------------------------------------------------------------ *)
(* Fig. 2: effect of FA input selection on timing *)

let fig2_matrix netlist =
  let add name arrival =
    (Dp_netlist.Netlist.add_input netlist name ~width:1 ~arrival:[| arrival |]).(0)
  in
  let x0 = add "x0" 7.0 and y0 = add "y0" 2.0 in
  let z0 = add "z0" 3.0 and w0 = add "w0" 2.0 in
  let x1 = add "x1" 7.0 and y1 = add "y1" 5.0 in
  let w1 = add "w1" 4.0 in
  let m = Dp_bitmatrix.Matrix.create () in
  List.iter (fun b -> Dp_bitmatrix.Matrix.add m ~weight:0 b) [ x0; y0; z0; w0 ];
  List.iter (fun b -> Dp_bitmatrix.Matrix.add m ~weight:1 b) [ x1; y1; w1 ];
  m

let matrix_max netlist m =
  List.fold_left
    (fun acc j ->
      List.fold_left
        (fun acc net -> Float.max acc (Dp_netlist.Netlist.arrival netlist net))
        acc
        (Dp_bitmatrix.Matrix.column m j))
    neg_infinity
    (List.init (Dp_bitmatrix.Matrix.width m) Fun.id)

let fig2 () =
  section
    "Fig. 2 — F = X+Y+Z+W with arrivals x=(7,7) y=(2,5) z=(3) w=(2,4), \
     Ds=2, Dc=1\npaper: Wallace 9, column-isolation 9, column-interaction 8";
  List.iter
    (fun (label, allocate, paper) ->
      let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.unit_delay in
      let m = fig2_matrix netlist in
      allocate netlist m;
      Fmt.pr "%-22s latest final-adder input at %.0f   (paper: %s)@." label
        (matrix_max netlist m) paper)
    [
      ("(a) Wallace", Dp_core.Wallace.allocate, "9");
      ("(b) column-isolation", Dp_core.Column_isolation.allocate, "9");
      ( "(c) column-interaction",
        (fun n m -> Dp_core.Fa_aot.allocate n m),
        "8; we obtain 7 — see EXPERIMENTS.md" );
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 3: single-column reduction, m = 6 *)

let fig3 () =
  section "Fig. 3 — reducing a single 6-addend column to the 2-row matrix";
  let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.unit_delay in
  let bits =
    Dp_netlist.Netlist.add_input netlist "x" ~width:6
      ~arrival:[| 0.0; 0.0; 0.0; 0.0; 0.0; 0.0 |]
  in
  let m = Dp_bitmatrix.Matrix.create () in
  Array.iter (fun b -> Dp_bitmatrix.Matrix.add m ~weight:0 b) bits;
  Fmt.pr "initial: %a@." Dp_bitmatrix.Matrix.pp_shape m;
  Dp_core.Fa_aot.allocate netlist m;
  Fmt.pr "reduced: %a  (paper: two rows spanning columns 0 and 1)@."
    Dp_bitmatrix.Matrix.pp_shape m;
  Fmt.pr "cells:@.%a" Dp_netlist.Stats.pp_cells netlist

(* ------------------------------------------------------------------ *)
(* Fig. 4: effect of FA input selection on power *)

let fig4 () =
  section
    "Fig. 4 — four addends with p = 0.1/0.2/0.3/0.4, Ws = Wc = 1\n\
     paper: E(T1) = 0.411 vs E(T2) = 0.400 (printed values; exact algebra \
     gives 0.416 vs 0.329 — same ordering)";
  let e qx qy qz =
    let qs = Dp_power.Prob.fa_sum_q qx qy qz in
    let qc = Dp_power.Prob.fa_carry_q qx qy qz in
    (0.25 -. (qs *. qs)) +. (0.25 -. (qc *. qc))
  in
  Fmt.pr "T1 = FA(x2,x3,x4) (smallest |q|): E = %.5f@." (e (-0.3) (-0.2) (-0.1));
  Fmt.pr "T2 = FA(x1,x2,x3) (largest |q|):  E = %.5f@." (e (-0.4) (-0.3) (-0.2));
  let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.lcb_like in
  let bits =
    Dp_netlist.Netlist.add_input netlist "x" ~width:4
      ~prob:[| 0.1; 0.2; 0.3; 0.4 |]
      ~arrival:[| 0.0; 0.0; 0.0; 0.0 |]
  in
  let m = Dp_bitmatrix.Matrix.create () in
  Array.iter (fun b -> Dp_bitmatrix.Matrix.add m ~weight:0 b) bits;
  Dp_core.Fa_alp.allocate netlist m;
  Fmt.pr "SC_LP's allocation (must be T2's selection):@.%a"
    Dp_netlist.Stats.pp_cells netlist

(* ------------------------------------------------------------------ *)
(* Ablation A: CSD vs binary coefficient recoding *)

let ablation_csd () =
  section "Ablation A — CSD vs plain binary coefficient recoding (FA_AOT)";
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let csd =
          verified
            ~lower_config:{ Dp_bitmatrix.Lower.default_config with recoding = Csd }
            Strategy.Fa_aot d
        in
        let bin =
          verified
            ~lower_config:{ Dp_bitmatrix.Lower.default_config with recoding = Binary }
            Strategy.Fa_aot d
        in
        [
          d.name;
          Report.ns csd.stats.delay;
          Report.units csd.stats.area;
          Report.ns bin.stats.delay;
          Report.units bin.stats.area;
          Report.pct ~baseline:bin.stats.area ~ours:csd.stats.area;
        ])
      Dp_designs.Catalog.table1
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:[ "Design"; "CSD t"; "CSD a"; "Bin t"; "Bin a"; "area impr." ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Ablation B: final adder architecture at the FA-tree root *)

let ablation_adder () =
  section "Ablation B — final adder architecture under FA_AOT";
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let best = Synth.run_best_adder Strategy.Fa_aot d.env d.expr ~width:d.width in
        (d.name
        :: List.concat_map
             (fun kind ->
               let r = verified ~adder:kind Strategy.Fa_aot d in
               [ Report.ns r.stats.delay; Report.units r.stats.area ])
             Dp_adders.Adder.all)
        @ [ Report.ns best.stats.delay ])
      [
        Dp_designs.Catalog.kalman; Dp_designs.Catalog.idct;
        Dp_designs.Catalog.complex; Dp_designs.Catalog.serial_adapter;
      ]
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:
         [ "Design"; "ripple t"; "a"; "cla t"; "a"; "c-sel t"; "a"; "ks t"; "a"; "best t" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Ablation C: combined tie-breaking rules *)

let ablation_tie () =
  section "Ablation C — tie-breaking: FA_AOT+|q| ties and FA_ALP+arrival ties";
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let aot = verified Strategy.Fa_aot d in
        let aot_q = verified Strategy.Fa_aot_combined d in
        let alp = verified Strategy.Fa_alp d in
        let alp_t = verified Strategy.Fa_alp_combined d in
        [
          d.name;
          Report.ns aot.stats.delay;
          Printf.sprintf "%.3f" aot.tree_switching;
          Report.ns aot_q.stats.delay;
          Printf.sprintf "%.3f" aot_q.tree_switching;
          Report.ns alp.stats.delay;
          Printf.sprintf "%.3f" alp.tree_switching;
          Report.ns alp_t.stats.delay;
          Printf.sprintf "%.3f" alp_t.tree_switching;
        ])
      Dp_designs.Catalog.table2
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:
         [
           "Design"; "AOT t"; "AOT E"; "AOT+q t"; "AOT+q E"; "ALP t"; "ALP E";
           "ALP+t t"; "ALP+t E";
         ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Ablation D: the HA-on-exactly-three convention vs the adaptive finish *)

let ablation_finish () =
  section
    "Ablation D — SC_T's HA-on-three rule (paper, footnote 1) vs an FA on \
     all three\n(reduced = latest arrival into the final adder)";
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let reduced (r : Synth.result) =
          Option.value r.reduced_max_arrival ~default:nan
        in
        let aot = verified Strategy.Fa_aot d in
        let ada = verified Strategy.Fa_aot_fa3 d in
        let csa = verified Strategy.Csa_opt d in
        [
          d.name;
          Printf.sprintf "%.2f" (reduced aot);
          Printf.sprintf "%.2f" (reduced ada);
          Printf.sprintf "%.2f" (reduced csa);
          Report.ns aot.stats.delay;
          Report.ns ada.stats.delay;
        ])
      Dp_designs.Catalog.table1
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:
         [ "Design"; "HA red."; "FA3 red."; "CSA red."; "HA t"; "FA3 t" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Ablation E: Booth vs AND-array partial products *)

let ablation_booth () =
  section
    "Ablation E — radix-4 Booth vs AND-array partial products (FA_AOT)\n\
     Booth applies to +/-1-coefficient products of unsigned variables \
     (here: Complex and a plain 16x16 multiplier)";
  let mult16 =
    {
      Dp_designs.Design.name = "Mult16x16";
      description = "plain 16x16 unsigned multiplier";
      expr = Dp_expr.Parse.expr "x*y";
      env = Dp_expr.Env.of_widths [ ("x", 16); ("y", 16) ];
      width = 32;
    }
  in
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        let style multiplier_style =
          verified
            ~lower_config:{ Dp_bitmatrix.Lower.default_config with multiplier_style }
            Strategy.Fa_aot d
        in
        let plain = style Dp_bitmatrix.Lower.And_array in
        let booth = style Dp_bitmatrix.Lower.Booth in
        [
          d.name;
          Report.ns plain.stats.delay;
          Report.units plain.stats.area;
          string_of_int plain.stats.fa_count;
          Report.ns booth.stats.delay;
          Report.units booth.stats.area;
          string_of_int booth.stats.fa_count;
        ])
      [ mult16; Dp_designs.Catalog.complex ]
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:[ "Design"; "AND t"; "AND a"; "FA"; "Booth t"; "Booth a"; "FA" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Ablation F: glitch power under real delays (the paper's model is
   zero-delay and "ignores signal transitions due to glitches") *)

let ablation_glitch () =
  section
    "Ablation F — glitch factor: timed (event-driven) switching energy / \
     zero-delay switching energy\n(1.00 = glitch-free; the paper's model \
     assumes exactly 1.00)";
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        d.name
        :: List.map
             (fun strategy ->
               let r = run strategy d in
               Printf.sprintf "%.2f"
                 (Dp_sim.Event_sim.glitch_factor r.netlist ~vectors:300 ~seed:11))
             [ Strategy.Wallace; Strategy.Csa_opt; Strategy.Fa_aot; Strategy.Fa_alp ])
      [
        Dp_designs.Catalog.x3; Dp_designs.Catalog.poly_mixed;
        Dp_designs.Catalog.iir; Dp_designs.Catalog.serial_adapter;
      ]
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:[ "Design"; "Wallace"; "CSA_OPT"; "FA_AOT"; "FA_ALP" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Ablation G: pipelining cost — latency and register bits at a fixed
   cycle time, per allocation strategy *)

let ablation_pipeline () =
  section
    "Ablation G — pipelining at a 2.0 ns cycle: latency (cycles) and \
     register bits per strategy";
  let cycle_time = 2.0 in
  let rows =
    List.map
      (fun (d : Dp_designs.Design.t) ->
        d.name
        :: List.concat_map
             (fun strategy ->
               let r = run strategy d in
               let p = Dp_pipeline.Pipeline.plan r.netlist ~cycle_time in
               [ string_of_int p.latency; string_of_int p.register_bits ])
             [ Strategy.Conventional; Strategy.Csa_opt; Strategy.Fa_aot ])
      [
        Dp_designs.Catalog.fir8; Dp_designs.Catalog.idct;
        Dp_designs.Catalog.kalman; Dp_designs.Catalog.complex;
      ]
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:
         [ "Design"; "Conv lat"; "regs"; "CSA lat"; "regs"; "AOT lat"; "regs" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark output.

   [speed] writes BENCH_results.json next to the per-run table so every
   PR leaves a perf trajectory: per-experiment ns/run, the cell counts
   and matrix heights of the structures each case exercises, and the git
   revision the numbers belong to. *)

let quick = ref false
let json_path = ref "BENCH_results.json"

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Int of int
    | Bool of bool

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape k));
          emit buf v)
        fields;
      Buffer.add_char buf '}'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        xs;
      Buffer.add_char buf ']'
    | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
    | Num f ->
      (* JSON has no NaN/inf *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")

  let to_string t =
    let buf = Buffer.create 1024 in
    emit buf t;
    Buffer.add_char buf '\n';
    Buffer.contents buf
end

(* Resolve HEAD from .git directly; bench links no process or unix API. *)
let git_rev () =
  let read_line path =
    if Sys.file_exists path then (
      let ic = open_in path in
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      close_in ic;
      line)
    else None
  in
  match read_line ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
    let r = String.trim (String.sub head 5 (String.length head - 5)) in
    match read_line (".git/" ^ r) with Some rev -> rev | None -> "unknown")
  | Some rev -> rev
  | None -> "unknown"

(* ------------------------------------------------------------------ *)
(* Speed fixtures: the structures the reduction/simulation cases exercise *)

(* A single tall column with skewed arrivals and probabilities — the
   wide/tall shape where heap selection beats sort-per-step. *)
let tall_column netlist ~n =
  let arrival = Array.init n (fun i -> float_of_int (i mod 7)) in
  let prob =
    Array.init n (fun i -> 0.05 +. (0.9 *. float_of_int (i mod 10) /. 9.0))
  in
  Array.to_list
    (Dp_netlist.Netlist.add_input netlist "x" ~width:n ~arrival ~prob)

let sc_t_reduce impl n () =
  let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.unit_delay in
  let col = tall_column netlist ~n in
  ignore
    (match impl with
    | `Heap -> Dp_core.Sc_t.reduce_column netlist col
    | `Sorted -> Dp_core.Sc_t.reduce_column_reference netlist col)

let sc_lp_reduce impl n () =
  let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.lcb_like in
  let col = tall_column netlist ~n in
  ignore
    (match impl with
    | `Heap -> Dp_core.Sc_lp.reduce_column netlist col
    | `Sorted -> Dp_core.Sc_lp.reduce_column_reference netlist col)

let mult_design w =
  (Dp_expr.Env.of_widths [ ("x", w); ("y", w) ], Dp_expr.Parse.expr "x*y")

let mult_alloc impl w () =
  let env, expr = mult_design w in
  let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.lcb_like in
  let m = Dp_bitmatrix.Lower.lower netlist env expr ~width:(2 * w) in
  match impl with
  | `Heap -> Dp_core.Fa_aot.allocate netlist m
  | `Sorted ->
    Dp_core.Reduce.sweep netlist m
      ~reducer:(fun nl col -> Dp_core.Sc_t.reduce_column_reference nl col)

(* Deterministic per-lane input patterns for the simulator throughput
   cases; cheap enough not to dominate the measurement. *)
let sim_mix lane name =
  let h = ref ((lane * 0x9E3779B1) + 0x2545F) in
  String.iter (fun c -> h := (!h * 31) + Char.code c) name;
  !h land max_int

let sim_fixture =
  lazy
    (let r = run Strategy.Fa_aot Dp_designs.Catalog.idct in
     let widths =
       List.map
         (fun (name, nets) -> (name, Array.length nets))
         (Dp_netlist.Netlist.inputs r.netlist)
     in
     (r.netlist, widths))

let sim_assign widths lane name =
  sim_mix lane name land Dp_expr.Eval.mask (List.assoc name widths)

let scalar_64vec () =
  let netlist, widths = Lazy.force sim_fixture in
  for lane = 0 to 63 do
    ignore (Dp_sim.Simulator.run netlist ~assign:(sim_assign widths lane))
  done

let bitsim_64vec () =
  let netlist, widths = Lazy.force sim_fixture in
  ignore
    (Dp_sim.Bitsim.run_lanes netlist ~lanes:64 ~assign:(fun lane name ->
         sim_assign widths lane name))

(* Serving-layer batch latency: the same four-design batch served
   through [Dp_cache.Serve] with a pre-warmed store (every request hits)
   vs with no store at all (every request synthesizes).  The gap is the
   price a cold cache pays and the win a warm one buys. *)
let serve_requests =
  lazy
    (List.map
       (fun (d : Dp_designs.Design.t) ->
         Dp_cache.Serve.request ~width:(Some d.width) d.env d.expr)
       [
         Dp_designs.Catalog.x3; Dp_designs.Catalog.poly_mixed;
         Dp_designs.Catalog.iir; Dp_designs.Catalog.serial_adapter;
       ])

let warm_store =
  lazy
    (let store = Dp_cache.Store.create () in
     List.iter
       (fun r -> ignore (Dp_cache.Serve.run ~store r))
       (Lazy.force serve_requests);
     store)

let serve_batch impl () =
  let reqs = Lazy.force serve_requests in
  match impl with
  | `Cache_on ->
    let store = Lazy.force warm_store in
    List.iter (fun r -> ignore (Dp_cache.Serve.run ~store r)) reqs
  | `Cache_off -> List.iter (fun r -> ignore (Dp_cache.Serve.run r)) reqs

(* Cell counts and matrix heights of the structures above, for the JSON
   baseline (one construction per case, outside the timed loop). *)
let speed_case_meta () =
  let column_case name n reduce =
    let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.lcb_like in
    let col = tall_column netlist ~n in
    ignore (reduce netlist col);
    Json.Obj
      [
        ("name", Json.Str name);
        ("matrix_height", Json.Int n);
        ("cells", Json.Int (Dp_netlist.Netlist.cell_count netlist));
      ]
  in
  let mult_case name w =
    let env, expr = mult_design w in
    let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.lcb_like in
    let m = Dp_bitmatrix.Lower.lower netlist env expr ~width:(2 * w) in
    let height = Dp_bitmatrix.Matrix.height m in
    Dp_core.Fa_aot.allocate netlist m;
    Json.Obj
      [
        ("name", Json.Str name);
        ("matrix_height", Json.Int height);
        ("cells", Json.Int (Dp_netlist.Netlist.cell_count netlist));
      ]
  in
  let sim_case name =
    let netlist, _ = Lazy.force sim_fixture in
    Json.Obj
      [
        ("name", Json.Str name);
        ("nets", Json.Int (Dp_netlist.Netlist.net_count netlist));
        ("cells", Json.Int (Dp_netlist.Netlist.cell_count netlist));
      ]
  in
  let serve_case name =
    let store = Dp_cache.Store.create () in
    let reqs = Lazy.force serve_requests in
    List.iter (fun r -> ignore (Dp_cache.Serve.run ~store r)) reqs;
    List.iter (fun r -> ignore (Dp_cache.Serve.run ~store r)) reqs;
    let s = Dp_cache.Store.stats store in
    Json.Obj
      [
        ("name", Json.Str name);
        ("requests", Json.Int (2 * List.length reqs));
        ("hits", Json.Int s.hits);
        ("misses", Json.Int s.misses);
      ]
  in
  (* End-to-end server throughput: an in-process soak (N client threads
     against the socket server), plain and with seeded chaos injection.
     The delta between the two is the latency/throughput tax of the
     resilience machinery actually firing. *)
  (* Crypto-scale reduction shapes: the matrix height / cell count of
     the catalog's 256-bit modular-multiply cores, for the baseline. *)
  let crypto_case name (d : Dp_designs.Design.t) =
    let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.lcb_like in
    let m = Dp_bitmatrix.Lower.lower netlist d.env d.expr ~width:d.width in
    let height = Dp_bitmatrix.Matrix.height m in
    Dp_core.Fa_aot.allocate netlist m;
    Json.Obj
      [
        ("name", Json.Str name);
        ("matrix_height", Json.Int height);
        ("cells", Json.Int (Dp_netlist.Netlist.cell_count netlist));
      ]
  in
  (* GPC counter strategies against their FA-only baselines: cell count,
     counter usage, reduction-stage depth and STA critical path, per
     design — the acceptance numbers for the counter subsystem. *)
  let counters_case name gpc base (d : Dp_designs.Design.t) =
    let rg = run gpc d in
    let rb = run base d in
    Json.Obj
      [
        ("name", Json.Str name);
        ("design", Json.Str d.name);
        ("strategy", Json.Str (Strategy.name gpc));
        ("baseline", Json.Str (Strategy.name base));
        ("delay_ns", Json.Num rg.stats.delay);
        ("baseline_delay_ns", Json.Num rb.stats.delay);
        ("cells", Json.Int rg.stats.cells);
        ("baseline_cells", Json.Int rb.stats.cells);
        ("counters", Json.Int rg.stats.counter_count);
        ("reduction_stages", Json.Int (reduction_levels rg.netlist));
        ("baseline_reduction_stages", Json.Int (reduction_levels rb.netlist));
      ]
  in
  let soak_case ?(crypto = false) ?(mem = false) name ~chaos =
    let fresh tag =
      let path = Filename.temp_file "dpsyn-bench" tag in
      Sys.remove path;
      path
    in
    let r =
      Dp_server.Soak.run
        {
          (Dp_server.Soak.default_config ~socket_path:(fresh ".sock")) with
          Dp_server.Soak.clients = 3;
          requests_per_client = (if !quick then 8 else 25);
          seed = 11;
          chaos =
            (if chaos then
               Some
                 {
                   Dp_server.Chaos.default_config with
                   seed = 11;
                   every = 6;
                   faults =
                     (if mem then
                        Dp_server.Chaos.process_faults
                        @ Dp_server.Chaos.mem_faults
                      else Dp_server.Chaos.default_config.faults);
                 }
             else None);
          crypto_mix = crypto;
          cache_dir = Some (fresh ".cache");
          deadline_ms = Some 5000.0;
        }
    in
    Json.Obj
      [
        ("name", Json.Str name);
        ("requests", Json.Int r.requests);
        ("ok", Json.Int r.ok);
        ("typed_errors", Json.Int r.typed_errors);
        ("wrong_answers", Json.Int r.wrong_answers);
        ("violations", Json.Int r.violations);
        ("requests_per_s", Json.Num r.throughput_rps);
        ("p50_ms", Json.Num r.p50_ms);
        ("p99_ms", Json.Num r.p99_ms);
      ]
  in
  (* The same soak against the multi-process sharded topology (3 forked
     shard servers behind the digest router), plain and with seeded
     shard kills/hangs firing mid-flight — the cost of routing plus the
     cost of failover and restart while correctness holds. *)
  let sharded_soak_case name ~kill =
    let fresh tag =
      let path = Filename.temp_file "dpsyn-bench" tag in
      Sys.remove path;
      path
    in
    let r =
      Dp_server.Soak.run
        {
          (Dp_server.Soak.default_config ~socket_path:(fresh ".sock")) with
          Dp_server.Soak.clients = 3;
          (* the kill variant needs enough in-flight time for the
             wall-clock fault pacer to actually land shard faults *)
          requests_per_client =
            (if kill then if !quick then 50 else 120
             else if !quick then 8
             else 25);
          seed = 11;
          shards = 3;
          shard_chaos =
            (if kill then
               Some
                 {
                   Dp_server.Chaos.default_config with
                   seed = 11;
                   every = 2;
                   faults = Dp_server.Chaos.shard_faults;
                 }
             else None);
          cache_dir = Some (fresh ".cache");
        }
    in
    Json.Obj
      [
        ("name", Json.Str name);
        ("requests", Json.Int r.requests);
        ("ok", Json.Int r.ok);
        ("typed_errors", Json.Int r.typed_errors);
        ("wrong_answers", Json.Int r.wrong_answers);
        ("violations", Json.Int r.violations);
        ("shard_kills", Json.Int r.shard_kills);
        ("shard_hangs", Json.Int r.shard_hangs);
        ("shard_restarts", Json.Int r.shard_restarts);
        ("requests_per_s", Json.Num r.throughput_rps);
        ("p50_ms", Json.Num r.p50_ms);
        ("p99_ms", Json.Num r.p99_ms);
      ]
  in
  (* The durability loop end to end: the journaled sharded topology with
     the fault pacer SIGKILLing the router mid-flight.  Every restart
     replays the journal and reattaches to the still-live shards, so the
     interesting numbers are the replay/reattach counts and the
     SIGKILL -> answers-again recovery latency — with correctness
     (wrong_answers, violations, diverges) pinned at zero. *)
  let journaled_soak_case name =
    let fresh tag =
      let path = Filename.temp_file "dpsyn-bench" tag in
      Sys.remove path;
      path
    in
    let r =
      Dp_server.Soak.run
        {
          (Dp_server.Soak.default_config ~socket_path:(fresh ".sock")) with
          Dp_server.Soak.clients = 3;
          (* long enough in flight for the wall-clock pacer to land
             router kills even against a warm cache *)
          requests_per_client = (if !quick then 100 else 200);
          seed = 11;
          shards = 2;
          journal_dir = Some (fresh ".journal");
          router_chaos =
            Some
              {
                Dp_server.Chaos.default_config with
                seed = 11;
                every = 2;
                faults = Dp_server.Chaos.router_faults;
              };
          cache_dir = Some (fresh ".cache");
        }
    in
    Json.Obj
      [
        ("name", Json.Str name);
        ("requests", Json.Int r.requests);
        ("ok", Json.Int r.ok);
        ("typed_errors", Json.Int r.typed_errors);
        ("wrong_answers", Json.Int r.wrong_answers);
        ("violations", Json.Int r.violations);
        ("diverges", Json.Int r.diverges);
        ("router_kills", Json.Int r.router_kills);
        ("router_restarts", Json.Int r.router_restarts);
        ("replays", Json.Int r.replays);
        ("shard_reattaches", Json.Int r.shard_reattaches);
        ("recovery_ms", Json.Num r.recovery_ms);
        ("requests_per_s", Json.Num r.throughput_rps);
        ("p99_ms", Json.Num r.p99_ms);
      ]
  in
  (* Hedged dispatch under induced tail latency: net chaos delays shard
     responses, the router duplicates slow requests to the next shard,
     and the p99 plus the fired/win counts price the tail-cutting.
     Divergences must stay zero — a hedge may never change an answer. *)
  let hedged_soak_case name =
    let fresh tag =
      let path = Filename.temp_file "dpsyn-bench" tag in
      Sys.remove path;
      path
    in
    let r =
      Dp_server.Soak.run
        {
          (Dp_server.Soak.default_config ~socket_path:(fresh ".sock")) with
          Dp_server.Soak.clients = 3;
          requests_per_client = (if !quick then 30 else 60);
          seed = 11;
          shards = 3;
          hedge = true;
          (* a ~4% tail of 200 ms delays: rare enough that the hedge
             timer's adaptive p95 stays at its 25 ms clamp (a fat tail
             would teach the timer to wait out the delay instead) *)
          chaos =
            Some
              {
                Dp_server.Chaos.seed = 11;
                every = 24;
                slow_s = 0.2;
                faults = [ Dp_server.Chaos.Delay_response ];
              };
          cache_dir = Some (fresh ".cache");
        }
    in
    Json.Obj
      [
        ("name", Json.Str name);
        ("requests", Json.Int r.requests);
        ("ok", Json.Int r.ok);
        ("typed_errors", Json.Int r.typed_errors);
        ("wrong_answers", Json.Int r.wrong_answers);
        ("violations", Json.Int r.violations);
        ("diverges", Json.Int r.diverges);
        ("hedges_fired", Json.Int r.hedges_fired);
        ("hedge_wins", Json.Int r.hedge_wins);
        ("requests_per_s", Json.Num r.throughput_rps);
        ("p50_ms", Json.Num r.p50_ms);
        ("p99_ms", Json.Num r.p99_ms);
      ]
  in
  [
    column_case "reduce/sc_t_n64" 64 (fun nl c -> ignore (Dp_core.Sc_t.reduce_column nl c));
    column_case "reduce/sc_t_n256" 256 (fun nl c -> ignore (Dp_core.Sc_t.reduce_column nl c));
    column_case "reduce/sc_lp_n256" 256 (fun nl c -> ignore (Dp_core.Sc_lp.reduce_column nl c));
    mult_case "reduce/fa_aot_mult24" 24;
    sim_case "sim/idct_fa_aot";
    serve_case "serve/batch_4designs";
    crypto_case "crypto/mulmod_diag256" Dp_designs.Crypto.mul_mod_diag;
    crypto_case "crypto/mac_chain" Dp_designs.Crypto.mac_chain;
    counters_case "counters/poly_square_sc_t_gpc" Strategy.Sc_t_gpc
      Strategy.Fa_aot Dp_designs.Catalog.poly_square;
    counters_case "counters/idct_sc_t_gpc" Strategy.Sc_t_gpc Strategy.Fa_aot
      Dp_designs.Catalog.idct;
    counters_case "counters/complex_sc_t_gpc" Strategy.Sc_t_gpc Strategy.Fa_aot
      Dp_designs.Catalog.complex;
    counters_case "counters/mulmod_diag_sc_t_gpc" Strategy.Sc_t_gpc
      Strategy.Fa_aot Dp_designs.Crypto.mul_mod_diag;
    counters_case "counters/mac_chain_sc_t_gpc" Strategy.Sc_t_gpc
      Strategy.Fa_aot Dp_designs.Crypto.mac_chain;
    counters_case "counters/idct_sc_lp_gpc" Strategy.Sc_lp_gpc Strategy.Fa_alp
      Dp_designs.Catalog.idct;
    counters_case "counters/idct_dadda_gpc" Strategy.Dadda_gpc Strategy.Dadda
      Dp_designs.Catalog.idct;
    soak_case "soak/plain" ~chaos:false;
    soak_case "soak/chaos" ~chaos:true;
    soak_case "soak/crypto_mem_chaos" ~chaos:true ~crypto:true ~mem:true;
    sharded_soak_case "soak/sharded_plain" ~kill:false;
    sharded_soak_case "soak/sharded_kill" ~kill:true;
    journaled_soak_case "soak/router_kill_recovery";
    hedged_soak_case "serve/hedged_p99";
  ]

let bechamel_tests () =
  let open Bechamel in
  let idct = Dp_designs.Catalog.idct in
  let synth strategy () = ignore (run strategy idct) in
  let fig2_alloc () =
    let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.unit_delay in
    let m = fig2_matrix netlist in
    Dp_core.Fa_aot.allocate netlist m
  in
  let fig4_alloc () =
    let netlist = Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.lcb_like in
    let bits =
      Dp_netlist.Netlist.add_input netlist "x" ~width:4
        ~prob:[| 0.1; 0.2; 0.3; 0.4 |]
        ~arrival:[| 0.0; 0.0; 0.0; 0.0 |]
    in
    let m = Dp_bitmatrix.Matrix.create () in
    Array.iter (fun b -> Dp_bitmatrix.Matrix.add m ~weight:0 b) bits;
    Dp_core.Fa_alp.allocate netlist m
  in
  Test.make_grouped ~name:"dpsyn"
    [
      Test.make ~name:"table1/fa_aot_idct" (Staged.stage (synth Strategy.Fa_aot));
      Test.make ~name:"table1/csa_opt_idct" (Staged.stage (synth Strategy.Csa_opt));
      Test.make ~name:"table1/conventional_idct"
        (Staged.stage (synth Strategy.Conventional));
      Test.make ~name:"table2/fa_alp_idct" (Staged.stage (synth Strategy.Fa_alp));
      Test.make ~name:"counters/sc_t_gpc_idct"
        (Staged.stage (synth Strategy.Sc_t_gpc));
      Test.make ~name:"counters/sc_lp_gpc_idct"
        (Staged.stage (synth Strategy.Sc_lp_gpc));
      Test.make ~name:"counters/dadda_gpc_idct"
        (Staged.stage (synth Strategy.Dadda_gpc));
      Test.make ~name:"table2/fa_random_idct"
        (Staged.stage (synth (Strategy.Fa_random 1)));
      Test.make ~name:"fig1/wallace_quickstart"
        (Staged.stage (fun () ->
             let env, expr = fig1_design () in
             let netlist =
               Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.unit_delay
             in
             let m = Dp_bitmatrix.Lower.lower netlist env expr ~width:3 in
             Dp_core.Wallace.allocate netlist m));
      Test.make ~name:"fig2/fa_aot_example" (Staged.stage fig2_alloc);
      Test.make ~name:"fig3/sc_t_column"
        (Staged.stage (fun () ->
             let netlist =
               Dp_netlist.Netlist.create ~tech:Dp_tech.Tech.unit_delay
             in
             let bits = Dp_netlist.Netlist.add_input netlist "x" ~width:6 in
             ignore (Dp_core.Sc_t.reduce_column netlist (Array.to_list bits))));
      Test.make ~name:"fig4/sc_lp_example" (Staged.stage fig4_alloc);
      (* Heap-based column reduction vs the retained sort-per-step
         reference, on the wide/tall shapes where the asymptotics show. *)
      Test.make ~name:"reduce/sc_t_heap_n64" (Staged.stage (sc_t_reduce `Heap 64));
      Test.make ~name:"reduce/sc_t_sorted_n64"
        (Staged.stage (sc_t_reduce `Sorted 64));
      Test.make ~name:"reduce/sc_t_heap_n256"
        (Staged.stage (sc_t_reduce `Heap 256));
      Test.make ~name:"reduce/sc_t_sorted_n256"
        (Staged.stage (sc_t_reduce `Sorted 256));
      Test.make ~name:"reduce/sc_lp_heap_n256"
        (Staged.stage (sc_lp_reduce `Heap 256));
      Test.make ~name:"reduce/sc_lp_sorted_n256"
        (Staged.stage (sc_lp_reduce `Sorted 256));
      Test.make ~name:"reduce/fa_aot_mult24_heap"
        (Staged.stage (mult_alloc `Heap 24));
      Test.make ~name:"reduce/fa_aot_mult24_sorted"
        (Staged.stage (mult_alloc `Sorted 24));
      (* 64 vectors through the scalar simulator vs one 64-lane packed
         sweep of the same netlist. *)
      Test.make ~name:"sim/scalar_64vec_idct" (Staged.stage scalar_64vec);
      Test.make ~name:"sim/bitsim_64vec_idct" (Staged.stage bitsim_64vec);
      (* The same four-design batch through the serving core: warm cache
         (all hits) vs no cache (all fresh synthesis). *)
      Test.make ~name:"serve/batch_cache_on"
        (Staged.stage (serve_batch `Cache_on));
      Test.make ~name:"serve/batch_cache_off"
        (Staged.stage (serve_batch `Cache_off));
      (* Crypto-scale synthesis (a ~256-high addend matrix end to end)
         vs a governed abort on the same request: the abort must cost
         orders of magnitude less than the work it cancels. *)
      Test.make ~name:"crypto/mulmod_diag_fa_aot"
        (Staged.stage (fun () ->
             ignore (run Strategy.Fa_aot Dp_designs.Crypto.mul_mod_diag)));
      Test.make ~name:"crypto/montgomery_fa_alp"
        (Staged.stage (fun () ->
             ignore (run Strategy.Fa_alp Dp_designs.Crypto.montgomery_step)));
      Test.make ~name:"crypto/governed_abort_mulmod"
        (Staged.stage (fun () ->
             let gov = Dp_gov.Gov.create ~deadline_s:0.0 () in
             match
               Dp_gov.Gov.with_ambient gov (fun () ->
                   run Strategy.Fa_aot Dp_designs.Crypto.mul_mod_diag)
             with
             | _ -> ()
             | exception Dp_diag.Diag.E _ -> ()));
    ]

(* ------------------------------------------------------------------ *)
(* GPC counters vs the FA-only strategies *)

let counters () =
  section
    "GPC counters — 7:3/6:3/5:3/4:2 column reduction vs FA-only baselines \
     (all bodies certified, all runs equivalence-checked)";
  let pairs =
    [
      (Dp_designs.Catalog.poly_square, Strategy.Sc_t_gpc, Strategy.Fa_aot);
      (Dp_designs.Catalog.idct, Strategy.Sc_t_gpc, Strategy.Fa_aot);
      (Dp_designs.Catalog.complex, Strategy.Sc_t_gpc, Strategy.Fa_aot);
      (Dp_designs.Crypto.mul_mod_diag, Strategy.Sc_t_gpc, Strategy.Fa_aot);
      (Dp_designs.Crypto.mac_chain, Strategy.Sc_t_gpc, Strategy.Fa_aot);
      (Dp_designs.Catalog.idct, Strategy.Sc_lp_gpc, Strategy.Fa_alp);
      (Dp_designs.Catalog.idct, Strategy.Dadda_gpc, Strategy.Dadda);
    ]
  in
  let rows =
    List.map
      (fun ((d : Dp_designs.Design.t), gpc, base) ->
        let rg = verified gpc d in
        let rb = verified base d in
        [
          d.name;
          Strategy.name gpc;
          Report.ns rg.stats.delay;
          Report.ns rb.stats.delay;
          string_of_int rg.stats.cells;
          string_of_int rb.stats.cells;
          string_of_int rg.stats.counter_count;
          string_of_int (reduction_levels rg.netlist);
          string_of_int (reduction_levels rb.netlist);
        ])
      pairs
  in
  Fmt.pr "%s@."
    (Report.table
       ~header:
         [
           "Design"; "GPC"; "delay"; "base"; "cells"; "base"; "ctrs";
           "stages"; "base";
         ]
       ~rows);
  Fmt.pr
    "stages = longest FA/HA/counter chain; the GPC strategies buy their \
     shallower trees by packing whole columns into single counter levels.@."

let speed () =
  section "Bechamel — synthesis speed (monotonic clock, ns/run)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    if !quick then
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.02) ~kde:(Some 100) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some [ ns ] -> (name, Some ns)
           | Some _ | None -> (name, None))
  in
  (* Column width follows the longest case name: the counters/* and
     crypto/* names run past any fixed width. *)
  let name_width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0
      estimates
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some ns -> Fmt.pr "%-*s %12.0f ns/run@." name_width name ns
      | None -> Fmt.pr "%-*s (no estimate)@." name_width name)
    estimates;
  let json =
    Json.Obj
      [
        ("schema", Json.Str "dpsyn-bench-speed/1");
        ("git_rev", Json.Str (git_rev ()));
        ("quick", Json.Bool !quick);
        ( "results",
          Json.Arr
            (List.map
               (fun (name, est) ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ( "ns_per_run",
                       match est with Some ns -> Json.Num ns | None -> Json.Num Float.nan
                     );
                   ])
               estimates) );
        ("cases", Json.Arr (speed_case_meta ()));
      ]
  in
  let oc = open_out !json_path in
  output_string oc (Json.to_string json);
  close_out oc;
  Fmt.pr "@.wrote %s (%d experiments, git %s)@." !json_path
    (List.length estimates)
    (git_rev ())

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("extended", extended);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("ablation-csd", ablation_csd);
    ("ablation-adder", ablation_adder);
    ("ablation-tie", ablation_tie);
    ("ablation-finish", ablation_finish);
    ("ablation-booth", ablation_booth);
    ("ablation-glitch", ablation_glitch);
    ("ablation-pipeline", ablation_pipeline);
    ("counters", counters);
    ("speed", speed);
  ]

let () =
  let rec parse_flags = function
    | "--quick" :: rest ->
      quick := true;
      parse_flags rest
    | "--json" :: path :: rest ->
      json_path := path;
      parse_flags rest
    | name :: rest -> name :: parse_flags rest
    | [] -> []
  in
  match parse_flags (List.tl (Array.to_list Sys.argv)) with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Fmt.epr "unknown experiment %s; available: %s@." name
            (String.concat " " (List.map fst experiments));
          exit 1)
      names
