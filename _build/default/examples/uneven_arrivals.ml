(* Example: how the advantage of arrival-driven allocation grows with input
   skew.

   One operand of a 5-operand 12-bit addition arrives later and later; the
   fixed Wallace structure cannot route around it, while FA_AOT keeps the
   late signal close to the final adder.  The delay series below is the
   kind of curve Sec. 3's motivation predicts: Wallace's delay climbs one
   full tree depth above the skew, FA_AOT's hugs max(skew, tree delay). *)

let design_with_skew skew =
  let env =
    List.fold_left
      (fun env name -> Dp_expr.Env.add_uniform name ~width:12 env)
      Dp_expr.Env.empty [ "a"; "b"; "c"; "d" ]
    |> Dp_expr.Env.add_uniform "late" ~width:12 ~arrival:skew
  in
  (env, Dp_expr.Parse.expr "a + b + c + d + late")

let () =
  Fmt.pr "skew of 'late' (ns) vs design delay (ns), 12-bit 5-operand sum@.@.";
  Fmt.pr "%-8s %-10s %-10s %-10s %s@." "skew" "Wallace" "CSA_OPT" "FA_AOT"
    "AOT gain vs Wallace";
  List.iter
    (fun skew ->
      let env, expr = design_with_skew skew in
      let run strategy =
        (Dp_flow.Synth.run strategy env expr ~width:15).stats.delay
      in
      let wallace = run Dp_flow.Strategy.Wallace in
      let csa = run Dp_flow.Strategy.Csa_opt in
      let aot = run Dp_flow.Strategy.Fa_aot in
      Fmt.pr "%-8.1f %-10.2f %-10.2f %-10.2f %.1f%%@." skew wallace csa aot
        (Dp_flow.Report.improvement ~baseline:wallace ~ours:aot))
    [ 0.0; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ]
