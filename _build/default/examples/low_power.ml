(* Example: power-driven allocation (FA_ALP) and validation of the
   switching-activity model by Monte-Carlo simulation.

   The complex-multiplier real part is synthesized twice — with random FA
   input selection and with the paper's largest-|q|-first rule — under
   random input signal probabilities.  The analytic E_switching (the
   paper's metric) is then cross-checked against toggle counting on
   simulated random vectors. *)

let () =
  let d = Dp_designs.Design.with_random_probs ~seed:42 Dp_designs.Catalog.complex in
  Fmt.pr "design: %s@.@." d.description;
  let alp = Dp_flow.Synth.run Dp_flow.Strategy.Fa_alp d.env d.expr ~width:d.width in
  Fmt.pr "%-14s %-10s %-14s %s@." "strategy" "E(tree)" "E(total)" "delay";
  List.iter
    (fun strategy ->
      let r = Dp_flow.Synth.run strategy d.env d.expr ~width:d.width in
      Fmt.pr "%-14s %-10.3f %-14.3f %.2f ns@."
        (Dp_flow.Strategy.name strategy)
        r.tree_switching r.total_switching r.stats.delay)
    [
      Dp_flow.Strategy.Fa_random 1;
      Dp_flow.Strategy.Fa_random 2;
      Dp_flow.Strategy.Fa_random 3;
      Dp_flow.Strategy.Fa_alp;
      Dp_flow.Strategy.Fa_alp_combined;
    ];
  Fmt.pr "@.Monte-Carlo check of the zero-delay model (FA_ALP netlist):@.";
  let vectors = 3000 in
  let rates = Dp_sim.Monte_carlo.toggle_rates ~vectors alp.netlist in
  let measured = Dp_sim.Monte_carlo.switching_energy alp.netlist rates.toggle_rate in
  Fmt.pr "  analytic total switching: %.3f@." alp.total_switching;
  Fmt.pr "  measured (%d vectors):   %.3f@." vectors measured;
  Fmt.pr
    "  (the gap is the reconvergent-fanout correlation the paper's model \
     ignores)@."
