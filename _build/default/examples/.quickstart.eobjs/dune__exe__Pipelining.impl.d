examples/pipelining.ml: Dp_designs Dp_flow Dp_pipeline Fmt List
