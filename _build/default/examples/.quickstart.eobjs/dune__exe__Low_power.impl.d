examples/low_power.ml: Dp_designs Dp_flow Dp_sim Fmt List
