examples/uneven_arrivals.ml: Dp_expr Dp_flow Fmt List
