examples/multi_output.mli:
