examples/pipelining.mli:
