examples/uneven_arrivals.mli:
