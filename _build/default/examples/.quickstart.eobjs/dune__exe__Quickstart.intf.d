examples/quickstart.mli:
