examples/low_power.mli:
