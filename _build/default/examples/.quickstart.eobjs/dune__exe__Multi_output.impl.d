examples/multi_output.ml: Dp_expr Dp_flow Dp_netlist Dp_sim Fmt List
