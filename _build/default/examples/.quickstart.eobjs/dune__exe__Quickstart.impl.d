examples/quickstart.ml: Dp_adders Dp_expr Dp_flow Dp_netlist Dp_sim Dp_tech Fmt List
