examples/iir_filter.ml: Dp_designs Dp_expr Dp_flow Dp_netlist Dp_sim Dp_timing Fmt List Out_channel String
