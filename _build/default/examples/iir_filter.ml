(* Example: synthesizing the arithmetic part of a 2nd-order IIR filter.

   The feedback states w1/w2 arrive late (they come out of the previous
   cycle's registers through other logic), which is exactly the "uneven
   signal arrival profile" the paper's FA_AOT exploits.  This example
   compares all strategies, prints the critical path of the best design,
   and writes its Verilog netlist next to the executable. *)

let () =
  let d = Dp_designs.Catalog.iir in
  Fmt.pr "design: %s@." d.description;
  Fmt.pr "expression: %a   (output width %d)@.@." Dp_expr.Ast.pp d.expr d.width;
  List.iter
    (fun strategy ->
      let r = Dp_flow.Synth.run strategy d.env d.expr ~width:d.width in
      (match Dp_flow.Synth.verify r d.expr with
      | Ok () -> ()
      | Error m -> Fmt.failwith "BUG: %a" Dp_sim.Equiv.pp_mismatch m);
      Fmt.pr "%-12s %a@." (Dp_flow.Strategy.name strategy) Dp_netlist.Stats.pp
        r.stats)
    [
      Dp_flow.Strategy.Conventional;
      Dp_flow.Strategy.Wallace;
      Dp_flow.Strategy.Csa_opt;
      Dp_flow.Strategy.Fa_aot;
    ];
  Fmt.pr "@.";
  let best = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let path = Dp_timing.Sta.critical_path best.netlist in
  Fmt.pr "FA_AOT critical path:@.  %a@.@." (Dp_timing.Sta.pp_path best.netlist) path;
  let verilog = Dp_netlist.Verilog.emit ~module_name:"iir_datapath" best.netlist in
  let file = "iir_datapath.v" in
  Out_channel.with_open_text file (fun oc -> output_string oc verilog);
  Fmt.pr "wrote %s (%d bytes); first lines:@." file (String.length verilog);
  String.split_on_char '\n' verilog
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter (Fmt.pr "  %s@.")
