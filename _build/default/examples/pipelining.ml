(* Example: cycle-time exploration.

   Behavioral synthesis fixes a cycle time and pays for speed with pipeline
   latency and registers.  This example sweeps the cycle time over the
   FIR8 kernel and prints the latency/register trade-off for the
   conventional operator tree vs the paper's FA_AOT tree — the bit-level
   tree is both faster and much cheaper to cut into stages. *)

let () =
  let d = Dp_designs.Catalog.fir8 in
  Fmt.pr "design: %s@." d.description;
  let conv =
    Dp_flow.Synth.run Dp_flow.Strategy.Conventional d.env d.expr ~width:d.width
  in
  let aot = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  Fmt.pr "combinational delay: conventional %.2f ns, FA_AOT %.2f ns@.@."
    conv.stats.delay aot.stats.delay;
  Fmt.pr "%-10s %-22s %s@." "cycle(ns)" "Conventional (lat/regs)" "FA_AOT (lat/regs)";
  List.iter
    (fun cycle_time ->
      let p_conv = Dp_pipeline.Pipeline.plan conv.netlist ~cycle_time in
      let p_aot = Dp_pipeline.Pipeline.plan aot.netlist ~cycle_time in
      Fmt.pr "%-10.1f %2d / %-18d %2d / %d@." cycle_time p_conv.latency
        p_conv.register_bits p_aot.latency p_aot.register_bits)
    [ 1.0; 1.5; 2.0; 3.0; 5.0; 8.0; 12.0 ];
  Fmt.pr "@.(registers are pipeline bits; latency of 1 = purely combinational)@."
