(* Quickstart: synthesize F = X + Y + Z + W — the paper's running example
   (Figs. 1 and 2) — with every strategy, and verify each netlist computes
   the same function. *)

let () =
  (* The operand profile of Fig. 2: X = x1x0, Y = y1y0, Z = z0, W = w1w0,
     with bit arrival times x = (7, 2), y = (5, 3), z = (4), w = (2, 2). *)
  let env =
    Dp_expr.Env.empty
    |> Dp_expr.Env.add "x" ~width:2 ~arrival:[| 7.0; 7.0 |]
    |> Dp_expr.Env.add "y" ~width:2 ~arrival:[| 2.0; 5.0 |]
    |> Dp_expr.Env.add "z" ~width:1 ~arrival:[| 3.0 |]
    |> Dp_expr.Env.add "w" ~width:2 ~arrival:[| 2.0; 4.0 |]
  in
  let expr = Dp_expr.Parse.expr "x + y + z + w" in
  Fmt.pr "F = %a@.@." Dp_expr.Ast.pp expr;
  List.iter
    (fun strategy ->
      let result =
        Dp_flow.Synth.run ~tech:Dp_tech.Tech.unit_delay
          ~adder:Dp_adders.Adder.Ripple strategy env expr
      in
      let equiv =
        match Dp_flow.Synth.verify result expr with
        | Ok () -> "equivalent"
        | Error m -> Fmt.str "MISMATCH: %a" Dp_sim.Equiv.pp_mismatch m
      in
      Fmt.pr "%-12s %a  [%s]@."
        (Dp_flow.Strategy.name strategy)
        Dp_netlist.Stats.pp result.stats equiv)
    Dp_flow.Strategy.all
