(* Example: synthesizing a whole block with several outputs at once.

   A full complex multiplier (both the real and the imaginary part) is
   synthesized into one netlist: the four input buses are shared, and —
   because the netlist builder hashes structurally — so is any partial
   product both outputs need.  The paper applies its algorithm "to all
   arithmetic expressions in a circuit iteratively"; this is that flow. *)

let () =
  let env =
    Dp_expr.Env.of_widths [ ("a", 16); ("b", 16); ("c", 16); ("d", 16) ]
  in
  let ports =
    [
      { Dp_flow.Synth.name = "re"; expr = Dp_expr.Parse.expr "a*c - b*d"; width = 33 };
      { Dp_flow.Synth.name = "im"; expr = Dp_expr.Parse.expr "a*d + b*c"; width = 33 };
    ]
  in
  Fmt.pr "complex multiplier (16-bit operands, both outputs):@.@.";
  List.iter
    (fun strategy ->
      let r = Dp_flow.Synth.run_multi strategy env ports in
      let status =
        match Dp_flow.Synth.verify_multi r with
        | Ok () -> "ok"
        | Error (port, m) -> Fmt.str "FAIL %s: %a" port Dp_sim.Equiv.pp_mismatch m
      in
      Fmt.pr "%-12s %a  [%s]@."
        (Dp_flow.Strategy.name strategy)
        Dp_netlist.Stats.pp r.stats status)
    [ Dp_flow.Strategy.Conventional; Dp_flow.Strategy.Csa_opt; Dp_flow.Strategy.Fa_aot ];
  (* quantify the sharing on a squarer/cuber pair *)
  Fmt.pr "@.sharing check: x^2 and x^3 (8-bit x) jointly vs separately:@.";
  let env = Dp_expr.Env.of_widths [ ("x", 8) ] in
  let p2 = { Dp_flow.Synth.name = "sq"; expr = Dp_expr.Parse.expr "x^2"; width = 16 } in
  let p3 = { Dp_flow.Synth.name = "cube"; expr = Dp_expr.Parse.expr "x^3"; width = 24 } in
  let joint = Dp_flow.Synth.run_multi Dp_flow.Strategy.Fa_aot env [ p2; p3 ] in
  let solo p =
    (Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot env p.Dp_flow.Synth.expr
       ~width:p.Dp_flow.Synth.width).stats.cells
  in
  Fmt.pr "  joint: %d cells; separate: %d + %d cells@." joint.stats.cells
    (solo p2) (solo p3)
