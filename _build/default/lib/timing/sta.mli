(** Static timing analysis.

    Computes arrival times from primary-input arrivals and per-cell
    pin-to-pin delays — the same model the allocation algorithms use
    incrementally, recomputed from scratch as an independent check. *)

open Dp_netlist

(** Arrival time per net, indexed by net id. *)
val arrivals : Netlist.t -> float array

(** True iff the from-scratch arrivals match the builder's incremental
    annotation within [eps]. *)
val agrees_with_annotation : ?eps:float -> Netlist.t -> bool

(** Latest output arrival — the design delay reported in Table 1. *)
val design_delay : Netlist.t -> float

type endpoint = { output : string; bit : int; arrival : float }

val endpoints : Netlist.t -> endpoint list

(** @raise Invalid_argument if the netlist declares no outputs. *)
val critical_endpoint : Netlist.t -> endpoint

(** Nets of the critical path, source first. *)
val critical_path : Netlist.t -> Netlist.net list

val pp_endpoint : endpoint Fmt.t
val pp_path : Netlist.t -> Netlist.net list Fmt.t
