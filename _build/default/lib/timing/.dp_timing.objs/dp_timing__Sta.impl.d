lib/timing/sta.ml: Array Dp_netlist Dp_tech Float Fmt List Netlist Stats Topo
