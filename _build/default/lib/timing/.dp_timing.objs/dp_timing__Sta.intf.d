lib/timing/sta.mli: Dp_netlist Fmt Netlist
