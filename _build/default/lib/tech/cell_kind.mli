(** Kinds of cells available in the target technology.

    An [Fa] (full adder) sums three bits of the same weight into a sum bit
    (port 0) and a carry-out bit of the next weight (port 1).  An [Ha] (half
    adder) does the same for two bits.  [And_n n], [Or_n n] and [Xor_n n] are
    [n]-input single-output gates ([n >= 2]); wide instances are priced as
    balanced trees of 2-input gates. *)

type t =
  | Fa
  | Ha
  | And_n of int
  | Or_n of int
  | Xor_n of int
  | Not
  | Buf

val equal : t -> t -> bool

(** Number of input pins. *)
val arity : t -> int

(** Number of output ports: 2 for [Fa]/[Ha] (sum, carry), 1 otherwise. *)
val output_count : t -> int

val name : t -> string
val pp : t Fmt.t
