type t = {
  name : string;
  fa_sum_delay : float;
  fa_carry_delay : float;
  ha_sum_delay : float;
  ha_carry_delay : float;
  and2_delay : float;
  or2_delay : float;
  xor2_delay : float;
  not_delay : float;
  buf_delay : float;
  fa_area : float;
  ha_area : float;
  and2_area : float;
  or2_area : float;
  xor2_area : float;
  not_area : float;
  buf_area : float;
  fa_sum_energy : float;
  fa_carry_energy : float;
  ha_sum_energy : float;
  ha_carry_energy : float;
  gate_energy : float;
}

(* Delay/area magnitudes chosen at 0.35um standard-cell scale; only relative
   values matter for reproducing the paper's comparisons. *)
let lcb_like = {
  name = "lcb_like_0.35um";
  fa_sum_delay = 0.45;
  fa_carry_delay = 0.32;
  ha_sum_delay = 0.28;
  ha_carry_delay = 0.18;
  and2_delay = 0.15;
  or2_delay = 0.15;
  xor2_delay = 0.25;
  not_delay = 0.08;
  buf_delay = 0.10;
  fa_area = 8.0;
  ha_area = 4.0;
  and2_area = 2.0;
  or2_area = 2.0;
  xor2_area = 3.0;
  not_area = 1.0;
  buf_area = 1.0;
  fa_sum_energy = 1.0;
  fa_carry_energy = 1.1;
  ha_sum_energy = 0.55;
  ha_carry_energy = 0.45;
  gate_energy = 0.25;
}

(* The teaching technology of the paper's Fig. 2: Ds = 2, Dc = 1, everything
   else free.  Lets the examples reproduce the figure's arrival arithmetic. *)
let unit_delay = {
  name = "unit_delay";
  fa_sum_delay = 2.0;
  fa_carry_delay = 1.0;
  ha_sum_delay = 2.0;
  ha_carry_delay = 1.0;
  and2_delay = 0.0;
  or2_delay = 0.0;
  xor2_delay = 0.0;
  not_delay = 0.0;
  buf_delay = 0.0;
  fa_area = 1.0;
  ha_area = 0.5;
  and2_area = 0.0;
  or2_area = 0.0;
  xor2_area = 0.0;
  not_area = 0.0;
  buf_area = 0.0;
  fa_sum_energy = 1.0;
  fa_carry_energy = 1.0;
  ha_sum_energy = 1.0;
  ha_carry_energy = 1.0;
  gate_energy = 0.0;
}

let tree_levels n =
  (* depth of a balanced binary tree with [n] leaves *)
  let rec go acc cap = if cap >= n then acc else go (acc + 1) (cap * 2) in
  go 0 1

let delay t kind ~port =
  match (kind : Cell_kind.t), port with
  | Fa, 0 -> t.fa_sum_delay
  | Fa, 1 -> t.fa_carry_delay
  | Ha, 0 -> t.ha_sum_delay
  | Ha, 1 -> t.ha_carry_delay
  | And_n n, 0 -> t.and2_delay *. float_of_int (tree_levels n)
  | Or_n n, 0 -> t.or2_delay *. float_of_int (tree_levels n)
  | Xor_n n, 0 -> t.xor2_delay *. float_of_int (tree_levels n)
  | Not, 0 -> t.not_delay
  | Buf, 0 -> t.buf_delay
  | (Fa | Ha | And_n _ | Or_n _ | Xor_n _ | Not | Buf), _ ->
    invalid_arg "Tech.delay: bad output port"

let area t (kind : Cell_kind.t) =
  match kind with
  | Fa -> t.fa_area
  | Ha -> t.ha_area
  | And_n n -> t.and2_area *. float_of_int (n - 1)
  | Or_n n -> t.or2_area *. float_of_int (n - 1)
  | Xor_n n -> t.xor2_area *. float_of_int (n - 1)
  | Not -> t.not_area
  | Buf -> t.buf_area

let energy t kind ~port =
  match (kind : Cell_kind.t), port with
  | Fa, 0 -> t.fa_sum_energy
  | Fa, 1 -> t.fa_carry_energy
  | Ha, 0 -> t.ha_sum_energy
  | Ha, 1 -> t.ha_carry_energy
  | (And_n _ | Or_n _ | Xor_n _ | Not | Buf), 0 -> t.gate_energy
  | (Fa | Ha | And_n _ | Or_n _ | Xor_n _ | Not | Buf), _ ->
    invalid_arg "Tech.energy: bad output port"

let pp ppf t = Fmt.pf ppf "tech:%s" t.name
