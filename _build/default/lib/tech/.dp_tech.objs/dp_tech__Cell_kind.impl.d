lib/tech/cell_kind.ml: Fmt Printf
