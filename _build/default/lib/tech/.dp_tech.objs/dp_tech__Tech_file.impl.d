lib/tech/tech_file.ml: In_channel List Printf String Tech
