lib/tech/cell_kind.mli: Fmt
