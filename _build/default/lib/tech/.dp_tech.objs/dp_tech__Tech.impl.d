lib/tech/tech.ml: Cell_kind Fmt
