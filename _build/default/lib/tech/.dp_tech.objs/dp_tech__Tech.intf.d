lib/tech/tech.mli: Cell_kind Fmt
