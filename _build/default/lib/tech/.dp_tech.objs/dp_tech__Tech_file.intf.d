lib/tech/tech_file.mli: Tech
