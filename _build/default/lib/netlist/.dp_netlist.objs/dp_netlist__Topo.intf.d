lib/netlist/topo.mli: Netlist
