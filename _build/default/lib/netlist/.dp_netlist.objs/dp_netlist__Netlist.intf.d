lib/netlist/netlist.mli: Dp_tech
