lib/netlist/vec.ml: Array List
