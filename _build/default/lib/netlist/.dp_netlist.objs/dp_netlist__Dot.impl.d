lib/netlist/dot.ml: Array Buffer Dp_tech List Netlist Printf
