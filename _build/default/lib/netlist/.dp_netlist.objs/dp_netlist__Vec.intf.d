lib/netlist/vec.mli:
