lib/netlist/stats.ml: Dp_tech Fmt Hashtbl List Netlist Option Printf String Topo
