lib/netlist/topo.ml: Array List Netlist
