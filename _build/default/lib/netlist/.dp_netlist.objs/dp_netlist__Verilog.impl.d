lib/netlist/verilog.ml: Array Buffer Dp_tech List Netlist Printf String
