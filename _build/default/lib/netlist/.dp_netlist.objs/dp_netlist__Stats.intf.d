lib/netlist/stats.mli: Dp_tech Fmt Netlist
