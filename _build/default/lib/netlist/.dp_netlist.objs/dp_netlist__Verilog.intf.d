lib/netlist/verilog.mli: Netlist
