lib/netlist/netlist.ml: Array Bool Dp_tech Float Hashtbl Int List Printf Vec
