(** Graphviz rendering of a netlist, for inspecting FA-tree shapes. *)

val emit : ?graph_name:string -> Netlist.t -> string
