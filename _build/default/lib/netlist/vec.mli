(** Minimal growable array (OCaml 5.1 has no [Dynarray]). *)

type 'a t

(** [dummy] fills unused capacity and is never observable. *)
val create : dummy:'a -> 'a t

val length : 'a t -> int

(** Append and return the element's index. *)
val push : 'a t -> 'a -> int

(** @raise Invalid_argument out of bounds. *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument out of bounds. *)
val set : 'a t -> int -> 'a -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
