(** Structural Verilog emission.

    The paper's tool emitted the allocated FA-tree as a Verilog netlist for
    Synopsys; we emit the same style: vector ports, one primitive gate or
    [DP_FA]/[DP_HA] instance per cell, with the FA/HA module definitions
    appended when used. *)

val emit : ?module_name:string -> Netlist.t -> string
