type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }

let length v = v.len

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = max n (2 * Array.length v.data) in
    let data = Array.make cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))
