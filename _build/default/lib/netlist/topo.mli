(** Structural checks and level analysis.  Nets are created in topological
    order by construction; these utilities verify and exploit that. *)

(** True iff every cell consumes only nets created before its outputs. *)
val check : Netlist.t -> bool

(** Logic level per net: 0 for inputs/constants, 1 + max over fanin
    otherwise.  Indexed by net id. *)
val levels : Netlist.t -> int array

(** Maximum logic level over all declared outputs. *)
val depth : Netlist.t -> int

(** Nets of the latest-arrival path ending at [from], listed source first. *)
val critical_path : Netlist.t -> from:Netlist.net -> Netlist.net list
