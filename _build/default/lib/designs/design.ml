open Dp_expr

type t = {
  name : string;
  description : string;
  expr : Ast.t;
  env : Env.t;
  width : int;
}

let staggered ?(base = 0.0) ?(slope = 0.0) width =
  Array.init width (fun i -> base +. (slope *. float_of_int i))

let random_probs rng width =
  Array.init width (fun _ -> 0.05 +. Random.State.float rng 0.9)

let with_random_probs ~seed design =
  let rng = Random.State.make [| seed |] in
  let env =
    List.fold_left
      (fun env (name, (info : Env.var_info)) ->
        Env.add name ~width:info.width ~arrival:info.arrival
          ~prob:(random_probs rng info.width)
          env)
      Env.empty (Env.bindings design.env)
  in
  { design with env }

let natural_width design = Range.natural_width design.env design.expr

let pp ppf d =
  Fmt.pf ppf "%s: %a (W=%d) %a" d.name Ast.pp d.expr d.width Env.pp d.env
