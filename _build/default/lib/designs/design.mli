(** A benchmark design: an expression plus its input characteristics
    (bit-widths, per-bit arrival times, per-bit signal probabilities) and
    the output width — exactly the inputs the paper's tool accepts. *)

open Dp_expr

type t = {
  name : string;
  description : string;
  expr : Ast.t;
  env : Env.t;
  width : int;  (** output width W; the design computes expr mod 2^W *)
}

(** Arrival profile [base + slope*i] for bit i. *)
val staggered : ?base:float -> ?slope:float -> int -> float array

(** Independent per-bit probabilities drawn uniformly from [0.05, 0.95]. *)
val random_probs : Random.State.t -> int -> float array

(** Same design with every input's probabilities re-drawn from [seed] —
    Table 2's "random signal probabilities". *)
val with_random_probs : seed:int -> t -> t

val natural_width : t -> int
val pp : t Fmt.t
