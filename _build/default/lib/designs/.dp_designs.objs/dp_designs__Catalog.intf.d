lib/designs/catalog.mli: Design
