lib/designs/design.mli: Ast Dp_expr Env Fmt Random
