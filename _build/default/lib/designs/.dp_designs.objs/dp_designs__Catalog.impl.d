lib/designs/catalog.ml: Design Dp_expr Env List Parse String
