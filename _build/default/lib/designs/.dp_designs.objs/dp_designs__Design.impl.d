lib/designs/design.ml: Array Ast Dp_expr Env Fmt List Random Range
