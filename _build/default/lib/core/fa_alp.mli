(** Algorithm FA_ALP — FA-tree Allocation for Low Power (paper Sec. 4.3):
    the FA_AOT sweep with {!Sc_lp} as the column reducer, selecting FA
    inputs by largest |q| instead of earliest arrival. *)

open Dp_netlist
open Dp_bitmatrix

(** Reduce [matrix] in place to two rows. *)
val allocate : ?tie_break:Sc_lp.tie_break -> Netlist.t -> Matrix.t -> unit
