(** Right-to-left column sweep shared by FA_AOT, FA_ALP and FA_random.

    A column reducer takes the addends of one column (more than two) and
    returns the at-most-two addends it keeps in that column plus the
    carry-out addends it sends to the next column. *)

open Dp_netlist
open Dp_bitmatrix

type column_reducer =
  Netlist.t -> Netlist.net list -> Netlist.net list * Netlist.net list

(** Reduce every column of [matrix] (in place) to at most two addends.
    @raise Invalid_argument if the reducer keeps more than two addends. *)
val sweep : Netlist.t -> Matrix.t -> reducer:column_reducer -> unit
