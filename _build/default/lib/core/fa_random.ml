
let allocate ?(seed = 0xDA2000) netlist matrix =
  let rng = Random.State.make [| seed |] in
  Reduce.sweep netlist matrix
    ~reducer:(fun netlist col -> Sc_random.reduce_column rng netlist col)
