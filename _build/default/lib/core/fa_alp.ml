
let allocate ?(tie_break = Sc_lp.Q_only) netlist matrix =
  Reduce.sweep netlist matrix
    ~reducer:(fun netlist col -> Sc_lp.reduce_column ~tie_break netlist col)
