lib/core/fa_aot.mli: Dp_bitmatrix Dp_netlist Matrix Netlist Sc_t
