lib/core/exhaustive.mli: Dp_bitmatrix Dp_netlist Matrix Netlist
