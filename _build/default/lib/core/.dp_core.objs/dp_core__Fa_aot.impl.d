lib/core/fa_aot.ml: Reduce Sc_t
