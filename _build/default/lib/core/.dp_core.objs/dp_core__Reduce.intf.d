lib/core/reduce.mli: Dp_bitmatrix Dp_netlist Matrix Netlist
