lib/core/fa_random.ml: Random Reduce Sc_random
