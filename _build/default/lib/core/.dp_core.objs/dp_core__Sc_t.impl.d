lib/core/sc_t.ml: Dp_netlist Float Int List Netlist
