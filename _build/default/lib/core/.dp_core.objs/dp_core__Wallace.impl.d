lib/core/wallace.ml: Array Dp_bitmatrix Dp_netlist List Matrix Netlist
