lib/core/fa_random.mli: Dp_bitmatrix Dp_netlist Matrix Netlist
