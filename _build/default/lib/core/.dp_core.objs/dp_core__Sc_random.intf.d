lib/core/sc_random.mli: Dp_netlist Netlist Random
