lib/core/sc_random.ml: Array Dp_netlist List Netlist Random
