lib/core/dadda.ml: Dp_bitmatrix Dp_netlist List Matrix Netlist
