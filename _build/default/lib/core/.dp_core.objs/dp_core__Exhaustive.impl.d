lib/core/exhaustive.ml: Dp_bitmatrix Dp_netlist Dp_tech Float Hashtbl List Matrix Netlist
