lib/core/column_isolation.ml: Dp_netlist Dp_tech Float Int List Netlist Reduce
