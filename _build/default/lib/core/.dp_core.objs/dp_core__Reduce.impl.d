lib/core/reduce.ml: Dp_bitmatrix Dp_netlist List Matrix Netlist
