lib/core/dadda.mli: Dp_bitmatrix Dp_netlist Matrix Netlist
