lib/core/sc_lp.ml: Dp_netlist Float Int List Netlist
