lib/core/sc_t.mli: Dp_netlist Netlist
