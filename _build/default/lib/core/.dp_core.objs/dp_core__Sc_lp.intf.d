lib/core/sc_lp.mli: Dp_netlist Netlist
