lib/core/wallace.mli: Dp_bitmatrix Dp_netlist Matrix Netlist
