lib/core/fa_alp.mli: Dp_bitmatrix Dp_netlist Matrix Netlist Sc_lp
