lib/core/column_isolation.mli: Dp_bitmatrix Dp_netlist Matrix Netlist
