lib/core/fa_alp.ml: Reduce Sc_lp
