(** FA_random — the random-selection baseline of the paper's Table 2,
    deterministic under a fixed seed. *)

open Dp_netlist
open Dp_bitmatrix

(** Reduce [matrix] in place to two rows. *)
val allocate : ?seed:int -> Netlist.t -> Matrix.t -> unit
