(** The "column-isolation" strategy of the paper's Fig. 2(b): arrival-driven
    selection, but restricted to the column's original (input) addends —
    intermediate sums are not reconsidered.  Sits between Wallace and the
    full column-interaction of SC_T; kept to reproduce Fig. 2. *)

open Dp_netlist
open Dp_bitmatrix

val reduce_column :
  Netlist.t -> Netlist.net list -> Netlist.net list * Netlist.net list

(** Reduce [matrix] in place to two rows. *)
val allocate : Netlist.t -> Matrix.t -> unit
