open Dp_netlist

let take_random rng pool =
  let arr = Array.of_list pool in
  let i = Random.State.int rng (Array.length arr) in
  let chosen = arr.(i) in
  chosen, List.filteri (fun j _ -> j <> i) pool

let reduce_column rng netlist addends =
  (* The FA_random baseline of Table 2: same FA/HA counts as SC_T/SC_LP,
     uniformly random input selection. *)
  let rec go pool carries =
    match List.length pool with
    | 0 | 1 | 2 -> pool, List.rev carries
    | 3 ->
      let x, pool = take_random rng pool in
      let y, pool = take_random rng pool in
      let sum, carry = Netlist.ha netlist x y in
      (sum :: pool), List.rev (carry :: carries)
    | _ ->
      let x, pool = take_random rng pool in
      let y, pool = take_random rng pool in
      let z, pool = take_random rng pool in
      let sum, carry = Netlist.fa netlist x y z in
      go (sum :: pool) (carry :: carries)
  in
  go addends []
