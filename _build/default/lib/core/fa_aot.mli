(** Algorithm FA_AOT — FA-tree Allocation for Optimal Timing (paper
    Sec. 3.3): apply {!Sc_t} to every column, rightmost first, feeding each
    column's carry-outs to the next.  Theorem 1: the resulting FA-tree has
    optimal delay; by Lemma 2 every signal of the reduced matrix is in fact
    pointwise-earliest, so any final adder sees the best possible inputs. *)

open Dp_netlist
open Dp_bitmatrix

(** Reduce [matrix] in place to at most two addends per column.
    [three_policy] selects the paper's HA finish or the adaptive
    extension (see {!Sc_t.three_policy}). *)
val allocate :
  ?tie_break:Sc_t.tie_break -> ?three_policy:Sc_t.three_policy ->
  Netlist.t -> Matrix.t -> unit
