(** Classic staged Wallace-tree compression — the fixed-structure scheme
    the paper generalizes.  Stages are synchronous across columns: in each
    stage every column of height >= 3 is maximally compressed (FAs on
    consecutive triples in the listed order, an HA on a trailing pair),
    ignoring arrival times and signal probabilities entirely, and carries
    only become visible in the following stage.  This reproduces the
    "fixed selection of addends" of Fig. 2(a). *)

open Dp_netlist
open Dp_bitmatrix

(** Reduce [matrix] in place to two rows. *)
val allocate : Netlist.t -> Matrix.t -> unit
