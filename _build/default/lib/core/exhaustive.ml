open Dp_netlist
open Dp_bitmatrix

(* Exhaustive delay-optimal FA-tree allocation for small matrices.

   The search walks the same column-sequential space as FA_AOT (Condition 1
   of the paper) but considers EVERY choice of FA inputs, and at three
   remaining addends both the paper's HA finish and a 3-input FA.  It
   minimizes the latest signal of the reduced matrix — the objective of the
   paper's modified Problem 1 — by branch-and-bound on a pure timing model,
   then replays the winning decision sequence onto the netlist.

   Purpose: measuring exactly how close the greedy FA_AOT gets (Theorem 1
   claims optimality; EXPERIMENTS.md documents the rare Dc-bounded gap).
   The space is exponential, so the matrix size is capped.

   Items are identified by uid: the matrix's addends get 0..n-1 in
   column-major order, and every decision mints two fresh uids (sum, then
   carry) in plan order — identically during search and replay. *)

exception Too_large

type item = { time : float; uid : int }

type decision =
  | Fa3 of int * int * int
  | Ha2 of int * int

(* All ways to choose k items from a list, with the complement. *)
let rec choose k items =
  if k = 0 then [ ([], items) ]
  else
    match items with
    | [] -> []
    | x :: rest ->
      List.map (fun (p, o) -> (x :: p, o)) (choose (k - 1) rest)
      @ List.map (fun (p, o) -> (p, x :: o)) (choose k rest)

let max_time items =
  List.fold_left (fun acc i -> Float.max acc i.time) neg_infinity items

(* Enumerate the reduction paths of one column: from [pool], explore every
   decision sequence reaching <= 2 items; call [k] with the kept items, the
   carries, the decisions (in execution order) and the next fresh uid. *)
let rec reduce_paths (tech : Dp_tech.Tech.t) pool carries decisions next_uid k =
  if List.length pool <= 2 then k pool carries (List.rev decisions) next_uid
  else begin
    List.iter
      (fun (picked, others) ->
        match picked with
        | [ a; b; c ] ->
          let tmax = Float.max a.time (Float.max b.time c.time) in
          let sum = { time = tmax +. tech.fa_sum_delay; uid = next_uid } in
          let carry = { time = tmax +. tech.fa_carry_delay; uid = next_uid + 1 } in
          reduce_paths tech (sum :: others) (carry :: carries)
            (Fa3 (a.uid, b.uid, c.uid) :: decisions)
            (next_uid + 2) k
        | [] | [ _ ] | [ _; _ ] | _ :: _ :: _ :: _ :: _ -> assert false)
      (choose 3 pool);
    if List.length pool = 3 then
      List.iter
        (fun (picked, others) ->
          match picked with
          | [ a; b ] ->
            let tmax = Float.max a.time b.time in
            let sum = { time = tmax +. tech.ha_sum_delay; uid = next_uid } in
            let carry = { time = tmax +. tech.ha_carry_delay; uid = next_uid + 1 } in
            k (sum :: others) (carry :: carries)
              (List.rev (Ha2 (a.uid, b.uid) :: decisions))
              (next_uid + 2)
          | [] | [ _ ] | _ :: _ :: _ -> assert false)
        (choose 2 pool)
  end

(* Depth-first search over the columns (rightmost first, carries feeding
   the next column) with branch-and-bound on the running kept maximum.
   Returns the optimal reduced-matrix arrival and its per-column plan. *)
let search tech columns ~first_uid =
  let best = ref infinity in
  let best_plan = ref None in
  let rec go columns running_max plan next_uid =
    if running_max < !best then
      match columns with
      | [] ->
        best := running_max;
        best_plan := Some (List.rev plan)
      | col :: rest ->
        reduce_paths tech col [] [] next_uid
          (fun kept carries decisions next_uid ->
            let kept_max = Float.max running_max (max_time kept) in
            if kept_max < !best then
              let rest =
                match rest, carries with
                | [], [] -> []
                | [], _ :: _ -> [ carries ]
                | next :: others, _ -> (carries @ next) :: others
              in
              go rest kept_max (decisions :: plan) next_uid)
  in
  go columns neg_infinity [] first_uid;
  match !best_plan with
  | Some plan -> !best, plan
  | None -> assert false

let default_max_addends = 12

let allocate ?(max_addends = default_max_addends) netlist matrix =
  if Matrix.total_addends matrix > max_addends then raise Too_large;
  let tech = Netlist.tech netlist in
  let net_of_uid = Hashtbl.create 32 in
  let next = ref 0 in
  let columns =
    List.init (Matrix.width matrix) (fun j ->
        List.map
          (fun net ->
            let uid = !next in
            incr next;
            Hashtbl.replace net_of_uid uid net;
            { time = Netlist.arrival netlist net; uid })
          (Matrix.column matrix j))
  in
  let _optimal, plan = search tech columns ~first_uid:!next in
  (* replay the plan, minting uids in the same order the search did *)
  let fresh = ref !next in
  let pools = ref (List.map (List.map (fun i -> i.uid)) columns) in
  let final_columns = ref [] in
  List.iter
    (fun decisions ->
      let pool, rest =
        match !pools with [] -> [], [] | p :: r -> p, r
      in
      let pool = ref pool and carries = ref [] in
      List.iter
        (fun d ->
          let consume uid = pool := List.filter (fun u -> u <> uid) !pool in
          let mint net =
            let uid = !fresh in
            incr fresh;
            Hashtbl.replace net_of_uid uid net;
            uid
          in
          match d with
          | Fa3 (a, b, c) ->
            let s, co =
              Netlist.fa netlist (Hashtbl.find net_of_uid a)
                (Hashtbl.find net_of_uid b)
                (Hashtbl.find net_of_uid c)
            in
            consume a;
            consume b;
            consume c;
            pool := mint s :: !pool;
            carries := mint co :: !carries
          | Ha2 (a, b) ->
            let s, co =
              Netlist.ha netlist (Hashtbl.find net_of_uid a)
                (Hashtbl.find net_of_uid b)
            in
            consume a;
            consume b;
            pool := mint s :: !pool;
            carries := mint co :: !carries)
        decisions;
      final_columns := !pool :: !final_columns;
      pools :=
        (match rest, !carries with
        | [], [] -> []
        | [], _ :: _ -> [ !carries ]
        | next_col :: others, _ -> (!carries @ next_col) :: others))
    plan;
  (* write the reduced columns back (modular truncation applies) *)
  let in_range j =
    match Matrix.max_width matrix with Some w -> j < w | None -> true
  in
  List.iteri
    (fun j kept ->
      if in_range j then
        Matrix.set_column matrix j
          (List.map (Hashtbl.find net_of_uid) kept))
    (List.rev !final_columns);
  assert (Matrix.is_reduced matrix)

let optimal_arrival ?(max_addends = default_max_addends) netlist matrix =
  (* the optimum without building anything — for comparisons *)
  if Matrix.total_addends matrix > max_addends then raise Too_large;
  let tech = Netlist.tech netlist in
  let next = ref 0 in
  let columns =
    List.init (Matrix.width matrix) (fun j ->
        List.map
          (fun net ->
            let uid = !next in
            incr next;
            { time = Netlist.arrival netlist net; uid })
          (Matrix.column matrix j))
  in
  fst (search tech columns ~first_uid:!next)
