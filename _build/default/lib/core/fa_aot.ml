
let allocate ?(tie_break = Sc_t.Arrival_only) ?(three_policy = Sc_t.Ha_finish)
    netlist matrix =
  Reduce.sweep netlist matrix
    ~reducer:(fun netlist col ->
      Sc_t.reduce_column ~tie_break ~three_policy netlist col)
