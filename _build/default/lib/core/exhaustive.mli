(** Exhaustive delay-optimal FA-tree allocation for small matrices.

    Explores the full column-sequential allocation space (every FA input
    choice; both HA and 3-input-FA finishes) by branch-and-bound on a pure
    timing model, then replays the optimal plan onto the netlist.  Exists
    to quantify how close the greedy FA_AOT gets to the true optimum of the
    paper's modified Problem 1 — see EXPERIMENTS.md. *)

open Dp_netlist
open Dp_bitmatrix

exception Too_large

val default_max_addends : int

(** Reduce [matrix] in place, delay-optimally.
    @raise Too_large beyond [max_addends] total addends. *)
val allocate : ?max_addends:int -> Netlist.t -> Matrix.t -> unit

(** The optimal reduced-matrix arrival, without modifying anything.
    @raise Too_large beyond [max_addends] total addends. *)
val optimal_arrival : ?max_addends:int -> Netlist.t -> Matrix.t -> float
