(** Random FA input selection — the FA_random baseline of the paper's
    Table 2.  Allocates the same number of FAs/HAs per column as SC_T/SC_LP
    but picks their inputs uniformly at random from the pool. *)

open Dp_netlist

val reduce_column :
  Random.State.t -> Netlist.t -> Netlist.net list ->
  Netlist.net list * Netlist.net list
