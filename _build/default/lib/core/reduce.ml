open Dp_netlist
open Dp_bitmatrix

type column_reducer =
  Netlist.t -> Netlist.net list -> Netlist.net list * Netlist.net list

let sweep netlist matrix ~reducer =
  (* Condition 1 of the paper (Sec. 3.2): reduce the rightmost column first,
     inserting its carry-outs into the next column before that one is
     processed, until every column holds at most two addends.  The matrix
     width can grow as carries spill leftwards (or stay capped when the
     matrix is modular). *)
  let j = ref 0 in
  while !j < Matrix.width matrix do
    let col = Matrix.column matrix !j in
    if List.length col > 2 then begin
      let kept, carries = reducer netlist col in
      if List.length kept > 2 then
        invalid_arg "Reduce.sweep: reducer left more than two addends";
      Matrix.set_column matrix !j kept;
      List.iter (fun net -> Matrix.add matrix ~weight:(!j + 1) net) carries
    end;
    incr j
  done;
  assert (Matrix.is_reduced matrix)
