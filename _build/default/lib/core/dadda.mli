(** Dadda-style minimal compression — a second fixed-structure baseline.
    Each stage reduces every column to the next Dadda target height
    (…, 9, 6, 4, 3, 2) using as few FAs/HAs as possible, counting
    same-stage carries toward the receiving column's target. *)

open Dp_netlist
open Dp_bitmatrix

(** Reduce [matrix] in place to two rows. *)
val allocate : Netlist.t -> Matrix.t -> unit
