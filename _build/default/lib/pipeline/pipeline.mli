(** Cycle-time-driven pipeline planning over a combinational netlist.

    ASAP staging: every net gets a pipeline stage and an intra-stage
    arrival such that no stage's combinational depth exceeds the cycle
    time.  The plan is analytic — registers are counted, not inserted —
    and reports the latency/register-cost trade-off the designer faces for
    a given FA-tree shape. *)

open Dp_netlist

type plan = {
  cycle_time : float;
  latency : int;  (** pipeline stages; 1 = fits in one cycle *)
  stage_of_net : int array;
  local_arrival : float array;  (** arrival within the net's stage *)
  stage_delay : float array;  (** critical intra-stage delay per stage *)
  register_bits : int;  (** total pipeline register bits *)
}

(** Smallest feasible cycle time: the slowest single cell. *)
val min_cycle_time : Netlist.t -> float

(** @raise Invalid_argument when the cycle time is non-positive or below
    {!min_cycle_time}. *)
val plan : Netlist.t -> cycle_time:float -> plan

val pp : plan Fmt.t
