open Dp_netlist

(* Cycle-time-driven pipeline planning (ASAP staging).

   Behavioral synthesis fixes a cycle time and asks how a combinational
   datapath spreads over control steps (the paper's Sec. 1).  This planner
   assigns every net a pipeline stage and an intra-stage arrival so that no
   stage's combinational depth exceeds the cycle time: a cell computes in
   the latest stage any of its operands is produced in, unless its output
   would overrun the cycle — then its operands are registered at the
   boundary and it computes at the start of the next stage.

   The plan is analytic (no register cells are inserted into the netlist):
   it reports the latency, the per-stage critical delays, and the total
   pipeline register bits — a net produced in stage s and last consumed in
   stage s' needs s' − s register bits, shared by all its consumers. *)

type plan = {
  cycle_time : float;
  latency : int;  (* pipeline stages; 1 = purely combinational *)
  stage_of_net : int array;
  local_arrival : float array;  (* arrival within the net's stage *)
  stage_delay : float array;  (* critical intra-stage delay, length latency *)
  register_bits : int;
}

let eps = 1e-9

(* The smallest feasible cycle time: every cell must fit inside one stage,
   and every primary input's intra-stage arrival is its arrival modulo the
   cycle — safe as long as no single cell is slower than the cycle. *)
let min_cycle_time netlist =
  let tech = Netlist.tech netlist in
  Netlist.fold_cells
    (fun acc (c : Netlist.cell) ->
      let ports = Dp_tech.Cell_kind.output_count c.kind in
      let rec worst port acc =
        if port >= ports then acc
        else worst (port + 1) (Float.max acc (Dp_tech.Tech.delay tech c.kind ~port))
      in
      worst 0 acc)
    0.0 netlist

let plan netlist ~cycle_time =
  if cycle_time <= 0.0 then invalid_arg "Pipeline.plan: cycle_time must be > 0";
  let floor_mct = min_cycle_time netlist in
  if cycle_time < floor_mct -. eps then
    invalid_arg
      (Printf.sprintf
         "Pipeline.plan: cycle time %.3f below the slowest cell (%.3f)"
         cycle_time floor_mct);
  let tech = Netlist.tech netlist in
  let n = Netlist.net_count netlist in
  let stage = Array.make n 0 in
  let local = Array.make n 0.0 in
  (* nets are in topological order *)
  for net = 0 to n - 1 do
    match Netlist.driver netlist net with
    | Netlist.From_input _ ->
      let t = Netlist.arrival netlist net in
      let s = int_of_float ((t +. eps) /. cycle_time) in
      stage.(net) <- s;
      local.(net) <- t -. (float_of_int s *. cycle_time)
    | Netlist.From_const _ ->
      stage.(net) <- 0;
      local.(net) <- 0.0
    | Netlist.From_cell { cell; port } ->
      let c = Netlist.cell netlist cell in
      let s_in =
        Array.fold_left (fun acc input -> max acc stage.(input)) 0 c.inputs
      in
      let a_in =
        Array.fold_left
          (fun acc input ->
            if stage.(input) = s_in then Float.max acc local.(input) else acc)
          0.0 c.inputs
      in
      (* the whole cell computes in one stage: stage by its slowest port *)
      let ports = Dp_tech.Cell_kind.output_count c.kind in
      let max_d =
        let rec go port acc =
          if port >= ports then acc
          else go (port + 1) (Float.max acc (Dp_tech.Tech.delay tech c.kind ~port))
        in
        go 0 0.0
      in
      let d = Dp_tech.Tech.delay tech c.kind ~port in
      if a_in +. max_d <= cycle_time +. eps then begin
        stage.(net) <- s_in;
        local.(net) <- a_in +. d
      end
      else begin
        stage.(net) <- s_in + 1;
        local.(net) <- d
      end
  done;
  let latency =
    1 + Array.fold_left max 0 stage
  in
  let stage_delay = Array.make latency 0.0 in
  Array.iteri
    (fun net s -> stage_delay.(s) <- Float.max stage_delay.(s) local.(net))
    stage;
  (* register bits: a net produced in stage s and last read in stage s'
     crosses s' - s boundaries.  Cells read their inputs in the stage of
     their outputs; declared outputs are read in the final stage. *)
  let last_use = Array.copy stage in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets netlist id in
      let cell_stage = Array.fold_left (fun acc o -> max acc stage.(o)) 0 outs in
      Array.iter
        (fun input -> last_use.(input) <- max last_use.(input) cell_stage)
        c.inputs)
    netlist;
  List.iter
    (fun (_, nets) ->
      Array.iter (fun net -> last_use.(net) <- latency - 1) nets)
    (Netlist.outputs netlist);
  let register_bits = ref 0 in
  for net = 0 to n - 1 do
    (* constants need no registers *)
    match Netlist.driver netlist net with
    | Netlist.From_const _ -> ()
    | Netlist.From_input _ | Netlist.From_cell _ ->
      register_bits := !register_bits + (last_use.(net) - stage.(net))
  done;
  {
    cycle_time;
    latency;
    stage_of_net = stage;
    local_arrival = local;
    stage_delay;
    register_bits = !register_bits;
  }

let pp ppf p =
  Fmt.pf ppf "T=%.2f: %d stage%s, %d register bits, worst stage %.2f"
    p.cycle_time p.latency
    (if p.latency = 1 then "" else "s")
    p.register_bits
    (Array.fold_left Float.max 0.0 p.stage_delay)
