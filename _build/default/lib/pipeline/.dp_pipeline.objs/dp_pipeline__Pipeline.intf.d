lib/pipeline/pipeline.mli: Dp_netlist Fmt Netlist
