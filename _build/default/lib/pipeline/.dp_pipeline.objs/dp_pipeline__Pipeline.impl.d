lib/pipeline/pipeline.ml: Array Dp_netlist Dp_tech Float Fmt List Netlist Printf
