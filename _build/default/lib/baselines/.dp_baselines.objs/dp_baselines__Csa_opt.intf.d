lib/baselines/csa_opt.mli: Dp_netlist Netlist Rows
