lib/baselines/conventional.mli: Ast Dp_adders Dp_expr Dp_netlist Env Netlist
