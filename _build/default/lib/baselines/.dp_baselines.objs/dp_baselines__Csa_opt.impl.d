lib/baselines/csa_opt.ml: Array Dp_netlist Float List Netlist Rows
