lib/baselines/rows.mli: Dp_bitmatrix Dp_netlist Matrix Netlist
