lib/baselines/conventional.ml: Array Ast Dp_adders Dp_bitmatrix Dp_core Dp_expr Dp_netlist Env Eval Float Hashtbl List Netlist Option Range Rows
