lib/baselines/rows.ml: Array Dp_bitmatrix Dp_netlist Float List Matrix Netlist
