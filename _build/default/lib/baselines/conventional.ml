open Dp_netlist
open Dp_expr

type multiplier = Wallace_cpa | Shift_add

type config = {
  adder : Dp_adders.Adder.kind;
  multiplier : multiplier;
  balance : bool;
}

let default_config =
  { adder = Dp_adders.Adder.Cla; multiplier = Wallace_cpa; balance = true }

(* Replace Pow by a balanced multiplication tree (square-and-multiply);
   the synthesis memo table then shares the repeated squarings. *)
let rec expand_pow e =
  match e with
  | Ast.Var _ | Ast.Const _ -> e
  | Ast.Add (a, b) -> Ast.Add (expand_pow a, expand_pow b)
  | Ast.Sub (a, b) -> Ast.Sub (expand_pow a, expand_pow b)
  | Ast.Mul (a, b) -> Ast.Mul (expand_pow a, expand_pow b)
  | Ast.Neg a -> Ast.Neg (expand_pow a)
  | Ast.Pow (a, n) ->
    let a = expand_pow a in
    let rec power n =
      if n = 0 then Ast.Const 1
      else if n = 1 then a
      else
        let half = power (n / 2) in
        let sq = Ast.Mul (half, half) in
        if n mod 2 = 0 then sq else Ast.Mul (sq, a)
    in
    power n

(* Sum flattening for operator-tree balancing: a +/- chain becomes a list
   of signed terms. *)
let rec flatten_sum e =
  match e with
  | Ast.Add (a, b) -> flatten_sum a @ flatten_sum b
  | Ast.Sub (a, b) -> flatten_sum a @ List.map (fun (s, t) -> (-s, t)) (flatten_sum b)
  | Ast.Neg a -> List.map (fun (s, t) -> (-s, t)) (flatten_sum a)
  | Ast.Var _ | Ast.Const _ | Ast.Mul _ | Ast.Pow _ -> [ (1, e) ]

type context = {
  netlist : Netlist.t;
  env : Env.t;
  width : int;
  config : config;
  input_bits : (string * Netlist.net array) list;
  memo : (Ast.t, Netlist.net array) Hashtbl.t;
}

(* Width discipline (DESIGN.md): a node whose value range stays
   non-negative is computed at its exact natural width (capped at W); a
   node that can go negative is computed at the full output width W so its
   two's-complement wrap is the final one. *)
let node_width ctx e =
  let range = Range.of_expr ctx.env e in
  if (range : Range.t).lo < 0 then ctx.width
  else min ctx.width (Range.width range)

let fit ctx nets w =
  let len = Array.length nets in
  if len = w then nets
  else if len > w then Array.sub nets 0 w
  else
    Array.init w (fun i ->
        if i < len then nets.(i) else Netlist.const ctx.netlist false)

let sign_extend (_ : context) nets w =
  let len = Array.length nets in
  if len >= w then Array.sub nets 0 w
  else
    let msb = nets.(len - 1) in
    Array.init w (fun i -> if i < len then nets.(i) else msb)

let ready_time ctx nets =
  Array.fold_left
    (fun acc net -> Float.max acc (Netlist.arrival ctx.netlist net))
    0.0 nets

let add_words ctx ~w a b =
  Dp_adders.Adder.build ctx.config.adder ctx.netlist ~a:(fit ctx a w) ~b:(fit ctx b w)

let sub_words ctx ~w a b =
  let b = Array.map (Netlist.not_ ctx.netlist) (fit ctx b w) in
  Dp_adders.Adder.build ~cin:(Netlist.const ctx.netlist true) ctx.config.adder
    ctx.netlist ~a:(fit ctx a w) ~b

let const_word ctx ~w c =
  Array.init w (fun i ->
      Netlist.const ctx.netlist ((c lsr i) land 1 = 1))

let mul_words ctx ~w a b =
  let matrix = Dp_bitmatrix.Matrix.create ~max_width:w () in
  Array.iteri
    (fun i ai ->
      Array.iteri
        (fun j bj ->
          if i + j < w then
            Dp_bitmatrix.Matrix.add matrix ~weight:(i + j)
              (Netlist.and_n ctx.netlist [ ai; bj ]))
        b)
    a;
  match ctx.config.multiplier with
  | Wallace_cpa ->
    (* a self-contained multiplier module: fixed Wallace compression of the
       partial products, then this module's own carry-propagate adder *)
    Dp_core.Wallace.allocate ctx.netlist matrix;
    Dp_adders.Adder.build_rows ctx.config.adder ctx.netlist ~width:w
      (Dp_bitmatrix.Matrix.operand_rows matrix)
  | Shift_add ->
    (* row-by-row accumulation with carry-propagate adders *)
    let rows = Rows.of_matrix ~width:w matrix in
    let zero = Netlist.const ctx.netlist false in
    let row_word (row : Rows.row) =
      Array.map (fun slot -> Option.value slot ~default:zero) row
    in
    (match rows with
    | [] -> const_word ctx ~w 0
    | first :: rest ->
      List.fold_left
        (fun acc row -> add_words ctx ~w acc (row_word row))
        (row_word first) rest)

let rec build ctx e =
  match Hashtbl.find_opt ctx.memo e with
  | Some nets -> nets
  | None ->
    let nets = build_uncached ctx e in
    Hashtbl.replace ctx.memo e nets;
    nets

and build_uncached ctx e =
  let w = node_width ctx e in
  match e with
  | Ast.Var v ->
    let bits = List.assoc v ctx.input_bits in
    if Env.is_signed v ctx.env then sign_extend ctx bits w
    else fit ctx bits w
  | Ast.Const c -> const_word ctx ~w (c land Eval.mask ctx.width)
  | Ast.Add _ | Ast.Sub _ | Ast.Neg _ when ctx.config.balance ->
    build_balanced_sum ctx ~w (flatten_sum e)
  | Ast.Add (a, b) -> add_words ctx ~w (build ctx a) (build ctx b)
  | Ast.Sub (a, b) -> sub_words ctx ~w (build ctx a) (build ctx b)
  | Ast.Neg a -> sub_words ctx ~w (const_word ctx ~w 0) (build ctx a)
  | Ast.Mul (a, b) -> mul_words ctx ~w (build ctx a) (build ctx b)
  | Ast.Pow _ -> invalid_arg "Conventional.build: Pow must be pre-expanded"

and build_balanced_sum ctx ~w terms =
  (* Operator-tree balancing: greedily pair the two earliest-ready signed
     operands, the word-level analogue of the bit-level Huffman greedy. *)
  let operands =
    List.map (fun (sign, term) -> (sign, fit ctx (build ctx term) w)) terms
  in
  let by_ready (_, a) (_, b) =
    Float.compare (ready_time ctx a) (ready_time ctx b)
  in
  let rec combine operands =
    match List.sort by_ready operands with
    | [] -> (1, const_word ctx ~w 0)
    | [ one ] -> one
    | (s1, a) :: (s2, b) :: rest ->
      let merged =
        match s1 >= 0, s2 >= 0 with
        | true, true -> (1, add_words ctx ~w a b)
        | true, false -> (1, sub_words ctx ~w a b)
        | false, true -> (1, sub_words ctx ~w b a)
        | false, false -> (-1, add_words ctx ~w a b)
      in
      combine (merged :: rest)
  in
  match combine operands with
  | 1, nets -> nets
  | _, nets -> sub_words ctx ~w (const_word ctx ~w 0) nets

let synthesize ?(config = default_config) netlist env expr ~width =
  Env.check_covers expr env;
  let expr = expand_pow expr in
  let input_bits = Dp_bitmatrix.Lower.declare_inputs netlist env expr in
  let ctx = { netlist; env; width; config; input_bits; memo = Hashtbl.create 64 } in
  fit ctx (build ctx expr) width
