open Dp_netlist
open Dp_bitmatrix

type row = Netlist.net option array

let of_matrix ~width matrix =
  (* Greedy first-fit packing of the matrix's addends into word-level rows
     (each row holds at most one addend per weight).  For a plain
     multiplication this recovers the usual partial-product rows; for a
     general expression it manufactures the vector operands a word-level
     CSA allocator needs. *)
  let rows = ref [] in
  for j = 0 to min (width - 1) (Matrix.width matrix - 1) do
    List.iter
      (fun net ->
        let rec place = function
          | [] ->
            let row = Array.make width None in
            row.(j) <- Some net;
            rows := !rows @ [ row ]
          | row :: rest ->
            if row.(j) = None then row.(j) <- Some net else place rest
        in
        place !rows)
      (Matrix.column matrix j)
  done;
  !rows

let ready_time netlist (row : row) =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | None -> acc
      | Some net -> Float.max acc (Netlist.arrival netlist net))
    0.0 row

let bit_count (row : row) =
  Array.fold_left
    (fun acc slot -> match slot with None -> acc | Some _ -> acc + 1)
    0 row

let to_matrix ~width rows =
  let matrix = Matrix.create ~max_width:width () in
  List.iter
    (fun (row : row) ->
      Array.iteri
        (fun j slot ->
          match slot with
          | None -> ()
          | Some net -> Matrix.add matrix ~weight:j net)
        row)
    rows;
  matrix
