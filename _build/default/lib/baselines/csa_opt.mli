(** Reconstruction of CSA_OPT [8] (Um, Kim, Liu, ICCAD'99): delay-optimal
    allocation of {e word-level} carry-save adders.  Operands are whole
    rows; each 3:2 compression instantiates an FA/HA per populated bit.
    Because selection happens at word granularity, uneven per-bit arrival
    profiles inside a word cannot be exploited — the gap FA_AOT closes. *)

open Dp_netlist

(** One word-level 3:2 CSA step. *)
val csa :
  Netlist.t -> width:int -> Rows.row -> Rows.row -> Rows.row ->
  Rows.row * Rows.row

(** Reduce the operand rows to the two rows feeding the final adder. *)
val allocate : Netlist.t -> width:int -> Rows.row list -> Rows.row * Rows.row
