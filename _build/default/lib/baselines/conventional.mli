(** The "Conventional" column of the paper's Table 1: two-step RTL + logic
    synthesis, reconstructed.  Every word-level operation is bound to its
    own module (a carry-lookahead adder by default; multipliers are
    self-contained Wallace-compression + CPA modules, or shift-add arrays),
    and +/- chains are balanced by an arrival-driven greedy — the standard
    operator-level optimizations.  What this flow {e cannot} do, and the
    paper's one-step flow can, is merge carry-save redundancy across
    operations: every intermediate result goes through a carry-propagate
    adder. *)

open Dp_netlist
open Dp_expr

type multiplier =
  | Wallace_cpa  (** per-operation Wallace tree with its own CPA *)
  | Shift_add  (** row-by-row CPA accumulation *)

type config = {
  adder : Dp_adders.Adder.kind;
  multiplier : multiplier;
  balance : bool;  (** arrival-driven balancing of +/- chains *)
}

val default_config : config

(** Pow nodes expanded to balanced multiplication trees. *)
val expand_pow : Ast.t -> Ast.t

(** Chains of additions/subtractions as signed terms. *)
val flatten_sum : Ast.t -> (int * Ast.t) list

(** Synthesize [expr] into [netlist]; returns the output bus (width
    [width], value = expr mod 2^width).  Declares the inputs itself.
    Structurally identical subexpressions share one module (resource
    sharing).  @raise Invalid_argument on unbound variables. *)
val synthesize :
  ?config:config -> Netlist.t -> Env.t -> Ast.t -> width:int ->
  Netlist.net array
