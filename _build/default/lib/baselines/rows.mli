(** Word-level operand rows — the granularity at which CSA_OPT [8] works.
    A row is a vector with at most one addend bit per weight. *)

open Dp_netlist
open Dp_bitmatrix

type row = Netlist.net option array

(** First-fit packing of a (possibly unreduced) matrix into rows. *)
val of_matrix : width:int -> Matrix.t -> row list

(** Latest bit arrival of the row (0.0 when empty) — a word-level allocator
    sees whole operands, not individual bits. *)
val ready_time : Netlist.t -> row -> float

val bit_count : row -> int

(** Inverse of {!of_matrix}. *)
val to_matrix : width:int -> row list -> Matrix.t
