(** Zero-delay signal-probability propagation (the paper's Sec. 4.1 model):
    inputs are independent random bits; each cell output's 1-probability is
    derived analytically.  For the full adder the paper's q-algebra is used,
    with q(x) = p(x) − 0.5:

    q(s) = 4 qx qy qz,  q(c) = 0.5 (qx + qy + qz) − 2 qx qy qz.

    A half adder is the z = 0 (q = −0.5) specialization. *)

open Dp_netlist

val fa_sum_q : float -> float -> float -> float
val fa_carry_q : float -> float -> float -> float
val ha_sum_q : float -> float -> float
val ha_carry_q : float -> float -> float

(** Probability of one cell output given its input probabilities (array
    indexed by net id).  @raise Invalid_argument on a bad port. *)
val cell_output_prob : Netlist.cell -> float array -> port:int -> float

(** 1-probability of every net, indexed by net id. *)
val probabilities : Netlist.t -> float array

(** True iff the from-scratch propagation matches the builder's incremental
    annotation within [eps]. *)
val agrees_with_annotation : ?eps:float -> Netlist.t -> bool
