lib/power/switching.ml: Array Dp_netlist Dp_tech Netlist
