lib/power/prob.mli: Dp_netlist Netlist
