lib/power/switching.mli: Dp_netlist Netlist
