lib/power/prob.ml: Array Dp_netlist Dp_tech Float Netlist
