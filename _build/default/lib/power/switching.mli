(** Switching-activity power metric of Sec. 4.2:
    E(x) = p(x)(1 − p(x)) per net, and
    E_switching(T) = Σ over FA/HA cells of Ws·E(sum) + Wc·E(carry). *)

open Dp_netlist

val activity : float -> float
val net_activity : Netlist.t -> Netlist.net -> float

(** The paper's E_switching(T): FA/HA output activity, energy-weighted. *)
val tree_switching : Netlist.t -> float

(** Every cell output's activity, energy-weighted — includes the partial
    product gates and any final-adder logic. *)
val total_switching : Netlist.t -> float

(** Nominal conversion of the activity metric to mW-like magnitudes for the
    Table 2 reproduction; only ratios are meaningful. *)
val milliwatts : float -> float
