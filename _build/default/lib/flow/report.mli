(** Plain-text table rendering for the experiment reproductions. *)

(** Aligned table; first column left-aligned, others right-aligned.
    @raise Invalid_argument on ragged rows. *)
val table : header:string list -> rows:string list list -> string

(** Percent improvement of [ours] over [baseline] (positive = better). *)
val improvement : baseline:float -> ours:float -> float

val pct : baseline:float -> ours:float -> string
val ns : float -> string
val units : float -> string
val mw : float -> string
