lib/flow/strategy.ml: Fmt Printf String
