lib/flow/synth.mli: Ast Dp_adders Dp_bitmatrix Dp_expr Dp_netlist Dp_sim Dp_tech Env Netlist Stats Stdlib Strategy
