lib/flow/strategy.mli: Fmt
