lib/flow/report.ml: List Printf String
