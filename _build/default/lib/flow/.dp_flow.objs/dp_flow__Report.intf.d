lib/flow/report.mli:
