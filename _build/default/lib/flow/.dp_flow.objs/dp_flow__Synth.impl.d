lib/flow/synth.ml: Array Ast Dp_adders Dp_baselines Dp_bitmatrix Dp_core Dp_expr Dp_netlist Dp_power Dp_sim Dp_tech Env Float List Netlist Range Stats Strategy
