let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let pad_left width s =
  let len = String.length s in
  if len >= width then s else String.make (width - len) ' ' ^ s

(* Render an aligned text table: first column left-aligned, the rest
   right-aligned (they are numbers). *)
let table ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  List.iter
    (fun row ->
      if List.length row <> columns then
        invalid_arg "Report.table: ragged rows")
    rows;
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          0 all)
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           if i = 0 then pad w cell else pad_left w cell)
         row)
  in
  let separator =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: separator :: List.map render_row rows)
  ^ "\n"

let improvement ~baseline ~ours =
  if baseline = 0.0 then 0.0 else (baseline -. ours) /. baseline *. 100.0

let pct ~baseline ~ours = Printf.sprintf "%.1f%%" (improvement ~baseline ~ours)
let ns v = Printf.sprintf "%.2f ns" v
let units v = Printf.sprintf "%.0f" v
let mw v = Printf.sprintf "%.0f mW" v
