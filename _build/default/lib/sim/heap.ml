(* Binary min-heap on (time, payload); ties pop in arbitrary order. *)

type 'a t = {
  mutable data : (float * 'a) array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 64 (0.0, dummy); len = 0; dummy }
let length h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let push h time payload =
  if h.len = Array.length h.data then begin
    let data = Array.make (2 * h.len) (0.0, h.dummy) in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- (time, payload);
  h.len <- h.len + 1;
  let i = ref (h.len - 1) in
  while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek h =
  if h.len = 0 then invalid_arg "Heap.peek: empty";
  h.data.(0)

let pop h =
  if h.len = 0 then invalid_arg "Heap.pop: empty";
  let top = h.data.(0) in
  h.len <- h.len - 1;
  h.data.(0) <- h.data.(h.len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
    if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      swap h !i !smallest;
      i := !smallest
    end
    else continue := false
  done;
  top
