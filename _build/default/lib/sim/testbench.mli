(** Self-checking Verilog testbench generation: seeded random stimulus with
    expected outputs pre-computed by the built-in simulator, so the emitted
    netlist can be validated in any external Verilog simulator. *)

open Dp_netlist

(** The testbench module ([<module_name>_tb]) alone. *)
val emit : ?module_name:string -> ?seed:int -> ?vectors:int -> Netlist.t -> string

(** DUT (via {!Verilog.emit}) followed by its testbench — one
    ready-to-simulate file. *)
val emit_with_dut :
  ?module_name:string -> ?seed:int -> ?vectors:int -> Netlist.t -> string
