lib/sim/heap.mli:
