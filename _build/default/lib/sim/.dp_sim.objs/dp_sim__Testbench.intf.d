lib/sim/testbench.mli: Dp_netlist Netlist
