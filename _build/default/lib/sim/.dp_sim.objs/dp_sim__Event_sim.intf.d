lib/sim/event_sim.mli: Dp_netlist Netlist
