lib/sim/event_sim.ml: Array Dp_netlist Dp_tech Hashtbl Heap List Monte_carlo Netlist Random Simulator
