lib/sim/monte_carlo.ml: Array Dp_netlist Dp_tech Hashtbl List Netlist Random Simulator
