lib/sim/testbench.ml: Array Buffer Dp_netlist List Netlist Printf Random Simulator String
