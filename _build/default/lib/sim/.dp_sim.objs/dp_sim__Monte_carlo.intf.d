lib/sim/monte_carlo.mli: Dp_netlist Netlist
