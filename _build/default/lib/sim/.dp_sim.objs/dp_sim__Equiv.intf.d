lib/sim/equiv.mli: Dp_expr Dp_netlist Fmt Netlist
