lib/sim/simulator.mli: Dp_netlist Netlist
