lib/sim/simulator.ml: Array Dp_netlist Dp_tech Netlist
