lib/sim/equiv.ml: Array Dp_expr Dp_netlist Fmt List Netlist Random Simulator
