(** Monte-Carlo validation of the analytic power model: simulate random
    vectors drawn from the inputs' annotated 1-probabilities and count real
    toggles.  With temporally independent vectors, a net of 1-probability p
    toggles at expected rate 2p(1-p), i.e. twice the paper's switching
    activity E(x) = p(1-p). *)

open Dp_netlist

type result = {
  vectors : int;
  toggle_rate : float array;  (** per net: toggles / (vectors − 1) *)
}

(** @raise Invalid_argument when [vectors < 2]. *)
val toggle_rates : ?seed:int -> vectors:int -> Netlist.t -> result

(** Fraction of vectors in which each net is 1 — the empirical signal
    probability.  @raise Invalid_argument when [vectors < 1]. *)
val measured_prob : ?seed:int -> vectors:int -> Netlist.t -> float array

(** Energy-weighted total of measured cell-output switching, directly
    comparable to [Dp_power.Switching.total]. *)
val switching_energy : Netlist.t -> float array -> float
