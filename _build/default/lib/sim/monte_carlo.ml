open Dp_netlist

type result = {
  vectors : int;
  toggle_rate : float array;  (* per net: toggles / (vectors - 1) *)
}

let random_vector rng netlist =
  (* Draw each input bit independently with its annotated 1-probability. *)
  let values = Hashtbl.create 16 in
  List.iter
    (fun (name, nets) ->
      let v = ref 0 in
      Array.iteri
        (fun bit net ->
          if Random.State.float rng 1.0 < Netlist.prob netlist net then
            v := !v lor (1 lsl bit))
        nets;
      Hashtbl.replace values name !v)
    (Netlist.inputs netlist);
  fun name -> Hashtbl.find values name

let toggle_rates ?(seed = 0x70661e) ~vectors netlist =
  if vectors < 2 then invalid_arg "Monte_carlo.toggle_rates: need >= 2 vectors";
  let rng = Random.State.make [| seed |] in
  let n = Netlist.net_count netlist in
  let toggles = Array.make n 0 in
  let prev = ref (Simulator.run netlist ~assign:(random_vector rng netlist)) in
  for _ = 2 to vectors do
    let cur = Simulator.run netlist ~assign:(random_vector rng netlist) in
    for net = 0 to n - 1 do
      if cur.(net) <> !prev.(net) then toggles.(net) <- toggles.(net) + 1
    done;
    prev := cur
  done;
  {
    vectors;
    toggle_rate =
      Array.map (fun t -> float_of_int t /. float_of_int (vectors - 1)) toggles;
  }

let measured_prob ?(seed = 0x70661e) ~vectors netlist =
  if vectors < 1 then invalid_arg "Monte_carlo.measured_prob: need >= 1 vector";
  let rng = Random.State.make [| seed |] in
  let n = Netlist.net_count netlist in
  let ones = Array.make n 0 in
  for _ = 1 to vectors do
    let values = Simulator.run netlist ~assign:(random_vector rng netlist) in
    for net = 0 to n - 1 do
      if values.(net) then ones.(net) <- ones.(net) + 1
    done
  done;
  Array.map (fun o -> float_of_int o /. float_of_int vectors) ones

let switching_energy netlist rates =
  (* Under temporal independence the expected toggle rate of a net with
     1-probability p is 2 p (1-p); the paper's E(x) = p(1-p) is half that,
     so the measured equivalent of E_switching uses rate / 2. *)
  let total = ref 0.0 in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets netlist id in
      Array.iteri
        (fun port net ->
          let w = Dp_tech.Tech.energy (Netlist.tech netlist) c.kind ~port in
          total := !total +. (w *. rates.(net) /. 2.0))
        outs)
    netlist;
  !total
