(** Two-valued logic simulation of a netlist.

    Variables are assigned unsigned integers; bit [i] of variable [x] is
    [(assign x lsr i) land 1]. *)

open Dp_netlist

(** Combinational function of one cell: output values (indexed by port)
    from the current net valuation. *)
val cell_outputs : Netlist.cell -> bool array -> bool array

(** Value of every net for the given input assignment, indexed by net id. *)
val run : Netlist.t -> assign:(string -> int) -> bool array

(** Integer value of a bus, LSB-first. *)
val bus_value : bool array -> Netlist.net array -> int

(** @raise Invalid_argument if the output is not declared. *)
val output_value : Netlist.t -> bool array -> string -> int

(** Simulate and read one output. *)
val eval_output : Netlist.t -> assign:(string -> int) -> string -> int
