open Dp_netlist

type mismatch = {
  assignment : (string * int) list;
  expected : int;
  actual : int;
}

let pp_mismatch ppf m =
  let pp_binding ppf (name, v) = Fmt.pf ppf "%s=%d" name v in
  Fmt.pf ppf "under %a: expected %d, netlist computed %d"
    Fmt.(list ~sep:(any ", ") pp_binding)
    m.assignment m.expected m.actual

let no_signed (_ : string) = false

let check_assignment ?(signed = no_signed) netlist expr ~output ~width alist =
  let widths =
    List.map (fun (name, nets) -> name, Array.length nets) (Netlist.inputs netlist)
  in
  let interpret x =
    let raw = List.assoc x alist in
    if signed x then
      Dp_expr.Eval.signed_of_pattern ~width:(List.assoc x widths) raw
    else raw
  in
  let expected = Dp_expr.Eval.eval_mod ~width interpret expr in
  let actual =
    Simulator.eval_output netlist ~assign:(fun x -> List.assoc x alist) output
  in
  if expected = actual then Ok () else Error { assignment = alist; expected; actual }

let input_widths netlist =
  List.map (fun (name, nets) -> name, Array.length nets) (Netlist.inputs netlist)

let random_assignment rng widths =
  List.map (fun (name, w) -> name, Random.State.int rng (1 lsl w)) widths

let check_random ?(seed = 0xC5A) ?signed ~trials netlist expr ~output ~width =
  let rng = Random.State.make [| seed |] in
  let widths = input_widths netlist in
  let rec go i =
    if i >= trials then Ok ()
    else
      match
        check_assignment ?signed netlist expr ~output ~width
          (random_assignment rng widths)
      with
      | Ok () -> go (i + 1)
      | Error m -> Error m
  in
  go 0

let check_exhaustive ?signed netlist expr ~output ~width =
  let widths = input_widths netlist in
  let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 widths in
  if total_bits > 22 then
    invalid_arg "Equiv.check_exhaustive: input space too large";
  let rec split code = function
    | [] -> []
    | (name, w) :: rest -> (name, code land Dp_expr.Eval.mask w) :: split (code lsr w) rest
  in
  let rec go code =
    if code >= 1 lsl total_bits then Ok ()
    else
      match
        check_assignment ?signed netlist expr ~output ~width (split code widths)
      with
      | Ok () -> go (code + 1)
      | Error m -> Error m
  in
  go 0
