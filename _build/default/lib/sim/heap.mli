(** Binary min-heap keyed by time, for the event-driven simulator. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

(** @raise Invalid_argument when empty. *)
val peek : 'a t -> float * 'a

(** @raise Invalid_argument when empty. *)
val pop : 'a t -> float * 'a
