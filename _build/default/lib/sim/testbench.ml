(* Self-checking Verilog testbench generation: stimulus vectors plus the
   expected outputs (computed by our own simulator) so the emitted netlist
   can be validated in any external Verilog simulator — the last leg of
   the flow the paper ran through Synopsys. *)

open Dp_netlist

let random_assignments ~seed ~vectors netlist =
  let rng = Random.State.make [| seed |] in
  List.init vectors (fun _ ->
      List.map
        (fun (name, nets) ->
          (name, Random.State.int rng (1 lsl Array.length nets)))
        (Netlist.inputs netlist))

let emit ?(module_name = "datapath") ?(seed = 0x7b) ?(vectors = 64) netlist =
  let buffer = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  let ins = Netlist.inputs netlist in
  let outs = Netlist.outputs netlist in
  line "module %s_tb;" module_name;
  List.iter
    (fun (name, nets) -> line "  reg [%d:0] %s;" (Array.length nets - 1) name)
    ins;
  List.iter
    (fun (name, nets) -> line "  wire [%d:0] %s;" (Array.length nets - 1) name)
    outs;
  let ports = List.map fst ins @ List.map fst outs in
  line "  %s dut (%s);" module_name
    (String.concat ", " (List.map (fun p -> Printf.sprintf ".%s(%s)" p p) ports));
  line "  integer errors;";
  line "  initial begin";
  line "    errors = 0;";
  let assignments = random_assignments ~seed ~vectors netlist in
  List.iteri
    (fun i alist ->
      List.iter
        (fun (name, v) ->
          line "    %s = %d'd%d;" name
            (Array.length (List.assoc name ins))
            v)
        alist;
      line "    #10;";
      let values =
        Simulator.run netlist ~assign:(fun name -> List.assoc name alist)
      in
      List.iter
        (fun (name, nets) ->
          let expected = Simulator.bus_value values nets in
          line "    if (%s !== %d'd%d) begin" name (Array.length nets) expected;
          line
            "      $display(\"FAIL vector %d: %s = %%d (expected %d)\", %s);"
            i name expected name;
          line "      errors = errors + 1;";
          line "    end")
        outs)
    assignments;
  line "    if (errors == 0) $display(\"PASS: %d vectors\");" vectors;
  line "    else $display(\"%%0d ERRORS\", errors);";
  line "    $finish;";
  line "  end";
  line "endmodule";
  Buffer.contents buffer

let emit_with_dut ?module_name ?seed ?vectors netlist =
  Dp_netlist.Verilog.emit ?module_name netlist ^ "\n" ^ emit ?module_name ?seed ?vectors netlist
