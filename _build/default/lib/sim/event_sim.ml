open Dp_netlist

(* Event-driven timing simulation under the transport-delay model: every
   input change of a cell schedules the freshly computed output values onto
   the output nets after the technology's pin-to-pin delay, and every net
   change — including the transient glitches the zero-delay model cannot
   see — is counted.  Inputs switch together at t = 0 of each new vector
   and the netlist is combinational, so activity always quiesces. *)

let fanout_map netlist =
  (* net -> cells it feeds *)
  let map = Array.make (Netlist.net_count netlist) [] in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      Array.iter (fun input -> map.(input) <- id :: map.(input)) c.inputs)
    netlist;
  map

type t = {
  netlist : Netlist.t;
  fanout : int list array;
  values : bool array;
  transitions : int array;
}

let create netlist =
  {
    netlist;
    fanout = fanout_map netlist;
    values = Array.make (Netlist.net_count netlist) false;
    transitions = Array.make (Netlist.net_count netlist) 0;
  }

(* Establish a consistent initial state with one functional evaluation;
   the first vector is not counted as switching activity. *)
let initialize t ~assign =
  let values = Simulator.run t.netlist ~assign in
  Array.blit values 0 t.values 0 (Array.length values)

(* Settle the netlist from the given input assignment, counting every net
   transition.

   Transport-delay semantics: when a cell input changes at time T, the
   cell's outputs are computed from the values visible at T and those
   values are *scheduled* onto the output nets at T + delay.  Capturing
   the value at schedule time (rather than re-evaluating at delivery time)
   is what lets a fast pulse — a glitch — propagate.  Events delivered to
   the same net at the same instant are coalesced, the latest-scheduled
   value winning, so simultaneous input changes produce one transition. *)
let apply_vector t ~assign =
  let tech = Netlist.tech t.netlist in
  let queue = Heap.create ~dummy:(0, 0, false) in
  let seq = ref 0 in
  let set net value time =
    if t.values.(net) <> value then begin
      t.values.(net) <- value;
      t.transitions.(net) <- t.transitions.(net) + 1;
      List.iter
        (fun cell_id ->
          let c = Netlist.cell t.netlist cell_id in
          let outs = Simulator.cell_outputs c t.values in
          Array.iteri
            (fun port out_net ->
              incr seq;
              Heap.push queue
                (time +. Dp_tech.Tech.delay tech c.kind ~port)
                (!seq, out_net, outs.(port)))
            (Netlist.cell_output_nets t.netlist cell_id))
        t.fanout.(net)
    end
  in
  (* primary inputs switch at t = 0; constants were fixed at init *)
  for net = 0 to Netlist.net_count t.netlist - 1 do
    match Netlist.driver t.netlist net with
    | Netlist.From_input { var; bit } ->
      set net ((assign var lsr bit) land 1 = 1) 0.0
    | Netlist.From_const _ | Netlist.From_cell _ -> ()
  done;
  let pending = Hashtbl.create 16 in
  while not (Heap.is_empty queue) do
    (* drain one timestamp, coalescing per net by schedule order *)
    let now, _ = Heap.peek queue in
    Hashtbl.reset pending;
    let continue = ref true in
    while !continue do
      if Heap.is_empty queue then continue := false
      else
        let time, _ = Heap.peek queue in
        if time > now +. 1e-12 then continue := false
        else begin
          let _, (s, net, value) = Heap.pop queue in
          match Hashtbl.find_opt pending net with
          | Some (s0, _) when s0 > s -> ()
          | Some _ | None -> Hashtbl.replace pending net (s, value)
        end
    done;
    Hashtbl.iter (fun net (_, value) -> set net value now) pending
  done

type rates = {
  vectors : int;
  transition_rate : float array;  (* per net: transitions / vector *)
}

let transition_rates ?(seed = 0x911c4) ~vectors netlist =
  if vectors < 2 then invalid_arg "Event_sim.transition_rates: need >= 2 vectors";
  let t = create netlist in
  let rng = Random.State.make [| seed |] in
  let draw () =
    let values = Hashtbl.create 16 in
    List.iter
      (fun (name, nets) ->
        let v = ref 0 in
        Array.iteri
          (fun bit net ->
            if Random.State.float rng 1.0 < Netlist.prob netlist net then
              v := !v lor (1 lsl bit))
          nets;
        Hashtbl.replace values name !v)
      (Netlist.inputs netlist);
    fun name -> Hashtbl.find values name
  in
  initialize t ~assign:(draw ());
  for _ = 2 to vectors do
    apply_vector t ~assign:(draw ())
  done;
  {
    vectors;
    transition_rate =
      Array.map
        (fun n -> float_of_int n /. float_of_int (vectors - 1))
        t.transitions;
  }

let switching_energy netlist rates =
  let tech = Netlist.tech netlist in
  let total = ref 0.0 in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets netlist id in
      Array.iteri
        (fun port net ->
          let w = Dp_tech.Tech.energy tech c.kind ~port in
          total := !total +. (w *. rates.(net) /. 2.0))
        outs)
    netlist;
  !total

let glitch_factor netlist ~vectors ~seed =
  (* ratio of timed transitions (with glitches) to zero-delay transitions;
     1.0 means glitch-free *)
  let timed = transition_rates ~seed ~vectors netlist in
  let zero = Monte_carlo.toggle_rates ~seed ~vectors netlist in
  let timed_e = switching_energy netlist timed.transition_rate in
  let zero_e = switching_energy netlist zero.toggle_rate in
  if zero_e = 0.0 then 1.0 else timed_e /. zero_e
