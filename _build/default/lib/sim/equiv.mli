(** Functional-equivalence checking: the synthesized netlist must compute
    the source expression's value modulo 2^W for every input assignment.
    This is the central correctness property of every allocation strategy. *)

open Dp_netlist

type mismatch = {
  assignment : (string * int) list;
  expected : int;
  actual : int;
}

val pp_mismatch : mismatch Fmt.t

(** Compare netlist output against [Dp_expr.Eval.eval_mod] for one
    assignment (an association list of raw bit patterns covering every
    input).  [signed] marks variables whose patterns must be interpreted in
    two's complement when evaluating the expression (default: none). *)
val check_assignment :
  ?signed:(string -> bool) -> Netlist.t -> Dp_expr.Ast.t ->
  output:string -> width:int ->
  (string * int) list -> (unit, mismatch) result

(** [trials] uniformly random assignments drawn from a seeded generator. *)
val check_random :
  ?seed:int -> ?signed:(string -> bool) -> trials:int ->
  Netlist.t -> Dp_expr.Ast.t ->
  output:string -> width:int -> (unit, mismatch) result

(** Every assignment; requires the total input bit count to be at most 22.
    @raise Invalid_argument otherwise. *)
val check_exhaustive :
  ?signed:(string -> bool) -> Netlist.t -> Dp_expr.Ast.t ->
  output:string -> width:int ->
  (unit, mismatch) result
