(** Event-driven timing simulation under the transport-delay model.

    The paper's power model is zero-delay: it counts at most one transition
    per net per vector and "ignores signal transitions due to glitches"
    (Sec. 4.1).  This simulator propagates input changes through the real
    pin-to-pin delays and counts {e every} output change, making the
    glitch power visible.  The netlist must be combinational (always true
    here) so activity quiesces after each vector. *)

open Dp_netlist

type t = {
  netlist : Netlist.t;
  fanout : int list array;  (** net -> fed cells *)
  values : bool array;  (** current settled value per net *)
  transitions : int array;  (** cumulative transition count per net *)
}

val create : Netlist.t -> t

(** Establish a consistent initial state (not counted as activity). *)
val initialize : t -> assign:(string -> int) -> unit

(** Switch the inputs to a new vector at t = 0 and settle, counting every
    net transition along the way. *)
val apply_vector : t -> assign:(string -> int) -> unit

type rates = {
  vectors : int;
  transition_rate : float array;  (** per net: transitions / vector *)
}

(** Simulate random vectors drawn from the inputs' annotated probabilities.
    @raise Invalid_argument when [vectors < 2]. *)
val transition_rates : ?seed:int -> vectors:int -> Netlist.t -> rates

(** Energy-weighted total of the measured transitions (per-vector, halved
    to match the E = p(1-p) convention), comparable to
    [Dp_power.Switching.total_switching] and to
    [Monte_carlo.switching_energy]. *)
val switching_energy : Netlist.t -> float array -> float

(** Ratio of timed (glitchy) to zero-delay switching energy; 1.0 means
    glitch-free. *)
val glitch_factor : Netlist.t -> vectors:int -> seed:int -> float
