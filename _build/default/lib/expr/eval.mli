(** Reference interpreter for expressions.

    Evaluation uses native integers; every design in this repository fits
    well inside 62 bits.  A fixed-width datapath computes the value modulo
    2^W (two's-complement wrap-around), which {!eval_mod} mirrors. *)

(** Exact (unbounded within native int) evaluation. *)
val eval : (string -> int) -> Ast.t -> int

(** All-ones mask of the given width.
    @raise Invalid_argument outside [1, 62]. *)
val mask : int -> int

(** Value modulo 2^width — the semantics realized by a synthesized netlist
    of output width [width]. *)
val eval_mod : width:int -> (string -> int) -> Ast.t -> int

(** Two's-complement value of a [width]-bit pattern. *)
val signed_of_pattern : width:int -> int -> int

(** Evaluate with an association-list assignment.
    @raise Invalid_argument on an unbound variable. *)
val eval_alist : (string * int) list -> Ast.t -> int
