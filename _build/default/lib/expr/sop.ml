module Mono = struct
  (* A monomial is the sorted list of its variable factors, with
     multiplicity: x*x*y is ["x"; "x"; "y"].  The empty list is the constant
     monomial. *)
  type t = string list

  let compare = Stdlib.compare
  let one : t = []
  let var x : t = [ x ]
  let mul (a : t) (b : t) : t = List.sort String.compare (a @ b)
  let degree (m : t) = List.length m

  let pp ppf (m : t) =
    match m with
    | [] -> Fmt.string ppf "1"
    | _ -> Fmt.(list ~sep:(any "*") string) ppf m
end

module Mono_map = Map.Make (Mono)

type t = int Mono_map.t

let zero : t = Mono_map.empty

let add_term mono coeff sop =
  if coeff = 0 then sop
  else
    Mono_map.update mono
      (fun prev ->
        let c = Option.value prev ~default:0 + coeff in
        if c = 0 then None else Some c)
      sop

let merge a b = Mono_map.fold add_term b a
let scale k sop =
  if k = 0 then zero else Mono_map.map (fun c -> k * c) sop

let mul a b =
  Mono_map.fold
    (fun ma ca acc ->
      Mono_map.fold
        (fun mb cb acc -> add_term (Mono.mul ma mb) (ca * cb) acc)
        b acc)
    a zero

let rec pow a n = if n = 0 then add_term Mono.one 1 zero else mul a (pow a (n - 1))

let rec of_expr = function
  | Ast.Var x -> add_term (Mono.var x) 1 zero
  | Ast.Const c -> add_term Mono.one c zero
  | Ast.Add (a, b) -> merge (of_expr a) (of_expr b)
  | Ast.Sub (a, b) -> merge (of_expr a) (scale (-1) (of_expr b))
  | Ast.Mul (a, b) -> mul (of_expr a) (of_expr b)
  | Ast.Neg a -> scale (-1) (of_expr a)
  | Ast.Pow (a, n) -> pow (of_expr a) n

let terms sop = Mono_map.bindings sop
let constant sop = Option.value (Mono_map.find_opt Mono.one sop) ~default:0
let term_count = Mono_map.cardinal
let max_degree sop =
  Mono_map.fold (fun m _ acc -> max acc (Mono.degree m)) sop 0

let eval assign sop =
  Mono_map.fold
    (fun mono coeff acc ->
      acc + (coeff * List.fold_left (fun p v -> p * assign v) 1 mono))
    sop 0

let to_expr sop =
  let term_expr mono coeff =
    let base =
      match mono with
      | [] -> Ast.Const (abs coeff)
      | first :: rest ->
        let prod =
          List.fold_left (fun e v -> Ast.Mul (e, Ast.Var v)) (Ast.Var first) rest
        in
        if abs coeff = 1 then prod else Ast.Mul (Ast.Const (abs coeff), prod)
    in
    (base, coeff < 0)
  in
  match terms sop with
  | [] -> Ast.Const 0
  | (m0, c0) :: rest ->
    let e0, neg0 = term_expr m0 c0 in
    let head = if neg0 then Ast.Neg e0 else e0 in
    List.fold_left
      (fun acc (m, c) ->
        let e, neg = term_expr m c in
        if neg then Ast.Sub (acc, e) else Ast.Add (acc, e))
      head rest

let pp ppf sop =
  match terms sop with
  | [] -> Fmt.string ppf "0"
  | bindings ->
    let pp_term ppf (m, c) = Fmt.pf ppf "%d*%a" c Mono.pp m in
    Fmt.(list ~sep:(any " + ") pp_term) ppf bindings
