(** Abstract syntax of arithmetic expressions over unsigned variables.

    The datapath synthesizer accepts any composition of additions,
    subtractions and multiplications (the paper's Sec. 1); [Neg] and [Pow]
    are convenience forms eliminated during normalization. *)

type t =
  | Var of string
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Pow of t * int

val var : string -> t
val const : int -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val neg : t -> t

(** @raise Invalid_argument on a negative exponent. *)
val pow : t -> int -> t

val equal : t -> t -> bool

(** Distinct variable names, sorted. *)
val vars : t -> string list

(** Capture-free substitution of variables (there are no binders). *)
val subst : (string -> t option) -> t -> t

(** Node count. *)
val size : t -> int

val pp : t Fmt.t
val to_string : t -> string
