(** Canonical-signed-digit recoding of integer coefficients.

    A coefficient c multiplying a partial product is realized as shifted
    copies of the product, one per non-zero digit of c; CSD minimizes the
    number of such copies (digits are in {-1, 0, +1} with no two adjacent
    non-zeros), so it minimizes the addends entering the matrix.  Plain
    {!binary} expansion is kept as an ablation baseline. *)

type digit = { sign : int (** +1 or -1 *); weight : int }

(** CSD digits of any integer (including negatives), weight-ascending. *)
val recode : int -> digit list

(** Plain base-2 digits of |n| carrying n's sign, weight-ascending. *)
val binary : int -> digit list

val value : digit list -> int
val nonzero_count : digit list -> int

(** True iff no two digits have adjacent weights (holds for {!recode}). *)
val is_canonical : digit list -> bool

val pp : digit list Fmt.t
