let rec pow_int base n = if n = 0 then 1 else base * pow_int base (n - 1)

let rec eval assign = function
  | Ast.Var x -> assign x
  | Ast.Const c -> c
  | Ast.Add (a, b) -> eval assign a + eval assign b
  | Ast.Sub (a, b) -> eval assign a - eval assign b
  | Ast.Mul (a, b) -> eval assign a * eval assign b
  | Ast.Neg a -> -eval assign a
  | Ast.Pow (a, n) -> pow_int (eval assign a) n

let mask width =
  if width < 1 || width > 62 then invalid_arg "Eval.mask: width out of [1,62]";
  (1 lsl width) - 1

let eval_mod ~width assign e = eval assign e land mask width

let signed_of_pattern ~width v =
  let v = v land mask width in
  if (v lsr (width - 1)) land 1 = 1 then v - (1 lsl width) else v

let eval_alist alist e =
  let assign x =
    match List.assoc_opt x alist with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Eval.eval_alist: unbound %s" x)
  in
  eval assign e
