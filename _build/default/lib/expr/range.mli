(** Interval analysis of expression values, used to infer the natural output
    width of a datapath (the smallest W such that the result is represented
    exactly — in two's complement when the value can go negative). *)

type t = private { lo : int; hi : int }

(** @raise Invalid_argument if [lo > hi]. *)
val make : int -> int -> t

(** Range of an unsigned input of the given width: [0, 2^w − 1]. *)
val of_width : int -> t

(** Range of a two's-complement input: [−2^(w−1), 2^(w−1) − 1]. *)
val of_signed_width : int -> t

val const : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val pow : t -> int -> t
val of_expr : Env.t -> Ast.t -> t

(** Minimum representation width of the range: plain binary when
    non-negative, two's complement otherwise.  Always >= 1. *)
val width : t -> int

(** [width (of_expr env e)]. *)
val natural_width : Env.t -> Ast.t -> int

val pp : t Fmt.t
