(** Normalization of expressions to sum-of-products form: a finite map from
    monomials to non-zero integer coefficients.

    This is the word-level half of the paper's "global" translation of an
    arithmetic circuit into one addition expression (Sec. 1): products are
    distributed over sums so the whole expression becomes a single
    multi-operand addition, which the bit-level lowering then turns into one
    addend matrix. *)

module Mono : sig
  (** Sorted variable factors with multiplicity; [[]] is the constant
      monomial. *)
  type t = string list

  val compare : t -> t -> int
  val one : t
  val var : string -> t
  val mul : t -> t -> t
  val degree : t -> int
  val pp : t Fmt.t
end

type t

val zero : t

(** Add [coeff * mono]; cancellation removes zero terms. *)
val add_term : Mono.t -> int -> t -> t

val merge : t -> t -> t
val scale : int -> t -> t
val mul : t -> t -> t
val pow : t -> int -> t

(** Full normalization.  Distribution can grow the term count
    exponentially in nesting depth; all the paper's designs are small. *)
val of_expr : Ast.t -> t

(** Terms in increasing monomial order; coefficients are never 0. *)
val terms : t -> (Mono.t * int) list

val constant : t -> int
val term_count : t -> int
val max_degree : t -> int
val eval : (string -> int) -> t -> int

(** A syntactically reasonable expression denoting the same polynomial. *)
val to_expr : t -> Ast.t

val pp : t Fmt.t
