type t =
  | Var of string
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Pow of t * int

let var s = Var s
let const c = Const c
let neg a = Neg a
let pow a n =
  if n < 0 then invalid_arg "Ast.pow: negative exponent";
  Pow (a, n)

let rec equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> Int.equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2) -> equal a1 b1 && equal a2 b2
  | Neg a1, Neg b1 -> equal a1 b1
  | Pow (a1, n), Pow (b1, m) -> Int.equal n m && equal a1 b1
  | (Var _ | Const _ | Add _ | Sub _ | Mul _ | Neg _ | Pow _), _ -> false

let rec vars_acc acc = function
  | Var x -> if List.mem x acc then acc else x :: acc
  | Const _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> vars_acc (vars_acc acc a) b
  | Neg a -> vars_acc acc a
  | Pow (a, _) -> vars_acc acc a

let vars e = List.sort String.compare (vars_acc [] e)

let rec subst lookup = function
  | Var x as e -> (match lookup x with Some replacement -> replacement | None -> e)
  | Const _ as e -> e
  | Add (a, b) -> Add (subst lookup a, subst lookup b)
  | Sub (a, b) -> Sub (subst lookup a, subst lookup b)
  | Mul (a, b) -> Mul (subst lookup a, subst lookup b)
  | Neg a -> Neg (subst lookup a)
  | Pow (a, n) -> Pow (subst lookup a, n)

let rec size = function
  | Var _ | Const _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> 1 + size a + size b
  | Neg a | Pow (a, _) -> 1 + size a

(* Precedence levels for printing: 0 add/sub, 1 mul, 2 neg, 3 pow/atom. *)
let rec pp_prec prec ppf e =
  let paren p body = if prec > p then Fmt.pf ppf "(%t)" body else body ppf in
  match e with
  | Var x -> Fmt.string ppf x
  | Const c ->
    if c < 0 then Fmt.pf ppf "(%d)" c else Fmt.int ppf c
  | Add (a, b) -> paren 0 (fun ppf -> Fmt.pf ppf "%a + %a" (pp_prec 0) a (pp_prec 0) b)
  | Sub (a, b) -> paren 0 (fun ppf -> Fmt.pf ppf "%a - %a" (pp_prec 0) a (pp_prec 1) b)
  | Mul (a, b) -> paren 1 (fun ppf -> Fmt.pf ppf "%a*%a" (pp_prec 1) a (pp_prec 2) b)
  | Neg a -> paren 2 (fun ppf -> Fmt.pf ppf "-%a" (pp_prec 2) a)
  | Pow (a, n) -> paren 3 (fun ppf -> Fmt.pf ppf "%a^%d" (pp_prec 3) a n)

let pp ppf e = pp_prec 0 ppf e
let to_string e = Fmt.str "%a" pp e

(* Infix constructors shadow arithmetic, so they come last. *)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
