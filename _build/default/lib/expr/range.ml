type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Range.make: lo > hi";
  { lo; hi }

let of_width w = { lo = 0; hi = Eval.mask w }

let of_signed_width w =
  if w = 1 then { lo = -1; hi = 0 }
  else { lo = -(1 lsl (w - 1)); hi = (1 lsl (w - 1)) - 1 }
let const c = { lo = c; hi = c }

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }
let neg a = { lo = -a.hi; hi = -a.lo }

let mul a b =
  let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
  {
    lo = List.fold_left min max_int products;
    hi = List.fold_left max min_int products;
  }

let rec pow a n =
  if n = 0 then const 1
  else if n = 1 then a
  else mul a (pow a (n - 1))

let rec of_expr env = function
  | Ast.Var x ->
    let info = Env.find x env in
    if info.signed then of_signed_width info.width else of_width info.width
  | Ast.Const c -> const c
  | Ast.Add (a, b) -> add (of_expr env a) (of_expr env b)
  | Ast.Sub (a, b) -> sub (of_expr env a) (of_expr env b)
  | Ast.Mul (a, b) -> mul (of_expr env a) (of_expr env b)
  | Ast.Neg a -> neg (of_expr env a)
  | Ast.Pow (a, n) -> pow (of_expr env a) n

let bits_for_nonneg v =
  (* minimum width so that 0 <= v < 2^w, with w >= 1 *)
  let rec go w cap = if v < cap then w else go (w + 1) (cap * 2) in
  go 1 2

(* like [bits_for_nonneg] but 0 needs no bits — used for the magnitude part
   of a two's-complement width *)
let bits0 v = if v = 0 then 0 else bits_for_nonneg v

let width r =
  if r.lo >= 0 then bits_for_nonneg r.hi
  else
    (* two's-complement width holding both extremes: a sign bit plus enough
       magnitude bits for hi and for (-lo - 1) *)
    let w_hi = 1 + bits0 (max r.hi 0) in
    let w_lo = 1 + bits0 (-r.lo - 1) in
    max w_hi w_lo

let natural_width env e = width (of_expr env e)

let pp ppf r = Fmt.pf ppf "[%d, %d]" r.lo r.hi
