lib/expr/sop.mli: Ast Fmt
