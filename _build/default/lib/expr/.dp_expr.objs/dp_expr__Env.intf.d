lib/expr/env.mli: Ast Fmt
