lib/expr/ast.ml: Fmt Int List String
