lib/expr/eval.ml: Ast List Printf
