lib/expr/csd.ml: Fmt List
