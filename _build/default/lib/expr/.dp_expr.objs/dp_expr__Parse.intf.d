lib/expr/parse.mli: Ast
