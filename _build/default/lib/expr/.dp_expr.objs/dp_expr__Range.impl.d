lib/expr/range.ml: Ast Env Eval Fmt List
