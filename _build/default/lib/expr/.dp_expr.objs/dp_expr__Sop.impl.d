lib/expr/sop.ml: Ast Fmt List Map Option Stdlib String
