lib/expr/env.ml: Array Ast Fmt List Map Printf String
