lib/expr/ast.mli: Fmt
