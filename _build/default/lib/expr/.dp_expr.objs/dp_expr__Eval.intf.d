lib/expr/eval.mli: Ast
