lib/expr/parse.ml: Ast Fmt List String
