lib/expr/csd.mli: Fmt
