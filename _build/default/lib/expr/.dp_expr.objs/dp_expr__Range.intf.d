lib/expr/range.mli: Ast Env Fmt
