type digit = { sign : int; weight : int }

let recode n =
  (* Standard CSD construction: scan from LSB; at an odd residue choose the
     digit +/-1 that makes the remainder divisible by 4, guaranteeing no two
     adjacent non-zero digits. *)
  let rec go n w acc =
    if n = 0 then List.rev acc
    else if n land 1 = 0 then go (n asr 1) (w + 1) acc
    else
      let d = if n land 3 = 1 then 1 else -1 in
      go ((n - d) asr 1) (w + 1) ({ sign = d; weight = w } :: acc)
  in
  go n 0 []

let binary n =
  let sign = if n < 0 then -1 else 1 in
  let rec go n w acc =
    if n = 0 then List.rev acc
    else if n land 1 = 1 then go (n asr 1) (w + 1) ({ sign; weight = w } :: acc)
    else go (n asr 1) (w + 1) acc
  in
  go (abs n) 0 []

let value digits =
  List.fold_left (fun acc d -> acc + (d.sign * (1 lsl d.weight))) 0 digits

let nonzero_count = List.length

let is_canonical digits =
  (* digits come out weight-sorted; canonical iff no two adjacent weights *)
  let rec go = function
    | a :: (b :: _ as rest) -> b.weight > a.weight + 1 && go rest
    | [ _ ] | [] -> true
  in
  go digits

let pp_digit ppf d =
  Fmt.pf ppf "%c2^%d" (if d.sign >= 0 then '+' else '-') d.weight

let pp ppf digits = Fmt.(list ~sep:(any " ") pp_digit) ppf digits
