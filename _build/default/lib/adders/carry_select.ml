open Dp_netlist

let block_size = 4

let mux netlist ~sel ~if_true ~if_false =
  Netlist.or_n netlist
    [
      Netlist.and_n netlist [ sel; if_true ];
      Netlist.and_n netlist [ Netlist.not_ netlist sel; if_false ];
    ]

let ripple_block netlist ~a ~b ~lo ~hi ~carry_in =
  let sums = Array.make (hi - lo) carry_in in
  let carry = ref carry_in in
  for i = lo to hi - 1 do
    let s, c = Netlist.fa netlist a.(i) b.(i) !carry in
    sums.(i - lo) <- s;
    carry := c
  done;
  sums, !carry

let build ?cin netlist ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then invalid_arg "Carry_select.build: width mismatch";
  let sums = Array.make width (Netlist.const netlist false) in
  let carry_in =
    ref (match cin with None -> Netlist.const netlist false | Some c -> c)
  in
  let block_start = ref 0 in
  while !block_start < width do
    let lo = !block_start in
    let hi = min (lo + block_size) width in
    if lo = 0 then begin
      (* the first block cannot overlap carry computation: plain ripple *)
      let s, c = ripple_block netlist ~a ~b ~lo ~hi ~carry_in:!carry_in in
      Array.blit s 0 sums lo (hi - lo);
      carry_in := c
    end
    else begin
      (* speculative chains for both carry-in values, then select *)
      let s0, c0 =
        ripple_block netlist ~a ~b ~lo ~hi ~carry_in:(Netlist.const netlist false)
      in
      let s1, c1 =
        ripple_block netlist ~a ~b ~lo ~hi ~carry_in:(Netlist.const netlist true)
      in
      for i = 0 to hi - lo - 1 do
        sums.(lo + i) <- mux netlist ~sel:!carry_in ~if_true:s1.(i) ~if_false:s0.(i)
      done;
      carry_in := mux netlist ~sel:!carry_in ~if_true:c1 ~if_false:c0
    end;
    block_start := hi
  done;
  sums
