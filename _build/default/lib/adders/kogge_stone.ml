open Dp_netlist

let build ?cin netlist ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then invalid_arg "Kogge_stone.build: width mismatch";
  let cin = match cin with None -> Netlist.const netlist false | Some c -> c in
  let p0 = Array.init width (fun i -> Netlist.xor2 netlist a.(i) b.(i)) in
  let g = Array.init width (fun i -> Netlist.and_n netlist [ a.(i); b.(i) ]) in
  let p = Array.copy p0 in
  (* prefix combine: after the pass for distance d, g.(i) is the generate of
     the window [i-2d+1 .. i] (clamped at 0) *)
  let distance = ref 1 in
  while !distance < width do
    let g' = Array.copy g and p' = Array.copy p in
    for i = !distance to width - 1 do
      let j = i - !distance in
      g'.(i) <-
        Netlist.or_n netlist [ g.(i); Netlist.and_n netlist [ p.(i); g.(j) ] ];
      p'.(i) <- Netlist.and_n netlist [ p.(i); p.(j) ]
    done;
    Array.blit g' 0 g 0 width;
    Array.blit p' 0 p 0 width;
    distance := !distance * 2
  done;
  (* carry into bit i: c_i = G[0..i-1] | (P[0..i-1] & cin); constant folding
     removes the cin terms when there is no carry-in *)
  Array.init width (fun i ->
      if i = 0 then Netlist.xor2 netlist p0.(0) cin
      else
        let carry =
          Netlist.or_n netlist
            [ g.(i - 1); Netlist.and_n netlist [ p.(i - 1); cin ] ]
        in
        Netlist.xor2 netlist p0.(i) carry)
