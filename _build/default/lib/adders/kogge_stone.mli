(** Kogge-Stone parallel-prefix adder: log-depth carry network.  Modular
    (carry-out discarded). *)

open Dp_netlist

(** @raise Invalid_argument on operand width mismatch. *)
val build :
  ?cin:Netlist.net -> Netlist.t ->
  a:Netlist.net array -> b:Netlist.net array -> Netlist.net array
