(** Ripple-carry adder: a chain of FAs (the first degrades to an HA).
    Result is modular: same width as the operands, carry-out discarded. *)

open Dp_netlist

(** @raise Invalid_argument on operand width mismatch. *)
val build :
  ?cin:Netlist.net -> Netlist.t ->
  a:Netlist.net array -> b:Netlist.net array -> Netlist.net array
