open Dp_netlist

type kind = Ripple | Cla | Carry_select | Kogge_stone

let all = [ Ripple; Cla; Carry_select; Kogge_stone ]

let name = function
  | Ripple -> "ripple"
  | Cla -> "cla"
  | Carry_select -> "carry-select"
  | Kogge_stone -> "kogge-stone"

let of_name = function
  | "ripple" -> Some Ripple
  | "cla" -> Some Cla
  | "carry-select" | "carry_select" -> Some Carry_select
  | "kogge-stone" | "kogge_stone" -> Some Kogge_stone
  | _ -> None

let pp ppf k = Fmt.string ppf (name k)

let build ?cin kind netlist ~a ~b =
  match kind with
  | Ripple -> Ripple.build ?cin netlist ~a ~b
  | Cla -> Cla.build ?cin netlist ~a ~b
  | Carry_select -> Carry_select.build ?cin netlist ~a ~b
  | Kogge_stone -> Kogge_stone.build ?cin netlist ~a ~b

let build_rows kind netlist ~width (row_a, row_b) =
  let zero = Netlist.const netlist false in
  let pick row i = if i < Array.length row then Option.value row.(i) ~default:zero else zero in
  let a = Array.init width (pick row_a) in
  let b = Array.init width (pick row_b) in
  build kind netlist ~a ~b
