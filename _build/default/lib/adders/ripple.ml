open Dp_netlist

let build ?cin netlist ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then invalid_arg "Ripple.build: width mismatch";
  let sums = Array.make width (Netlist.const netlist false) in
  let carry =
    ref (match cin with None -> Netlist.const netlist false | Some c -> c)
  in
  for i = 0 to width - 1 do
    let s, c = Netlist.fa netlist a.(i) b.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  sums
