(** Carry-select adder: 4-bit blocks computing both speculative sums, block
    carry selecting between them.  Modular (carry-out discarded). *)

open Dp_netlist

(** @raise Invalid_argument on operand width mismatch. *)
val build :
  ?cin:Netlist.net -> Netlist.t ->
  a:Netlist.net array -> b:Netlist.net array -> Netlist.net array
