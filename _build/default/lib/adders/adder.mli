(** Final (carry-propagating) adder at the FA-tree root.  The paper leaves
    its implementation open ("any of several types of modules"); four
    classic architectures are provided, all built from the same technology
    cells so timing/power/simulation treat them uniformly. *)

open Dp_netlist

type kind = Ripple | Cla | Carry_select | Kogge_stone

val all : kind list
val name : kind -> string
val of_name : string -> kind option
val pp : kind Fmt.t

(** @raise Invalid_argument on operand width mismatch. *)
val build :
  ?cin:Netlist.net -> kind -> Netlist.t ->
  a:Netlist.net array -> b:Netlist.net array -> Netlist.net array

(** Adapter for [Dp_bitmatrix.Matrix.operand_rows] output: pads the two
    option rows with constant 0 to [width] and adds them. *)
val build_rows :
  kind -> Netlist.t -> width:int ->
  Netlist.net option array * Netlist.net option array -> Netlist.net array
