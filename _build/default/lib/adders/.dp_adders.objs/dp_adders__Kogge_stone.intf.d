lib/adders/kogge_stone.mli: Dp_netlist Netlist
