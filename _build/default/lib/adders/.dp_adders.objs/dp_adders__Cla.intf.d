lib/adders/cla.mli: Dp_netlist Netlist
