lib/adders/ripple.ml: Array Dp_netlist Netlist
