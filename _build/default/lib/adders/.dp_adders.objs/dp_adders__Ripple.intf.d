lib/adders/ripple.mli: Dp_netlist Netlist
