lib/adders/kogge_stone.ml: Array Dp_netlist Netlist
