lib/adders/carry_select.ml: Array Dp_netlist Netlist
