lib/adders/adder.mli: Dp_netlist Fmt Netlist
