lib/adders/cla.ml: Array Dp_netlist List Netlist
