lib/adders/adder.ml: Array Carry_select Cla Dp_netlist Fmt Kogge_stone Netlist Option Ripple
