lib/adders/carry_select.mli: Dp_netlist Netlist
