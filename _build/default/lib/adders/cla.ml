open Dp_netlist

let group_size = 4

let build ?cin netlist ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then invalid_arg "Cla.build: width mismatch";
  let generate = Array.init width (fun i -> Netlist.and_n netlist [ a.(i); b.(i) ]) in
  let propagate = Array.init width (fun i -> Netlist.xor2 netlist a.(i) b.(i)) in
  let sums = Array.make width (Netlist.const netlist false) in
  let carry_in =
    ref (match cin with None -> Netlist.const netlist false | Some c -> c)
  in
  let block_start = ref 0 in
  while !block_start < width do
    let hi = min (!block_start + group_size) width in
    (* carries within the group, fully looked-ahead from the group carry-in:
       c_{k+1} = g_k | p_k g_{k-1} | ... | p_k ... p_0 c_in *)
    let carry = Array.make (hi - !block_start + 1) !carry_in in
    for k = !block_start to hi - 1 do
      let local = k - !block_start in
      let terms = ref [] in
      for j = !block_start to k do
        (* g_j AND (p_{j+1} ... p_k) *)
        let ps = List.init (k - j) (fun d -> propagate.(j + 1 + d)) in
        terms := Netlist.and_n netlist (generate.(j) :: ps) :: !terms
      done;
      let all_p = List.init (k - !block_start + 1) (fun d -> propagate.(!block_start + d)) in
      terms := Netlist.and_n netlist (!carry_in :: all_p) :: !terms;
      carry.(local + 1) <- Netlist.or_n netlist !terms
    done;
    for k = !block_start to hi - 1 do
      sums.(k) <- Netlist.xor2 netlist propagate.(k) carry.(k - !block_start)
    done;
    carry_in := carry.(hi - !block_start);
    block_start := hi
  done;
  sums
