open Dp_netlist

type t = {
  mutable columns : Netlist.net list array;  (* index = bit weight, LSB at 0 *)
  max_width : int option;
}

let create ?max_width () =
  (match max_width with
  | Some w when w < 1 -> invalid_arg "Matrix.create: max_width must be >= 1"
  | Some _ | None -> ());
  { columns = Array.make (match max_width with Some w -> w | None -> 8) []; max_width }

let max_width t = t.max_width

let grow t weight =
  let n = Array.length t.columns in
  if weight >= n then begin
    let columns = Array.make (max (weight + 1) (2 * n)) [] in
    Array.blit t.columns 0 columns 0 n;
    t.columns <- columns
  end

let in_range t weight =
  match t.max_width with Some w -> weight < w | None -> true

let add t ~weight net =
  if weight < 0 then invalid_arg "Matrix.add: negative weight";
  if in_range t weight then begin
    grow t weight;
    t.columns.(weight) <- net :: t.columns.(weight)
  end

let width t =
  let n = Array.length t.columns in
  let rec last i = if i < 0 then 0 else if t.columns.(i) <> [] then i + 1 else last (i - 1) in
  last (n - 1)

let column t j =
  if j < 0 then invalid_arg "Matrix.column: negative index";
  if j >= Array.length t.columns then [] else List.rev t.columns.(j)

let set_column t j nets =
  if j < 0 then invalid_arg "Matrix.set_column: negative index";
  if in_range t j then begin
    grow t j;
    t.columns.(j) <- List.rev nets
  end
  else if nets <> [] then invalid_arg "Matrix.set_column: beyond max_width"

let height t =
  Array.fold_left (fun acc col -> max acc (List.length col)) 0 t.columns

let total_addends t =
  Array.fold_left (fun acc col -> acc + List.length col) 0 t.columns

let is_reduced t =
  Array.for_all (fun col -> List.length col <= 2) t.columns

let operand_rows t =
  let w = width t in
  let a = Array.make (max w 1) None and b = Array.make (max w 1) None in
  for j = 0 to w - 1 do
    match column t j with
    | [] -> ()
    | [ x ] -> a.(j) <- Some x
    | [ x; y ] ->
      a.(j) <- Some x;
      b.(j) <- Some y
    | _ -> invalid_arg "Matrix.operand_rows: matrix is not reduced"
  done;
  a, b

let value t values =
  let acc = ref 0 in
  Array.iteri
    (fun weight col ->
      List.iter
        (fun net -> if values.(net) then acc := !acc + (1 lsl weight))
        col)
    t.columns;
  !acc

let pp_dots ppf t =
  (* the paper's dot-diagram view: one line per row, MSB column left *)
  let w = width t in
  let h = max (height t) 1 in
  for row = 0 to h - 1 do
    for j = w - 1 downto 0 do
      let mark = if List.length (column t j) > row then "o" else "." in
      Fmt.pf ppf "%s%s" mark (if j = 0 then "" else " ")
    done;
    if row < h - 1 then Fmt.pf ppf "@\n"
  done

let pp_shape ppf t =
  let w = width t in
  let counts = List.init w (fun j -> List.length (column t (w - 1 - j))) in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") int) counts
