lib/bitmatrix/lower.ml: Array Ast Booth Csd Dp_expr Dp_netlist Env Eval Int List Map Matrix Netlist Option Printf Sop Stdlib String
