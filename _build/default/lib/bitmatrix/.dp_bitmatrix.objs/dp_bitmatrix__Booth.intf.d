lib/bitmatrix/booth.mli: Dp_netlist Matrix Netlist
