lib/bitmatrix/lower.mli: Ast Dp_expr Dp_netlist Env Matrix Netlist
