lib/bitmatrix/booth.ml: Array Dp_netlist Matrix Netlist
