lib/bitmatrix/matrix.mli: Dp_netlist Fmt Netlist
