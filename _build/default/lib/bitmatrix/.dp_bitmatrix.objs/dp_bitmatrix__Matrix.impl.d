lib/bitmatrix/matrix.ml: Array Dp_netlist Fmt List Netlist
