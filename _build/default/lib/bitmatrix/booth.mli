(** Radix-4 (modified) Booth partial-product generation for unsigned
    operands — the classic alternative to the AND-array: about half as many
    rows at the cost of selector logic, profitable for wide multipliers.

    Not part of the paper (which assumes plain bit addends) but the natural
    companion optimization; {!Lower} can route eligible products here via
    its [multiplier_style] configuration, and the ablation bench measures
    the trade-off. *)

open Dp_netlist

(** Number of radix-4 digits needed for an unsigned m-bit multiplier. *)
val digit_count : int -> int

(** Add the addends denoting [multiplicand * multiplier * 2^shift]
    (negated when [negate]) to the matrix.  Returns the compile-time
    constant correction the caller must add to its constant accumulator
    (always <= 0; already truncated to the matrix's width cap).
    @raise Invalid_argument on an empty operand. *)
val lower_product :
  ?negate:bool -> ?shift:int -> Netlist.t -> Matrix.t ->
  multiplicand:Netlist.net array -> multiplier:Netlist.net array -> int
