(** Global bit-level lowering: expression → addend matrix (mod 2^W).

    This realizes the paper's extension of the Wallace scheme "to any
    arithmetic circuit which consists of additions/subtractions/
    multiplications globally": the whole expression becomes one addend
    matrix, not one matrix per operation.  Partial-product AND gates are
    structurally shared; monomial expansion folds squarer symmetries
    (x_i·x_i = x_i, and x_i·x_j + x_j·x_i = one addend at weight i+j+1);
    per-support multipliers are recoded into signed power-of-two digits
    ({!Csd} canonical form by default, plain {!Binary} as the ablation
    baseline); negative digits lower as complemented addends via
    −b·2^w = ~b·2^w − 2^w; and all constants are pre-summed into a single
    value contributing at most one constant-1 addend per column. *)

open Dp_netlist
open Dp_expr

type recoding = Csd | Binary

type multiplier_style =
  | And_array  (** plain partial-product bits (the paper's setting) *)
  | Booth  (** radix-4 Booth rows for eligible products — see {!Booth} *)

type config = { recoding : recoding; multiplier_style : multiplier_style }

(** CSD recoding, AND-array products. *)
val default_config : config

(** Declare one primary-input bus per expression variable, carrying the
    environment's arrival/probability profiles; buses already declared in
    the netlist are reused, so several expressions can share one netlist.
    Returns name ↦ nets.
    @raise Invalid_argument if an existing bus has a different width. *)
val declare_inputs :
  Netlist.t -> Env.t -> Ast.t -> (string * Netlist.net array) list

(** [lower netlist env expr ~width] declares the inputs and builds the
    addend matrix denoting [expr] mod 2^width.
    @raise Invalid_argument if [width] is outside [1, 62] or a variable is
    unbound. *)
val lower :
  ?config:config -> Netlist.t -> Env.t -> Ast.t -> width:int -> Matrix.t
