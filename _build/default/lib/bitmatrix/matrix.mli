(** The addend matrix (paper Sec. 2.1): column [j] is the multiset of
    single-bit addends of weight 2^j.  The sum the matrix denotes is
    Σ_j Σ_{net ∈ column j} net · 2^j, and every reduction step (replacing
    three addends by an FA's sum and carry) preserves that value.

    When [max_width] is set the matrix is modular: addends at weights >= W
    are silently discarded, realizing arithmetic mod 2^W. *)

open Dp_netlist

type t

(** @raise Invalid_argument when [max_width < 1]. *)
val create : ?max_width:int -> unit -> t

val max_width : t -> int option

(** @raise Invalid_argument on a negative weight. *)
val add : t -> weight:int -> Netlist.net -> unit

(** Index of the last non-empty column + 1 (0 when empty). *)
val width : t -> int

(** Addends of column [j] in insertion order; empty beyond {!width}.
    @raise Invalid_argument on a negative index. *)
val column : t -> int -> Netlist.net list

(** Replace a column's contents.
    @raise Invalid_argument on a negative index or on placing addends beyond
    [max_width]. *)
val set_column : t -> int -> Netlist.net list -> unit

(** Largest column population. *)
val height : t -> int

val total_addends : t -> int

(** True iff every column holds at most two addends. *)
val is_reduced : t -> bool

(** The two final operand rows of a reduced matrix, position [j] holding
    column [j]'s first/second addend (or [None]).
    @raise Invalid_argument if some column still has more than two. *)
val operand_rows : t -> Netlist.net option array * Netlist.net option array

(** Denoted sum under a simulation valuation (index = net id). *)
val value : t -> bool array -> int

(** Dot-diagram view (one mark per addend, MSB column left) — the paper's
    addend-matrix figures. *)
val pp_dots : t Fmt.t

(** Column populations, MSB first — handy in tests and examples. *)
val pp_shape : t Fmt.t
