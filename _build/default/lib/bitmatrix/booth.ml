open Dp_netlist

(* Radix-4 (modified) Booth recoding of an UNSIGNED multiplier Y: digits
   d_k = y(2k-1) + y(2k) - 2*y(2k+1) in {-2,-1,0,1,2}, with y(-1) = 0 and
   bits beyond the top read as 0, for k = 0 .. ceil((m+1)/2) - 1 (one extra
   digit group absorbs the virtual sign 0 of the unsigned operand, so the
   last digit is never negative).

   Each digit contributes (-1)^neg * B_k * 4^k where B_k selects 0, X or 2X
   (an (n+1)-bit vector).  The two's-complement identity
       -B = ~B + 1 - 2^(n+1)      (over n+1 bits)
   turns a conditionally negative row into unconditional addends:

       (B_k XOR neg)  bits at weights 2k .. 2k+n
       neg            at weight 2k          (the "+1")
       NOT neg        at weight 2k+n+1      (from -neg*2^(n+1) =
                                             (~neg)*2^(n+1) - 2^(n+1))
   plus a compile-time constant correction -2^(2k+n+1), which the caller
   accumulates like every other constant.  For the top digit neg is the
   constant 0, so the builder folds the whole tail away. *)

let digit_count m = (m + 2) / 2

let selector_signals netlist multiplier k =
  let m = Array.length multiplier in
  let bit i = if i < 0 || i >= m then Netlist.const netlist false else multiplier.(i) in
  let y_lo = bit ((2 * k) - 1) and y_mid = bit (2 * k) and y_hi = bit ((2 * k) + 1) in
  (* one: |d| = 1  <=>  y_mid <> y_lo;  two: |d| = 2; neg: d < 0 *)
  let one = Netlist.xor2 netlist y_mid y_lo in
  let all_set = Netlist.and_n netlist [ y_hi; y_mid; y_lo ] in
  let none_set =
    Netlist.and_n netlist
      [
        Netlist.not_ netlist y_hi;
        Netlist.not_ netlist y_mid;
        Netlist.not_ netlist y_lo;
      ]
  in
  (* |d| = 2 when the three bits are 100 (d = -2) or 011 (d = +2) *)
  let two =
    Netlist.and_n netlist
      [ Netlist.not_ netlist one;
        Netlist.not_ netlist all_set;
        Netlist.not_ netlist none_set ]
  in
  let neg = y_hi in
  one, two, neg

(* [lower_product] adds the addends of multiplicand*multiplier (unsigned x
   unsigned; optionally negated) to [matrix] at [shift], and returns the
   constant correction that must be added to the caller's constant
   accumulator. *)
let lower_product ?(negate = false) ?(shift = 0) netlist matrix ~multiplicand
    ~multiplier =
  let n = Array.length multiplicand in
  let m = Array.length multiplier in
  if n = 0 || m = 0 then invalid_arg "Booth.lower_product: empty operand";
  let in_range w = match Matrix.max_width matrix with
    | Some cap -> w < cap
    | None -> true
  in
  let correction = ref 0 in
  for k = 0 to digit_count m - 1 do
    let one, two, neg = selector_signals netlist multiplier k in
    let neg = if negate then Netlist.not_ netlist neg else neg in
    let base = shift + (2 * k) in
    (* row bits B_k(i) = (x_i & one) | (x_{i-1} & two), i = 0 .. n *)
    for i = 0 to n do
      let w = base + i in
      if in_range w then begin
        let terms = ref [] in
        if i < n then
          terms := Netlist.and_n netlist [ multiplicand.(i); one ] :: !terms;
        if i > 0 then
          terms := Netlist.and_n netlist [ multiplicand.(i - 1); two ] :: !terms;
        let b = Netlist.or_n netlist !terms in
        Matrix.add matrix ~weight:w (Netlist.xor2 netlist b neg)
      end
    done;
    (* the "+neg" of the two's complement; constant neg folds entirely *)
    if in_range base then begin
      match Netlist.const_value netlist neg with
      | Some false -> ()
      | Some true -> correction := !correction + (1 lsl base)
      | None -> Matrix.add matrix ~weight:base neg
    end;
    (* -neg * 2^(base+n+1) = ~neg * 2^(base+n+1) - 2^(base+n+1); for a
       constant-0 neg the addend and the correction cancel exactly *)
    let top = base + n + 1 in
    if in_range top then begin
      match Netlist.const_value netlist neg with
      | Some false -> ()
      | Some true -> correction := !correction - (1 lsl top)
      | None ->
        Matrix.add matrix ~weight:top (Netlist.not_ netlist neg);
        correction := !correction - (1 lsl top)
    end
  done;
  !correction
