open Dp_netlist
open Dp_bitmatrix
open Dp_core
open Helpers

let unit = Dp_tech.Tech.unit_delay

let random_small_matrix rng n ~cols ~max_height ~budget =
  let matrix = Matrix.create () in
  let remaining = ref budget in
  for j = 0 to cols - 1 do
    let h = min !remaining (1 + Random.State.int rng max_height) in
    remaining := !remaining - h;
    for i = 0 to h - 1 do
      let name = Printf.sprintf "e%d_%d" j i in
      let arrival = [| float_of_int (Random.State.int rng 9) |] in
      let bit = (Netlist.add_input n name ~width:1 ~arrival).(0) in
      Matrix.add matrix ~weight:j bit
    done
  done;
  matrix

let matrix_max n m =
  List.fold_left
    (fun acc j ->
      List.fold_left
        (fun acc net -> Float.max acc (Netlist.arrival n net))
        acc (Matrix.column m j))
    neg_infinity
    (List.init (Matrix.width m) Fun.id)

let test_replay_achieves_predicted_optimum () =
  let rng = Random.State.make [| 808 |] in
  for _ = 1 to 8 do
    let n = mk_netlist ~tech:unit () in
    let m = random_small_matrix rng n ~cols:3 ~max_height:3 ~budget:7 in
    let predicted = Exhaustive.optimal_arrival n m in
    Exhaustive.allocate n m;
    checkb "reduced" true (Matrix.is_reduced m);
    checkf "replayed = predicted" predicted (matrix_max n m)
  done

let test_never_worse_than_fa_aot () =
  let rng = Random.State.make [| 909 |] in
  for _ = 1 to 10 do
    let seed = Random.State.int rng 100000 in
    let reduced allocate =
      let rng' = Random.State.make [| seed |] in
      let n = mk_netlist ~tech:unit () in
      let m = random_small_matrix rng' n ~cols:3 ~max_height:3 ~budget:8 in
      allocate n m;
      matrix_max n m
    in
    let optimal = reduced Exhaustive.allocate in
    let greedy = reduced Fa_aot.allocate in
    if optimal > greedy +. 1e-9 then
      Alcotest.failf "exhaustive %.1f worse than greedy %.1f (seed %d)" optimal
        greedy seed;
    (* and the known envelope: greedy within one Dc of the optimum *)
    if greedy > optimal +. 1.0 +. 1e-9 then
      Alcotest.failf "greedy %.1f beyond optimum %.1f + Dc (seed %d)" greedy
        optimal seed
  done

let test_preserves_value () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:6 in
  let m = Matrix.create () in
  Array.iteri
    (fun i bit ->
      Matrix.add m ~weight:(i mod 2) bit;
      if i mod 3 = 0 then Matrix.add m ~weight:1 bit)
    bits;
  let reference = Matrix.create () in
  for j = 0 to Matrix.width m - 1 do
    List.iter (fun net -> Matrix.add reference ~weight:j net) (Matrix.column m j)
  done;
  Exhaustive.allocate n m;
  for v = 0 to 63 do
    let values = Dp_sim.Simulator.run n ~assign:(fun _ -> v) in
    checki "sum preserved" (Matrix.value reference values) (Matrix.value m values)
  done

let test_fig2_optimum_is_seven () =
  (* the Fig. 2 example: the true optimum equals FA_AOT's 7 *)
  let n = mk_netlist ~tech:unit () in
  let add name arrival = (Netlist.add_input n name ~width:1 ~arrival:[| arrival |]).(0) in
  let m = Matrix.create () in
  List.iter
    (fun (name, t) -> Matrix.add m ~weight:0 (add name t))
    [ ("x0", 7.0); ("y0", 2.0); ("z0", 3.0); ("w0", 2.0) ];
  List.iter
    (fun (name, t) -> Matrix.add m ~weight:1 (add name t))
    [ ("x1", 7.0); ("y1", 5.0); ("w1", 4.0) ];
  checkf "optimum 7" 7.0 (Exhaustive.optimal_arrival n m)

let test_too_large_raises () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:16 in
  let m = Matrix.create () in
  Array.iter (fun b -> Matrix.add m ~weight:0 b) bits;
  checkb "raises" true
    (match Exhaustive.optimal_arrival n m with
    | (_ : float) -> false
    | exception Exhaustive.Too_large -> true)

let suite =
  [
    case "replay achieves the predicted optimum" test_replay_achieves_predicted_optimum;
    case "never worse than FA_AOT; greedy within Dc" test_never_worse_than_fa_aot;
    case "reduction preserves the denoted sum" test_preserves_value;
    case "Fig. 2 example: true optimum is 7" test_fig2_optimum_is_seven;
    case "size cap raises Too_large" test_too_large_raises;
  ]
