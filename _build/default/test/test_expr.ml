open Dp_expr
open Helpers

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_roundtrip input expected () =
  checkb input true (Ast.equal (Parse.expr input) expected)

let test_parse_var = parse_roundtrip "x" (Ast.Var "x")
let test_parse_const = parse_roundtrip "42" (Ast.Const 42)

let test_parse_precedence =
  parse_roundtrip "a + b*c" Ast.(Add (Var "a", Mul (Var "b", Var "c")))

let test_parse_assoc =
  parse_roundtrip "a - b - c" Ast.(Sub (Sub (Var "a", Var "b"), Var "c"))

let test_parse_paren =
  parse_roundtrip "(a + b)*c" Ast.(Mul (Add (Var "a", Var "b"), Var "c"))

let test_parse_pow = parse_roundtrip "x^2" (Ast.Pow (Ast.Var "x", 2))

let test_parse_pow_binds_tighter =
  parse_roundtrip "2*x^3" Ast.(Mul (Const 2, Pow (Var "x", 3)))

let test_parse_neg =
  parse_roundtrip "-x + y" Ast.(Add (Neg (Var "x"), Var "y"))

let test_parse_neg_mul =
  parse_roundtrip "-x*y" Ast.(Mul (Neg (Var "x"), Var "y"))

let test_parse_whitespace =
  parse_roundtrip "  a  +\n\tb " Ast.(Add (Var "a", Var "b"))

let test_parse_idct () =
  let e = Parse.expr "4096*f0 + 4017*f1 + 3784*f2" in
  checki "three vars" 3 (List.length (Ast.vars e))

let test_parse_error_unbalanced () =
  checkb "unbalanced" true (Parse.expr_opt "(a + b" = None)

let test_parse_error_trailing () =
  checkb "trailing" true (Parse.expr_opt "a + b)" = None)

let test_parse_error_empty () = checkb "empty" true (Parse.expr_opt "" = None)

let test_parse_error_bad_pow () =
  checkb "pow needs int" true (Parse.expr_opt "x^y" = None)

let test_parse_error_char () = checkb "bad char" true (Parse.expr_opt "a % b" = None)

let test_print_parse_roundtrip () =
  List.iter
    (fun s ->
      let e = Parse.expr s in
      let e' = Parse.expr (Ast.to_string e) in
      checkb (Printf.sprintf "roundtrip %s" s) true (Ast.equal e e'))
    [
      "x + y - z + x*y - y*z + 10";
      "x^2 + 2*x*y + y^2 + 2*x + 2*y + 1";
      "-(a - b)*(c + d) - 7";
      "a*b*c - (a + 1)^3";
    ]

(* ------------------------------------------------------------------ *)
(* Programs *)

let test_program_inlines_bindings () =
  let outputs = Parse.program "t = a + b; out = t*t" in
  checki "one output" 1 (List.length outputs);
  let _, e = List.hd outputs in
  checki "value" 36 (Eval.eval_alist [ ("a", 2); ("b", 4) ] e);
  checkb "t is gone" true (not (List.mem "t" (Ast.vars e)))

let test_program_multiple_outputs () =
  let outputs = Parse.program "s = a + b; d = a - b; p = a*b" in
  check (Alcotest.list Alcotest.string) "names" [ "s"; "d"; "p" ]
    (List.map fst outputs)

let test_program_chained_bindings () =
  let outputs = Parse.program "t = x + 1; u = t*t; out = u + t" in
  checki "one output" 1 (List.length outputs);
  let _, e = List.hd outputs in
  (* (x+1)^2 + (x+1) at x=3 -> 16 + 4 = 20 *)
  checki "value" 20 (Eval.eval_alist [ ("x", 3) ] e)

let test_program_trailing_semicolon_rejected () =
  checkb "dangling" true
    (match Parse.program "a = x;" with
    | _ -> true (* trailing ';' then EOF: no further statement, fine *)
    | exception Parse.Error _ -> true)

let test_program_errors () =
  List.iter
    (fun bad ->
      match Parse.program bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Parse.Error _ -> ())
    [ ""; "= x"; "a = "; "a = x; a = y"; "a = x b = y" ]

let test_subst () =
  let e = Parse.expr "x*x + y" in
  let e' = Ast.subst (fun v -> if v = "x" then Some (Parse.expr "z + 1") else None) e in
  checki "substituted" ((5 + 1) * (5 + 1) + 2)
    (Eval.eval_alist [ ("z", 5); ("y", 2) ] e')

(* ------------------------------------------------------------------ *)
(* Eval *)

let test_eval_basic () =
  let e = Parse.expr "x^2 + 2*x*y + y^2" in
  let v = Eval.eval_alist [ ("x", 3); ("y", 4) ] e in
  checki "(3+4)^2" 49 v

let test_eval_neg () =
  checki "5-9" (-4) (Eval.eval_alist [ ("a", 5); ("b", 9) ] (Parse.expr "a - b"))

let test_eval_mod_wraps () =
  let e = Parse.expr "a - b" in
  let v = Eval.eval_mod ~width:4 (assign_of [ ("a", 1); ("b", 2) ]) e in
  checki "-1 mod 16" 15 v

let test_eval_mask () =
  checki "mask 5" 31 (Eval.mask 5);
  Alcotest.check_raises "mask 0" (Invalid_argument "Eval.mask: width out of [1,62]")
    (fun () -> ignore (Eval.mask 0))

let test_vars () =
  let e = Parse.expr "b*a + a - c" in
  check (Alcotest.list Alcotest.string) "sorted vars" [ "a"; "b"; "c" ] (Ast.vars e)

(* ------------------------------------------------------------------ *)
(* Env *)

let test_env_defaults () =
  let env = Env.add_uniform "x" ~width:4 Env.empty in
  checkf "arrival" 0.0 (Env.arrival "x" ~bit:2 env);
  checkf "prob" 0.5 (Env.prob "x" ~bit:0 env)

let test_env_duplicate_ok () =
  (* re-adding replaces (Map semantics) *)
  let env =
    Env.empty |> Env.add_uniform "x" ~width:4 |> Env.add_uniform "x" ~width:7
  in
  checki "width" 7 (Env.width "x" env)

let test_env_validation () =
  Alcotest.check_raises "bad prob" (Invalid_argument "Env.add: prob out of [0,1]")
    (fun () ->
      ignore (Env.add "x" ~width:1 ~prob:[| 1.5 |] Env.empty));
  Alcotest.check_raises "bad width" (Invalid_argument "Env.add: width must be >= 1")
    (fun () -> ignore (Env.add_uniform "x" ~width:0 Env.empty))

let test_env_check_covers () =
  let env = Env.add_uniform "x" ~width:4 Env.empty in
  Alcotest.check_raises "unbound y"
    (Invalid_argument "Env.check_covers: y has no binding") (fun () ->
      Env.check_covers (Parse.expr "x + y") env)

(* ------------------------------------------------------------------ *)
(* Range *)

let test_range_var () =
  let env = Env.add_uniform "x" ~width:4 Env.empty in
  let r = Range.of_expr env (Ast.Var "x") in
  checki "lo" 0 (r : Range.t).lo;
  checki "hi" 15 r.hi

let test_range_sub_negative () =
  let env = Env.of_widths [ ("x", 4); ("y", 4) ] in
  let r = Range.of_expr env (Parse.expr "x - y") in
  checki "lo" (-15) (r : Range.t).lo;
  checki "hi" 15 r.hi;
  checki "two's complement width" 5 (Range.width r)

let test_range_mul () =
  let env = Env.of_widths [ ("x", 3); ("y", 3) ] in
  let r = Range.of_expr env (Parse.expr "x*y") in
  checki "hi" 49 (r : Range.t).hi;
  checki "width" 6 (Range.width r)

let test_range_natural_widths () =
  let env = Env.of_widths [ ("x", 8); ("y", 8) ] in
  checki "x^2+x+y" 16 (Range.natural_width env (Parse.expr "x^2 + x + y"));
  checki "(x+y+1)^2" 18
    (Range.natural_width env (Parse.expr "x^2 + 2*x*y + y^2 + 2*x + 2*y + 1"))

let test_range_const_zero () =
  checki "width of 0" 1 (Range.width (Range.const 0));
  checki "width of -1" 1 (Range.width (Range.const (-1)));
  checki "width of -2" 2 (Range.width (Range.const (-2)))

(* ------------------------------------------------------------------ *)
(* Sop *)

let test_sop_expand_square () =
  let sop = Sop.of_expr (Parse.expr "(x + y)^2") in
  let terms = Sop.terms sop in
  checki "3 terms" 3 (List.length terms);
  checki "xy coeff" 2 (List.assoc [ "x"; "y" ] terms);
  checki "x^2 coeff" 1 (List.assoc [ "x"; "x" ] terms)

let test_sop_cancellation () =
  let sop = Sop.of_expr (Parse.expr "x*y - y*x") in
  checki "cancelled" 0 (Sop.term_count sop)

let test_sop_constant_folding () =
  let sop = Sop.of_expr (Parse.expr "3*7 - 1") in
  checki "constant" 20 (Sop.constant sop);
  checki "single term" 1 (Sop.term_count sop)

let test_sop_eval_matches_ast () =
  List.iter
    (fun s ->
      let e = Parse.expr s in
      let assign = assign_of [ ("x", 5); ("y", 3); ("z", 11) ] in
      checki s (Eval.eval assign e) (Sop.eval assign (Sop.of_expr e)))
    [
      "x + y - z + x*y - y*z + 10";
      "(x - y)*(y - z)*(z - x)";
      "x^3 - 3*x^2 + 3*x - 1";
      "-(x + y)*(x - y) + x^2";
    ]

let test_sop_to_expr_roundtrip () =
  let e = Parse.expr "(x - 2)*(x + 3)" in
  let back = Sop.to_expr (Sop.of_expr e) in
  let assign = assign_of [ ("x", 9) ] in
  checki "same value" (Eval.eval assign e) (Eval.eval assign back)

let test_sop_degree () =
  checki "degree" 4 (Sop.max_degree (Sop.of_expr (Parse.expr "x^2*y^2 + x*y")))

(* ------------------------------------------------------------------ *)
(* Csd *)

let test_csd_values () =
  List.iter
    (fun n -> checki (string_of_int n) n (Csd.value (Csd.recode n)))
    [ 0; 1; -1; 7; -7; 255; 1567; 4096; -4017; 12345; max_int / 4 ]

let test_csd_canonical () =
  List.iter
    (fun n ->
      checkb (string_of_int n) true (Csd.is_canonical (Csd.recode n)))
    [ 3; 7; 11; 23; 255; 1567; -3406; 9999 ]

let test_csd_beats_binary () =
  (* 255 = 2^8 - 2^0: two digits instead of eight *)
  checki "csd 255" 2 (Csd.nonzero_count (Csd.recode 255));
  checki "binary 255" 8 (Csd.nonzero_count (Csd.binary 255))

let test_csd_never_worse () =
  for n = -512 to 512 do
    let csd = Csd.nonzero_count (Csd.recode n) in
    let bin = Csd.nonzero_count (Csd.binary n) in
    if csd > bin then Alcotest.failf "CSD worse than binary at %d" n
  done

let test_binary_values () =
  List.iter
    (fun n -> checki (string_of_int n) n (Csd.value (Csd.binary n)))
    [ 0; 1; -1; 6; -6; 100; -4017 ]

let suite =
  [
    case "parse: variable" test_parse_var;
    case "parse: constant" test_parse_const;
    case "parse: * binds tighter than +" test_parse_precedence;
    case "parse: - is left-associative" test_parse_assoc;
    case "parse: parentheses" test_parse_paren;
    case "parse: power" test_parse_pow;
    case "parse: power binds tighter than *" test_parse_pow_binds_tighter;
    case "parse: unary minus" test_parse_neg;
    case "parse: unary minus under *" test_parse_neg_mul;
    case "parse: whitespace" test_parse_whitespace;
    case "parse: idct row" test_parse_idct;
    case "parse: error on unbalanced paren" test_parse_error_unbalanced;
    case "parse: error on trailing paren" test_parse_error_trailing;
    case "parse: error on empty input" test_parse_error_empty;
    case "parse: error on symbolic exponent" test_parse_error_bad_pow;
    case "parse: error on bad character" test_parse_error_char;
    case "parse: print/parse roundtrip" test_print_parse_roundtrip;
    case "program: inlines bindings" test_program_inlines_bindings;
    case "program: multiple outputs" test_program_multiple_outputs;
    case "program: chained bindings" test_program_chained_bindings;
    case "program: trailing semicolon tolerated or rejected" test_program_trailing_semicolon_rejected;
    case "program: malformed inputs rejected" test_program_errors;
    case "ast: substitution" test_subst;
    case "eval: binomial" test_eval_basic;
    case "eval: negative result" test_eval_neg;
    case "eval: modular wrap-around" test_eval_mod_wraps;
    case "eval: mask" test_eval_mask;
    case "ast: vars sorted" test_vars;
    case "env: defaults" test_env_defaults;
    case "env: rebinding replaces" test_env_duplicate_ok;
    case "env: validation" test_env_validation;
    case "env: check_covers" test_env_check_covers;
    case "range: variable" test_range_var;
    case "range: subtraction goes negative" test_range_sub_negative;
    case "range: multiplication" test_range_mul;
    case "range: natural widths of paper designs" test_range_natural_widths;
    case "range: constants" test_range_const_zero;
    case "sop: (x+y)^2 expands" test_sop_expand_square;
    case "sop: cancellation" test_sop_cancellation;
    case "sop: constant folding" test_sop_constant_folding;
    case "sop: eval matches ast eval" test_sop_eval_matches_ast;
    case "sop: to_expr roundtrip" test_sop_to_expr_roundtrip;
    case "sop: max degree" test_sop_degree;
    case "csd: value reconstruction" test_csd_values;
    case "csd: canonical form" test_csd_canonical;
    case "csd: beats binary on 255" test_csd_beats_binary;
    case "csd: never more digits than binary" test_csd_never_worse;
    case "csd: binary value reconstruction" test_binary_values;
  ]
