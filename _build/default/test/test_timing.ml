open Dp_netlist
open Dp_timing
open Helpers

let build_sample () =
  let n = mk_netlist () in
  let a = (Netlist.add_input n "a" ~width:1 ~arrival:[| 1.0 |] ~prob:[| 0.5 |]).(0) in
  let b = (Netlist.add_input n "b" ~width:1 ~arrival:[| 0.2 |] ~prob:[| 0.5 |]).(0) in
  let c = (Netlist.add_input n "c" ~width:1 ~arrival:[| 3.0 |] ~prob:[| 0.5 |]).(0) in
  let g = Netlist.and_n n [ a; b ] in
  let s, co = Netlist.fa n g c (Netlist.not_ n b) in
  Netlist.set_output n "out" [| s; co |];
  n

let test_sta_agrees_with_builder () =
  checkb "agree" true (Sta.agrees_with_annotation (build_sample ()))

let test_sta_agrees_on_designs () =
  (* the incremental annotation must survive a full design synthesis *)
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
      checkb d.name true (Sta.agrees_with_annotation r.netlist))
    [ Dp_designs.Catalog.x2; Dp_designs.Catalog.iir; Dp_designs.Catalog.complex ]

let test_design_delay () =
  let n = build_sample () in
  let t = Dp_tech.Tech.lcb_like in
  (* critical: c@3.0 -> FA sum *)
  checkf "delay" (3.0 +. t.fa_sum_delay) (Sta.design_delay n)

let test_critical_endpoint () =
  let n = build_sample () in
  let e = Sta.critical_endpoint n in
  checki "bit 0 (sum)" 0 e.bit;
  checkb "output name" true (String.equal e.output "out")

let test_critical_path_monotone () =
  let n = build_sample () in
  let path = Sta.critical_path n in
  let arrivals = List.map (Netlist.arrival n) path in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | [ _ ] | [] -> true
  in
  checkb "non-decreasing along path" true (monotone arrivals);
  (* the path starts at the latest input, c *)
  match path with
  | first :: _ -> checkf "starts at 3.0" 3.0 (Netlist.arrival n first)
  | [] -> Alcotest.fail "empty path"

let test_endpoints_cover_outputs () =
  let n = build_sample () in
  checki "two endpoints" 2 (List.length (Sta.endpoints n))

let test_no_outputs_raises () =
  let n = mk_netlist () in
  Alcotest.check_raises "no outputs"
    (Invalid_argument "Sta.critical_endpoint: netlist has no outputs") (fun () ->
      ignore (Sta.critical_endpoint n))

let suite =
  [
    case "recomputed arrivals match builder annotation" test_sta_agrees_with_builder;
    case "annotation survives full design synthesis" test_sta_agrees_on_designs;
    case "design delay" test_design_delay;
    case "critical endpoint" test_critical_endpoint;
    case "critical path is monotone and starts late" test_critical_path_monotone;
    case "endpoints cover all output bits" test_endpoints_cover_outputs;
    case "no outputs raises" test_no_outputs_raises;
  ]
