open Dp_tech
open Helpers

let test_cell_arity () =
  checki "fa" 3 (Cell_kind.arity Cell_kind.Fa);
  checki "ha" 2 (Cell_kind.arity Cell_kind.Ha);
  checki "and5" 5 (Cell_kind.arity (Cell_kind.And_n 5));
  checki "not" 1 (Cell_kind.arity Cell_kind.Not)

let test_cell_outputs () =
  checki "fa" 2 (Cell_kind.output_count Cell_kind.Fa);
  checki "xor" 1 (Cell_kind.output_count (Cell_kind.Xor_n 2))

let test_cell_equal () =
  checkb "fa=fa" true (Cell_kind.equal Cell_kind.Fa Cell_kind.Fa);
  checkb "and2<>and3" false
    (Cell_kind.equal (Cell_kind.And_n 2) (Cell_kind.And_n 3));
  checkb "fa<>ha" false (Cell_kind.equal Cell_kind.Fa Cell_kind.Ha)

let test_fa_delays () =
  let t = Tech.lcb_like in
  checkf "Ds" t.fa_sum_delay (Tech.delay t Cell_kind.Fa ~port:0);
  checkf "Dc" t.fa_carry_delay (Tech.delay t Cell_kind.Fa ~port:1);
  checkb "Dc < Ds" true (t.fa_carry_delay < t.fa_sum_delay)

let test_unit_delay_matches_fig2 () =
  let t = Tech.unit_delay in
  checkf "Ds=2" 2.0 (Tech.delay t Cell_kind.Fa ~port:0);
  checkf "Dc=1" 1.0 (Tech.delay t Cell_kind.Fa ~port:1)

let test_nary_gate_delay_is_log_depth () =
  let t = Tech.lcb_like in
  let d n = Tech.delay t (Cell_kind.And_n n) ~port:0 in
  checkf "and2: 1 level" t.and2_delay (d 2);
  checkf "and4: 2 levels" (2.0 *. t.and2_delay) (d 4);
  checkf "and5: 3 levels" (3.0 *. t.and2_delay) (d 5);
  checkf "and8: 3 levels" (3.0 *. t.and2_delay) (d 8)

let test_nary_gate_area_is_linear () =
  let t = Tech.lcb_like in
  checkf "and4 = 3 and2" (3.0 *. t.and2_area) (Tech.area t (Cell_kind.And_n 4))

let test_bad_port_raises () =
  Alcotest.check_raises "not port 1" (Invalid_argument "Tech.delay: bad output port")
    (fun () -> ignore (Tech.delay Tech.lcb_like Cell_kind.Not ~port:1));
  Alcotest.check_raises "energy port 2"
    (Invalid_argument "Tech.energy: bad output port") (fun () ->
      ignore (Tech.energy Tech.lcb_like Cell_kind.Fa ~port:2))

let test_energy_weights () =
  let t = Tech.lcb_like in
  checkf "Ws" t.fa_sum_energy (Tech.energy t Cell_kind.Fa ~port:0);
  checkf "Wc" t.fa_carry_energy (Tech.energy t Cell_kind.Fa ~port:1);
  (* Property 1's precondition 2*sqrt(Ws) >= sqrt(Wc) holds for the default
     technology *)
  checkb "2 sqrt Ws >= sqrt Wc" true
    (2.0 *. sqrt t.fa_sum_energy >= sqrt t.fa_carry_energy)

let test_tech_file_roundtrip () =
  let t = Tech.lcb_like in
  let t' = Tech_file.of_string (Tech_file.to_string t) in
  checkb "roundtrip" true (t = t')

let test_tech_file_overrides () =
  let t = Tech_file.of_string "fa_sum_delay 9.5\nname custom\n" in
  checkf "override" 9.5 t.fa_sum_delay;
  checkb "name" true (String.equal t.name "custom");
  (* untouched keys inherit the base *)
  checkf "inherited" Tech.lcb_like.fa_carry_delay t.fa_carry_delay

let test_tech_file_comments_and_blanks () =
  let t = Tech_file.of_string "# a comment\n\nfa_area 99 # trailing\n" in
  checkf "fa_area" 99.0 t.fa_area

let test_tech_file_errors () =
  List.iter
    (fun bad ->
      match Tech_file.of_string bad with
      | (_ : Tech.t) -> Alcotest.failf "accepted %S" bad
      | exception Tech_file.Parse_error _ -> ())
    [
      "bogus_key 1.0";
      "fa_sum_delay notanumber";
      "fa_sum_delay";
      "fa_area -3";
    ]

let test_tech_file_custom_base () =
  let t = Tech_file.of_string ~base:Tech.unit_delay "fa_area 7\n" in
  checkf "base Ds" 2.0 t.fa_sum_delay;
  checkf "override" 7.0 t.fa_area

let suite =
  [
    case "cell arity" test_cell_arity;
    case "cell output counts" test_cell_outputs;
    case "cell equality" test_cell_equal;
    case "FA delays (Ds, Dc)" test_fa_delays;
    case "unit_delay matches Fig. 2 (Ds=2, Dc=1)" test_unit_delay_matches_fig2;
    case "n-ary gate delay is tree depth" test_nary_gate_delay_is_log_depth;
    case "n-ary gate area is linear" test_nary_gate_area_is_linear;
    case "bad output ports raise" test_bad_port_raises;
    case "energy weights satisfy Property 1 precondition" test_energy_weights;
    case "tech file: roundtrip" test_tech_file_roundtrip;
    case "tech file: overrides + inheritance" test_tech_file_overrides;
    case "tech file: comments and blanks" test_tech_file_comments_and_blanks;
    case "tech file: malformed inputs rejected" test_tech_file_errors;
    case "tech file: custom base" test_tech_file_custom_base;
  ]
