open Dp_netlist
open Dp_pipeline.Pipeline
open Helpers

let fa_chain ?(tech = Dp_tech.Tech.lcb_like) length =
  (* a deliberately serial chain: FA_i's sum feeds FA_{i+1} *)
  let n = mk_netlist ~tech () in
  let a = Netlist.add_input n "a" ~width:length in
  let b = Netlist.add_input n "b" ~width:length in
  let acc = ref a.(0) in
  for i = 1 to length - 1 do
    let s, _c = Netlist.fa n !acc a.(i) b.(i) in
    acc := s
  done;
  Netlist.set_output n "out" [| !acc |];
  n

let test_min_cycle_time () =
  let n = fa_chain 4 in
  checkf "slowest cell = Ds" Dp_tech.Tech.lcb_like.fa_sum_delay (min_cycle_time n)

let test_combinational_when_cycle_large () =
  let n = fa_chain 5 in
  let p = plan n ~cycle_time:1000.0 in
  checki "one stage" 1 p.latency;
  checki "no registers" 0 p.register_bits

let test_stages_respect_cycle_time () =
  let n = fa_chain 9 in
  let t = Dp_tech.Tech.lcb_like.fa_sum_delay +. 0.01 in
  let p = plan n ~cycle_time:t in
  (* one FA per stage: 8 FAs -> 8 stages *)
  checki "eight stages" 8 p.latency;
  Array.iter
    (fun d -> checkb "stage fits" true (d <= t +. 1e-9))
    p.stage_delay;
  Array.iteri
    (fun net local ->
      checkb
        (Printf.sprintf "net %d local %.3f within cycle" net local)
        true
        (local <= t +. 1e-9))
    p.local_arrival

let test_stage_monotone_along_edges () =
  let d = Dp_designs.Catalog.kalman in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let p = plan r.netlist ~cycle_time:2.0 in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets r.netlist id in
      Array.iter
        (fun out ->
          Array.iter
            (fun input ->
              if p.stage_of_net.(input) > p.stage_of_net.(out) then
                Alcotest.failf "edge goes backwards in time (net %d -> %d)"
                  input out)
            c.inputs)
        outs)
    r.netlist

let test_latency_monotone_in_cycle_time () =
  let d = Dp_designs.Catalog.idct in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let latencies =
    List.map (fun t -> (plan r.netlist ~cycle_time:t).latency) [ 1.0; 2.0; 4.0; 16.0 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | [ _ ] | [] -> true
  in
  checkb "latency shrinks with slower clocks" true (non_increasing latencies);
  checki "fits in one cycle eventually" 1 (List.nth latencies 3)

let test_balanced_tree_needs_fewer_registers () =
  (* at the same cycle time a balanced FA_AOT tree pipelines more cheaply
     than the conventional operator chain *)
  let d = Dp_designs.Catalog.fir8 in
  let cost strategy =
    let r = Dp_flow.Synth.run strategy d.env d.expr ~width:d.width in
    (plan r.netlist ~cycle_time:2.5).register_bits
  in
  let aot = cost Dp_flow.Strategy.Fa_aot in
  let conv = cost Dp_flow.Strategy.Conventional in
  checkb
    (Printf.sprintf "AOT %d <= Conventional %d register bits" aot conv)
    true (aot <= conv)

let test_bad_cycle_time_rejected () =
  let n = fa_chain 3 in
  checkb "too small" true
    (match plan n ~cycle_time:0.1 with
    | (_ : plan) -> false
    | exception Invalid_argument _ -> true);
  checkb "non-positive" true
    (match plan n ~cycle_time:0.0 with
    | (_ : plan) -> false
    | exception Invalid_argument _ -> true)

let test_late_inputs_start_in_later_stages () =
  let n = mk_netlist () in
  let late = (Netlist.add_input n "late" ~width:1 ~arrival:[| 5.0 |]).(0) in
  let early = (Netlist.add_input n "early" ~width:1).(0) in
  let s, _ = Netlist.ha n late early in
  Netlist.set_output n "out" [| s |];
  let p = plan n ~cycle_time:2.0 in
  checki "late input in stage 2" 2 p.stage_of_net.(late);
  checkb "sum no earlier than its operand" true
    (p.stage_of_net.(s) >= 2)

let suite =
  [
    case "min cycle time = slowest cell" test_min_cycle_time;
    case "large cycle: combinational, zero registers"
      test_combinational_when_cycle_large;
    case "tight cycle: one FA per stage" test_stages_respect_cycle_time;
    case "stages monotone along edges" test_stage_monotone_along_edges;
    case "latency monotone in cycle time" test_latency_monotone_in_cycle_time;
    case "balanced trees pipeline cheaper" test_balanced_tree_needs_fewer_registers;
    case "bad cycle times rejected" test_bad_cycle_time_rejected;
    case "late inputs start in later stages" test_late_inputs_start_in_later_stages;
  ]
