open Dp_expr
open Dp_flow
open Helpers

let complex_ports =
  [
    { Synth.name = "re"; expr = Parse.expr "a*c - b*d"; width = 9 };
    { Synth.name = "im"; expr = Parse.expr "a*d + b*c"; width = 9 };
  ]

let complex_env = Env.of_widths [ ("a", 4); ("b", 4); ("c", 4); ("d", 4) ]

let test_multi_equivalent_all_strategies () =
  List.iter
    (fun strategy ->
      let r = Synth.run_multi strategy complex_env complex_ports in
      match Synth.verify_multi ~trials:80 r with
      | Ok () -> ()
      | Error (port, m) ->
        Alcotest.failf "%s port %s: %a" (Strategy.name strategy) port
          Dp_sim.Equiv.pp_mismatch m)
    [
      Strategy.Fa_aot; Strategy.Fa_alp; Strategy.Wallace; Strategy.Csa_opt;
      Strategy.Conventional;
    ]

let test_multi_declares_inputs_once () =
  let r = Synth.run_multi Strategy.Fa_aot complex_env complex_ports in
  checki "4 input buses" 4 (List.length (Dp_netlist.Netlist.inputs r.netlist));
  checki "2 output buses" 2 (List.length (Dp_netlist.Netlist.outputs r.netlist))

let test_multi_shares_partial_products () =
  (* x^2 and x^3 share every x_i & x_j gate; the joint netlist must be
     smaller than the sum of the two separate ones *)
  let env = Env.of_widths [ ("x", 4) ] in
  let p2 = { Synth.name = "sq"; expr = Parse.expr "x^2"; width = 8 } in
  let p3 = { Synth.name = "cube"; expr = Parse.expr "x^3"; width = 12 } in
  let joint = Synth.run_multi Strategy.Fa_aot env [ p2; p3 ] in
  let solo_cells strategy p =
    let r = Synth.run strategy env p.Synth.expr ~width:p.Synth.width in
    r.stats.cells
  in
  let separate =
    solo_cells Strategy.Fa_aot p2 + solo_cells Strategy.Fa_aot p3
  in
  checkb
    (Printf.sprintf "joint %d < separate %d" joint.stats.cells separate)
    true
    (joint.stats.cells < separate);
  (* and both ports still compute their functions *)
  checkb "verified" true (Synth.verify_multi joint = Ok ())

let test_multi_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Synth.run_multi: no outputs")
    (fun () -> ignore (Synth.run_multi Strategy.Fa_aot Env.empty []))

let test_multi_conflicting_width_rejected () =
  (* same variable declared at different widths across ports' envs is
     caught when the second lowering reuses the bus *)
  let env4 = Env.of_widths [ ("x", 4) ] in
  let netlist = mk_netlist () in
  ignore (Dp_bitmatrix.Lower.lower netlist env4 (Parse.expr "x") ~width:4);
  let env5 = Env.of_widths [ ("x", 5) ] in
  Alcotest.check_raises "width clash"
    (Invalid_argument "Lower.declare_inputs: x redeclared at a different width")
    (fun () ->
      ignore (Dp_bitmatrix.Lower.lower netlist env5 (Parse.expr "x") ~width:5))

let test_multi_verilog_two_outputs () =
  let r = Synth.run_multi Strategy.Fa_aot complex_env complex_ports in
  let v = Dp_netlist.Verilog.emit ~module_name:"cmul" r.netlist in
  let contains needle =
    let nl = String.length needle and hl = String.length v in
    let rec go i = i + nl <= hl && (String.sub v i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "re port" true (contains "output [8:0] re;");
  checkb "im port" true (contains "output [8:0] im;")

let suite =
  [
    case "complex multiplier: both ports equivalent (all strategies)"
      test_multi_equivalent_all_strategies;
    case "inputs declared once" test_multi_declares_inputs_once;
    case "x^2/x^3 share partial products" test_multi_shares_partial_products;
    case "empty port list rejected" test_multi_empty_rejected;
    case "conflicting input width rejected" test_multi_conflicting_width_rejected;
    case "verilog with two output buses" test_multi_verilog_two_outputs;
  ]
