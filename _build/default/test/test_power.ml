open Dp_netlist
open Dp_power
open Helpers

(* Exact probability of a net by weighted truth-table enumeration — valid
   reference for ANY circuit (handles reconvergence exactly). *)
let exact_probs netlist =
  let inputs = Netlist.inputs netlist in
  let names = List.map fst inputs in
  let widths = List.map (fun (_, nets) -> Array.length nets) inputs in
  let total_bits = List.fold_left ( + ) 0 widths in
  assert (total_bits <= 16);
  let n = Netlist.net_count netlist in
  let acc = Array.make n 0.0 in
  for code = 0 to (1 lsl total_bits) - 1 do
    (* split the code across inputs and compute this assignment's weight *)
    let rec split code = function
      | [] -> []
      | (name, w) :: rest ->
        (name, code land Dp_expr.Eval.mask w) :: split (code lsr w) rest
    in
    let alist = split code (List.combine names widths) in
    let weight = ref 1.0 in
    List.iter
      (fun (name, nets) ->
        let v = List.assoc name alist in
        Array.iteri
          (fun bit net ->
            let p = Netlist.prob netlist net in
            weight := !weight *. (if (v lsr bit) land 1 = 1 then p else 1.0 -. p))
          nets)
      inputs;
    let values = Dp_sim.Simulator.run netlist ~assign:(assign_of alist) in
    for net = 0 to n - 1 do
      if values.(net) then acc.(net) <- acc.(net) +. !weight
    done
  done;
  acc

let test_prob_agrees_with_builder () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:4 ~prob:[| 0.1; 0.9; 0.4; 0.7 |] in
  let s, c = Netlist.fa n bits.(0) bits.(1) bits.(2) in
  let s2, c2 = Netlist.ha n s bits.(3) in
  Netlist.set_output n "o" [| s2; c2; c |];
  checkb "agree" true (Prob.agrees_with_annotation n)

let test_prob_exact_on_tree () =
  (* a fanout-free tree: propagation is exact, so it must match the
     truth-table reference *)
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:6 ~prob:[| 0.1; 0.9; 0.4; 0.7; 0.3; 0.55 |] in
  let g1 = Netlist.and_n n [ bits.(0); bits.(1) ] in
  let g2 = Netlist.or_n n [ bits.(2); bits.(3) ] in
  let s, c = Netlist.fa n g1 g2 (Netlist.xor2 n bits.(4) bits.(5)) in
  Netlist.set_output n "o" [| s; c |];
  let exact = exact_probs n in
  let propagated = Prob.probabilities n in
  Array.iteri
    (fun net e ->
      if Float.abs (e -. propagated.(net)) > 1e-9 then
        Alcotest.failf "net %d: exact %.6f propagated %.6f" net e propagated.(net))
    exact

let test_fa_q_formulas_exact () =
  (* the FA q-algebra matches truth-table enumeration on independent bits *)
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:3 ~prob:[| 0.15; 0.6; 0.85 |] in
  let s, c = Netlist.fa n bits.(0) bits.(1) bits.(2) in
  Netlist.set_output n "o" [| s; c |];
  let exact = exact_probs n in
  checkf "sum" exact.(s) (Netlist.prob n s);
  checkf "carry" exact.(c) (Netlist.prob n c)

let test_activity () =
  checkf "max at 0.5" 0.25 (Switching.activity 0.5);
  checkf "zero at 1" 0.0 (Switching.activity 1.0);
  checkf "symmetric" (Switching.activity 0.3) (Switching.activity 0.7)

let test_tree_switching_counts_fa_ha_only () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:3 ~prob:[| 0.4; 0.5; 0.6 |] in
  let g = Netlist.and_n n [ bits.(0); bits.(1) ] in
  let s, c = Netlist.ha n g bits.(2) in
  Netlist.set_output n "o" [| s; c |];
  let t = Dp_tech.Tech.lcb_like in
  let expected =
    (t.ha_sum_energy *. Switching.activity (Netlist.prob n s))
    +. (t.ha_carry_energy *. Switching.activity (Netlist.prob n c))
  in
  checkf "tree switching" expected (Switching.tree_switching n);
  checkb "total includes the AND" true
    (Switching.total_switching n > Switching.tree_switching n)

let test_monte_carlo_consistency () =
  (* measured toggle rate must be ~ 2 p(1-p) of the measured probability:
     vectors are temporally independent by construction *)
  let d = Dp_designs.Catalog.x2 in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_alp d.env d.expr ~width:d.width in
  let vectors = 4000 in
  let rates = Dp_sim.Monte_carlo.toggle_rates ~vectors r.netlist in
  let probs = Dp_sim.Monte_carlo.measured_prob ~vectors r.netlist in
  Array.iteri
    (fun net rate ->
      let expected = 2.0 *. probs.(net) *. (1.0 -. probs.(net)) in
      if Float.abs (rate -. expected) > 0.06 then
        Alcotest.failf "net %d: rate %.3f vs 2p(1-p) %.3f" net rate expected)
    rates.toggle_rate

let test_monte_carlo_matches_analytic_on_tree () =
  (* on a fanout-free circuit the analytic model is exact, so simulation
     must converge to it *)
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:4 ~prob:[| 0.2; 0.7; 0.4; 0.9 |] in
  let s, c = Netlist.fa n bits.(0) bits.(1) bits.(2) in
  let s2, c2 = Netlist.ha n s bits.(3) in
  ignore c2;
  Netlist.set_output n "o" [| s2; c |];
  let probs = Dp_sim.Monte_carlo.measured_prob ~vectors:20000 n in
  checkf_eps 0.02 "sum prob" (Netlist.prob n s2) probs.(s2);
  checkf_eps 0.02 "carry prob" (Netlist.prob n c) probs.(c)

let test_monte_carlo_switching_tracks_analytic () =
  (* x^3 allocates real FAs; measured energy sums over all cell outputs, so
     compare against total_switching.  Reconvergent fanout makes the
     analytic value approximate — allow 30%. *)
  let d = Dp_designs.Catalog.x3 in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_alp d.env d.expr ~width:d.width in
  let rates = Dp_sim.Monte_carlo.toggle_rates ~vectors:6000 r.netlist in
  let measured = Dp_sim.Monte_carlo.switching_energy r.netlist rates.toggle_rate in
  let analytic = r.total_switching in
  checkb
    (Printf.sprintf "measured %.3f vs analytic %.3f" measured analytic)
    true
    (Float.abs (measured -. analytic) /. analytic < 0.30)

let test_monte_carlo_validation () =
  Alcotest.check_raises "needs 2 vectors"
    (Invalid_argument "Monte_carlo.toggle_rates: need >= 2 vectors") (fun () ->
      ignore (Dp_sim.Monte_carlo.toggle_rates ~vectors:1 (mk_netlist ())))

let suite =
  [
    case "propagation agrees with builder annotation" test_prob_agrees_with_builder;
    case "propagation exact on fanout-free trees" test_prob_exact_on_tree;
    case "FA q-formulas match truth tables" test_fa_q_formulas_exact;
    case "activity p(1-p)" test_activity;
    case "tree switching counts FA/HA only" test_tree_switching_counts_fa_ha_only;
    case "monte carlo: toggle rate = 2p(1-p)" test_monte_carlo_consistency;
    case "monte carlo: converges to analytic on trees" test_monte_carlo_matches_analytic_on_tree;
    case "monte carlo: switching tracks analytic" test_monte_carlo_switching_tracks_analytic;
    case "monte carlo: input validation" test_monte_carlo_validation;
  ]
