open Dp_netlist
open Helpers

let two_inputs ?(tech = Dp_tech.Tech.lcb_like) () =
  let n = mk_netlist ~tech () in
  let a = (Netlist.add_input n "a" ~width:1 ~arrival:[| 1.0 |] ~prob:[| 0.3 |]).(0) in
  let b = (Netlist.add_input n "b" ~width:1 ~arrival:[| 2.0 |] ~prob:[| 0.8 |]).(0) in
  n, a, b

let test_input_annotation () =
  let n, a, b = two_inputs () in
  checkf "arrival a" 1.0 (Netlist.arrival n a);
  checkf "prob b" 0.8 (Netlist.prob n b);
  checkf "q b" 0.3 (Netlist.q n b)

let test_duplicate_input_raises () =
  let n, _, _ = two_inputs () in
  Alcotest.check_raises "dup" (Invalid_argument "Netlist.add_input: duplicate input a")
    (fun () -> ignore (Netlist.add_input n "a" ~width:2))

let test_const_cached () =
  let n = mk_netlist () in
  checki "same net" (Netlist.const n true) (Netlist.const n true);
  checkb "distinct" true (Netlist.const n true <> Netlist.const n false);
  checkf "prob of 1" 1.0 (Netlist.prob n (Netlist.const n true))

let test_and_prob_and_arrival () =
  let n, a, b = two_inputs () in
  let g = Netlist.and_n n [ a; b ] in
  checkf "p = 0.24" 0.24 (Netlist.prob n g);
  checkf "arrival = 2 + and2" (2.0 +. Dp_tech.Tech.lcb_like.and2_delay)
    (Netlist.arrival n g)

let test_and_structural_hashing () =
  let n, a, b = two_inputs () in
  checki "same gate" (Netlist.and_n n [ a; b ]) (Netlist.and_n n [ b; a ]);
  checki "one cell" 1 (Netlist.cell_count n)

let test_and_simplifications () =
  let n, a, b = two_inputs () in
  checki "x&x = x" a (Netlist.and_n n [ a; a ]);
  checki "x&1 = x" a (Netlist.and_n n [ a; Netlist.const n true ]);
  checki "absorbing 0" (Netlist.const n false)
    (Netlist.and_n n [ a; b; Netlist.const n false ]);
  checki "empty = 1" (Netlist.const n true) (Netlist.and_n n [])

let test_or_simplifications () =
  let n, a, _ = two_inputs () in
  checki "x|0 = x" a (Netlist.or_n n [ a; Netlist.const n false ]);
  checki "absorbing 1" (Netlist.const n true)
    (Netlist.or_n n [ a; Netlist.const n true ])

let test_or_prob () =
  let n, a, b = two_inputs () in
  checkf "p = 1-(0.7*0.2)" 0.86 (Netlist.prob n (Netlist.or_n n [ a; b ]))

let test_not_simplifications () =
  let n, a, _ = two_inputs () in
  let na = Netlist.not_ n a in
  checkf "p = 0.7" 0.7 (Netlist.prob n na);
  checki "double negation" a (Netlist.not_ n na);
  checki "cached" na (Netlist.not_ n a);
  checki "not 1 = 0" (Netlist.const n false) (Netlist.not_ n (Netlist.const n true))

let test_xor_simplifications () =
  let n, a, b = two_inputs () in
  checki "x^0 = x" a (Netlist.xor2 n a (Netlist.const n false));
  checki "x^x = 0" (Netlist.const n false) (Netlist.xor2 n a a);
  let nb = Netlist.xor2 n b (Netlist.const n true) in
  checkf "x^1 = not x" (1.0 -. 0.8) (Netlist.prob n nb);
  checkf "xor prob" (0.3 +. 0.8 -. (2.0 *. 0.3 *. 0.8))
    (Netlist.prob n (Netlist.xor2 n a b))

let test_fa_probability_formulas () =
  let n = mk_netlist () in
  let bits =
    Netlist.add_input n "v" ~width:3 ~prob:[| 0.1; 0.2; 0.3 |]
      ~arrival:[| 0.0; 0.0; 0.0 |]
  in
  let s, c = Netlist.fa n bits.(0) bits.(1) bits.(2) in
  (* q = -0.4, -0.3, -0.2: q(s) = 4*(-0.4)(-0.3)(-0.2) = -0.096;
     q(c) = 0.5*(-0.9) - 2*(-0.024) = -0.402 *)
  checkf "p(s)" (0.5 -. 0.096) (Netlist.prob n s);
  checkf "p(c)" (0.5 -. 0.402) (Netlist.prob n c)

let test_fa_exhaustive_function () =
  (* the FA computes sum/carry of its 3 inputs for all 8 combinations *)
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:3 in
  let s, c = Netlist.fa n bits.(0) bits.(1) bits.(2) in
  Netlist.set_output n "s" [| s |];
  Netlist.set_output n "c" [| c |];
  for v = 0 to 7 do
    let values = Dp_sim.Simulator.run n ~assign:(fun _ -> v) in
    let ones = (v land 1) + ((v lsr 1) land 1) + ((v lsr 2) land 1) in
    checki "sum" (ones land 1) (Dp_sim.Simulator.output_value n values "s");
    checki "carry" (ones lsr 1) (Dp_sim.Simulator.output_value n values "c")
  done

let test_fa_arrival () =
  let n, a, b = two_inputs () in
  let c = (Netlist.add_input n "c" ~width:1 ~arrival:[| 5.0 |] ~prob:[| 0.5 |]).(0) in
  let s, co = Netlist.fa n a b c in
  let t = Dp_tech.Tech.lcb_like in
  checkf "sum arrival" (5.0 +. t.fa_sum_delay) (Netlist.arrival n s);
  checkf "carry arrival" (5.0 +. t.fa_carry_delay) (Netlist.arrival n co)

let test_fa_const_degrades_to_ha () =
  let n, a, b = two_inputs () in
  let before = Netlist.cell_count n in
  let _s, _c = Netlist.fa n a b (Netlist.const n false) in
  checki "one cell" (before + 1) (Netlist.cell_count n);
  let cell = Netlist.cell n before in
  checkb "it is an HA" true (Dp_tech.Cell_kind.equal cell.kind Dp_tech.Cell_kind.Ha)

let test_fa_const1_degrades_to_gates () =
  let n, a, b = two_inputs () in
  let s, c = Netlist.fa n a b (Netlist.const n true) in
  (* s = ~(a^b), c = a|b: check by simulation over the 4 input combos *)
  Netlist.set_output n "s" [| s |];
  Netlist.set_output n "c" [| c |];
  List.iter
    (fun (va, vb) ->
      let assign name = if name = "a" then va else vb in
      let values = Dp_sim.Simulator.run n ~assign in
      let total = va + vb + 1 in
      checki "s" (total land 1) (Dp_sim.Simulator.output_value n values "s");
      checki "c" (total lsr 1) (Dp_sim.Simulator.output_value n values "c"))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_ha_const_cases () =
  let n, a, _ = two_inputs () in
  let s, c = Netlist.ha n a (Netlist.const n false) in
  checki "ha(x,0) sum" a s;
  checki "ha(x,0) carry" (Netlist.const n false) c;
  let s1, c1 = Netlist.ha n a (Netlist.const n true) in
  checki "ha(x,1) carry = x" a c1;
  checkf "ha(x,1) sum = ~x" 0.7 (Netlist.prob n s1)

let test_ha_probability () =
  let n, a, b = two_inputs () in
  let s, c = Netlist.ha n a b in
  (* p(s) = pa(1-pb)+(1-pa)pb = 0.3*0.2 + 0.7*0.8 = 0.62; p(c) = 0.24 *)
  checkf "p(s)" 0.62 (Netlist.prob n s);
  checkf "p(c)" 0.24 (Netlist.prob n c)

let test_outputs_api () =
  let n, a, b = two_inputs () in
  Netlist.set_output n "o" [| a; b |];
  checki "width" 2 (Array.length (Netlist.find_output n "o"));
  Alcotest.check_raises "dup output"
    (Invalid_argument "Netlist.set_output: duplicate output o") (fun () ->
      Netlist.set_output n "o" [| a |]);
  Alcotest.check_raises "missing output"
    (Invalid_argument "Netlist.find_output: no output zzz") (fun () ->
      ignore (Netlist.find_output n "zzz"))

let test_area_accumulates () =
  let n, a, b = two_inputs () in
  let t = Dp_tech.Tech.lcb_like in
  ignore (Netlist.and_n n [ a; b ]);
  ignore (Netlist.fa n a b (Netlist.not_ n a));
  checkf "area" (t.and2_area +. t.fa_area +. t.not_area) (Netlist.area n)

(* ------------------------------------------------------------------ *)
(* Topo / Stats *)

let small_tree () =
  let n, a, b = two_inputs () in
  let g = Netlist.and_n n [ a; b ] in
  let s, c = Netlist.fa n a b g in
  Netlist.set_output n "out" [| s; c |];
  n

let test_topo_check () = checkb "topo ok" true (Topo.check (small_tree ()))

let test_topo_levels () =
  let n = small_tree () in
  let levels = Topo.levels n in
  let out = Netlist.find_output n "out" in
  checki "fa after and" 2 levels.(out.(0));
  checki "depth" 2 (Topo.depth n)

let test_critical_path_endpoints () =
  let n = small_tree () in
  let out = Netlist.find_output n "out" in
  let path = Topo.critical_path n ~from:out.(0) in
  checkb "nonempty" true (List.length path >= 2);
  (* path is source-first and ends at the requested net *)
  checki "ends at output" out.(0) (List.nth path (List.length path - 1))

let test_stats () =
  let n = small_tree () in
  let s = Stats.of_netlist n in
  checki "cells" 2 s.cells;
  checki "fa" 1 s.fa_count;
  checki "gates" 1 s.gate_count;
  checkb "delay positive" true (s.delay > 0.0)

let test_kind_counts () =
  let n = small_tree () in
  let counts = Stats.kind_counts n in
  checki "two kinds" 2 (List.length counts)

(* ------------------------------------------------------------------ *)
(* Verilog / Dot emitters *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_verilog_structure () =
  let n = small_tree () in
  let v = Verilog.emit ~module_name:"tree" n in
  List.iter
    (fun needle -> checkb needle true (contains ~needle v))
    [
      "module tree (a, b, out);";
      "input [0:0] a;";
      "output [1:0] out;";
      "DP_FA";
      "module DP_FA";
      "endmodule";
      "assign out[0]";
    ]

let test_verilog_no_unused_submodules () =
  let n, a, b = two_inputs () in
  Netlist.set_output n "o" [| Netlist.and_n n [ a; b ] |];
  let v = Verilog.emit n in
  checkb "no DP_FA" false (contains ~needle:"DP_FA" v);
  checkb "no DP_HA" false (contains ~needle:"DP_HA" v)

let test_verilog_constants_declared_when_used () =
  let n, a, _ = two_inputs () in
  Netlist.set_output n "o" [| a; Netlist.const n false |];
  let v = Verilog.emit n in
  checkb "const0 wire" true (contains ~needle:"assign const0 = 1'b0;" v)

let test_dot_structure () =
  let n = small_tree () in
  let d = Dot.emit n in
  checkb "digraph" true (contains ~needle:"digraph netlist {" d);
  checkb "fa box" true (contains ~needle:"label=\"FA\"" d);
  checkb "closed" true (contains ~needle:"}" d)

let suite =
  [
    case "input annotation" test_input_annotation;
    case "duplicate input raises" test_duplicate_input_raises;
    case "constants are cached" test_const_cached;
    case "AND: probability and arrival" test_and_prob_and_arrival;
    case "AND: structural hashing" test_and_structural_hashing;
    case "AND: simplifications" test_and_simplifications;
    case "OR: simplifications" test_or_simplifications;
    case "OR: probability" test_or_prob;
    case "NOT: simplifications and caching" test_not_simplifications;
    case "XOR: simplifications and probability" test_xor_simplifications;
    case "FA: paper probability formulas" test_fa_probability_formulas;
    case "FA: exhaustive truth table" test_fa_exhaustive_function;
    case "FA: arrival = max input + Ds/Dc" test_fa_arrival;
    case "FA with constant 0 degrades to HA" test_fa_const_degrades_to_ha;
    case "FA with constant 1 degrades to gates" test_fa_const1_degrades_to_gates;
    case "HA: constant cases" test_ha_const_cases;
    case "HA: probability" test_ha_probability;
    case "outputs API" test_outputs_api;
    case "area accumulates" test_area_accumulates;
    case "topo: creation order is topological" test_topo_check;
    case "topo: levels" test_topo_levels;
    case "topo: critical path endpoints" test_critical_path_endpoints;
    case "stats summary" test_stats;
    case "stats kind counts" test_kind_counts;
    case "verilog: structure" test_verilog_structure;
    case "verilog: unused submodules omitted" test_verilog_no_unused_submodules;
    case "verilog: constants declared when used" test_verilog_constants_declared_when_used;
    case "dot: structure" test_dot_structure;
  ]
