(* Property-based tests (qcheck, registered as alcotest cases).  The
   central generator produces random expressions over a small environment;
   the central property is that every synthesis strategy produces a netlist
   equivalent to the expression mod 2^W. *)

open Dp_expr
open Helpers

let vars_pool = [ ("a", 3); ("b", 2); ("c", 3) ]

let gen_expr =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun (v, _) -> Ast.Var v) (oneofl vars_pool);
            map Ast.const (int_range (-12) 12);
          ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map (fun (v, _) -> Ast.Var v) (oneofl vars_pool);
            map Ast.const (int_range (-12) 12);
            map2 (fun a b -> Ast.Add (a, b)) sub sub;
            map2 (fun a b -> Ast.Sub (a, b)) sub sub;
            map2 (fun a b -> Ast.Mul (a, b)) sub sub;
            map (fun a -> Ast.Neg a) sub;
            map (fun a -> Ast.Pow (a, 2)) sub;
          ])

let small_expr = QCheck2.Gen.(map (fun e -> e) (gen_expr |> map (fun e -> e)))

let env = Env.of_widths vars_pool

let print_expr = Ast.to_string

let total_input_bits e =
  List.fold_left
    (fun acc v -> acc + List.assoc v vars_pool)
    0 (Ast.vars e)

(* keep expressions whose SOP stays small so lowering is fast *)
let tractable e =
  match Sop.of_expr e with
  | sop -> Sop.term_count sop <= 40 && Sop.max_degree sop <= 6
  | exception _ -> false

let mk_prop name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:60 ~print:print_expr gen prop)

let equivalence_property strategy e =
  QCheck2.assume (tractable e);
  let width =
    let natural = Range.natural_width env e in
    min natural 20
  in
  let r = Dp_flow.Synth.run strategy env e ~width in
  let ok =
    if total_input_bits e <= 8 then
      Dp_sim.Equiv.check_exhaustive r.netlist e ~output:"out" ~width
    else Dp_sim.Equiv.check_random ~trials:40 r.netlist e ~output:"out" ~width
  in
  match ok with
  | Ok () -> true
  | Error m -> QCheck2.Test.fail_reportf "%a" Dp_sim.Equiv.pp_mismatch m

let prop_fa_aot_equivalent =
  mk_prop "FA_AOT netlist ≡ expression (mod 2^W)" gen_expr
    (equivalence_property Dp_flow.Strategy.Fa_aot)

let prop_fa_alp_equivalent =
  mk_prop "FA_ALP netlist ≡ expression" gen_expr
    (equivalence_property Dp_flow.Strategy.Fa_alp)

let prop_wallace_equivalent =
  mk_prop "Wallace netlist ≡ expression" gen_expr
    (equivalence_property Dp_flow.Strategy.Wallace)

let prop_dadda_equivalent =
  mk_prop "Dadda netlist ≡ expression" gen_expr
    (equivalence_property Dp_flow.Strategy.Dadda)

let prop_csa_opt_equivalent =
  mk_prop "CSA_OPT netlist ≡ expression" gen_expr
    (equivalence_property Dp_flow.Strategy.Csa_opt)

let prop_conventional_equivalent =
  mk_prop "Conventional netlist ≡ expression" gen_expr
    (equivalence_property Dp_flow.Strategy.Conventional)

let prop_column_isolation_equivalent =
  mk_prop "Column-isolation netlist ≡ expression" gen_expr
    (equivalence_property Dp_flow.Strategy.Column_isolation)

let prop_fa_random_equivalent =
  mk_prop "FA_random netlist ≡ expression" gen_expr
    (equivalence_property (Dp_flow.Strategy.Fa_random 7))

(* SOP normalization agrees with the interpreter on random expressions *)
let prop_sop_eval =
  mk_prop "SOP eval = AST eval" gen_expr (fun e ->
      let assign v = match v with "a" -> 5 | "b" -> 2 | _ -> 7 in
      Sop.eval assign (Sop.of_expr e) = Eval.eval assign e)

(* Range analysis is sound: the value of any assignment lies in the range *)
let prop_range_sound =
  mk_prop "range analysis is sound" gen_expr (fun e ->
      QCheck2.assume (tractable e);
      let r = Range.of_expr env e in
      let rng = Random.State.make [| Hashtbl.hash (Ast.to_string e) |] in
      let ok = ref true in
      for _ = 1 to 30 do
        let alist =
          List.map (fun (v, w) -> (v, Random.State.int rng (1 lsl w))) vars_pool
        in
        let value = Eval.eval (assign_of alist) e in
        if value < (r : Range.t).lo || value > r.hi then ok := false
      done;
      !ok)

(* CSD recoding *)
let prop_csd =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"CSD: value, canonical, no worse than binary"
       ~count:500 QCheck2.Gen.(int_range (-100000) 100000)
       (fun n ->
         let digits = Csd.recode n in
         Csd.value digits = n
         && Csd.is_canonical digits
         && Csd.nonzero_count digits <= Csd.nonzero_count (Csd.binary n)))

(* Adders: random widths and operands, all four architectures, with cin *)
let prop_adders =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"adders: a + b + cin mod 2^w" ~count:120
       QCheck2.Gen.(
         quad (int_range 1 24) (int_range 0 max_int) (int_range 0 max_int) bool)
       (fun (w, a0, b0, cin) ->
         let mask = Eval.mask w in
         let va = a0 land mask and vb = b0 land mask in
         List.for_all
           (fun kind ->
             let n = mk_netlist () in
             let a = Dp_netlist.Netlist.add_input n "a" ~width:w in
             let b = Dp_netlist.Netlist.add_input n "b" ~width:w in
             let cin_net =
               if cin then Some (Dp_netlist.Netlist.const n true) else None
             in
             let sums = Dp_adders.Adder.build ?cin:cin_net kind n ~a ~b in
             Dp_netlist.Netlist.set_output n "out" sums;
             let assign name = if name = "a" then va else vb in
             Dp_sim.Simulator.eval_output n ~assign "out"
             = (va + vb + Bool.to_int cin) land mask)
           Dp_adders.Adder.all))

(* The FA probability algebra, fuzzed against exact 8-case enumeration *)
let prop_fa_prob_algebra =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"FA q-algebra = exact enumeration" ~count:200
       QCheck2.Gen.(triple (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)
                      (float_bound_inclusive 1.0))
       (fun (px, py, pz) ->
         let exact_sum = ref 0.0 and exact_carry = ref 0.0 in
         for v = 0 to 7 do
           let bx = v land 1 and by = (v lsr 1) land 1 and bz = (v lsr 2) land 1 in
           let w =
             (if bx = 1 then px else 1.0 -. px)
             *. (if by = 1 then py else 1.0 -. py)
             *. (if bz = 1 then pz else 1.0 -. pz)
           in
           let ones = bx + by + bz in
           if ones land 1 = 1 then exact_sum := !exact_sum +. w;
           if ones >= 2 then exact_carry := !exact_carry +. w
         done;
         let qx = px -. 0.5 and qy = py -. 0.5 and qz = pz -. 0.5 in
         Float.abs (!exact_sum -. (0.5 +. Dp_power.Prob.fa_sum_q qx qy qz)) < 1e-9
         && Float.abs (!exact_carry -. (0.5 +. Dp_power.Prob.fa_carry_q qx qy qz))
            < 1e-9))

(* Every strategy's STA and probability annotations are internally
   consistent after synthesis *)
let prop_annotations_consistent =
  mk_prop "builder annotations = from-scratch engines" gen_expr (fun e ->
      QCheck2.assume (tractable e);
      let width = min (Range.natural_width env e) 16 in
      List.for_all
        (fun strategy ->
          let r = Dp_flow.Synth.run strategy env e ~width in
          Dp_timing.Sta.agrees_with_annotation r.netlist
          && Dp_power.Prob.agrees_with_annotation r.netlist)
        [ Dp_flow.Strategy.Fa_aot; Dp_flow.Strategy.Fa_alp;
          Dp_flow.Strategy.Conventional ])

let suite =
  [
    prop_fa_aot_equivalent;
    prop_fa_alp_equivalent;
    prop_wallace_equivalent;
    prop_dadda_equivalent;
    prop_csa_opt_equivalent;
    prop_conventional_equivalent;
    prop_column_isolation_equivalent;
    prop_fa_random_equivalent;
    prop_sop_eval;
    prop_range_sound;
    prop_csd;
    prop_adders;
    prop_fa_prob_algebra;
    prop_annotations_consistent;
  ]
