open Dp_netlist
open Dp_sim
open Helpers

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_orders () =
  let h = Heap.create ~dummy:(-1) in
  List.iter (fun (t, v) -> Heap.push h t v) [ (3.0, 3); (1.0, 1); (2.0, 2); (0.5, 0) ];
  let order = List.init 4 (fun _ -> snd (Heap.pop h)) in
  check (Alcotest.list Alcotest.int) "sorted by time" [ 0; 1; 2; 3 ] order;
  checkb "empty" true (Heap.is_empty h)

let test_heap_interleaved () =
  let h = Heap.create ~dummy:(-1) in
  let rng = Random.State.make [| 4 |] in
  let last = ref neg_infinity in
  for i = 0 to 199 do
    Heap.push h (Random.State.float rng 100.0) i
  done;
  for _ = 0 to 99 do
    let t, _ = Heap.pop h in
    checkb "nondecreasing" true (t >= !last);
    last := t;
    Heap.push h (!last +. Random.State.float rng 10.0) 0
  done;
  checki "length" 200 (Heap.length h)

let test_heap_empty_pop () =
  Alcotest.check_raises "empty pop" (Invalid_argument "Heap.pop: empty")
    (fun () -> ignore (Heap.pop (Heap.create ~dummy:0)))

(* ------------------------------------------------------------------ *)
(* Event-driven simulation *)

(* After settling, the event simulator must agree with the functional
   simulator on every net, for every strategy's netlist. *)
let test_settles_to_functional () =
  let d = Dp_designs.Catalog.poly_mixed in
  List.iter
    (fun strategy ->
      let r = Dp_flow.Synth.run strategy d.env d.expr ~width:d.width in
      let t = Event_sim.create r.netlist in
      let rng = Random.State.make [| 77 |] in
      let widths =
        List.map
          (fun (name, nets) -> (name, Array.length nets))
          (Netlist.inputs r.netlist)
      in
      let draw () =
        let alist =
          List.map (fun (v, w) -> (v, Random.State.int rng (1 lsl w))) widths
        in
        assign_of alist
      in
      Event_sim.initialize t ~assign:(draw ());
      for _ = 1 to 25 do
        let assign = draw () in
        Event_sim.apply_vector t ~assign;
        let reference = Simulator.run r.netlist ~assign in
        Array.iteri
          (fun net expected ->
            if t.values.(net) <> expected then
              Alcotest.failf "%s: net %d settled wrong"
                (Dp_flow.Strategy.name strategy) net)
          reference
      done)
    [ Dp_flow.Strategy.Fa_aot; Dp_flow.Strategy.Wallace; Dp_flow.Strategy.Conventional ]

let test_single_cell_glitch_free () =
  (* one FA whose inputs all switch at t = 0 settles with at most one
     transition per output per vector *)
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:3 in
  let s, c = Netlist.fa n bits.(0) bits.(1) bits.(2) in
  Netlist.set_output n "o" [| s; c |];
  let rates = Event_sim.transition_rates ~vectors:300 n in
  checkb "sum <= 1 transition/vector" true (rates.transition_rate.(s) <= 1.0 +. 1e-9);
  checkb "carry <= 1 transition/vector" true (rates.transition_rate.(c) <= 1.0 +. 1e-9)

let test_classic_glitch_pulse () =
  (* c = x AND (NOT x): functionally constant 0, but the NOT's delay lets
     a pulse through whenever x rises — invisible to the zero-delay model *)
  let n = mk_netlist () in
  let x = (Netlist.add_input n "x" ~width:1).(0) in
  let g = Netlist.and_n n [ x; Netlist.not_ n x ] in
  Netlist.set_output n "o" [| g |];
  let vectors = 2000 in
  let timed = Event_sim.transition_rates ~vectors n in
  let zero = Monte_carlo.toggle_rates ~vectors n in
  checkf "no zero-delay toggles" 0.0 zero.toggle_rate.(g);
  (* x rises on ~1/4 of vector boundaries; each rise makes 2 transitions *)
  checkb
    (Printf.sprintf "glitches seen (rate %.3f)" timed.transition_rate.(g))
    true
    (timed.transition_rate.(g) > 0.3)

let test_glitch_factor_at_least_one () =
  let d = Dp_designs.Catalog.x3 in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let factor = Event_sim.glitch_factor r.netlist ~vectors:400 ~seed:5 in
  checkb (Printf.sprintf "factor %.2f >= 1" factor) true (factor >= 0.99)

let test_transition_rates_validation () =
  Alcotest.check_raises "needs 2"
    (Invalid_argument "Event_sim.transition_rates: need >= 2 vectors") (fun () ->
      ignore (Event_sim.transition_rates ~vectors:1 (mk_netlist ())))

let suite =
  [
    case "heap: orders by time" test_heap_orders;
    case "heap: interleaved push/pop" test_heap_interleaved;
    case "heap: empty pop raises" test_heap_empty_pop;
    case "event sim settles to the functional value" test_settles_to_functional;
    case "single FA is glitch-free" test_single_cell_glitch_free;
    case "x AND NOT x pulses under real delays" test_classic_glitch_pulse;
    case "glitch factor >= 1 on an FA tree" test_glitch_factor_at_least_one;
    case "input validation" test_transition_rates_validation;
  ]
