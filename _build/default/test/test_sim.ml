open Dp_netlist
open Dp_sim
open Helpers

let test_bus_value () =
  let values = [| true; false; true; true |] in
  checki "1101b" 13 (Simulator.bus_value values [| 0; 1; 2; 3 |])

let test_run_gates () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:2 in
  Netlist.set_output n "and" [| Netlist.and_n n [ bits.(0); bits.(1) ] |];
  Netlist.set_output n "or" [| Netlist.or_n n [ bits.(0); bits.(1) ] |];
  Netlist.set_output n "xor" [| Netlist.xor2 n bits.(0) bits.(1) |];
  List.iter
    (fun (v, e_and, e_or, e_xor) ->
      let values = Simulator.run n ~assign:(fun _ -> v) in
      checki "and" e_and (Simulator.output_value n values "and");
      checki "or" e_or (Simulator.output_value n values "or");
      checki "xor" e_xor (Simulator.output_value n values "xor"))
    [ (0, 0, 0, 0); (1, 0, 1, 1); (2, 0, 1, 1); (3, 1, 1, 0) ]

let test_equiv_detects_mismatch () =
  (* wire the output to the wrong bit: equivalence must fail *)
  let n = mk_netlist () in
  let bits = Netlist.add_input n "x" ~width:2 in
  Netlist.set_output n "out" [| bits.(1); bits.(0) |] (* swapped! *);
  let expr = Dp_expr.Parse.expr "x" in
  match Equiv.check_exhaustive n expr ~output:"out" ~width:2 with
  | Ok () -> Alcotest.fail "should have found a mismatch"
  | Error m ->
    checkb "mismatch values differ" true (m.expected <> m.actual)

let test_equiv_exhaustive_ok () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "x" ~width:3 in
  Netlist.set_output n "out" bits;
  let expr = Dp_expr.Parse.expr "x" in
  checkb "identity ok" true
    (Equiv.check_exhaustive n expr ~output:"out" ~width:3 = Ok ())

let test_equiv_exhaustive_guard () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "x" ~width:30 in
  Netlist.set_output n "out" bits;
  Alcotest.check_raises "too wide"
    (Invalid_argument "Equiv.check_exhaustive: input space too large") (fun () ->
      ignore
        (Equiv.check_exhaustive n (Dp_expr.Parse.expr "x") ~output:"out" ~width:30))

let test_equiv_random_deterministic () =
  let d = Dp_designs.Catalog.poly_mixed in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let a = Equiv.check_random ~seed:11 ~trials:50 r.netlist d.expr ~output:"out" ~width:d.width in
  let b = Equiv.check_random ~seed:11 ~trials:50 r.netlist d.expr ~output:"out" ~width:d.width in
  checkb "same outcome under same seed" true (a = b);
  checkb "passes" true (a = Ok ())

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_testbench_structure () =
  let d = Dp_designs.Catalog.x2 in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let tb = Testbench.emit ~module_name:"sq" ~vectors:8 r.netlist in
  List.iter
    (fun needle -> checkb needle true (contains ~needle tb))
    [
      "module sq_tb;";
      "sq dut (.x(x), .out(out));";
      "reg [2:0] x;";
      "wire [5:0] out;";
      "$finish;";
      "PASS: 8 vectors";
    ]

let test_testbench_expected_values_correct () =
  (* the expected constants embedded in the testbench must equal the
     simulator's outputs; spot-check by re-deriving one vector *)
  let d = Dp_designs.Catalog.x2 in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let tb = Testbench.emit ~seed:1 ~vectors:4 r.netlist in
  (* every x assignment v must be followed by a check against (v*v) mod 64 *)
  let lines = String.split_on_char '
' tb in
  let rec scan = function
    | [] -> ()
    | l :: rest ->
      (match
         if contains ~needle:"x = 3'd" l then
           let idx = String.index l 'd' in
           int_of_string_opt (String.trim (String.sub l (idx + 1) (String.length l - idx - 2)))
         else None
       with
      | Some v ->
        let expected = Printf.sprintf "6'd%d" (v * v land 63) in
        let upcoming = String.concat "\n" (List.filteri (fun i _ -> i < 6) rest) in
        checkb (Printf.sprintf "x=%d checks %s" v expected) true
          (contains ~needle:expected upcoming)
      | None -> ());
      scan rest
  in
  scan lines

let test_testbench_with_dut_concatenates () =
  let d = Dp_designs.Catalog.x2 in
  let r = Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot d.env d.expr ~width:d.width in
  let all = Testbench.emit_with_dut ~module_name:"m" ~vectors:4 r.netlist in
  checkb "dut" true (contains ~needle:"module m (" all);
  checkb "tb" true (contains ~needle:"module m_tb;" all)

let test_mismatch_printer () =
  let m = { Equiv.assignment = [ ("x", 3) ]; expected = 7; actual = 5 } in
  let s = Fmt.str "%a" Equiv.pp_mismatch m in
  checkb "mentions values" true
    (String.length s > 0
    && Option.is_some (String.index_opt s '7')
    && Option.is_some (String.index_opt s '5'))

let suite =
  [
    case "bus value" test_bus_value;
    case "gate evaluation" test_run_gates;
    case "equivalence detects a planted bug" test_equiv_detects_mismatch;
    case "exhaustive equivalence on identity" test_equiv_exhaustive_ok;
    case "exhaustive equivalence guards input size" test_equiv_exhaustive_guard;
    case "random equivalence is seeded/deterministic" test_equiv_random_deterministic;
    case "testbench: structure" test_testbench_structure;
    case "testbench: expected values correct" test_testbench_expected_values_correct;
    case "testbench: emit_with_dut" test_testbench_with_dut_concatenates;
    case "mismatch printer" test_mismatch_printer;
  ]
