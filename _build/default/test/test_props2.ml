(* Second property batch: structural invariants, fuzzing, and
   cross-subsystem consistency on randomly generated expressions. *)

open Dp_expr
open Helpers

let vars_pool = [ ("a", 3); ("b", 2); ("c", 3) ]
let env = Env.of_widths vars_pool

let gen_expr =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun (v, _) -> Ast.Var v) (oneofl vars_pool);
            map Ast.const (int_range (-9) 9);
          ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map (fun (v, _) -> Ast.Var v) (oneofl vars_pool);
            map2 (fun a b -> Ast.Add (a, b)) sub sub;
            map2 (fun a b -> Ast.Sub (a, b)) sub sub;
            map2 (fun a b -> Ast.Mul (a, b)) sub sub;
            map (fun a -> Ast.Neg a) sub;
          ])

let tractable e =
  match Sop.of_expr e with
  | sop -> Sop.term_count sop <= 30 && Sop.max_degree sop <= 5
  | exception _ -> false

let mk_prop ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:Ast.to_string gen prop)

let synth e =
  QCheck2.assume (tractable e);
  let width = min (Range.natural_width env e) 16 in
  Dp_flow.Synth.run Dp_flow.Strategy.Fa_aot env e ~width

(* Parser fuzz: arbitrary printable strings either parse or raise
   Parse.Error — never anything else, never a crash. *)
let prop_parser_total =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser is total (Error or value)" ~count:500
       QCheck2.Gen.(string_size ~gen:printable (int_range 0 40))
       (fun s ->
         match Parse.expr s with
         | (_ : Ast.t) -> true
         | exception Parse.Error _ -> true))

let prop_program_parser_total =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"program parser is total" ~count:500
       QCheck2.Gen.(string_size ~gen:printable (int_range 0 40))
       (fun s ->
         match Parse.program s with
         | (_ : (string * Ast.t) list) -> true
         | exception Parse.Error _ -> true))

(* Verilog output is lexically sane for any synthesized expression. *)
let prop_verilog_sane =
  mk_prop "verilog: balanced modules, unique wires" gen_expr (fun e ->
      let r = synth e in
      let v = Dp_netlist.Verilog.emit r.netlist in
      let count_substring needle =
        let nl = String.length needle and hl = String.length v in
        let rec go i acc =
          if i + nl > hl then acc
          else if String.sub v i nl = needle then go (i + 1) (acc + 1)
          else go (i + 1) acc
        in
        go 0 0
      in
      let modules = count_substring "\nmodule " + 1 (* first at offset 0 *) in
      let endmodules = count_substring "endmodule" in
      let wires =
        String.split_on_char '\n' v
        |> List.filter_map (fun l ->
               let l = String.trim l in
               if String.length l > 5 && String.sub l 0 5 = "wire " then Some l
               else None)
      in
      let unique = List.sort_uniq String.compare wires in
      modules = endmodules && List.length unique = List.length wires)

(* Event-driven simulation settles to the functional value on random
   expressions and random vectors. *)
let prop_event_sim_settles =
  mk_prop ~count:30 "event sim settles to functional values" gen_expr (fun e ->
      let r = synth e in
      let t = Dp_sim.Event_sim.create r.netlist in
      let rng = Random.State.make [| Hashtbl.hash (Ast.to_string e) |] in
      let draw () =
        let alist =
          List.map (fun (v, w) -> (v, Random.State.int rng (1 lsl w))) vars_pool
        in
        assign_of alist
      in
      Dp_sim.Event_sim.initialize t ~assign:(draw ());
      let ok = ref true in
      for _ = 1 to 10 do
        let assign = draw () in
        Dp_sim.Event_sim.apply_vector t ~assign;
        let reference = Dp_sim.Simulator.run r.netlist ~assign in
        Array.iteri
          (fun net expected -> if t.values.(net) <> expected then ok := false)
          reference
      done;
      !ok)

(* Pipeline plans are internally consistent for random expressions. *)
let prop_pipeline_consistent =
  mk_prop ~count:30 "pipeline plans consistent" gen_expr (fun e ->
      let r = synth e in
      let cycle_time =
        Float.max 1.0 (Dp_pipeline.Pipeline.min_cycle_time r.netlist)
      in
      let p = Dp_pipeline.Pipeline.plan r.netlist ~cycle_time in
      let ok = ref (p.latency >= 1 && p.register_bits >= 0) in
      Array.iter
        (fun local -> if local > cycle_time +. 1e-9 then ok := false)
        p.local_arrival;
      Array.iter
        (fun d -> if d > cycle_time +. 1e-9 then ok := false)
        p.stage_delay;
      (* monotone along edges *)
      Dp_netlist.Netlist.iter_cells
        (fun id (c : Dp_netlist.Netlist.cell) ->
          let outs = Dp_netlist.Netlist.cell_output_nets r.netlist id in
          Array.iter
            (fun out ->
              Array.iter
                (fun input ->
                  if p.stage_of_net.(input) > p.stage_of_net.(out) then
                    ok := false)
                c.inputs)
            outs)
        r.netlist;
      !ok)

(* Fixed-structure reducers have logarithmic FA-tree depth. *)
let prop_wallace_depth_logarithmic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wallace depth is O(log h)" ~count:30
       QCheck2.Gen.(int_range 3 40)
       (fun height ->
         let n = mk_netlist ~tech:Dp_tech.Tech.unit_delay () in
         let bits = Dp_netlist.Netlist.add_input n "x" ~width:height in
         let m = Dp_bitmatrix.Matrix.create () in
         Array.iter (fun b -> Dp_bitmatrix.Matrix.add m ~weight:0 b) bits;
         Dp_core.Wallace.allocate n m;
         (* stages(h) for 3:2 compression: ceil(log_{3/2}(h/2)) + slack *)
         let bound =
           2 + int_of_float (Float.ceil (log (float_of_int height /. 2.0) /. log 1.5))
         in
         Dp_netlist.Topo.levels n
         |> Array.for_all (fun level -> level <= bound)))

(* The tech file loader round-trips random perturbations. *)
let prop_tech_file_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"tech file roundtrip" ~count:100
       QCheck2.Gen.(
         triple (float_bound_inclusive 9.0) (float_bound_inclusive 9.0)
           (float_bound_inclusive 9.0))
       (fun (ds, dc, area) ->
         let t =
           {
             Dp_tech.Tech.lcb_like with
             fa_sum_delay = ds;
             fa_carry_delay = dc;
             fa_area = area;
           }
         in
         let t' = Dp_tech.Tech_file.of_string (Dp_tech.Tech_file.to_string t) in
         Float.abs (t'.fa_sum_delay -. ds) < 1e-6
         && Float.abs (t'.fa_carry_delay -. dc) < 1e-6
         && Float.abs (t'.fa_area -. area) < 1e-6))

(* Multi-output synthesis equals per-output synthesis functionally. *)
let prop_multi_matches_single =
  mk_prop ~count:25 "multi-output = single-output per port" gen_expr (fun e ->
      QCheck2.assume (tractable e);
      let width = min (Range.natural_width env e) 12 in
      let ports =
        [
          { Dp_flow.Synth.name = "p0"; expr = e; width };
          { Dp_flow.Synth.name = "p1"; expr = Ast.Add (e, Ast.Const 1); width };
        ]
      in
      let r = Dp_flow.Synth.run_multi Dp_flow.Strategy.Fa_aot env ports in
      Dp_flow.Synth.verify_multi ~trials:25 r = Ok ())

let suite =
  [
    prop_parser_total;
    prop_program_parser_total;
    prop_verilog_sane;
    prop_event_sim_settles;
    prop_pipeline_consistent;
    prop_wallace_depth_logarithmic;
    prop_tech_file_roundtrip;
    prop_multi_matches_single;
  ]
