open Dp_netlist
open Dp_adders
open Helpers

let exhaustive_add kind ~width ~cin_value () =
  let n = mk_netlist () in
  let a = Netlist.add_input n "a" ~width in
  let b = Netlist.add_input n "b" ~width in
  let cin = if cin_value then Some (Netlist.const n true) else None in
  let sums = Adder.build ?cin kind n ~a ~b in
  Netlist.set_output n "out" sums;
  let mask = Dp_expr.Eval.mask width in
  for va = 0 to mask do
    for vb = 0 to mask do
      let assign name = if name = "a" then va else vb in
      let got = Dp_sim.Simulator.eval_output n ~assign "out" in
      let expected = (va + vb + Bool.to_int cin_value) land mask in
      if got <> expected then
        Alcotest.failf "%s: %d + %d + %d: expected %d got %d" (Adder.name kind)
          va vb (Bool.to_int cin_value) expected got
    done
  done

let random_add kind ~width () =
  let n = mk_netlist () in
  let a = Netlist.add_input n "a" ~width in
  let b = Netlist.add_input n "b" ~width in
  let sums = Adder.build kind n ~a ~b in
  Netlist.set_output n "out" sums;
  let rng = Random.State.make [| 5; width |] in
  let mask = Dp_expr.Eval.mask width in
  for _ = 1 to 100 do
    let va = Random.State.int rng (mask + 1) in
    let vb = Random.State.int rng (mask + 1) in
    let assign name = if name = "a" then va else vb in
    checki
      (Printf.sprintf "%s %d+%d" (Adder.name kind) va vb)
      ((va + vb) land mask)
      (Dp_sim.Simulator.eval_output n ~assign "out")
  done

let test_all_kinds_exhaustive_4bit () =
  List.iter (fun kind -> exhaustive_add kind ~width:4 ~cin_value:false ()) Adder.all

let test_all_kinds_exhaustive_with_cin () =
  List.iter (fun kind -> exhaustive_add kind ~width:4 ~cin_value:true ()) Adder.all

let test_all_kinds_exhaustive_5bit () =
  (* 5 is not a multiple of the CLA/carry-select block size *)
  List.iter (fun kind -> exhaustive_add kind ~width:5 ~cin_value:false ()) Adder.all

let test_all_kinds_random_16bit () =
  List.iter (fun kind -> random_add kind ~width:16 ()) Adder.all

let test_width_one () =
  List.iter (fun kind -> exhaustive_add kind ~width:1 ~cin_value:true ()) Adder.all

let test_width_mismatch_raises () =
  let n = mk_netlist () in
  let a = Netlist.add_input n "a" ~width:4 in
  let b = Netlist.add_input n "b" ~width:3 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Ripple.build: width mismatch")
    (fun () -> ignore (Adder.build Adder.Ripple n ~a ~b))

let test_fast_adders_shallower_than_ripple () =
  let depth kind =
    let n = mk_netlist () in
    let a = Netlist.add_input n "a" ~width:32 in
    let b = Netlist.add_input n "b" ~width:32 in
    let sums = Adder.build kind n ~a ~b in
    Netlist.set_output n "out" sums;
    Dp_timing.Sta.design_delay n
  in
  let ripple = depth Adder.Ripple in
  List.iter
    (fun kind ->
      let d = depth kind in
      checkb
        (Printf.sprintf "%s (%.2f) faster than ripple (%.2f)" (Adder.name kind) d ripple)
        true (d < ripple))
    [ Adder.Cla; Adder.Carry_select; Adder.Kogge_stone ]

let test_kogge_stone_fastest_at_64 () =
  let delay kind =
    let n = mk_netlist () in
    let a = Netlist.add_input n "a" ~width:48 in
    let b = Netlist.add_input n "b" ~width:48 in
    let sums = Adder.build kind n ~a ~b in
    Netlist.set_output n "out" sums;
    Dp_timing.Sta.design_delay n
  in
  checkb "ks < cla" true (delay Adder.Kogge_stone < delay Adder.Cla)

let test_ripple_smallest_area () =
  let area kind =
    let n = mk_netlist () in
    let a = Netlist.add_input n "a" ~width:16 in
    let b = Netlist.add_input n "b" ~width:16 in
    let sums = Adder.build kind n ~a ~b in
    Netlist.set_output n "out" sums;
    Netlist.area n
  in
  let ripple = area Adder.Ripple in
  List.iter
    (fun kind ->
      checkb (Adder.name kind) true (area kind >= ripple))
    [ Adder.Cla; Adder.Carry_select; Adder.Kogge_stone ]

let test_build_rows_pads () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:2 in
  let row_a = [| Some bits.(0); None |] in
  let row_b = [| Some bits.(1) |] in
  let sums = Adder.build_rows Adder.Ripple n ~width:4 (row_a, row_b) in
  Netlist.set_output n "out" sums;
  checki "width 4" 4 (Array.length sums);
  for v = 0 to 3 do
    let expected = ((v land 1) + ((v lsr 1) land 1)) land 15 in
    checki "padded add" expected (Dp_sim.Simulator.eval_output n ~assign:(fun _ -> v) "out")
  done

let test_adder_names_roundtrip () =
  List.iter
    (fun kind ->
      match Adder.of_name (Adder.name kind) with
      | Some k -> checkb (Adder.name kind) true (k = kind)
      | None -> Alcotest.failf "name %s not parsed" (Adder.name kind))
    Adder.all;
  checkb "unknown" true (Adder.of_name "zzz" = None)

let suite =
  [
    case "all kinds: exhaustive 4-bit" test_all_kinds_exhaustive_4bit;
    case "all kinds: exhaustive 4-bit with carry-in" test_all_kinds_exhaustive_with_cin;
    case "all kinds: exhaustive 5-bit (odd block)" test_all_kinds_exhaustive_5bit;
    case "all kinds: random 16-bit" test_all_kinds_random_16bit;
    case "all kinds: width 1" test_width_one;
    case "width mismatch raises" test_width_mismatch_raises;
    case "fast adders beat ripple at 32 bits" test_fast_adders_shallower_than_ripple;
    case "kogge-stone beats CLA at 48 bits" test_kogge_stone_fastest_at_64;
    case "ripple has the smallest area" test_ripple_smallest_area;
    case "build_rows pads with zeros" test_build_rows_pads;
    case "adder names roundtrip" test_adder_names_roundtrip;
  ]
