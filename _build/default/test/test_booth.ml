open Dp_netlist
open Dp_bitmatrix
open Dp_expr
open Helpers

(* Exhaustive check that the Booth rows denote the product: sum the matrix
   under simulation for every operand pair. *)
let booth_denotes ?(negate = false) ?(shift = 0) ~wx ~wy ~width () =
  let n = mk_netlist () in
  let x = Netlist.add_input n "x" ~width:wx in
  let y = Netlist.add_input n "y" ~width:wy in
  let m = Matrix.create ~max_width:width () in
  let correction =
    Booth.lower_product ~negate ~shift n m ~multiplicand:x ~multiplier:y
  in
  let mask = Eval.mask width in
  for vx = 0 to Eval.mask wx do
    for vy = 0 to Eval.mask wy do
      let assign name = if name = "x" then vx else vy in
      let values = Dp_sim.Simulator.run n ~assign in
      let got = (Matrix.value m values + correction) land mask in
      let sign = if negate then -1 else 1 in
      let expected = sign * vx * vy * (1 lsl shift) land mask in
      if got <> expected then
        Alcotest.failf "booth %dx%d: %d*%d: expected %d got %d" wx wy vx vy
          expected got
    done
  done

let test_booth_4x4 = booth_denotes ~wx:4 ~wy:4 ~width:8
let test_booth_5x3 = booth_denotes ~wx:5 ~wy:3 ~width:8
let test_booth_3x5 = booth_denotes ~wx:3 ~wy:5 ~width:8
let test_booth_1x4 = booth_denotes ~wx:1 ~wy:4 ~width:5
let test_booth_4x1 = booth_denotes ~wx:4 ~wy:1 ~width:5
let test_booth_negated = booth_denotes ~negate:true ~wx:4 ~wy:4 ~width:8
let test_booth_shifted = booth_denotes ~shift:2 ~wx:3 ~wy:3 ~width:9
let test_booth_truncated = booth_denotes ~wx:4 ~wy:4 ~width:5

let test_digit_count () =
  checki "4-bit" 3 (Booth.digit_count 4);
  checki "5-bit" 3 (Booth.digit_count 5);
  checki "16-bit" 9 (Booth.digit_count 16);
  checki "1-bit" 1 (Booth.digit_count 1)

let booth_config =
  { Lower.default_config with Lower.multiplier_style = Lower.Booth }

let test_flow_with_booth () =
  (* end-to-end: FA_AOT over Booth-lowered products stays equivalent *)
  let env = Env.of_widths [ ("a", 4); ("b", 4); ("c", 4); ("d", 4) ] in
  let expr = Parse.expr "a*c - b*d" in
  List.iter
    (fun strategy ->
      let r = Dp_flow.Synth.run ~lower_config:booth_config strategy env expr ~width:9 in
      match
        Dp_sim.Equiv.check_exhaustive r.netlist expr ~output:"out" ~width:9
      with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "%s: %a" (Dp_flow.Strategy.name strategy)
          Dp_sim.Equiv.pp_mismatch m)
    [ Dp_flow.Strategy.Fa_aot; Dp_flow.Strategy.Fa_alp; Dp_flow.Strategy.Wallace ]

let test_booth_ineligible_fall_back () =
  (* squares, scaled products and signed operands must fall back to the
     AND-array path and stay correct *)
  let env =
    Env.empty
    |> Env.add_uniform "x" ~width:4
    |> Env.add_uniform "y" ~width:4
    |> Env.add_uniform "s" ~width:3 ~signed:true
  in
  let expr = Parse.expr "x^2 + 3*x*y + s*y" in
  let r = Dp_flow.Synth.run ~lower_config:booth_config Dp_flow.Strategy.Fa_aot env expr ~width:10 in
  match
    Dp_sim.Equiv.check_exhaustive
      ~signed:(fun v -> v = "s")
      r.netlist expr ~output:"out" ~width:10
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%a" Dp_sim.Equiv.pp_mismatch m

let test_booth_fewer_addends_wide () =
  (* at 16x16 Booth roughly halves the matrix population *)
  let env = Env.of_widths [ ("x", 16); ("y", 16) ] in
  let expr = Parse.expr "x*y" in
  let count config =
    let n = mk_netlist () in
    let m = Lower.lower ~config n env expr ~width:32 in
    Matrix.total_addends m
  in
  let plain = count Lower.default_config in
  let booth = count booth_config in
  checkb
    (Printf.sprintf "booth %d < 0.7 * and-array %d" booth plain)
    true
    (float_of_int booth < 0.7 *. float_of_int plain)

let test_booth_empty_operand_raises () =
  let n = mk_netlist () in
  let x = Netlist.add_input n "x" ~width:2 in
  let m = Matrix.create ~max_width:4 () in
  Alcotest.check_raises "empty" (Invalid_argument "Booth.lower_product: empty operand")
    (fun () -> ignore (Booth.lower_product n m ~multiplicand:x ~multiplier:[||]))

let suite =
  [
    case "booth 4x4 exhaustive" test_booth_4x4;
    case "booth 5x3 exhaustive" test_booth_5x3;
    case "booth 3x5 exhaustive" test_booth_3x5;
    case "booth 1x4 exhaustive" test_booth_1x4;
    case "booth 4x1 exhaustive" test_booth_4x1;
    case "booth negated product" test_booth_negated;
    case "booth shifted product" test_booth_shifted;
    case "booth truncated matrix" test_booth_truncated;
    case "digit counts" test_digit_count;
    case "flow with booth products (exhaustive)" test_flow_with_booth;
    case "ineligible products fall back to AND-array" test_booth_ineligible_fall_back;
    case "booth halves the 16x16 matrix" test_booth_fewer_addends_wide;
    case "empty operand raises" test_booth_empty_operand_raises;
  ]
