test/test_signed.ml: Alcotest Ast Dp_bitmatrix Dp_expr Dp_flow Dp_netlist Dp_sim Dp_tech Env Eval Fmt Helpers List Option Parse Range String
