test/helpers.ml: Alcotest Array Dp_netlist Dp_tech Float List Netlist
