test/test_booth.ml: Alcotest Booth Dp_bitmatrix Dp_expr Dp_flow Dp_netlist Dp_sim Env Eval Helpers List Lower Matrix Netlist Parse Printf
