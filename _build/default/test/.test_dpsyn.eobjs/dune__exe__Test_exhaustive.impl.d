test/test_exhaustive.ml: Alcotest Array Dp_bitmatrix Dp_core Dp_netlist Dp_sim Dp_tech Exhaustive Fa_aot Float Fun Helpers List Matrix Netlist Printf Random
