test/test_misc.ml: Alcotest Array Dp_bitmatrix Dp_core Dp_designs Dp_expr Dp_flow Dp_netlist Dp_pipeline Dp_tech Float Fmt Helpers List Lower Matrix Netlist Option Printf Stats String
