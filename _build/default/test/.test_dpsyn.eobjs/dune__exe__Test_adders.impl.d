test/test_adders.ml: Adder Alcotest Array Bool Dp_adders Dp_expr Dp_netlist Dp_sim Dp_timing Helpers List Netlist Printf Random
