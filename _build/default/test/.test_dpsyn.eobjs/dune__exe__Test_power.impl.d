test/test_power.ml: Alcotest Array Dp_designs Dp_expr Dp_flow Dp_netlist Dp_power Dp_sim Dp_tech Float Helpers List Netlist Printf Prob Switching
