test/test_netlist.ml: Alcotest Array Dot Dp_netlist Dp_sim Dp_tech Helpers List Netlist Stats String Topo Verilog
