test/test_pipeline.ml: Alcotest Array Dp_designs Dp_flow Dp_netlist Dp_pipeline Dp_tech Helpers List Netlist Printf
