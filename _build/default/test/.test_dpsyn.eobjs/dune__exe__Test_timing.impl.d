test/test_timing.ml: Alcotest Array Dp_designs Dp_flow Dp_netlist Dp_tech Dp_timing Helpers List Netlist Sta String
