test/test_dpsyn.mli:
