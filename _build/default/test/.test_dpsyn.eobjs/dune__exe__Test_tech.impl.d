test/test_tech.ml: Alcotest Cell_kind Dp_tech Helpers List String Tech Tech_file
