test/test_baselines.ml: Alcotest Array Ast Conventional Csa_opt Dp_adders Dp_baselines Dp_bitmatrix Dp_expr Dp_netlist Dp_sim Dp_timing Env Eval Helpers List Matrix Netlist Parse Printf Random Rows
