test/test_sim.ml: Alcotest Array Dp_designs Dp_expr Dp_flow Dp_netlist Dp_sim Equiv Fmt Helpers List Netlist Option Printf Simulator String Testbench
