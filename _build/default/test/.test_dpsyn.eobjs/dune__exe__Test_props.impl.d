test/test_props.ml: Ast Bool Csd Dp_adders Dp_expr Dp_flow Dp_netlist Dp_power Dp_sim Dp_timing Env Eval Float Hashtbl Helpers List QCheck2 QCheck_alcotest Random Range Sop
