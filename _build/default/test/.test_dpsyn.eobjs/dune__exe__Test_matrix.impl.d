test/test_matrix.ml: Alcotest Array Dp_bitmatrix Dp_expr Dp_netlist Dp_sim Dp_tech Env Eval Helpers List Lower Matrix Netlist Parse Printf Random String
