test/test_flow.ml: Alcotest Array Dp_adders Dp_designs Dp_expr Dp_flow Dp_netlist Dp_sim Dp_tech Float Helpers List Printf Report Strategy String Synth
