test/test_event_sim.ml: Alcotest Array Dp_designs Dp_flow Dp_netlist Dp_sim Event_sim Heap Helpers List Monte_carlo Netlist Printf Random Simulator
