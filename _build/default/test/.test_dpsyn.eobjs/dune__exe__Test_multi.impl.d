test/test_multi.ml: Alcotest Dp_bitmatrix Dp_expr Dp_flow Dp_netlist Dp_sim Env Helpers List Parse Printf Strategy String Synth
