test/test_expr.ml: Alcotest Ast Csd Dp_expr Env Eval Helpers List Parse Printf Range Sop
