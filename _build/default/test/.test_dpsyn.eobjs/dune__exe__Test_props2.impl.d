test/test_props2.ml: Array Ast Dp_bitmatrix Dp_core Dp_expr Dp_flow Dp_netlist Dp_pipeline Dp_sim Dp_tech Env Float Hashtbl Helpers List Parse QCheck2 QCheck_alcotest Random Range Sop String
