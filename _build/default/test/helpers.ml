open Dp_netlist

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checkf_eps eps msg = Alcotest.check (Alcotest.float eps) msg
let case name f = Alcotest.test_case name `Quick f

let mk_netlist ?(tech = Dp_tech.Tech.lcb_like) () = Netlist.create ~tech

(* A single column of independent input bits with the given arrival times
   (and optional probabilities), as used throughout the SC_T/SC_LP tests. *)
let mk_column ?probs netlist arrivals =
  let width = Array.length arrivals in
  let prob = match probs with None -> Array.make width 0.5 | Some p -> p in
  Array.to_list (Netlist.add_input netlist "col" ~width ~arrival:arrivals ~prob)

(* ------------------------------------------------------------------ *)
(* Pure float models of FA allocation, used to brute-force the paper's
   optimality claims without building netlists. *)

(* All ways to pick [k] elements (with the complement) from a list. *)
let rec choose k items =
  if k = 0 then [ ([], items) ]
  else
    match items with
    | [] -> []
    | x :: rest ->
      let with_x =
        List.map (fun (picked, others) -> (x :: picked, others)) (choose (k - 1) rest)
      in
      let without_x =
        List.map (fun (picked, others) -> (picked, x :: others)) (choose k rest)
      in
      with_x @ without_x

type timed_alloc = { final : float list; carries : float list }

(* Enumerate every allocation of a single column under the paper's rules
   (FA on any 3 while more than 3 remain; HA on any 2 when exactly 3), with
   the pure timing semantics sum = max + ds, carry = max + dc.  Returns the
   reduced column (sorted) and carry times (sorted) of every allocation. *)
let enumerate_timed ~ds ~dc ~ha_ds ~ha_dc times =
  let rec go pool carries acc =
    match List.length pool with
    | 0 | 1 | 2 ->
      { final = List.sort Float.compare pool;
        carries = List.sort Float.compare carries }
      :: acc
    | 3 ->
      List.fold_left
        (fun acc (picked, others) ->
          let t = List.fold_left Float.max neg_infinity picked in
          go ((t +. ha_ds) :: others) ((t +. ha_dc) :: carries) acc)
        acc (choose 2 pool)
    | _ ->
      List.fold_left
        (fun acc (picked, others) ->
          let t = List.fold_left Float.max neg_infinity picked in
          go ((t +. ds) :: others) ((t +. dc) :: carries) acc)
        acc (choose 3 pool)
  in
  go times [] []

(* The same enumeration for SC_LP's power objective: pools carry q-values;
   FA on any 3 (after a pseudo-zero joins an odd pool), accumulating the
   switching E = ws(0.25 - qs^2) + wc(0.25 - qc^2) of each created FA. *)
type power_alloc = { energy : float; pseudo : float }

let enumerate_power ~ws ~wc qs =
  let qs = if List.length qs mod 2 = 1 then -0.5 :: qs else qs in
  let rec go pool energy acc =
    if List.length pool <= 2 then { energy; pseudo = 0.0 } :: acc
    else
      List.fold_left
        (fun acc (picked, others) ->
          match picked with
          | [ qx; qy; qz ] ->
            let q_sum = 4.0 *. qx *. qy *. qz in
            let q_carry =
              (0.5 *. (qx +. qy +. qz)) -. (2.0 *. qx *. qy *. qz)
            in
            let e =
              (ws *. (0.25 -. (q_sum *. q_sum)))
              +. (wc *. (0.25 -. (q_carry *. q_carry)))
            in
            go (q_sum :: others) (energy +. e) acc
          | _ -> acc)
        acc (choose 3 pool)
  in
  go qs 0.0 []

(* Assignment helper for simulation tests. *)
let assign_of alist name =
  match List.assoc_opt name alist with
  | Some v -> v
  | None -> Alcotest.failf "unbound variable %s" name
