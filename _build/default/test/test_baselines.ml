open Dp_netlist
open Dp_bitmatrix
open Dp_baselines
open Dp_expr
open Helpers

(* ------------------------------------------------------------------ *)
(* Rows *)

let test_rows_packing () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:5 in
  let m = Matrix.create ~max_width:4 () in
  Matrix.add m ~weight:0 bits.(0);
  Matrix.add m ~weight:0 bits.(1);
  Matrix.add m ~weight:0 bits.(2);
  Matrix.add m ~weight:1 bits.(3);
  Matrix.add m ~weight:2 bits.(4);
  let rows = Rows.of_matrix ~width:4 m in
  checki "3 rows (tallest column)" 3 (List.length rows);
  (* every row has at most one addend per weight, and the union is the
     original matrix *)
  let total = List.fold_left (fun acc r -> acc + Rows.bit_count r) 0 rows in
  checki "all addends packed" 5 total

let test_rows_roundtrip () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:6 in
  let m = Matrix.create ~max_width:3 () in
  Array.iteri (fun i b -> Matrix.add m ~weight:(i mod 3) b) bits;
  let rows = Rows.of_matrix ~width:3 m in
  let back = Rows.to_matrix ~width:3 rows in
  for j = 0 to 2 do
    checki
      (Printf.sprintf "col %d" j)
      (List.length (Matrix.column m j))
      (List.length (Matrix.column back j))
  done

let test_rows_ready_time () =
  let n = mk_netlist () in
  let bits = Netlist.add_input n "v" ~width:2 ~arrival:[| 1.5; 4.5 |] in
  let row = [| Some bits.(0); Some bits.(1); None |] in
  checkf "latest bit" 4.5 (Rows.ready_time n row);
  checkf "empty row" 0.0 (Rows.ready_time n [| None |])

(* ------------------------------------------------------------------ *)
(* CSA_OPT *)

let test_csa_opt_functional () =
  (* sum of 5 words via the word-level CSA tree + final adder must equal
     the arithmetic sum mod 2^width *)
  let width = 6 in
  let n = mk_netlist () in
  let names = [ "a"; "b"; "c"; "d"; "e" ] in
  let rows =
    List.map
      (fun name ->
        let bits = Netlist.add_input n name ~width:4 in
        Array.init width (fun i -> if i < 4 then Some bits.(i) else None))
      names
  in
  let final = Csa_opt.allocate n ~width rows in
  let out = Dp_adders.Adder.build_rows Dp_adders.Adder.Ripple n ~width final in
  Netlist.set_output n "out" out;
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 200 do
    let alist = List.map (fun v -> (v, Random.State.int rng 16)) names in
    let expected =
      List.fold_left (fun acc (_, v) -> acc + v) 0 alist land Eval.mask width
    in
    checki "sum" expected
      (Dp_sim.Simulator.eval_output n ~assign:(assign_of alist) "out")
  done

let test_csa_word_level_structure () =
  (* one 3:2 CSA step on three full rows instantiates one FA/HA per
     populated column — a whole word-level module *)
  let width = 4 in
  let n = mk_netlist () in
  let mk name =
    let bits = Netlist.add_input n name ~width in
    Array.map (fun b -> Some b) bits
  in
  let r1 = mk "a" and r2 = mk "b" and r3 = mk "c" in
  let before = Netlist.cell_count n in
  let _sum, _carry = Csa_opt.csa n ~width r1 r2 r3 in
  checki "width cells" width (Netlist.cell_count n - before)

let test_csa_opt_picks_earliest_rows () =
  let width = 2 in
  let n = mk_netlist () in
  let mk name arrival =
    let bits = Netlist.add_input n name ~width ~arrival:(Array.make width arrival) in
    Array.map (fun b -> Some b) bits
  in
  let r_late = mk "late" 9.0 in
  let r1 = mk "e1" 1.0 and r2 = mk "e2" 1.0 and r3 = mk "e3" 1.0 in
  let _final = Csa_opt.allocate n ~width [ r_late; r1; r2; r3 ] in
  (* the first CSA must combine the three early rows: no input of the
     first-created cell can be the late operand *)
  let first = Netlist.cell n 0 in
  Array.iter
    (fun input ->
      checkb "first CSA avoids the late row" true
        (Netlist.arrival n input < 9.0 -. 1e-9))
    first.inputs

(* ------------------------------------------------------------------ *)
(* Conventional *)

let test_expand_pow () =
  let e = Conventional.expand_pow (Parse.expr "x^5") in
  let assign = assign_of [ ("x", 3) ] in
  checki "value" 243 (Eval.eval assign e);
  let rec no_pow = function
    | Ast.Pow _ -> false
    | Ast.Var _ | Ast.Const _ -> true
    | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) -> no_pow a && no_pow b
    | Ast.Neg a -> no_pow a
  in
  checkb "no pow nodes" true (no_pow e)

let test_flatten_sum () =
  let terms = Conventional.flatten_sum (Parse.expr "a - (b - c) + d") in
  checki "4 terms" 4 (List.length terms);
  let signs = List.map fst terms in
  checki "positives" 3 (List.length (List.filter (fun s -> s > 0) signs));
  checki "negatives" 1 (List.length (List.filter (fun s -> s < 0) signs))

let conventional_equiv ?config expr_s widths width () =
  let env = Env.of_widths widths in
  let expr = Parse.expr expr_s in
  let n = mk_netlist () in
  let out = Conventional.synthesize ?config n env expr ~width in
  Netlist.set_output n "out" out;
  match Dp_sim.Equiv.check_random ~trials:300 n expr ~output:"out" ~width with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %a" expr_s Dp_sim.Equiv.pp_mismatch m

let test_conventional_add = conventional_equiv "x + y" [ ("x", 5); ("y", 5) ] 6
let test_conventional_sub = conventional_equiv "x - y" [ ("x", 5); ("y", 5) ] 6
let test_conventional_mul = conventional_equiv "x*y" [ ("x", 5); ("y", 5) ] 10
let test_conventional_neg = conventional_equiv "-x + y*z" [ ("x", 4); ("y", 4); ("z", 4) ] 9

let test_conventional_poly =
  conventional_equiv "x^2 + 2*x*y + y^2 + 2*x + 2*y + 1" [ ("x", 4); ("y", 4) ] 10

let test_conventional_mixed =
  conventional_equiv "x + y - z + x*y - y*z + 10" [ ("x", 4); ("y", 4); ("z", 4) ] 10

let test_conventional_shift_add_multiplier =
  conventional_equiv
    ~config:
      {
        Conventional.adder = Dp_adders.Adder.Ripple;
        multiplier = Conventional.Shift_add;
        balance = false;
      }
    "x*y + z" [ ("x", 4); ("y", 4); ("z", 4) ] 9

let test_conventional_unbalanced =
  conventional_equiv
    ~config:
      {
        Conventional.adder = Dp_adders.Adder.Cla;
        multiplier = Conventional.Wallace_cpa;
        balance = false;
      }
    "a + b + c + d - e" [ ("a", 4); ("b", 4); ("c", 4); ("d", 4); ("e", 4) ] 7

let test_conventional_resource_sharing () =
  (* x^4 expands to (x*x)*(x*x): the squaring module must be built once *)
  let env = Env.of_widths [ ("x", 4) ] in
  let count expr_s =
    let n = mk_netlist () in
    let out = Conventional.synthesize n env (Parse.expr expr_s) ~width:16 in
    Netlist.set_output n "out" out;
    Netlist.cell_count n
  in
  let pow4 = count "x^4" in
  let explicit_shared = count "(x*x)*(x*x)" in
  checki "same size (shared)" explicit_shared pow4

let test_conventional_balancing_helps_skew () =
  (* with one very late input, balancing should not chain it first *)
  let env =
    Env.empty
    |> Env.add_uniform "late" ~width:8 ~arrival:5.0
    |> Env.add_uniform "a" ~width:8
    |> Env.add_uniform "b" ~width:8
    |> Env.add_uniform "c" ~width:8
  in
  let expr = Parse.expr "late + a + b + c" in
  let delay balance =
    let n = mk_netlist () in
    let config = { Conventional.default_config with balance } in
    let out = Conventional.synthesize ~config n env expr ~width:10 in
    Netlist.set_output n "out" out;
    Dp_timing.Sta.design_delay n
  in
  checkb "balanced <= naive" true (delay true <= delay false +. 1e-9)

let suite =
  [
    case "rows: first-fit packing" test_rows_packing;
    case "rows: matrix roundtrip" test_rows_roundtrip;
    case "rows: ready time" test_rows_ready_time;
    case "csa_opt: functional (5 words)" test_csa_opt_functional;
    case "csa_opt: word-level module structure" test_csa_word_level_structure;
    case "csa_opt: earliest-ready selection" test_csa_opt_picks_earliest_rows;
    case "conventional: pow expansion" test_expand_pow;
    case "conventional: sum flattening" test_flatten_sum;
    case "conventional: add" test_conventional_add;
    case "conventional: sub" test_conventional_sub;
    case "conventional: mul" test_conventional_mul;
    case "conventional: neg" test_conventional_neg;
    case "conventional: binomial poly" test_conventional_poly;
    case "conventional: mixed poly" test_conventional_mixed;
    case "conventional: shift-add multiplier" test_conventional_shift_add_multiplier;
    case "conventional: unbalanced config" test_conventional_unbalanced;
    case "conventional: resource sharing" test_conventional_resource_sharing;
    case "conventional: balancing helps skewed arrivals" test_conventional_balancing_helps_skew;
  ]
