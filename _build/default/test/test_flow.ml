open Dp_flow
open Helpers

let all_strategies = Strategy.all

(* ------------------------------------------------------------------ *)
(* End-to-end equivalence: every strategy x every paper design *)

let test_all_strategies_all_designs_equivalent () =
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      List.iter
        (fun strategy ->
          let r = Synth.run strategy d.env d.expr ~width:d.width in
          match Synth.verify ~trials:60 r d.expr with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "%s under %s: %a" d.name (Strategy.name strategy)
              Dp_sim.Equiv.pp_mismatch m)
        all_strategies)
    Dp_designs.Catalog.table1

let test_all_final_adders_equivalent () =
  let d = Dp_designs.Catalog.poly_mixed in
  List.iter
    (fun adder ->
      let r = Synth.run ~adder Strategy.Fa_aot d.env d.expr ~width:d.width in
      match Synth.verify ~trials:60 r d.expr with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "%s: %a" (Dp_adders.Adder.name adder)
          Dp_sim.Equiv.pp_mismatch m)
    Dp_adders.Adder.all

(* ------------------------------------------------------------------ *)
(* The paper's headline comparisons, as properties *)

let test_fa_aot_beats_conventional_on_every_design () =
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      let aot = Synth.run Strategy.Fa_aot d.env d.expr ~width:d.width in
      let conv = Synth.run Strategy.Conventional d.env d.expr ~width:d.width in
      checkb
        (Printf.sprintf "%s: AOT %.2f < conventional %.2f" d.name
           aot.stats.delay conv.stats.delay)
        true
        (aot.stats.delay < conv.stats.delay))
    Dp_designs.Catalog.table1

let test_fa_aot_never_slower_than_csa_opt () =
  (* The paper's guarantee (modified Problem 1) is on the latest signal
     feeding the final adder.  End-to-end, the final adder's sensitivity to
     the full arrival *profile* can flip near-ties by a few percent (seen
     on IIR: 3.81 vs 3.79 ns), so the delay assertion carries 3% slack. *)
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      let aot = Synth.run Strategy.Fa_aot d.env d.expr ~width:d.width in
      let csa = Synth.run Strategy.Csa_opt d.env d.expr ~width:d.width in
      (* SC_T's HA-on-exactly-three rule keeps two addends per column where
         a word-level CSA may FA all three; combined with the greedy's rare
         Dc-bounded suboptimality (see test_core), CSA_OPT can edge ahead by
         up to one carry delay — never more. *)
      let dc = Dp_tech.Tech.lcb_like.fa_carry_delay in
      (match aot.reduced_max_arrival, csa.reduced_max_arrival with
      | Some a, Some c ->
        checkb
          (Printf.sprintf "%s: AOT reduced %.2f <= CSA_OPT reduced %.2f + Dc"
             d.name a c)
          true
          (a <= c +. dc +. 1e-9)
      | None, _ | _, None ->
        Alcotest.fail "matrix strategies must report reduced arrival");
      checkb
        (Printf.sprintf "%s: AOT %.2f <= 1.03 * CSA_OPT %.2f" d.name
           aot.stats.delay csa.stats.delay)
        true
        (aot.stats.delay <= (csa.stats.delay *. 1.03) +. 1e-9))
    Dp_designs.Catalog.table1

let test_fa_alp_beats_random_on_table2 () =
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      let alp = Synth.run Strategy.Fa_alp d.env d.expr ~width:d.width in
      let random = Synth.run (Strategy.Fa_random 1) d.env d.expr ~width:d.width in
      checkb
        (Printf.sprintf "%s: ALP %.3f <= random %.3f" d.name alp.tree_switching
           random.tree_switching)
        true
        (alp.tree_switching <= random.tree_switching +. 1e-9))
    Dp_designs.Catalog.table2

let test_run_best_adder () =
  let d = Dp_designs.Catalog.kalman in
  let best = Synth.run_best_adder Strategy.Fa_aot d.env d.expr ~width:d.width in
  (* never slower than any single architecture, and still equivalent *)
  List.iter
    (fun adder ->
      let r = Synth.run ~adder Strategy.Fa_aot d.env d.expr ~width:d.width in
      checkb
        (Printf.sprintf "best %.2f <= %s %.2f" best.stats.delay
           (Dp_adders.Adder.name adder) r.stats.delay)
        true
        (best.stats.delay <= r.stats.delay +. 1e-9))
    Dp_adders.Adder.all;
  checkb "equivalent" true (Synth.verify ~trials:40 best d.expr = Ok ())

let test_fa3_strategy_equivalent () =
  let d = Dp_designs.Catalog.poly_mixed in
  let r = Synth.run Strategy.Fa_aot_fa3 d.env d.expr ~width:d.width in
  checkb "equivalent" true (Synth.verify ~trials:60 r d.expr = Ok ());
  (* the FA3 finish never keeps more than the HA finish *)
  let ha = Synth.run Strategy.Fa_aot d.env d.expr ~width:d.width in
  checkb "fa3 has fewer or equal HAs" true
    (r.stats.ha_count <= ha.stats.ha_count)

let test_natural_width_default () =
  let env = Dp_expr.Env.of_widths [ ("x", 3) ] in
  let expr = Dp_expr.Parse.expr "x^2" in
  let r = Synth.run Strategy.Fa_aot env expr in
  checki "width 6" 6 r.width

let test_strategy_names_roundtrip () =
  List.iter
    (fun s ->
      match Strategy.of_name (Strategy.name s) with
      | Some _ -> ()
      | None ->
        (* FA_random's printed name carries its seed and is not parseable;
           everything else must roundtrip *)
        (match s with
        | Strategy.Fa_random _ -> ()
        | _ -> Alcotest.failf "name %s not parsed" (Strategy.name s)))
    all_strategies

(* ------------------------------------------------------------------ *)
(* Reports *)

let test_report_table_alignment () =
  let t =
    Report.table
      ~header:[ "design"; "delay" ]
      ~rows:[ [ "IIR"; "3.68" ]; [ "Kalman-very-long"; "4.5" ] ]
  in
  let lines = String.split_on_char '\n' t in
  (match lines with
  | header :: sep :: _ ->
    checki "aligned" (String.length header) (String.length sep)
  | _ -> Alcotest.fail "too short");
  Alcotest.check_raises "ragged" (Invalid_argument "Report.table: ragged rows")
    (fun () -> ignore (Report.table ~header:[ "a" ] ~rows:[ [ "x"; "y" ] ]))

let test_report_improvement () =
  checkf "50%" 50.0 (Report.improvement ~baseline:10.0 ~ours:5.0);
  checkf "zero baseline" 0.0 (Report.improvement ~baseline:0.0 ~ours:5.0);
  checkb "negative when worse" true (Report.improvement ~baseline:5.0 ~ours:10.0 < 0.0)

(* ------------------------------------------------------------------ *)
(* Designs catalog *)

let test_catalog_well_formed () =
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      Dp_expr.Env.check_covers d.expr d.env;
      checkb (d.name ^ " width sane") true (d.width >= 1 && d.width <= 62))
    Dp_designs.Catalog.all

let test_catalog_widths_match_paper () =
  checki "IIR 16-bit" 16 Dp_designs.Catalog.iir.width;
  checki "Kalman 32-bit" 32 Dp_designs.Catalog.kalman.width;
  checki "IDCT 32-bit" 32 Dp_designs.Catalog.idct.width;
  checki "Complex 32-bit" 32 Dp_designs.Catalog.complex.width;
  checki "Serial-Adapter 16-bit" 16 Dp_designs.Catalog.serial_adapter.width

let test_catalog_find () =
  checkb "finds iir" true (Dp_designs.Catalog.find "iir" <> None);
  checkb "unknown" true (Dp_designs.Catalog.find "nope" = None)

let test_table2_has_random_probs () =
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      let has_nonuniform =
        List.exists
          (fun (_, (info : Dp_expr.Env.var_info)) ->
            Array.exists (fun p -> Float.abs (p -. 0.5) > 1e-9) info.prob)
          (Dp_expr.Env.bindings d.env)
      in
      checkb (d.name ^ " nonuniform probs") true has_nonuniform)
    Dp_designs.Catalog.table2

let test_verilog_emits_for_designs () =
  List.iter
    (fun (d : Dp_designs.Design.t) ->
      let r = Synth.run Strategy.Fa_aot d.env d.expr ~width:d.width in
      let v = Dp_netlist.Verilog.emit r.netlist in
      checkb (d.name ^ " nonempty verilog") true (String.length v > 200))
    [ Dp_designs.Catalog.iir; Dp_designs.Catalog.complex ]

let suite =
  [
    case "every strategy x every design is equivalent"
      test_all_strategies_all_designs_equivalent;
    case "every final adder is equivalent" test_all_final_adders_equivalent;
    case "FA_AOT beats Conventional on every Table-1 design"
      test_fa_aot_beats_conventional_on_every_design;
    case "FA_AOT never slower than CSA_OPT" test_fa_aot_never_slower_than_csa_opt;
    case "FA_ALP beats FA_random on every Table-2 design"
      test_fa_alp_beats_random_on_table2;
    case "run_best_adder dominates each architecture" test_run_best_adder;
    case "FA3 finish strategy equivalent" test_fa3_strategy_equivalent;
    case "natural width default" test_natural_width_default;
    case "strategy names roundtrip" test_strategy_names_roundtrip;
    case "report: table alignment" test_report_table_alignment;
    case "report: improvement" test_report_improvement;
    case "catalog: designs well-formed" test_catalog_well_formed;
    case "catalog: paper output widths" test_catalog_widths_match_paper;
    case "catalog: find by name" test_catalog_find;
    case "catalog: table 2 has random probabilities" test_table2_has_random_probs;
    case "verilog emits for designs" test_verilog_emits_for_designs;
  ]
