(** Arbitrary-precision integers — the fuzzer's {e independent} reference
    semantics.

    [Dp_expr.Eval] is itself part of the system under test: equivalence
    checking ([Dp_sim.Equiv]) compares netlists against it, so a shared
    bug in the native-int evaluator and the lowering would cancel out.
    The oracle therefore re-evaluates every fuzzed expression with this
    self-contained bignum (no external dependency; sign-magnitude,
    base-2^16 limbs) and cross-checks {e both} the netlist and
    [Eval.eval_mod] against it. *)

type t

val zero : t
val one : t
val of_int : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** @raise Invalid_argument on a negative exponent. *)
val pow : t -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int

(** [Some v] iff the value fits a native [int] exactly. *)
val to_int_opt : t -> int option

(** Decimal rendering. *)
val to_string : t -> string

(** Two's-complement bit pattern of the value modulo [2^width], LSB
    first — the semantics a [width]-bit datapath realizes.
    @raise Invalid_argument on a non-positive width. *)
val to_bits : width:int -> t -> bool array

(** The pattern of {!to_bits} packed into a native int.
    @raise Invalid_argument if [width] exceeds 62. *)
val to_int_mod : width:int -> t -> int

(** Evaluate an expression under a bignum assignment. *)
val eval : (string -> t) -> Dp_expr.Ast.t -> t
