type predicate = Case.t -> Dp_diag.Diag.t option

(* ------------------------------------------------------------------ *)
(* One-step expression reductions.  Every candidate either strictly
   shrinks the AST or replaces a leaf one-way (Var -> Const 0 -> gone),
   so the accept loop terminates without a fuel budget in practice. *)

let rec expr_reductions (e : Dp_expr.Ast.t) : Dp_expr.Ast.t list =
  let open Dp_expr.Ast in
  let wrap mk = List.map mk in
  let local =
    match e with
    | Var _ -> [ Const 0; Const 1 ]
    | Const 0 -> []
    | Const _ -> [ Const 0 ]
    | Add (a, b) | Sub (a, b) | Mul (a, b) -> [ a; b ]
    | Neg a -> [ a ]
    | Pow (a, n) -> a :: (if n > 1 then [ Pow (a, Stdlib.( - ) n 1) ] else [])
  in
  let deeper =
    match e with
    | Var _ | Const _ -> []
    | Add (a, b) ->
      wrap (fun a' -> Add (a', b)) (expr_reductions a)
      @ wrap (fun b' -> Add (a, b')) (expr_reductions b)
    | Sub (a, b) ->
      wrap (fun a' -> Sub (a', b)) (expr_reductions a)
      @ wrap (fun b' -> Sub (a, b')) (expr_reductions b)
    | Mul (a, b) ->
      wrap (fun a' -> Mul (a', b)) (expr_reductions a)
      @ wrap (fun b' -> Mul (a, b')) (expr_reductions b)
    | Neg a -> wrap (fun a' -> Neg a') (expr_reductions a)
    | Pow (a, n) -> wrap (fun a' -> Pow (a', n)) (expr_reductions a)
  in
  local @ deeper

(* ------------------------------------------------------------------ *)
(* Case-level candidates, big wins first. *)

let replace_port (case : Case.t) i port =
  { case with ports = List.mapi (fun j p -> if i = j then port else p) case.ports }

let replace_var (case : Case.t) i v =
  { case with vars = List.mapi (fun j w -> if i = j then v else w) case.vars }

let candidates (case : Case.t) : Case.t list =
  let drop_ports =
    if List.length case.ports <= 1 then []
    else
      List.mapi (fun i _ -> { case with ports = List.filteri (fun j _ -> j <> i) case.ports })
        case.ports
  in
  let shrink_exprs =
    List.concat
      (List.mapi
         (fun i (name, e, w) ->
           List.map (fun e' -> replace_port case i (name, e', w)) (expr_reductions e))
         case.ports)
  in
  let shrink_port_widths =
    List.concat
      (List.mapi
         (fun i (name, e, w) ->
           if w <= 1 then []
           else
             [ replace_port case i (name, e, max 1 (w / 2));
               replace_port case i (name, e, w - 1) ])
         case.ports)
  in
  let shrink_var_widths =
    List.concat
      (List.mapi
         (fun i (v : Case.var_spec) ->
           if v.width <= 1 then []
           else
             [ replace_var case i { v with width = max 1 (v.width / 2) };
               replace_var case i { v with width = v.width - 1 } ])
         case.vars)
  in
  let neutralize_attrs =
    List.concat
      (List.mapi
         (fun i (v : Case.var_spec) ->
           (if v.signed then [ replace_var case i { v with signed = false } ] else [])
           @ (if v.arrival <> 0.0 then [ replace_var case i { v with arrival = 0.0 } ] else [])
           @
           if v.prob <> 0.5 then [ replace_var case i { v with prob = 0.5 } ] else [])
         case.vars)
  in
  let drop_unused =
    let dropped = Case.drop_unused_vars case in
    if List.length dropped.vars < List.length case.vars then [ dropped ] else []
  in
  (* Also offer each unused variable individually: dropping all of them
     at once can flip the predicate (e.g. one that counts variables by
     width) where dropping one at a time would not. *)
  let drop_unused_single =
    let used = Case.used_vars case in
    List.concat
      (List.mapi
         (fun i (v : Case.var_spec) ->
           if List.mem v.name used then []
           else [ { case with vars = List.filteri (fun j _ -> j <> i) case.vars } ])
         case.vars)
  in
  drop_ports @ shrink_exprs @ drop_unused @ drop_unused_single
  @ shrink_port_widths @ shrink_var_widths @ neutralize_attrs

let minimize ?(max_steps = 2000) ~(test : predicate) case =
  let code, diag0 =
    match test case with
    | Some d -> (d.Dp_diag.Diag.code, d)
    | None -> invalid_arg "Shrink.minimize: case does not fail"
  in
  let rec go case diag steps =
    if steps >= max_steps then (case, diag)
    else
      let rec first = function
        | [] -> None
        | c :: rest -> (
          match test c with
          | Some d when d.Dp_diag.Diag.code = code -> Some (c, d)
          | _ -> first rest)
      in
      match first (candidates case) with
      | Some (c, d) -> go c d (steps + 1)
      | None -> (case, diag)
  in
  go case diag0 0
