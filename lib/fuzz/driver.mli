(** The fuzz loop: generate → oracle → shrink → corpus, plus the
    fault-injection adversary and corpus replay.

    Fault injection closes the loop on PR 1's [Dp_verify.Inject]: a
    synthesized-then-corrupted netlist must be caught by the structural
    lint or by divergence from the {!Bigval} reference.  An escaped
    fault is itself a finding ([DP-FUZZ005]); a caught fault can be
    shrunk into a corpus entry ([DP-FUZZ006]) that regression-tests the
    checkers' teeth on every replay. *)

type config = {
  seed : int;
  cases : int;
  gen : Gen.config;
  oracle : Oracle.config;
  inject_every : int;  (** corrupt every Nth single-output case; 0 = off *)
  tech_every : int;  (** synthesize every Nth case under a random tech; 0 = off *)
  corpus_dir : string option;  (** save shrunken findings here *)
  log : string -> unit;  (** progress sink ([ignore] for silence) *)
}

val default_config : config

type finding = {
  case : Case.t;  (** as generated *)
  failure : Oracle.failure;
  shrunk : Case.t;
  shrunk_diag : Dp_diag.Diag.t;
  saved : string option;  (** corpus path, when [corpus_dir] is set *)
}

type report = {
  executed : int;
  passed : int;
  bounded : int;  (** budget-rejected cases — graceful, not failures *)
  injected : int;
  injected_caught : int;
  findings : finding list;
}

val pp_report : report Fmt.t

(** Run the loop.  Deterministic for a fixed config. *)
val run : config -> report

(** Apply [mutation] (with [mseed]) to the case synthesized under the
    first strategy/adder of the oracle config; report how the corruption
    was detected.  [`Escaped diag] carries a [DP-FUZZ005] diagnostic. *)
val fault_detected :
  ?oracle:Oracle.config -> mutation:Dp_verify.Inject.mutation -> mseed:int ->
  Case.t ->
  [ `Caught_by_lint of string
  | `Caught_by_divergence of string
  | `No_site
  | `Not_synthesizable of Dp_diag.Diag.t
  | `Neutral of string
    (** the mutation provably did not change the function (equivalent
        over the exhaustive input space) — a redundant site, not an
        escape *)
  | `Escaped of Dp_diag.Diag.t ]

(** Shrink a case whose injected fault {e is} detected to a locally
    minimal one where it still is, packaged as a corpus entry
    (code [DP-FUZZ006]).  [Error] if the fault is not detected on the
    initial case. *)
val shrink_detected_fault :
  ?oracle:Oracle.config -> mutation:Dp_verify.Inject.mutation -> mseed:int ->
  Case.t -> (Corpus.entry, Dp_diag.Diag.t) result

(** Replay one corpus entry: plain entries must pass the oracle
    (budget-bounded counts as passing), [inject] entries must have their
    fault detected. *)
val replay : ?oracle:Oracle.config -> Corpus.entry -> (unit, Dp_diag.Diag.t) result

(** Replay every [*.repro] under a directory; returns the failing
    entries' paths and diagnostics. *)
val replay_dir :
  ?oracle:Oracle.config -> string ->
  (int, (string * Dp_diag.Diag.t) list) result
