type config = {
  max_size : int;
  max_vars : int;
  max_width : int;
  multi_every : int;
  allow_signed : bool;
  crypto_every : int;
}

let default_config =
  {
    max_size = 14;
    max_vars = 4;
    max_width = 8;
    multi_every = 7;
    allow_signed = true;
    (* 0 keeps the historic case stream byte-for-byte: seeded corpora and
       the CI smoke schedule must not shift under a generator upgrade. *)
    crypto_every = 0;
  }

let crypto_config =
  { default_config with max_vars = 6; max_width = 48; crypto_every = 3 }

(* ------------------------------------------------------------------ *)
(* Saturating width estimate (upper bound on the natural width). *)

let wcap = 1000
let wsat x = if x > wcap then wcap else x

let bits_of_const c =
  let rec go n v = if v = 0 then max 1 n else go (n + 1) (v lsr 1) in
  go 0 (abs c) + if c < 0 then 1 else 0

let rec width_estimate widths = function
  | Dp_expr.Ast.Var x ->
    (match List.assoc_opt x widths with Some w -> w | None -> 1)
  | Dp_expr.Ast.Const c -> bits_of_const c
  | Dp_expr.Ast.Add (a, b) | Dp_expr.Ast.Sub (a, b) ->
    wsat (1 + max (width_estimate widths a) (width_estimate widths b))
  | Dp_expr.Ast.Neg a -> wsat (1 + width_estimate widths a)
  | Dp_expr.Ast.Mul (a, b) ->
    wsat (width_estimate widths a + width_estimate widths b)
  | Dp_expr.Ast.Pow (a, n) -> wsat (max 1 (n * width_estimate widths a))

(* ------------------------------------------------------------------ *)
(* Hazard-biased pools *)

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* Width-1 variables head the pool: they are the classic boundary where
   MSB-carry dropping, signedness and CSD recoding interact. *)
let width_pool = [ 1; 1; 1; 2; 2; 3; 4; 5; 6; 8 ]

(* 0 and ±1 coefficients short-circuit lowering paths; small odd values
   exercise CSD digits of both signs. *)
let const_pool = [ 0; 1; 1; -1; 2; 3; -3; 5; 7; -7; 10; 15 ]

let gen_prob rng =
  match Random.State.int rng 10 with
  | 0 | 1 -> 0.0
  | 2 | 3 -> 1.0
  | 4 | 5 -> 0.5
  | _ -> Float.of_int (Random.State.int rng 101) /. 100.0

let gen_arrival rng =
  if Random.State.bool rng then 0.0
  else Float.of_int (Random.State.int rng 17) /. 4.0

let gen_vars cfg rng =
  let n = 1 + Random.State.int rng cfg.max_vars in
  List.init n (fun i ->
      let name = Printf.sprintf "v%d" i in
      {
        Case.name;
        width = min cfg.max_width (pick rng width_pool);
        signed = cfg.allow_signed && Random.State.int rng 5 = 0;
        arrival = gen_arrival rng;
        prob = gen_prob rng;
      })

(* Crypto envelope: limb-sized operands (16-48 bits, the widths modular
   reductions and MAC accumulators actually use) with a much stronger
   signed bias — wNAF digit vectors are signed by construction. *)
let crypto_width_pool = [ 16; 24; 28; 32; 32; 48 ]

let gen_crypto_vars cfg rng =
  let n = 2 + Random.State.int rng (max 1 (cfg.max_vars - 1)) in
  List.init n (fun i ->
      let name = Printf.sprintf "v%d" i in
      {
        Case.name;
        width = min cfg.max_width (pick rng crypto_width_pool);
        signed = cfg.allow_signed && Random.State.int rng 2 = 0;
        arrival = gen_arrival rng;
        prob = gen_prob rng;
      })

(* ------------------------------------------------------------------ *)
(* Expressions *)

let gen_leaf rng names =
  if Random.State.int rng 10 < 7 then Dp_expr.Ast.Var (pick rng names)
  else Dp_expr.Ast.Const (pick rng const_pool)

let rec gen_expr rng names size =
  if size <= 1 then gen_leaf rng names
  else
    match Random.State.int rng 20 with
    | 0 | 1 | 2 | 3 | 4 ->
      let l = Random.State.int rng (size - 1) + 1 in
      Dp_expr.Ast.Add (gen_expr rng names (l - 1), gen_expr rng names (size - l))
    | 5 | 6 | 7 ->
      let l = Random.State.int rng (size - 1) + 1 in
      Dp_expr.Ast.Sub (gen_expr rng names (l - 1), gen_expr rng names (size - l))
    | 8 | 9 | 10 | 11 ->
      let l = Random.State.int rng (size - 1) + 1 in
      Dp_expr.Ast.Mul (gen_expr rng names (l - 1), gen_expr rng names (size - l))
    | 12 ->
      Dp_expr.Ast.Neg (gen_expr rng names (size - 1))
    | 13 ->
      Dp_expr.Ast.Pow (gen_expr rng names ((size - 1) / 2), 2 + Random.State.int rng 2)
    | 14 | 15 | 16 ->
      (* deep multiply chain — the hazard the paper's trees are deepest on *)
      let links = 2 + Random.State.int rng 3 in
      let rec chain acc k =
        if k = 0 then acc
        else chain (Dp_expr.Ast.Mul (acc, gen_leaf rng names)) (k - 1)
      in
      chain (gen_leaf rng names) (min links (size - 1))
    | _ -> gen_leaf rng names

(* Deep MAC chain — acc + x*y + x*y + ...: the crypto hazard of many
   wide partial-product blocks reduced into a single accumulation. *)
let gen_mac_chain rng names size =
  let terms = 2 + Random.State.int rng (max 1 (size / 3)) in
  let rec go acc k =
    if k = 0 then acc
    else
      go
        (Dp_expr.Ast.Add
           (acc, Dp_expr.Ast.Mul (gen_leaf rng names, gen_leaf rng names)))
        (k - 1)
  in
  go (gen_leaf rng names) terms

(* wNAF-style chain — an alternating-sign sum of small-odd-coefficient
   terms, the shape windowed scalar recoding lowers to. *)
let wnaf_pool = [ 3; -3; 5; -5; 7; -7; 9; -9; 15; -15 ]

let gen_wnaf_chain rng names size =
  let terms = 2 + Random.State.int rng (max 1 (size / 2)) in
  let term () =
    Dp_expr.Ast.Mul
      (Dp_expr.Ast.Const (pick rng wnaf_pool), Dp_expr.Ast.Var (pick rng names))
  in
  let rec go acc k =
    if k = 0 then acc
    else
      go
        (if Random.State.bool rng then Dp_expr.Ast.Add (acc, term ())
         else Dp_expr.Ast.Sub (acc, term ()))
        (k - 1)
  in
  go (term ()) terms

let gen_crypto_expr rng names size =
  match Random.State.int rng 4 with
  | 0 | 1 -> gen_mac_chain rng names size
  | 2 -> gen_wnaf_chain rng names size
  | _ -> gen_expr rng names size

(* Regenerate until the estimated natural width fits the flow's 62-bit
   ceiling; shrink the size budget on each failed attempt so termination
   does not depend on luck. *)
let gen_fitting rng gen (vars : Case.var_spec list) size =
  let names = List.map (fun (v : Case.var_spec) -> v.name) vars in
  let widths = List.map (fun (v : Case.var_spec) -> (v.name, v.width)) vars in
  let rec go size attempts =
    let e = gen rng names size in
    if width_estimate widths e <= 60 then e
    else if attempts >= 8 then Dp_expr.Ast.Var (List.hd names)
    else go (max 2 (size * 2 / 3)) (attempts + 1)
  in
  (go size 0, widths)

let gen_port_width rng widths e =
  let est = min 62 (width_estimate widths e) in
  match Random.State.int rng 10 with
  | 0 | 1 -> min 62 (est + 1 + Random.State.int rng 3) (* padded *)
  | 2 | 3 when est > 1 -> 1 + Random.State.int rng est (* truncated *)
  | _ -> est

let case ?(config = default_config) rng i =
  let crypto =
    config.crypto_every > 0
    && i mod config.crypto_every = config.crypto_every - 1
  in
  let vars =
    if crypto then gen_crypto_vars config rng else gen_vars config rng
  in
  let multi =
    config.multi_every > 0 && i mod config.multi_every = config.multi_every - 1
  in
  let port name size =
    let gen = if crypto then gen_crypto_expr else gen_expr in
    let e, widths = gen_fitting rng gen vars size in
    (name, e, gen_port_width rng widths e)
  in
  let case =
    if multi then
      let n = 2 + Random.State.int rng 2 in
      {
        Case.vars;
        ports =
          List.init n (fun k ->
              port (Printf.sprintf "out%d" k) (max 2 (config.max_size / 2)));
      }
    else { Case.vars; ports = [ port "out" (2 + Random.State.int rng (max 1 (config.max_size - 1))) ] }
  in
  Case.drop_unused_vars case

(* ------------------------------------------------------------------ *)
(* Technologies *)

let tech rng =
  let f lo hi = lo +. ((hi -. lo) *. Random.State.float rng 1.0) in
  {
    Dp_tech.Tech.name = "fuzzed";
    fa_sum_delay = f 0.1 2.0;
    fa_carry_delay = f 0.05 1.5;
    ha_sum_delay = f 0.05 1.0;
    ha_carry_delay = f 0.05 1.0;
    and2_delay = f 0.02 0.8;
    or2_delay = f 0.02 0.8;
    xor2_delay = f 0.05 1.0;
    not_delay = f 0.01 0.4;
    buf_delay = f 0.01 0.4;
    fa_area = f 1.0 12.0;
    ha_area = f 0.5 8.0;
    and2_area = f 0.2 3.0;
    or2_area = f 0.2 3.0;
    xor2_area = f 0.3 4.0;
    not_area = f 0.1 1.5;
    buf_area = f 0.1 1.5;
    fa_sum_energy = f 0.01 1.0;
    fa_carry_energy = f 0.01 1.0;
    ha_sum_energy = f 0.01 0.8;
    ha_carry_energy = f 0.01 0.8;
    gate_energy = f 0.005 0.5;
    counter_fusion = f 0.5 1.0;
  }
