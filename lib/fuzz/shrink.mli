(** Greedy delta-debugging over fuzz cases.

    [minimize ~test case] repeatedly tries structure-reducing rewrites —
    drop an output port, hoist a subexpression over its parent, zero a
    coefficient, halve a width, neutralize an arrival/probability/sign
    attribute, drop an unused variable — accepting a rewrite whenever
    the reduced case {e still fails with the same diagnostic code}, until
    no rewrite is accepted.  The result is locally minimal: every single
    rewrite either passes or fails differently. *)

(** [test c] is [Some diag] iff [c] fails. *)
type predicate = Case.t -> Dp_diag.Diag.t option

(** @raise Invalid_argument if [test case] already passes.  Returns the
    minimized case and the diagnostic it still fails with.  [max_steps]
    (default 2000) bounds accepted rewrites as a termination backstop. *)
val minimize :
  ?max_steps:int -> test:predicate -> Case.t -> Case.t * Dp_diag.Diag.t
