(** A fuzz case: a variable environment plus one or more output ports.

    Cases deliberately mirror what the [dpsyn] command line can express
    (uniform per-variable arrival/probability, widths with an ['s']
    signedness suffix), so every failure the fuzzer finds prints as a
    ready-to-paste [dpsyn synth] / [dpsyn synth-multi] invocation. *)

type var_spec = {
  name : string;
  width : int;
  signed : bool;
  arrival : float;  (** uniform over all bits *)
  prob : float;  (** uniform 1-probability over all bits *)
}

type t = {
  vars : var_spec list;
  ports : (string * Dp_expr.Ast.t * int) list;
      (** name, expression, synthesis width (within [1, 62]) *)
}

val make_var :
  ?signed:bool -> ?arrival:float -> ?prob:float -> string -> width:int ->
  var_spec

(** Single-output case on port ["out"]. *)
val single : ?vars:var_spec list -> Dp_expr.Ast.t -> width:int -> t

(** [Some (expr, width)] iff the case has exactly one port. *)
val single_port : t -> (Dp_expr.Ast.t * int) option

(** Environment with each spec bound uniformly.
    @raise Invalid_argument on invalid specs. *)
val env : t -> Dp_expr.Env.t

(** Distinct variables referenced by any port, sorted. *)
val used_vars : t -> string list

(** Drop specs no port references. *)
val drop_unused_vars : t -> t

(** [x:8s:0:0.5] — the CLI's [-v] syntax ([s] marks a signed width). *)
val var_spec_to_string : var_spec -> string

(** The inverse of {!var_spec_to_string}. *)
val var_spec_of_string : string -> (var_spec, string) result

(** A complete [dpsyn] command line reproducing the case outside the
    fuzzer: [dpsyn synth] for single-port cases, [dpsyn synth-multi]
    otherwise.  Strategy/adder default to "every pair diverges
    somewhere", so they are emitted only when given. *)
val synth_command :
  ?strategy:Dp_flow.Strategy.t -> ?adder:Dp_adders.Adder.kind -> t -> string

val equal : t -> t -> bool

(** Structural size: AST nodes over all ports plus one per variable —
    the quantity the shrinker drives down. *)
val size : t -> int

val pp : t Fmt.t
