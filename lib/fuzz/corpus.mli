(** Deterministic on-disk crash corpus.

    Each entry is one shrunken reproducer in a line-oriented text format
    ([#] comments, [key value] lines):

    {v
    # found by: dpsyn fuzz --seed 42 ...
    diag DP-FUZZ001
    var v0:1:0:0.5
    var v1:8s:2.5:1
    port out 9 = v0*v1 + 3
    strategy fa_aot
    adder cla
    inject rewire_input 7
    v}

    [var] uses the CLI's [-v] syntax; [port] is [name width = expr];
    [strategy]/[adder] pin the failing pair (omitted = the whole
    matrix); [diag] records the code the case exposed when captured;
    [inject] marks a fault-injection reproducer (replay applies the
    mutation and asserts it is {e detected}, regression-testing the
    checkers' teeth rather than the flow).

    Files under [test/corpus/] are replayed by [dune runtest]; parse
    failures carry [DP-CORPUS001], I/O failures [DP-CORPUS002]. *)

type entry = {
  case : Case.t;
  strategy : Dp_flow.Strategy.t option;
  adder : Dp_adders.Adder.kind option;
  inject : (Dp_verify.Inject.mutation * int) option;  (** mutation, seed *)
  diag_code : string option;  (** historical: what this exposed *)
  comment : string option;  (** first [#] line, e.g. the finding command *)
}

val entry :
  ?strategy:Dp_flow.Strategy.t -> ?adder:Dp_adders.Adder.kind ->
  ?inject:Dp_verify.Inject.mutation * int -> ?diag_code:string ->
  ?comment:string -> Case.t -> entry

val to_string : entry -> string
val of_string : string -> (entry, Dp_diag.Diag.t) result

val load_file : string -> (entry, Dp_diag.Diag.t) result

(** Every [*.repro] file in the directory, sorted by filename. *)
val load_dir : string -> ((string * entry) list, Dp_diag.Diag.t) result

(** Write the entry under [dir] (created, with parents, if missing) with
    a deterministic content-derived filename ([<code>-<hash>.repro]);
    returns the path. *)
val save : dir:string -> entry -> string
