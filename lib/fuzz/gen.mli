(** Seeded, size-parameterized random generation of fuzz cases and
    technology files.

    All randomness flows through the caller's [Random.State.t], so a
    fixed seed reproduces the exact case stream (the determinism the
    corpus and CI smoke job rely on).  Generation is biased toward the
    hazard zones hand-written tests undersample: width-1 variables,
    constant 0/±1 coefficients, deep multiply chains, extreme (0/1)
    signal probabilities, signed operands, and skewed arrival times. *)

type config = {
  max_size : int;  (** AST node budget per port *)
  max_vars : int;
  max_width : int;  (** per-variable width ceiling *)
  multi_every : int;  (** every Nth case is multi-output; 0 disables *)
  allow_signed : bool;
  crypto_every : int;
      (** every Nth case is drawn from the crypto envelope — limb-sized
          (16-48 bit) operands with a strong signed bias, deep MAC
          chains ([acc + x0*y0 + x1*y1 + ...]) and wNAF-style
          alternating-sign odd-coefficient sums; 0 disables *)
}

(** size 14, 4 vars, width 8, multi every 7, signed on, no crypto cases
    — byte-for-byte the historic case stream for any fixed seed. *)
val default_config : config

(** {!default_config} widened to the crypto envelope: 6 vars up to 48
    bits, every 3rd case crypto-shaped.  Crypto cases are far heavier
    than the default envelope's, so pair this with a {e tighter}
    {!Budget.t} (lower [timeout_s]/[max_rows]) — the point is to prove
    graceful bounded aborts at scale, not to synthesize every case. *)
val crypto_config : config

(** [case ~config rng i] generates the [i]-th case.  Expressions are
    regenerated until the estimated natural width fits the 62-bit flow
    ceiling, so every emitted case is synthesizable by construction. *)
val case : ?config:config -> Random.State.t -> int -> Case.t

(** A random but well-formed technology (positive delays/areas/energies),
    exercising timing/power models far from the defaults. *)
val tech : Random.State.t -> Dp_tech.Tech.t

(** Estimated output width of an expression (saturating upper bound on
    the natural width). *)
val width_estimate : (string * int) list -> Dp_expr.Ast.t -> int
