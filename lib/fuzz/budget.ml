type t = { timeout_s : float; max_cells : int; max_rows : int }

let default = { timeout_s = 5.0; max_cells = 200_000; max_rows = 4096 }
let unlimited = { timeout_s = 0.0; max_cells = 0; max_rows = 0 }

(* Saturating arithmetic: row estimates only need to be compared against
   a ceiling, so everything clamps at [cap]. *)
let cap = 1 lsl 40
let sat x = if x > cap then cap else x
let sat_add a b = sat (a + b)
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b

let bits_of_const c =
  let rec go n v = if v = 0 then max 1 n else go (n + 1) (v lsr 1) in
  go 0 (abs c)

(* Per subtree: (estimated addend rows, estimated value width in bits).
   A product of matrices of r_a x w_a and r_b x w_b addends yields about
   r_a * r_b * min(w_a, w_b) partial-product rows. *)
let rec rows_width widths = function
  | Dp_expr.Ast.Var x ->
    (1, match List.assoc_opt x widths with Some w -> w | None -> 1)
  | Dp_expr.Ast.Const c -> (1, bits_of_const c)
  | Dp_expr.Ast.Add (a, b) | Dp_expr.Ast.Sub (a, b) ->
    let ra, wa = rows_width widths a and rb, wb = rows_width widths b in
    (sat_add ra rb, sat (1 + max wa wb))
  | Dp_expr.Ast.Neg a ->
    let r, w = rows_width widths a in
    (r, sat (w + 1))
  | Dp_expr.Ast.Mul (a, b) ->
    let ra, wa = rows_width widths a and rb, wb = rows_width widths b in
    (sat_mul (sat_mul ra rb) (min wa wb), sat_add wa wb)
  | Dp_expr.Ast.Pow (a, n) ->
    let r, w = rows_width widths a in
    if n = 0 then (1, 1)
    else
      let rec go acc_r acc_w k =
        if k = 0 then (acc_r, acc_w)
        else go (sat_mul (sat_mul acc_r r) (min acc_w w)) (sat_add acc_w w) (k - 1)
      in
      go r w (n - 1)

let estimate_rows (case : Case.t) =
  let widths =
    List.map (fun (v : Case.var_spec) -> (v.name, v.width)) case.vars
  in
  List.fold_left
    (fun acc (_, e, _) -> max acc (fst (rows_width widths e)))
    0 case.ports

let check_static b case =
  if b.max_rows <= 0 then Ok ()
  else
    let rows = estimate_rows case in
    if rows <= b.max_rows then Ok ()
    else
      Error
        (Dp_diag.Diag.errorf ~code:"DP-BUDGET003" ~subsystem:"budget"
           ~context:
             [ ("estimated_rows", string_of_int rows);
               ("max_rows", string_of_int b.max_rows) ]
           "estimated addend matrix height %d exceeds the budget of %d rows"
           rows b.max_rows)

let check_cells b netlist =
  if b.max_cells <= 0 then Ok ()
  else
    let cells = Dp_netlist.Netlist.cell_count netlist in
    if cells <= b.max_cells then Ok ()
    else
      Error
        (Dp_diag.Diag.errorf ~code:"DP-BUDGET002" ~subsystem:"budget"
           ~context:
             [ ("cells", string_of_int cells);
               ("max_cells", string_of_int b.max_cells) ]
           "netlist has %d cells, over the budget of %d" cells b.max_cells)

(* A budget tightened so its wall-clock allowance also fits an absolute
   deadline: the request must finish by [deadline], so the effective
   timeout is the smaller of the configured budget and the time left.  A
   deadline already passed clamps to an (arbitrary, tiny) positive value
   rather than 0.0, which would *disable* the timer — callers should
   fail such requests fast instead of starting them, but a race between
   the check and the clamp must still time out, not run forever. *)
let clamp_deadline b ~now ~deadline =
  match deadline with
  | None -> b
  | Some d ->
    let remaining = Float.max (d -. now) 1e-3 in
    let timeout_s =
      if b.timeout_s <= 0.0 then remaining else Float.min b.timeout_s remaining
    in
    { b with timeout_s }

(* Reentrant wall-clock budgets over the single process-wide ITIMER_REAL.

   Every active [with_timeout] pushes a {e frame} (absolute deadline plus
   owning thread) onto a shared stack; the timer is always armed for the
   {e earliest} live deadline, so an inner budget can neither delay nor
   clobber an outer one.  The SIGALRM handler raises [Timed_out fid] only
   for a frame owned by the thread that happens to execute the handler;
   a deadline owned by another thread is flagged ([fired]) and the timer
   re-armed at a short interval until the owning thread — busy in
   synthesis, hence the likeliest to be interrupted — runs the handler
   itself or notices the flag on exit.  Each [with_timeout] catches only
   its own frame id, so a nested (outer) expiry unwinds {e through} the
   inner budget and is converted at the right level. *)

exception Timed_out of int

type frame = {
  fid : int;
  deadline : float;  (** absolute, Unix.gettimeofday clock *)
  tid : int;  (** Thread.id of the owner *)
  mutable fired : bool;
}

(* Innermost-first stack of live frames.  Updated by whole-list swaps
   under [lock]; the signal handler only reads the list (one atomic
   pointer load) and mutates [fired] flags, so it never takes the lock. *)
let frames : frame list ref = ref []
let lock = Mutex.create ()
let next_fid = ref 0

(* Timer value and SIGALRM behavior found before the first frame was
   pushed, restored when the last one pops. *)
let saved : (Unix.interval_timer_status * Sys.signal_behavior) option ref =
  ref None

let set_timer seconds =
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_value = seconds; it_interval = 0.0 })

(* Arm for the earliest live deadline (never 0, which would disable). *)
let arm () =
  match !frames with
  | [] -> set_timer 0.0
  | fs ->
    let now = Unix.gettimeofday () in
    let earliest =
      List.fold_left (fun acc f -> Float.min acc f.deadline) infinity fs
    in
    set_timer (Float.max (earliest -. now) 1e-4)

let on_alarm _ =
  let now = Unix.gettimeofday () in
  let expired = List.filter (fun f -> f.deadline <= now) !frames in
  List.iter (fun f -> f.fired <- true) expired;
  let self = Thread.id (Thread.self ()) in
  match List.find_opt (fun f -> f.tid = self) expired with
  | Some f -> raise (Timed_out f.fid)
  | None ->
    (* Early wake-up, or the expired frame belongs to another thread:
       re-arm — quickly in the foreign case, so the signal soon lands in
       the owning thread. *)
    if expired = [] then arm () else set_timer 5e-4

let enter timeout_s =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  if !frames = [] then begin
    let h = Sys.signal Sys.sigalrm (Sys.Signal_handle on_alarm) in
    let t = Unix.getitimer Unix.ITIMER_REAL in
    saved := Some (t, h)
  end;
  incr next_fid;
  let f =
    {
      fid = !next_fid;
      deadline = Unix.gettimeofday () +. timeout_s;
      tid = Thread.id (Thread.self ());
      fired = false;
    }
  in
  frames := f :: !frames;
  arm ();
  f

let leave fr =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  frames := List.filter (fun g -> g.fid <> fr.fid) !frames;
  match (!frames, !saved) with
  | [], Some (t, h) ->
    ignore (Unix.setitimer Unix.ITIMER_REAL t);
    Sys.set_signal Sys.sigalrm h;
    saved := None
  | _ -> arm ()

let with_timeout b f =
  if b.timeout_s <= 0.0 then f ()
  else begin
    let fr = enter b.timeout_s in
    (* Our own deadline may expire inside [leave] itself; that raise is
       equivalent to the flag check that follows, so absorb it. *)
    let finish () = try leave fr with Timed_out id when id = fr.fid -> () in
    let budget_exceeded () =
      Dp_diag.Diag.fail
        (Dp_diag.Diag.errorf ~code:"DP-BUDGET001" ~subsystem:"budget"
           ~context:[ ("timeout_s", Fmt.str "%g" b.timeout_s) ]
           "synthesis exceeded the %gs wall-clock budget" b.timeout_s)
    in
    match f () with
    | v ->
      finish ();
      (* The alarm may have fired inside an exception-swallowing wrapper
         (e.g. [Synth.run_res]'s catch-all); the flag still records it. *)
      if fr.fired then budget_exceeded () else v
    | exception Timed_out id when id = fr.fid ->
      finish ();
      budget_exceeded ()
    | exception e ->
      finish ();
      if fr.fired then budget_exceeded () else raise e
  end
