type t = { timeout_s : float; max_cells : int; max_rows : int }

let default = { timeout_s = 5.0; max_cells = 200_000; max_rows = 4096 }
let unlimited = { timeout_s = 0.0; max_cells = 0; max_rows = 0 }

(* Saturating arithmetic: row estimates only need to be compared against
   a ceiling, so everything clamps at [cap]. *)
let cap = 1 lsl 40
let sat x = if x > cap then cap else x
let sat_add a b = sat (a + b)
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b

let bits_of_const c =
  let rec go n v = if v = 0 then max 1 n else go (n + 1) (v lsr 1) in
  go 0 (abs c)

(* Per subtree: (estimated addend rows, estimated value width in bits).
   A product of matrices of r_a x w_a and r_b x w_b addends yields about
   r_a * r_b * min(w_a, w_b) partial-product rows. *)
let rec rows_width widths = function
  | Dp_expr.Ast.Var x ->
    (1, match List.assoc_opt x widths with Some w -> w | None -> 1)
  | Dp_expr.Ast.Const c -> (1, bits_of_const c)
  | Dp_expr.Ast.Add (a, b) | Dp_expr.Ast.Sub (a, b) ->
    let ra, wa = rows_width widths a and rb, wb = rows_width widths b in
    (sat_add ra rb, sat (1 + max wa wb))
  | Dp_expr.Ast.Neg a ->
    let r, w = rows_width widths a in
    (r, sat (w + 1))
  | Dp_expr.Ast.Mul (a, b) ->
    let ra, wa = rows_width widths a and rb, wb = rows_width widths b in
    (sat_mul (sat_mul ra rb) (min wa wb), sat_add wa wb)
  | Dp_expr.Ast.Pow (a, n) ->
    let r, w = rows_width widths a in
    if n = 0 then (1, 1)
    else
      let rec go acc_r acc_w k =
        if k = 0 then (acc_r, acc_w)
        else go (sat_mul (sat_mul acc_r r) (min acc_w w)) (sat_add acc_w w) (k - 1)
      in
      go r w (n - 1)

let estimate_rows (case : Case.t) =
  let widths =
    List.map (fun (v : Case.var_spec) -> (v.name, v.width)) case.vars
  in
  List.fold_left
    (fun acc (_, e, _) -> max acc (fst (rows_width widths e)))
    0 case.ports

let check_static b case =
  if b.max_rows <= 0 then Ok ()
  else
    let rows = estimate_rows case in
    if rows <= b.max_rows then Ok ()
    else
      Error
        (Dp_diag.Diag.errorf ~code:"DP-BUDGET003" ~subsystem:"budget"
           ~context:
             [ ("estimated_rows", string_of_int rows);
               ("max_rows", string_of_int b.max_rows) ]
           "estimated addend matrix height %d exceeds the budget of %d rows"
           rows b.max_rows)

let check_cells b netlist =
  if b.max_cells <= 0 then Ok ()
  else
    let cells = Dp_netlist.Netlist.cell_count netlist in
    if cells <= b.max_cells then Ok ()
    else
      Error
        (Dp_diag.Diag.errorf ~code:"DP-BUDGET002" ~subsystem:"budget"
           ~context:
             [ ("cells", string_of_int cells);
               ("max_cells", string_of_int b.max_cells) ]
           "netlist has %d cells, over the budget of %d" cells b.max_cells)

exception Timed_out

let with_timeout b f =
  if b.timeout_s <= 0.0 then f ()
  else begin
    let timed_out = ref false in
    let old_handler =
      Sys.signal Sys.sigalrm
        (Sys.Signal_handle
           (fun _ ->
             timed_out := true;
             raise Timed_out))
    in
    let old_timer =
      Unix.setitimer Unix.ITIMER_REAL
        { Unix.it_value = b.timeout_s; it_interval = 0.0 }
    in
    let restore () =
      ignore (Unix.setitimer Unix.ITIMER_REAL old_timer);
      Sys.set_signal Sys.sigalrm old_handler
    in
    let budget_exceeded () =
      Dp_diag.Diag.fail
        (Dp_diag.Diag.errorf ~code:"DP-BUDGET001" ~subsystem:"budget"
           ~context:[ ("timeout_s", Fmt.str "%g" b.timeout_s) ]
           "synthesis exceeded the %gs wall-clock budget" b.timeout_s)
    in
    match f () with
    | v ->
      restore ();
      (* The alarm may have fired inside an exception-swallowing wrapper
         (e.g. [Synth.run_res]'s catch-all); the flag still records it. *)
      if !timed_out then budget_exceeded () else v
    | exception Timed_out ->
      restore ();
      budget_exceeded ()
    | exception e ->
      restore ();
      if !timed_out then budget_exceeded () else raise e
  end
