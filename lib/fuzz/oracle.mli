(** The differential oracle: one fuzz case through every reduction
    strategy × final adder under the strict integrity gate, simulated
    against the {!Bigval} reference, with STA/power annotations
    cross-checked.

    Failure diagnostics: [DP-FUZZ001] functional divergence,
    [DP-FUZZ002] timing-annotation inconsistency, [DP-FUZZ003]
    power-annotation inconsistency, [DP-FUZZ004] native/bignum evaluator
    disagreement, plus whatever typed diagnostic an unexpected synthesis
    rejection carries (including [DP-INTERNAL] for converted crashes).
    Budget trips ([DP-BUDGET-*]) are reported as {!Bounded}, not
    failures — a graceful rejection is the budget working as designed. *)

type config = {
  strategies : Dp_flow.Strategy.t list;
  adders : Dp_adders.Adder.kind list;
  trials : int;  (** random assignments per strategy × adder pair *)
  seed : int;  (** assignment-stream seed *)
  budget : Budget.t;
  tech : Dp_tech.Tech.t option;  (** [None] = the default technology *)
}

(** Every strategy, every adder, 24 trials, {!Budget.default}. *)
val default_config : config

type failure = {
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  diag : Dp_diag.Diag.t;
}

type outcome =
  | Pass
  | Bounded of Dp_diag.Diag.t  (** rejected by a resource budget *)
  | Fail of failure

val pp_outcome : outcome Fmt.t

(** Check one case across the whole strategy × adder matrix; the first
    failure wins.  Never raises. *)
val check : ?config:config -> Case.t -> outcome

(** {!check} as a shrinker predicate: [Some diag] iff the case fails. *)
val test : ?config:config -> Case.t -> Dp_diag.Diag.t option

(** [diverges ~seed ~trials case port width netlist] — does the netlist
    disagree with the {!Bigval} reference on any probed assignment?
    Exposed for the fault-injection loop, where the netlist has been
    corrupted {e after} synthesis.  A simulation crash on a corrupted
    netlist counts as divergence. *)
val diverges :
  ?seed:int -> ?trials:int -> Case.t -> port:string -> width:int ->
  Dp_netlist.Netlist.t -> bool

(** {!diverges} over a caller-supplied assignment list. *)
val diverges_on :
  Case.t -> port:string -> width:int -> Dp_netlist.Netlist.t ->
  (string * int) list list -> bool

(** Every assignment of the case's input space, LSB-first per variable —
    [None] when the space exceeds 2^16 vectors.  With this list,
    {!diverges_on} returning [false] {e proves} equivalence, which the
    fault-injection loop uses to tell a genuinely escaped fault from a
    mutation that landed on a redundant site (e.g. rewiring a
    sign-extension replica to an equal-valued net). *)
val all_assignments : Case.t -> (string * int) list list option
