type var_spec = {
  name : string;
  width : int;
  signed : bool;
  arrival : float;
  prob : float;
}

type t = {
  vars : var_spec list;
  ports : (string * Dp_expr.Ast.t * int) list;
}

let make_var ?(signed = false) ?(arrival = 0.0) ?(prob = 0.5) name ~width =
  { name; width; signed; arrival; prob }

let single ?(vars = []) expr ~width = { vars; ports = [ ("out", expr, width) ] }

let single_port t =
  match t.ports with [ (_, e, w) ] -> Some (e, w) | _ -> None

let env t =
  List.fold_left
    (fun env v ->
      Dp_expr.Env.add_uniform v.name ~width:v.width ~signed:v.signed
        ~arrival:v.arrival ~prob:v.prob env)
    Dp_expr.Env.empty t.vars

let used_vars t =
  List.sort_uniq String.compare
    (List.concat_map (fun (_, e, _) -> Dp_expr.Ast.vars e) t.ports)

let drop_unused_vars t =
  let used = used_vars t in
  { t with vars = List.filter (fun v -> List.mem v.name used) t.vars }

let var_spec_to_string v =
  Fmt.str "%s:%d%s:%g:%g" v.name v.width (if v.signed then "s" else "")
    v.arrival v.prob

let var_spec_of_string s =
  let err fmt = Fmt.kstr (fun m -> Error (s ^ ": " ^ m)) fmt in
  let width_of w =
    let w, signed =
      let l = String.length w in
      if l > 0 && w.[l - 1] = 's' then (String.sub w 0 (l - 1), true)
      else (w, false)
    in
    match int_of_string_opt w with
    | Some n when n >= 1 -> Ok (n, signed)
    | Some n -> err "width must be >= 1 (got %d)" n
    | None -> err "width %S is not an integer" w
  in
  let float_of what s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Ok f
    | _ -> err "%s %S is not a finite number" what s
  in
  let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e in
  let checked name w t p =
    if name = "" then err "empty variable name"
    else
      let* width, signed = width_of w in
      let* arrival = match t with None -> Ok 0.0 | Some t -> float_of "arrival" t in
      let* prob = match p with None -> Ok 0.5 | Some p -> float_of "probability" p in
      if arrival < 0.0 then err "arrival must be >= 0"
      else if not (prob >= 0.0 && prob <= 1.0) then
        err "probability must be within [0,1]"
      else Ok { name; width; signed; arrival; prob }
  in
  match String.split_on_char ':' s with
  | [ name; w ] -> checked name w None None
  | [ name; w; t ] -> checked name w (Some t) None
  | [ name; w; t; p ] -> checked name w (Some t) (Some p)
  | _ -> err "expected name:width[s][:arrival[:prob]]"

let strategy_cli_name s = String.lowercase_ascii (Dp_flow.Strategy.name s)

let synth_command ?strategy ?adder t =
  let buf = Buffer.create 128 in
  let add fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  (match t.ports with
  | [ (_, e, w) ] ->
    add "dpsyn synth -e \"%s\" --width %d" (Dp_expr.Ast.to_string e) w
  | ports ->
    let stmt (name, e, _) = Fmt.str "%s = %s" name (Dp_expr.Ast.to_string e) in
    add "dpsyn synth-multi -p \"%s\"" (String.concat "; " (List.map stmt ports)));
  List.iter (fun v -> add " -v %s" (var_spec_to_string v)) t.vars;
  (match strategy with
  | Some s -> add " --strategy %s" (strategy_cli_name s)
  | None -> ());
  (match adder with
  | Some a -> add " --adder %s" (Dp_adders.Adder.name a)
  | None -> ());
  (match t.ports with
  | [ _ ] -> add " --check-level strict --check"
  | _ -> add " --check");
  Buffer.contents buf

let equal_var a b =
  String.equal a.name b.name && a.width = b.width && a.signed = b.signed
  && Float.equal a.arrival b.arrival
  && Float.equal a.prob b.prob

let equal a b =
  List.equal equal_var a.vars b.vars
  && List.equal
       (fun (n1, e1, w1) (n2, e2, w2) ->
         String.equal n1 n2 && Dp_expr.Ast.equal e1 e2 && w1 = w2)
       a.ports b.ports

let size t =
  List.length t.vars
  + List.fold_left (fun acc (_, e, _) -> acc + Dp_expr.Ast.size e) 0 t.ports

let pp ppf t =
  let pp_port ppf (name, e, w) =
    Fmt.pf ppf "%s[%d:0] = %a" name (w - 1) Dp_expr.Ast.pp e
  in
  Fmt.pf ppf "@[<v>%a@,vars: %a@]"
    Fmt.(list ~sep:(any "; ") pp_port)
    t.ports
    Fmt.(list ~sep:(any " ") (using var_spec_to_string string))
    t.vars
