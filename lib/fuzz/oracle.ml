open Dp_netlist

type config = {
  strategies : Dp_flow.Strategy.t list;
  adders : Dp_adders.Adder.kind list;
  trials : int;
  seed : int;
  budget : Budget.t;
  tech : Dp_tech.Tech.t option;
}

let default_config =
  {
    strategies = Dp_flow.Strategy.all;
    adders = Dp_adders.Adder.all;
    trials = 24;
    seed = 0xF12D;
    budget = Budget.default;
    tech = None;
  }

type failure = {
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  diag : Dp_diag.Diag.t;
}

type outcome = Pass | Bounded of Dp_diag.Diag.t | Fail of failure

let pp_outcome ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Bounded d -> Fmt.pf ppf "bounded (%s)" d.Dp_diag.Diag.code
  | Fail f ->
    Fmt.pf ppf "FAIL under %a/%a: %a" Dp_flow.Strategy.pp f.strategy
      Dp_adders.Adder.pp f.adder Dp_diag.Diag.pp f.diag

(* The bounded-abort family: the fuzz budget's own DP-BUDGET* codes plus
   the cooperative governor's cancellations ([Dp_gov.Gov]) — a synthesis
   cut short by a resource verdict is [Bounded], never a [Fail]. *)
let is_budget_code code =
  (String.length code >= 9 && String.sub code 0 9 = "DP-BUDGET")
  || Dp_gov.Gov.is_cancel_code code

(* ------------------------------------------------------------------ *)
(* Assignments *)

let rand_bits rng w =
  (* Random.State.int caps below 2^30; stitch chunks for wide vars. *)
  let rec go acc got =
    if got >= w then acc land Dp_expr.Eval.mask w
    else go ((acc lsl 24) lor Random.State.int rng (1 lsl 24)) (got + 24)
  in
  go 0 0

(* Corner assignments first: all-0, all-1, one-hot MSBs, alternating
   bits — the patterns carry chains and sign extensions break on. *)
let corner_assignments (case : Case.t) =
  let specs = case.Case.vars in
  let all f = List.map (fun (v : Case.var_spec) -> (v.name, f v)) specs in
  let base =
    [
      all (fun _ -> 0);
      all (fun v -> Dp_expr.Eval.mask v.width);
      all (fun v -> 1 lsl (v.width - 1));
      all (fun v -> 0x5555555555 land Dp_expr.Eval.mask v.width);
      all (fun v -> 1 land Dp_expr.Eval.mask v.width);
    ]
  in
  let one_hot =
    List.map
      (fun (hot : Case.var_spec) ->
        all (fun v ->
            if v.name = hot.name then Dp_expr.Eval.mask v.width else 0))
      specs
  in
  base @ one_hot

let random_assignment rng (case : Case.t) =
  List.map
    (fun (v : Case.var_spec) -> (v.name, rand_bits rng v.width))
    case.Case.vars

let assignments ~seed ~trials case =
  let rng = Random.State.make [| seed |] in
  corner_assignments case
  @ List.init trials (fun _ -> random_assignment rng case)

(* Interpret a raw pattern as the variable's value (two's complement for
   signed variables). *)
let interpreted_value (case : Case.t) alist name =
  let raw = List.assoc name alist in
  let spec =
    List.find (fun (v : Case.var_spec) -> v.name = name) case.Case.vars
  in
  if spec.signed then Dp_expr.Eval.signed_of_pattern ~width:spec.width raw
  else raw

(* ------------------------------------------------------------------ *)
(* Differential check of one synthesized netlist *)

let pp_alist ppf alist =
  Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int)) ppf alist

let divergence_diag ~code ~ctx fmt = Dp_diag.Diag.errorf ~code ~subsystem:"fuzz" ~context:ctx fmt

(* Check one (assignment, port) pair against lane [lane] of a packed
   [Bitsim] sweep that already simulated the assignment. *)
let check_port_lane ~code ~ctx case netlist values ~lane alist (port, expr, width) =
  let big = Bigval.eval (fun x -> Bigval.of_int (interpreted_value case alist x)) expr in
  let expect_bits = Bigval.to_bits ~width big in
  (* Independent cross-check of the native evaluator itself. *)
  let native =
    Dp_expr.Eval.eval_mod ~width (interpreted_value case alist) expr
  in
  if native <> Bigval.to_int_mod ~width big then
    Error
      (divergence_diag ~code:"DP-FUZZ004"
         ~ctx:(ctx @ [ ("port", port); ("assignment", Fmt.str "%a" pp_alist alist) ])
         "native evaluator computed %d where the bignum reference computed %s \
          (mod 2^%d)"
         native (Bigval.to_string big) width)
  else
    let out_nets = Netlist.find_output netlist port in
    let actual_bit i = Dp_sim.Bitsim.lane_bit values out_nets.(i) ~lane in
    let diverged =
      Array.exists
        (fun i -> actual_bit i <> expect_bits.(i))
        (Array.init (min width (Array.length out_nets)) Fun.id)
    in
    if not diverged then Ok ()
    else
      let actual = Dp_sim.Bitsim.bus_value values out_nets ~lane in
      Error
        (divergence_diag ~code
           ~ctx:
             (ctx
             @ [
                 ("port", port);
                 ("assignment", Fmt.str "%a" pp_alist alist);
                 ("expected", Bigval.to_string big);
                 ("actual", string_of_int actual);
               ])
           "netlist output %s diverges from the reference: expected %s mod \
            2^%d, got %d"
           port (Bigval.to_string big) width actual)

(* Differentially check every (assignment, port) pair, simulating the
   netlist 64 assignments per sweep.  Lanes are scanned assignment-major,
   port-minor, so the first reported failure is the one the scalar loop
   used to find. *)
let check_assignments_batch ~code ~ctx case netlist ports alists =
  let arr = Array.of_list alists in
  let total = Array.length arr in
  let rec block start =
    if start >= total then Ok ()
    else begin
      let lanes = min 64 (total - start) in
      let values =
        Dp_sim.Bitsim.run_lanes netlist ~lanes ~assign:(fun k name ->
            match List.assoc_opt name arr.(start + k) with
            | Some v -> v
            | None -> 0)
      in
      let rec lane k =
        if k >= lanes then block (start + lanes)
        else
          let rec over_ports = function
            | [] -> lane (k + 1)
            | p :: ps -> (
              match
                check_port_lane ~code ~ctx case netlist values ~lane:k
                  arr.(start + k) p
              with
              | Ok () -> over_ports ps
              | Error _ as e -> e)
          in
          over_ports ports
      in
      lane 0
    end
  in
  block 0

(* Annotation sanity: recomputed-from-scratch STA/probabilities must match
   the builder's incremental annotations; arrivals must be finite,
   non-negative and monotone along every cell; switching estimates must
   be finite and non-negative. *)
let check_annotations ~ctx netlist =
  let fail ~code fmt =
    Fmt.kstr (fun msg -> Error (divergence_diag ~code ~ctx "%s" msg)) fmt
  in
  if not (Dp_timing.Sta.agrees_with_annotation ~eps:1e-6 netlist) then
    fail ~code:"DP-FUZZ002"
      "from-scratch STA disagrees with the builder's arrival annotations"
  else begin
    let bad_arrival = ref None in
    for n = 0 to Netlist.net_count netlist - 1 do
      let a = Netlist.arrival netlist n in
      if (not (Float.is_finite a)) || a < 0.0 then
        if !bad_arrival = None then bad_arrival := Some (n, a)
    done;
    match !bad_arrival with
    | Some (n, a) ->
      fail ~code:"DP-FUZZ002" "net %d has a negative or non-finite arrival %g" n a
    | None ->
      let non_monotone = ref None in
      let tech = Netlist.tech netlist in
      Netlist.iter_cells
        (fun c (cell : Netlist.cell) ->
          (* Monotonicity is per (pin, port) path: a port must not arrive
             before any input that actually reaches it.  A 4:2
             compressor's carry-out legitimately precedes its cin. *)
          Array.iteri
            (fun port out ->
              let latest_in = ref 0.0 in
              Array.iteri
                (fun pin n ->
                  match Dp_tech.Tech.pin_delay tech cell.kind ~pin ~port with
                  | Some _ ->
                    latest_in := Float.max !latest_in (Netlist.arrival netlist n)
                  | None -> ())
                cell.inputs;
              if Netlist.arrival netlist out +. 1e-9 < !latest_in then
                if !non_monotone = None then non_monotone := Some (c, out))
            (Netlist.cell_output_nets netlist c))
        netlist;
      (match !non_monotone with
      | Some (c, out) ->
        fail ~code:"DP-FUZZ002"
          "cell %d output net %d arrives before one of its inputs" c out
      | None ->
        if not (Dp_power.Prob.agrees_with_annotation ~eps:1e-6 netlist) then
          fail ~code:"DP-FUZZ003"
            "from-scratch probability propagation disagrees with the \
             builder's annotations"
        else
          let tree = Dp_power.Switching.tree_switching netlist in
          let total = Dp_power.Switching.total_switching netlist in
          if
            (not (Float.is_finite tree))
            || (not (Float.is_finite total))
            || tree < -1e-9 || total < -1e-9
          then
            fail ~code:"DP-FUZZ003"
              "switching estimates are negative or non-finite (tree %g, total %g)"
              tree total
          else Ok ())
  end

let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e

let check_netlist ~config ~ctx case netlist ports =
  let* () = Budget.check_cells config.budget netlist in
  let* () = check_annotations ~ctx netlist in
  check_assignments_batch ~code:"DP-FUZZ001" ~ctx case netlist ports
    (assignments ~seed:config.seed ~trials:config.trials case)

(* ------------------------------------------------------------------ *)
(* The full strategy x adder matrix *)

let synth_pair ~config case strategy adder =
  let env = Case.env case in
  match case.Case.ports with
  (* [run_res] hard-codes the output name "out"; any other single port
     (e.g. a shrunk multi-output case) must go through [run_multi_res]
     so [check_port] can find its bus by name. *)
  | [ ("out", expr, width) ] ->
    Result.map
      (fun (r : Dp_flow.Synth.result) -> r.netlist)
      (Dp_flow.Synth.run_res ?tech:config.tech ~adder ~width
         ~check_level:Dp_verify.Lint.Strict strategy env expr)
  | ports ->
    Result.map
      (fun (r : Dp_flow.Synth.multi_result) -> r.netlist)
      (Dp_flow.Synth.run_multi_res ?tech:config.tech ~adder
         ~check_level:Dp_verify.Lint.Strict strategy env
         (List.map
            (fun (name, expr, width) -> { Dp_flow.Synth.name; expr; width })
            ports))

let check_pair ~config case strategy adder =
  let ctx =
    [
      ("strategy", Dp_flow.Strategy.name strategy);
      ("adder", Dp_adders.Adder.name adder);
      ("repro", Case.synth_command ~strategy ~adder case);
    ]
  in
  match
    Budget.with_timeout config.budget (fun () ->
        match synth_pair ~config case strategy adder with
        | Error d -> Error d
        | Ok netlist -> check_netlist ~config ~ctx case netlist case.Case.ports)
  with
  | Ok () -> Pass
  | Error d ->
    if is_budget_code d.Dp_diag.Diag.code then Bounded d
    else Fail { strategy; adder; diag = d }
  | exception Dp_diag.Diag.E d ->
    if is_budget_code d.Dp_diag.Diag.code then Bounded d
    else Fail { strategy; adder; diag = d }

let check ?(config = default_config) case =
  match Budget.check_static config.budget case with
  | Error d -> Bounded d
  | Ok () ->
    let rec go bounded = function
      | [] -> ( match bounded with Some d -> Bounded d | None -> Pass)
      | (s, a) :: rest -> (
        match check_pair ~config case s a with
        | Pass -> go bounded rest
        | Bounded d -> go (Some d) rest
        | Fail _ as f -> f)
    in
    go None
      (List.concat_map
         (fun s -> List.map (fun a -> (s, a)) config.adders)
         config.strategies)

let test ?config case =
  match check ?config case with
  | Pass | Bounded _ -> None
  | Fail f -> Some f.diag

let diverges_on case ~port ~width netlist alists =
  let expr =
    match
      List.find_opt (fun (name, _, _) -> name = port) case.Case.ports
    with
    | Some (_, e, _) -> e
    | None -> invalid_arg "Oracle.diverges: unknown port"
  in
  match
    check_assignments_batch ~code:"DP-FUZZ001" ~ctx:[] case netlist
      [ (port, expr, width) ] alists
  with
  | Ok () -> false
  | Error _ -> true
  | exception _ -> true (* corrupted netlists may defeat the simulator *)

let diverges ?(seed = 0xF12D) ?(trials = 48) case ~port ~width netlist =
  diverges_on case ~port ~width netlist (assignments ~seed ~trials case)

let all_assignments (case : Case.t) =
  let bits =
    List.fold_left
      (fun acc (v : Case.var_spec) -> acc + v.width)
      0 case.Case.vars
  in
  if bits > 16 then None
  else
    Some
      (List.init (1 lsl bits) (fun code ->
           let off = ref 0 in
           List.map
             (fun (v : Case.var_spec) ->
               let value = (code lsr !off) land Dp_expr.Eval.mask v.width in
               off := !off + v.width;
               (v.name, value))
             case.Case.vars))
