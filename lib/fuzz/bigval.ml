(* Sign-magnitude bignum over base-2^16 limbs, little-endian, normalized
   (no trailing zero limbs; zero is the empty magnitude with sign 0).
   Limb products fit comfortably in a native int, so schoolbook
   arithmetic needs no carries wider than an int. *)

let base_bits = 16
let base = 1 lsl base_bits

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else begin
    (* Int64 absolute value: total even on min_int. *)
    let m = Int64.abs (Int64.of_int n) in
    let limbs = ref [] in
    let m = ref m in
    while Int64.compare !m 0L > 0 do
      limbs := Int64.to_int (Int64.logand !m 0xFFFFL) :: !limbs;
      m := Int64.shift_right_logical !m base_bits
    done;
    { sign = (if n < 0 then -1 else 1); mag = Array.of_list (List.rev !limbs) }
  end

let one = of_int 1
let sign t = t.sign

(* Magnitude comparison: -1, 0, 1. *)
let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = 1 + max la lb in
  let out = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    out.(i) <- s land (base - 1);
    carry := s lsr base_bits
  done;
  out

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  out

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let p = out.(i + j) + (a.mag.(i) * b.mag.(j)) + !carry in
        out.(i + j) <- p land (base - 1);
        carry := p lsr base_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    normalize (a.sign * b.sign) out
  end

let pow a n =
  if n < 0 then invalid_arg "Bigval.pow: negative exponent";
  let rec go acc n = if n = 0 then acc else go (mul acc a) (n - 1) in
  go one n

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let to_int_opt t =
  (* Up to 62 bits of magnitude fit; count the top limb's actual bits
     rather than rounding up to a whole limb. *)
  let bit_length =
    match Array.length t.mag with
    | 0 -> 0
    | len ->
      let rec bits n v = if v = 0 then n else bits (n + 1) (v lsr 1) in
      ((len - 1) * base_bits) + bits 0 t.mag.(len - 1)
  in
  if bit_length > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)
  end

let to_string t =
  if t.sign = 0 then "0"
  else begin
    (* Repeated division of the limb array by 10^4. *)
    let digits = Buffer.create 16 in
    let mag = Array.copy t.mag in
    let len = ref (Array.length mag) in
    while !len > 0 do
      let rem = ref 0 in
      for i = !len - 1 downto 0 do
        let cur = (!rem lsl base_bits) lor mag.(i) in
        mag.(i) <- cur / 10000;
        rem := cur mod 10000
      done;
      while !len > 0 && mag.(!len - 1) = 0 do decr len done;
      if !len > 0 then Buffer.add_string digits (Printf.sprintf "%04d" !rem)
      else Buffer.add_string digits (string_of_int !rem)
    done;
    let s = Buffer.contents digits in
    let out = Buffer.create (String.length s + 1) in
    if t.sign < 0 then Buffer.add_char out '-';
    (* The digit groups were appended least-significant first, each
       group already most-significant-digit first. *)
    let groups = ref [] in
    let i = ref 0 in
    while !i < String.length s do
      let l = min 4 (String.length s - !i) in
      groups := String.sub s !i l :: !groups;
      i := !i + l
    done;
    List.iter (Buffer.add_string out) !groups;
    Buffer.contents out
  end

let mag_bit mag i =
  let limb = i / base_bits in
  if limb >= Array.length mag then false
  else (mag.(limb) lsr (i mod base_bits)) land 1 = 1

let to_bits ~width t =
  if width < 1 then invalid_arg "Bigval.to_bits: width must be >= 1";
  let bits = Array.init width (mag_bit t.mag) in
  if t.sign >= 0 then bits
  else if Array.for_all (fun b -> not b) bits then bits (* -0 mod 2^w *)
  else begin
    (* 2^w - m: invert and add one. *)
    let out = Array.map not bits in
    let i = ref 0 in
    let carry = ref true in
    while !carry && !i < width do
      if out.(!i) then out.(!i) <- false
      else begin
        out.(!i) <- true;
        carry := false
      end;
      incr i
    done;
    out
  end

let to_int_mod ~width t =
  if width > 62 then invalid_arg "Bigval.to_int_mod: width out of [1,62]";
  let bits = to_bits ~width t in
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 1) lor (if bits.(i) then 1 else 0)
  done;
  !v

let rec eval assign = function
  | Dp_expr.Ast.Var x -> assign x
  | Dp_expr.Ast.Const c -> of_int c
  | Dp_expr.Ast.Add (a, b) -> add (eval assign a) (eval assign b)
  | Dp_expr.Ast.Sub (a, b) -> sub (eval assign a) (eval assign b)
  | Dp_expr.Ast.Mul (a, b) -> mul (eval assign a) (eval assign b)
  | Dp_expr.Ast.Neg a -> neg (eval assign a)
  | Dp_expr.Ast.Pow (a, n) -> pow (eval assign a) n
