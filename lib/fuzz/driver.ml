type config = {
  seed : int;
  cases : int;
  gen : Gen.config;
  oracle : Oracle.config;
  inject_every : int;
  tech_every : int;
  corpus_dir : string option;
  log : string -> unit;
}

let default_config =
  {
    seed = 42;
    cases = 500;
    gen = Gen.default_config;
    oracle = Oracle.default_config;
    inject_every = 0;
    tech_every = 11;
    corpus_dir = None;
    log = ignore;
  }

type finding = {
  case : Case.t;
  failure : Oracle.failure;
  shrunk : Case.t;
  shrunk_diag : Dp_diag.Diag.t;
  saved : string option;
}

type report = {
  executed : int;
  passed : int;
  bounded : int;
  injected : int;
  injected_caught : int;
  findings : finding list;
}

let pp_report ppf r =
  Fmt.pf ppf
    "%d cases: %d passed, %d budget-bounded, %d findings; %d faults injected, \
     %d caught"
    r.executed r.passed r.bounded
    (List.length r.findings)
    r.injected r.injected_caught

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let first_pair (oracle : Oracle.config) =
  ( (match oracle.strategies with s :: _ -> s | [] -> Dp_flow.Strategy.Fa_aot),
    match oracle.adders with a :: _ -> a | [] -> Dp_adders.Adder.Cla )

let fault_detected ?(oracle = Oracle.default_config) ~mutation ~mseed case =
  let strategy, adder = first_pair oracle in
  match Case.single_port case with
  | None -> `No_site
  | Some (expr, width) -> (
    match
      Dp_flow.Synth.run_res ?tech:oracle.tech ~adder ~width strategy
        (Case.env case) expr
    with
    | Error d -> `Not_synthesizable d
    | Ok r -> (
      match Dp_verify.Inject.apply ~seed:mseed r.netlist mutation with
      | None -> `No_site
      | Some descr ->
        if Dp_verify.Lint.errors (Dp_verify.Lint.run r.netlist) <> [] then
          `Caught_by_lint descr
        else (
          (* Prefer the exhaustive input space when it is small enough:
             then "no divergence" proves the mutation landed on a
             redundant site (a neutral rewiring, not an escaped fault). *)
          match Oracle.all_assignments case with
          | Some alists ->
            if Oracle.diverges_on case ~port:"out" ~width r.netlist alists
            then `Caught_by_divergence descr
            else `Neutral descr
          | None ->
            if
              Oracle.diverges ~seed:oracle.seed
                ~trials:(max 48 oracle.trials) case ~port:"out" ~width
                r.netlist
            then `Caught_by_divergence descr
            else
              `Escaped
                (Dp_diag.Diag.errorf ~code:"DP-FUZZ005" ~subsystem:"fuzz"
                   ~context:
                     [
                       ("mutation", Dp_verify.Inject.name mutation);
                       ("mutation_seed", string_of_int mseed);
                       ("strategy", Dp_flow.Strategy.name strategy);
                       ("adder", Dp_adders.Adder.name adder);
                       ("repro", Case.synth_command ~strategy ~adder case);
                     ]
                   "injected fault escaped both lint and differential \
                    checking: %s"
                   descr))))

let detection_diag ~mutation ~mseed how =
  Dp_diag.Diag.errorf ~severity:Dp_diag.Diag.Info ~code:"DP-FUZZ006"
    ~subsystem:"fuzz"
    ~context:
      [
        ("mutation", Dp_verify.Inject.name mutation);
        ("mutation_seed", string_of_int mseed);
      ]
    "injected fault detected by %s" how

let shrink_detected_fault ?(oracle = Oracle.default_config) ~mutation ~mseed case =
  let test c =
    match fault_detected ~oracle ~mutation ~mseed c with
    | `Caught_by_lint d -> Some (detection_diag ~mutation ~mseed ("lint: " ^ d))
    | `Caught_by_divergence d ->
      Some (detection_diag ~mutation ~mseed ("divergence: " ^ d))
    | `No_site | `Not_synthesizable _ | `Neutral _ | `Escaped _ -> None
  in
  match test case with
  | None ->
    Dp_diag.Diag.error
      (Dp_diag.Diag.errorf ~code:"DP-FUZZ005" ~subsystem:"fuzz"
         ~context:[ ("mutation", Dp_verify.Inject.name mutation) ]
         "fault is not detected on the initial case; nothing to shrink")
  | Some _ ->
    let shrunk, diag = Shrink.minimize ~test case in
    let strategy, adder = first_pair oracle in
    Ok
      (Corpus.entry ~strategy ~adder ~inject:(mutation, mseed)
         ~diag_code:diag.Dp_diag.Diag.code
         ~comment:
           (Fmt.str "fault-injection regression: %s must stay detected"
              (Dp_verify.Inject.name mutation))
         (Case.drop_unused_vars shrunk))

(* ------------------------------------------------------------------ *)
(* The loop *)

let run config =
  let rng = Random.State.make [| config.seed |] in
  let report =
    ref
      {
        executed = 0;
        passed = 0;
        bounded = 0;
        injected = 0;
        injected_caught = 0;
        findings = [];
      }
  in
  for i = 0 to config.cases - 1 do
    let case = Gen.case ~config:config.gen rng i in
    let tech =
      if config.tech_every > 0 && i mod config.tech_every = config.tech_every - 1
      then Some (Gen.tech rng)
      else None
    in
    let oracle = { config.oracle with tech } in
    (* Deterministic per-case draws, consumed whether or not used. *)
    let mutation = List.nth Dp_verify.Inject.all
        (Random.State.int rng (List.length Dp_verify.Inject.all))
    in
    let mseed = Random.State.int rng 1000 in
    let inject =
      config.inject_every > 0
      && (!report).executed mod config.inject_every = config.inject_every - 1
      && Case.single_port case <> None
    in
    (if inject then begin
       report := { !report with injected = (!report).injected + 1 };
       match fault_detected ~oracle ~mutation ~mseed case with
       | `Caught_by_lint _ | `Caught_by_divergence _ ->
         report := { !report with injected_caught = (!report).injected_caught + 1 }
       | `No_site | `Not_synthesizable _ | `Neutral _ ->
         (* vacuous: no applicable site, or a mutation proven equivalent
            over the whole input space — nothing to catch *)
         ()
       | `Escaped diag ->
         let strategy, adder = first_pair oracle in
         let failure = { Oracle.strategy; adder; diag } in
         let test c =
           match fault_detected ~oracle ~mutation ~mseed c with
           | `Escaped d -> Some d
           | _ -> None
         in
         let shrunk, shrunk_diag = Shrink.minimize ~test case in
         let saved =
           Option.map
             (fun dir ->
               Corpus.save ~dir
                 (Corpus.entry ~strategy ~adder ~inject:(mutation, mseed)
                    ~diag_code:"DP-FUZZ005"
                    ~comment:(Case.synth_command ~strategy ~adder shrunk)
                    shrunk))
             config.corpus_dir
         in
         report :=
           { !report with
             findings = { case; failure; shrunk; shrunk_diag; saved } :: (!report).findings
           }
     end);
    (match Oracle.check ~config:oracle case with
    | Pass -> report := { !report with passed = (!report).passed + 1 }
    | Bounded _ -> report := { !report with bounded = (!report).bounded + 1 }
    | Fail failure ->
      config.log
        (Fmt.str "case %d FAILS: %a" i Dp_diag.Diag.pp failure.Oracle.diag);
      let shrunk, shrunk_diag =
        Shrink.minimize ~test:(Oracle.test ~config:oracle) case
      in
      let saved =
        Option.map
          (fun dir ->
            Corpus.save ~dir
              (Corpus.entry ~strategy:failure.Oracle.strategy
                 ~adder:failure.Oracle.adder
                 ~diag_code:shrunk_diag.Dp_diag.Diag.code
                 ~comment:
                   (Case.synth_command ~strategy:failure.Oracle.strategy
                      ~adder:failure.Oracle.adder shrunk)
                 shrunk))
          config.corpus_dir
      in
      report :=
        { !report with
          findings = { case; failure; shrunk; shrunk_diag; saved } :: (!report).findings
        });
    report := { !report with executed = (!report).executed + 1 };
    if (i + 1) mod 50 = 0 then
      config.log (Fmt.str "%d/%d cases, %a" (i + 1) config.cases pp_report !report)
  done;
  { !report with findings = List.rev (!report).findings }

(* ------------------------------------------------------------------ *)
(* Replay *)

let replay ?(oracle = Oracle.default_config) (e : Corpus.entry) =
  let oracle =
    {
      oracle with
      strategies =
        (match e.strategy with Some s -> [ s ] | None -> oracle.strategies);
      adders = (match e.adder with Some a -> [ a ] | None -> oracle.adders);
    }
  in
  match e.inject with
  | Some (mutation, mseed) -> (
    match fault_detected ~oracle ~mutation ~mseed e.case with
    | `Caught_by_lint _ | `Caught_by_divergence _ -> Ok ()
    | `No_site | `Neutral _ ->
      Dp_diag.Diag.error
        (Dp_diag.Diag.errorf ~code:"DP-FUZZ005" ~subsystem:"fuzz"
           ~context:[ ("mutation", Dp_verify.Inject.name mutation) ]
           "corpus inject entry no longer produces a detectable fault")
    | `Not_synthesizable d -> Error d
    | `Escaped d -> Error d)
  | None -> (
    match Oracle.check ~config:oracle e.case with
    | Pass | Bounded _ -> Ok ()
    | Fail f -> Error f.Oracle.diag)

let replay_dir ?oracle dir =
  match Corpus.load_dir dir with
  | Error d -> Error [ (dir, d) ]
  | Ok entries ->
    let failures =
      List.filter_map
        (fun (path, e) ->
          match replay ?oracle e with
          | Ok () -> None
          | Error d -> Some (path, d))
        entries
    in
    if failures = [] then Ok (List.length entries) else Error failures
