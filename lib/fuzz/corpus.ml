type entry = {
  case : Case.t;
  strategy : Dp_flow.Strategy.t option;
  adder : Dp_adders.Adder.kind option;
  inject : (Dp_verify.Inject.mutation * int) option;
  diag_code : string option;
  comment : string option;
}

let entry ?strategy ?adder ?inject ?diag_code ?comment case =
  { case; strategy; adder; inject; diag_code; comment }

let mutation_of_name s =
  List.find_opt
    (fun m -> Dp_verify.Inject.name m = s)
    Dp_verify.Inject.all

let to_string e =
  let buf = Buffer.create 256 in
  let add fmt = Fmt.kstr (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  (match e.comment with Some c -> add "# %s" c | None -> ());
  (match e.diag_code with Some c -> add "diag %s" c | None -> ());
  List.iter (fun v -> add "var %s" (Case.var_spec_to_string v)) e.case.Case.vars;
  List.iter
    (fun (name, expr, w) ->
      add "port %s %d = %s" name w (Dp_expr.Ast.to_string expr))
    e.case.Case.ports;
  (match e.strategy with
  | Some s -> add "strategy %s" (String.lowercase_ascii (Dp_flow.Strategy.name s))
  | None -> ());
  (match e.adder with Some a -> add "adder %s" (Dp_adders.Adder.name a) | None -> ());
  (match e.inject with
  | Some (m, seed) -> add "inject %s %d" (Dp_verify.Inject.name m) seed
  | None -> ());
  Buffer.contents buf

let parse_error fmt =
  Fmt.kstr
    (fun m ->
      Error (Dp_diag.Diag.v ~code:"DP-CORPUS001" ~subsystem:"corpus" m))
    fmt

let of_string text =
  let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok acc
    | line :: rest ->
      let line = String.trim line in
      if line = "" then go (lineno + 1) acc rest
      else if line.[0] = '#' then begin
        let c = String.trim (String.sub line 1 (String.length line - 1)) in
        let acc =
          if acc.comment = None && c <> "" then { acc with comment = Some c }
          else acc
        in
        go (lineno + 1) acc rest
      end
      else
        let key, rest_of_line =
          match String.index_opt line ' ' with
          | None -> (line, "")
          | Some i ->
            ( String.sub line 0 i,
              String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
        in
        let* acc =
          match key with
          | "var" -> (
            match Case.var_spec_of_string rest_of_line with
            | Ok v -> Ok { acc with case = { acc.case with vars = acc.case.vars @ [ v ] } }
            | Error m -> parse_error "line %d: %s" lineno m)
          | "port" -> (
            match String.split_on_char ' ' rest_of_line with
            | name :: w :: "=" :: expr_toks -> (
              match int_of_string_opt w with
              | None -> parse_error "line %d: port width %S is not an integer" lineno w
              | Some w when w < 1 || w > 62 ->
                parse_error "line %d: port width %d outside [1, 62]" lineno w
              | Some w -> (
                match Dp_expr.Parse.expr_res (String.concat " " expr_toks) with
                | Ok e ->
                  Ok
                    { acc with
                      case = { acc.case with ports = acc.case.ports @ [ (name, e, w) ] } }
                | Error d ->
                  parse_error "line %d: %s" lineno (Dp_diag.Diag.to_string d)))
            | _ -> parse_error "line %d: expected 'port NAME WIDTH = EXPR'" lineno)
          | "strategy" -> (
            match Dp_flow.Strategy.of_name rest_of_line with
            | Some s -> Ok { acc with strategy = Some s }
            | None -> parse_error "line %d: unknown strategy %S" lineno rest_of_line)
          | "adder" -> (
            match Dp_adders.Adder.of_name rest_of_line with
            | Some a -> Ok { acc with adder = Some a }
            | None -> parse_error "line %d: unknown adder %S" lineno rest_of_line)
          | "inject" -> (
            match String.split_on_char ' ' rest_of_line with
            | [ m; seed ] -> (
              match (mutation_of_name m, int_of_string_opt seed) with
              | Some m, Some seed -> Ok { acc with inject = Some (m, seed) }
              | None, _ -> parse_error "line %d: unknown mutation %S" lineno m
              | _, None -> parse_error "line %d: bad inject seed %S" lineno seed)
            | _ -> parse_error "line %d: expected 'inject MUTATION SEED'" lineno)
          | "diag" -> Ok { acc with diag_code = Some rest_of_line }
          | _ -> parse_error "line %d: unknown key %S" lineno key
        in
        go (lineno + 1) acc rest
  in
  let empty =
    {
      case = { Case.vars = []; ports = [] };
      strategy = None;
      adder = None;
      inject = None;
      diag_code = None;
      comment = None;
    }
  in
  let* e = go 1 empty lines in
  match e.case.Case.ports with
  | [] -> parse_error "no port line"
  | _ ->
    let bound = List.map (fun (v : Case.var_spec) -> v.name) e.case.Case.vars in
    let unbound =
      List.filter (fun v -> not (List.mem v bound)) (Case.used_vars e.case)
    in
    (match unbound with
    | [] -> Ok e
    | v :: _ -> parse_error "variable %s has no var line" v)

let io_error path exn =
  Error
    (Dp_diag.Diag.errorf ~code:"DP-CORPUS002" ~subsystem:"corpus"
       ~context:[ ("path", path) ]
       "%s" (Printexc.to_string exn))

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception exn -> io_error path exn

let load_dir dir =
  match Sys.readdir dir with
  | exception exn -> io_error dir exn
  | files ->
    let files =
      List.sort String.compare
        (List.filter
           (fun f -> Filename.check_suffix f ".repro")
           (Array.to_list files))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
        let path = Filename.concat dir f in
        match load_file path with
        | Ok e -> go ((path, e) :: acc) rest
        | Error _ as e -> e)
    in
    go [] files

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir e =
  mkdir_p dir;
  let text = to_string e in
  let tag =
    String.lowercase_ascii (Option.value e.diag_code ~default:"case")
  in
  let tag =
    String.map (fun c -> if c = '-' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '-') tag
  in
  let path = Filename.concat dir (Fmt.str "%s-%08x.repro" tag (Hashtbl.hash text)) in
  Out_channel.with_open_text path (fun oc -> output_string oc text);
  path
