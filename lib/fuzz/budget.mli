(** Resource-bounded synthesis: wall-clock, matrix-height and gate-count
    ceilings so pathological fuzz inputs fail {e gracefully} with a typed
    [Dp_diag.Diag.t] instead of hanging the process or exhausting memory.

    Diagnostics: [DP-BUDGET001] wall-clock timeout, [DP-BUDGET002]
    gate-count ceiling, [DP-BUDGET003] static addend-row (matrix-height)
    ceiling. *)

type t = {
  timeout_s : float;  (** wall-clock budget per synthesis; <= 0 disables *)
  max_cells : int;  (** netlist cell ceiling; <= 0 disables *)
  max_rows : int;  (** estimated addend-row ceiling; <= 0 disables *)
}

(** 5 s, 200k cells, 4096 rows. *)
val default : t

val unlimited : t

(** Saturating static estimate of the addend rows the bit-level lowering
    would build for the widest port — products multiply row counts by
    the narrower operand's width, additions sum them.  An upper-bound
    heuristic: cheap (no normalization, which itself can blow up) and
    monotone, so genuinely huge multiply chains trip the ceiling before
    any work happens. *)
val estimate_rows : Case.t -> int

(** [DP-BUDGET003] if {!estimate_rows} exceeds [max_rows]. *)
val check_static : t -> Case.t -> (unit, Dp_diag.Diag.t) result

(** [DP-BUDGET002] if the built netlist exceeds [max_cells]. *)
val check_cells : t -> Dp_netlist.Netlist.t -> (unit, Dp_diag.Diag.t) result

(** [clamp_deadline b ~now ~deadline] tightens [timeout_s] so the work
    also finishes by the absolute [deadline] ([None] = unchanged): the
    synthesis server derives each request's effective budget from the
    client deadline minus the time already spent queueing.  An expired
    deadline clamps to a tiny positive timeout (never 0.0, which would
    disable the timer). *)
val clamp_deadline : t -> now:float -> deadline:float option -> t

(** [with_timeout b f] runs [f] under an interval timer and raises
    [Dp_diag.Diag.E] with [DP-BUDGET001] if it exceeds [timeout_s].
    Exception-safe: the timer and previous [SIGALRM] handler are always
    restored.

    Reentrant: nested budgets stack — each keeps its own absolute
    deadline, the single process timer is armed for the earliest one,
    and an expiring {e outer} budget unwinds through (and is not
    misattributed to) an inner budget still within its own allowance.
    Thread-correct in the narrow sense that a deadline is only ever
    converted into the [DP-BUDGET001] failure of the [with_timeout]
    call that created it.

    {b Scope.}  [ITIMER_REAL] is a {e process-wide} resource: there is
    exactly one timer and one [SIGALRM] disposition per process, and the
    kernel delivers the signal to a thread of its choosing — a foreign
    thread's expiry is only flagged and re-armed until the owner happens
    to run the handler, so under a multi-threaded worker pool an expiry
    can land an unbounded number of re-arm hops late.  This machinery is
    therefore the driver for the {e single-threaded} [dpsyn fuzz]
    oracle, where one synthesis owns the whole process and a signal is
    the only way to interrupt a loop that does not cooperate.  The
    synthesis {e server} does not use it: each worker thread installs a
    thread-ambient [Dp_gov.Gov] governor instead, which enforces the
    same wall-clock/cell budgets (plus a heap watermark) at cooperative
    checkpoints — per-thread, signal-free, and aborting only between
    well-formed pipeline steps. *)
val with_timeout : t -> (unit -> 'a) -> 'a
