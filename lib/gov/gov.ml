open Dp_diag

type site = Lower | Reduce | Netlist | Sta | Prob | Sim

let site_name = function
  | Lower -> "lower"
  | Reduce -> "reduce"
  | Netlist -> "netlist"
  | Sta -> "sta"
  | Prob -> "prob"
  | Sim -> "sim"

let default_poll_every = 512

type t = {
  deadline : float option; (* absolute Unix time *)
  max_cells : int option;
  max_heap_words : int option;
  poll_every : int;
  fault : (site -> int -> bool) option;
  (* Each governor belongs to one worker thread; [cancel] may write
     [cancelled] from another thread.  The field holds an immediate-or-
     pointer value, so unsynchronized reads are safe under the OCaml
     memory model, and stickiness only needs the first write to win. *)
  mutable cancelled : Diag.t option;
  mutable countdown : int;
  mutable polls : int;
}

let create ?deadline_s ?max_cells ?max_heap_words
    ?(poll_every = default_poll_every) ?fault () =
  let poll_every = max 1 poll_every in
  {
    deadline =
      Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    max_cells;
    max_heap_words;
    poll_every;
    fault;
    cancelled = None;
    countdown = poll_every;
    polls = 0;
  }

let site_ctx site = ("site", match site with None -> "-" | Some s -> site_name s)

let trip gov diag =
  if gov.cancelled = None then gov.cancelled <- Some diag;
  (* raise whatever won the race, so retries of [check] are stable *)
  match gov.cancelled with Some d -> Diag.fail d | None -> Diag.fail diag

let cancel ?(reason = "cancelled by caller") gov =
  if gov.cancelled = None then
    gov.cancelled <-
      Some
        (Diag.v ~code:"DP-CANCEL002" ~subsystem:"gov"
           ~context:[ ("reason", reason) ]
           "synthesis cancelled")

let cancelled gov = gov.cancelled
let polls gov = gov.polls

let real_poll ?site ?cells gov =
  gov.countdown <- gov.poll_every;
  gov.polls <- gov.polls + 1;
  (match gov.cancelled with Some d -> Diag.fail d | None -> ());
  (match gov.fault with
  | Some f when f (Option.value site ~default:Netlist) gov.polls ->
    trip gov
      (Diag.v ~code:"DP-CANCEL002" ~subsystem:"gov"
         ~context:[ site_ctx site; ("reason", "injected fault") ]
         "synthesis cancelled by injected fault")
  | _ -> ());
  (match (gov.deadline, site) with
  | Some dl, _ ->
    let now = Unix.gettimeofday () in
    if now > dl then
      trip gov
        (Diag.errorf ~code:"DP-CANCEL001" ~subsystem:"gov"
           ~context:
             [
               site_ctx site;
               ("overrun_ms", Printf.sprintf "%.1f" (1000.0 *. (now -. dl)));
               ("polls", string_of_int gov.polls);
             ]
           "synthesis deadline exceeded")
  | None, _ -> ());
  (match (gov.max_cells, cells) with
  | Some budget, Some n when n > budget ->
    trip gov
      (Diag.errorf ~code:"DP-CANCEL003" ~subsystem:"gov"
         ~context:
           [
             site_ctx site;
             ("cells", string_of_int n);
             ("max_cells", string_of_int budget);
           ]
         "cell budget exceeded mid-construction (%d > %d)" n budget)
  | _ -> ());
  match gov.max_heap_words with
  | Some watermark ->
    let live = (Gc.quick_stat ()).Gc.heap_words in
    if live > watermark then
      trip gov
        (Diag.errorf ~code:"DP-BUDGET-MEM" ~subsystem:"gov"
           ~context:
             [
               site_ctx site;
               ("heap_words", string_of_int live);
               ("max_heap_words", string_of_int watermark);
             ]
           "heap watermark exceeded (%d > %d words)" live watermark)
  | None -> ()

let check ?site ?cells gov =
  gov.countdown <- gov.countdown - 1;
  if gov.countdown <= 0 then real_poll ?site ?cells gov

let poll_now ?site ?cells gov = real_poll ?site ?cells gov

(* ------------------------------------------------------------------ *)
(* Ambient per-thread installation.

   [active] gates the fast path: when no governor is installed anywhere
   in the process, [ambient ()] is one plain int read.  The table is
   only touched under [lock]; keys are [Thread.id]s, so concurrent
   server workers see only their own binding. *)

let lock = Mutex.create ()
let active = ref 0
let table : (int, t) Hashtbl.t = Hashtbl.create 8

let ambient () =
  if !active = 0 then None
  else
    let id = Thread.id (Thread.self ()) in
    Mutex.protect lock (fun () -> Hashtbl.find_opt table id)

let with_ambient gov f =
  let id = Thread.id (Thread.self ()) in
  let previous =
    Mutex.protect lock (fun () ->
        let previous = Hashtbl.find_opt table id in
        Hashtbl.replace table id gov;
        incr active;
        previous)
  in
  let restore () =
    Mutex.protect lock (fun () ->
        (match previous with
        | Some p -> Hashtbl.replace table id p
        | None -> Hashtbl.remove table id);
        decr active)
  in
  let result = try f () with e -> restore (); raise e in
  restore ();
  (* Surface an external cancel that landed after the last in-loop
     checkpoint.  Only the sticky flag is consulted — a deadline that
     expired in the final instants does not retract a completed result. *)
  (match gov.cancelled with Some d -> Diag.fail d | None -> ());
  result

(* ------------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_cancel_code c = has_prefix ~prefix:"DP-CANCEL" c || c = "DP-BUDGET-MEM"

let retryable c =
  match c with
  | "DP-CANCEL001" | "DP-CANCEL002" | "DP-BUDGET-MEM" -> true
  | _ -> false
