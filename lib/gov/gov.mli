(** Cooperative cancellation and resource governance.

    A governor [t] carries the resource limits of one synthesis request —
    a wall-clock deadline, a cell budget, and a live-heap-word watermark —
    plus a sticky cancellation flag.  Every long-running loop in the
    pipeline (bit-matrix lowering, column reduction, netlist
    construction, STA/power annotation, simulation) polls it through
    {!check}: a cheap counter decrement on the fast path, with the real
    clock/GC/budget inspection only every [poll_every] calls.  When a
    limit trips, {!check} raises {!Dp_diag.Diag.E} with a typed
    diagnostic and keeps raising the {e same} diagnostic on every later
    call — cancellation is sticky, so an abort can never be lost by a
    downstream loop.

    Because the poll is cooperative, an abort always lands {e between}
    two well-formed pipeline steps: the netlist under construction
    remains structurally sound (every published cell is complete), and
    callers that only commit results on success — the synthesis cache,
    the server response path — are guaranteed to observe either a whole
    result or a typed error, never torn state.

    Diagnostics raised here:
    - [DP-CANCEL001] — the wall-clock deadline passed (retryable with a
      larger deadline).
    - [DP-CANCEL002] — external or injected cancellation ({!cancel},
      or a {!fault} test hook).
    - [DP-CANCEL003] — the cell budget was exceeded mid-construction
      (a client error: the request is too big for the configured
      budget).
    - [DP-BUDGET-MEM] — the OCaml heap grew past the live-word
      watermark (retryable on a less loaded server).

    Governors are installed {e ambiently}, per thread: {!with_ambient}
    binds a governor for the current thread for the duration of a
    callback, and the pipeline loops pick it up with {!ambient} — so
    the dozens of loops across the libraries need no extra parameters,
    and concurrent server workers each govern their own request without
    interference (unlike a process-wide [setitimer] alarm). *)

(** Checkpoint classes, one per pipeline stage that polls.  Tests use
    them to aim an injected fault at a specific loop. *)
type site = Lower | Reduce | Netlist | Sta | Prob | Sim

val site_name : site -> string

type t

(** [create ()] builds a governor.

    @param deadline_s relative wall-clock budget in seconds, measured
      from this call.
    @param max_cells cell budget checked by netlist construction.
    @param max_heap_words live-heap watermark (in words, from
      [Gc.quick_stat]).
    @param poll_every how many {!check} calls between real polls
      (default {!default_poll_every}; clamped to >= 1).
    @param fault test hook: on each real poll the hook sees the site
      and the running poll count, and returning [true] cancels with
      [DP-CANCEL002] — this is how the chaos tests trip an abort at an
      exact checkpoint class. *)
val create :
  ?deadline_s:float ->
  ?max_cells:int ->
  ?max_heap_words:int ->
  ?poll_every:int ->
  ?fault:(site -> int -> bool) ->
  unit ->
  t

val default_poll_every : int

(** Request cancellation from any thread ([DP-CANCEL002] at the
    victim's next checkpoint).  Idempotent; an already-tripped governor
    keeps its first diagnostic. *)
val cancel : ?reason:string -> t -> unit

(** The sticky diagnostic, once tripped. *)
val cancelled : t -> Dp_diag.Diag.t option

(** Number of real polls performed so far (observability/test hook). *)
val polls : t -> int

(** The cheap checkpoint.  [cells] is the caller's current cell count,
    checked against [max_cells] on real polls.  Raises [Dp_diag.Diag.E]
    once a limit trips, and on every call thereafter. *)
val check : ?site:site -> ?cells:int -> t -> unit

(** Like {!check} but forces a real poll regardless of the counter —
    used at loop entry so even a tiny loop observes a pending
    cancellation. *)
val poll_now : ?site:site -> ?cells:int -> t -> unit

(** [with_ambient gov f] binds [gov] as the current thread's governor
    for the duration of [f] (nesting restores the previous binding).
    If an external {!cancel} landed after [f]'s last checkpoint, the
    sticky diagnostic is raised here so the cancellation is never lost;
    a deadline that expired only in the final instants does not retract
    a completed result. *)
val with_ambient : t -> (unit -> 'a) -> 'a

(** The governor bound to the current thread, if any.  Cheap when no
    governor is installed anywhere in the process (a single int read). *)
val ambient : unit -> t option

(** [is_cancel_code c] — [true] on every code this module raises
    ([DP-CANCEL*] and [DP-BUDGET-MEM]): the bounded-abort family that
    callers treat as a resource verdict, not a failure. *)
val is_cancel_code : string -> bool

(** [retryable c] — [true] for the codes that may succeed on retry
    with more headroom ([DP-CANCEL001], [DP-CANCEL002],
    [DP-BUDGET-MEM]); [false] for [DP-CANCEL003] (the request itself
    exceeds the budget). *)
val retryable : string -> bool
