open Dp_netlist

let arrivals netlist =
  let tech = Netlist.tech netlist in
  let n = Netlist.net_count netlist in
  let arrival = Array.make n neg_infinity in
  let gov = Netlist.gov netlist in
  (* Net ids are topologically ordered, so one forward pass suffices. *)
  for net = 0 to n - 1 do
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Sta g
    | None -> ());
    match Netlist.driver netlist net with
    | Netlist.From_input _ | Netlist.From_const _ ->
      arrival.(net) <- Netlist.arrival netlist net
    | Netlist.From_cell { cell; port } ->
      let c = Netlist.cell netlist cell in
      (* Pin-resolved: worst over the pins with a path to this port.  For
         conventional cells every pin reaches every port with the port's
         one delay, so this equals max-input-arrival + delay; for the
         counters it prices each pin's path through the certified body
         (and skips e.g. the 4:2 carry-out's dead cin pin). *)
      let worst = ref neg_infinity in
      Array.iteri
        (fun pin input ->
          match Dp_tech.Tech.pin_delay tech c.kind ~pin ~port with
          | Some d -> worst := Float.max !worst (arrival.(input) +. d)
          | None -> ())
        c.inputs;
      arrival.(net) <- !worst
  done;
  arrival

let agrees_with_annotation ?(eps = 1e-9) netlist =
  let recomputed = arrivals netlist in
  let ok = ref true in
  Array.iteri
    (fun net a ->
      if Float.abs (a -. Netlist.arrival netlist net) > eps then ok := false)
    recomputed;
  !ok

let design_delay netlist = Netlist.max_output_arrival netlist

type endpoint = { output : string; bit : int; arrival : float }

let endpoints netlist =
  List.concat_map
    (fun (output, nets) ->
      Array.to_list
        (Array.mapi
           (fun bit net -> { output; bit; arrival = Netlist.arrival netlist net })
           nets))
    (Netlist.outputs netlist)

let critical_endpoint netlist =
  match endpoints netlist with
  | [] -> invalid_arg "Sta.critical_endpoint: netlist has no outputs"
  | first :: rest ->
    List.fold_left
      (fun best e -> if e.arrival > best.arrival then e else best)
      first rest

let critical_path netlist =
  let e = critical_endpoint netlist in
  let nets = Netlist.find_output netlist e.output in
  Topo.critical_path netlist ~from:nets.(e.bit)

let pp_endpoint ppf e =
  Fmt.pf ppf "%s[%d] @@ %.3f ns" e.output e.bit e.arrival

let pp_path netlist ppf path =
  let pp_step ppf net =
    Fmt.pf ppf "%s@%.3f" (Stats.net_name netlist net) (Netlist.arrival netlist net)
  in
  Fmt.(list ~sep:(any " -> ") pp_step) ppf path
