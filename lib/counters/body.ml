open Dp_netlist

(* Evaluate a recipe's blocks on one pin-assignment bitmask; returns
   per-block (sum, carry). *)
let eval_blocks (r : Exact.recipe) v =
  let nb = Array.length r.blocks in
  let out = Array.make (max nb 1) (false, false) in
  let value = function
    | Exact.Pin i -> (v lsr i) land 1 = 1
    | Exact.Out { block; port } ->
      (if port = 0 then fst else snd) out.(block)
  in
  Array.iteri
    (fun i (b : Exact.block) ->
      let n = ref 0 in
      Array.iter (fun a -> if value a then incr n) b.args;
      out.(i) <- (!n land 1 = 1, !n >= 2))
    r.blocks;
  (out, value)

let port_value (r : Exact.recipe) ~port v =
  let _, value = eval_blocks r v in
  value r.outputs.(port)

let weighted_value (r : Exact.recipe) v =
  let _, value = eval_blocks r v in
  let acc = ref 0 in
  for port = 0 to 2 do
    if value r.outputs.(port) then
      acc := !acc + (1 lsl Spec.port_weight r.kind ~port)
  done;
  !acc

(* Instantiate the recipe through the netlist's FA/HA builders — the
   expanded (non-monolithic) form of the counter, used by tests to check
   the monolithic cell against its own body in-circuit. *)
let expand netlist (r : Exact.recipe) pins =
  if Array.length pins <> Dp_tech.Cell_kind.arity r.kind then
    invalid_arg "Body.expand: arity mismatch";
  let nb = Array.length r.blocks in
  let outs = Array.make (max nb 1) (0, 0) in
  let net = function
    | Exact.Pin i -> pins.(i)
    | Exact.Out { block; port } ->
      (if port = 0 then fst else snd) outs.(block)
  in
  Array.iteri
    (fun i (b : Exact.block) ->
      outs.(i) <-
        (if b.fa then
           Netlist.fa netlist (net b.args.(0)) (net b.args.(1)) (net b.args.(2))
         else Netlist.ha netlist (net b.args.(0)) (net b.args.(1))))
    r.blocks;
  (net r.outputs.(0), net r.outputs.(1), net r.outputs.(2))
