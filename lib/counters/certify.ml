open Dp_tech

let eps = 1e-9

let fail kind fmt =
  Fmt.kstr
    (fun msg ->
      Dp_diag.Diag.fail
        (Dp_diag.Diag.v ~code:"DP-CTR001" ~subsystem:"counters"
           ~context:[ ("kind", Cell_kind.name kind) ]
           msg))
    fmt

let check_kind tech kind =
  let r = Exact.recipe kind in
  let m = Cell_kind.arity kind in
  (* 1. Exhaustive functional equivalence: the synthesized body computes
     the arithmetic spec on all 2^m assignments, every port. *)
  for v = 0 to (1 lsl m) - 1 do
    for port = 0 to 2 do
      if Body.port_value r ~port v <> Spec.port_value kind ~port v then
        fail kind "body disagrees with spec on port %d, assignment %#x" port v
    done;
    if Body.weighted_value r v <> Spec.popcount v then
      fail kind "body violates the popcount invariant on assignment %#x" v
  done;
  (* 2. The technology's closed-form pin delays are exactly the recipe's
     path delays — including which pins have no path at all. *)
  for pin = 0 to m - 1 do
    for port = 0 to 2 do
      match
        (Tech.pin_delay tech kind ~pin ~port, Model.pin_delay tech r ~pin ~port)
      with
      | None, None -> ()
      | Some a, Some b when Float.abs (a -. b) <= eps -> ()
      | Some a, Some b ->
        fail kind
          "pin %d -> port %d: technology says %.17g, body implies %.17g" pin
          port a b
      | Some _, None | None, Some _ ->
        fail kind "pin %d -> port %d: path existence mismatch" pin port
    done
  done;
  (* 3. Area and energy conservation against the body. *)
  let ta = Tech.area tech kind and ba = Model.area tech r in
  if Float.abs (ta -. ba) > eps then
    fail kind "area mismatch: technology %.17g, body %.17g" ta ba;
  let te =
    Tech.energy tech kind ~port:0
    +. Tech.energy tech kind ~port:1
    +. Tech.energy tech kind ~port:2
  and be = Model.total_energy tech r in
  if Float.abs (te -. be) > eps then
    fail kind "energy not conserved: technology ports sum %.17g, body %.17g"
      te be

(* Memoized per technology: the strategies call [ensure] on every synth,
   so the certificates must be cheap after the first run — but remain a
   load-bearing gate, not a test-only artifact. *)
let certified : (Tech.t, unit) Hashtbl.t = Hashtbl.create 4

let ensure tech =
  if not (Hashtbl.mem certified tech) then begin
    List.iter (check_kind tech) Spec.kinds;
    Hashtbl.add certified tech ()
  end
