open Dp_tech

type sig_ref = Pin of int | Out of { block : int; port : int }
type block = { fa : bool; args : sig_ref array }

type recipe = {
  kind : Cell_kind.t;
  blocks : block array;
  outputs : sig_ref array;
}

(* ------------------------------------------------------------------ *)
(* Branch-and-bound exact synthesis.

   State: per relative weight 0..2, a multiset of signals, each a truth
   table over the m input pins plus a level (unit depth).  Moves apply an
   FA to three or an HA to two same-weight signals at weights 0-1,
   replacing them with the block's sum at that weight and pushing its
   carry one weight up.  Every move preserves the arithmetic invariant
     sum over signals of table * 2^weight  =  popcount (pointwise),
   so once the signal counts match the goal the surviving functions are
   forced — reaching the goal shape IS functional correctness, and the
   search needs no per-state equivalence checking.

   Cost is lexicographic (area, depth) with area in HA units (FA = 2,
   HA = 1), iterative deepening on area from the potential lower bound,
   and first-found tie-breaking under a deterministic move order (weights
   ascending, FA before HA, combinations in index order over the sorted
   state).  Input tables sort in pin order, so the first combination
   tried is always the lowest pins — the canonical bodies the technology
   model's closed-form delays were derived from fall out of the search
   rather than being trusted. *)

type signal = { tt : Tt.t; level : int }

let compare_entry ((a : signal), _) ((b : signal), _) =
  let c = Tt.compare a.tt b.tt in
  if c <> 0 then c else Int.compare a.level b.level

let goal_counts (kind : Cell_kind.t) =
  match kind with
  | C42 -> [| 1; 2; 0 |]
  | C53 | C63 | C73 -> [| 1; 1; 1 |]
  | _ -> invalid_arg "Exact.goal_counts: not a counter"

(* The potential sum over signals of (3 - weight): an FA at weight w
   sheds 4 - w, an HA sheds 1.  The best shed per area unit is 2 (an FA
   at weight 0), giving an admissible area bound of ceil(deficit / 2). *)
let potential counts = (3 * counts.(0)) + (2 * counts.(1)) + counts.(2)

let lower_bound p goal_p =
  let d = p - goal_p in
  if d <= 0 then 0 else (d + 1) / 2

let fa_cost = 2
let ha_cost = 1

type solution = {
  area : int;
  depth : int;
  blocks_rev : block list;
  outs : sig_ref array;
}

let synthesize (kind : Cell_kind.t) =
  if not (Cell_kind.is_counter kind) then
    invalid_arg "Exact.synthesize: not a counter";
  let m = Cell_kind.arity kind in
  let goal = goal_counts kind in
  let goal_p = potential goal in
  let init : (signal * sig_ref) list array =
    [| List.init m (fun i -> ({ tt = Tt.pin m i; level = 0 }, Pin i)); []; [] |]
  in
  let best = ref None in
  let memo : (signal list array, int) Hashtbl.t = Hashtbl.create 4096 in
  let counts st = Array.map List.length st in
  (* Accept a goal-shaped state: map the survivors to ports (by weight for
     the m:3 counters; for C42 the cin-independent weight-1 signal is the
     chain carry-out) and keep it if it beats the incumbent. *)
  let try_goal st area blocks_rev =
    let outs =
      match kind with
      | Cell_kind.C42 -> (
        match st.(1) with
        | [ a; b ] -> (
          let indep (s, _) = Tt.independent_of m s.tt ~pin:4 in
          match indep a, indep b with
          | true, false -> Some [| snd (List.hd st.(0)); snd b; snd a |]
          | false, true -> Some [| snd (List.hd st.(0)); snd a; snd b |]
          | _ -> None)
        | _ -> None)
      | _ ->
        Some
          [| snd (List.hd st.(0)); snd (List.hd st.(1)); snd (List.hd st.(2)) |]
    in
    match outs with
    | None -> ()
    | Some outs ->
      let depth =
        Array.fold_left
          (fun acc lst ->
            List.fold_left (fun acc ((s : signal), _) -> max acc s.level) acc lst)
          0 st
      in
      let better =
        match !best with
        | None -> true
        | Some b -> area < b.area || (area = b.area && depth < b.depth)
      in
      if better then best := Some { area; depth; blocks_rev; outs }
  in
  let rec dfs st area limit nblocks blocks_rev =
    let c = counts st in
    if c = goal then try_goal st area blocks_rev
    else begin
      let p = potential c in
      if
        p > goal_p
        && c.(2) <= goal.(2)
        && area + lower_bound p goal_p <= limit
      then begin
        let key = Array.map (List.map fst) st in
        let skip =
          match Hashtbl.find_opt memo key with
          | Some a -> a <= area
          | None -> false
        in
        if not skip then begin
          Hashtbl.replace memo key area;
          for weight = 0 to 1 do
            let arr = Array.of_list st.(weight) in
            let n = Array.length arr in
            let apply fa picks cost =
              if area + cost <= limit then begin
                let chosen = Array.map (fun i -> arr.(i)) picks in
                let lvl =
                  1
                  + Array.fold_left
                      (fun acc ((s : signal), _) -> max acc s.level)
                      0 chosen
                in
                let tt i = (fst chosen.(i)).tt in
                let sum_tt, carry_tt =
                  if fa then
                    (Tt.xor3 (tt 0) (tt 1) (tt 2), Tt.maj3 (tt 0) (tt 1) (tt 2))
                  else (Tt.logxor (tt 0) (tt 1), Tt.logand (tt 0) (tt 1))
                in
                let sum =
                  ({ tt = sum_tt; level = lvl }, Out { block = nblocks; port = 0 })
                in
                let carry =
                  ( { tt = carry_tt; level = lvl },
                    Out { block = nblocks; port = 1 } )
                in
                let in_picks idx = Array.exists (fun i -> i = idx) picks in
                let kept =
                  List.filteri (fun idx _ -> not (in_picks idx)) st.(weight)
                in
                let st' = Array.copy st in
                st'.(weight) <- List.stable_sort compare_entry (sum :: kept);
                st'.(weight + 1) <-
                  List.stable_sort compare_entry (carry :: st.(weight + 1));
                dfs st' (area + cost) limit (nblocks + 1)
                  ({ fa; args = Array.map snd chosen } :: blocks_rev)
              end
            in
            for i = 0 to n - 3 do
              for j = i + 1 to n - 2 do
                for k = j + 1 to n - 1 do
                  apply true [| i; j; k |] fa_cost
                done
              done
            done;
            for i = 0 to n - 2 do
              for j = i + 1 to n - 1 do
                apply false [| i; j |] ha_cost
              done
            done
          done
        end
      end
    end
  in
  let rec deepen limit =
    if limit > 4 * m then
      Dp_diag.Diag.fail
        (Dp_diag.Diag.errorf ~code:"DP-CTR002" ~subsystem:"counters"
           "exact synthesis of %s found no body within area %d"
           (Cell_kind.name kind) limit)
    else begin
      Hashtbl.reset memo;
      best := None;
      dfs init 0 limit 0 [];
      match !best with
      | Some { blocks_rev; outs; _ } ->
        { kind; blocks = Array.of_list (List.rev blocks_rev); outputs = outs }
      | None -> deepen (limit + 1)
    end
  in
  deepen (lower_bound (potential (counts init)) goal_p)

(* One search per kind per process; the searches are deterministic, so the
   cache is an optimization, never a source of divergence (the test suite
   compares cached against freshly recomputed recipes). *)
let cache : (Cell_kind.t, recipe) Hashtbl.t = Hashtbl.create 8

let recipe kind =
  match Hashtbl.find_opt cache kind with
  | Some r -> r
  | None ->
    let r = synthesize kind in
    Hashtbl.add cache kind r;
    r

let fa_count r =
  Array.fold_left (fun acc b -> if b.fa then acc + 1 else acc) 0 r.blocks

let ha_count r =
  Array.fold_left (fun acc b -> if b.fa then acc else acc + 1) 0 r.blocks

let area_units r = (2 * fa_count r) + ha_count r

let depth r =
  let nb = Array.length r.blocks in
  let lvl = Array.make (max nb 1) 0 in
  let ref_level = function
    | Pin _ -> 0
    | Out { block; port = _ } -> lvl.(block)
  in
  Array.iteri
    (fun i b ->
      lvl.(i) <- 1 + Array.fold_left (fun acc a -> max acc (ref_level a)) 0 b.args)
    r.blocks;
  Array.fold_left (fun acc o -> max acc (ref_level o)) 0 r.outputs
