(** Recipe-derived physical model of a counter body, computed from the
    technology's FA/HA constants alone.  [Certify] holds the technology's
    monolithic closed forms to these values, so the numbers STA/power see
    for a counter cell are exactly the numbers its certified body
    implies. *)

(** Delay from [pin] to [port] through the recipe, or [None] when the pin
    has no combinational path to that port. *)
val pin_delay :
  Dp_tech.Tech.t -> Exact.recipe -> pin:int -> port:int -> float option

(** Worst {!pin_delay} over the pins reaching [port]. *)
val worst_delay : Dp_tech.Tech.t -> Exact.recipe -> port:int -> float

(** Sum of the body's FA/HA areas. *)
val area : Dp_tech.Tech.t -> Exact.recipe -> float

(** Sum of per-transition energies over every block output — the total
    the monolithic cell must conserve across its three ports. *)
val total_energy : Dp_tech.Tech.t -> Exact.recipe -> float
