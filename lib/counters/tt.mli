(** Truth tables of boolean functions of up to 7 inputs, packed into 128
    bits.  Bit [v] (of [lo] for [v < 64], else of [hi]) is the function
    value on the input assignment whose pin [i] carries bit [i] of [v]. *)

type t = { lo : int64; hi : int64 }

val equal : t -> t -> bool

(** Total order, unsigned and high-word-first; on the pin tables of
    {!pin} it coincides with pin order. *)
val compare : t -> t -> int

(** [of_fun m f] tabulates [f] over all [2^m] assignments ([m <= 7]). *)
val of_fun : int -> (int -> bool) -> t

(** The projection table of input [i] among [m] inputs. *)
val pin : int -> int -> t

(** Value on assignment [v]. *)
val get : t -> int -> bool

val logxor : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val xor3 : t -> t -> t -> t
val maj3 : t -> t -> t -> t

(** [independent_of m t ~pin] holds when flipping [pin] never changes the
    function — there is no combinational path from that input. *)
val independent_of : int -> t -> pin:int -> bool
