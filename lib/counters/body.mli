(** Evaluation and netlist expansion of exactly-synthesized counter
    bodies. *)

(** [port_value r ~port v] evaluates the recipe's gate network on the pin
    assignment bitmask [v] — the quantity [Certify] compares exhaustively
    against {!Spec.port_value}. *)
val port_value : Exact.recipe -> port:int -> int -> bool

(** Output ports weighted by [2^weight]; equals [Spec.popcount v] for a
    correct recipe. *)
val weighted_value : Exact.recipe -> int -> int

(** [expand netlist r pins] instantiates the recipe through the ordinary
    FA/HA builders and returns the three output nets — the discrete form
    of the counter, against which tests check the monolithic cell.
    @raise Invalid_argument on an arity mismatch. *)
val expand :
  Dp_netlist.Netlist.t ->
  Exact.recipe ->
  Dp_netlist.Netlist.net array ->
  Dp_netlist.Netlist.net * Dp_netlist.Netlist.net * Dp_netlist.Netlist.net
