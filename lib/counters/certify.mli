(** Load-bearing certification of the counter library against a
    technology.

    [ensure tech] exactly-synthesizes (or reuses) every counter body and
    proves, for the given technology: exhaustive functional equivalence
    of each body against its arithmetic spec (all [2^m] assignments,
    every port); bit-level agreement of the technology's closed-form
    pin/port delays with the body's path delays, including path
    {e absence} (the 4:2 carry-out's cin independence); area equality;
    and port-energy conservation.  The counter-aware strategies call this
    before building, so a miswired body or a drifted closed form stops
    synthesis rather than silently corrupting results.

    Memoized per technology value.

    @raise Dp_diag.Diag.E with code [DP-CTR001] on any mismatch. *)
val ensure : Dp_tech.Tech.t -> unit
