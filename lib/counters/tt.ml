type t = { lo : int64; hi : int64 }

let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi

(* Unsigned, high-word-first: the input-pin tables sort in pin order
   (pin 0 = 0xAA.., pin 1 = 0xCC.., ... pin 6 = hi-word ones), which is
   what makes the exact search's first combination the lowest pins. *)
let compare a b =
  let c = Int64.unsigned_compare a.hi b.hi in
  if c <> 0 then c else Int64.unsigned_compare a.lo b.lo

let of_fun m f =
  let lo = ref 0L and hi = ref 0L in
  for v = 0 to (1 lsl m) - 1 do
    if f v then
      if v < 64 then lo := Int64.logor !lo (Int64.shift_left 1L v)
      else hi := Int64.logor !hi (Int64.shift_left 1L (v - 64))
  done;
  { lo = !lo; hi = !hi }

let pin m i = of_fun m (fun v -> (v lsr i) land 1 = 1)

let get t v =
  if v < 64 then Int64.logand (Int64.shift_right_logical t.lo v) 1L <> 0L
  else Int64.logand (Int64.shift_right_logical t.hi (v - 64)) 1L <> 0L

let map2 f a b = { lo = f a.lo b.lo; hi = f a.hi b.hi }
let logxor = map2 Int64.logxor
let logand = map2 Int64.logand
let logor = map2 Int64.logor
let xor3 a b c = logxor (logxor a b) c
let maj3 a b c = logor (logand a b) (logor (logand a c) (logand b c))

(* [independent_of m t ~pin]: the function never changes when [pin]
   flips — i.e. there is no combinational dependence on that input. *)
let independent_of m t ~pin =
  let ok = ref true in
  for v = 0 to (1 lsl m) - 1 do
    if get t v <> get t (v lxor (1 lsl pin)) then ok := false
  done;
  !ok
