open Dp_tech

let kinds = [ Cell_kind.C42; Cell_kind.C53; Cell_kind.C63; Cell_kind.C73 ]

let arity = Cell_kind.arity

let port_weight (kind : Cell_kind.t) ~port =
  match kind, port with
  | (C53 | C63 | C73), (0 | 1 | 2) -> port
  | C42, 0 -> 0
  | C42, (1 | 2) -> 1
  | _ -> invalid_arg "Spec.port_weight"

let popcount v =
  let n = ref 0 and v = ref v in
  while !v <> 0 do
    n := !n + (!v land 1);
    v := !v lsr 1
  done;
  !n

let port_value (kind : Cell_kind.t) ~port v =
  match kind with
  | C53 | C63 | C73 -> (popcount v lsr port) land 1 = 1
  | C42 -> (
    let bit i = (v lsr i) land 1 = 1 in
    match port with
    | 0 -> bit 0 <> bit 1 <> bit 2 <> bit 3 <> bit 4
    | 1 ->
      let t = bit 0 <> bit 1 <> bit 2 in
      (t && bit 3) || (t && bit 4) || (bit 3 && bit 4)
    | 2 -> (bit 0 && bit 1) || (bit 0 && bit 2) || (bit 1 && bit 2)
    | _ -> invalid_arg "Spec.port_value: bad port")
  | _ -> invalid_arg "Spec.port_value: not a counter"

let port_table kind ~port = Tt.of_fun (arity kind) (port_value kind ~port)

let weighted_value kind v =
  let acc = ref 0 in
  for port = 0 to 2 do
    if port_value kind ~port v then
      acc := !acc + (1 lsl port_weight kind ~port)
  done;
  !acc
