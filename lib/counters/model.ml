open Dp_tech

(* Pin-resolved delay by a single-pin forward pass: seed the probed pin
   at 0.0 and every other pin at -inf, propagate block worst-arrival plus
   the technology's FA/HA port delays, and read the port.  -inf at the
   output means no combinational path (the 4:2's carry-out vs its cin).
   Sums stay left-associated along each path, so for non-negative delays
   the results are bit-identical to the technology's closed forms —
   [Certify] holds the two within a tight epsilon.  The composed path is
   scaled by the technology's [counter_fusion], the ratio at which the
   monolithic cell beats its discrete reference body. *)
let pin_delay tech (r : Exact.recipe) ~pin ~port =
  let nb = Array.length r.blocks in
  let arr = Array.make (max nb 1) (neg_infinity, neg_infinity) in
  let at = function
    | Exact.Pin i -> if i = pin then 0.0 else neg_infinity
    | Exact.Out { block; port } -> (if port = 0 then fst else snd) arr.(block)
  in
  Array.iteri
    (fun i (b : Exact.block) ->
      let worst =
        Array.fold_left (fun acc a -> Float.max acc (at a)) neg_infinity b.args
      in
      let kind = if b.fa then Cell_kind.Fa else Cell_kind.Ha in
      arr.(i) <-
        ( worst +. Tech.delay tech kind ~port:0,
          worst +. Tech.delay tech kind ~port:1 ))
    r.blocks;
  let a = at r.outputs.(port) in
  if Float.is_finite a then Some (tech.Tech.counter_fusion *. a) else None

let worst_delay tech r ~port =
  let worst = ref neg_infinity in
  for pin = 0 to Cell_kind.arity r.Exact.kind - 1 do
    match pin_delay tech r ~pin ~port with
    | Some d -> worst := Float.max !worst d
    | None -> ()
  done;
  !worst

let area tech (r : Exact.recipe) =
  (float_of_int (Exact.fa_count r) *. Tech.area tech Cell_kind.Fa)
  +. (float_of_int (Exact.ha_count r) *. Tech.area tech Cell_kind.Ha)

(* Total switching energy of the body's block outputs.  The monolithic
   cell attributes the same total across its three ports, so the sums
   must agree — the conservation law [Certify] checks. *)
let total_energy tech (r : Exact.recipe) =
  Array.fold_left
    (fun acc (b : Exact.block) ->
      let kind = if b.fa then Cell_kind.Fa else Cell_kind.Ha in
      acc +. Tech.energy tech kind ~port:0 +. Tech.energy tech kind ~port:1)
    0.0 r.blocks
