(** Arithmetic specification of the generalized parallel counters.

    Each counter sums same-weight input bits; its three output ports carry
    the result at weights [port_weight] above the input weight, and for
    every assignment the port values weighted by [2^weight] sum to the
    input population count.  [C53]/[C63]/[C73] output the binary digits of
    the popcount; [C42] (pins 0-3 = addends, pin 4 = carry-in) outputs
    sum / carry / chain carry-out with the carry-out the majority of pins
    0-2 — independent of the carry-in, so rows chain ripple-free. *)

(** The counter kinds, in certification order. *)
val kinds : Dp_tech.Cell_kind.t list

val arity : Dp_tech.Cell_kind.t -> int

(** Weight of output [port] relative to the input weight: [port] itself
    for the m:3 counters; 0/1/1 for [C42]. *)
val port_weight : Dp_tech.Cell_kind.t -> port:int -> int

val popcount : int -> int

(** [port_value kind ~port v] — value of [port] on the pin assignment
    bitmask [v]. *)
val port_value : Dp_tech.Cell_kind.t -> port:int -> int -> bool

(** Full truth table of one output port. *)
val port_table : Dp_tech.Cell_kind.t -> port:int -> Tt.t

(** [sum over ports of value * 2^weight] — equals [popcount v] for every
    counter kind and assignment (the defining invariant). *)
val weighted_value : Dp_tech.Cell_kind.t -> int -> int
