(** Exact synthesis of the parallel-counter bodies.

    A branch-and-bound search over FA/HA compositions finds, for each
    counter kind, a gate-level body that is provably minimal under the
    lexicographic cost (area in HA units with FA = 2, then unit depth),
    with deterministic first-found tie-breaking.  Because every move
    preserves the invariant that the weighted signal functions sum to the
    input popcount, a goal-shaped result is functionally correct by
    construction; [Certify] re-verifies it exhaustively anyway. *)

(** A signal inside a recipe: an input pin or a block output
    (port 0 = sum, port 1 = carry). *)
type sig_ref = Pin of int | Out of { block : int; port : int }

(** One FA (3 args) or HA (2 args) block. *)
type block = { fa : bool; args : sig_ref array }

(** A certified body: blocks in dependency order (arguments only reference
    pins or earlier blocks) and the three output ports. *)
type recipe = {
  kind : Dp_tech.Cell_kind.t;
  blocks : block array;
  outputs : sig_ref array;
}

(** Run the search from scratch (no cache).  Deterministic.
    @raise Invalid_argument if the kind is not a counter. *)
val synthesize : Dp_tech.Cell_kind.t -> recipe

(** Memoized {!synthesize} — one search per kind per process. *)
val recipe : Dp_tech.Cell_kind.t -> recipe

val fa_count : recipe -> int
val ha_count : recipe -> int

(** Area in HA units (FA = 2, HA = 1) — the search's primary cost. *)
val area_units : recipe -> int

(** Unit depth (levels of FA/HA blocks) — the search's tie-break cost. *)
val depth : recipe -> int
