open Dp_netlist

(* One word-level 3:2 carry-save adder: an FA (or HA) per populated bit
   position, producing a sum row and a carry row.  The whole word is one
   module — individual bits cannot migrate between operands, which is
   exactly the restriction the paper's bit-level scheme lifts. *)
let csa netlist ~width (r1 : Rows.row) (r2 : Rows.row) (r3 : Rows.row) =
  let sum_row = Array.make width None in
  let carry_row = Array.make width None in
  for j = 0 to width - 1 do
    let bits =
      List.filter_map (fun (r : Rows.row) -> r.(j)) [ r1; r2; r3 ]
    in
    let put_carry c =
      if j + 1 < width then carry_row.(j + 1) <- Some c
    in
    match bits with
    | [] -> ()
    | [ a ] -> sum_row.(j) <- Some a
    | [ a; b ] ->
      let s, c = Netlist.ha netlist a b in
      sum_row.(j) <- Some s;
      put_carry c
    | [ a; b; c ] ->
      let s, carry = Netlist.fa netlist a b c in
      sum_row.(j) <- Some s;
      put_carry carry
    | _ :: _ :: _ :: _ :: _ -> assert false
  done;
  sum_row, carry_row

let take_earliest netlist rows =
  let sorted =
    List.sort
      (fun a b -> Float.compare (Rows.ready_time netlist a) (Rows.ready_time netlist b))
      rows
  in
  match sorted with
  | r1 :: r2 :: r3 :: rest -> r1, r2, r3, rest
  | [] | [ _ ] | [ _; _ ] -> invalid_arg "Csa_opt.take_earliest: fewer than 3 rows"

let allocate netlist ~width rows =
  (* Delay-oriented word-level CSA-tree allocation in the spirit of the
     authors' CSA_OPT [8]: while at least three operands remain, combine
     the three with the earliest ready times (a word-level Huffman greedy,
     the direct analogue of SC_T one level up). *)
  let gov = Netlist.gov netlist in
  let rec go rows =
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Reduce g
    | None -> ());
    match rows with
    | [] -> Array.make width None, Array.make width None
    | [ r ] -> r, Array.make width None
    | [ r1; r2 ] -> r1, r2
    | _ :: _ :: _ :: _ ->
      let r1, r2, r3, rest = take_earliest netlist rows in
      let sum_row, carry_row = csa netlist ~width r1 r2 r3 in
      go (sum_row :: carry_row :: rest)
  in
  go rows
