(** Typed diagnostics shared by every user-facing entry point of the flow.

    A [t] identifies {e what} went wrong (a stable [code]), {e where}
    ([subsystem]), and {e why} ([message] plus key/value [context]),
    so callers can branch on codes instead of matching substrings of
    [Failure] payloads.  Codes follow ["DP-<SUBSYSTEM><NNN>"], e.g.
    ["DP-PARSE001"]; the catalogue lives in the README's
    "Verification & diagnostics" section. *)

type severity = Info | Warning | Error

type t = {
  code : string;  (** stable machine-readable identifier, e.g. ["DP-ENV002"] *)
  subsystem : string;  (** ["parse"], ["env"], ["tech"], ["synth"], ["lint"], ["cli"] *)
  severity : severity;
  message : string;
  context : (string * string) list;  (** ordered key/value details *)
}

(** Raised by the exception-style wrappers around result-returning APIs. *)
exception E of t

val severity_name : severity -> string
val pp_severity : severity Fmt.t

(** [v ~code ~subsystem msg] builds a diagnostic (default severity
    [Error], empty context). *)
val v : ?severity:severity -> ?context:(string * string) list ->
  code:string -> subsystem:string -> string -> t

(** [errorf ~code ~subsystem fmt ...] formats the message in place. *)
val errorf : ?severity:severity -> ?context:(string * string) list ->
  code:string -> subsystem:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

(** [error d] is [Stdlib.Error d] — for building [result] pipelines. *)
val error : t -> ('a, t) result

(** [fail d] raises {!E}. *)
val fail : t -> 'a

(** Unwraps [Ok] or raises {!E} — bridges result APIs to the
    exception-style wrappers kept for backward compatibility. *)
val get_ok : ('a, t) result -> 'a

val pp : t Fmt.t
val to_string : t -> string
