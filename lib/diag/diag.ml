type severity = Info | Warning | Error

type t = {
  code : string;
  subsystem : string;
  severity : severity;
  message : string;
  context : (string * string) list;
}

exception E of t

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pp_severity ppf s = Fmt.string ppf (severity_name s)

let v ?(severity = Error) ?(context = []) ~code ~subsystem message =
  { code; subsystem; severity; message; context }

let errorf ?severity ?context ~code ~subsystem fmt =
  Fmt.kstr (fun message -> v ?severity ?context ~code ~subsystem message) fmt

let error d = Stdlib.Error d
let fail d = raise (E d)
let get_ok = function Ok x -> x | Stdlib.Error d -> fail d

let pp ppf d =
  Fmt.pf ppf "%s [%s/%a] %s" d.code d.subsystem pp_severity d.severity d.message;
  match d.context with
  | [] -> ()
  | ctx ->
    Fmt.pf ppf " (%a)"
      Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string string))
      ctx

let to_string d = Fmt.str "%a" pp d

(* Register a printer so an uncaught [E] on a legacy path still reports the
   structured payload instead of an opaque constructor. *)
let () =
  Printexc.register_printer (function
    | E d -> Some (to_string d)
    | _ -> None)
