(** One-call synthesis: expression → netlist under a chosen strategy, with
    the metrics the paper's tables report. *)

open Dp_netlist
open Dp_expr

type result = {
  strategy : Strategy.t;
  netlist : Netlist.t;
  output : string;  (** always ["out"] *)
  width : int;
  stats : Stats.t;
  tree_switching : float;  (** the paper's E_switching(T) *)
  total_switching : float;
  reduced_max_arrival : float option;
      (** latest arrival among the final adder's operand bits — the
          objective of the paper's modified Problem 1; [None] for the
          conventional flow, which has no single final adder *)
}

(** [run strategy env expr] synthesizes [expr] mod 2^width (default: the
    natural width).  [adder] picks the final/CPA adder architecture;
    [lower_config] the coefficient recoding.  Matrix strategies share the
    same lowering; [Conventional] builds its own word-level structure.

    [check_level] (default [Off]) gates the result on the structural
    integrity checker: [Warn] reports {!Dp_verify.Lint} findings on
    stderr and proceeds, [Strict] additionally @raise Dp_diag.Diag.E
    with a [DP-SYNTH002] (lint) or [DP-SYNTH003] (output width)
    diagnostic if any finding survives.  Prefer {!run_res} for the
    exception-free form. *)
val run :
  ?tech:Dp_tech.Tech.t -> ?adder:Dp_adders.Adder.kind ->
  ?lower_config:Dp_bitmatrix.Lower.config -> ?width:int ->
  ?check_level:Dp_verify.Lint.check_level ->
  Strategy.t -> Env.t -> Ast.t -> result

(** Like {!run}, but every failure — unbound variables ([DP-ENV003]),
    bad widths surfacing from the lowering ([DP-SYNTH001]), strict-mode
    lint findings ([DP-SYNTH002/3]), and any other exception escaping
    the flow, converted to the [DP-INTERNAL] catch-all — comes back as a
    typed diagnostic instead of an exception.  Only [Sys.Break] is
    re-raised. *)
val run_res :
  ?tech:Dp_tech.Tech.t -> ?adder:Dp_adders.Adder.kind ->
  ?lower_config:Dp_bitmatrix.Lower.config -> ?width:int ->
  ?check_level:Dp_verify.Lint.check_level ->
  Strategy.t -> Env.t -> Ast.t -> (result, Dp_diag.Diag.t) Stdlib.result

type port = { name : string; expr : Ast.t; width : int }

type multi_result = {
  strategy : Strategy.t;
  netlist : Netlist.t;
  ports : port list;
  stats : Stats.t;
  tree_switching : float;
  total_switching : float;
}

(** Synthesize several named outputs into one netlist.  Inputs and (via
    structural hashing) partial-product gates are shared across outputs —
    the paper's "applying our algorithm to all arithmetic expressions in a
    circuit iteratively".  @raise Invalid_argument on an empty port list or
    conflicting input widths. *)
val run_multi :
  ?tech:Dp_tech.Tech.t -> ?adder:Dp_adders.Adder.kind ->
  ?lower_config:Dp_bitmatrix.Lower.config ->
  ?check_level:Dp_verify.Lint.check_level ->
  Strategy.t -> Env.t -> port list -> multi_result

(** Exception-free {!run_multi}; failures are typed diagnostics as in
    {!run_res}, including the [DP-INTERNAL] catch-all and a [DP-ENV003]
    coverage pre-check over every port. *)
val run_multi_res :
  ?tech:Dp_tech.Tech.t -> ?adder:Dp_adders.Adder.kind ->
  ?lower_config:Dp_bitmatrix.Lower.config ->
  ?check_level:Dp_verify.Lint.check_level ->
  Strategy.t -> Env.t -> port list ->
  (multi_result, Dp_diag.Diag.t) Stdlib.result

(** Check every port of a multi-output result; returns the first failing
    port's name with its mismatch. *)
val verify_multi :
  ?trials:int -> ?env:Env.t -> multi_result ->
  (unit, string * Dp_sim.Equiv.mismatch) Stdlib.result

(** Like {!run} but synthesizes once per final-adder architecture and
    returns the fastest result — modelling the downstream logic
    optimization the paper relied on for the final CPA. *)
val run_best_adder :
  ?tech:Dp_tech.Tech.t -> ?lower_config:Dp_bitmatrix.Lower.config ->
  ?width:int -> Strategy.t -> Env.t -> Ast.t -> result

(** Random functional-equivalence check of a result against its source
    expression.  Pass the environment whenever it declares signed
    variables, so their bit patterns are interpreted in two's
    complement. *)
val verify :
  ?trials:int -> ?env:Env.t -> result -> Ast.t ->
  (unit, Dp_sim.Equiv.mismatch) Stdlib.result
