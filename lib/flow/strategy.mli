(** The synthesis strategies the experiments compare: the paper's FA_AOT /
    FA_ALP (plus their combined tie-breaking variants and the FA_random
    baseline), the fixed-structure Wallace/Dadda schemes, the Fig. 2(b)
    column-isolation variant, the word-level CSA_OPT [8], the
    conventional two-step RTL flow, and the generalized parallel-counter
    variants that extend SC_T/SC_LP with certified 7:3/6:3/5:3 counters
    and Dadda with a staged 4:2 compressor tree. *)

type t =
  | Fa_aot
  | Fa_aot_combined
  | Fa_aot_fa3
  | Fa_alp
  | Fa_alp_combined
  | Fa_random of int
  | Wallace
  | Dadda
  | Column_isolation
  | Csa_opt
  | Conventional
  | Sc_t_gpc
  | Sc_lp_gpc
  | Dadda_gpc

val all : t list
val name : t -> string
val of_name : string -> t option
val pp : t Fmt.t
