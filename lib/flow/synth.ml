open Dp_netlist
open Dp_expr

type result = {
  strategy : Strategy.t;
  netlist : Netlist.t;
  output : string;
  width : int;
  stats : Stats.t;
  tree_switching : float;
  total_switching : float;
  reduced_max_arrival : float option;
}

let output_name = "out"

let allocate_matrix (strategy : Strategy.t) netlist matrix =
  match strategy with
  | Fa_aot -> Dp_core.Fa_aot.allocate netlist matrix
  | Fa_aot_combined ->
    Dp_core.Fa_aot.allocate ~tie_break:Dp_core.Sc_t.Prefer_high_q netlist matrix
  | Fa_aot_fa3 ->
    Dp_core.Fa_aot.allocate ~three_policy:Dp_core.Sc_t.Fa_finish netlist matrix
  | Fa_alp -> Dp_core.Fa_alp.allocate netlist matrix
  | Fa_alp_combined ->
    Dp_core.Fa_alp.allocate ~tie_break:Dp_core.Sc_lp.Prefer_early netlist matrix
  | Fa_random seed -> Dp_core.Fa_random.allocate ~seed netlist matrix
  | Wallace -> Dp_core.Wallace.allocate netlist matrix
  | Dadda -> Dp_core.Dadda.allocate netlist matrix
  | Column_isolation -> Dp_core.Column_isolation.allocate netlist matrix
  | Sc_t_gpc -> Dp_core.Gpc.allocate_t netlist matrix
  | Sc_lp_gpc -> Dp_core.Gpc.allocate_lp netlist matrix
  | Dadda_gpc -> Dp_core.Gpc.allocate_dadda netlist matrix
  | Conventional | Csa_opt ->
    invalid_arg "Synth.allocate_matrix: not a matrix strategy"

let finish ?reduced_max_arrival strategy netlist ~width out_nets =
  Netlist.set_output netlist output_name out_nets;
  {
    strategy;
    netlist;
    output = output_name;
    width;
    stats = Stats.of_netlist netlist;
    tree_switching = Dp_power.Switching.tree_switching netlist;
    total_switching = Dp_power.Switching.total_switching netlist;
    reduced_max_arrival;
  }

let rows_max_arrival netlist (row_a, row_b) =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | None -> acc
      | Some net -> Float.max acc (Netlist.arrival netlist net))
    (Array.fold_left
       (fun acc slot ->
         match slot with
         | None -> acc
         | Some net -> Float.max acc (Netlist.arrival netlist net))
       0.0 row_a)
    row_b

(* Post-synthesis integrity gate: structural lint plus the CPA-boundary
   width consistency of every declared output bus. *)
let check_netlist ~check_level netlist ports =
  match (check_level : Dp_verify.Lint.check_level) with
  | Off -> Ok ()
  | Warn | Strict -> (
    match Dp_verify.Lint.gate ~level:check_level netlist with
    | Error _ as e -> e
    | Ok () ->
      let rec widths = function
        | [] -> Ok ()
        | (name, width) :: rest ->
          let declared = Array.length (Netlist.find_output netlist name) in
          if declared <> width then
            Dp_diag.Diag.error
              (Dp_diag.Diag.errorf ~code:"DP-SYNTH003" ~subsystem:"synth"
                 ~context:[ ("output", name) ]
                 "output %s is %d bits wide at the final adder boundary, but \
                  %d bits were requested"
                 name declared width)
          else widths rest
      in
      widths ports)

let build ?(tech = Dp_tech.Tech.lcb_like) ?(adder = Dp_adders.Adder.Cla)
    ?(lower_config = Dp_bitmatrix.Lower.default_config) ?width strategy env expr =
  let width =
    match width with Some w -> w | None -> Range.natural_width env expr
  in
  let netlist = Netlist.create ~tech in
  match (strategy : Strategy.t) with
  | Conventional ->
    let config = { Dp_baselines.Conventional.default_config with adder } in
    let out =
      Dp_baselines.Conventional.synthesize ~config netlist env expr ~width
    in
    finish strategy netlist ~width out
  | Csa_opt ->
    let matrix =
      Dp_bitmatrix.Lower.lower ~config:lower_config netlist env expr ~width
    in
    let rows = Dp_baselines.Rows.of_matrix ~width matrix in
    let final_rows = Dp_baselines.Csa_opt.allocate netlist ~width rows in
    let reduced_max_arrival = rows_max_arrival netlist final_rows in
    let out = Dp_adders.Adder.build_rows adder netlist ~width final_rows in
    finish ~reduced_max_arrival strategy netlist ~width out
  | Fa_aot | Fa_aot_combined | Fa_aot_fa3 | Fa_alp | Fa_alp_combined
  | Fa_random _ | Wallace | Dadda | Column_isolation | Sc_t_gpc | Sc_lp_gpc
  | Dadda_gpc ->
    let matrix =
      Dp_bitmatrix.Lower.lower ~config:lower_config netlist env expr ~width
    in
    allocate_matrix strategy netlist matrix;
    let final_rows = Dp_bitmatrix.Matrix.operand_rows matrix in
    let reduced_max_arrival = rows_max_arrival netlist final_rows in
    let out = Dp_adders.Adder.build_rows adder netlist ~width final_rows in
    finish ~reduced_max_arrival strategy netlist ~width out

let run ?tech ?adder ?lower_config ?width
    ?(check_level = Dp_verify.Lint.Off) strategy env expr =
  let r = build ?tech ?adder ?lower_config ?width strategy env expr in
  Dp_diag.Diag.get_ok (check_netlist ~check_level r.netlist [ (r.output, r.width) ]);
  r

(* No exception may escape the [_res] entry points: anything the typed
   paths don't already cover (a [Failure] from a library call, a stack
   overflow on a pathological expression, ...) is converted to the
   [DP-INTERNAL] catch-all so fuzzing and the CLI always see a [Diag.t].
   [Sys.Break] (ctrl-C) is deliberately re-raised. *)
let internal_diag strategy exn =
  Dp_diag.Diag.error
    (Dp_diag.Diag.errorf ~code:"DP-INTERNAL" ~subsystem:"synth"
       ~context:[ ("strategy", Strategy.name strategy) ]
       "unexpected exception escaped the synthesis flow: %s"
       (Printexc.to_string exn))

let run_res ?tech ?adder ?lower_config ?width ?check_level strategy env expr =
  match Env.check_covers_res expr env with
  | Error _ as e -> e
  | Ok () -> (
    match run ?tech ?adder ?lower_config ?width ?check_level strategy env expr with
    | r -> Ok r
    | exception Dp_diag.Diag.E d -> Error d
    | exception Invalid_argument msg ->
      Dp_diag.Diag.error
        (Dp_diag.Diag.v ~code:"DP-SYNTH001" ~subsystem:"synth"
           ~context:[ ("strategy", Strategy.name strategy) ]
           msg)
    | exception (Sys.Break as e) -> raise e
    | exception e -> internal_diag strategy e)

type port = { name : string; expr : Ast.t; width : int }

type multi_result = {
  strategy : Strategy.t;
  netlist : Netlist.t;
  ports : port list;
  stats : Stats.t;
  tree_switching : float;
  total_switching : float;
}

(* Synthesize several outputs into ONE netlist.  Inputs and — through the
   builder's structural hashing — partial-product gates are shared across
   outputs; each output gets its own FA-tree and final adder.  This is the
   paper's "applying our algorithm to all arithmetic expressions in a
   circuit iteratively". *)
let run_multi ?(tech = Dp_tech.Tech.lcb_like) ?(adder = Dp_adders.Adder.Cla)
    ?(lower_config = Dp_bitmatrix.Lower.default_config)
    ?(check_level = Dp_verify.Lint.Off) strategy env ports =
  (match ports with [] -> invalid_arg "Synth.run_multi: no outputs" | _ :: _ -> ());
  let netlist = Netlist.create ~tech in
  List.iter
    (fun p ->
      let out =
        match (strategy : Strategy.t) with
        | Conventional ->
          let config = { Dp_baselines.Conventional.default_config with adder } in
          Dp_baselines.Conventional.synthesize ~config netlist env p.expr
            ~width:p.width
        | Csa_opt ->
          let matrix =
            Dp_bitmatrix.Lower.lower ~config:lower_config netlist env p.expr
              ~width:p.width
          in
          let rows = Dp_baselines.Rows.of_matrix ~width:p.width matrix in
          let final_rows = Dp_baselines.Csa_opt.allocate netlist ~width:p.width rows in
          Dp_adders.Adder.build_rows adder netlist ~width:p.width final_rows
        | Fa_aot | Fa_aot_combined | Fa_aot_fa3 | Fa_alp | Fa_alp_combined
        | Fa_random _ | Wallace | Dadda | Column_isolation | Sc_t_gpc
        | Sc_lp_gpc | Dadda_gpc ->
          let matrix =
            Dp_bitmatrix.Lower.lower ~config:lower_config netlist env p.expr
              ~width:p.width
          in
          allocate_matrix strategy netlist matrix;
          Dp_adders.Adder.build_rows adder netlist ~width:p.width
            (Dp_bitmatrix.Matrix.operand_rows matrix)
      in
      Netlist.set_output netlist p.name out)
    ports;
  Dp_diag.Diag.get_ok
    (check_netlist ~check_level netlist
       (List.map (fun p -> (p.name, p.width)) ports));
  {
    strategy;
    netlist;
    ports;
    stats = Stats.of_netlist netlist;
    tree_switching = Dp_power.Switching.tree_switching netlist;
    total_switching = Dp_power.Switching.total_switching netlist;
  }

let run_multi_res ?tech ?adder ?lower_config ?check_level strategy env ports =
  let covers =
    List.fold_left
      (fun acc (p : port) ->
        match acc with
        | Error _ -> acc
        | Ok () -> Env.check_covers_res p.expr env)
      (Ok ()) ports
  in
  match covers with
  | Error _ as e -> e
  | Ok () -> (
    match run_multi ?tech ?adder ?lower_config ?check_level strategy env ports with
    | r -> Ok r
    | exception Dp_diag.Diag.E d -> Error d
    | exception Invalid_argument msg ->
      Dp_diag.Diag.error
        (Dp_diag.Diag.v ~code:"DP-SYNTH001" ~subsystem:"synth"
           ~context:[ ("strategy", Strategy.name strategy) ]
           msg)
    | exception (Sys.Break as e) -> raise e
    | exception e -> internal_diag strategy e)

(* Try every final-adder architecture and keep the fastest netlist — the
   flow-level analogue of letting downstream logic synthesis restructure
   the final CPA for the tree's output arrival profile. *)
let run_best_adder ?tech ?lower_config ?width strategy env expr =
  let candidates =
    List.map
      (fun adder -> run ?tech ~adder ?lower_config ?width strategy env expr)
      Dp_adders.Adder.all
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun (best : result) (r : result) ->
        if r.stats.delay < best.stats.delay then r else best)
      first rest

let verify_multi ?(trials = 120) ?env (result : multi_result) =
  let signed =
    match env with
    | None -> fun (_ : string) -> false
    | Some env -> fun x -> Env.mem x env && Env.is_signed x env
  in
  let rec go = function
    | [] -> Ok ()
    | p :: rest -> (
      match
        Dp_sim.Equiv.check_random ~signed ~trials result.netlist p.expr
          ~output:p.name ~width:p.width
      with
      | Ok () -> go rest
      | Error m -> Error (p.name, m))
  in
  go result.ports

let verify ?(trials = 200) ?env (result : result) expr =
  let signed =
    match env with
    | None -> fun (_ : string) -> false
    | Some env -> fun x -> Env.mem x env && Env.is_signed x env
  in
  Dp_sim.Equiv.check_random ~signed ~trials result.netlist expr
    ~output:result.output ~width:result.width
