type t =
  | Fa_aot
  | Fa_aot_combined  (** FA_AOT breaking arrival ties toward large |q| *)
  | Fa_aot_fa3  (** FA_AOT finishing 3-addend columns with an FA (Fig. 1 style) *)
  | Fa_alp
  | Fa_alp_combined  (** FA_ALP breaking |q| ties toward early arrival *)
  | Fa_random of int  (** seed *)
  | Wallace
  | Dadda
  | Column_isolation
  | Csa_opt
  | Conventional
  | Sc_t_gpc  (** SC_T order with 7:3/6:3/5:3 parallel counters *)
  | Sc_lp_gpc  (** SC_LP order with 7:3/6:3/5:3 parallel counters *)
  | Dadda_gpc  (** Dadda-style staged 4:2 compressor tree *)

let all =
  [
    Conventional;
    Wallace;
    Dadda;
    Column_isolation;
    Csa_opt;
    Fa_random 1;
    Fa_aot;
    Fa_aot_combined;
    Fa_aot_fa3;
    Fa_alp;
    Fa_alp_combined;
    Sc_t_gpc;
    Sc_lp_gpc;
    Dadda_gpc;
  ]

let name = function
  | Fa_aot -> "FA_AOT"
  | Fa_aot_combined -> "FA_AOT+q"
  | Fa_aot_fa3 -> "FA_AOT/fa3"
  | Fa_alp -> "FA_ALP"
  | Fa_alp_combined -> "FA_ALP+t"
  | Fa_random seed -> Printf.sprintf "FA_random[%d]" seed
  | Wallace -> "Wallace"
  | Dadda -> "Dadda"
  | Column_isolation -> "Col-Iso"
  | Csa_opt -> "CSA_OPT"
  | Conventional -> "Convent."
  | Sc_t_gpc -> "SC_T_GPC"
  | Sc_lp_gpc -> "SC_LP_GPC"
  | Dadda_gpc -> "Dadda_GPC"

let of_name s =
  match String.lowercase_ascii s with
  | "fa_aot" | "aot" | "timing" -> Some Fa_aot
  | "fa_aot+q" | "combined-timing" -> Some Fa_aot_combined
  | "fa_aot/fa3" | "fa_aot_fa3" -> Some Fa_aot_fa3
  | "fa_alp" | "alp" | "power" -> Some Fa_alp
  | "fa_alp+t" | "combined-power" -> Some Fa_alp_combined
  | "fa_random" | "random" -> Some (Fa_random 1)
  | s
    when String.length s > 10
         && String.sub s 0 10 = "fa_random["
         && s.[String.length s - 1] = ']' -> (
    match int_of_string_opt (String.sub s 10 (String.length s - 11)) with
    | Some seed -> Some (Fa_random seed)
    | None -> None)
  | "wallace" -> Some Wallace
  | "dadda" -> Some Dadda
  | "col-iso" | "column-isolation" -> Some Column_isolation
  | "csa_opt" | "csa-opt" -> Some Csa_opt
  | "conventional" | "convent" | "convent." -> Some Conventional
  | "sc_t_gpc" | "gpc-timing" -> Some Sc_t_gpc
  | "sc_lp_gpc" | "gpc-power" -> Some Sc_lp_gpc
  | "dadda_gpc" | "dadda-gpc" -> Some Dadda_gpc
  | _ -> None

let pp ppf s = Fmt.string ppf (name s)
