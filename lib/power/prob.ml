open Dp_netlist

let fa_sum_q qx qy qz = 4.0 *. qx *. qy *. qz

let fa_carry_q qx qy qz =
  (0.5 *. (qx +. qy +. qz)) -. (2.0 *. qx *. qy *. qz)

let ha_sum_q qx qy = fa_sum_q qx qy (-0.5)
let ha_carry_q qx qy = fa_carry_q qx qy (-0.5)

let popcount_int v =
  let n = ref 0 and v = ref v in
  while !v <> 0 do
    n := !n + (!v land 1);
    v := !v lsr 1
  done;
  !n

let cell_output_prob (c : Netlist.cell) probs ~port =
  let p i = probs.(c.inputs.(i)) in
  let qv i = p i -. 0.5 in
  (* Minterm enumeration over the 2^m pin assignments (m <= 7).
     Deliberately a different algorithm from the builder's count-
     distribution convolution / closed forms, so annotation and
     recomputation cross-check each other. *)
  let enumerate m value_of =
    let acc = ref 0.0 in
    for v = 0 to (1 lsl m) - 1 do
      if value_of v then begin
        let pr = ref 1.0 in
        for i = 0 to m - 1 do
          pr := !pr *. (if (v lsr i) land 1 = 1 then p i else 1.0 -. p i)
        done;
        acc := !acc +. !pr
      end
    done;
    !acc
  in
  match c.kind, port with
  | Dp_tech.Cell_kind.Fa, 0 -> 0.5 +. fa_sum_q (qv 0) (qv 1) (qv 2)
  | Dp_tech.Cell_kind.Fa, 1 -> 0.5 +. fa_carry_q (qv 0) (qv 1) (qv 2)
  | Dp_tech.Cell_kind.Ha, 0 -> 0.5 +. ha_sum_q (qv 0) (qv 1)
  | Dp_tech.Cell_kind.Ha, 1 -> 0.5 +. ha_carry_q (qv 0) (qv 1)
  | Dp_tech.Cell_kind.And_n n, 0 ->
    let acc = ref 1.0 in
    for i = 0 to n - 1 do
      acc := !acc *. p i
    done;
    !acc
  | Dp_tech.Cell_kind.Or_n n, 0 ->
    let acc = ref 1.0 in
    for i = 0 to n - 1 do
      acc := !acc *. (1.0 -. p i)
    done;
    1.0 -. !acc
  | Dp_tech.Cell_kind.Xor_n n, 0 ->
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let pi = p i in
      acc := !acc +. pi -. (2.0 *. !acc *. pi)
    done;
    !acc
  | ( Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63 | Dp_tech.Cell_kind.C73 ),
    (0 | 1 | 2) ->
    let m = Array.length c.inputs in
    enumerate m (fun v -> (popcount_int v lsr port) land 1 = 1)
  | Dp_tech.Cell_kind.C42, (0 | 1 | 2) ->
    enumerate 5 (fun v ->
        let bit i = (v lsr i) land 1 = 1 in
        let t = bit 0 <> bit 1 <> bit 2 in
        match port with
        | 0 -> t <> bit 3 <> bit 4
        | 1 -> (t && bit 3) || (t && bit 4) || (bit 3 && bit 4)
        | _ -> (bit 0 && bit 1) || (bit 0 && bit 2) || (bit 1 && bit 2))
  | Dp_tech.Cell_kind.Not, 0 -> 1.0 -. p 0
  | Dp_tech.Cell_kind.Buf, 0 -> p 0
  | ( Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha | Dp_tech.Cell_kind.C42
    | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63 | Dp_tech.Cell_kind.C73
    | Dp_tech.Cell_kind.And_n _ | Dp_tech.Cell_kind.Or_n _
    | Dp_tech.Cell_kind.Xor_n _ | Dp_tech.Cell_kind.Not
    | Dp_tech.Cell_kind.Buf ), _ ->
    invalid_arg "Prob.cell_output_prob: bad port"

let probabilities netlist =
  let n = Netlist.net_count netlist in
  let probs = Array.make n 0.0 in
  let gov = Netlist.gov netlist in
  for net = 0 to n - 1 do
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Prob g
    | None -> ());
    match Netlist.driver netlist net with
    | Netlist.From_input _ -> probs.(net) <- Netlist.prob netlist net
    | Netlist.From_const b -> probs.(net) <- (if b then 1.0 else 0.0)
    | Netlist.From_cell { cell; port } ->
      (* Same clamp as [Netlist.new_net]: the exact formulas can round a
         few ulps outside [0,1] at extreme input probabilities. *)
      probs.(net) <-
        Float.max 0.0
          (Float.min 1.0 (cell_output_prob (Netlist.cell netlist cell) probs ~port))
  done;
  probs

let agrees_with_annotation ?(eps = 1e-9) netlist =
  let recomputed = probabilities netlist in
  let ok = ref true in
  Array.iteri
    (fun net p ->
      if Float.abs (p -. Netlist.prob netlist net) > eps then ok := false)
    recomputed;
  !ok
