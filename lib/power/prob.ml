open Dp_netlist

let fa_sum_q qx qy qz = 4.0 *. qx *. qy *. qz

let fa_carry_q qx qy qz =
  (0.5 *. (qx +. qy +. qz)) -. (2.0 *. qx *. qy *. qz)

let ha_sum_q qx qy = fa_sum_q qx qy (-0.5)
let ha_carry_q qx qy = fa_carry_q qx qy (-0.5)

let cell_output_prob (c : Netlist.cell) probs ~port =
  let p i = probs.(c.inputs.(i)) in
  let qv i = p i -. 0.5 in
  match c.kind, port with
  | Dp_tech.Cell_kind.Fa, 0 -> 0.5 +. fa_sum_q (qv 0) (qv 1) (qv 2)
  | Dp_tech.Cell_kind.Fa, 1 -> 0.5 +. fa_carry_q (qv 0) (qv 1) (qv 2)
  | Dp_tech.Cell_kind.Ha, 0 -> 0.5 +. ha_sum_q (qv 0) (qv 1)
  | Dp_tech.Cell_kind.Ha, 1 -> 0.5 +. ha_carry_q (qv 0) (qv 1)
  | Dp_tech.Cell_kind.And_n n, 0 ->
    let acc = ref 1.0 in
    for i = 0 to n - 1 do
      acc := !acc *. p i
    done;
    !acc
  | Dp_tech.Cell_kind.Or_n n, 0 ->
    let acc = ref 1.0 in
    for i = 0 to n - 1 do
      acc := !acc *. (1.0 -. p i)
    done;
    1.0 -. !acc
  | Dp_tech.Cell_kind.Xor_n n, 0 ->
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let pi = p i in
      acc := !acc +. pi -. (2.0 *. !acc *. pi)
    done;
    !acc
  | Dp_tech.Cell_kind.Not, 0 -> 1.0 -. p 0
  | Dp_tech.Cell_kind.Buf, 0 -> p 0
  | ( Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha | Dp_tech.Cell_kind.And_n _
    | Dp_tech.Cell_kind.Or_n _ | Dp_tech.Cell_kind.Xor_n _
    | Dp_tech.Cell_kind.Not | Dp_tech.Cell_kind.Buf ), _ ->
    invalid_arg "Prob.cell_output_prob: bad port"

let probabilities netlist =
  let n = Netlist.net_count netlist in
  let probs = Array.make n 0.0 in
  let gov = Netlist.gov netlist in
  for net = 0 to n - 1 do
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Prob g
    | None -> ());
    match Netlist.driver netlist net with
    | Netlist.From_input _ -> probs.(net) <- Netlist.prob netlist net
    | Netlist.From_const b -> probs.(net) <- (if b then 1.0 else 0.0)
    | Netlist.From_cell { cell; port } ->
      (* Same clamp as [Netlist.new_net]: the exact formulas can round a
         few ulps outside [0,1] at extreme input probabilities. *)
      probs.(net) <-
        Float.max 0.0
          (Float.min 1.0 (cell_output_prob (Netlist.cell netlist cell) probs ~port))
  done;
  probs

let agrees_with_annotation ?(eps = 1e-9) netlist =
  let recomputed = probabilities netlist in
  let ok = ref true in
  Array.iteri
    (fun net p ->
      if Float.abs (p -. Netlist.prob netlist net) > eps then ok := false)
    recomputed;
  !ok
