open Dp_netlist

let activity p = p *. (1.0 -. p)

let net_activity netlist net = activity (Netlist.prob netlist net)

let tree_switching netlist =
  (* The paper's E_switching(T) (Sec. 4.2): sum over adder cells — FA/HA
     and the parallel counters — of energy * activity per output port. *)
  let tech = Netlist.tech netlist in
  let total = ref 0.0 in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      match c.kind with
      | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha | Dp_tech.Cell_kind.C42
      | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63 | Dp_tech.Cell_kind.C73
        ->
        let outs = Netlist.cell_output_nets netlist id in
        Array.iteri
          (fun port net ->
            let w = Dp_tech.Tech.energy tech c.kind ~port in
            total := !total +. (w *. net_activity netlist net))
          outs
      | Dp_tech.Cell_kind.And_n _ | Dp_tech.Cell_kind.Or_n _
      | Dp_tech.Cell_kind.Xor_n _ | Dp_tech.Cell_kind.Not
      | Dp_tech.Cell_kind.Buf -> ())
    netlist;
  !total

let total_switching netlist =
  let tech = Netlist.tech netlist in
  let total = ref 0.0 in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets netlist id in
      Array.iteri
        (fun port net ->
          let w = Dp_tech.Tech.energy tech c.kind ~port in
          total := !total +. (w *. net_activity netlist net))
        outs)
    netlist;
  !total

(* A nominal scale factor turning the dimensionless energy-weighted activity
   into milliwatt-like magnitudes comparable to the paper's Table 2 (which
   used 3.3 V at 0.35 um).  Only ratios are meaningful. *)
let mw_scale = 6.0

let milliwatts e = e *. mw_scale
