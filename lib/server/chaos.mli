(** Seeded fault injection for the serving layer — the server-side
    counterpart of [Dp_verify.Inject].  A chaos-enabled server
    deliberately provokes each failure mode the resilience layer claims
    to survive, so the soak driver (and the [chaos-smoke] CI job) can
    assert the degradation paths instead of trusting them:

    - {!Worker_panic} — an exception escapes the worker's job boundary;
      the supervisor must convert it to [DP-SRV-CRASH], dump a repro,
      and restart the worker.
    - {!Slow_worker} — the worker stalls before synthesizing; queued
      requests with deadlines must fail fast with [DP-SRV-DEADLINE].
    - {!Truncate_response} — the response line is cut mid-byte and the
      connection closed; the client must see [DP-PROTO003], never a
      half-parsed JSON document.
    - {!Corrupt_cache} — an on-disk cache entry is overwritten with
      garbage and the in-memory LRU dropped; the store must degrade to
      a miss and re-synthesize, never serve the corrupt bytes.
    - {!Corrupt_result} — a [Dp_verify.Inject] mutation is applied to a
      {e deep copy} of the outcome netlist before delivery; the server's
      response lint guard must catch it as [DP-SRV-CORRUPT] instead of
      emitting a wrong answer.  (The copy keeps the cache clean.)

    Memory fault ([`Worker] site, opt-in — see {!default_config}):

    - {!Mem_squeeze} — the request runs under a one-word heap watermark,
      so its {!Dp_gov.Gov} governor must abort it at the first
      cooperative checkpoint with [DP-BUDGET-MEM] — a typed, retryable
      envelope, with the worker intact and no torn cache entry.

    Shard-topology faults ([`Shard] site, opt-in — see
    {!default_config}):

    - {!Kill_shard} — SIGKILL a live shard process mid-soak; the pool's
      waitpid monitor must detect it ([DP-SRV-SHARD-DOWN]), the router
      must fail requests over to a fallback shard, and the supervisor
      must restart it with backoff ([DP-SRV-SHARD-RESTART]).
    - {!Hang_shard} — SIGSTOP a shard so it holds its socket but answers
      nothing; only the health-check ping can catch this (waitpid sees a
      stopped child as alive), after which the pool SIGKILLs and
      restarts it.

    Network-level faults ([`Respond] site, opt-in):

    - {!Delay_response} — hold the response line back for [slow_s]
      before writing it; a hedging router must fire its duplicate and
      the client must still get exactly one well-formed answer.
    - {!Dup_response} — write the response line twice; the
      one-request-per-connection protocol means the reader takes the
      first and the duplicate dies with the connection — never a
      duplicate side effect.
    - {!Drop_mid_line} — write half the line, then hard-close the
      socket; the client must see [DP-PROTO003]/[DP-PROTO004] and its
      digest-idempotent retry must succeed.

    Router fault ([`Router] site, opt-in — ticked only by the journaled
    soak pacer, which owns the router process):

    - {!Kill_router} — SIGKILL the routing front mid-flight; a restart
      with [--journal] must replay the log (completed entries re-served
      byte-identically, incomplete ones re-dispatched) and reattach to
      the still-live shard fleet.

    Faults fire every [every]-th tick, cycling deterministically from
    [seed]; with the same seed and request schedule a run is
    reproducible. *)

type fault =
  | Worker_panic
  | Slow_worker
  | Truncate_response
  | Corrupt_cache
  | Corrupt_result
  | Mem_squeeze
  | Kill_shard
  | Hang_shard
  | Delay_response
  | Dup_response
  | Drop_mid_line
  | Kill_router

val all : fault list

(** The single-process fault classes — the default [faults] list. *)
val process_faults : fault list

(** {!Mem_squeeze}; opt-in ([faults = process_faults @ mem_faults]) so
    existing seeded schedules keep their fault sequence. *)
val mem_faults : fault list

(** {!Kill_shard} and {!Hang_shard}; meaningful only at the [`Shard]
    site, which only a sharded topology ticks. *)
val shard_faults : fault list

(** {!Delay_response}, {!Dup_response}, {!Drop_mid_line}; [`Respond]
    site, opt-in for the same schedule-stability reason. *)
val net_faults : fault list

(** {!Kill_router}; meaningful only at the [`Router] site, which only
    the journaled soak pacer ticks. *)
val router_faults : fault list

val fault_name : fault -> string

(** Raised by {!Worker_panic} at the worker's job boundary. *)
exception Panic

type config = {
  seed : int;
  every : int;  (** inject on every Nth tick; <= 0 disables *)
  slow_s : float;  (** {!Slow_worker} stall *)
  faults : fault list;  (** the classes to cycle through *)
}

(** Defaults to {!process_faults} only, so existing single-process chaos
    schedules (seeded tests included) are unaffected by the shard
    classes; a sharded soak opts in with [faults = Chaos.shard_faults]
    on its own chaos instance. *)
val default_config : config

type t

val create : config -> t

(** The configured {!Slow_worker} stall. *)
val slow_s : t -> float

(** [tick t ~site] — one potential injection point.  Returns the fault
    to inject, already filtered to the classes meaningful at [site]
    ([`Worker], [`Respond], [`Shard] or [`Router]), or [None].
    Thread-safe; the global tick counter makes the schedule
    deterministic per run. *)
val tick : t -> site:[ `Worker | `Respond | `Shard | `Router ] -> fault option

(** Seeded uniform pick in [\[0, n)] — victim-shard selection without
    touching the wall clock.  @raise Invalid_argument on [n < 1]. *)
val pick : t -> int -> int

(** Injections delivered so far, per fault (for stats). *)
val injected : t -> (string * int) list

(** Overwrite one on-disk entry of [store] with garbage (seeded pick)
    and drop the in-memory LRU so the next lookup must take the disk
    path.  No-op without a disk store or with no entries yet. *)
val corrupt_cache_entry : t -> Dp_cache.Store.t -> unit

(** Apply a seeded [Dp_verify.Inject] mutation to a deep copy of the
    netlist; returns the corrupted copy (or [None] if no mutation
    applied). *)
val corrupt_netlist : t -> Dp_netlist.Netlist.t -> Dp_netlist.Netlist.t option
