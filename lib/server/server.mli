(** The [dpsyn serve] server: a Unix-domain-socket listener speaking the
    line-delimited JSON protocol of {!Protocol}, with a worker pool fed
    through a {e bounded} queue (producers block once [queue_depth] jobs
    are waiting — backpressure instead of unbounded memory), a shared
    {!Dp_cache.Store}, and a per-request wall-clock/cell-count budget
    from {!Dp_fuzz.Budget}.  Every failure — malformed request, blown
    budget, synthesis error — is an error envelope carrying the typed
    diagnostic; the connection and the worker both survive. *)

type config = {
  socket_path : string;
  store : Dp_cache.Store.t option;  (** [None] disables caching *)
  workers : int;
  queue_depth : int;
  budget : Dp_fuzz.Budget.t;  (** applied to every request *)
  tech : Dp_tech.Tech.t;
  log : string -> unit;
}

(** In-memory cache, 2 workers, queue depth 64, 30 s/200k-cell budget. *)
val default_config : socket_path:string -> config

type t

(** Bind the socket (replacing a stale file), spawn workers and the
    accept loop, and return immediately. *)
val start : config -> t

(** Block until a [shutdown] request (or {!request_shutdown}) has
    drained the queue and stopped the accept loop. *)
val wait : t -> unit

(** [start] + [wait]. *)
val run : config -> unit

val request_shutdown : t -> unit

(** The [stats] payload (also used by the [stats] op). *)
val stats_json : t -> Json.t
