(** The [dpsyn serve] server: a Unix-domain-socket listener speaking the
    line-delimited JSON protocol of {!Protocol}, with a worker pool fed
    through a {e bounded} queue (producers block once [queue_depth] jobs
    are waiting — backpressure instead of unbounded memory), a shared
    {!Dp_cache.Store}, and a per-request {!Dp_gov.Gov} governor carrying
    the wall-clock/cell/memory limits of {!Dp_fuzz.Budget} and
    [mem_watermark_words].  Every failure — malformed request, tripped
    limit, synthesis error — is an error envelope carrying the typed
    diagnostic; the connection and the worker both survive.

    Resilience layer (see [doc/protocol.md], "Failure semantics"):

    - Admission control runs upstream of the queue: a request whose
      statically estimated addend-matrix height exceeds the budget's
      [max_rows] is refused with [DP-SRV-TOOBIG] (a property of the
      request — do not retry it here), and once the process heap is
      over [mem_watermark_words] new work is shed with
      [DP-SRV-OVERLOAD] ([("reason", "memory")]; retry another shard
      or later) while admitted jobs drain.
    - Admitted jobs run under a thread-ambient governor: a deadline,
      cell budget, or heap watermark that trips mid-synthesis aborts at
      the next cooperative checkpoint as [DP-CANCEL*]/[DP-BUDGET-MEM],
      with no torn cache entry and the worker reused, not restarted.

    - Workers run under a {!Supervisor} boundary: an exception escaping
      a job is delivered as [DP-SRV-CRASH] (with a [.repro] crash dump
      under [crash_dir]), the worker restarts after exponential backoff,
      and a crash storm opens a circuit breaker that rejects {e new}
      work with [DP-SRV-OVERLOAD] while the queue drains.
    - A request's [deadline_ms] becomes an absolute deadline at enqueue
      time; one that expires while queued fails fast with
      [DP-SRV-DEADLINE], and one that starts in time runs under a budget
      clamped to the time remaining.
    - With [chaos] set, seeded faults ({!Chaos}) are injected to prove
      all of the above under fire; the response integrity guard
      ([guard_responses], forced on by chaos) lints outgoing netlists so
      a corrupted result is a [DP-SRV-CORRUPT] error, never a wrong
      answer.
    - With [handle_signals], SIGTERM/SIGINT trigger a graceful drain:
      stop accepting, finish queued jobs, flush the latency histogram
      through [log], return from {!wait}. *)

type config = {
  socket_path : string;
  store : Dp_cache.Store.t option;  (** [None] disables caching *)
  workers : int;
  queue_depth : int;
  budget : Dp_fuzz.Budget.t;  (** applied to every request *)
  mem_watermark_words : int option;
      (** live-heap watermark ([Gc.quick_stat] words): above it, new
          requests are shed at admission with [DP-SRV-OVERLOAD] and
          in-flight requests abort at their next checkpoint with
          [DP-BUDGET-MEM]; [None] disables *)
  tech : Dp_tech.Tech.t;
  log : string -> unit;
  supervisor : Supervisor.policy;
  crash_dir : string option;
      (** where worker-crash [.repro] dumps go; [None] disables *)
  chaos : Chaos.config option;  (** seeded fault injection *)
  guard_responses : bool;
      (** lint outgoing netlists ([DP-SRV-CORRUPT] on findings); always
          on under chaos *)
  handle_signals : bool;  (** graceful drain on SIGTERM/SIGINT *)
}

(** In-memory cache, 2 workers, queue depth 64, 30 s/200k-cell budget,
    no memory watermark, default supervision policy, no crash dir, no
    chaos, no guard, no signal handling. *)
val default_config : socket_path:string -> config

type t

(** Bind the socket (replacing a stale file), spawn workers and the
    accept loop, and return immediately. *)
val start : config -> t

(** Block until a [shutdown] request, {!request_shutdown}, or — with
    [handle_signals] — SIGTERM/SIGINT has drained the queue and stopped
    the accept loop; then flush final counters and the latency
    histogram through [config.log]. *)
val wait : t -> unit

(** [start] + [wait]. *)
val run : config -> unit

val request_shutdown : t -> unit

(** The [stats] payload (also used by the [stats] op): service counters,
    cache stats, supervisor/breaker state, chaos injection counts, and
    the latency histogram. *)
val stats_json : t -> Json.t
