type fault =
  | Worker_panic
  | Slow_worker
  | Truncate_response
  | Corrupt_cache
  | Corrupt_result
  | Mem_squeeze
  | Kill_shard
  | Hang_shard
  | Delay_response
  | Dup_response
  | Drop_mid_line
  | Kill_router

let process_faults =
  [ Worker_panic; Slow_worker; Truncate_response; Corrupt_cache; Corrupt_result ]

(* Opt-in, like the shard classes: adding a fault to [process_faults]
   would shift every seeded schedule's [List.nth] picks. *)
let mem_faults = [ Mem_squeeze ]
let shard_faults = [ Kill_shard; Hang_shard ]
let net_faults = [ Delay_response; Dup_response; Drop_mid_line ]
let router_faults = [ Kill_router ]
let all = process_faults @ mem_faults @ shard_faults @ net_faults @ router_faults

let fault_name = function
  | Worker_panic -> "worker_panic"
  | Slow_worker -> "slow_worker"
  | Truncate_response -> "truncate_response"
  | Corrupt_cache -> "corrupt_cache"
  | Corrupt_result -> "corrupt_result"
  | Mem_squeeze -> "mem_squeeze"
  | Kill_shard -> "kill_shard"
  | Hang_shard -> "hang_shard"
  | Delay_response -> "delay_response"
  | Dup_response -> "dup_response"
  | Drop_mid_line -> "drop_mid_line"
  | Kill_router -> "kill_router"

exception Panic

type config = { seed : int; every : int; slow_s : float; faults : fault list }

(* Shard faults are opt-in: the default keeps the process-level classes
   only, so single-process chaos schedules (and their seeded tests) are
   unchanged by the sharded faults' existence. *)
let default_config = { seed = 0; every = 7; slow_s = 0.05; faults = process_faults }

type t = {
  config : config;
  rng : Random.State.t;
  lock : Mutex.t;
  mutable ticks : int;
  counts : (fault, int) Hashtbl.t;
}

let create config =
  {
    config;
    rng = Random.State.make [| config.seed; 0x5eed |];
    lock = Mutex.create ();
    ticks = 0;
    counts = Hashtbl.create 8;
  }

let slow_s t = t.config.slow_s

let site_faults = function
  | `Worker ->
    [ Worker_panic; Slow_worker; Corrupt_cache; Corrupt_result; Mem_squeeze ]
  | `Respond -> Truncate_response :: net_faults
  | `Shard -> shard_faults
  | `Router -> router_faults

(* One global tick counter across all sites: every [every]-th tick picks
   a fault uniformly from the configured classes, and the pick only
   lands if that class is meaningful at the calling site — so the
   per-site injection schedule stays deterministic for a fixed seed and
   request order, while no site starves the others. *)
let tick t ~site =
  if t.config.every <= 0 then None
  else
    Mutex.protect t.lock @@ fun () ->
    t.ticks <- t.ticks + 1;
    if t.ticks mod t.config.every <> 0 then None
    else
      match t.config.faults with
      | [] -> None
      | faults ->
        let f = List.nth faults (Random.State.int t.rng (List.length faults)) in
        if not (List.mem f (site_faults site)) then None
        else begin
          Hashtbl.replace t.counts f
            (1 + Option.value (Hashtbl.find_opt t.counts f) ~default:0);
          Some f
        end

(* Seeded uniform pick in [0, n) — used by the sharded soak to choose a
   victim shard without consulting the wall clock. *)
let pick t n =
  if n <= 0 then invalid_arg "Chaos.pick: n must be >= 1";
  Mutex.protect t.lock @@ fun () -> Random.State.int t.rng n

let injected t =
  Mutex.protect t.lock @@ fun () ->
  List.filter_map
    (fun f ->
      match Hashtbl.find_opt t.counts f with
      | Some n -> Some (fault_name f, n)
      | None -> None)
    all

let corrupt_cache_entry t store =
  match Dp_cache.Store.dir store with
  | None -> ()
  | Some dir -> (
    match Sys.readdir dir with
    | exception _ -> ()
    | files ->
      let entries =
        List.sort String.compare
          (List.filter
             (fun f -> Filename.check_suffix f ".dpc")
             (Array.to_list files))
      in
      (match entries with
      | [] -> ()
      | entries ->
        let pick =
          Mutex.protect t.lock @@ fun () ->
          List.nth entries (Random.State.int t.rng (List.length entries))
        in
        let path = Filename.concat dir pick in
        (* Flip one byte past the magic line so the checksum (or the
           Marshal decode) trips, exercising the corrupt-entry-as-miss
           path rather than a missing-file miss. *)
        (try
           let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
           Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
           let size = (Unix.fstat fd).Unix.st_size in
           if size > 0 then begin
             let pos = size / 2 in
             ignore (Unix.lseek fd pos Unix.SEEK_SET);
             let b = Bytes.create 1 in
             if Unix.read fd b 0 1 = 1 then begin
               Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
               ignore (Unix.lseek fd pos Unix.SEEK_SET);
               ignore (Unix.write fd b 0 1)
             end
           end
         with _ -> ());
        Dp_cache.Store.invalidate_memory store))

(* Deep copy via a Marshal round-trip (the store already Marshals these
   netlists to disk, so the representation is safe), then mutate the
   copy — the shared cache entry must never be poisoned by chaos. *)
let corrupt_netlist t netlist =
  let copy : Dp_netlist.Netlist.t =
    Marshal.from_string (Marshal.to_string netlist []) 0
  in
  let seed, mutation =
    Mutex.protect t.lock @@ fun () ->
    let muts = Dp_verify.Inject.all in
    ( Random.State.int t.rng 0x3fffffff,
      List.nth muts (Random.State.int t.rng (List.length muts)) )
  in
  match Dp_verify.Inject.apply ~seed copy mutation with
  | Some _ -> Some copy
  | None -> None
