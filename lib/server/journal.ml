type state = Admitted | Dispatched | Completed

type entry = {
  seq : int;
  digest : string;
  state : state;
  shard : int option;
  params : Json.t;
}

type stats = {
  appended : int;
  recovered : int;
  torn_bytes : int;
  compactions : int;
}

type t = {
  path : string;
  auto_compact_bytes : int;
  log : string -> unit;
  lock : Mutex.t;
  table : (int, entry) Hashtbl.t;
  recovered_entries : entry list;
  mutable oc : out_channel option;
  mutable next_seq : int;
  mutable size : int;
  mutable appended : int;
  mutable torn_bytes : int;
  mutable compactions : int;
}

let state_name = function
  | Admitted -> "admitted"
  | Dispatched -> "dispatched"
  | Completed -> "completed"

let state_of_name = function
  | "admitted" -> Some Admitted
  | "dispatched" -> Some Dispatched
  | "completed" -> Some Completed
  | _ -> None

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* A record line is [<32-hex MD5 of payload> <payload>]; anything that
   does not round-trip the checksum is treated as a torn tail. *)
let checksum payload = Digest.to_hex (Digest.string payload)

let record_line payload_json =
  let payload = Json.to_string payload_json in
  checksum payload ^ " " ^ payload ^ "\n"

let payload_of_line line =
  if String.length line < 34 || line.[32] <> ' ' then None
  else
    let sum = String.sub line 0 32 in
    let payload = String.sub line 33 (String.length line - 33) in
    if String.equal (checksum payload) sum then Some payload else None

let admitted_payload ~seq ~digest ~params =
  Json.Obj
    [
      ("seq", Json.Int seq);
      ("state", Json.Str (state_name Admitted));
      ("digest", Json.Str digest);
      ("params", params);
    ]

let transition_payload ~seq ~digest ~state ~shard =
  let fields =
    [
      ("seq", Json.Int seq);
      ("state", Json.Str (state_name state));
      ("digest", Json.Str digest);
    ]
  in
  let fields =
    match shard with
    | Some k -> fields @ [ ("shard", Json.Int k) ]
    | None -> fields
  in
  Json.Obj fields

(* Fold one verified payload into the table.  Records appear in append
   order, so transitions always follow their admission (compaction
   preserves this). *)
let apply_payload table payload =
  match Json.of_string payload with
  | Error _ -> false
  | Ok json -> (
      let field k conv = Option.bind (Json.member k json) conv in
      match
        ( field "seq" Json.to_int,
          field "state" Json.to_str |> Fun.flip Option.bind state_of_name,
          field "digest" Json.to_str )
      with
      | Some seq, Some state, Some digest ->
          (match (state, Hashtbl.find_opt table seq) with
          | Admitted, None ->
              let params =
                Option.value (Json.member "params" json) ~default:Json.Null
              in
              Hashtbl.replace table seq
                { seq; digest; state = Admitted; shard = None; params }
          | Admitted, Some _ -> ()
          | (Dispatched | Completed), None -> ()
          | Dispatched, Some e ->
              if e.state <> Completed then
                Hashtbl.replace table seq
                  { e with state = Dispatched; shard = field "shard" Json.to_int }
          | Completed, Some e ->
              Hashtbl.replace table seq { e with state = Completed });
          true
      | _ -> false)

let sorted_entries table =
  Hashtbl.fold (fun _ e acc -> e :: acc) table []
  |> List.sort (fun a b -> compare a.seq b.seq)

(* Scan an existing log.  Returns the byte offset of the end of the last
   good record: a torn tail (no trailing newline, bad checksum, or
   unreadable payload) invalidates everything from the first bad record
   onward. *)
let scan_file path table =
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let len = String.length raw in
  let rec go pos =
    if pos >= len then pos
    else
      match String.index_from_opt raw pos '\n' with
      | None -> pos (* torn: final record never got its newline *)
      | Some nl -> (
          let line = String.sub raw pos (nl - pos) in
          match payload_of_line line with
          | None -> pos
          | Some payload -> if apply_payload table payload then go (nl + 1) else pos)
  in
  let good = go 0 in
  (good, len)

let open_ ?(auto_compact_bytes = 1_048_576) ?(log = ignore) ~dir () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir "journal.log" in
  let table = Hashtbl.create 64 in
  let size, torn =
    if Sys.file_exists path then begin
      let good, len = scan_file path table in
      if good < len then begin
        Unix.truncate path good;
        log
          (Printf.sprintf "journal: truncated torn tail (%d bytes) at offset %d"
             (len - good) good)
      end;
      (good, len - good)
    end
    else (0, 0)
  in
  let recovered_entries = sorted_entries table in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path
  in
  {
    path;
    auto_compact_bytes;
    log;
    lock = Mutex.create ();
    table;
    recovered_entries;
    oc = Some oc;
    next_seq =
      1 + List.fold_left (fun acc e -> max acc e.seq) 0 recovered_entries;
    size;
    appended = 0;
    torn_bytes = torn;
    compactions = 0;
  }

let path t = t.path
let recovered t = t.recovered_entries
let entries t = locked t (fun () -> sorted_entries t.table)

let incomplete t =
  locked t (fun () ->
      sorted_entries t.table |> List.filter (fun e -> e.state <> Completed))

(* Call with [t.lock] held. *)
let compact_locked t =
  match t.oc with
  | None -> ()
  | Some oc ->
      let keep =
        sorted_entries t.table |> List.filter (fun e -> e.state <> Completed)
      in
      let tmp = Printf.sprintf "%s.tmp.%d" t.path (Unix.getpid ()) in
      let tmp_oc =
        open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
      in
      List.iter
        (fun e ->
          output_string tmp_oc
            (record_line
               (admitted_payload ~seq:e.seq ~digest:e.digest ~params:e.params));
          if e.state = Dispatched then
            output_string tmp_oc
              (record_line
                 (transition_payload ~seq:e.seq ~digest:e.digest
                    ~state:Dispatched ~shard:e.shard)))
        keep;
      close_out tmp_oc;
      close_out oc;
      Sys.rename tmp t.path;
      Hashtbl.reset t.table;
      List.iter (fun e -> Hashtbl.replace t.table e.seq e) keep;
      t.oc <-
        Some
          (open_out_gen
             [ Open_wronly; Open_creat; Open_append; Open_binary ]
             0o644 t.path);
      t.size <- (Unix.stat t.path).Unix.st_size;
      t.compactions <- t.compactions + 1;
      t.log
        (Printf.sprintf "journal: compacted to %d incomplete entries (%d bytes)"
           (List.length keep) t.size)

(* Call with [t.lock] held. *)
let append_locked t payload =
  match t.oc with
  | None -> ()
  | Some oc ->
      let line = record_line payload in
      output_string oc line;
      flush oc;
      t.size <- t.size + String.length line;
      t.appended <- t.appended + 1;
      if t.size > t.auto_compact_bytes then compact_locked t

let admit t ~digest ~params =
  locked t (fun () ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Hashtbl.replace t.table seq
        { seq; digest; state = Admitted; shard = None; params };
      append_locked t (admitted_payload ~seq ~digest ~params);
      seq)

let dispatch t ~seq ~shard =
  locked t (fun () ->
      match Hashtbl.find_opt t.table seq with
      | Some e when e.state <> Completed ->
          Hashtbl.replace t.table seq
            { e with state = Dispatched; shard = Some shard };
          append_locked t
            (transition_payload ~seq ~digest:e.digest ~state:Dispatched
               ~shard:(Some shard))
      | Some _ | None -> ())

let complete t ~seq =
  locked t (fun () ->
      match Hashtbl.find_opt t.table seq with
      | Some e when e.state <> Completed ->
          Hashtbl.replace t.table seq { e with state = Completed };
          append_locked t
            (transition_payload ~seq ~digest:e.digest ~state:Completed
               ~shard:None)
      | Some _ | None -> ())

let compact t = locked t (fun () -> compact_locked t)

let stats t =
  locked t (fun () ->
      {
        appended = t.appended;
        recovered = List.length t.recovered_entries;
        torn_bytes = t.torn_bytes;
        compactions = t.compactions;
      })

let close t =
  locked t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          close_out oc;
          t.oc <- None)
