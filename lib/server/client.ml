type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () ->
    Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket_path
         (Unix.error_message e))

let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv_line c =
  match input_line c.ic with
  | line -> Some line
  | exception End_of_file -> None

(* One request, one response line (the protocol is strictly one line per
   request, so this is all a sequential client needs). *)
let rpc c request =
  send_line c (Json.to_string request);
  match recv_line c with
  | None -> Error "server closed the connection"
  | Some line -> (
    match Json.of_string line with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "bad response line: %s" msg))

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
