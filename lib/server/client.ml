module Diag = Dp_diag.Diag

type t = { fd : Unix.file_descr; reader : Lineio.t; oc : out_channel }

let transport ?(code = "DP-PROTO004") ~context fmt =
  Fmt.kstr
    (fun msg -> Error (Diag.v ~code ~subsystem:"proto" ~context msg))
    fmt

let connect ?deadline socket_path =
  (* A server (or router) that dies between our write and its read must
     surface as a typed transport error, not SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let wrap fd =
    Ok { fd; reader = Lineio.create fd; oc = Unix.out_channel_of_descr fd }
  in
  let fail fd e =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    transport
      ~context:[ ("socket", socket_path) ]
      "cannot connect: %s" (Unix.error_message e)
  in
  match deadline with
  | None -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> wrap fd
    | exception Unix.Unix_error (e, _, _) -> fail fd e)
  | Some dl ->
    (* A listener that is bound but no longer accepting blocks a plain
       connect(2) forever once its backlog fills.  In non-blocking mode
       AF_UNIX reports that state as EAGAIN, so connect non-blocking and
       retry until the deadline: a wedged server degrades to a typed,
       retryable timeout instead of a permanently hung caller. *)
    let rec attempt () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () ->
        Unix.clear_nonblock fd;
        wrap fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        attempt ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () +. 0.01 >= dl then
          transport
            ~context:[ ("socket", socket_path) ]
            "timed out connecting: listener backlog full"
        else begin
          Thread.delay 0.01;
          attempt ()
        end
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
        (* Not expected for AF_UNIX on Linux, but complete it properly:
           wait for writability, then read the final status. *)
        match
          Unix.select [] [ fd ] []
            (Float.max 0.0 (dl -. Unix.gettimeofday ()))
        with
        | _, [ _ ], _ -> (
          match Unix.getsockopt_error fd with
          | None ->
            Unix.clear_nonblock fd;
            wrap fd
          | Some e -> fail fd e)
        | _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          transport
            ~context:[ ("socket", socket_path) ]
            "timed out connecting"
        | exception Unix.Unix_error (e, _, _) -> fail fd e)
      | exception Unix.Unix_error (e, _, _) -> fail fd e
    in
    attempt ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_line c line =
  match
    output_string c.oc line;
    output_char c.oc '\n';
    flush c.oc
  with
  | () -> Ok ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    transport ~context:[] "connection lost while sending the request"

let recv_response ?deadline c =
  match Lineio.read_line ?deadline c.reader with
  | Lineio.Eof ->
    transport ~context:[]
      "server closed the connection before responding"
  | Lineio.Truncated "" when deadline <> None ->
    transport ~context:[] "timed out waiting for the response"
  | Lineio.Truncated partial ->
    transport ~code:"DP-PROTO003"
      ~context:[ ("buffered_bytes", string_of_int (String.length partial)) ]
      "response line truncated: stream ended before the newline"
  | Lineio.Line line -> (
    match Json.of_string line with
    | Ok j -> Ok j
    | Error msg ->
      transport ~code:"DP-PROTO005"
        ~context:[ ("detail", msg) ]
        "response line is not valid JSON")

(* One request, one response line (the protocol is strictly one line per
   request, so this is all a sequential client needs). *)
let rpc ?deadline c request =
  match send_line c (Json.to_string request) with
  | Error _ as e -> e
  | Ok () -> recv_response ?deadline c

(* ------------------------------------------------------------------ *)
(* Retry loop *)

type retry = {
  attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
  per_attempt_timeout_s : float;
  seed : int;
}

let default_retry =
  {
    attempts = 3;
    base_backoff_s = 0.05;
    max_backoff_s = 2.0;
    per_attempt_timeout_s = 30.0;
    seed = 0;
  }

let retryable (d : Diag.t) =
  match d.code with
  | "DP-PROTO003" | "DP-PROTO004" | "DP-SRV-CRASH" | "DP-SRV-OVERLOAD"
  | "DP-SRV-SHARD-DOWN" ->
    true
  | _ -> false

let envelope_diag response =
  match Json.member "ok" response |> Fun.flip Option.bind Json.to_bool with
  | Some false -> (
    match Json.member "error" response with
    | Some err -> (
      match Json.member "code" err |> Fun.flip Option.bind Json.to_str with
      | Some code ->
        let message =
          Option.value
            (Json.member "message" err |> Fun.flip Option.bind Json.to_str)
            ~default:""
        in
        Some (Diag.v ~code ~subsystem:"proto" message)
      | None -> None)
    | None -> None)
  | _ -> None

let call ?(retry = default_retry) ~socket request =
  let rng = Random.State.make [| retry.seed; 0xc11e |] in
  let attempts = max 1 retry.attempts in
  let backoff k =
    (* exponential with full jitter: base * 2^k * [0.5, 1.5) *)
    let raw = retry.base_backoff_s *. (2.0 ** float_of_int k) in
    let capped = Float.min raw retry.max_backoff_s in
    capped *. (0.5 +. Random.State.float rng 1.0)
  in
  let attempt () =
    let deadline =
      if retry.per_attempt_timeout_s <= 0.0 then None
      else Some (Unix.gettimeofday () +. retry.per_attempt_timeout_s)
    in
    match connect ?deadline socket with
    | Error _ as e -> e
    | Ok c ->
      Fun.protect ~finally:(fun () -> close c) @@ fun () ->
      rpc ?deadline c request
  in
  let rec go k =
    let r = attempt () in
    let verdict =
      match r with
      | Error d -> if retryable d then `Retry else `Done
      | Ok response -> (
        match envelope_diag response with
        | Some d when retryable d -> `Retry
        | _ -> `Done)
    in
    match verdict with
    | `Done -> r
    | `Retry when k + 1 >= attempts -> r
    | `Retry ->
      Thread.delay (backoff k);
      go (k + 1)
  in
  go 0
