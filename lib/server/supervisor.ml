module Diag = Dp_diag.Diag

type policy = {
  max_crashes : int;
  window_s : float;
  cooldown_s : float;
  backoff_base_s : float;
  backoff_max_s : float;
}

let default_policy =
  {
    max_crashes = 5;
    window_s = 30.0;
    cooldown_s = 5.0;
    backoff_base_s = 0.05;
    backoff_max_s = 2.0;
  }

type breaker = Closed | Open | Half_open

let breaker_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type state = SClosed | SOpen of float  (** opened_at *) | SHalf_open

type t = {
  policy : policy;
  log : string -> unit;
  lock : Mutex.t;
  mutable window : float list;  (** crash timestamps, newest first *)
  mutable state : state;
  mutable trial_inflight : bool;
  mutable consecutive : int;  (** crashes since the last clean job *)
  mutable crashes : int;
  mutable restarts : int;
  mutable rejected : int;
}

let create ?(policy = default_policy) ~log () =
  {
    policy;
    log;
    lock = Mutex.create ();
    window = [];
    state = SClosed;
    trial_inflight = false;
    consecutive = 0;
    crashes = 0;
    restarts = 0;
    rejected = 0;
  }

let locked t f = Mutex.protect t.lock f

let overload t =
  Diag.v ~code:"DP-SRV-OVERLOAD" ~subsystem:"server"
    ~context:
      [
        ("max_crashes", string_of_int t.policy.max_crashes);
        ("window_s", Fmt.str "%g" t.policy.window_s);
      ]
    "circuit breaker open: too many worker crashes; rejecting new work \
     while in-flight requests drain"

let prune t now =
  t.window <- List.filter (fun ts -> now -. ts <= t.policy.window_s) t.window

let admit t =
  locked t @@ fun () ->
  let now = Unix.gettimeofday () in
  match t.state with
  | SClosed -> Ok false
  | SOpen opened_at when now -. opened_at >= t.policy.cooldown_s ->
    t.state <- SHalf_open;
    t.trial_inflight <- true;
    t.log "circuit breaker half-open: admitting one trial request";
    Ok true
  | SOpen _ ->
    t.rejected <- t.rejected + 1;
    Error (overload t)
  | SHalf_open ->
    if t.trial_inflight then begin
      t.rejected <- t.rejected + 1;
      Error (overload t)
    end
    else begin
      t.trial_inflight <- true;
      Ok true
    end

let record_crash t ~trial =
  locked t @@ fun () ->
  let now = Unix.gettimeofday () in
  t.crashes <- t.crashes + 1;
  t.restarts <- t.restarts + 1;
  t.consecutive <- t.consecutive + 1;
  t.window <- now :: t.window;
  prune t now;
  (match t.state with
  | SHalf_open when trial ->
    t.trial_inflight <- false;
    t.state <- SOpen now;
    t.log "circuit breaker re-opened: trial request crashed"
  | SClosed when List.length t.window > t.policy.max_crashes ->
    t.state <- SOpen now;
    t.log
      (Printf.sprintf
         "circuit breaker opened: %d crashes inside %gs (limit %d)"
         (List.length t.window) t.policy.window_s t.policy.max_crashes)
  | _ -> ());
  let n = min (t.consecutive - 1) 16 in
  Float.min (t.policy.backoff_base_s *. (2.0 ** float_of_int n)) t.policy.backoff_max_s

let record_success t ~trial =
  locked t @@ fun () ->
  t.consecutive <- 0;
  if trial then begin
    t.trial_inflight <- false;
    match t.state with
    | SHalf_open ->
      t.state <- SClosed;
      t.window <- [];
      t.log "circuit breaker closed: trial request succeeded"
    | _ -> ()
  end

let breaker_state t =
  locked t @@ fun () ->
  match t.state with
  | SClosed -> Closed
  | SOpen _ -> Open
  | SHalf_open -> Half_open

let counters t = locked t @@ fun () -> (t.crashes, t.restarts, t.rejected)
let count_rejection t = locked t @@ fun () -> t.rejected <- t.rejected + 1
