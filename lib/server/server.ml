(* The synthesis service: a Unix-domain-socket listener, one handler
   thread per connection, and a worker pool fed through a bounded queue.

   Backpressure is structural: the queue blocks producers once
   [queue_depth] jobs are waiting, so a flood of batch requests slows the
   producing connections down instead of growing memory without bound.
   Each job runs under the per-request wall-clock/cell-count budget; a
   blown budget is an ordinary DP-BUDGET* error envelope, and the worker
   survives to take the next job. *)

module Diag = Dp_diag.Diag

(* ------------------------------------------------------------------ *)
(* Bounded queue *)

module Bqueue = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    m : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    mutable closed : bool;
  }

  exception Closed

  let create cap =
    {
      q = Queue.create ();
      cap;
      m = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      closed = false;
    }

  (* Blocks while the queue is at capacity — the backpressure edge. *)
  let push t x =
    Mutex.protect t.m @@ fun () ->
    while (not t.closed) && Queue.length t.q >= t.cap do
      Condition.wait t.not_full t.m
    done;
    if t.closed then raise Closed;
    Queue.add x t.q;
    Condition.signal t.not_empty

  (* [None] once the queue is closed and drained. *)
  let pop t =
    Mutex.protect t.m @@ fun () ->
    while (not t.closed) && Queue.is_empty t.q do
      Condition.wait t.not_empty t.m
    done;
    if Queue.is_empty t.q then None
    else begin
      let x = Queue.take t.q in
      Condition.signal t.not_full;
      Some x
    end

  let close t =
    Mutex.protect t.m @@ fun () ->
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full
end

(* ------------------------------------------------------------------ *)
(* Latency histogram (log-spaced milliseconds; last bucket = overflow) *)

let latency_bounds_ms = [| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000 |]

type histogram = { counts : int array }

let histogram () = { counts = Array.make (Array.length latency_bounds_ms + 1) 0 }

let observe h ms =
  let n = Array.length latency_bounds_ms in
  let rec bucket i =
    if i >= n then n
    else if ms <= float_of_int latency_bounds_ms.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1

let histogram_json h =
  Json.List
    (List.init
       (Array.length h.counts)
       (fun i ->
         let le =
           if i < Array.length latency_bounds_ms then
             Json.Int latency_bounds_ms.(i)
           else Json.Null
         in
         Json.Obj [ ("le_ms", le); ("count", Json.Int h.counts.(i)) ]))

(* ------------------------------------------------------------------ *)

type config = {
  socket_path : string;
  store : Dp_cache.Store.t option;
  workers : int;
  queue_depth : int;
  budget : Dp_fuzz.Budget.t;
  tech : Dp_tech.Tech.t;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    store = Some (Dp_cache.Store.create ());
    workers = 2;
    queue_depth = 64;
    budget = { Dp_fuzz.Budget.default with timeout_s = 30.0 };
    tech = Dp_tech.Tech.lcb_like;
    log = ignore;
  }

type job = {
  params : Protocol.synth_params;
  enqueued_at : float;
  deliver : (Dp_cache.Serve.outcome, Diag.t) result -> unit;
}

type t = {
  config : config;
  queue : job Bqueue.t;
  listen_fd : Unix.file_descr;
  (* self-pipe: closing a listen socket does not wake a thread already
     blocked on it, so shutdown writes one byte here and the accept loop
     selects on both *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable worker_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  state_lock : Mutex.t;
  mutable shutting_down : bool;
  (* counters, all under [state_lock] *)
  mutable served : int;  (** synth results delivered (incl. batch elements) *)
  mutable errors : int;  (** error envelopes/elements delivered *)
  mutable connections : int;
  latency : histogram;
}

let locked t f = Mutex.protect t.state_lock f

(* ------------------------------------------------------------------ *)
(* Job execution (worker side) *)

let execute t (p : Protocol.synth_params) =
  match Protocol.serve_request ~tech:t.config.tech p with
  | Error d -> Error d
  | Ok r -> (
    let budget = t.config.budget in
    match
      Dp_fuzz.Budget.with_timeout budget (fun () ->
          Dp_cache.Serve.run ?store:t.config.store r)
    with
    | Error d -> Error d
    | exception Diag.E d -> Error d
    | exception Bqueue.Closed -> raise Bqueue.Closed
    | exception e ->
      Error
        (Diag.v ~code:"DP-INTERNAL" ~subsystem:"server"
           ~context:[ ("exception", Printexc.to_string e) ]
           "unexpected exception while serving a request")
    | Ok o -> (
      match Dp_fuzz.Budget.check_cells budget o.result.netlist with
      | Ok () -> Ok o
      | Error d -> Error d))

let worker_loop t =
  let rec go () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some job ->
      let r = execute t job.params in
      let ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1000.0 in
      locked t (fun () ->
          observe t.latency ms;
          match r with
          | Ok _ -> t.served <- t.served + 1
          | Error _ -> t.errors <- t.errors + 1);
      job.deliver r;
      go ()
  in
  go ()

(* Enqueue [jobs] and block until every one has delivered. *)
let run_jobs t params_list =
  let n = List.length params_list in
  let slots = Array.make n None in
  let remaining = ref n in
  let m = Mutex.create () in
  let all_done = Condition.create () in
  List.iteri
    (fun i p ->
      let deliver r =
        Mutex.protect m (fun () ->
            slots.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.broadcast all_done)
      in
      let job = { params = p; enqueued_at = Unix.gettimeofday (); deliver } in
      try Bqueue.push t.queue job
      with Bqueue.Closed ->
        deliver
          (Error
             (Diag.v ~code:"DP-INTERNAL" ~subsystem:"server"
                "server is shutting down")))
    params_list;
  Mutex.protect m (fun () ->
      while !remaining > 0 do
        Condition.wait all_done m
      done);
  Array.to_list slots
  |> List.map (function
       | Some r -> r
       | None ->
         Error
           (Diag.v ~code:"DP-INTERNAL" ~subsystem:"server"
              "request slot never delivered"))

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats_json t =
  let served, errors, connections, latency =
    locked t (fun () ->
        (t.served, t.errors, t.connections, histogram_json t.latency))
  in
  let cache =
    match t.config.store with
    | None -> Json.Null
    | Some s ->
      let c = Dp_cache.Store.stats s in
      Json.Obj
        [
          ("hits", Json.Int c.hits);
          ("disk_hits", Json.Int c.disk_hits);
          ("misses", Json.Int c.misses);
          ("evictions", Json.Int c.evictions);
          ("corrupt", Json.Int c.corrupt);
          ("stores", Json.Int c.stores);
          ("entries", Json.Int c.entries);
        ]
  in
  Json.Obj
    [
      ("served", Json.Int served);
      ("errors", Json.Int errors);
      ("connections", Json.Int connections);
      ("workers", Json.Int t.config.workers);
      ("queue_depth", Json.Int t.config.queue_depth);
      ("cache", cache);
      ("latency_ms", latency);
    ]

(* ------------------------------------------------------------------ *)
(* Shutdown *)

let request_shutdown t =
  let first =
    locked t (fun () ->
        if t.shutting_down then false
        else begin
          t.shutting_down <- true;
          true
        end)
  in
  if first then begin
    t.config.log "shutting down";
    (* Unlink before waking the accept loop: [wait] returns once the
       accept thread and the workers have joined, and a caller must then
       observe the socket file already gone. *)
    (try Sys.remove t.config.socket_path with Sys_error _ -> ());
    Bqueue.close t.queue;
    try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Connection handling *)

let respond oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

let handle_line t oc line =
  match Protocol.request_of_line line with
  | Error d ->
    locked t (fun () -> t.errors <- t.errors + 1);
    respond oc (Protocol.error_response ~id:(Protocol.id_of_line line) d);
    `Continue
  | Ok { id; req } -> (
    match req with
    | Protocol.Stats ->
      respond oc (Protocol.ok_response ~id [ ("stats", stats_json t) ]);
      `Continue
    | Protocol.Shutdown ->
      respond oc (Protocol.ok_response ~id []);
      request_shutdown t;
      `Close
    | Protocol.Synth p -> (
      match run_jobs t [ p ] with
      | [ Ok o ] -> respond oc (Protocol.synth_response ~id p o); `Continue
      | [ Error d ] -> respond oc (Protocol.error_response ~id d); `Continue
      | _ -> assert false)
    | Protocol.Batch ps ->
      let results = run_jobs t ps in
      let elements = List.map2 Protocol.batch_element ps results in
      respond oc (Protocol.batch_response ~id elements);
      `Continue)

let handle_connection t fd =
  locked t (fun () -> t.connections <- t.connections + 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | "" -> loop ()
    | line -> (
      match handle_line t oc line with
      | `Continue -> loop ()
      | `Close -> ()
      | exception Sys_error _ -> () (* peer went away mid-response *))
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    if locked t (fun () -> t.shutting_down) then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | ready, _, _ ->
        if List.mem t.wake_r ready then () (* shutdown byte *)
        else (
          match Unix.accept t.listen_fd with
          | fd, _ ->
            ignore (Thread.create (fun () -> handle_connection t fd) ());
            go ()
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            go ()
          | exception Unix.Unix_error (_, _, _) -> ())
  in
  go ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let start config =
  if config.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if config.queue_depth < 1 then
    invalid_arg "Server.start: queue_depth must be >= 1";
  (* A dead client mid-response must not kill the whole server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 16;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      config;
      queue = Bqueue.create config.queue_depth;
      listen_fd;
      wake_r;
      wake_w;
      worker_threads = [];
      accept_thread = None;
      state_lock = Mutex.create ();
      shutting_down = false;
      served = 0;
      errors = 0;
      connections = 0;
      latency = histogram ();
    }
  in
  t.worker_threads <-
    List.init config.workers (fun _ -> Thread.create (fun () -> worker_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  config.log
    (Printf.sprintf "listening on %s (%d workers, queue depth %d)"
       config.socket_path config.workers config.queue_depth);
  t

let wait t =
  Option.iter Thread.join t.accept_thread;
  List.iter Thread.join t.worker_threads;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

let run config =
  let t = start config in
  wait t
