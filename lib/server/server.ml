(* The synthesis service: a Unix-domain-socket listener, one handler
   thread per connection, and a worker pool fed through a bounded queue.

   Backpressure is structural: the queue blocks producers once
   [queue_depth] jobs are waiting, so a flood of batch requests slows the
   producing connections down instead of growing memory without bound.
   Upstream of the queue sits admission control: a request whose addend
   matrix provably cannot fit the budget is refused at the door
   (DP-SRV-TOOBIG), and a process over its memory watermark sheds new
   work (DP-SRV-OVERLOAD) while in-flight jobs drain.

   Each admitted job runs under a per-request [Dp_gov.Gov] governor
   (deadline, cell budget, heap watermark — the deadline tightened
   further by the request's own [deadline_ms]); a tripped limit is an
   ordinary typed DP-CANCEL/DP-BUDGET error envelope, and the worker
   survives to take the next job.

   Above the budget sits the supervision boundary: an exception that
   escapes a job (a genuine bug — [Synth.run_res] already converts
   expected failures to diagnostics) is delivered to the waiting client
   as DP-SRV-CRASH, dumped as a [.repro] into the crash corpus, and
   counted by the [Supervisor]; the worker backs off and takes the next
   job, and a crash storm opens the circuit breaker at the admission
   edge (DP-SRV-OVERLOAD) while queued work drains. *)

module Diag = Dp_diag.Diag

(* ------------------------------------------------------------------ *)
(* Bounded queue *)

module Bqueue = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    m : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    mutable closed : bool;
  }

  exception Closed

  let create cap =
    {
      q = Queue.create ();
      cap;
      m = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      closed = false;
    }

  (* Blocks while the queue is at capacity — the backpressure edge. *)
  let push t x =
    Mutex.protect t.m @@ fun () ->
    while (not t.closed) && Queue.length t.q >= t.cap do
      Condition.wait t.not_full t.m
    done;
    if t.closed then raise Closed;
    Queue.add x t.q;
    Condition.signal t.not_empty

  (* [None] once the queue is closed and drained. *)
  let pop t =
    Mutex.protect t.m @@ fun () ->
    while (not t.closed) && Queue.is_empty t.q do
      Condition.wait t.not_empty t.m
    done;
    if Queue.is_empty t.q then None
    else begin
      let x = Queue.take t.q in
      Condition.signal t.not_full;
      Some x
    end

  let close t =
    Mutex.protect t.m @@ fun () ->
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full
end

(* ------------------------------------------------------------------ *)
(* Latency histogram (log-spaced milliseconds; last bucket = overflow) *)

let latency_bounds_ms = [| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000 |]

type histogram = { counts : int array }

let histogram () = { counts = Array.make (Array.length latency_bounds_ms + 1) 0 }

let observe h ms =
  let n = Array.length latency_bounds_ms in
  let rec bucket i =
    if i >= n then n
    else if ms <= float_of_int latency_bounds_ms.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1

let histogram_json h =
  Json.List
    (List.init
       (Array.length h.counts)
       (fun i ->
         let le =
           if i < Array.length latency_bounds_ms then
             Json.Int latency_bounds_ms.(i)
           else Json.Null
         in
         Json.Obj [ ("le_ms", le); ("count", Json.Int h.counts.(i)) ]))

(* One line per non-empty bucket, for the shutdown flush. *)
let histogram_summary h =
  let b = Buffer.create 128 in
  Buffer.add_string b "latency_ms:";
  let any = ref false in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        any := true;
        let le =
          if i < Array.length latency_bounds_ms then
            Printf.sprintf "le%d" latency_bounds_ms.(i)
          else "inf"
        in
        Buffer.add_string b (Printf.sprintf " %s=%d" le c)
      end)
    h.counts;
  if not !any then Buffer.add_string b " (empty)";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

type config = {
  socket_path : string;
  store : Dp_cache.Store.t option;
  workers : int;
  queue_depth : int;
  budget : Dp_fuzz.Budget.t;
  mem_watermark_words : int option;
  tech : Dp_tech.Tech.t;
  log : string -> unit;
  supervisor : Supervisor.policy;
  crash_dir : string option;
  chaos : Chaos.config option;
  guard_responses : bool;
  handle_signals : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    store = Some (Dp_cache.Store.create ());
    workers = 2;
    queue_depth = 64;
    budget = { Dp_fuzz.Budget.default with timeout_s = 30.0 };
    mem_watermark_words = None;
    tech = Dp_tech.Tech.lcb_like;
    log = ignore;
    supervisor = Supervisor.default_policy;
    crash_dir = None;
    chaos = None;
    guard_responses = false;
    handle_signals = false;
  }

type job = {
  params : Protocol.synth_params;
  enqueued_at : float;
  deadline : float option;  (* absolute, derived from params.deadline_ms *)
  mutable trial : bool;  (* the half-open breaker's single probe *)
  mutable delivered : bool;  (* under the slot mutex; crash-path guard *)
  deliver : (Dp_cache.Serve.outcome, Diag.t) result -> unit;
}

type t = {
  config : config;
  queue : job Bqueue.t;
  supervisor : Supervisor.t;
  chaos : Chaos.t option;
  listen_fd : Unix.file_descr;
  (* self-pipe: closing a listen socket does not wake a thread already
     blocked on it, so shutdown (and the SIGTERM/SIGINT handlers, which
     must not take locks) writes one byte here and the accept loop
     selects on both *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable worker_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable signal_thread : Thread.t option;
  state_lock : Mutex.t;
  mutable shutting_down : bool;
  (* counters, all under [state_lock] *)
  mutable served : int;  (** synth results delivered (incl. batch elements) *)
  mutable errors : int;  (** error envelopes/elements delivered *)
  mutable connections : int;
  mutable deadline_expired : int;  (** jobs failed fast in the queue *)
  mutable crash_dumps : int;  (** [.repro] files written *)
  mutable guard_rejects : int;  (** corrupted results caught by the guard *)
  mutable cancelled : int;  (** governor aborts (DP-CANCEL*, DP-BUDGET-MEM) *)
  mutable toobig_rejects : int;  (** admission: static row estimate too high *)
  mutable mem_sheds : int;  (** admission: over the memory watermark *)
  latency : histogram;
}

let locked t f = Mutex.protect t.state_lock f

(* ------------------------------------------------------------------ *)
(* Job execution (worker side) *)

(* Request-level failures come back as [Error]; anything else that
   escapes is a genuine bug ([Synth.run_res] already converts expected
   exceptions) and belongs to the supervision boundary in
   [worker_loop].

   The request runs under a per-thread ambient [Dp_gov.Gov] governor
   rather than the process-wide ITIMER_REAL of [Budget.with_timeout]:
   each worker enforces its own deadline/cell/memory limits without
   sharing a timer (there is exactly one ITIMER_REAL per process — see
   budget.mli), and a tripped limit lands at a cooperative checkpoint
   between well-formed pipeline steps, so the cache never sees a torn
   entry and the worker is reused, not restarted.  [squeeze] (the chaos
   [Mem_squeeze] fault) runs the request under a one-word watermark so
   the memory-abort path is exercised end to end. *)
let execute t ~budget ?(squeeze = false) (p : Protocol.synth_params) =
  match Protocol.serve_request ~tech:t.config.tech p with
  | Error d -> Error d
  | Ok r -> (
    let opt cond v = if cond then Some v else None in
    let gov =
      Dp_gov.Gov.create
        ?deadline_s:(opt (budget.Dp_fuzz.Budget.timeout_s > 0.0) budget.timeout_s)
        ?max_cells:(opt (budget.max_cells > 0) budget.max_cells)
        ?max_heap_words:
          (if squeeze then Some 1 else t.config.mem_watermark_words)
        ()
    in
    match
      Dp_gov.Gov.with_ambient gov (fun () ->
          (* Entry poll: even a pure cache hit observes an
             already-expired deadline or the squeezed watermark. *)
          Dp_gov.Gov.poll_now gov;
          Dp_cache.Serve.run ?store:t.config.store r)
    with
    | Error d -> Error d
    | exception Diag.E d -> Error d
    | Ok o -> (
      (* The governor's in-loop cell check only fires every [poll_every]
         cells; this exact post-check also covers cached entries. *)
      match Dp_fuzz.Budget.check_cells budget o.result.netlist with
      | Ok () -> Ok o
      | Error d -> Error d))

(* Lint outgoing netlists so a corrupted result (chaos, cache rot, or a
   real lowering bug) becomes a typed error envelope instead of a wrong
   answer on the wire. *)
let guard_outcome t (o : Dp_cache.Serve.outcome) =
  match Dp_verify.Lint.significant (Dp_verify.Lint.run o.result.netlist) with
  | [] -> Ok o
  | f :: _ as fs ->
    locked t (fun () -> t.guard_rejects <- t.guard_rejects + 1);
    Error
      (Diag.v ~code:"DP-SRV-CORRUPT" ~subsystem:"server"
         ~context:
           [
             ("findings", string_of_int (List.length fs));
             ("first", Fmt.str "%a" Dp_verify.Lint.pp_finding f);
           ]
         "result failed the response integrity guard; refusing to serve it")

let deliver_and_count t job r =
  let ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1000.0 in
  locked t (fun () ->
      observe t.latency ms;
      match r with
      | Ok _ -> t.served <- t.served + 1
      | Error (d : Diag.t) ->
        t.errors <- t.errors + 1;
        if Dp_gov.Gov.is_cancel_code d.code then
          t.cancelled <- t.cancelled + 1);
  job.deliver r

(* The request as a fuzz [Case] (uniform attributes — element 0 stands
   for the bit-level arrays), at the resolved width.  Shared by the
   admission precheck (row estimation) and the crash-dump writer. *)
let case_of_params (p : Protocol.synth_params) =
  let attr a d = if Array.length a > 0 then a.(0) else d in
  let vars =
    List.map
      (fun (v : Protocol.var_spec) ->
        Dp_fuzz.Case.make_var ~signed:v.vsigned ~arrival:(attr v.varrival 0.0)
          ~prob:(attr v.vprob 0.5) v.vname ~width:v.vwidth)
      p.vars
  in
  let width =
    match p.width with
    | Some w -> w
    | None -> (
      match Protocol.env_of_params p with
      | Ok env -> Dp_expr.Range.natural_width env p.expr
      | Error _ -> 8)
  in
  let width = min 62 (max 1 width) in
  Dp_fuzz.Case.single ~vars p.expr ~width

(* A crash reproducer in the fuzzer's corpus format, so [dpsyn replay]
   re-runs the exact job that took the worker down. *)
let crash_entry (p : Protocol.synth_params) exn_text =
  Dp_fuzz.Corpus.entry ~strategy:p.strategy ~adder:p.adder
    ~diag_code:"DP-SRV-CRASH"
    ~comment:(Printf.sprintf "worker crash: %s" exn_text)
    (case_of_params p)

(* Admission control, upstream of the queue and the circuit breaker:
   refuse work the server can already see it should not start.  The
   static matrix-height estimate catches a request whose addend matrix
   cannot fit the configured row budget — a permanent property of the
   request (DP-SRV-TOOBIG, not retryable), cheaper to refuse at the
   door than to enqueue, synthesize and abort mid-loop.  The heap
   watermark sheds {e new} load while this process is over its memory
   ceiling (DP-SRV-OVERLOAD, retryable on another shard or later);
   already-admitted jobs keep running under their governors. *)
let admit_request t (p : Protocol.synth_params) =
  let b = t.config.budget in
  let rows =
    if b.Dp_fuzz.Budget.max_rows > 0 then
      (* A malformed request (e.g. unbound variables) has no estimate;
         admit it so the worker produces its typed DP-ENV/DP-PROTO error
         rather than crashing the connection handler here. *)
      try Dp_fuzz.Budget.estimate_rows (case_of_params p) with _ -> 0
    else 0
  in
  if b.Dp_fuzz.Budget.max_rows > 0 && rows > b.max_rows then begin
    locked t (fun () -> t.toobig_rejects <- t.toobig_rejects + 1);
    Error
      (Diag.v ~code:"DP-SRV-TOOBIG" ~subsystem:"server"
         ~context:
           [
             ("estimated_rows", string_of_int rows);
             ("max_rows", string_of_int b.max_rows);
           ]
         "request rejected at admission: estimated addend-matrix height \
          exceeds this server's row budget")
  end
  else
    match t.config.mem_watermark_words with
    | Some watermark ->
      let heap = (Gc.quick_stat ()).Gc.heap_words in
      if heap > watermark then begin
        locked t (fun () -> t.mem_sheds <- t.mem_sheds + 1);
        Error
          (Diag.v ~code:"DP-SRV-OVERLOAD" ~subsystem:"server"
             ~context:
               [
                 ("reason", "memory");
                 ("heap_words", string_of_int heap);
                 ("max_heap_words", string_of_int watermark);
               ]
             "over the memory watermark; shedding new work while in-flight \
              jobs drain")
      end
      else Ok ()
    | None -> Ok ()

let handle_crash t job exn =
  let exn_text = Printexc.to_string exn in
  let repro =
    match t.config.crash_dir with
    | None -> None
    | Some dir -> (
      try Some (Dp_fuzz.Corpus.save ~dir (crash_entry job.params exn_text))
      with _ -> None)
  in
  (match repro with
  | Some _ -> locked t (fun () -> t.crash_dumps <- t.crash_dumps + 1)
  | None -> ());
  let d =
    Diag.v ~code:"DP-SRV-CRASH" ~subsystem:"server"
      ~context:
        (("exception", exn_text)
        :: (match repro with Some p -> [ ("repro", p) ] | None -> []))
      "worker crashed while serving this request"
  in
  deliver_and_count t job (Error d);
  let backoff = Supervisor.record_crash t.supervisor ~trial:job.trial in
  t.config.log
    (Printf.sprintf "worker crash (%s)%s; restarting after %.3fs" exn_text
       (match repro with Some p -> " repro " ^ p | None -> "")
       backoff);
  Thread.delay backoff

(* One job, inside the supervision boundary.  Any exception escaping
   this function is a worker crash. *)
let process t job =
  let now = Unix.gettimeofday () in
  match job.deadline with
  | Some d when now > d ->
    (* Fail fast: the client's budget elapsed while the job sat in the
       queue; synthesizing would produce a result nobody is waiting
       for, while making every later deadline worse. *)
    locked t (fun () -> t.deadline_expired <- t.deadline_expired + 1);
    deliver_and_count t job
      (Error
         (Diag.v ~code:"DP-SRV-DEADLINE" ~subsystem:"server"
            ~context:
              [ ("queue_wait_ms", Fmt.str "%.1f" ((now -. job.enqueued_at) *. 1000.0)) ]
            "deadline expired before the request could start"));
    Supervisor.record_success t.supervisor ~trial:job.trial
  | _ ->
    let corrupt_result = ref false in
    let squeeze = ref false in
    (match t.chaos with
    | None -> ()
    | Some c -> (
      match Chaos.tick c ~site:`Worker with
      | None -> ()
      | Some Chaos.Worker_panic -> raise Chaos.Panic
      | Some Chaos.Slow_worker -> Thread.delay (Chaos.slow_s c)
      | Some Chaos.Corrupt_cache ->
        Option.iter (Chaos.corrupt_cache_entry c) t.config.store
      | Some Chaos.Corrupt_result -> corrupt_result := true
      | Some Chaos.Mem_squeeze -> squeeze := true
      (* response-, shard- and router-level faults are other sites'
         business *)
      | Some
          ( Chaos.Truncate_response | Chaos.Kill_shard | Chaos.Hang_shard
          | Chaos.Delay_response | Chaos.Dup_response | Chaos.Drop_mid_line
          | Chaos.Kill_router ) ->
        ()));
    let budget =
      Dp_fuzz.Budget.clamp_deadline t.config.budget ~now ~deadline:job.deadline
    in
    let r = execute t ~budget ~squeeze:!squeeze job.params in
    let r =
      match (r, !corrupt_result, t.chaos) with
      | Ok o, true, Some c -> (
        (* Mutate a deep copy — the cache's entry stays pristine; the
           response guard below must catch this before the wire. *)
        match Chaos.corrupt_netlist c o.result.netlist with
        | Some n ->
          Ok
            {
              o with
              Dp_cache.Serve.result = { o.result with Dp_flow.Synth.netlist = n };
            }
        | None -> r)
      | _ -> r
    in
    let guard_enabled = t.config.guard_responses || t.chaos <> None in
    let r =
      match r with Ok o when guard_enabled -> guard_outcome t o | r -> r
    in
    deliver_and_count t job r;
    Supervisor.record_success t.supervisor ~trial:job.trial

let worker_loop t =
  let rec go () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some job ->
      (try process t job with exn -> handle_crash t job exn);
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Enqueue [jobs] and block until every one has delivered. *)

let run_jobs t params_list =
  let n = List.length params_list in
  let slots = Array.make n None in
  let remaining = ref n in
  let m = Mutex.create () in
  let all_done = Condition.create () in
  let jobs =
    List.mapi
      (fun i p ->
        let rec job =
          {
            params = p;
            enqueued_at = Unix.gettimeofday ();
            deadline =
              Option.map
                (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0))
                p.Protocol.deadline_ms;
            trial = false;
            delivered = false;
            deliver =
              (fun r ->
                Mutex.protect m (fun () ->
                    (* idempotent: a crash racing a normal delivery (or a
                       buggy double call) must not skew [remaining] *)
                    if not job.delivered then begin
                      job.delivered <- true;
                      slots.(i) <- Some r;
                      decr remaining;
                      if !remaining = 0 then Condition.broadcast all_done
                    end));
          }
        in
        job)
      params_list
  in
  List.iter
    (fun job ->
      match admit_request t job.params with
      | Error d -> job.deliver (Error d)
      | Ok () -> (
        match Supervisor.admit t.supervisor with
        | Error d -> job.deliver (Error d)
        | Ok trial -> (
          job.trial <- trial;
          try Bqueue.push t.queue job
          with Bqueue.Closed ->
            job.deliver
              (Error
                 (Diag.v ~code:"DP-SRV-SHUTDOWN" ~subsystem:"server"
                    "server is shutting down")))))
    jobs;
  Mutex.protect m (fun () ->
      while !remaining > 0 do
        Condition.wait all_done m
      done);
  Array.to_list slots
  |> List.map (function
       | Some r -> r
       | None ->
         Error
           (Diag.v ~code:"DP-INTERNAL" ~subsystem:"server"
              "request slot never delivered"))

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats_json t =
  let ( served,
        errors,
        connections,
        deadline_expired,
        crash_dumps,
        guard_rejects,
        (cancelled, toobig_rejects, mem_sheds),
        latency ) =
    locked t (fun () ->
        ( t.served,
          t.errors,
          t.connections,
          t.deadline_expired,
          t.crash_dumps,
          t.guard_rejects,
          (t.cancelled, t.toobig_rejects, t.mem_sheds),
          histogram_json t.latency ))
  in
  let cache =
    match t.config.store with
    | None -> Json.Null
    | Some s ->
      let c = Dp_cache.Store.stats s in
      Json.Obj
        [
          ("hits", Json.Int c.hits);
          ("disk_hits", Json.Int c.disk_hits);
          ("misses", Json.Int c.misses);
          ("evictions", Json.Int c.evictions);
          ("corrupt", Json.Int c.corrupt);
          ("stores", Json.Int c.stores);
          ("entries", Json.Int c.entries);
        ]
  in
  let crashes, restarts, rejected = Supervisor.counters t.supervisor in
  let supervisor =
    Json.Obj
      [
        ( "breaker",
          Json.Str (Supervisor.breaker_name (Supervisor.breaker_state t.supervisor)) );
        ("crashes", Json.Int crashes);
        ("restarts", Json.Int restarts);
        ("rejected", Json.Int rejected);
        ("crash_dumps", Json.Int crash_dumps);
        ("deadline_expired", Json.Int deadline_expired);
        ("guard_rejects", Json.Int guard_rejects);
      ]
  in
  let chaos =
    match t.chaos with
    | None -> Json.Null
    | Some c ->
      Json.Obj (List.map (fun (n, k) -> (n, Json.Int k)) (Chaos.injected c))
  in
  let governance =
    Json.Obj
      [
        ("cancelled", Json.Int cancelled);
        ("toobig_rejects", Json.Int toobig_rejects);
        ("mem_sheds", Json.Int mem_sheds);
        ( "mem_watermark_words",
          match t.config.mem_watermark_words with
          | Some w -> Json.Int w
          | None -> Json.Null );
      ]
  in
  Json.Obj
    [
      ("served", Json.Int served);
      ("errors", Json.Int errors);
      ("connections", Json.Int connections);
      ("workers", Json.Int t.config.workers);
      ("queue_depth", Json.Int t.config.queue_depth);
      ("cache", cache);
      ("supervisor", supervisor);
      ("governance", governance);
      ("chaos", chaos);
      ("latency_ms", latency);
    ]

(* ------------------------------------------------------------------ *)
(* Shutdown *)

let request_shutdown t =
  let first =
    locked t (fun () ->
        if t.shutting_down then false
        else begin
          t.shutting_down <- true;
          true
        end)
  in
  if first then begin
    t.config.log "shutting down";
    (* Unlink before waking the accept loop: [wait] returns once the
       accept thread and the workers have joined, and a caller must then
       observe the socket file already gone. *)
    (try Sys.remove t.config.socket_path with Sys_error _ -> ());
    Bqueue.close t.queue;
    try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Connection handling *)

(* A chaos-torn response: the connection must die mid-line. *)
exception Torn_response

(* The peer vanished mid-response: [Lineio.write_line] returned its
   typed EPIPE/ECONNRESET diagnostic.  The connection closes; the
   process (SIGPIPE is ignored) never notices beyond a log line. *)
exception Peer_gone of Diag.t

let respond t fd json =
  let line = Json.to_string json in
  let write_whole () =
    match Lineio.write_line fd line with
    | Ok () -> ()
    | Error d -> raise (Peer_gone d)
  in
  let write_half () =
    let wire = line ^ "\n" in
    let cut = max 1 (String.length wire / 2) in
    try ignore (Unix.write fd (Bytes.of_string wire) 0 cut)
    with Unix.Unix_error _ -> ()
  in
  match Option.bind t.chaos (fun c -> Chaos.tick c ~site:`Respond) with
  | Some Chaos.Truncate_response ->
    write_half ();
    raise Torn_response
  | Some Chaos.Delay_response ->
    (* Hold the answer back long enough to look like a tail-latency
       straggler (and to trip a hedging router's delay), then deliver
       it intact. *)
    Option.iter (fun c -> Thread.delay (Chaos.slow_s c)) t.chaos;
    write_whole ()
  | Some Chaos.Dup_response ->
    (* The same well-formed line twice: one request per connection means
       the reader takes the first and the duplicate dies with the
       socket — duplicated wire bytes must never become a duplicated
       side effect. *)
    write_whole ();
    (match Lineio.write_line fd line with Ok () | Error _ -> ())
  | Some Chaos.Drop_mid_line ->
    (* Half a line, then a hard close in both directions: the abrupt-
       hangup variant of [Truncate_response]. *)
    write_half ();
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    raise Torn_response
  | _ -> write_whole ()

let handle_line t fd line =
  match Protocol.request_of_line line with
  | Error d ->
    locked t (fun () -> t.errors <- t.errors + 1);
    respond t fd (Protocol.error_response ~id:(Protocol.id_of_line line) d);
    `Continue
  | Ok { id; req } -> (
    match req with
    | Protocol.Stats ->
      respond t fd (Protocol.ok_response ~id [ ("stats", stats_json t) ]);
      `Continue
    | Protocol.Ping ->
      (* Answered inline, never queued: a pong proves the accept loop and
         this handler thread are alive even while every worker is wedged —
         exactly the liveness the shard pool's health check probes. *)
      respond t fd (Protocol.ok_response ~id [ ("pong", Json.Bool true) ]);
      `Continue
    | Protocol.Shutdown ->
      respond t fd (Protocol.ok_response ~id []);
      request_shutdown t;
      `Close
    | Protocol.Synth p -> (
      match run_jobs t [ p ] with
      | [ Ok o ] -> respond t fd (Protocol.synth_response ~id p o); `Continue
      | [ Error d ] -> respond t fd (Protocol.error_response ~id d); `Continue
      | _ -> assert false)
    | Protocol.Batch ps ->
      let results = run_jobs t ps in
      let elements = List.map2 Protocol.batch_element ps results in
      respond t fd (Protocol.batch_response ~id elements);
      `Continue)

let handle_connection t fd =
  locked t (fun () -> t.connections <- t.connections + 1);
  let reader = Lineio.create fd in
  let rec loop () =
    match Lineio.read_line reader with
    | Lineio.Eof -> ()
    | Lineio.Truncated partial ->
      (* The peer died (or gave up) mid-request; answer with the typed
         truncation diagnostic in case its read side is still open. *)
      locked t (fun () -> t.errors <- t.errors + 1);
      (try
         respond t fd
           (Protocol.error_response ~id:Json.Null
              (Diag.v ~code:"DP-PROTO003" ~subsystem:"proto"
                 ~context:[ ("buffered_bytes", string_of_int (String.length partial)) ]
                 "request line truncated: stream ended before the newline"))
       with Torn_response | Peer_gone _ -> ())
    | Lineio.Line "" -> loop ()
    | Lineio.Line line -> (
      match handle_line t fd line with
      | `Continue -> loop ()
      | `Close -> ()
      | exception Torn_response -> ()
      | exception Peer_gone d ->
        t.config.log (Printf.sprintf "dropping connection: %s" d.Diag.message))
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    if locked t (fun () -> t.shutting_down) then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | ready, _, _ ->
        if List.mem t.wake_r ready then begin
          (* Either [request_shutdown] woke us, or a signal handler did
             (handlers only write the byte — no locks in signal context);
             in the latter case the shutdown itself runs here. *)
          (try ignore (Unix.read t.wake_r (Bytes.create 1) 0 1)
           with Unix.Unix_error _ -> ());
          if not (locked t (fun () -> t.shutting_down)) then
            request_shutdown t
        end
        else (
          match Unix.accept t.listen_fd with
          | fd, _ ->
            ignore (Thread.create (fun () -> handle_connection t fd) ());
            go ()
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            go ()
          | exception Unix.Unix_error (_, _, _) -> ())
  in
  go ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let start config =
  if config.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if config.queue_depth < 1 then
    invalid_arg "Server.start: queue_depth must be >= 1";
  (* A dead client mid-response must not kill the whole server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 16;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      config;
      queue = Bqueue.create config.queue_depth;
      supervisor = Supervisor.create ~policy:config.supervisor ~log:config.log ();
      chaos = Option.map Chaos.create config.chaos;
      listen_fd;
      wake_r;
      wake_w;
      worker_threads = [];
      accept_thread = None;
      signal_thread = None;
      state_lock = Mutex.create ();
      shutting_down = false;
      served = 0;
      errors = 0;
      connections = 0;
      deadline_expired = 0;
      crash_dumps = 0;
      guard_rejects = 0;
      cancelled = 0;
      toobig_rejects = 0;
      mem_sheds = 0;
      latency = histogram ();
    }
  in
  if config.handle_signals then begin
    (* A [Sys.Signal_handle] callback only runs at an OCaml safe point of
       whichever thread the kernel happened to pick — and that thread may
       be parked forever in [pthread_cond_wait] (a worker, or the main
       thread joining in [wait]), so the callback can simply never fire.
       Instead, block the signals in this thread *before* spawning the
       pool (spawned threads inherit the mask) and claim them from a
       dedicated [sigwait] thread, which is immune to that lottery.
       SIGUSR2 is the watcher's own wake-up call, sent by [wait] so the
       thread can be joined on a signal-less shutdown. *)
    let watched = [ Sys.sigterm; Sys.sigint; Sys.sigusr2 ] in
    ignore (Thread.sigmask Unix.SIG_BLOCK watched);
    let rec watch ~first =
      let s = Thread.wait_signal watched in
      if s <> Sys.sigusr2 then
        if first then begin
          (try ignore (Unix.write t.wake_w (Bytes.of_string "s") 0 1)
           with Unix.Unix_error _ -> ());
          watch ~first:false
        end
        else (* second SIGTERM/SIGINT: the drain is taking too long —
                don't be unkillable *)
          Stdlib.exit 130
      else ()
    in
    t.signal_thread <- Some (Thread.create (fun () -> watch ~first:true) ())
  end;
  t.worker_threads <-
    List.init config.workers (fun _ -> Thread.create (fun () -> worker_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  config.log
    (Printf.sprintf "listening on %s (%d workers, queue depth %d)"
       config.socket_path config.workers config.queue_depth);
  t

let wait t =
  Option.iter Thread.join t.accept_thread;
  List.iter Thread.join t.worker_threads;
  (* Retire the signal watcher before closing the wake pipe, so a late
     signal cannot write into a recycled descriptor: its private SIGUSR2
     makes [wait_signal] return whether the watcher is still on its
     first wait or already waiting for a second TERM/INT; join, then
     restore default delivery for this thread. *)
  (match t.signal_thread with
  | None -> ()
  | Some th ->
    (try Unix.kill (Unix.getpid ()) Sys.sigusr2 with Unix.Unix_error _ -> ());
    Thread.join th;
    t.signal_thread <- None;
    ignore
      (Thread.sigmask Unix.SIG_UNBLOCK [ Sys.sigterm; Sys.sigint; Sys.sigusr2 ]));
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (* The drain is complete: flush the final service counters and the
     latency histogram through the log (stderr for [dpsyn serve]). *)
  let served, errors, deadline_expired, cancelled, toobig, sheds =
    locked t (fun () ->
        ( t.served,
          t.errors,
          t.deadline_expired,
          t.cancelled,
          t.toobig_rejects,
          t.mem_sheds ))
  in
  let crashes, restarts, rejected = Supervisor.counters t.supervisor in
  t.config.log
    (Printf.sprintf
       "drained: served=%d errors=%d deadline_expired=%d cancelled=%d \
        toobig=%d mem_sheds=%d crashes=%d restarts=%d rejected=%d"
       served errors deadline_expired cancelled toobig sheds crashes restarts
       rejected);
  t.config.log (histogram_summary t.latency)

let run config =
  let t = start config in
  wait t
