(** The line-delimited JSON wire protocol: request parsing, response
    building, and the machine-readable result record shared with the
    [--json] CLI surface.  See [doc/protocol.md] for the format spec.

    Malformed input maps to typed diagnostics — [DP-PROTO001] for a line
    that is not valid JSON, [DP-PROTO002] for a well-formed line with a
    missing/invalid field — so a bad request produces an error envelope
    instead of killing the connection. *)

type var_spec = {
  vname : string;
  vwidth : int;
  vsigned : bool;
  varrival : float array;  (** length [vwidth] *)
  vprob : float array;  (** length [vwidth] *)
}

type synth_params = {
  expr_text : string;  (** the expression exactly as the client sent it *)
  expr : Dp_expr.Ast.t;
  vars : var_spec list;
  width : int option;
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  lower_config : Dp_bitmatrix.Lower.config;
  check_level : Dp_verify.Lint.check_level;
  emit_verilog : bool;  (** include the full Verilog text in the record *)
  deadline_ms : float option;
      (** client budget for the whole request, measured by the server
          from the moment the request is {e enqueued}; queue wait counts
          against it, so a request that cannot start in time fails fast
          with [DP-SRV-DEADLINE] instead of synthesizing a result nobody
          is waiting for *)
}

type request =
  | Synth of synth_params
  | Batch of synth_params list
  | Stats
  | Ping  (** liveness probe: answered inline by the connection handler,
              never queued — a server with wedged workers still pongs,
              a hung process does not *)
  | Shutdown

type envelope = { id : Json.t; req : request }
(** [id] is echoed verbatim into the response ([Null] when absent). *)

(** Uniform-attribute constructor (arrival 0.0, prob 0.5 by default). *)
val var_spec :
  ?arrival:float array -> ?prob:float array -> ?signed:bool ->
  string -> width:int -> var_spec

(** Parse the expression text and assemble parameters with [dpsyn synth]
    defaults; a parse failure is a [DP-PROTO002]. *)
val synth_params :
  ?vars:var_spec list -> ?width:int option -> ?strategy:Dp_flow.Strategy.t ->
  ?adder:Dp_adders.Adder.kind -> ?lower_config:Dp_bitmatrix.Lower.config ->
  ?check_level:Dp_verify.Lint.check_level -> ?emit_verilog:bool ->
  ?deadline_ms:float option ->
  string -> (synth_params, Dp_diag.Diag.t) result

(** Build the input environment ([DP-ENV001/002] on bad attributes). *)
val env_of_params : synth_params -> (Dp_expr.Env.t, Dp_diag.Diag.t) result

(** Lower protocol parameters to a cache-layer request. *)
val serve_request :
  tech:Dp_tech.Tech.t -> synth_params ->
  (Dp_cache.Serve.request, Dp_diag.Diag.t) result

(** The request's content address ({!Dp_cache.Key.digest}), computed
    exactly as the serving shard will compute it — the router shards on
    this.  [None] when no key can be built (bad env/coverage); the
    request is still forwarded so the shard can produce the typed
    error. *)
val digest_of_params : tech:Dp_tech.Tech.t -> synth_params -> string option

(** Parse one synth-parameter object (the shape batch elements use). *)
val params_of_json : Json.t -> (synth_params, Dp_diag.Diag.t) result

(** The inverse: the synth-parameter object [params_of_json] accepts —
    the shape the request journal persists for replay. *)
val params_to_json : synth_params -> Json.t

val request_of_line : string -> (envelope, Dp_diag.Diag.t) result
val request_of_json : Json.t -> (envelope, Dp_diag.Diag.t) result
val request_to_json : envelope -> Json.t

(** The [id] to echo in an error envelope for an unparsable request:
    the line's ["id"] member when the line is valid JSON, else [Null]. *)
val id_of_line : string -> Json.t

val diag_to_json : Dp_diag.Diag.t -> Json.t

(** ["dpsyn-result/1"] *)
val result_schema : string

(** The result record.  Deliberately excludes the [cached] flag (that
    lives on the envelope) so records for the same request are
    byte-identical whether served fresh or from cache. *)
val result_record : synth_params -> Dp_cache.Serve.outcome -> Json.t

val ok_response : id:Json.t -> (string * Json.t) list -> Json.t
val error_response : id:Json.t -> Dp_diag.Diag.t -> Json.t
val synth_response : id:Json.t -> synth_params -> Dp_cache.Serve.outcome -> Json.t

val batch_element :
  synth_params -> (Dp_cache.Serve.outcome, Dp_diag.Diag.t) result -> Json.t

val batch_response : id:Json.t -> Json.t list -> Json.t
