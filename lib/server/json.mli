(** Minimal JSON for the wire protocol — no external dependencies.

    The printer is deterministic (object fields emit in the order given,
    floats use the shortest round-tripping decimal form), which is what
    makes repeated identical requests produce byte-identical response
    lines. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line emission (no extraneous whitespace). *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** [member k v] is the field [k] of object [v], if any. *)
val member : string -> t -> t option

val to_int : t -> int option

(** Accepts [Int] too (JSON does not distinguish). *)
val to_float : t -> float option

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
