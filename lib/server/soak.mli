(** Chaos soak: hammer an in-process (optionally chaos-injected) server
    from N concurrent client threads and assert the protocol's safety
    properties hold under fire:

    - {b zero protocol violations} — every response parses, echoes the
      request id, and every failure carries a typed [DP-*] diagnostic;
    - {b zero wrong answers} — every [ok:true] result record is
      byte-identical to the record computed locally, outside the server,
      for the same parameters (so cache corruption, worker crashes and
      injected result corruption can never surface as silently wrong
      data);
    - {b no leaked workers} — the run ends with a graceful shutdown and
      joins every server thread; a leak hangs the soak, which the CI
      job's timeout converts into a failure.

    Requests are drawn deterministically (by [seed]) from a fixed pool
    of expressions whose expected records are precomputed; a slice of
    requests carries a [deadline_ms] so the deadline path is exercised
    too.  Clients go through {!Client.call}, so the retry/idempotency
    story is part of what the soak proves. *)

type config = {
  socket_path : string;
  clients : int;
  requests_per_client : int;
  seed : int;
  workers : int;
  chaos : Chaos.config option;  (** [None] = plain soak (baseline) *)
  cache_dir : string option;  (** disk store, needed for cache-corruption chaos *)
  crash_dir : string option;
  deadline_ms : float option;  (** attached to every 5th request *)
  crypto_mix : bool;
      (** add the {!Dp_designs.Crypto.light} catalog (wide limbs, signed
          wNAF operands, large coefficients) to the request pool, so the
          soak exercises crypto-scale requests — heavier per request
          than the base pool by design *)
  shards : int;
      (** >= 2 soaks the sharded topology: that many forked shard server
          processes (sharing [cache_dir]) under a {!Shard_pool}, a
          {!Router} on [socket_path], and shard sockets at
          [socket_path.<i>]; <= 1 is the single-process soak *)
  shard_chaos : Chaos.config option;
      (** seeded shard-fault schedule ({!Chaos.shard_faults}: SIGKILL /
          SIGSTOP a random shard), paced while clients are in flight;
          sharded runs only *)
  journal_dir : string option;
      (** run the {e journaled} topology: the router (owning the shard
          pool) lives in a child process, journaling every admitted
          request to this directory and recording the fleet in a shard
          state file there, so {!Chaos.Kill_router} faults can SIGKILL
          it mid-flight and the next incarnation replays + reattaches.
          Requires [shards >= 2]; shard-fault pacing is unavailable in
          this mode (the pool lives in the child). *)
  router_chaos : Chaos.config option;
      (** seeded router-fault schedule ({!Chaos.router_faults}: SIGKILL
          the router child, refork it, measure recovery); journaled runs
          only *)
  hedge : bool;  (** enable {!Router.default_hedge} hedged dispatch *)
  log : string -> unit;
}

(** 4 clients x 50 requests, 2 workers, no chaos, unsharded, seed 0. *)
val default_config : socket_path:string -> config

type report = {
  requests : int;  (** total requests sent *)
  ok : int;  (** [ok:true] envelopes with a byte-correct record *)
  typed_errors : int;  (** failures carrying a [DP-*] diagnostic *)
  wrong_answers : int;  (** [ok:true] records that mismatched — must be 0 *)
  violations : int;  (** protocol violations — must be 0 *)
  error_codes : (string * int) list;  (** failure census, by code *)
  elapsed_s : float;
  p50_ms : float;
  p99_ms : float;
  throughput_rps : float;
  shard_kills : int;  (** SIGKILLs delivered by shard chaos (0 unsharded) *)
  shard_hangs : int;  (** SIGSTOPs delivered by shard chaos *)
  shard_restarts : int;  (** pool restarts after shard deaths *)
  shard_health_kills : int;  (** hung shards reaped by the health check *)
  router_kills : int;  (** router SIGKILLs delivered by router chaos *)
  router_restarts : int;  (** router incarnations that came back up *)
  replays : int;
      (** journal entries recovered across restarts (completed entries
          counted + incomplete entries re-dispatched), summed over every
          post-kill incarnation *)
  shard_reattaches : int;
      (** shards the final incarnation's pool adopted (still-live
          processes) instead of respawning *)
  hedges_fired : int;  (** duplicate dispatches issued by hedging *)
  hedge_wins : int;  (** requests answered by the duplicate *)
  diverges : int;  (** cross-shard byte mismatches — must be 0 *)
  recovery_ms : float;  (** mean SIGKILL → router-answers-again latency *)
}

val passed : report -> bool
val report_json : report -> Json.t
val pp_report : report Fmt.t

(** Start the server (or, with [shards >= 2], the shard pool and
    router; with [journal_dir] also set, the forked journaled router),
    run the soak, shut everything down, join (and reap) every thread
    and process. *)
val run : config -> report
