(* The sharded front: one Unix socket facing clients, N shard server
   processes (a [Shard_pool]) behind it.

   Every synthesis request is routed by its content address — the first
   byte of the request digest, modulo the shard count — so a given
   request always lands on the same home shard and the shards' disk
   stores stay hot on disjoint digest ranges.  When the home shard is
   down (restart backoff) or fails mid-forward, the request walks to the
   next live shard instead: requests are digest-keyed and idempotent, so
   a fallback shard computes (or serves from the shared disk store) the
   exact same bytes.  Only when every shard is unreachable does the
   client see an error — the retryable [DP-SRV-SHARD-DOWN].

   The router speaks the same line protocol as a single server, so
   [dpsyn client] cannot tell the difference; [stats] answers with
   counters aggregated across the whole topology. *)

module Diag = Dp_diag.Diag

(* Hedged dispatch: when the home shard has not answered within a
   percentile of recent forward latencies, duplicate the request to the
   next shard and take whichever answer lands first.  Safe because
   requests are digest-idempotent — and the straggler, when it does
   arrive, is byte-compared against the winner as a free cross-shard
   audit. *)
type hedge = {
  percentile : float;  (* of the recent forward-latency window *)
  min_delay_s : float;  (* never hedge sooner than this *)
  max_delay_s : float;  (* never wait longer than this to hedge *)
}

let default_hedge = { percentile = 0.95; min_delay_s = 0.025; max_delay_s = 1.0 }

type config = {
  socket_path : string;
  pool : Shard_pool.t;
  tech : Dp_tech.Tech.t;  (* must match the shards', or digests disagree *)
  forward_timeout_s : float;
  log : string -> unit;
  handle_signals : bool;
  journal : Journal.t option;
  hedge : hedge option;
}

let default_config ~socket_path ~pool =
  {
    socket_path;
    pool;
    tech = Dp_tech.Tech.lcb_like;
    forward_timeout_s = 60.0;
    log = ignore;
    handle_signals = false;
    journal = None;
    hedge = None;
  }

(* Recent forward latencies, kept as a fixed ring — enough signal for a
   percentile without unbounded growth. *)
let lat_window = 128

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable signal_thread : Thread.t option;
  state_lock : Mutex.t;
  mutable shutting_down : bool;
  mutable connections : int;
  mutable routed : int;  (* forwards answered by a shard *)
  mutable failovers : int;  (* forwards answered by a non-home shard *)
  mutable forward_errors : int;  (* forwards no shard could answer *)
  mutable hedges_fired : int;  (* duplicate dispatches issued *)
  mutable hedge_wins : int;  (* requests answered by the duplicate *)
  mutable diverges : int;  (* hedge pairs with differing result bytes *)
  mutable replayed : int;  (* journal entries recovered at start *)
  mutable redispatched : int;  (* incomplete entries re-forwarded *)
  lat : float array;
  mutable lat_n : int;  (* total latencies recorded *)
}

let locked t f = Mutex.protect t.state_lock f

let record_latency t dt =
  locked t (fun () ->
      t.lat.(t.lat_n mod lat_window) <- dt;
      t.lat_n <- t.lat_n + 1)

(* ------------------------------------------------------------------ *)
(* Routing *)

let home_of t (p : Protocol.synth_params) =
  let n = Shard_pool.shard_count t.config.pool in
  match Protocol.digest_of_params ~tech:t.config.tech p with
  | None -> 0  (* no key — shard 0 produces the typed error *)
  | Some digest -> (
    match int_of_string ("0x" ^ String.sub digest 0 2) with
    | byte -> byte mod n
    | exception _ -> 0)

let attempt t socket json =
  let deadline = Unix.gettimeofday () +. t.config.forward_timeout_s in
  match Client.connect ~deadline socket with
  | Error _ as e -> e
  | Ok c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    Client.rpc ~deadline c json

(* Forward to the home shard, failing over along home+1, home+2, … —
   shards the pool believes down are skipped, shards that error at the
   transport level (died between the pool noticing and our connect, or
   hung past the forward deadline) are walked past the same way.  An
   error *envelope* from a shard is a valid answer and is never failed
   over: the fallback would compute the identical typed error. *)
let forward t ~home json =
  let pool = t.config.pool in
  let n = Shard_pool.shard_count pool in
  let t0 = Unix.gettimeofday () in
  let rec go k =
    if k >= n then begin
      locked t (fun () -> t.forward_errors <- t.forward_errors + 1);
      Error
        (Diag.v ~code:"DP-SRV-SHARD-DOWN" ~subsystem:"server"
           ~context:
             [ ("home", string_of_int home); ("shards", string_of_int n) ]
           "no shard could serve this request; its home shard is restarting")
    end
    else
      let i = (home + k) mod n in
      if not (Shard_pool.is_up pool i) then go (k + 1)
      else
        match attempt t (Shard_pool.socket_of pool i) json with
        | Ok resp ->
          locked t (fun () ->
              t.routed <- t.routed + 1;
              if i <> home then t.failovers <- t.failovers + 1);
          record_latency t (Unix.gettimeofday () -. t0);
          Ok resp
        | Error _ -> go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Hedged dispatch *)

(* The bytes that must agree across shards: the ["result"] member alone.
   The envelope's [cached] flag legitimately differs (one shard may
   serve from its store while the other synthesizes fresh) and is
   excluded from the result record for exactly this reason. *)
let result_bytes resp =
  match Json.member "ok" resp |> Fun.flip Option.bind Json.to_bool with
  | Some true -> Option.map Json.to_string (Json.member "result" resp)
  | _ -> None

let hedge_delay t (h : hedge) =
  locked t (fun () ->
      let n = min t.lat_n lat_window in
      if n < 8 then h.max_delay_s (* not enough signal yet; hedge late *)
      else begin
        let xs = Array.sub t.lat 0 n in
        Array.sort compare xs;
        let idx =
          min (n - 1) (int_of_float (h.percentile *. float_of_int n))
        in
        Float.max h.min_delay_s (Float.min h.max_delay_s xs.(idx))
      end)

let diverge_error ~home ~hedge_shard =
  Diag.v ~code:"DP-SRV-DIVERGE" ~subsystem:"server"
    ~context:
      [
        ("home", string_of_int home); ("hedge_shard", string_of_int hedge_shard);
      ]
    "home and hedge shards returned different result bytes for one \
     request; refusing to pick an answer"

(* Forward with a hedge: run the primary in its own thread; if it has
   not answered within the percentile-derived delay, fire a duplicate
   starting at the next shard and deliver whichever answer arrives
   first.  If both answers are in hand before delivery and their result
   bytes differ, the client gets [DP-SRV-DIVERGE] — never a silently
   picked answer.  When the laggard arrives after delivery, a detached
   audit thread still byte-compares and records the divergence. *)
let forward_hedged t ~home json =
  match t.config.hedge with
  | None -> forward t ~home json
  | Some _ when Shard_pool.shard_count t.config.pool < 2 ->
    forward t ~home json
  | Some h ->
    let n = Shard_pool.shard_count t.config.pool in
    let hedge_shard = (home + 1) mod n in
    let m = Mutex.create () in
    let cv = Condition.create () in
    let arrivals = ref [] in
    let deliver who r =
      Mutex.protect m (fun () ->
          arrivals := !arrivals @ [ (who, r) ];
          Condition.broadcast cv)
    in
    ignore (Thread.create (fun () -> deliver `Primary (forward t ~home json)) ());
    let delay = hedge_delay t h in
    let t0 = Unix.gettimeofday () in
    (* No timed condvar wait in the stdlib: poll on a short period until
       the primary lands or the hedge delay expires. *)
    let rec await_primary () =
      if Mutex.protect m (fun () -> !arrivals <> []) then true
      else if Unix.gettimeofday () -. t0 >= delay then false
      else begin
        Thread.delay 0.002;
        await_primary ()
      end
    in
    let audit rs =
      match rs with
      | [ (_, Ok a); (_, Ok b) ] -> (
        match (result_bytes a, result_bytes b) with
        | Some ba, Some bb when not (String.equal ba bb) ->
          locked t (fun () -> t.diverges <- t.diverges + 1);
          t.config.log
            (Printf.sprintf
               "[DP-SRV-DIVERGE] home shard %d and hedge shard %d disagree \
                (%d vs %d result bytes)"
               home hedge_shard (String.length ba) (String.length bb));
          true
        | _ -> false)
      | _ -> false
    in
    if await_primary () then
      match Mutex.protect m (fun () -> !arrivals) with
      | (_, r) :: _ -> r
      | [] -> assert false
    else begin
      locked t (fun () -> t.hedges_fired <- t.hedges_fired + 1);
      ignore
        (Thread.create
           (fun () -> deliver `Hedge (forward t ~home:hedge_shard json))
           ());
      (* Take the first arrival... *)
      Mutex.lock m;
      while !arrivals = [] do
        Condition.wait cv m
      done;
      let snapshot = !arrivals in
      Mutex.unlock m;
      (* ...unless both are already in and disagree. *)
      if List.length snapshot >= 2 && audit snapshot then
        Error (diverge_error ~home ~hedge_shard)
      else begin
        let who, r = List.hd snapshot in
        if who = `Hedge then locked t (fun () -> t.hedge_wins <- t.hedge_wins + 1);
        (* The laggard still gets audited — hedging doubles as a
           continuous cross-shard consistency probe. *)
        if List.length snapshot < 2 then
          ignore
            (Thread.create
               (fun () ->
                 Mutex.lock m;
                 while List.length !arrivals < 2 do
                   Condition.wait cv m
                 done;
                 let rs = !arrivals in
                 Mutex.unlock m;
                 ignore (audit rs))
               ());
        r
      end
    end

(* ------------------------------------------------------------------ *)
(* Batch: partition by home shard, forward the sub-batches concurrently,
   stitch the elements back into request order. *)

let shard_error_element d =
  Json.Obj [ ("ok", Json.Bool false); ("error", Protocol.diag_to_json d) ]

let malformed_shard_response () =
  Diag.v ~code:"DP-PROTO005" ~subsystem:"proto"
    "shard returned a malformed batch response"

let handle_batch t ps =
  let ps_arr = Array.of_list ps in
  let n = Shard_pool.shard_count t.config.pool in
  let groups = Array.make n [] in
  Array.iteri
    (fun idx p ->
      let h = home_of t p in
      groups.(h) <- idx :: groups.(h))
    ps_arr;
  let results = Array.make (Array.length ps_arr) Json.Null in
  let run_group home idxs =
    let sub = List.map (fun i -> ps_arr.(i)) idxs in
    let json =
      Protocol.request_to_json { Protocol.id = Json.Null; req = Protocol.Batch sub }
    in
    let fill_err d =
      let el = shard_error_element d in
      List.iter (fun i -> results.(i) <- el) idxs
    in
    match forward t ~home json with
    | Error d -> fill_err d
    | Ok resp -> (
      match Json.member "ok" resp |> Fun.flip Option.bind Json.to_bool with
      | Some true -> (
        match Json.member "results" resp with
        | Some (Json.List els) when List.length els = List.length idxs ->
          List.iter2 (fun i el -> results.(i) <- el) idxs els
        | _ -> fill_err (malformed_shard_response ()))
      | Some false ->
        (* The shard rejected the whole sub-batch with one typed error
           (e.g. shutdown); every element inherits it. *)
        let el =
          Json.Obj
            [
              ("ok", Json.Bool false);
              ( "error",
                Option.value (Json.member "error" resp) ~default:Json.Null );
            ]
        in
        List.iter (fun i -> results.(i) <- el) idxs
      | None -> fill_err (malformed_shard_response ()))
  in
  let threads =
    List.concat
      (List.init n (fun home ->
           match groups.(home) with
           | [] -> []
           | rev ->
             let idxs = List.rev rev in
             [ Thread.create (fun () -> run_group home idxs) () ]))
  in
  List.iter Thread.join threads;
  Array.to_list results

(* ------------------------------------------------------------------ *)
(* Aggregated stats *)

let get_int j name =
  Option.value (Json.member name j |> Fun.flip Option.bind Json.to_int) ~default:0

let sum_field objs name =
  Json.Int (List.fold_left (fun acc j -> acc + get_int j name) 0 objs)

let sum_obj objs name fields =
  let subs =
    List.filter_map
      (fun j ->
        match Json.member name j with Some (Json.Obj _ as o) -> Some o | _ -> None)
      objs
  in
  if subs = [] then Json.Null
  else Json.Obj (List.map (fun f -> (f, sum_field subs f)) fields)

(* Buckets are positional and identical across shards (same build). *)
let sum_latency objs =
  let buckets =
    List.filter_map
      (fun j ->
        match Json.member "latency_ms" j with
        | Some (Json.List bs) -> Some bs
        | _ -> None)
      objs
  in
  match buckets with
  | [] -> Json.List []
  | first :: _ ->
    let les =
      Array.of_list
        (List.map
           (fun b -> Option.value (Json.member "le_ms" b) ~default:Json.Null)
           first)
    in
    let counts = Array.make (Array.length les) 0 in
    List.iter
      (List.iteri (fun i b ->
           if i < Array.length counts then
             counts.(i) <- counts.(i) + get_int b "count"))
      buckets;
    Json.List
      (List.init (Array.length counts) (fun i ->
           Json.Obj [ ("le_ms", les.(i)); ("count", Json.Int counts.(i)) ]))

let stats_json t =
  let pool = t.config.pool in
  let n = Shard_pool.shard_count pool in
  let req =
    Protocol.request_to_json
      { Protocol.id = Json.Str "router-stats"; req = Protocol.Stats }
  in
  let shard_stats =
    List.init n (fun i ->
        if not (Shard_pool.is_up pool i) then None
        else
          match attempt t (Shard_pool.socket_of pool i) req with
          | Error _ -> None
          | Ok resp -> Json.member "stats" resp)
    |> List.filter_map Fun.id
  in
  let connections, routed, failovers, forward_errors =
    locked t (fun () -> (t.connections, t.routed, t.failovers, t.forward_errors))
  in
  Json.Obj
    [
      ("served", sum_field shard_stats "served");
      ("errors", sum_field shard_stats "errors");
      ("connections", sum_field shard_stats "connections");
      ("workers", sum_field shard_stats "workers");
      ("queue_depth", sum_field shard_stats "queue_depth");
      ( "cache",
        sum_obj shard_stats "cache"
          [ "hits"; "disk_hits"; "misses"; "evictions"; "corrupt"; "stores"; "entries" ]
      );
      ( "supervisor",
        sum_obj shard_stats "supervisor"
          [
            "crashes";
            "restarts";
            "rejected";
            "crash_dumps";
            "deadline_expired";
            "guard_rejects";
          ] );
      ("latency_ms", sum_latency shard_stats);
      ( "router",
        Json.Obj
          ([
             ("connections", Json.Int connections);
             ("routed", Json.Int routed);
             ("failovers", Json.Int failovers);
             ("forward_errors", Json.Int forward_errors);
             ("shards_reporting", Json.Int (List.length shard_stats));
           ]
          @ (let fired, wins, div =
               locked t (fun () -> (t.hedges_fired, t.hedge_wins, t.diverges))
             in
             [
               ("hedges_fired", Json.Int fired);
               ("hedge_wins", Json.Int wins);
               ("diverges", Json.Int div);
             ])
          @
          match t.config.journal with
          | None -> []
          | Some j ->
            let js = Journal.stats j in
            let replayed, redispatched =
              locked t (fun () -> (t.replayed, t.redispatched))
            in
            [
              ( "journal",
                Json.Obj
                  [
                    ("replayed", Json.Int replayed);
                    ("redispatched", Json.Int redispatched);
                    ("appended", Json.Int js.Journal.appended);
                    ("recovered", Json.Int js.Journal.recovered);
                    ("torn_bytes", Json.Int js.Journal.torn_bytes);
                    ("compactions", Json.Int js.Journal.compactions);
                  ] );
            ]) );
      ("shard_pool", Shard_pool.stats_json pool);
    ]

(* ------------------------------------------------------------------ *)
(* Shutdown *)

let request_shutdown t =
  let first =
    locked t (fun () ->
        if t.shutting_down then false
        else begin
          t.shutting_down <- true;
          true
        end)
  in
  if first then begin
    t.config.log "router shutting down";
    (try Sys.remove t.config.socket_path with Sys_error _ -> ());
    try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Connection handling (mirrors Server's: read lines, answer lines) *)

exception Peer_gone of Diag.t

let respond fd json =
  match Lineio.write_line fd (Json.to_string json) with
  | Ok () -> ()
  | Error d -> raise (Peer_gone d)

let handle_line t fd line =
  match Protocol.request_of_line line with
  | Error d ->
    respond fd (Protocol.error_response ~id:(Protocol.id_of_line line) d);
    `Continue
  | Ok { Protocol.id; req } -> (
    match req with
    | Protocol.Ping ->
      respond fd (Protocol.ok_response ~id [ ("pong", Json.Bool true) ]);
      `Continue
    | Protocol.Stats ->
      respond fd (Protocol.ok_response ~id [ ("stats", stats_json t) ]);
      `Continue
    | Protocol.Shutdown ->
      respond fd (Protocol.ok_response ~id []);
      request_shutdown t;
      `Close
    | Protocol.Synth p -> (
      let home = home_of t p in
      let json =
        Protocol.request_to_json { Protocol.id; req = Protocol.Synth p }
      in
      (* Journal the admission before any forward: a router crash after
         this point leaves a replayable record.  A request with no
         content address is not journaled — the shard's typed error is
         cheap to recompute. *)
      let seq =
        match t.config.journal with
        | None -> None
        | Some j -> (
          match Protocol.digest_of_params ~tech:t.config.tech p with
          | None -> None
          | Some digest ->
            let s = Journal.admit j ~digest ~params:(Protocol.params_to_json p) in
            Journal.dispatch j ~seq:s ~shard:home;
            Some (j, s))
      in
      match forward_hedged t ~home json with
      | Ok resp ->
        (* Any shard answer — an error envelope included — completes the
           journal entry: the outcome is reproducible from the store (or
           recomputable), so replaying it would only duplicate work. *)
        Option.iter (fun (j, s) -> Journal.complete j ~seq:s) seq;
        (* Relay the shard's envelope; the deterministic printer makes
           the re-serialization byte-identical to the shard's own line,
           so sharding is invisible to byte-comparing clients. *)
        respond fd resp;
        `Continue
      | Error d ->
        respond fd (Protocol.error_response ~id d);
        `Continue)
    | Protocol.Batch ps ->
      let elements = handle_batch t ps in
      respond fd (Protocol.batch_response ~id elements);
      `Continue)

let handle_connection t fd =
  locked t (fun () -> t.connections <- t.connections + 1);
  let reader = Lineio.create fd in
  let rec loop () =
    match Lineio.read_line reader with
    | Lineio.Eof -> ()
    | Lineio.Truncated partial ->
      (try
         respond fd
           (Protocol.error_response ~id:Json.Null
              (Diag.v ~code:"DP-PROTO003" ~subsystem:"proto"
                 ~context:
                   [ ("buffered_bytes", string_of_int (String.length partial)) ]
                 "request line truncated: stream ended before the newline"))
       with Peer_gone _ -> ())
    | Lineio.Line "" -> loop ()
    | Lineio.Line line -> (
      match handle_line t fd line with
      | `Continue -> loop ()
      | `Close -> ()
      | exception Peer_gone d ->
        t.config.log (Printf.sprintf "router: dropping connection: %s" d.Diag.message))
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    if locked t (fun () -> t.shutting_down) then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | ready, _, _ ->
        if List.mem t.wake_r ready then begin
          (try ignore (Unix.read t.wake_r (Bytes.create 1) 0 1)
           with Unix.Unix_error _ -> ());
          if not (locked t (fun () -> t.shutting_down)) then request_shutdown t
        end
        else (
          match Unix.accept t.listen_fd with
          | fd, _ ->
            ignore (Thread.create (fun () -> handle_connection t fd) ());
            go ()
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            go ()
          | exception Unix.Unix_error (_, _, _) -> ())
  in
  go ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Journal replay: the crash-recovery pass, run once at start before the
   socket accepts clients.  [Completed] entries need no work — their
   answers live in the digest-keyed store and will be re-served
   byte-identically on the next request.  Incomplete entries are
   re-dispatched to their home shard: digest idempotency makes a
   double-dispatch (the pre-crash forward may have finished on the
   shard) converge on the same stored bytes, so replay never duplicates
   a side effect. *)

let replay_journal t =
  match t.config.journal with
  | None -> ()
  | Some j ->
    List.iter
      (fun (e : Journal.entry) ->
        match e.Journal.state with
        | Journal.Completed ->
          locked t (fun () -> t.replayed <- t.replayed + 1)
        | Journal.Admitted | Journal.Dispatched -> (
          match Protocol.params_of_json e.Journal.params with
          | Error d ->
            t.config.log
              (Printf.sprintf
                 "[DP-SRV-REPLAY] seq %d digest %s: unreadable params (%s); \
                  dropping"
                 e.Journal.seq e.Journal.digest d.Diag.message);
            Journal.complete j ~seq:e.Journal.seq
          | Ok p -> (
            let home = home_of t p in
            Journal.dispatch j ~seq:e.Journal.seq ~shard:home;
            let json =
              Protocol.request_to_json
                {
                  Protocol.id =
                    Json.Str (Printf.sprintf "replay-%d" e.Journal.seq);
                  req = Protocol.Synth p;
                }
            in
            match forward t ~home json with
            | Ok _ ->
              Journal.complete j ~seq:e.Journal.seq;
              locked t (fun () ->
                  t.replayed <- t.replayed + 1;
                  t.redispatched <- t.redispatched + 1);
              t.config.log
                (Printf.sprintf
                   "[DP-SRV-REPLAY] seq %d digest %s re-dispatched to shard %d"
                   e.Journal.seq e.Journal.digest home)
            | Error d ->
              (* Stays incomplete; the next incarnation tries again. *)
              t.config.log
                (Printf.sprintf "[DP-SRV-REPLAY] seq %d failed: %s"
                   e.Journal.seq d.Diag.message))))
      (Journal.recovered j);
    Journal.compact j

(* ------------------------------------------------------------------ *)

let start (config : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 16;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      config;
      listen_fd;
      wake_r;
      wake_w;
      accept_thread = None;
      signal_thread = None;
      state_lock = Mutex.create ();
      shutting_down = false;
      connections = 0;
      routed = 0;
      failovers = 0;
      forward_errors = 0;
      hedges_fired = 0;
      hedge_wins = 0;
      diverges = 0;
      replayed = 0;
      redispatched = 0;
      lat = Array.make lat_window 0.0;
      lat_n = 0;
    }
  in
  (* Recover before accepting: clients connecting to the new socket must
     observe a journal whose incomplete entries are already back in
     flight.  (Callers bring the pool up — or reattach it — first.) *)
  replay_journal t;
  if config.handle_signals then begin
    (* Same sigwait-thread discipline as [Server.start]: handlers must
       not depend on the kernel picking a runnable thread. *)
    let watched = [ Sys.sigterm; Sys.sigint; Sys.sigusr2 ] in
    ignore (Thread.sigmask Unix.SIG_BLOCK watched);
    let rec watch ~first =
      let s = Thread.wait_signal watched in
      if s <> Sys.sigusr2 then
        if first then begin
          (try ignore (Unix.write t.wake_w (Bytes.of_string "s") 0 1)
           with Unix.Unix_error _ -> ());
          watch ~first:false
        end
        else Stdlib.exit 130
      else ()
    in
    t.signal_thread <- Some (Thread.create (fun () -> watch ~first:true) ())
  end;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  config.log
    (Printf.sprintf "router listening on %s (%d shards)" config.socket_path
       (Shard_pool.shard_count config.pool));
  t

let wait t =
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  (match t.signal_thread with
  | None -> ()
  | Some th ->
    (try Unix.kill (Unix.getpid ()) Sys.sigusr2 with Unix.Unix_error _ -> ());
    Thread.join th;
    t.signal_thread <- None;
    ignore
      (Thread.sigmask Unix.SIG_UNBLOCK [ Sys.sigterm; Sys.sigint; Sys.sigusr2 ]));
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (* The front is down by choice; take the fleet with it.  (A crashed
     router never reaches this line — that is what the journal, the
     pool's state file and the next incarnation's replay are for.) *)
  Shard_pool.shutdown t.config.pool;
  Option.iter Journal.close t.config.journal;
  let connections, routed, failovers, forward_errors, fired, wins, div =
    locked t (fun () ->
        ( t.connections,
          t.routed,
          t.failovers,
          t.forward_errors,
          t.hedges_fired,
          t.hedge_wins,
          t.diverges ))
  in
  let restarts, health_kills = Shard_pool.counters t.config.pool in
  t.config.log
    (Printf.sprintf
       "router drained: connections=%d routed=%d failovers=%d \
        forward_errors=%d shard_restarts=%d health_kills=%d hedges=%d/%d \
        diverges=%d"
       connections routed failovers forward_errors restarts health_kills fired
       wins div)

(* (fired, wins, diverges) — for the soak report and benches. *)
let hedge_counters t =
  locked t (fun () -> (t.hedges_fired, t.hedge_wins, t.diverges))

(* (entries recovered at start, incomplete entries re-dispatched). *)
let replay_counters t = locked t (fun () -> (t.replayed, t.redispatched))

let run config =
  let t = start config in
  wait t
