(** Worker supervision policy: restart-intensity accounting plus a
    circuit breaker over the server's admission edge.

    Every worker crash (an exception escaping the per-job boundary) is
    {!record_crash}ed.  Crashes inside the sliding [window_s] count
    toward the restart intensity; once they exceed [max_crashes] the
    breaker {e opens} — {!admit} rejects new work with [DP-SRV-OVERLOAD]
    while jobs already queued drain normally.  After [cooldown_s] the
    breaker goes {e half-open}: exactly one trial request is admitted at
    a time; a trial that completes without a crash closes the breaker
    (and clears the window), a crash while half-open re-opens it.

    Restart backoff is exponential in the number of {e consecutive}
    crashes ([backoff_base_s * 2^(n-1)], capped at [backoff_max_s]) and
    resets on the first successfully processed job.

    All operations are thread-safe. *)

type policy = {
  max_crashes : int;  (** crashes tolerated per window before opening *)
  window_s : float;  (** restart-intensity window *)
  cooldown_s : float;  (** open → half-open delay *)
  backoff_base_s : float;  (** first restart delay *)
  backoff_max_s : float;  (** backoff ceiling *)
}

(** 5 crashes / 30 s window, 5 s cooldown, 50 ms–2 s backoff. *)
val default_policy : policy

type breaker = Closed | Open | Half_open

type t

val create : ?policy:policy -> log:(string -> unit) -> unit -> t

(** Admission control for {e new} work.  [Ok trial] admits ([trial] is
    true for the single half-open probe — pass it to {!record_success}
    / {!record_crash} so the breaker learns the probe's fate);
    [Error d] is the [DP-SRV-OVERLOAD] rejection. *)
val admit : t -> (bool, Dp_diag.Diag.t) result

(** A worker crashed.  Returns the backoff to sleep before the worker
    takes its next job. *)
val record_crash : t -> trial:bool -> float

(** A job completed without crashing the worker. *)
val record_success : t -> trial:bool -> unit

val breaker_state : t -> breaker
val breaker_name : breaker -> string

(** (crashes total, restarts total, rejected-while-open total). *)
val counters : t -> int * int * int

(** Count an admission rejection (kept separate so the caller can also
    reject for its own reasons). *)
val count_rejection : t -> unit
