(** Minimal synchronous client for the [dpsyn serve] socket protocol:
    one JSON line out, one JSON line back. *)

type t

val connect : string -> (t, string) result
val send_line : t -> string -> unit
val recv_line : t -> string option

(** [rpc c request] sends one request object and reads one response. *)
val rpc : t -> Json.t -> (Json.t, string) result

val close : t -> unit
