(** Client for the [dpsyn serve] protocol, with typed transport
    diagnostics and an optional retry loop.

    Every failure is a [Dp_diag.Diag.t]:

    - [DP-PROTO003] — the response line was torn: the stream ended (or
      the read deadline passed) with a partial line buffered.
    - [DP-PROTO004] — transport: connect failure, clean EOF where a
      response was due, write failure, or a timeout with nothing
      buffered.
    - [DP-PROTO005] — the response line was not valid JSON.

    {!call} adds jittered-exponential-backoff retries around a full
    connect/send/receive attempt.  Retrying a synthesis request is
    idempotent by construction: the server keys its cache on the request
    digest, so a retried request that already completed server-side is
    answered from cache with a byte-identical result record. *)

type t

(** [connect ?deadline socket] opens a connection.  Without [deadline]
    the connect is a plain blocking [connect(2)] — which hangs forever
    against a listener that is bound but not accepting once its backlog
    fills.  With [deadline] (absolute, [Unix.gettimeofday] clock) the
    connect is non-blocking and a full backlog is retried until the
    deadline, then surfaced as a retryable [DP-PROTO004]. *)
val connect : ?deadline:float -> string -> (t, Dp_diag.Diag.t) result
val close : t -> unit

val send_line : t -> string -> (unit, Dp_diag.Diag.t) result

(** Read one response line and parse it.  [deadline] is absolute
    ([Unix.gettimeofday] clock). *)
val recv_response : ?deadline:float -> t -> (Json.t, Dp_diag.Diag.t) result

(** One request, one response, on an existing connection. *)
val rpc : ?deadline:float -> t -> Json.t -> (Json.t, Dp_diag.Diag.t) result

type retry = {
  attempts : int;  (** total attempts, including the first *)
  base_backoff_s : float;
  max_backoff_s : float;
  per_attempt_timeout_s : float;  (** <= 0 disables the attempt deadline *)
  seed : int;  (** jitter PRNG seed *)
}

(** 3 attempts, 50 ms base / 2 s cap, 30 s per attempt, seed 0. *)
val default_retry : retry

(** Should this failure be retried?  True for the transport/truncation
    codes above plus [DP-SRV-CRASH], [DP-SRV-OVERLOAD] and
    [DP-SRV-SHARD-DOWN] (the crash may not recur; the breaker may
    close; the shard may restart or the router fail over).
    [DP-SRV-DEADLINE] is {e not} retryable — the budget is spent. *)
val retryable : Dp_diag.Diag.t -> bool

(** [call ~retry ~socket request] — a full connect/send/receive attempt
    per try, with jittered exponential backoff between tries.  An error
    {e envelope} whose diagnostic is {!retryable} is retried too; the
    last envelope (or transport error) is returned when attempts run
    out.  Each attempt opens a fresh connection, so a server that
    dropped the line mid-response is simply reconnected to. *)
val call : ?retry:retry -> socket:string -> Json.t -> (Json.t, Dp_diag.Diag.t) result
