(** The sharded serving front: one client-facing Unix socket, a
    {!Shard_pool} of server processes behind it.

    Requests are routed by content address — the first byte of the
    request digest (computed with {!Protocol.digest_of_params}, exactly
    as the shard itself would) modulo the shard count — so each request
    has a stable {e home shard}.  When the home shard is down or fails
    mid-forward, the request {e fails over} to the next live shard
    (home+1, home+2, …): requests are digest-keyed and idempotent, and
    all shards share the disk store, so the fallback returns the exact
    bytes the home shard would have.  Only when no shard can answer does
    the client see the retryable [DP-SRV-SHARD-DOWN].

    The router speaks the single-server line protocol verbatim:

    - [synth] — forwarded whole; the shard's response envelope is
      relayed byte-identically (the deterministic JSON printer makes the
      re-serialization exact);
    - [batch] — partitioned by home shard, forwarded as concurrent
      sub-batches, elements stitched back into request order;
    - [stats] — counters summed across every reporting shard
      (served/errors/cache/supervisor/latency histogram), plus a
      [router] section (routed/failovers/forward_errors) and the pool's
      per-shard detail;
    - [ping] — answered locally;
    - [shutdown] — acknowledged, then the router and the whole pool shut
      down.

    {2 Durability (opt-in via [journal])}

    With a {!Journal} attached, every content-addressed [synth] request
    is journaled {e admitted → dispatched → completed} around its
    forward.  A router that crashes (SIGKILL included) leaves the log
    behind; the next incarnation {e replays} it before accepting
    clients: [completed] entries are counted and re-served
    byte-identically from the digest-keyed store on demand, incomplete
    ones are re-dispatched to their home shard ([DP-SRV-REPLAY] log
    lines) — safe, because digest idempotency makes a double dispatch
    converge on the same stored bytes.  Pair with
    [Shard_pool.state_file] so the new incarnation reattaches to the
    still-live fleet.  Batches ride on client-side retry idempotency and
    are not journaled.

    {2 Hedged dispatch (opt-in via [hedge])}

    When the home shard has not answered within a percentile of recent
    forward latencies, the request is duplicated to the next shard and
    the first answer wins — tail latency is bounded by the healthy
    sibling.  Both answers, whenever the straggler lands, are
    byte-compared as a free cross-shard audit; a mismatch is the typed
    [DP-SRV-DIVERGE] error (or a logged divergence count if the winner
    was already delivered), never a silently picked answer. *)

(** Hedging policy: duplicate a request once its forward has been in
    flight for the [percentile]-th recent forward latency, clamped to
    [[min_delay_s, max_delay_s]].  Until enough latencies are recorded
    the delay is [max_delay_s]. *)
type hedge = { percentile : float; min_delay_s : float; max_delay_s : float }

(** p95, clamped to [[25 ms, 1 s]]. *)
val default_hedge : hedge

type config = {
  socket_path : string;
  pool : Shard_pool.t;  (** started by the caller; {!wait} shuts it down *)
  tech : Dp_tech.Tech.t;
      (** must match the shards' technology or router and shard would
          compute different digests *)
  forward_timeout_s : float;  (** per-shard forward deadline *)
  log : string -> unit;
  handle_signals : bool;  (** SIGTERM/SIGINT → graceful shutdown *)
  journal : Journal.t option;  (** durability + crash recovery *)
  hedge : hedge option;  (** tail-latency hedging + divergence audit *)
}

(** lcb_like tech, 60 s forward timeout, no signals, silent log, no
    journal, no hedging. *)
val default_config : socket_path:string -> pool:Shard_pool.t -> config

type t

(** Bind the front socket, replay the journal (if any), and start
    accepting.  Ignores SIGPIPE process-wide.  The caller brings the
    pool up (or reattaches it) first, so replay forwards land on a live
    fleet. *)
val start : config -> t

(** The home shard for these parameters (digest prefix mod shard count;
    shard 0 when no digest can be computed).  Exposed for tests. *)
val home_of : t -> Protocol.synth_params -> int

(** Aggregated topology stats (the [stats] op's payload). *)
val stats_json : t -> Json.t

(** Idempotent: stop accepting, unlink the front socket. *)
val request_shutdown : t -> unit

(** Join the accept and signal threads, then shut the pool down too
    (and close the journal). *)
val wait : t -> unit

(** (hedges fired, hedge wins, divergences). *)
val hedge_counters : t -> int * int * int

(** (journal entries recovered at start, incomplete entries
    re-dispatched). *)
val replay_counters : t -> int * int

(** [start] + [wait]. *)
val run : config -> unit
