(** The sharded serving front: one client-facing Unix socket, a
    {!Shard_pool} of server processes behind it.

    Requests are routed by content address — the first byte of the
    request digest (computed with {!Protocol.digest_of_params}, exactly
    as the shard itself would) modulo the shard count — so each request
    has a stable {e home shard}.  When the home shard is down or fails
    mid-forward, the request {e fails over} to the next live shard
    (home+1, home+2, …): requests are digest-keyed and idempotent, and
    all shards share the disk store, so the fallback returns the exact
    bytes the home shard would have.  Only when no shard can answer does
    the client see the retryable [DP-SRV-SHARD-DOWN].

    The router speaks the single-server line protocol verbatim:

    - [synth] — forwarded whole; the shard's response envelope is
      relayed byte-identically (the deterministic JSON printer makes the
      re-serialization exact);
    - [batch] — partitioned by home shard, forwarded as concurrent
      sub-batches, elements stitched back into request order;
    - [stats] — counters summed across every reporting shard
      (served/errors/cache/supervisor/latency histogram), plus a
      [router] section (routed/failovers/forward_errors) and the pool's
      per-shard detail;
    - [ping] — answered locally;
    - [shutdown] — acknowledged, then the router and the whole pool shut
      down. *)

type config = {
  socket_path : string;
  pool : Shard_pool.t;  (** started by the caller; {!wait} shuts it down *)
  tech : Dp_tech.Tech.t;
      (** must match the shards' technology or router and shard would
          compute different digests *)
  forward_timeout_s : float;  (** per-shard forward deadline *)
  log : string -> unit;
  handle_signals : bool;  (** SIGTERM/SIGINT → graceful shutdown *)
}

(** lcb_like tech, 60 s forward timeout, no signals, silent log. *)
val default_config : socket_path:string -> pool:Shard_pool.t -> config

type t

(** Bind the front socket and start accepting.  Ignores SIGPIPE
    process-wide. *)
val start : config -> t

(** The home shard for these parameters (digest prefix mod shard count;
    shard 0 when no digest can be computed).  Exposed for tests. *)
val home_of : t -> Protocol.synth_params -> int

(** Aggregated topology stats (the [stats] op's payload). *)
val stats_json : t -> Json.t

(** Idempotent: stop accepting, unlink the front socket. *)
val request_shutdown : t -> unit

(** Join the accept and signal threads, then shut the pool down too. *)
val wait : t -> unit

(** [start] + [wait]. *)
val run : config -> unit
