type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission.  Deterministic: fields print in the order given, floats use
   the shortest decimal form that round-trips, non-finite floats become
   null (JSON has no NaN/inf).  Byte-identical responses across repeated
   requests — the server-smoke CI invariant — rest on this. *)

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_str f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf (Str k);
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string. *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.equal (String.sub st.s st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.pos >= String.length st.s then fail st "unterminated escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'r' -> Buffer.add_char buf '\r'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
         let hex = String.sub st.s st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with Failure _ -> fail st "bad \\u escape"
         in
         (* UTF-8 encode the code point (BMP only; surrogate pairs of
            rare astral characters decode as two separate units). *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> fail st "bad escape");
      go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          fields ((k, v) :: acc)
        | Some '}' ->
          expect st '}';
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail st "expected , or }"
      in
      fields []
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      List []
    end
    else
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          elems (v :: acc)
        | Some ']' ->
          expect st ']';
          List (List.rev (v :: acc))
        | _ -> fail st "expected , or ]"
      in
      elems []
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
