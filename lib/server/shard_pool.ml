(* A pool of shard server processes under OS-level supervision.

   Each shard is a full [dpsyn serve] process on its own Unix socket,
   sharing the content-addressed disk store with its siblings.  The pool
   owns their lifecycle: it forks (or forks+execs) each shard, watches
   for exits with a non-blocking [waitpid] poll, probes liveness with
   periodic [ping] requests (the only detector that catches a *hung*
   process — a SIGSTOPped shard still looks alive to waitpid), and
   restarts the dead with the same exponential-backoff +
   restart-intensity breaker semantics the in-process worker supervisor
   uses.  A shard that keeps dying opens its breaker and stops being
   restarted until the cooldown passes; its digest range is served by
   failover at the router in the meantime. *)

module Diag = Dp_diag.Diag

(* How a shard process is brought up.  [Spawn_fork] runs the closure in
   the forked child — it must never return normally (the pool calls
   [Unix._exit] behind it regardless, so parent state like Alcotest
   at_exit hooks can never run twice).  [Spawn_exec] builds an argv and
   replaces the child image entirely — the robust choice for the CLI,
   immune to locks or threads inherited across [fork]. *)
type spawn =
  | Spawn_fork of (id:int -> socket_path:string -> unit)
  | Spawn_exec of (id:int -> socket_path:string -> string array)

type config = {
  shards : int;
  socket_for : int -> string;
  spawn : spawn;
  health_period_s : float;
  health_timeout_s : float;
  health_failures : int;
  startup_grace_s : float;
  stable_s : float;
  poll_period_s : float;
  grace_s : float;
  supervisor : Supervisor.policy;
  log : string -> unit;
  state_file : string option;
}

let default_config ~socket_for ~spawn ~shards =
  {
    shards;
    socket_for;
    spawn;
    health_period_s = 0.25;
    health_timeout_s = 1.0;
    health_failures = 3;
    startup_grace_s = 5.0;
    stable_s = 2.0;
    poll_period_s = 0.03;
    grace_s = 5.0;
    supervisor = Supervisor.default_policy;
    log = ignore;
    state_file = None;
  }

type phase = Up | Backoff | Stopped

type shard = {
  id : int;
  socket : string;
  sup : Supervisor.t;
  mutable pid : int option;
  mutable phase : phase;
  mutable started_at : float;
  mutable restart_at : float;  (* meaningful in [Backoff] *)
  mutable health_fails : int;  (* consecutive failed pings *)
  mutable trial : bool;  (* this incarnation is the breaker's probe *)
  mutable stable_recorded : bool;
  mutable restarts : int;  (* respawns after a death (not first start) *)
  mutable health_kills : int;  (* SIGKILLs issued by the health checker *)
  mutable adopted : bool;  (* live process reattached, not our child *)
}

type t = {
  config : config;
  shards : shard array;
  lock : Mutex.t;
  mutable monitor : Thread.t option;
  mutable health : Thread.t option;
  mutable shutting_down : bool;
  mutable adoptions : int;  (* shards reattached instead of respawned *)
}

let locked t f = Mutex.protect t.lock f
let shard_count t = t.config.shards

let phase_name = function
  | Up -> "up"
  | Backoff -> "backoff"
  | Stopped -> "stopped"

(* ------------------------------------------------------------------ *)
(* Fleet state file: which pid serves which shard socket.  A pool
   started with the same [state_file] after its owner crashed (e.g. a
   SIGKILLed router) reattaches to the still-live shard processes
   instead of respawning the fleet. *)

(* [kill 0] probes existence without delivering anything; EPERM still
   means "exists". *)
let process_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
  | exception Unix.Unix_error _ -> false

(* Call with [t.lock] held (or before the pool threads exist). *)
let write_state_locked t =
  match t.config.state_file with
  | None -> ()
  | Some path ->
    let shards =
      Array.to_list t.shards
      |> List.filter_map (fun s ->
             match (s.phase, s.pid) with
             | Up, Some pid ->
               Some
                 (Json.Obj
                    [
                      ("id", Json.Int s.id);
                      ("pid", Json.Int pid);
                      ("socket", Json.Str s.socket);
                    ])
             | _ -> None)
    in
    let doc =
      Json.Obj
        [ ("schema", Json.Str "dpsyn-shards/1"); ("shards", Json.List shards) ]
    in
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    (try
       Out_channel.with_open_bin tmp (fun oc ->
           output_string oc (Json.to_string doc);
           output_char oc '\n');
       Sys.rename tmp path
     with Sys_error _ | Unix.Unix_error _ -> (
       try Sys.remove tmp with Sys_error _ -> ()))

(* The recorded pid per shard id from a previous incarnation's state
   file, if readable. *)
let read_state path =
  if not (Sys.file_exists path) then []
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> []
    | raw -> (
      match Json.of_string (String.trim raw) with
      | Error _ -> []
      | Ok doc ->
        (match Json.member "schema" doc |> Fun.flip Option.bind Json.to_str with
        | Some "dpsyn-shards/1" -> (
          match Json.member "shards" doc |> Fun.flip Option.bind Json.to_list with
          | Some shards ->
            List.filter_map
              (fun sh ->
                match
                  ( Json.member "id" sh |> Fun.flip Option.bind Json.to_int,
                    Json.member "pid" sh |> Fun.flip Option.bind Json.to_int,
                    Json.member "socket" sh |> Fun.flip Option.bind Json.to_str )
                with
                | Some id, Some pid, Some socket -> Some (id, pid, socket)
                | _ -> None)
              shards
          | None -> [])
        | _ -> []))

(* ------------------------------------------------------------------ *)
(* Spawning *)

let spawn_shard t s =
  s.adopted <- false;
  (* Remove a stale socket first so a ping cannot reach a ghost. *)
  (try Sys.remove s.socket with Sys_error _ -> ());
  match Unix.fork () with
  | 0 ->
    (* Child.  [_exit], never [exit]: the parent's at_exit handlers
       (test runners, channel flushers) must not run a second time.
       Restart-path forks come from the monitor thread, whose signal
       mask blocks SIGTERM/SIGINT; the child must not inherit that or
       an exec'd shard could never be terminated gracefully. *)
    (try ignore (Unix.sigprocmask Unix.SIG_SETMASK []) with Invalid_argument _ -> ());
    (match t.config.spawn with
    | Spawn_fork f ->
      (try f ~id:s.id ~socket_path:s.socket with _ -> Unix._exit 1);
      Unix._exit 0
    | Spawn_exec f ->
      let argv = f ~id:s.id ~socket_path:s.socket in
      (try Unix.execv argv.(0) argv with _ -> Unix._exit 127))
  | pid ->
    s.pid <- Some pid;
    s.phase <- Up;
    s.started_at <- Unix.gettimeofday ();
    s.health_fails <- 0;
    s.stable_recorded <- false;
    t.config.log
      (Printf.sprintf "shard %d: started pid %d on %s" s.id pid s.socket);
    write_state_locked t

(* ------------------------------------------------------------------ *)
(* Monitor: waitpid polling, backoff scheduling, restarts *)

(* OCaml reports signals with its own (negative) numbering; name the
   ones this subsystem actually deals in. *)
let signal_name sg =
  if sg = Sys.sigkill then "SIGKILL"
  else if sg = Sys.sigterm then "SIGTERM"
  else if sg = Sys.sigint then "SIGINT"
  else if sg = Sys.sigsegv then "SIGSEGV"
  else if sg = Sys.sigabrt then "SIGABRT"
  else if sg = Sys.sigstop then "SIGSTOP"
  else Printf.sprintf "signal %d" sg

let status_reason = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED sg -> Printf.sprintf "killed by %s" (signal_name sg)
  | Unix.WSTOPPED sg -> Printf.sprintf "stopped by %s" (signal_name sg)

let note_death t s ~reason =
  s.pid <- None;
  s.adopted <- false;
  let backoff = Supervisor.record_crash s.sup ~trial:s.trial in
  s.trial <- false;
  s.phase <- Backoff;
  s.restart_at <- Unix.gettimeofday () +. backoff;
  t.config.log
    (Printf.sprintf "[DP-SRV-SHARD-DOWN] shard %d %s; restart in %.3fs" s.id
       reason backoff);
  write_state_locked t

let monitor_step t =
  locked t @@ fun () ->
  if not t.shutting_down then
    Array.iter
      (fun s ->
        match s.phase with
        | Stopped -> ()
        | Up -> (
          match s.pid with
          | None -> ()
          | Some pid ->
            let record_stable () =
              (* Alive.  An incarnation that has stayed up [stable_s]
                 counts as a supervisor success: consecutive-crash
                 backoff resets, and a half-open breaker closes. *)
              if
                (not s.stable_recorded)
                && Unix.gettimeofday () -. s.started_at >= t.config.stable_s
              then begin
                s.stable_recorded <- true;
                Supervisor.record_success s.sup ~trial:s.trial;
                s.trial <- false
              end
            in
            if s.adopted then begin
              (* An adopted shard is not our child: waitpid would raise
                 ECHILD on a live process, so existence is the only
                 exit detector (the health ping still catches hangs). *)
              if process_alive pid then record_stable ()
              else note_death t s ~reason:"adopted process vanished"
            end
            else (
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> record_stable ()
              | p, status when p = pid ->
                note_death t s ~reason:(status_reason status)
              | _ -> ()
              | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                note_death t s ~reason:(status_reason (Unix.WEXITED 255))
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        | Backoff ->
          if Unix.gettimeofday () >= s.restart_at then (
            match Supervisor.admit s.sup with
            | Ok trial ->
              s.trial <- trial;
              s.restarts <- s.restarts + 1;
              t.config.log
                (Printf.sprintf
                   "[DP-SRV-SHARD-RESTART] shard %d: restarting (attempt %d%s)"
                   s.id s.restarts
                   (if trial then ", breaker probe" else ""));
              spawn_shard t s
            | Error _ ->
              (* Breaker open: stay down through the cooldown; re-ask on
                 a pace that doesn't spin. *)
              s.restart_at <- Unix.gettimeofday () +. 0.1))
      t.shards

(* Pool threads must never be the thread the kernel picks for a
   process-directed SIGTERM/SIGINT/SIGUSR2: a {!Router} (or any host)
   that handles signals with a sigwait thread relies on every other
   thread blocking them, and these threads are created before the host
   gets a chance to set its mask. *)
let block_host_signals () =
  try
    ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint; Sys.sigusr2 ])
  with Invalid_argument _ -> ()

let monitor_loop t =
  block_host_signals ();
  let rec go () =
    if locked t (fun () -> t.shutting_down) then ()
    else begin
      monitor_step t;
      Thread.delay t.config.poll_period_s;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Health checking: ping every Up shard; a shard that cannot pong
   [health_failures] times in a row is SIGKILLed (SIGKILL also
   terminates a SIGSTOPped process) and takes the normal death →
   backoff → restart path through the monitor. *)

let ping_ok t s =
  let req =
    Protocol.request_to_json
      { Protocol.id = Json.Str (Printf.sprintf "hc-%d" s.id); req = Protocol.Ping }
  in
  let deadline = Unix.gettimeofday () +. t.config.health_timeout_s in
  match Client.connect ~deadline s.socket with
  | Error _ -> false
  | Ok c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match Client.rpc ~deadline c req with
    | Error _ -> false
    | Ok resp ->
      Json.member "pong" resp |> Fun.flip Option.bind Json.to_bool
      = Some true)

let health_step t =
  (* Snapshot targets under the lock, ping outside it: a hung shard
     must not stall the monitor for [health_timeout_s]. *)
  let targets =
    locked t (fun () ->
        if t.shutting_down then []
        else
          Array.to_list t.shards
          |> List.filter_map (fun s ->
                 match (s.phase, s.pid) with
                 | Up, Some pid -> Some (s, pid)
                 | _ -> None))
  in
  List.iter
    (fun (s, pid) ->
      let ok = ping_ok t s in
      locked t @@ fun () ->
      (* Only score the probe against the same incarnation we pinged. *)
      if (not t.shutting_down) && s.phase = Up && s.pid = Some pid then
        if ok then s.health_fails <- 0
        else begin
          let young =
            Unix.gettimeofday () -. s.started_at < t.config.startup_grace_s
          in
          if not young then begin
            s.health_fails <- s.health_fails + 1;
            if s.health_fails >= t.config.health_failures then begin
              s.health_kills <- s.health_kills + 1;
              t.config.log
                (Printf.sprintf
                   "[DP-SRV-SHARD-DOWN] shard %d pid %d failed %d health \
                    checks; killing it"
                   s.id pid s.health_fails);
              (* SIGKILL cannot be blocked and terminates even a stopped
                 process; the monitor reaps it and schedules the
                 restart. *)
              try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
            end
          end
        end)
    targets

let health_loop t =
  block_host_signals ();
  let rec go () =
    if locked t (fun () -> t.shutting_down) then ()
    else begin
      health_step t;
      Thread.delay t.config.health_period_s;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)

let start (config : config) =
  if config.shards < 1 then invalid_arg "Shard_pool.start: shards must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      config;
      shards =
        Array.init config.shards (fun id ->
            {
              id;
              socket = config.socket_for id;
              sup = Supervisor.create ~policy:config.supervisor ~log:config.log ();
              pid = None;
              phase = Stopped;
              started_at = 0.0;
              restart_at = 0.0;
              health_fails = 0;
              trial = false;
              stable_recorded = false;
              restarts = 0;
              health_kills = 0;
              adopted = false;
            });
      lock = Mutex.create ();
      monitor = None;
      health = None;
      shutting_down = false;
      adoptions = 0;
    }
  in
  (* A previous pool incarnation (same [state_file]) may have left live
     shard processes behind — a SIGKILLed router cannot take its fleet
     down with it.  Reattach to any recorded pid that still exists and
     answers a ping on its socket; spawn the rest.  This runs before
     the monitor/health threads exist, so no lock is needed for the
     pings. *)
  let recorded =
    match config.state_file with Some p -> read_state p | None -> []
  in
  Array.iter
    (fun s ->
      let candidate =
        List.find_opt
          (fun (id, _, socket) -> id = s.id && String.equal socket s.socket)
          recorded
      in
      match candidate with
      | Some (_, pid, _) when process_alive pid && ping_ok t s ->
        s.pid <- Some pid;
        s.adopted <- true;
        s.phase <- Up;
        s.started_at <- Unix.gettimeofday ();
        t.adoptions <- t.adoptions + 1;
        t.config.log
          (Printf.sprintf "shard %d: reattached to live pid %d on %s" s.id pid
             s.socket)
      | _ -> locked t (fun () -> spawn_shard t s))
    t.shards;
  locked t (fun () -> write_state_locked t);
  t.monitor <- Some (Thread.create (fun () -> monitor_loop t) ());
  t.health <- Some (Thread.create (fun () -> health_loop t) ());
  t

let socket_of t i = t.shards.(i).socket
let is_up t i = locked t (fun () -> t.shards.(i).phase = Up)
let pid_of t i = locked t (fun () -> t.shards.(i).pid)
let phase_of t i = locked t (fun () -> phase_name t.shards.(i).phase)

(* Test/chaos hooks: deliver a signal to a shard's current incarnation. *)
let signal_shard t i sg =
  match locked t (fun () -> t.shards.(i).pid) with
  | None -> false
  | Some pid -> ( try Unix.kill pid sg; true with Unix.Unix_error _ -> false)

let kill t i = ignore (signal_shard t i Sys.sigkill)

(* Block until every shard answers a ping (all sockets bound and
   accepting), or [timeout_s] passes. *)
let wait_all_up ?(timeout_s = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let all =
      Array.for_all
        (fun s -> locked t (fun () -> s.phase = Up) && ping_ok t s)
        t.shards
    in
    if all then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let counters t =
  locked t (fun () ->
      Array.fold_left
        (fun (r, h) s -> (r + s.restarts, h + s.health_kills))
        (0, 0) t.shards)

let adoptions t = locked t (fun () -> t.adoptions)

let stats_json t =
  let per_shard =
    locked t (fun () ->
        Array.to_list t.shards
        |> List.map (fun s ->
               let crashes, restarts, rejected = Supervisor.counters s.sup in
               Json.Obj
                 [
                   ("id", Json.Int s.id);
                   ("state", Json.Str (phase_name s.phase));
                   ( "pid",
                     match s.pid with Some p -> Json.Int p | None -> Json.Null );
                   ("restarts", Json.Int s.restarts);
                   ("health_kills", Json.Int s.health_kills);
                   ("adopted", Json.Bool s.adopted);
                   ( "breaker",
                     Json.Str (Supervisor.breaker_name (Supervisor.breaker_state s.sup)) );
                   ("crashes", Json.Int crashes);
                   ("supervisor_restarts", Json.Int restarts);
                   ("rejected", Json.Int rejected);
                 ]))
  in
  let restarts, health_kills = counters t in
  Json.Obj
    [
      ("shards", Json.Int t.config.shards);
      ("restarts", Json.Int restarts);
      ("health_kills", Json.Int health_kills);
      ("adopted", Json.Int (adoptions t));
      ("detail", Json.List per_shard);
    ]

(* ------------------------------------------------------------------ *)
(* Shutdown: stop supervising, then terminate the fleet — SIGCONT (a
   stopped shard cannot process SIGTERM) + SIGTERM, a bounded graceful
   drain, SIGKILL for stragglers, and a final reap of every child. *)

let shutdown t =
  let first =
    locked t (fun () ->
        if t.shutting_down then false
        else begin
          t.shutting_down <- true;
          true
        end)
  in
  if first then begin
    Option.iter Thread.join t.monitor;
    Option.iter Thread.join t.health;
    t.monitor <- None;
    t.health <- None;
    let live () =
      Array.to_list t.shards
      |> List.filter_map (fun s ->
             match s.pid with Some pid -> Some (s, pid) | None -> None)
    in
    List.iter
      (fun (_, pid) ->
        (try Unix.kill pid Sys.sigcont with Unix.Unix_error _ -> ());
        try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      (live ());
    let deadline = Unix.gettimeofday () +. t.config.grace_s in
    let rec drain () =
      let remaining =
        List.filter
          (fun (s, pid) ->
            if s.adopted then
              (* Not our child: waitpid raises ECHILD while the process
                 is still draining — existence is the exit signal. *)
              if process_alive pid then true
              else begin
                s.pid <- None;
                false
              end
            else
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> true
              | _ -> s.pid <- None; false
              | exception Unix.Unix_error _ -> s.pid <- None; false)
          (live ())
      in
      if remaining = [] then ()
      else if Unix.gettimeofday () > deadline then
        List.iter
          (fun (s, pid) ->
            t.config.log
              (Printf.sprintf "shard %d pid %d ignored SIGTERM; killing" s.id pid);
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
            s.pid <- None)
          remaining
      else begin
        Thread.delay 0.02;
        drain ()
      end
    in
    drain ();
    Array.iter
      (fun s ->
        s.phase <- Stopped;
        try Sys.remove s.socket with Sys_error _ -> ())
      t.shards;
    (* The fleet is down by choice; the next pool must start fresh, not
       chase recorded pids. *)
    match t.config.state_file with
    | Some p -> ( try Sys.remove p with Sys_error _ -> ())
    | None -> ()
  end
