module Diag = Dp_diag.Diag

type config = {
  socket_path : string;
  clients : int;
  requests_per_client : int;
  seed : int;
  workers : int;
  chaos : Chaos.config option;
  cache_dir : string option;
  crash_dir : string option;
  deadline_ms : float option;
  crypto_mix : bool;
  shards : int;
  shard_chaos : Chaos.config option;
  journal_dir : string option;
  router_chaos : Chaos.config option;
  hedge : bool;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    clients = 4;
    requests_per_client = 50;
    seed = 0;
    workers = 2;
    chaos = None;
    cache_dir = None;
    crash_dir = None;
    deadline_ms = None;
    crypto_mix = false;
    shards = 0;
    shard_chaos = None;
    journal_dir = None;
    router_chaos = None;
    hedge = false;
    log = ignore;
  }

type report = {
  requests : int;
  ok : int;
  typed_errors : int;
  wrong_answers : int;
  violations : int;
  error_codes : (string * int) list;
  elapsed_s : float;
  p50_ms : float;
  p99_ms : float;
  throughput_rps : float;
  shard_kills : int;
  shard_hangs : int;
  shard_restarts : int;
  shard_health_kills : int;
  router_kills : int;
  router_restarts : int;
  replays : int;  (* journal entries recovered across router restarts *)
  shard_reattaches : int;  (* shards adopted instead of respawned *)
  hedges_fired : int;
  hedge_wins : int;
  diverges : int;
  recovery_ms : float;  (* mean SIGKILL → router-answers-again latency *)
}

let passed r = r.violations = 0 && r.wrong_answers = 0 && r.diverges = 0

let report_json r =
  Json.Obj
    [
      ("schema", Json.Str "dpsyn-soak/1");
      ("requests", Json.Int r.requests);
      ("ok", Json.Int r.ok);
      ("typed_errors", Json.Int r.typed_errors);
      ("wrong_answers", Json.Int r.wrong_answers);
      ("violations", Json.Int r.violations);
      ( "error_codes",
        Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) r.error_codes) );
      ("elapsed_s", Json.Float r.elapsed_s);
      ("p50_ms", Json.Float r.p50_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("shard_kills", Json.Int r.shard_kills);
      ("shard_hangs", Json.Int r.shard_hangs);
      ("shard_restarts", Json.Int r.shard_restarts);
      ("shard_health_kills", Json.Int r.shard_health_kills);
      ("router_kills", Json.Int r.router_kills);
      ("router_restarts", Json.Int r.router_restarts);
      ("replays", Json.Int r.replays);
      ("shard_reattaches", Json.Int r.shard_reattaches);
      ("hedges_fired", Json.Int r.hedges_fired);
      ("hedge_wins", Json.Int r.hedge_wins);
      ("diverges", Json.Int r.diverges);
      ("recovery_ms", Json.Float r.recovery_ms);
    ]

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>requests: %d (ok %d, typed errors %d)@,\
     wrong answers: %d@,violations: %d@,\
     latency: p50 %.1f ms, p99 %.1f ms@,\
     throughput: %.1f req/s over %.2f s@,errors by code:%s%s@]"
    r.requests r.ok r.typed_errors r.wrong_answers r.violations r.p50_ms
    r.p99_ms r.throughput_rps r.elapsed_s
    (if r.error_codes = [] then " (none)"
     else
       String.concat ""
         (List.map (fun (c, n) -> Printf.sprintf " %s=%d" c n) r.error_codes))
    (String.concat ""
       [
         (if r.shard_kills + r.shard_hangs + r.shard_restarts = 0 then ""
          else
            Printf.sprintf
              "\nshard faults: kills=%d hangs=%d restarts=%d health_kills=%d"
              r.shard_kills r.shard_hangs r.shard_restarts r.shard_health_kills);
         (if r.router_kills = 0 then ""
          else
            Printf.sprintf
              "\nrouter: kills=%d restarts=%d replays=%d reattaches=%d \
               recovery %.0f ms"
              r.router_kills r.router_restarts r.replays r.shard_reattaches
              r.recovery_ms);
         (if r.hedges_fired = 0 then ""
          else
            Printf.sprintf "\nhedges: fired=%d wins=%d diverges=%d"
              r.hedges_fired r.hedge_wins r.diverges);
       ])

(* ------------------------------------------------------------------ *)
(* The request pool: small, cheap, structurally varied expressions with
   locally precomputed expected records. *)

let pool_specs =
  [
    ("x + y", [ ("x", 6); ("y", 6) ]);
    ("x*y + z", [ ("x", 4); ("y", 4); ("z", 8) ]);
    ("3*x + 5*y", [ ("x", 5); ("y", 5) ]);
    ("(x + y)*(x - y)", [ ("x", 4); ("y", 4) ]);
    ("x*x + 2*x + 1", [ ("x", 5) ]);
    ("x + y + z + 7", [ ("x", 4); ("y", 5); ("z", 6) ]);
    ("x*y - z", [ ("x", 4); ("y", 3); ("z", 6) ]);
    ("2*x + x*y", [ ("x", 4); ("y", 4) ]);
  ]

type pooled = {
  params : Protocol.synth_params;
  expected : string;  (** [Json.to_string] of the expected result record *)
}

let tech = Dp_tech.Tech.lcb_like

let pooled_of_params params =
  let expected =
    match Protocol.serve_request ~tech params with
    | Error d -> Diag.fail d
    | Ok r -> (
      match Dp_cache.Serve.run r with
      | Error d -> Diag.fail d
      | Ok o -> Json.to_string (Protocol.result_record params o))
  in
  { params; expected }

(* The crypto catalog's light designs as wire requests: wide limbs,
   signed wNAF operands, large constant coefficients — the crypto-scale
   end of the workload, with expected records precomputed the same way
   as the base pool's. *)
let crypto_params () =
  List.map
    (fun (d : Dp_designs.Design.t) ->
      let vars =
        List.map
          (fun (name, (vi : Dp_expr.Env.var_info)) ->
            Protocol.var_spec ~arrival:vi.arrival ~prob:vi.prob
              ~signed:vi.signed name ~width:vi.width)
          (Dp_expr.Env.bindings d.env)
      in
      match
        Protocol.synth_params ~vars ~width:(Some d.width)
          (Dp_expr.Ast.to_string d.expr)
      with
      | Ok p -> p
      | Error d -> Diag.fail d)
    Dp_designs.Crypto.light

let build_pool ?(crypto = false) () =
  let base =
    List.map
      (fun (expr_text, vars) ->
        let vars =
          List.map (fun (n, w) -> Protocol.var_spec n ~width:w) vars
        in
        match Protocol.synth_params ~vars expr_text with
        | Ok p -> pooled_of_params p
        | Error d -> Diag.fail d)
      pool_specs
  in
  if crypto then base @ List.map pooled_of_params (crypto_params ())
  else base

(* ------------------------------------------------------------------ *)

type tally = {
  lock : Mutex.t;
  mutable ok : int;
  mutable typed_errors : int;
  mutable wrong_answers : int;
  mutable violations : int;
  codes : (string, int) Hashtbl.t;
  mutable latencies_ms : float list;
}

let count_code t code =
  Hashtbl.replace t.codes code
    (1 + Option.value (Hashtbl.find_opt t.codes code) ~default:0)

let classify tally ~sent_id ~expected response =
  Mutex.protect tally.lock @@ fun () ->
  let id_ok =
    match Json.member "id" response with
    | Some id -> id = sent_id
    | None -> false
  in
  if not id_ok then begin
    tally.violations <- tally.violations + 1;
    count_code tally "missing-or-wrong-id"
  end
  else
    match Json.member "ok" response |> Fun.flip Option.bind Json.to_bool with
    | Some true -> (
      match Json.member "result" response with
      | Some record when Json.to_string record = expected ->
        tally.ok <- tally.ok + 1
      | Some _ ->
        tally.wrong_answers <- tally.wrong_answers + 1;
        count_code tally "wrong-record"
      | None ->
        tally.violations <- tally.violations + 1;
        count_code tally "ok-without-result")
    | Some false -> (
      match
        Json.member "error" response
        |> Fun.flip Option.bind (Json.member "code")
        |> Fun.flip Option.bind Json.to_str
      with
      | Some code when String.length code >= 3 && String.sub code 0 3 = "DP-" ->
        tally.typed_errors <- tally.typed_errors + 1;
        count_code tally code
      | _ ->
        tally.violations <- tally.violations + 1;
        count_code tally "untyped-error")
    | _ ->
      tally.violations <- tally.violations + 1;
      count_code tally "malformed-envelope"

let client_thread config pool tally k =
  let n_pool = List.length pool in
  let rng = Random.State.make [| config.seed; k; 0x50ac |] in
  for i = 0 to config.requests_per_client - 1 do
    let pooled = List.nth pool (Random.State.int rng n_pool) in
    let deadline_ms =
      match config.deadline_ms with
      | Some d when i mod 5 = 3 -> Some d
      | _ -> None
    in
    let params = { pooled.params with Protocol.deadline_ms } in
    let sent_id = Json.Str (Printf.sprintf "c%d-r%d" k i) in
    let request =
      Protocol.request_to_json
        { Protocol.id = sent_id; req = Protocol.Synth params }
    in
    let retry =
      {
        Client.default_retry with
        (* A journaled run SIGKILLs the router mid-flight: the retry
           window must ride out the restart (fork + reattach + replay),
           not just a shard blip. *)
        Client.attempts = (if config.journal_dir = None then 4 else 8);
        per_attempt_timeout_s = 20.0;
        seed = (config.seed * 8191) + (k * 131) + i;
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Client.call ~retry ~socket:config.socket_path request in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    (match r with
    | Ok response ->
      classify tally ~sent_id ~expected:pooled.expected response
    | Error (d : Diag.t) ->
      (* Transport failure that survived the retry loop: still a typed
         outcome, not a violation — unless the code is untyped. *)
      Mutex.protect tally.lock (fun () ->
          if String.length d.code >= 3 && String.sub d.code 0 3 = "DP-" then begin
            tally.typed_errors <- tally.typed_errors + 1;
            count_code tally d.code
          end
          else begin
            tally.violations <- tally.violations + 1;
            count_code tally "untyped-error"
          end));
    Mutex.protect tally.lock (fun () ->
        tally.latencies_ms <- ms :: tally.latencies_ms)
  done

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let fresh_tally () =
  {
    lock = Mutex.create ();
    ok = 0;
    typed_errors = 0;
    wrong_answers = 0;
    violations = 0;
    codes = Hashtbl.create 16;
    latencies_ms = [];
  }

(* Run the client fleet against whatever is listening on
   [config.socket_path] and fold the tally into a report (shard-fault
   counters are filled in by the sharded driver). *)
let drive config pool tally =
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init config.clients (fun k ->
        Thread.create (fun () -> client_thread config pool tally k) ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let sorted = Array.of_list tally.latencies_ms in
  Array.sort compare sorted;
  let requests = config.clients * config.requests_per_client in
  {
    requests;
    ok = tally.ok;
    typed_errors = tally.typed_errors;
    wrong_answers = tally.wrong_answers;
    violations = tally.violations;
    error_codes =
      List.sort compare
        (Hashtbl.fold (fun c n acc -> (c, n) :: acc) tally.codes []);
    elapsed_s;
    p50_ms = percentile sorted 50.0;
    p99_ms = percentile sorted 99.0;
    throughput_rps =
      (if elapsed_s > 0.0 then float_of_int requests /. elapsed_s else 0.0);
    shard_kills = 0;
    shard_hangs = 0;
    shard_restarts = 0;
    shard_health_kills = 0;
    router_kills = 0;
    router_restarts = 0;
    replays = 0;
    shard_reattaches = 0;
    hedges_fired = 0;
    hedge_wins = 0;
    diverges = 0;
    recovery_ms = 0.0;
  }

let run_single config =
  let pool = build_pool ~crypto:config.crypto_mix () in
  let store =
    Some (Dp_cache.Store.create ~capacity:64 ?dir:config.cache_dir ())
  in
  let server_config =
    {
      (Server.default_config ~socket_path:config.socket_path) with
      Server.store;
      workers = config.workers;
      chaos = config.chaos;
      crash_dir = config.crash_dir;
      guard_responses = true;
      log = config.log;
    }
  in
  let server = Server.start server_config in
  let report = drive config pool (fresh_tally ()) in
  (* Graceful shutdown; [wait] returning means no leaked server threads. *)
  Server.request_shutdown server;
  Server.wait server;
  report

(* ------------------------------------------------------------------ *)
(* Sharded topology: N forked shard processes under a Shard_pool, a
   Router in front, the same client fleet and the same invariants —
   plus a pacer thread delivering shard-level faults (SIGKILL /
   SIGSTOP) from the seeded shard-chaos schedule while requests are in
   flight. *)

let run_sharded config =
  let pool = build_pool ~crypto:config.crypto_mix () in
  let spawn =
    Shard_pool.Spawn_fork
      (fun ~id:_ ~socket_path ->
        (* The child is a complete single-process server sharing the
           soak's disk store directory with its siblings.
           [handle_signals] makes the pool's SIGTERM a graceful drain. *)
        let store =
          Some (Dp_cache.Store.create ~capacity:64 ?dir:config.cache_dir ())
        in
        Server.run
          {
            (Server.default_config ~socket_path) with
            Server.store;
            workers = config.workers;
            chaos = config.chaos;
            crash_dir = config.crash_dir;
            guard_responses = true;
            handle_signals = true;
            log = ignore;
          })
  in
  let pool_config =
    {
      (Shard_pool.default_config ~shards:config.shards ~spawn
         ~socket_for:(fun i -> config.socket_path ^ "." ^ string_of_int i))
      with
      Shard_pool.health_period_s = 0.1;
      health_timeout_s = 0.5;
      health_failures = 2;
      stable_s = 0.5;
      poll_period_s = 0.02;
      (* Generous restart intensity: the soak wants to watch shards come
         back, so kills within the run must not wedge the breaker open
         for its whole duration. *)
      supervisor =
        {
          Supervisor.max_crashes = 50;
          window_s = 5.0;
          cooldown_s = 0.5;
          backoff_base_s = 0.02;
          backoff_max_s = 0.2;
        };
      log = config.log;
    }
  in
  let shard_pool = Shard_pool.start pool_config in
  if not (Shard_pool.wait_all_up ~timeout_s:30.0 shard_pool) then begin
    Shard_pool.shutdown shard_pool;
    Diag.fail
      (Diag.v ~code:"DP-SRV-SHARD-DOWN" ~subsystem:"server"
         "sharded soak: shards never came up")
  end;
  let router =
    Router.start
      {
        (Router.default_config ~socket_path:config.socket_path
           ~pool:shard_pool)
        with
        Router.forward_timeout_s = 20.0;
        hedge = (if config.hedge then Some Router.default_hedge else None);
        log = config.log;
      }
  in
  (* The shard-fault pacer: ticks the seeded shard-chaos schedule while
     clients are in flight.  Kills count only when the signal landed. *)
  let kills = ref 0 and hangs = ref 0 in
  let stop_faults = ref false in
  let fault_lock = Mutex.create () in
  let fault_thread =
    match config.shard_chaos with
    | None -> None
    | Some cc ->
      let chaos = Chaos.create cc in
      Some
        (Thread.create
           (fun () ->
             let rec go () =
               if Mutex.protect fault_lock (fun () -> !stop_faults) then ()
               else begin
                 (match Chaos.tick chaos ~site:`Shard with
                 | Some Chaos.Kill_shard ->
                   let v = Chaos.pick chaos config.shards in
                   if Shard_pool.signal_shard shard_pool v Sys.sigkill then begin
                     incr kills;
                     config.log
                       (Printf.sprintf "soak: SIGKILLed shard %d" v)
                   end
                 | Some Chaos.Hang_shard ->
                   let v = Chaos.pick chaos config.shards in
                   if Shard_pool.signal_shard shard_pool v Sys.sigstop then begin
                     incr hangs;
                     config.log
                       (Printf.sprintf "soak: SIGSTOPped shard %d" v)
                   end
                 | _ -> ());
                 Thread.delay 0.05;
                 go ()
               end
             in
             go ())
           ())
  in
  let report = drive config pool (fresh_tally ()) in
  Mutex.protect fault_lock (fun () -> stop_faults := true);
  Option.iter Thread.join fault_thread;
  let restarts, health_kills = Shard_pool.counters shard_pool in
  let hedges_fired, hedge_wins, diverges = Router.hedge_counters router in
  (* Graceful teardown: the router acknowledges nothing further, then
     takes the whole pool down (SIGCONT+SIGTERM, bounded drain,
     SIGKILL stragglers) — a leaked shard process would hang [wait],
     which the CI step timeout converts into a failure. *)
  Router.request_shutdown router;
  Router.wait router;
  {
    report with
    shard_kills = !kills;
    shard_hangs = !hangs;
    shard_restarts = restarts;
    shard_health_kills = health_kills;
    hedges_fired;
    hedge_wins;
    diverges;
  }

(* ------------------------------------------------------------------ *)
(* Journaled topology: the router (owning the shard pool) runs in a
   child process so the soak can SIGKILL it mid-flight — the durability
   contract under test.  The journal and the pool's shard state file
   live in [journal_dir]: each new router incarnation replays the one
   and reattaches to the still-live fleet via the other, so a router
   kill costs a blip, not the shards.  Shard-level fault pacing is
   unavailable here (the pool lives in the child); network faults still
   reach the shard servers via [config.chaos]. *)

let rpc_once ~socket ~timeout_s request =
  let deadline = Unix.gettimeofday () +. timeout_s in
  match Client.connect ~deadline socket with
  | Error _ as e -> e
  | Ok c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    Client.rpc ~deadline c request

let ping_router ~socket =
  let req =
    Protocol.request_to_json
      { Protocol.id = Json.Str "soak-ping"; req = Protocol.Ping }
  in
  match rpc_once ~socket ~timeout_s:1.0 req with
  | Ok resp ->
    Json.member "pong" resp |> Fun.flip Option.bind Json.to_bool = Some true
  | Error _ -> false

let wait_router_up ~socket ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if ping_router ~socket then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let int_at json path =
  let rec go j = function
    | [] -> Json.to_int j
    | k :: rest -> (
      match Json.member k j with Some v -> go v rest | None -> None)
  in
  Option.value (go json path) ~default:0

let run_journaled config dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let pool = build_pool ~crypto:config.crypto_mix () in
  let state_file = Filename.concat dir "shards.json" in
  let fork_router () =
    match Unix.fork () with
    | 0 ->
      (* Child: the full sharded front with journal + reattach.  [_exit]
         on every path — the soak process's at_exit state must never run
         here; reset the mask the pacer thread's fork inherited. *)
      (try ignore (Unix.sigprocmask Unix.SIG_SETMASK [])
       with Invalid_argument _ -> ());
      (try
         let spawn =
           Shard_pool.Spawn_fork
             (fun ~id:_ ~socket_path ->
               let store =
                 Some
                   (Dp_cache.Store.create ~capacity:64 ?dir:config.cache_dir ())
               in
               Server.run
                 {
                   (Server.default_config ~socket_path) with
                   Server.store;
                   workers = config.workers;
                   chaos = config.chaos;
                   crash_dir = config.crash_dir;
                   guard_responses = true;
                   handle_signals = true;
                   log = ignore;
                 })
         in
         let pool_config =
           {
             (Shard_pool.default_config ~shards:config.shards ~spawn
                ~socket_for:(fun i ->
                  config.socket_path ^ "." ^ string_of_int i))
             with
             Shard_pool.health_period_s = 0.1;
             health_timeout_s = 0.5;
             health_failures = 2;
             stable_s = 0.5;
             poll_period_s = 0.02;
             supervisor =
               {
                 Supervisor.max_crashes = 50;
                 window_s = 5.0;
                 cooldown_s = 0.5;
                 backoff_base_s = 0.02;
                 backoff_max_s = 0.2;
               };
             state_file = Some state_file;
             log = ignore;
           }
         in
         let shard_pool = Shard_pool.start pool_config in
         if not (Shard_pool.wait_all_up ~timeout_s:30.0 shard_pool) then
           Unix._exit 1;
         let journal = Journal.open_ ~dir ~log:ignore () in
         Router.run
           {
             (Router.default_config ~socket_path:config.socket_path
                ~pool:shard_pool)
             with
             Router.forward_timeout_s = 20.0;
             journal = Some journal;
             hedge = (if config.hedge then Some Router.default_hedge else None);
             handle_signals = true;
             log = ignore;
           };
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid -> pid
  in
  let router_stats () =
    let req =
      Protocol.request_to_json
        { Protocol.id = Json.Str "soak-stats"; req = Protocol.Stats }
    in
    match rpc_once ~socket:config.socket_path ~timeout_s:10.0 req with
    | Ok resp -> Json.member "stats" resp
    | Error _ -> None
  in
  (* Forking from a process with live threads can (rarely) leave the
     child wedged before its accept loop: the socket is bound, nobody
     accepts, and once the backlog fills every connect would block.  So
     every spawn is supervised — if the incarnation never answers a
     ping, SIGKILL it (closing its listener, which unblocks pending
     connects) and fork again. *)
  let spawn_router_up ~timeout_s ~tries =
    let rec go k =
      let pid = fork_router () in
      if wait_router_up ~socket:config.socket_path ~timeout_s then Some pid
      else begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        config.log
          (Printf.sprintf
             "soak: router pid %d never came up; killed the incarnation" pid);
        if k + 1 >= tries then None else go (k + 1)
      end
    in
    go 0
  in
  let router_pid =
    match spawn_router_up ~timeout_s:30.0 ~tries:3 with
    | Some pid -> ref pid
    | None ->
      Diag.fail
        (Diag.v ~code:"DP-SRV-SHARD-DOWN" ~subsystem:"server"
           "journaled soak: router never came up")
  in
  let kills = ref 0 and restarts = ref 0 and replays = ref 0 in
  let recovery_samples = ref [] in
  let stop_faults = ref false in
  let fault_lock = Mutex.create () in
  let fault_thread =
    match config.router_chaos with
    | None -> None
    | Some cc ->
      let chaos = Chaos.create cc in
      Some
        (Thread.create
           (fun () ->
             let rec go () =
               if Mutex.protect fault_lock (fun () -> !stop_faults) then ()
               else begin
                 (match Chaos.tick chaos ~site:`Router with
                 | Some Chaos.Kill_router ->
                   let pid = !router_pid in
                   (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                   (try ignore (Unix.waitpid [] pid)
                    with Unix.Unix_error _ -> ());
                   incr kills;
                   config.log
                     (Printf.sprintf "soak: SIGKILLed router pid %d" pid);
                   let t0 = Unix.gettimeofday () in
                   (* A healthy incarnation answers in well under a
                      second (shards are adopted, not respawned), so a
                      short wait keeps a wedged fork cheap. *)
                   (match spawn_router_up ~timeout_s:10.0 ~tries:3 with
                   | None -> ()
                   | Some new_pid ->
                     router_pid := new_pid;
                     incr restarts;
                     recovery_samples :=
                       ((Unix.gettimeofday () -. t0) *. 1000.0)
                       :: !recovery_samples;
                     (* Replay runs before the new incarnation accepts,
                        so its stats already carry the final counts;
                        harvest now — the next kill would erase them. *)
                     match router_stats () with
                     | Some s ->
                       replays :=
                         !replays + int_at s [ "router"; "journal"; "replayed" ]
                     | None -> ())
                 | _ -> ());
                 Thread.delay 0.05;
                 go ()
               end
             in
             go ())
           ())
  in
  let report = drive config pool (fresh_tally ()) in
  Mutex.protect fault_lock (fun () -> stop_faults := true);
  Option.iter Thread.join fault_thread;
  (* The pacer restarts within the same tick it kills, so the router
     should be answering; if its last restart failed, respawn once so a
     live incarnation fields the final stats and the shutdown. *)
  if not (wait_router_up ~socket:config.socket_path ~timeout_s:5.0) then begin
    match spawn_router_up ~timeout_s:10.0 ~tries:3 with
    | Some pid ->
      router_pid := pid;
      incr restarts
    | None -> ()
  end;
  let hedges_fired, hedge_wins, diverges, reattaches =
    match router_stats () with
    | Some s ->
      ( int_at s [ "router"; "hedges_fired" ],
        int_at s [ "router"; "hedge_wins" ],
        int_at s [ "router"; "diverges" ],
        int_at s [ "shard_pool"; "adopted" ] )
    | None -> (0, 0, 0, 0)
  in
  (* Graceful teardown through the protocol: the router acknowledges,
     then takes the fleet down (adopted shards included) and exits. *)
  let shutdown_req =
    Protocol.request_to_json
      { Protocol.id = Json.Str "soak-shutdown"; req = Protocol.Shutdown }
  in
  ignore (rpc_once ~socket:config.socket_path ~timeout_s:10.0 shutdown_req);
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] !router_pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill !router_pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] !router_pid) with Unix.Unix_error _ -> ()
      end
      else begin
        Thread.delay 0.05;
        reap ()
      end
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  reap ();
  (* Belt and braces against leaked shards: a clean pool shutdown
     removes the state file, so any survivor it still records must be
     killed here. *)
  (if Sys.file_exists state_file then
     match
       Json.of_string
         (String.trim
            (In_channel.with_open_bin state_file In_channel.input_all))
     with
     | Ok doc ->
       (match Json.member "shards" doc |> Fun.flip Option.bind Json.to_list with
       | Some shards ->
         List.iter
           (fun sh ->
             match Json.member "pid" sh |> Fun.flip Option.bind Json.to_int with
             | Some pid -> (
               try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
             | None -> ())
           shards
       | None -> ());
       (try Sys.remove state_file with Sys_error _ -> ())
     | Error _ | (exception Sys_error _) -> ());
  let recovery_ms =
    match !recovery_samples with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  {
    report with
    router_kills = !kills;
    router_restarts = !restarts;
    replays = !replays;
    shard_reattaches = reattaches;
    hedges_fired;
    hedge_wins;
    diverges;
    recovery_ms;
  }

let run config =
  match config.journal_dir with
  | Some dir when config.shards >= 2 -> run_journaled config dir
  | Some _ ->
    Diag.fail
      (Diag.v ~code:"DP-SRV-SHARD-DOWN" ~subsystem:"server"
         "a journaled soak needs a sharded topology (--shards >= 2)")
  | None -> if config.shards >= 2 then run_sharded config else run_single config
