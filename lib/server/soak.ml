module Diag = Dp_diag.Diag

type config = {
  socket_path : string;
  clients : int;
  requests_per_client : int;
  seed : int;
  workers : int;
  chaos : Chaos.config option;
  cache_dir : string option;
  crash_dir : string option;
  deadline_ms : float option;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    clients = 4;
    requests_per_client = 50;
    seed = 0;
    workers = 2;
    chaos = None;
    cache_dir = None;
    crash_dir = None;
    deadline_ms = None;
    log = ignore;
  }

type report = {
  requests : int;
  ok : int;
  typed_errors : int;
  wrong_answers : int;
  violations : int;
  error_codes : (string * int) list;
  elapsed_s : float;
  p50_ms : float;
  p99_ms : float;
  throughput_rps : float;
}

let passed r = r.violations = 0 && r.wrong_answers = 0

let report_json r =
  Json.Obj
    [
      ("schema", Json.Str "dpsyn-soak/1");
      ("requests", Json.Int r.requests);
      ("ok", Json.Int r.ok);
      ("typed_errors", Json.Int r.typed_errors);
      ("wrong_answers", Json.Int r.wrong_answers);
      ("violations", Json.Int r.violations);
      ( "error_codes",
        Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) r.error_codes) );
      ("elapsed_s", Json.Float r.elapsed_s);
      ("p50_ms", Json.Float r.p50_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("throughput_rps", Json.Float r.throughput_rps);
    ]

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>requests: %d (ok %d, typed errors %d)@,\
     wrong answers: %d@,violations: %d@,\
     latency: p50 %.1f ms, p99 %.1f ms@,\
     throughput: %.1f req/s over %.2f s@,errors by code:%s@]"
    r.requests r.ok r.typed_errors r.wrong_answers r.violations r.p50_ms
    r.p99_ms r.throughput_rps r.elapsed_s
    (if r.error_codes = [] then " (none)"
     else
       String.concat ""
         (List.map (fun (c, n) -> Printf.sprintf " %s=%d" c n) r.error_codes))

(* ------------------------------------------------------------------ *)
(* The request pool: small, cheap, structurally varied expressions with
   locally precomputed expected records. *)

let pool_specs =
  [
    ("x + y", [ ("x", 6); ("y", 6) ]);
    ("x*y + z", [ ("x", 4); ("y", 4); ("z", 8) ]);
    ("3*x + 5*y", [ ("x", 5); ("y", 5) ]);
    ("(x + y)*(x - y)", [ ("x", 4); ("y", 4) ]);
    ("x*x + 2*x + 1", [ ("x", 5) ]);
    ("x + y + z + 7", [ ("x", 4); ("y", 5); ("z", 6) ]);
    ("x*y - z", [ ("x", 4); ("y", 3); ("z", 6) ]);
    ("2*x + x*y", [ ("x", 4); ("y", 4) ]);
  ]

type pooled = {
  params : Protocol.synth_params;
  expected : string;  (** [Json.to_string] of the expected result record *)
}

let tech = Dp_tech.Tech.lcb_like

let build_pool () =
  List.map
    (fun (expr_text, vars) ->
      let vars =
        List.map (fun (n, w) -> Protocol.var_spec n ~width:w) vars
      in
      let params =
        match Protocol.synth_params ~vars expr_text with
        | Ok p -> p
        | Error d -> Diag.fail d
      in
      let expected =
        match Protocol.serve_request ~tech params with
        | Error d -> Diag.fail d
        | Ok r -> (
          match Dp_cache.Serve.run r with
          | Error d -> Diag.fail d
          | Ok o -> Json.to_string (Protocol.result_record params o))
      in
      { params; expected })
    pool_specs

(* ------------------------------------------------------------------ *)

type tally = {
  lock : Mutex.t;
  mutable ok : int;
  mutable typed_errors : int;
  mutable wrong_answers : int;
  mutable violations : int;
  codes : (string, int) Hashtbl.t;
  mutable latencies_ms : float list;
}

let count_code t code =
  Hashtbl.replace t.codes code
    (1 + Option.value (Hashtbl.find_opt t.codes code) ~default:0)

let classify tally ~sent_id ~expected response =
  Mutex.protect tally.lock @@ fun () ->
  let id_ok =
    match Json.member "id" response with
    | Some id -> id = sent_id
    | None -> false
  in
  if not id_ok then begin
    tally.violations <- tally.violations + 1;
    count_code tally "missing-or-wrong-id"
  end
  else
    match Json.member "ok" response |> Fun.flip Option.bind Json.to_bool with
    | Some true -> (
      match Json.member "result" response with
      | Some record when Json.to_string record = expected ->
        tally.ok <- tally.ok + 1
      | Some _ ->
        tally.wrong_answers <- tally.wrong_answers + 1;
        count_code tally "wrong-record"
      | None ->
        tally.violations <- tally.violations + 1;
        count_code tally "ok-without-result")
    | Some false -> (
      match
        Json.member "error" response
        |> Fun.flip Option.bind (Json.member "code")
        |> Fun.flip Option.bind Json.to_str
      with
      | Some code when String.length code >= 3 && String.sub code 0 3 = "DP-" ->
        tally.typed_errors <- tally.typed_errors + 1;
        count_code tally code
      | _ ->
        tally.violations <- tally.violations + 1;
        count_code tally "untyped-error")
    | _ ->
      tally.violations <- tally.violations + 1;
      count_code tally "malformed-envelope"

let client_thread config pool tally k =
  let n_pool = List.length pool in
  let rng = Random.State.make [| config.seed; k; 0x50ac |] in
  for i = 0 to config.requests_per_client - 1 do
    let pooled = List.nth pool (Random.State.int rng n_pool) in
    let deadline_ms =
      match config.deadline_ms with
      | Some d when i mod 5 = 3 -> Some d
      | _ -> None
    in
    let params = { pooled.params with Protocol.deadline_ms } in
    let sent_id = Json.Str (Printf.sprintf "c%d-r%d" k i) in
    let request =
      Protocol.request_to_json
        { Protocol.id = sent_id; req = Protocol.Synth params }
    in
    let retry =
      {
        Client.default_retry with
        Client.attempts = 4;
        per_attempt_timeout_s = 20.0;
        seed = (config.seed * 8191) + (k * 131) + i;
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Client.call ~retry ~socket:config.socket_path request in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    (match r with
    | Ok response ->
      classify tally ~sent_id ~expected:pooled.expected response
    | Error (d : Diag.t) ->
      (* Transport failure that survived the retry loop: still a typed
         outcome, not a violation — unless the code is untyped. *)
      Mutex.protect tally.lock (fun () ->
          if String.length d.code >= 3 && String.sub d.code 0 3 = "DP-" then begin
            tally.typed_errors <- tally.typed_errors + 1;
            count_code tally d.code
          end
          else begin
            tally.violations <- tally.violations + 1;
            count_code tally "untyped-error"
          end));
    Mutex.protect tally.lock (fun () ->
        tally.latencies_ms <- ms :: tally.latencies_ms)
  done

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let run config =
  let pool = build_pool () in
  let store =
    Some (Dp_cache.Store.create ~capacity:64 ?dir:config.cache_dir ())
  in
  let server_config =
    {
      (Server.default_config ~socket_path:config.socket_path) with
      Server.store;
      workers = config.workers;
      chaos = config.chaos;
      crash_dir = config.crash_dir;
      guard_responses = true;
      log = config.log;
    }
  in
  let server = Server.start server_config in
  let tally =
    {
      lock = Mutex.create ();
      ok = 0;
      typed_errors = 0;
      wrong_answers = 0;
      violations = 0;
      codes = Hashtbl.create 16;
      latencies_ms = [];
    }
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init config.clients (fun k ->
        Thread.create (fun () -> client_thread config pool tally k) ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (* Graceful shutdown; [wait] returning means no leaked server threads. *)
  Server.request_shutdown server;
  Server.wait server;
  let sorted = Array.of_list tally.latencies_ms in
  Array.sort compare sorted;
  let requests = config.clients * config.requests_per_client in
  {
    requests;
    ok = tally.ok;
    typed_errors = tally.typed_errors;
    wrong_answers = tally.wrong_answers;
    violations = tally.violations;
    error_codes =
      List.sort compare
        (Hashtbl.fold (fun c n acc -> (c, n) :: acc) tally.codes []);
    elapsed_s;
    p50_ms = percentile sorted 50.0;
    p99_ms = percentile sorted 99.0;
    throughput_rps =
      (if elapsed_s > 0.0 then float_of_int requests /. elapsed_s else 0.0);
  }
