module Diag = Dp_diag.Diag

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes received but not yet returned *)
  mutable scanned : int;  (** prefix of [buf] known to hold no '\n' *)
  chunk : Bytes.t;  (** per-reader, so concurrent connections don't race *)
}

type read_result = Line of string | Eof | Truncated of string

let create fd = { fd; buf = Buffer.create 512; scanned = 0; chunk = Bytes.create 4096 }

(* Extract the first complete line from the buffer, if any. *)
let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_from_opt s t.scanned '\n' with
  | None ->
    t.scanned <- String.length s;
    None
  | Some i ->
    let line = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    t.scanned <- 0;
    Some line

let drain_buffered t =
  let s = Buffer.contents t.buf in
  Buffer.clear t.buf;
  t.scanned <- 0;
  s

let read_line ?deadline t =
  let rec go () =
    match take_line t with
    | Some line -> Line line
    | None -> (
      (* Wait for readability so a deadline interrupts a stalled peer. *)
      let timed_out =
        match deadline with
        | None -> false
        | Some d -> (
          let remaining = d -. Unix.gettimeofday () in
          remaining <= 0.0
          ||
          match Unix.select [ t.fd ] [] [] remaining with
          | [], _, _ -> true
          | _ -> false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false)
      in
      if timed_out then Truncated (drain_buffered t)
      else
        match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 ->
          if Buffer.length t.buf = 0 then Eof
          else Truncated (drain_buffered t)
        | n ->
          Buffer.add_subbytes t.buf t.chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          if Buffer.length t.buf = 0 then Eof
          else Truncated (drain_buffered t))
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Writing *)

(* One whole line onto the descriptor, handling partial writes and a
   peer that died mid-response.  With SIGPIPE ignored process-wide (the
   server and router both do this at start), a write to a closed socket
   surfaces as EPIPE/ECONNRESET here and becomes a typed transport
   diagnostic — never a killed process, never an exception escaping the
   connection handler. *)
let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let peer_gone e =
    Error
      (Diag.v ~code:"DP-PROTO004" ~subsystem:"proto"
         ~context:[ ("errno", Unix.error_message e) ]
         "peer closed the connection while the response was being written")
  in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ESHUTDOWN) as e, _, _)
        ->
        peer_gone e
      | exception Unix.Unix_error (e, _, _) -> peer_gone e
  in
  go 0
