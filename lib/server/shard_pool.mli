(** OS-level supervision for a fleet of shard server processes.

    Each shard is a full server process listening on its own Unix
    socket; all shards share the content-addressed disk store (safe
    since {!Dp_cache.Store} stages writes through unique temp files
    behind an advisory per-digest lock).  The pool spawns the fleet and
    keeps it alive:

    - a {e monitor} thread polls [waitpid WNOHANG] and notices any shard
      that exits or is killed ([DP-SRV-SHARD-DOWN] in the log), then
      restarts it with exponential backoff under a per-shard
      {!Supervisor} restart-intensity breaker ([DP-SRV-SHARD-RESTART]) —
      a shard that keeps dying stops being restarted until the breaker's
      cooldown passes;
    - a {e health} thread sends each live shard a [ping] on a period; a
      shard that fails [health_failures] consecutive probes — the
      signature of a {e hung} process, which waitpid alone can never
      catch — is SIGKILLed and takes the same death→backoff→restart
      path.

    The pool does no routing: {!Router} sits in front and consults
    {!is_up}/{!socket_of} to fail requests over while a shard is down. *)

(** How a shard comes up.  [Spawn_fork f] runs [f] in the forked child
    (the pool [_exit]s behind it, so parent [at_exit] state never runs
    twice) — convenient for tests and the in-process soak.  [Spawn_exec
    f] turns the child into a fresh image via [execv] on the argv [f]
    returns — the robust choice for the CLI, immune to threads and locks
    inherited across [fork]. *)
type spawn =
  | Spawn_fork of (id:int -> socket_path:string -> unit)
  | Spawn_exec of (id:int -> socket_path:string -> string array)

type config = {
  shards : int;
  socket_for : int -> string;  (** shard id → its socket path *)
  spawn : spawn;
  health_period_s : float;  (** delay between health sweeps *)
  health_timeout_s : float;  (** per-ping response deadline *)
  health_failures : int;  (** consecutive failures before SIGKILL *)
  startup_grace_s : float;
      (** failed pings don't count against a shard younger than this —
          it may still be binding its socket *)
  stable_s : float;
      (** uptime after which an incarnation counts as a supervisor
          success (resets consecutive-crash backoff, closes a half-open
          breaker) *)
  poll_period_s : float;  (** waitpid poll period *)
  grace_s : float;  (** shutdown: SIGTERM → this long → SIGKILL *)
  supervisor : Supervisor.policy;
  log : string -> unit;
  state_file : string option;
      (** persist which pid serves which shard socket (written
          atomically on every spawn, adoption and death).  A pool
          started with the same path after its owner crashed {e
          reattaches} to recorded pids that are still alive and answer a
          ping, instead of respawning the fleet — a router crash no
          longer takes the shards down.  Removed on clean {!shutdown}.
          Adopted processes are not the pool's children: exits are
          detected by existence probes ([kill 0]) rather than waitpid,
          and hangs by the health ping as usual. *)
}

(** 250 ms health period / 1 s ping timeout / 3 strikes, 5 s startup
    grace, 2 s stability, 30 ms waitpid poll, 5 s shutdown grace,
    {!Supervisor.default_policy}, silent log, no state file. *)
val default_config :
  socket_for:(int -> string) -> spawn:spawn -> shards:int -> config

type t

(** Spawn every shard and start the monitor and health threads.
    Ignores SIGPIPE process-wide (shards may die mid-write).
    @raise Invalid_argument on [shards < 1]. *)
val start : config -> t

val shard_count : t -> int

(** The shard's socket path (fixed across restarts). *)
val socket_of : t -> int -> string

(** Is the shard's current incarnation believed live?  [false] while it
    is in restart backoff or stopped.  Advisory: a shard can die between
    this answer and a connect — callers treat connect failure as "down"
    and fail over. *)
val is_up : t -> int -> bool

val pid_of : t -> int -> int option

(** ["up"], ["backoff"] or ["stopped"]. *)
val phase_of : t -> int -> string

(** Block until every shard answers a ping, or the timeout (default
    10 s) passes; [true] on success. *)
val wait_all_up : ?timeout_s:float -> t -> bool

(** Chaos/test hook: deliver [signal] to the shard's current
    incarnation ([false] if it has no live process).  SIGSTOP simulates
    a hang only the health check can catch. *)
val signal_shard : t -> int -> int -> bool

(** Chaos/test hook: SIGKILL the shard's current incarnation. *)
val kill : t -> int -> unit

(** (total restarts-after-death, total health-check SIGKILLs). *)
val counters : t -> int * int

(** Shards reattached to a live process at {!start} (via [state_file])
    instead of being spawned. *)
val adoptions : t -> int

(** Pool summary plus per-shard detail (state, pid, restarts,
    health_kills, breaker counters) — embedded in the router's
    aggregated stats. *)
val stats_json : t -> Json.t

(** Stop supervising, then terminate the fleet: SIGCONT+SIGTERM, a
    bounded drain, SIGKILL for stragglers, and a full reap.  Socket
    files are removed.  Idempotent. *)
val shutdown : t -> unit
