(* Line-delimited JSON protocol shared by [dpsyn serve], [dpsyn client],
   [dpsyn batch] and the [--json] CLI surface.  One request per line, one
   response line per request; the response echoes the request [id]
   verbatim so a pipelined client can match them up.  Malformed input
   never kills the connection — it comes back as a DP-PROTO* diagnostic
   in an error envelope. *)

open Dp_expr
module Diag = Dp_diag.Diag

let proto_error ?(code = "DP-PROTO002") ?(context = []) fmt =
  Fmt.kstr
    (fun msg -> Error (Diag.v ~code ~subsystem:"proto" ~context msg))
    fmt

(* ------------------------------------------------------------------ *)
(* Requests *)

type var_spec = {
  vname : string;
  vwidth : int;
  vsigned : bool;
  varrival : float array;  (* length [vwidth] *)
  vprob : float array;  (* length [vwidth] *)
}

type synth_params = {
  expr_text : string;
  expr : Ast.t;
  vars : var_spec list;
  width : int option;
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  lower_config : Dp_bitmatrix.Lower.config;
  check_level : Dp_verify.Lint.check_level;
  emit_verilog : bool;
  deadline_ms : float option;
}

type request =
  | Synth of synth_params
  | Batch of synth_params list
  | Stats
  | Ping
  | Shutdown

type envelope = { id : Json.t; req : request }

let var_spec ?arrival ?prob ?(signed = false) name ~width =
  {
    vname = name;
    vwidth = width;
    vsigned = signed;
    varrival = (match arrival with Some a -> a | None -> Array.make (max width 0) 0.0);
    vprob = (match prob with Some p -> p | None -> Array.make (max width 0) 0.5);
  }

let synth_params ?(vars = []) ?(width = None)
    ?(strategy = Dp_flow.Strategy.Fa_aot) ?(adder = Dp_adders.Adder.Cla)
    ?(lower_config = Dp_bitmatrix.Lower.default_config)
    ?(check_level = Dp_verify.Lint.Off) ?(emit_verilog = false)
    ?(deadline_ms = None) expr_text =
  match Parse.expr expr_text with
  | exception Parse.Error msg ->
    proto_error ~context:[ ("expr", expr_text) ] "%s" msg
  | expr ->
    Ok
      {
        expr_text;
        expr;
        vars;
        width;
        strategy;
        adder;
        lower_config;
        check_level;
        emit_verilog;
        deadline_ms;
      }

let env_of_params p =
  List.fold_left
    (fun acc v ->
      match acc with
      | Error _ as e -> e
      | Ok env -> (
        match
          Env.add_res ~arrival:v.varrival ~prob:v.vprob ~signed:v.vsigned
            v.vname ~width:v.vwidth env
        with
        | Ok _ as ok -> ok
        | Error _ as e -> e
        | exception Invalid_argument msg ->
          proto_error ~context:[ ("var", v.vname) ] "%s" msg))
    (Ok Env.empty) p.vars

let serve_request ~tech p =
  match env_of_params p with
  | Error _ as e -> e
  | Ok env ->
    Ok
      (Dp_cache.Serve.request ~width:p.width ~strategy:p.strategy
         ~adder:p.adder ~lower_config:p.lower_config
         ~check_level:p.check_level ~tech env p.expr)

(* The content address of a request, computed the same way the shard
   will compute it ([Key.make] over the canonical expression and the
   resolved width).  This is what the router shards on — router and
   shard must agree byte-for-byte on the digest or routing would be
   arbitrary.  [None] when the parameters cannot produce a key (env
   construction or coverage fails); such requests still go to a shard,
   which produces the typed error the client expects. *)
let digest_of_params ~tech p =
  match env_of_params p with
  | Error _ -> None
  | Ok env -> (
    match Dp_expr.Env.check_covers_res p.expr env with
    | Error _ -> None
    | Ok () -> (
      match
        Dp_cache.Key.make ~tech ~adder:p.adder ~lower_config:p.lower_config
          ~check_level:p.check_level ?width:p.width p.strategy env p.expr
      with
      | key -> Some (Dp_cache.Key.digest key)
      | exception _ -> None))

(* ------------------------------------------------------------------ *)
(* JSON → request *)

let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e

let field_err field fmt =
  Fmt.kstr
    (fun msg ->
      Error
        (Diag.v ~code:"DP-PROTO002" ~subsystem:"proto"
           ~context:[ ("field", field) ] msg))
    fmt

let opt_field v name conv ~default ~expected =
  match Json.member name v with
  | None | Some Json.Null -> Ok default
  | Some j -> (
    match conv j with
    | Some x -> Ok x
    | None -> field_err name "expected %s" expected)

let named_field v name of_name ~default ~what =
  match Json.member name v with
  | None | Some Json.Null -> Ok default
  | Some j -> (
    match Json.to_str j with
    | None -> field_err name "expected a %s name (string)" what
    | Some s -> (
      match of_name s with
      | Some x -> Ok x
      | None -> field_err name "unknown %s %S" what s))

let recoding_of_name = function
  | "csd" -> Some Dp_bitmatrix.Lower.Csd
  | "binary" -> Some Dp_bitmatrix.Lower.Binary
  | _ -> None

let recoding_name = function
  | Dp_bitmatrix.Lower.Csd -> "csd"
  | Dp_bitmatrix.Lower.Binary -> "binary"

let multiplier_of_name = function
  | "and-array" -> Some Dp_bitmatrix.Lower.And_array
  | "booth" -> Some Dp_bitmatrix.Lower.Booth
  | _ -> None

let multiplier_name = function
  | Dp_bitmatrix.Lower.And_array -> "and-array"
  | Dp_bitmatrix.Lower.Booth -> "booth"

(* A per-bit attribute is either one number (uniform) or an array of
   [width] numbers. *)
let bit_attr v name ~width ~default =
  match Json.member name v with
  | None | Some Json.Null -> Ok (Array.make width default)
  | Some j -> (
    match Json.to_float j with
    | Some f -> Ok (Array.make width f)
    | None -> (
      match Json.to_list j with
      | None -> field_err name "expected a number or an array of numbers"
      | Some xs -> (
        match List.map Json.to_float xs with
        | floats when List.for_all Option.is_some floats ->
          let arr = Array.of_list (List.map Option.get floats) in
          if Array.length arr = width then Ok arr
          else
            field_err name "expected %d entries (one per bit), got %d" width
              (Array.length arr)
        | _ -> field_err name "expected a number or an array of numbers")))

let var_of_json j =
  match j with
  | Json.Obj _ -> (
    match Json.member "name" j |> Fun.flip Option.bind Json.to_str with
    | None -> field_err "vars" "each var needs a string \"name\""
    | Some name -> (
      match Json.member "width" j |> Fun.flip Option.bind Json.to_int with
      | None -> field_err "vars" "var %S needs an integer \"width\"" name
      | Some width when width < 1 ->
        field_err "vars" "var %S: width must be >= 1 (got %d)" name width
      | Some width ->
        let* signed =
          opt_field j "signed" Json.to_bool ~default:false ~expected:"a boolean"
        in
        let* arrival = bit_attr j "arrival" ~width ~default:0.0 in
        let* prob = bit_attr j "prob" ~width ~default:0.5 in
        Ok
          {
            vname = name;
            vwidth = width;
            vsigned = signed;
            varrival = arrival;
            vprob = prob;
          }))
  | _ -> field_err "vars" "each var must be an object"

let rec collect f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = collect f xs in
    Ok (y :: ys)

let params_of_json j =
  match Json.member "expr" j |> Fun.flip Option.bind Json.to_str with
  | None -> field_err "expr" "expected an expression string"
  | Some expr_text ->
    let* vars =
      match Json.member "vars" j with
      | None | Some Json.Null -> Ok []
      | Some (Json.List xs) -> collect var_of_json xs
      | Some _ -> field_err "vars" "expected an array of var objects"
    in
    let* width =
      opt_field j "width"
        (fun v -> Option.map Option.some (Json.to_int v))
        ~default:None ~expected:"an integer"
    in
    let* strategy =
      named_field j "strategy" Dp_flow.Strategy.of_name
        ~default:Dp_flow.Strategy.Fa_aot ~what:"strategy"
    in
    let* adder =
      named_field j "adder" Dp_adders.Adder.of_name
        ~default:Dp_adders.Adder.Cla ~what:"adder"
    in
    let* recoding =
      named_field j "recoding" recoding_of_name
        ~default:Dp_bitmatrix.Lower.default_config.recoding ~what:"recoding"
    in
    let* multiplier_style =
      named_field j "multiplier" multiplier_of_name
        ~default:Dp_bitmatrix.Lower.default_config.multiplier_style
        ~what:"multiplier style"
    in
    let* check_level =
      named_field j "check_level" Dp_verify.Lint.check_level_of_name
        ~default:Dp_verify.Lint.Off ~what:"check level"
    in
    let* emit_verilog =
      opt_field j "emit_verilog" Json.to_bool ~default:false
        ~expected:"a boolean"
    in
    let* deadline_ms =
      opt_field j "deadline_ms"
        (fun v -> Option.map Option.some (Json.to_float v))
        ~default:None ~expected:"a number of milliseconds"
    in
    let* deadline_ms =
      match deadline_ms with
      | Some d when d <= 0.0 ->
        field_err "deadline_ms" "expected a positive number of milliseconds"
      | d -> Ok d
    in
    synth_params ~vars ~width ~strategy ~adder
      ~lower_config:{ Dp_bitmatrix.Lower.recoding; multiplier_style }
      ~check_level ~emit_verilog ~deadline_ms expr_text

let request_of_json j =
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  let req =
    match Json.member "op" j |> Fun.flip Option.bind Json.to_str with
    | None ->
      field_err "op"
        "expected \"synth\", \"batch\", \"stats\", \"ping\" or \"shutdown\""
    | Some "synth" ->
      let* p = params_of_json j in
      Ok (Synth p)
    | Some "batch" -> (
      match Json.member "requests" j with
      | Some (Json.List xs) ->
        let* ps = collect params_of_json xs in
        Ok (Batch ps)
      | _ -> field_err "requests" "expected an array of synth request objects")
    | Some "stats" -> Ok Stats
    | Some "ping" -> Ok Ping
    | Some "shutdown" -> Ok Shutdown
    | Some op -> field_err "op" "unknown op %S" op
  in
  match req with Ok req -> Ok { id; req } | Error _ as e -> e

let request_of_line line =
  match Json.of_string line with
  | Error msg ->
    Error
      (Diag.v ~code:"DP-PROTO001" ~subsystem:"proto"
         ~context:[ ("detail", msg) ] "malformed request: not valid JSON")
  | Ok j -> request_of_json j

(* Best-effort id recovery for error envelopes: a request that fails
   field validation still gets its id echoed back whenever the line
   parsed as JSON at all. *)
let id_of_line line =
  match Json.of_string line with
  | Error _ -> Json.Null
  | Ok j -> Option.value (Json.member "id" j) ~default:Json.Null

(* ------------------------------------------------------------------ *)
(* Request → JSON (the client side) *)

let uniform arr ~default =
  if Array.for_all (fun x -> x = default) arr then None
  else if Array.length arr > 0 && Array.for_all (fun x -> x = arr.(0)) arr then
    Some (Json.Float arr.(0))
  else Some (Json.List (Array.to_list arr |> List.map (fun f -> Json.Float f)))

let var_to_json v =
  let fields =
    [ ("name", Json.Str v.vname); ("width", Json.Int v.vwidth) ]
    @ (if v.vsigned then [ ("signed", Json.Bool true) ] else [])
    @ (match uniform v.varrival ~default:0.0 with
      | Some j -> [ ("arrival", j) ]
      | None -> [])
    @
    match uniform v.vprob ~default:0.5 with
    | Some j -> [ ("prob", j) ]
    | None -> []
  in
  Json.Obj fields

let params_fields p =
  [
    ("expr", Json.Str p.expr_text);
    ("vars", Json.List (List.map var_to_json p.vars));
  ]
  @ (match p.width with Some w -> [ ("width", Json.Int w) ] | None -> [])
  @ [
      ("strategy", Json.Str (Dp_flow.Strategy.name p.strategy));
      ("adder", Json.Str (Dp_adders.Adder.name p.adder));
      ("recoding", Json.Str (recoding_name p.lower_config.recoding));
      ("multiplier", Json.Str (multiplier_name p.lower_config.multiplier_style));
      ("check_level", Json.Str (Dp_verify.Lint.check_level_name p.check_level));
    ]
  @ (if p.emit_verilog then [ ("emit_verilog", Json.Bool true) ] else [])
  @
  match p.deadline_ms with
  | Some d -> [ ("deadline_ms", Json.Float d) ]
  | None -> []

let params_to_json p = Json.Obj (params_fields p)

let request_to_json { id; req } =
  let id_field = match id with Json.Null -> [] | id -> [ ("id", id) ] in
  match req with
  | Synth p -> Json.Obj (id_field @ (("op", Json.Str "synth") :: params_fields p))
  | Batch ps ->
    Json.Obj
      (id_field
      @ [
          ("op", Json.Str "batch");
          ("requests", Json.List (List.map (fun p -> Json.Obj (params_fields p)) ps));
        ])
  | Stats -> Json.Obj (id_field @ [ ("op", Json.Str "stats") ])
  | Ping -> Json.Obj (id_field @ [ ("op", Json.Str "ping") ])
  | Shutdown -> Json.Obj (id_field @ [ ("op", Json.Str "shutdown") ])

(* ------------------------------------------------------------------ *)
(* Results and diagnostics → JSON *)

let diag_to_json (d : Diag.t) =
  Json.Obj
    [
      ("code", Json.Str d.code);
      ("subsystem", Json.Str d.subsystem);
      ("severity", Json.Str (Diag.severity_name d.severity));
      ("message", Json.Str d.message);
      ( "context",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) d.context) );
    ]

let result_schema = "dpsyn-result/1"

let result_record (p : synth_params) (o : Dp_cache.Serve.outcome) =
  let r = o.result in
  let s = r.stats in
  Json.Obj
    ([
       ("schema", Json.Str result_schema);
       ("expr", Json.Str p.expr_text);
       ("strategy", Json.Str (Dp_flow.Strategy.name r.strategy));
       ("adder", Json.Str (Dp_adders.Adder.name p.adder));
       ("output", Json.Str r.output);
       ("width", Json.Int o.width);
       ("digest", Json.Str o.digest);
       ( "stats",
         Json.Obj
           [
             ("nets", Json.Int s.nets);
             ("cells", Json.Int s.cells);
             ("fa", Json.Int s.fa_count);
             ("ha", Json.Int s.ha_count);
             ("counters", Json.Int s.counter_count);
             ("gates", Json.Int s.gate_count);
             ("area", Json.Float s.area);
             ("depth", Json.Int s.depth);
             ("delay", Json.Float s.delay);
           ] );
       ("tree_switching", Json.Float r.tree_switching);
       ("total_switching", Json.Float r.total_switching);
       ( "reduced_max_arrival",
         match r.reduced_max_arrival with
         | Some t -> Json.Float t
         | None -> Json.Null );
       ("verilog_bytes", Json.Int (String.length o.verilog));
       ("verilog_md5", Json.Str (Digest.to_hex (Digest.string o.verilog)));
     ]
    @ if p.emit_verilog then [ ("verilog", Json.Str o.verilog) ] else [])

(* ------------------------------------------------------------------ *)
(* Response envelopes *)

let ok_response ~id fields = Json.Obj (("id", id) :: ("ok", Json.Bool true) :: fields)

let error_response ~id d =
  Json.Obj [ ("id", id); ("ok", Json.Bool false); ("error", diag_to_json d) ]

let synth_response ~id p (o : Dp_cache.Serve.outcome) =
  ok_response ~id
    [ ("cached", Json.Bool o.cached); ("result", result_record p o) ]

(* Each batch element is its own mini-envelope (no id — order answers). *)
let batch_element p = function
  | Ok (o : Dp_cache.Serve.outcome) ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("cached", Json.Bool o.cached);
        ("result", result_record p o);
      ]
  | Error d -> Json.Obj [ ("ok", Json.Bool false); ("error", diag_to_json d) ]

let batch_response ~id elements =
  ok_response ~id [ ("results", Json.List elements) ]
