(** Append-only write-ahead log of admitted synthesis requests.

    The journal is the router's durability layer: every admitted request
    is recorded before it is forwarded, advanced to [Dispatched] when a
    shard is chosen, and to [Completed] once any shard answer (including
    a typed error envelope) has been produced.  After a router crash the
    next incarnation replays the journal: [Completed] entries are served
    byte-identically from the digest-keyed store, incomplete ones are
    re-dispatched — safe because request digests make synthesis
    idempotent.

    On-disk format: one record per line,

    {v <32-hex MD5 of payload> <payload JSON>\n v}

    where the payload is
    [{"seq":N,"state":"admitted"|"dispatched"|"completed","digest":D,...}]
    ([params] rides on the admitted record, [shard] on dispatched ones).
    A crash mid-append leaves a torn tail — a final line with no
    newline, or with a checksum mismatch.  [open_] truncates the file at
    the first bad record and counts the lost bytes; everything before it
    is trusted, everything after is suspect and discarded.

    Compaction rewrites the file keeping only incomplete entries (their
    admitted record plus a dispatched marker), then renames it into
    place atomically.  All operations are thread-safe. *)

type state =
  | Admitted  (** recorded, not yet forwarded *)
  | Dispatched  (** forwarded to a shard; answer not yet produced *)
  | Completed  (** an answer (ok or typed error) was produced *)

type entry = {
  seq : int;
  digest : string;
  state : state;
  shard : int option;  (** home shard of the last dispatch, if any *)
  params : Json.t;  (** request params as recorded at admission *)
}

type stats = {
  appended : int;  (** records appended by this handle *)
  recovered : int;  (** entries read back when the handle was opened *)
  torn_bytes : int;  (** bytes truncated from a torn tail at open *)
  compactions : int;
}

type t

val state_name : state -> string

(** [open_ ~dir ()] opens (creating if needed) [dir/journal.log],
    scans it, truncates any torn tail, and loads surviving entries.
    [auto_compact_bytes] (default 1 MiB) compacts the log whenever an
    append pushes the file past that size.  [log] receives one-line
    notices (torn-tail truncation, compaction). *)
val open_ :
  ?auto_compact_bytes:int -> ?log:(string -> unit) -> dir:string -> unit -> t

val path : t -> string

(** Entries as recovered at [open_] time, in seq order — the replay
    work-list.  Unaffected by later appends. *)
val recovered : t -> entry list

(** Current in-memory view, in seq order.  Completed entries are
    dropped at the next compaction. *)
val entries : t -> entry list

(** Entries not yet [Completed], in seq order. *)
val incomplete : t -> entry list

(** Record an admitted request; returns its journal sequence number. *)
val admit : t -> digest:string -> params:Json.t -> int

(** Record that [seq] was forwarded with home shard [shard].  Unknown
    sequence numbers are ignored. *)
val dispatch : t -> seq:int -> shard:int -> unit

(** Record that [seq] produced an answer.  Idempotent; unknown sequence
    numbers are ignored. *)
val complete : t -> seq:int -> unit

(** Rewrite the log keeping only incomplete entries. *)
val compact : t -> unit

val stats : t -> stats
val close : t -> unit
