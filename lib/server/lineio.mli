(** Buffered line reading straight off a file descriptor.

    [input_line] on a channel cannot distinguish "the peer closed after a
    complete response" from "the peer died mid-line": at EOF it silently
    returns whatever partial line was buffered, which a JSON parser may
    then half-accept.  This reader makes the three outcomes explicit, so
    the protocol layer can map each to the right typed diagnostic:

    - [Line s] — a complete ['\n']-terminated line (terminator stripped);
      a line split across any number of [read] calls is reassembled.
    - [Eof] — clean end of stream on a line boundary.
    - [Truncated s] — the stream ended (or the read deadline passed)
      with [s] buffered but unterminated: a torn response. *)

type t

type read_result = Line of string | Eof | Truncated of string

val create : Unix.file_descr -> t

(** [read_line ?deadline t] blocks until a full line, EOF, or [deadline]
    (absolute, [Unix.gettimeofday] clock) — whichever comes first.  A
    passed deadline with nothing buffered returns [Truncated ""]. *)
val read_line : ?deadline:float -> t -> read_result

(** [write_line fd line] writes [line ^ "\n"] whole, retrying partial
    writes and [EINTR].  A peer that died mid-response (EPIPE,
    ECONNRESET, …) comes back as a [DP-PROTO004] diagnostic instead of
    an exception — callers must have SIGPIPE ignored process-wide
    (servers do this at start) so the kernel reports the broken pipe as
    an errno rather than a signal. *)
val write_line : Unix.file_descr -> string -> (unit, Dp_diag.Diag.t) result
