(** Input-signal environment: per variable, a bit-width plus per-bit arrival
    times (for timing-driven allocation) and per-bit 1-probabilities (for
    power-driven allocation).  Variables are unsigned bit vectors by
    default; a [signed] variable is interpreted in two's complement (its
    MSB carries weight −2^(w−1)), which the bit-level lowering turns into
    Baugh-Wooley-style signed partial products. *)

type var_info = {
  width : int;
  signed : bool;
  arrival : float array;  (** length [width], index = bit position *)
  prob : float array;  (** length [width], each within [0, 1] *)
}

type t

val empty : t

(** [add name ~width env] binds [name]; omitted arrivals default to 0.0 and
    omitted probabilities to 0.5.  @raise Invalid_argument on mismatched
    array lengths, non-positive width, or probabilities outside [0, 1]. *)
val add :
  ?arrival:float array -> ?prob:float array -> ?signed:bool ->
  string -> width:int -> t -> t

(** Like {!add} with the same arrival/probability on every bit. *)
val add_uniform :
  ?arrival:float -> ?prob:float -> ?signed:bool -> string -> width:int -> t -> t

(** @raise Invalid_argument if unbound. *)
val find : string -> t -> var_info

val find_opt : string -> t -> var_info option
val mem : string -> t -> bool
val width : string -> t -> int
val is_signed : string -> t -> bool
val arrival : string -> bit:int -> t -> float
val prob : string -> bit:int -> t -> float
val bindings : t -> (string * var_info) list
val names : t -> string list

(** Bind every listed name with default arrivals/probabilities. *)
val of_widths : (string * int) list -> t

(** @raise Invalid_argument if some variable of the expression is unbound. *)
val check_covers : Ast.t -> t -> unit

(** Like {!add}, but validation failures become typed diagnostics:
    [DP-ENV001] for a non-positive width, [DP-ENV002] for bad
    arrival/probability attributes. *)
val add_res :
  ?arrival:float array -> ?prob:float array -> ?signed:bool ->
  string -> width:int -> t -> (t, Dp_diag.Diag.t) result

(** Like {!check_covers}, but reports {e all} unbound variables in one
    [DP-ENV003] diagnostic (one [("unbound", var)] context entry each). *)
val check_covers_res : Ast.t -> t -> (unit, Dp_diag.Diag.t) result

val pp : t Fmt.t
