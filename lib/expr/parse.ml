exception Error of string

type token =
  | Tident of string
  | Tint of int
  | Tplus
  | Tminus
  | Tstar
  | Tcaret
  | Tlparen
  | Trparen
  | Tequal
  | Tsemi
  | Teof

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let rec scan i acc =
    if i >= n then List.rev (Teof :: acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1) acc
      | '+' -> scan (i + 1) (Tplus :: acc)
      | '-' -> scan (i + 1) (Tminus :: acc)
      | '*' -> scan (i + 1) (Tstar :: acc)
      | '^' -> scan (i + 1) (Tcaret :: acc)
      | '(' -> scan (i + 1) (Tlparen :: acc)
      | ')' -> scan (i + 1) (Trparen :: acc)
      | '=' -> scan (i + 1) (Tequal :: acc)
      | ';' -> scan (i + 1) (Tsemi :: acc)
      | c when is_digit c ->
        let j = ref i in
        while !j < n && is_digit s.[!j] do incr j done;
        let lit = String.sub s i (!j - i) in
        (match int_of_string_opt lit with
        | Some v -> scan !j (Tint v :: acc)
        | None -> fail "integer literal too large: %s" lit)
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do incr j done;
        scan !j (Tident (String.sub s i (!j - i)) :: acc)
      | c -> fail "unexpected character %C at offset %d" c i
  in
  scan 0 []

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> Teof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok what =
  if peek st = tok then advance st else fail "expected %s" what

(* Grammar (precedence ascending):
     expr   := term (('+' | '-') term)*
     term   := factor ('*' factor)*
     factor := '-' factor | power
     power  := atom ('^' nat)*
     atom   := ident | nat | '(' expr ')'              *)
let rec parse_expr st =
  let rec loop acc =
    match peek st with
    | Tplus ->
      advance st;
      loop (Ast.Add (acc, parse_term st))
    | Tminus ->
      advance st;
      loop (Ast.Sub (acc, parse_term st))
    | Tident _ | Tint _ | Tstar | Tcaret | Tlparen | Trparen | Tequal | Tsemi
    | Teof -> acc
  in
  loop (parse_term st)

and parse_term st =
  let rec loop acc =
    match peek st with
    | Tstar ->
      advance st;
      loop (Ast.Mul (acc, parse_factor st))
    | Tident _ | Tint _ | Tplus | Tminus | Tcaret | Tlparen | Trparen | Tequal
    | Tsemi | Teof ->
      acc
  in
  loop (parse_factor st)

and parse_factor st =
  match peek st with
  | Tminus ->
    advance st;
    Ast.Neg (parse_factor st)
  | Tident _ | Tint _ | Tplus | Tstar | Tcaret | Tlparen | Trparen | Tequal
  | Tsemi | Teof ->
    parse_power st

and parse_power st =
  let base = parse_atom st in
  let rec loop acc =
    match peek st with
    | Tcaret -> (
      advance st;
      match peek st with
      | Tint n ->
        advance st;
        loop (Ast.Pow (acc, n))
      | Tident _ | Tplus | Tminus | Tstar | Tcaret | Tlparen | Trparen
      | Tequal | Tsemi | Teof ->
        fail "expected integer exponent after '^'")
    | Tident _ | Tint _ | Tplus | Tminus | Tstar | Tlparen | Trparen | Tequal
    | Tsemi | Teof ->
      acc
  in
  loop base

and parse_atom st =
  match peek st with
  | Tident x ->
    advance st;
    Ast.Var x
  | Tint v ->
    advance st;
    Ast.Const v
  | Tlparen ->
    advance st;
    let e = parse_expr st in
    expect st Trparen "')'";
    e
  | Tplus | Tminus | Tstar | Tcaret | Trparen | Tequal | Tsemi | Teof ->
    fail "expected variable, integer or '('"

let expr s =
  let st = { tokens = tokenize s } in
  let e = parse_expr st in
  expect st Teof "end of input";
  e

let expr_opt s = match expr s with e -> Some e | exception Error _ -> None

let diag_of_error ~code ~input msg =
  Dp_diag.Diag.v ~code ~subsystem:"parse" ~context:[ ("input", input) ] msg

let expr_res s =
  match expr s with
  | e -> Ok e
  | exception Error msg -> Dp_diag.Diag.error (diag_of_error ~code:"DP-PARSE001" ~input:s msg)

(* A program is a ';'-separated sequence of [name = expr] statements.
   Earlier bindings are inlined into later expressions (there are no
   cycles: a name must be bound before use); the statements whose names no
   later statement references are the program's outputs. *)
let program s =
  let st = { tokens = tokenize s } in
  (* acc: (name, raw expression as written, expression with earlier
     bindings inlined) in reverse program order *)
  let rec stmts acc =
    match peek st with
    | Teof -> List.rev acc
    | Tident name -> (
      advance st;
      expect st Tequal "'='";
      if List.exists (fun (n, _, _) -> String.equal n name) acc then
        fail "duplicate binding %s" name;
      let raw = parse_expr st in
      let lookup v =
        List.find_map
          (fun (n, _, inlined) -> if String.equal n v then Some inlined else None)
          acc
      in
      let inlined = Ast.subst lookup raw in
      match peek st with
      | Tsemi ->
        advance st;
        stmts ((name, raw, inlined) :: acc)
      | Teof -> List.rev ((name, raw, inlined) :: acc)
      | Tident _ | Tint _ | Tplus | Tminus | Tstar | Tcaret | Tlparen
      | Trparen | Tequal ->
        fail "expected ';' between statements")
    | Tint _ | Tplus | Tminus | Tstar | Tcaret | Tlparen | Trparen | Tequal
    | Tsemi ->
      fail "expected a statement (name = expression)"
  in
  let bindings = stmts [] in
  if bindings = [] then fail "empty program";
  (* outputs: bindings no later statement references (checked against the
     raw expressions, before inlining erased the references) *)
  let rec outputs = function
    | [] -> []
    | (name, _, inlined) :: rest ->
      let referenced =
        List.exists (fun (_, raw, _) -> List.mem name (Ast.vars raw)) rest
      in
      if referenced then outputs rest else (name, inlined) :: outputs rest
  in
  outputs bindings

let program_res s =
  match program s with
  | ports -> Ok ports
  | exception Error msg ->
    Dp_diag.Diag.error (diag_of_error ~code:"DP-PARSE002" ~input:s msg)
