(** Text syntax for expressions: identifiers, decimal constants, [+ - *],
    exponent [^n], unary minus and parentheses, with the usual precedence
    ([^] > unary [-] > [*] > [+ -]). *)

exception Error of string

(** @raise Error on a syntax error. *)
val expr : string -> Ast.t

val expr_opt : string -> Ast.t option

(** Like {!expr}, but a syntax error becomes a typed [DP-PARSE001]
    diagnostic (the offending input is in the context) instead of an
    exception. *)
val expr_res : string -> (Ast.t, Dp_diag.Diag.t) result

(** Parse a ';'-separated program of [name = expr] statements.  Earlier
    bindings are inlined into later expressions; the statements whose names
    are never referenced later are returned as the outputs, in program
    order.  @raise Error on syntax errors, duplicate bindings or an empty
    program. *)
val program : string -> (string * Ast.t) list

(** Like {!program}, with failures as typed [DP-PARSE002] diagnostics. *)
val program_res : string -> ((string * Ast.t) list, Dp_diag.Diag.t) result
