module String_map = Map.Make (String)

type var_info = {
  width : int;
  signed : bool;
  arrival : float array;
  prob : float array;
}

type t = var_info String_map.t

let empty = String_map.empty

let add ?arrival ?prob ?(signed = false) name ~width env =
  if width < 1 then invalid_arg "Env.add: width must be >= 1";
  let arrival =
    match arrival with
    | None -> Array.make width 0.0
    | Some a ->
      if Array.length a <> width then invalid_arg "Env.add: arrival length";
      Array.copy a
  in
  let prob =
    match prob with
    | None -> Array.make width 0.5
    | Some p ->
      if Array.length p <> width then invalid_arg "Env.add: prob length";
      Array.iter
        (fun x ->
          if x < 0.0 || x > 1.0 then invalid_arg "Env.add: prob out of [0,1]")
        p;
      Array.copy p
  in
  String_map.add name { width; signed; arrival; prob } env

let add_uniform ?(arrival = 0.0) ?(prob = 0.5) ?signed name ~width env =
  add name ~width ?signed
    ~arrival:(Array.make width arrival)
    ~prob:(Array.make width prob)
    env

let find name env =
  match String_map.find_opt name env with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Env.find: unbound variable %s" name)

let find_opt name env = String_map.find_opt name env
let mem name env = String_map.mem name env
let width name env = (find name env).width
let is_signed name env = (find name env).signed
let arrival name ~bit env = (find name env).arrival.(bit)
let prob name ~bit env = (find name env).prob.(bit)
let bindings env = String_map.bindings env
let names env = List.map fst (String_map.bindings env)

let of_widths widths =
  List.fold_left (fun env (n, w) -> add_uniform n ~width:w env) empty widths

let check_covers expr env =
  List.iter
    (fun v ->
      if not (mem v env) then
        invalid_arg (Printf.sprintf "Env.check_covers: %s has no binding" v))
    (Ast.vars expr)

let add_res ?arrival ?prob ?signed name ~width env =
  match add ?arrival ?prob ?signed name ~width env with
  | env -> Ok env
  | exception Invalid_argument msg ->
    Dp_diag.Diag.error
      (Dp_diag.Diag.v
         ~code:(if width < 1 then "DP-ENV001" else "DP-ENV002")
         ~subsystem:"env"
         ~context:[ ("variable", name); ("width", string_of_int width) ]
         msg)

let check_covers_res expr env =
  match List.filter (fun v -> not (mem v env)) (Ast.vars expr) with
  | [] -> Ok ()
  | missing ->
    Dp_diag.Diag.error
      (Dp_diag.Diag.errorf ~code:"DP-ENV003" ~subsystem:"env"
         ~context:(List.map (fun v -> ("unbound", v)) missing)
         "%d variable(s) of the expression have no binding: %s"
         (List.length missing)
         (String.concat ", " missing))

let pp ppf env =
  let pp_binding ppf (name, info) =
    Fmt.pf ppf "%s:%s%d" name (if info.signed then "s" else "") info.width
  in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_binding) (bindings env)
