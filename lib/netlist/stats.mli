(** Summary statistics of a netlist: the delay/area columns of the paper's
    Table 1 are computed from these. *)

type t = {
  nets : int;
  cells : int;
  fa_count : int;
  ha_count : int;
  counter_count : int;  (** C42/C53/C63/C73 parallel-counter cells *)
  gate_count : int;  (** cells other than FA/HA and counters *)
  area : float;
  depth : int;  (** logic levels *)
  delay : float;  (** latest output arrival (ns) *)
}

val kind_counts : Netlist.t -> (Dp_tech.Cell_kind.t * int) list
val of_netlist : Netlist.t -> t
val pp : t Fmt.t

(** Printable name of a net: [var\[bit\]], [0]/[1], or [n<id>]. *)
val net_name : Netlist.t -> Netlist.net -> string

(** One line per cell with output arrival times — used to render the
    paper's figure examples. *)
val pp_cells : Netlist.t Fmt.t
