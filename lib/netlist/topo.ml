let check netlist =
  (* Builder invariant: cells only consume already-existing nets, so every
     input net id is smaller than every output net id of the same cell. *)
  let ok = ref true in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets netlist id in
      let min_out = Array.fold_left min max_int outs in
      Array.iter (fun input -> if input >= min_out then ok := false) c.inputs)
    netlist;
  !ok

let levels netlist =
  let n = Netlist.net_count netlist in
  let level = Array.make n 0 in
  (* Nets are created in topological order, so one forward pass suffices. *)
  for net = 0 to n - 1 do
    match Netlist.driver netlist net with
    | Netlist.From_input _ | Netlist.From_const _ -> level.(net) <- 0
    | Netlist.From_cell { cell; port = _ } ->
      let c = Netlist.cell netlist cell in
      let max_in =
        Array.fold_left (fun acc input -> max acc level.(input)) 0 c.inputs
      in
      level.(net) <- max_in + 1
  done;
  level

let depth netlist =
  let level = levels netlist in
  List.fold_left
    (fun acc (_, nets) ->
      Array.fold_left (fun acc net -> max acc level.(net)) acc nets)
    0
    (Netlist.outputs netlist)

let critical_path netlist ~from =
  (* Walk back from [from] through, at each cell, the input pin whose
     arrival-plus-pin-delay dominates the port's arrival; pins with no
     combinational path to the port (a 4:2 compressor's carry-out does
     not see its cin) are never chosen.  Report nets root-first. *)
  let tech = Netlist.tech netlist in
  let rec walk net acc =
    let acc = net :: acc in
    match Netlist.driver netlist net with
    | Netlist.From_input _ | Netlist.From_const _ -> acc
    | Netlist.From_cell { cell; port } ->
      let c = Netlist.cell netlist cell in
      let worst = ref None and worst_at = ref neg_infinity in
      Array.iteri
        (fun pin input ->
          match Dp_tech.Tech.pin_delay tech c.kind ~pin ~port with
          | Some d ->
            let at = Netlist.arrival netlist input +. d in
            if !worst = None || at > !worst_at then begin
              worst := Some input;
              worst_at := at
            end
          | None -> ())
        c.inputs;
      (match !worst with None -> acc | Some input -> walk input acc)
  in
  walk from []
