let fa_module =
  "module DP_FA (a, b, c, s, co);\n\
  \  input a, b, c;\n\
  \  output s, co;\n\
  \  assign {co, s} = a + b + c;\n\
   endmodule\n"

let ha_module =
  "module DP_HA (a, b, s, co);\n\
  \  input a, b;\n\
  \  output s, co;\n\
  \  assign {co, s} = a + b;\n\
   endmodule\n"

(* m:3 counters emit the binary digits of the input population count;
   the 4:2 compressor is written out gate-for-gate so its carry-out is
   visibly independent of ci. *)
let c53_module =
  "module DP_C53 (x0, x1, x2, x3, x4, s0, s1, s2);\n\
  \  input x0, x1, x2, x3, x4;\n\
  \  output s0, s1, s2;\n\
  \  assign {s2, s1, s0} = x0 + x1 + x2 + x3 + x4;\n\
   endmodule\n"

let c63_module =
  "module DP_C63 (x0, x1, x2, x3, x4, x5, s0, s1, s2);\n\
  \  input x0, x1, x2, x3, x4, x5;\n\
  \  output s0, s1, s2;\n\
  \  assign {s2, s1, s0} = x0 + x1 + x2 + x3 + x4 + x5;\n\
   endmodule\n"

let c73_module =
  "module DP_C73 (x0, x1, x2, x3, x4, x5, x6, s0, s1, s2);\n\
  \  input x0, x1, x2, x3, x4, x5, x6;\n\
  \  output s0, s1, s2;\n\
  \  assign {s2, s1, s0} = x0 + x1 + x2 + x3 + x4 + x5 + x6;\n\
   endmodule\n"

let c42_module =
  "module DP_C42 (x0, x1, x2, x3, ci, s, c, co);\n\
  \  input x0, x1, x2, x3, ci;\n\
  \  output s, c, co;\n\
  \  wire t;\n\
  \  assign co = (x0 & x1) | (x0 & x2) | (x1 & x2);\n\
  \  assign t = x0 ^ x1 ^ x2;\n\
  \  assign s = t ^ x3 ^ ci;\n\
  \  assign c = (t & x3) | (t & ci) | (x3 & ci);\n\
   endmodule\n"

let net_ref netlist net =
  match Netlist.driver netlist net with
  | Netlist.From_input { var; bit } -> Printf.sprintf "%s[%d]" var bit
  | Netlist.From_const b -> if b then "const1" else "const0"
  | Netlist.From_cell _ -> Printf.sprintf "n%d" net

let gate_primitive (kind : Dp_tech.Cell_kind.t) =
  match kind with
  | Dp_tech.Cell_kind.And_n _ -> "and"
  | Dp_tech.Cell_kind.Or_n _ -> "or"
  | Dp_tech.Cell_kind.Xor_n _ -> "xor"
  | Dp_tech.Cell_kind.Not -> "not"
  | Dp_tech.Cell_kind.Buf -> "buf"
  | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha | Dp_tech.Cell_kind.C42
  | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63 | Dp_tech.Cell_kind.C73 ->
    invalid_arg "Verilog.gate_primitive: FA/HA/counters are submodules"

let uses_const netlist b =
  let found = ref false in
  Netlist.iter_cells
    (fun _ (c : Netlist.cell) ->
      Array.iter
        (fun input -> if Netlist.is_const netlist input b then found := true)
        c.inputs)
    netlist;
  (* constants can also be wired straight to outputs *)
  List.iter
    (fun (_, nets) ->
      Array.iter
        (fun net -> if Netlist.is_const netlist net b then found := true)
        nets)
    (Netlist.outputs netlist);
  !found

let emit ?(module_name = "datapath") netlist =
  let buffer = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  let ins = Netlist.inputs netlist in
  let outs = Netlist.outputs netlist in
  let port_names = List.map fst ins @ List.map fst outs in
  line "module %s (%s);" module_name (String.concat ", " port_names);
  List.iter
    (fun (name, nets) -> line "  input [%d:0] %s;" (Array.length nets - 1) name)
    ins;
  List.iter
    (fun (name, nets) -> line "  output [%d:0] %s;" (Array.length nets - 1) name)
    outs;
  if uses_const netlist false then begin
    line "  wire const0;";
    line "  assign const0 = 1'b0;"
  end;
  if uses_const netlist true then begin
    line "  wire const1;";
    line "  assign const1 = 1'b1;"
  end;
  (* one wire declaration per cell-driven net *)
  Netlist.iter_cells
    (fun id _ ->
      Array.iter
        (fun net -> line "  wire n%d;" net)
        (Netlist.cell_output_nets netlist id))
    netlist;
  let used_fa = ref false and used_ha = ref false in
  let used_c42 = ref false and used_c53 = ref false in
  let used_c63 = ref false and used_c73 = ref false in
  let counter_instance id name in_refs (outputs : int array) =
    let ins =
      List.mapi (fun pin r -> Printf.sprintf ".x%d(%s)" pin r) in_refs
    in
    line "  %s u%d (%s, .s0(n%d), .s1(n%d), .s2(n%d));" name id
      (String.concat ", " ins) outputs.(0) outputs.(1) outputs.(2)
  in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outputs = Netlist.cell_output_nets netlist id in
      let in_refs = Array.to_list (Array.map (net_ref netlist) c.inputs) in
      match c.kind with
      | Dp_tech.Cell_kind.Fa ->
        used_fa := true;
        line "  DP_FA u%d (.a(%s), .b(%s), .c(%s), .s(n%d), .co(n%d));" id
          (List.nth in_refs 0) (List.nth in_refs 1) (List.nth in_refs 2)
          outputs.(0) outputs.(1)
      | Dp_tech.Cell_kind.Ha ->
        used_ha := true;
        line "  DP_HA u%d (.a(%s), .b(%s), .s(n%d), .co(n%d));" id
          (List.nth in_refs 0) (List.nth in_refs 1) outputs.(0) outputs.(1)
      | Dp_tech.Cell_kind.C53 ->
        used_c53 := true;
        counter_instance id "DP_C53" in_refs outputs
      | Dp_tech.Cell_kind.C63 ->
        used_c63 := true;
        counter_instance id "DP_C63" in_refs outputs
      | Dp_tech.Cell_kind.C73 ->
        used_c73 := true;
        counter_instance id "DP_C73" in_refs outputs
      | Dp_tech.Cell_kind.C42 ->
        used_c42 := true;
        line
          "  DP_C42 u%d (.x0(%s), .x1(%s), .x2(%s), .x3(%s), .ci(%s), \
           .s(n%d), .c(n%d), .co(n%d));"
          id (List.nth in_refs 0) (List.nth in_refs 1) (List.nth in_refs 2)
          (List.nth in_refs 3) (List.nth in_refs 4) outputs.(0) outputs.(1)
          outputs.(2)
      | Dp_tech.Cell_kind.And_n _ | Dp_tech.Cell_kind.Or_n _
      | Dp_tech.Cell_kind.Xor_n _ | Dp_tech.Cell_kind.Not
      | Dp_tech.Cell_kind.Buf ->
        line "  %s u%d (n%d, %s);" (gate_primitive c.kind) id outputs.(0)
          (String.concat ", " in_refs))
    netlist;
  List.iter
    (fun (name, nets) ->
      Array.iteri
        (fun bit net -> line "  assign %s[%d] = %s;" name bit (net_ref netlist net))
        nets)
    outs;
  line "endmodule";
  if !used_fa then Buffer.add_string buffer fa_module;
  if !used_ha then Buffer.add_string buffer ha_module;
  if !used_c42 then Buffer.add_string buffer c42_module;
  if !used_c53 then Buffer.add_string buffer c53_module;
  if !used_c63 then Buffer.add_string buffer c63_module;
  if !used_c73 then Buffer.add_string buffer c73_module;
  Buffer.contents buffer
