type t = {
  nets : int;
  cells : int;
  fa_count : int;
  ha_count : int;
  counter_count : int;
  gate_count : int;
  area : float;
  depth : int;
  delay : float;
}

let kind_counts netlist =
  let table = Hashtbl.create 16 in
  Netlist.iter_cells
    (fun _ (c : Netlist.cell) ->
      let prev = Option.value (Hashtbl.find_opt table c.kind) ~default:0 in
      Hashtbl.replace table c.kind (prev + 1))
    netlist;
  Hashtbl.fold (fun kind count acc -> (kind, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) ->
         String.compare (Dp_tech.Cell_kind.name a) (Dp_tech.Cell_kind.name b))

let count_kind netlist pred =
  Netlist.fold_cells
    (fun acc (c : Netlist.cell) -> if pred c.kind then acc + 1 else acc)
    0 netlist

let of_netlist netlist =
  let open Dp_tech.Cell_kind in
  {
    nets = Netlist.net_count netlist;
    cells = Netlist.cell_count netlist;
    fa_count = count_kind netlist (function Fa -> true | _ -> false);
    ha_count = count_kind netlist (function Ha -> true | _ -> false);
    counter_count = count_kind netlist is_counter;
    gate_count =
      count_kind netlist (function
        | And_n _ | Or_n _ | Xor_n _ | Not | Buf -> true
        | Fa | Ha | C42 | C53 | C63 | C73 -> false);
    area = Netlist.area netlist;
    depth = Topo.depth netlist;
    delay = Netlist.max_output_arrival netlist;
  }

let pp ppf s =
  Fmt.pf ppf
    "delay %.2f ns, area %.0f units, %d FA, %d HA%a, %d gates, depth %d, %d nets"
    s.delay s.area s.fa_count s.ha_count
    (fun ppf c -> if c > 0 then Fmt.pf ppf ", %d counters" c)
    s.counter_count s.gate_count s.depth s.nets

let net_name netlist net =
  match Netlist.driver netlist net with
  | Netlist.From_input { var; bit } -> Printf.sprintf "%s[%d]" var bit
  | Netlist.From_const b -> if b then "1" else "0"
  | Netlist.From_cell _ -> Printf.sprintf "n%d" net

let pp_cells ppf netlist =
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets netlist id in
      let pp_net ppf n = Fmt.string ppf (net_name netlist n) in
      let pp_out ppf n =
        Fmt.pf ppf "%a@%.2f" pp_net n (Netlist.arrival netlist n)
      in
      Fmt.pf ppf "%a(%a) -> %a@."
        Dp_tech.Cell_kind.pp c.kind
        Fmt.(array ~sep:(any ", ") pp_net)
        c.inputs
        Fmt.(array ~sep:(any ", ") pp_out)
        outs)
    netlist
