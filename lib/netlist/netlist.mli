(** Gate-level netlist with build-time annotation.

    A netlist is a growable set of nets (single-bit signals) driven by
    primary inputs, constants, or cell output ports.  FA/HA cells have two
    output ports (sum = port 0, carry = port 1), the parallel counters
    three (see {!Dp_tech.Cell_kind}); all other cells have one.

    The builder computes each new net's {e arrival time} (from the
    technology's pin-to-pin delays, Sec. 3.1 of the paper) and {e
    1-probability} (zero-delay model, Sec. 4.1) at creation, because the
    allocation algorithms select among nets they have just created.  The
    [Dp_timing.Sta] and [Dp_power.Prob] engines recompute both from scratch
    as an independent cross-check.

    Gate constructors perform light structural simplification: constant
    folding, duplicate-input removal, double-negation elimination, and
    structural hashing of NOT/AND/OR gates.  A full adder with a constant
    input degrades to a half adder (and further to plain gates), which is
    how the pseudo-zero addend of algorithm SC_LP turns into an HA. *)

type net = int

type driver =
  | From_input of { var : string; bit : int }
  | From_const of bool
  | From_cell of { cell : int; port : int }

type cell = { kind : Dp_tech.Cell_kind.t; inputs : net array }
type t

(** Captures the calling thread's ambient {!Dp_gov.Gov} governor (if one
    is installed): every subsequent cell construction polls it, so a
    deadline, cell budget, or memory watermark aborts the build at a
    cell boundary with the netlist still structurally sound. *)
val create : tech:Dp_tech.Tech.t -> t

val tech : t -> Dp_tech.Tech.t

(** The governor captured at {!create}, for the analysis passes to poll
    in their own loops. *)
val gov : t -> Dp_gov.Gov.t option

(** Drop the captured governor.  Call when the netlist outlives its
    request — before caching or marshalling it — so a finished artifact
    cannot resurrect a stale (expired or cancelled) governor into a
    later request's analysis passes. *)
val detach_gov : t -> unit
val net_count : t -> int
val cell_count : t -> int
val driver : t -> net -> driver

(** Arrival time annotated at construction. *)
val arrival : t -> net -> float

(** 1-probability annotated at construction. *)
val prob : t -> net -> float

(** [prob t n -. 0.5] — the paper's q-value. *)
val q : t -> net -> float

val cell : t -> int -> cell

(** Output nets of a cell, indexed by port. *)
val cell_output_nets : t -> int -> net array

(** Declare a primary input bus; returns its nets, LSB first.  Arrivals
    default to 0.0 and probabilities to 0.5.
    @raise Invalid_argument on duplicate names or length mismatches. *)
val add_input :
  ?arrival:float array -> ?prob:float array -> t -> string -> width:int -> net array

(** The constant net (cached; at most one of each polarity exists). *)
val const : t -> bool -> net

val is_const : t -> net -> bool -> bool
val const_value : t -> net -> bool option
val not_ : t -> net -> net
val buf : t -> net -> net
val and_n : t -> net list -> net
val or_n : t -> net list -> net
val xor2 : t -> net -> net -> net
val xor_n : t -> net list -> net

(** [ha t a b] is [(sum, carry)]. *)
val ha : t -> net -> net -> net * net

(** [fa t a b c] is [(sum, carry)]. *)
val fa : t -> net -> net -> net -> net * net

(** Generalized parallel counters, [(s0, s1, s2)] with [s0] at the input
    weight, [s1] one weight up and [s2] two weights up — the binary digits
    of the input population count.  A constant input degrades the counter
    into its canonical FA/HA body (certified in [Dp_counters]) with the
    constant folded away.
    @raise Invalid_argument unless given exactly 5/6/7 nets. *)
val c53 : t -> net array -> net * net * net

val c63 : t -> net array -> net * net * net
val c73 : t -> net array -> net * net * net

(** 4:2 compressor: inputs [[| x1; x2; x3; x4; cin |]], result
    [(sum, carry, cout)] with [sum] at the input weight and both [carry]
    and [cout] one weight up.  [cout] depends only on [x1..x3], never on
    [cin], so 4:2 rows chain without a ripple.
    @raise Invalid_argument unless given exactly 5 nets. *)
val c42 : t -> net array -> net * net * net

(** @raise Invalid_argument on duplicate names. *)
val set_output : t -> string -> net array -> unit

(** Declared inputs/outputs in declaration order. *)
val inputs : t -> (string * net array) list

val outputs : t -> (string * net array) list

(** @raise Invalid_argument if absent. *)
val find_output : t -> string -> net array

val iter_cells : (int -> cell -> unit) -> t -> unit
val fold_cells : ('acc -> cell -> 'acc) -> 'acc -> t -> 'acc

(** Raw, invariant-{e breaking} setters.  They bypass every builder
    invariant (driver/output consistency, topological net ordering,
    annotation correctness) and leave the structural-hashing caches stale.
    Their one intended client is [Dp_verify.Inject], which corrupts
    known-good netlists on purpose to prove the checkers detect the
    corruption.  Never use them in synthesis code. *)
module Mutate : sig
  val set_driver : t -> net -> driver -> unit
  val set_prob : t -> net -> float -> unit
  val set_cell : t -> int -> cell -> unit

  (** Rewire one input pin of a cell. *)
  val set_cell_input : t -> cell:int -> pin:int -> net -> unit
end

(** Total cell area under the netlist's technology. *)
val area : t -> float

(** Latest arrival over all declared output nets. *)
val max_output_arrival : t -> float
