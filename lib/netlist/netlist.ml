type net = int

type driver =
  | From_input of { var : string; bit : int }
  | From_const of bool
  | From_cell of { cell : int; port : int }

type cell = { kind : Dp_tech.Cell_kind.t; inputs : net array }

type t = {
  tech : Dp_tech.Tech.t;
  drivers : driver Vec.t;
  arrival : float Vec.t;
  prob : float Vec.t;
  cells : cell Vec.t;
  cell_outputs : net array Vec.t;
  mutable inputs : (string * net array) list;  (* reverse declaration order *)
  mutable outputs : (string * net array) list;  (* reverse declaration order *)
  (* name -> bus indices over [inputs]/[outputs]; the lists keep the
     declaration order, the tables make lookup and duplicate detection O(1) *)
  input_index : (string, net array) Hashtbl.t;
  output_index : (string, net array) Hashtbl.t;
  mutable const_false : net option;
  mutable const_true : net option;
  not_cache : (net, net) Hashtbl.t;
  and_cache : (net list, net) Hashtbl.t;
  or_cache : (net list, net) Hashtbl.t;
  (* The ambient governor at creation time, if any.  [add_cell] is the
     one chokepoint every construction path funnels through (lowering,
     reduction, baselines, adders), so polling it here bounds every
     builder without per-algorithm plumbing.  Mutable only so the serve
     boundary can detach it: a netlist that outlives its request (cache
     entry, marshalled copy) must not resurrect a stale governor. *)
  mutable gov : Dp_gov.Gov.t option;
}

let create ~tech =
  {
    tech;
    gov = Dp_gov.Gov.ambient ();
    drivers = Vec.create ~dummy:(From_const false);
    arrival = Vec.create ~dummy:0.0;
    prob = Vec.create ~dummy:0.0;
    cells = Vec.create ~dummy:{ kind = Dp_tech.Cell_kind.Buf; inputs = [||] };
    cell_outputs = Vec.create ~dummy:[||];
    inputs = [];
    outputs = [];
    input_index = Hashtbl.create 16;
    output_index = Hashtbl.create 16;
    const_false = None;
    const_true = None;
    not_cache = Hashtbl.create 64;
    and_cache = Hashtbl.create 64;
    or_cache = Hashtbl.create 64;
  }

let tech t = t.tech
let gov t = t.gov
let detach_gov t = t.gov <- None
let net_count t = Vec.length t.drivers
let cell_count t = Vec.length t.cells
let driver t n = Vec.get t.drivers n
let arrival t n = Vec.get t.arrival n
let prob t n = Vec.get t.prob n
let q t n = prob t n -. 0.5
let cell t i = Vec.get t.cells i
let cell_output_nets t i = Vec.get t.cell_outputs i

let new_net t ~driver ~arrival ~prob =
  (* The incremental probability formulas (paper Sec. 4.2) can round a
     few ulps outside [0,1] at extreme input probabilities; clamp here so
     every stored annotation honours the invariant the lint enforces. *)
  let prob = Float.max 0.0 (Float.min 1.0 prob) in
  let n = Vec.push t.drivers driver in
  let n' = Vec.push t.arrival arrival in
  let n'' = Vec.push t.prob prob in
  assert (n = n' && n = n'');
  n

let add_input ?arrival ?prob t name ~width =
  if Hashtbl.mem t.input_index name then
    invalid_arg (Printf.sprintf "Netlist.add_input: duplicate input %s" name);
  let arr = match arrival with None -> Array.make width 0.0 | Some a -> a in
  let pr = match prob with None -> Array.make width 0.5 | Some p -> p in
  if Array.length arr <> width || Array.length pr <> width then
    invalid_arg "Netlist.add_input: attribute length mismatch";
  let nets =
    Array.init width (fun bit ->
        new_net t
          ~driver:(From_input { var = name; bit })
          ~arrival:arr.(bit) ~prob:pr.(bit))
  in
  t.inputs <- (name, nets) :: t.inputs;
  Hashtbl.replace t.input_index name nets;
  nets

let const t b =
  let cached = if b then t.const_true else t.const_false in
  match cached with
  | Some n -> n
  | None ->
    let n =
      new_net t ~driver:(From_const b) ~arrival:0.0
        ~prob:(if b then 1.0 else 0.0)
    in
    if b then t.const_true <- Some n else t.const_false <- Some n;
    n

let is_const t n b =
  match driver t n with From_const v -> Bool.equal v b | From_input _ | From_cell _ -> false

let const_value t n =
  match driver t n with From_const v -> Some v | From_input _ | From_cell _ -> None

(* Instantiate a cell, creating one net per output with arrival/probability
   computed incrementally from the technology and the formulas of the
   paper's Secs. 3.1 and 4.2. *)
let add_cell t kind inputs ~out_probs =
  (* Checkpoint before publishing anything: an abort here leaves the
     netlist exactly as it was after the previous complete cell. *)
  (match t.gov with
  | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Netlist ~cells:(Vec.length t.cells) g
  | None -> ());
  let arity = Dp_tech.Cell_kind.arity kind in
  if Array.length inputs <> arity then
    invalid_arg "Netlist.add_cell: arity mismatch";
  let in_arrival =
    Array.fold_left (fun acc n -> Float.max acc (arrival t n)) neg_infinity inputs
  in
  let cell_id = Vec.push t.cells { kind; inputs } in
  let outs =
    Array.init (Dp_tech.Cell_kind.output_count kind) (fun port ->
        new_net t
          ~driver:(From_cell { cell = cell_id; port })
          ~arrival:(in_arrival +. Dp_tech.Tech.delay t.tech kind ~port)
          ~prob:out_probs.(port))
  in
  let id' = Vec.push t.cell_outputs outs in
  assert (id' = cell_id);
  outs

let not_ t a =
  match const_value t a with
  | Some b -> const t (not b)
  | None -> (
    match Hashtbl.find_opt t.not_cache a with
    | Some n -> n
    | None ->
      let n =
        match driver t a with
        | From_cell { cell; port } when
            Dp_tech.Cell_kind.equal (Vec.get t.cells cell).kind
              Dp_tech.Cell_kind.Not && port = 0 ->
          (* double negation: reuse the NOT's input *)
          (Vec.get t.cells cell).inputs.(0)
        | From_cell _ | From_input _ | From_const _ ->
          (add_cell t Dp_tech.Cell_kind.Not [| a |]
             ~out_probs:[| 1.0 -. prob t a |]).(0)
      in
      Hashtbl.add t.not_cache a n;
      n)

let buf t a =
  (add_cell t Dp_tech.Cell_kind.Buf [| a |] ~out_probs:[| prob t a |]).(0)

(* Shared n-ary gate construction: constant folding, duplicate removal,
   structural hashing on the sorted input list. *)
let nary t ~cache ~kind_of ~unit_const ~absorbing_const ~prob_of nets =
  let nets = List.filter (fun n -> not (is_const t n unit_const)) nets in
  if List.exists (fun n -> is_const t n absorbing_const) nets then
    const t absorbing_const
  else
    let nets = List.sort_uniq Int.compare nets in
    match nets with
    | [] -> const t unit_const
    | [ n ] -> n
    | _ -> (
      match Hashtbl.find_opt cache nets with
      | Some n -> n
      | None ->
        let arity = List.length nets in
        let p = prob_of (List.map (prob t) nets) in
        let outs =
          add_cell t (kind_of arity) (Array.of_list nets) ~out_probs:[| p |]
        in
        Hashtbl.add cache nets outs.(0);
        outs.(0))

let and_n t nets =
  nary t ~cache:t.and_cache
    ~kind_of:(fun n -> Dp_tech.Cell_kind.And_n n)
    ~unit_const:true ~absorbing_const:false
    ~prob_of:(List.fold_left ( *. ) 1.0)
    nets

let or_n t nets =
  nary t ~cache:t.or_cache
    ~kind_of:(fun n -> Dp_tech.Cell_kind.Or_n n)
    ~unit_const:false ~absorbing_const:true
    ~prob_of:(fun ps -> 1.0 -. List.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 ps)
    nets

let xor2_prob pa pb = pa +. pb -. (2.0 *. pa *. pb)

let rec xor2 t a b =
  match const_value t a, const_value t b with
  | Some va, Some vb -> const t (va <> vb)
  | Some false, None -> b
  | Some true, None -> not_ t b
  | None, Some false -> a
  | None, Some true -> not_ t a
  | None, None ->
    if a = b then const t false
    else
      let a, b = if a <= b then a, b else b, a in
      (add_cell t (Dp_tech.Cell_kind.Xor_n 2) [| a; b |]
         ~out_probs:[| xor2_prob (prob t a) (prob t b) |]).(0)

and xor_n t nets =
  match nets with
  | [] -> const t false
  | [ n ] -> n
  | first :: rest -> List.fold_left (xor2 t) first rest

(* Half adder with constant elimination: HA(x,0) = (x, 0); HA(x,1) = (~x, x). *)
let rec ha t a b =
  match const_value t a, const_value t b with
  | Some _, None -> ha t b a
  | None, Some false -> a, const t false
  | None, Some true -> not_ t a, a
  | Some va, Some vb -> const t (va <> vb), const t (va && vb)
  | None, None ->
    let qa = q t a and qb = q t b in
    let p_sum = 0.5 -. (2.0 *. qa *. qb) in
    let p_carry = 0.25 +. (qa *. qb) +. (0.5 *. (qa +. qb)) in
    let outs =
      add_cell t Dp_tech.Cell_kind.Ha [| a; b |]
        ~out_probs:[| p_sum; p_carry |]
    in
    outs.(0), outs.(1)

(* Full adder.  Constant inputs degrade it: FA(x,y,0) = HA(x,y) and
   FA(x,y,1) = (~(x^y), x|y). *)
let fa t a b c =
  let consts, vars =
    List.partition (fun n -> const_value t n <> None) [ a; b; c ]
  in
  let const_sum =
    List.fold_left
      (fun acc n -> if is_const t n true then acc + 1 else acc)
      0 consts
  in
  match vars, const_sum with
  | [], k -> const t (k land 1 = 1), const t (k >= 2)
  | [ x ], 0 -> x, const t false
  | [ x ], 1 -> not_ t x, x
  | [ x ], _ -> x, const t true
  | [ x; y ], 0 -> ha t x y
  | [ x; y ], _ ->
    (* sum = ~(x^y), carry = x|y *)
    not_ t (xor2 t x y), or_n t [ x; y ]
  | x :: y :: z :: _, _ ->
    ignore (x, y, z);
    let qx = q t a and qy = q t b and qz = q t c in
    (* Paper Sec. 4.2: q(s) = 4 qx qy qz;
       q(c) = 0.5 (qx + qy + qz) - 2 qx qy qz. *)
    let p_sum = 0.5 +. (4.0 *. qx *. qy *. qz) in
    let p_carry = 0.5 +. (0.5 *. (qx +. qy +. qz)) -. (2.0 *. qx *. qy *. qz) in
    let outs =
      add_cell t Dp_tech.Cell_kind.Fa [| a; b; c |]
        ~out_probs:[| p_sum; p_carry |]
    in
    outs.(0), outs.(1)

let set_output t name nets =
  if Hashtbl.mem t.output_index name then
    invalid_arg (Printf.sprintf "Netlist.set_output: duplicate output %s" name);
  let nets = Array.copy nets in
  t.outputs <- (name, nets) :: t.outputs;
  Hashtbl.replace t.output_index name nets

let inputs t = List.rev t.inputs
let outputs t = List.rev t.outputs

let find_output t name =
  match Hashtbl.find_opt t.output_index name with
  | Some nets -> nets
  | None -> invalid_arg (Printf.sprintf "Netlist.find_output: no output %s" name)

let iter_cells f t = Vec.iteri f t.cells
let fold_cells f acc t = Vec.fold f acc t.cells

let area t =
  fold_cells (fun acc c -> acc +. Dp_tech.Tech.area t.tech c.kind) 0.0 t

module Mutate = struct
  let set_driver t n d = Vec.set t.drivers n d
  let set_prob t n p = Vec.set t.prob n p
  let set_cell t i c = Vec.set t.cells i c

  let set_cell_input t ~cell ~pin net =
    let c = Vec.get t.cells cell in
    let inputs = Array.copy c.inputs in
    inputs.(pin) <- net;
    Vec.set t.cells cell { c with inputs }
end

let max_output_arrival t =
  List.fold_left
    (fun acc (_, nets) ->
      Array.fold_left (fun acc n -> Float.max acc (arrival t n)) acc nets)
    neg_infinity (outputs t)
