type net = int

type driver =
  | From_input of { var : string; bit : int }
  | From_const of bool
  | From_cell of { cell : int; port : int }

type cell = { kind : Dp_tech.Cell_kind.t; inputs : net array }

type t = {
  tech : Dp_tech.Tech.t;
  drivers : driver Vec.t;
  arrival : float Vec.t;
  prob : float Vec.t;
  cells : cell Vec.t;
  cell_outputs : net array Vec.t;
  mutable inputs : (string * net array) list;  (* reverse declaration order *)
  mutable outputs : (string * net array) list;  (* reverse declaration order *)
  (* name -> bus indices over [inputs]/[outputs]; the lists keep the
     declaration order, the tables make lookup and duplicate detection O(1) *)
  input_index : (string, net array) Hashtbl.t;
  output_index : (string, net array) Hashtbl.t;
  mutable const_false : net option;
  mutable const_true : net option;
  not_cache : (net, net) Hashtbl.t;
  and_cache : (net list, net) Hashtbl.t;
  or_cache : (net list, net) Hashtbl.t;
  (* The ambient governor at creation time, if any.  [add_cell] is the
     one chokepoint every construction path funnels through (lowering,
     reduction, baselines, adders), so polling it here bounds every
     builder without per-algorithm plumbing.  Mutable only so the serve
     boundary can detach it: a netlist that outlives its request (cache
     entry, marshalled copy) must not resurrect a stale governor. *)
  mutable gov : Dp_gov.Gov.t option;
}

let create ~tech =
  {
    tech;
    gov = Dp_gov.Gov.ambient ();
    drivers = Vec.create ~dummy:(From_const false);
    arrival = Vec.create ~dummy:0.0;
    prob = Vec.create ~dummy:0.0;
    cells = Vec.create ~dummy:{ kind = Dp_tech.Cell_kind.Buf; inputs = [||] };
    cell_outputs = Vec.create ~dummy:[||];
    inputs = [];
    outputs = [];
    input_index = Hashtbl.create 16;
    output_index = Hashtbl.create 16;
    const_false = None;
    const_true = None;
    not_cache = Hashtbl.create 64;
    and_cache = Hashtbl.create 64;
    or_cache = Hashtbl.create 64;
  }

let tech t = t.tech
let gov t = t.gov
let detach_gov t = t.gov <- None
let net_count t = Vec.length t.drivers
let cell_count t = Vec.length t.cells
let driver t n = Vec.get t.drivers n
let arrival t n = Vec.get t.arrival n
let prob t n = Vec.get t.prob n
let q t n = prob t n -. 0.5
let cell t i = Vec.get t.cells i
let cell_output_nets t i = Vec.get t.cell_outputs i

let new_net t ~driver ~arrival ~prob =
  (* The incremental probability formulas (paper Sec. 4.2) can round a
     few ulps outside [0,1] at extreme input probabilities; clamp here so
     every stored annotation honours the invariant the lint enforces. *)
  let prob = Float.max 0.0 (Float.min 1.0 prob) in
  let n = Vec.push t.drivers driver in
  let n' = Vec.push t.arrival arrival in
  let n'' = Vec.push t.prob prob in
  assert (n = n' && n = n'');
  n

let add_input ?arrival ?prob t name ~width =
  if Hashtbl.mem t.input_index name then
    invalid_arg (Printf.sprintf "Netlist.add_input: duplicate input %s" name);
  let arr = match arrival with None -> Array.make width 0.0 | Some a -> a in
  let pr = match prob with None -> Array.make width 0.5 | Some p -> p in
  if Array.length arr <> width || Array.length pr <> width then
    invalid_arg "Netlist.add_input: attribute length mismatch";
  let nets =
    Array.init width (fun bit ->
        new_net t
          ~driver:(From_input { var = name; bit })
          ~arrival:arr.(bit) ~prob:pr.(bit))
  in
  t.inputs <- (name, nets) :: t.inputs;
  Hashtbl.replace t.input_index name nets;
  nets

let const t b =
  let cached = if b then t.const_true else t.const_false in
  match cached with
  | Some n -> n
  | None ->
    let n =
      new_net t ~driver:(From_const b) ~arrival:0.0
        ~prob:(if b then 1.0 else 0.0)
    in
    if b then t.const_true <- Some n else t.const_false <- Some n;
    n

let is_const t n b =
  match driver t n with From_const v -> Bool.equal v b | From_input _ | From_cell _ -> false

let const_value t n =
  match driver t n with From_const v -> Some v | From_input _ | From_cell _ -> None

(* Instantiate a cell, creating one net per output with arrival/probability
   computed incrementally from the technology and the formulas of the
   paper's Secs. 3.1 and 4.2. *)
let add_cell t kind inputs ~out_probs =
  (* Checkpoint before publishing anything: an abort here leaves the
     netlist exactly as it was after the previous complete cell. *)
  (match t.gov with
  | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Netlist ~cells:(Vec.length t.cells) g
  | None -> ());
  let arity = Dp_tech.Cell_kind.arity kind in
  if Array.length inputs <> arity then
    invalid_arg "Netlist.add_cell: arity mismatch";
  let cell_id = Vec.push t.cells { kind; inputs } in
  (* Per-port arrival: worst over the pins that actually reach the port.
     For conventional cells every pin reaches every port with the port's
     one delay, so this reduces to max-input-arrival + delay; the
     counters' pin-resolved model makes e.g. a 4:2's carry-out ignore its
     late carry-in pin entirely. *)
  let port_arrival port =
    let worst = ref neg_infinity in
    Array.iteri
      (fun pin n ->
        match Dp_tech.Tech.pin_delay t.tech kind ~pin ~port with
        | Some d -> worst := Float.max !worst (arrival t n +. d)
        | None -> ())
      inputs;
    !worst
  in
  let outs =
    Array.init (Dp_tech.Cell_kind.output_count kind) (fun port ->
        new_net t
          ~driver:(From_cell { cell = cell_id; port })
          ~arrival:(port_arrival port) ~prob:out_probs.(port))
  in
  let id' = Vec.push t.cell_outputs outs in
  assert (id' = cell_id);
  outs

let not_ t a =
  match const_value t a with
  | Some b -> const t (not b)
  | None -> (
    match Hashtbl.find_opt t.not_cache a with
    | Some n -> n
    | None ->
      let n =
        match driver t a with
        | From_cell { cell; port } when
            Dp_tech.Cell_kind.equal (Vec.get t.cells cell).kind
              Dp_tech.Cell_kind.Not && port = 0 ->
          (* double negation: reuse the NOT's input *)
          (Vec.get t.cells cell).inputs.(0)
        | From_cell _ | From_input _ | From_const _ ->
          (add_cell t Dp_tech.Cell_kind.Not [| a |]
             ~out_probs:[| 1.0 -. prob t a |]).(0)
      in
      Hashtbl.add t.not_cache a n;
      n)

let buf t a =
  (add_cell t Dp_tech.Cell_kind.Buf [| a |] ~out_probs:[| prob t a |]).(0)

(* Shared n-ary gate construction: constant folding, duplicate removal,
   structural hashing on the sorted input list. *)
let nary t ~cache ~kind_of ~unit_const ~absorbing_const ~prob_of nets =
  let nets = List.filter (fun n -> not (is_const t n unit_const)) nets in
  if List.exists (fun n -> is_const t n absorbing_const) nets then
    const t absorbing_const
  else
    let nets = List.sort_uniq Int.compare nets in
    match nets with
    | [] -> const t unit_const
    | [ n ] -> n
    | _ -> (
      match Hashtbl.find_opt cache nets with
      | Some n -> n
      | None ->
        let arity = List.length nets in
        let p = prob_of (List.map (prob t) nets) in
        let outs =
          add_cell t (kind_of arity) (Array.of_list nets) ~out_probs:[| p |]
        in
        Hashtbl.add cache nets outs.(0);
        outs.(0))

let and_n t nets =
  nary t ~cache:t.and_cache
    ~kind_of:(fun n -> Dp_tech.Cell_kind.And_n n)
    ~unit_const:true ~absorbing_const:false
    ~prob_of:(List.fold_left ( *. ) 1.0)
    nets

let or_n t nets =
  nary t ~cache:t.or_cache
    ~kind_of:(fun n -> Dp_tech.Cell_kind.Or_n n)
    ~unit_const:false ~absorbing_const:true
    ~prob_of:(fun ps -> 1.0 -. List.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 ps)
    nets

let xor2_prob pa pb = pa +. pb -. (2.0 *. pa *. pb)

let rec xor2 t a b =
  match const_value t a, const_value t b with
  | Some va, Some vb -> const t (va <> vb)
  | Some false, None -> b
  | Some true, None -> not_ t b
  | None, Some false -> a
  | None, Some true -> not_ t a
  | None, None ->
    if a = b then const t false
    else
      let a, b = if a <= b then a, b else b, a in
      (add_cell t (Dp_tech.Cell_kind.Xor_n 2) [| a; b |]
         ~out_probs:[| xor2_prob (prob t a) (prob t b) |]).(0)

and xor_n t nets =
  match nets with
  | [] -> const t false
  | [ n ] -> n
  | first :: rest -> List.fold_left (xor2 t) first rest

(* Half adder with constant elimination: HA(x,0) = (x, 0); HA(x,1) = (~x, x). *)
let rec ha t a b =
  match const_value t a, const_value t b with
  | Some _, None -> ha t b a
  | None, Some false -> a, const t false
  | None, Some true -> not_ t a, a
  | Some va, Some vb -> const t (va <> vb), const t (va && vb)
  | None, None ->
    let qa = q t a and qb = q t b in
    let p_sum = 0.5 -. (2.0 *. qa *. qb) in
    let p_carry = 0.25 +. (qa *. qb) +. (0.5 *. (qa +. qb)) in
    let outs =
      add_cell t Dp_tech.Cell_kind.Ha [| a; b |]
        ~out_probs:[| p_sum; p_carry |]
    in
    outs.(0), outs.(1)

(* Full adder.  Constant inputs degrade it: FA(x,y,0) = HA(x,y) and
   FA(x,y,1) = (~(x^y), x|y). *)
let fa t a b c =
  let consts, vars =
    List.partition (fun n -> const_value t n <> None) [ a; b; c ]
  in
  let const_sum =
    List.fold_left
      (fun acc n -> if is_const t n true then acc + 1 else acc)
      0 consts
  in
  match vars, const_sum with
  | [], k -> const t (k land 1 = 1), const t (k >= 2)
  | [ x ], 0 -> x, const t false
  | [ x ], 1 -> not_ t x, x
  | [ x ], _ -> x, const t true
  | [ x; y ], 0 -> ha t x y
  | [ x; y ], _ ->
    (* sum = ~(x^y), carry = x|y *)
    not_ t (xor2 t x y), or_n t [ x; y ]
  | x :: y :: z :: _, _ ->
    ignore (x, y, z);
    let qx = q t a and qy = q t b and qz = q t c in
    (* Paper Sec. 4.2: q(s) = 4 qx qy qz;
       q(c) = 0.5 (qx + qy + qz) - 2 qx qy qz. *)
    let p_sum = 0.5 +. (4.0 *. qx *. qy *. qz) in
    let p_carry = 0.5 +. (0.5 *. (qx +. qy +. qz)) -. (2.0 *. qx *. qy *. qz) in
    let outs =
      add_cell t Dp_tech.Cell_kind.Fa [| a; b; c |]
        ~out_probs:[| p_sum; p_carry |]
    in
    outs.(0), outs.(1)

(* ------------------------------------------------------------------ *)
(* Generalized parallel counters (monolithic cells).                   *)

(* 1-probabilities of the binary digits of popcount over independent
   inputs, by convolving the Bernoulli count distribution.  [Dp_power.Prob]
   recomputes the same quantities by minterm enumeration as an independent
   cross-check; both carry the paper's independence assumption. *)
let popcount_bit_probs t nets =
  let m = Array.length nets in
  let dist = Array.make (m + 1) 0.0 in
  dist.(0) <- 1.0;
  Array.iteri
    (fun i n ->
      let p = prob t n in
      for c = i + 1 downto 1 do
        dist.(c) <- (dist.(c) *. (1.0 -. p)) +. (dist.(c - 1) *. p)
      done;
      dist.(0) <- dist.(0) *. (1.0 -. p))
    nets;
  Array.init 3 (fun b ->
      let acc = ref 0.0 in
      for c = 0 to m do
        if c land (1 lsl b) <> 0 then acc := !acc +. dist.(c)
      done;
      !acc)

let maj3_prob pa pb pc =
  (pa *. pb) +. (pa *. pc) +. (pb *. pc) -. (2.0 *. pa *. pb *. pc)

let xor3_prob pa pb pc = xor2_prob (xor2_prob pa pb) pc

(* Canonical expanded bodies — the same recipes [Dp_counters] certifies.
   Used when a constant input lets the counter degrade: [fa]/[ha] fold
   the constants away, so e.g. C53(a,b,c,d,0) costs one FA + one FA +
   one HA with the zero absorbed. *)
let c53_body t p0 p1 p2 p3 p4 =
  let s, c1 = fa t p0 p1 p2 in
  let s0, c2 = fa t s p3 p4 in
  let s1, s2 = ha t c1 c2 in
  (s0, s1, s2)

let c63_body t p0 p1 p2 p3 p4 p5 =
  let s, c1 = fa t p0 p1 p2 in
  let u, c2 = fa t p3 p4 p5 in
  let s0, c3 = ha t s u in
  let s1, s2 = fa t c1 c2 c3 in
  (s0, s1, s2)

let c73_body t p0 p1 p2 p3 p4 p5 p6 =
  let s, c1 = fa t p0 p1 p2 in
  let u, c2 = fa t p3 p4 p5 in
  let s0, c3 = fa t s u p6 in
  let s1, s2 = fa t c1 c2 c3 in
  (s0, s1, s2)

let c42_body t x1 x2 x3 x4 cin =
  let u, cout = fa t x1 x2 x3 in
  let sum, carry = fa t u x4 cin in
  (sum, carry, cout)

let has_const_input t nets =
  Array.exists (fun n -> const_value t n <> None) nets

let pure_counter t kind body nets =
  if Array.length nets <> Dp_tech.Cell_kind.arity kind then
    invalid_arg
      (Printf.sprintf "Netlist.%s: arity mismatch"
         (String.lowercase_ascii (Dp_tech.Cell_kind.name kind)));
  if has_const_input t nets then body ()
  else
    let outs = add_cell t kind nets ~out_probs:(popcount_bit_probs t nets) in
    (outs.(0), outs.(1), outs.(2))

let c53 t nets =
  pure_counter t Dp_tech.Cell_kind.C53
    (fun () -> c53_body t nets.(0) nets.(1) nets.(2) nets.(3) nets.(4))
    nets

let c63 t nets =
  pure_counter t Dp_tech.Cell_kind.C63
    (fun () ->
      c63_body t nets.(0) nets.(1) nets.(2) nets.(3) nets.(4) nets.(5))
    nets

let c73 t nets =
  pure_counter t Dp_tech.Cell_kind.C73
    (fun () ->
      c73_body t nets.(0) nets.(1) nets.(2) nets.(3) nets.(4) nets.(5) nets.(6))
    nets

let c42 t nets =
  if Array.length nets <> 5 then invalid_arg "Netlist.c42: arity mismatch";
  let x1 = nets.(0) and x2 = nets.(1) and x3 = nets.(2) in
  let x4 = nets.(3) and cin = nets.(4) in
  if has_const_input t nets then c42_body t x1 x2 x3 x4 cin
  else
    (* sum = (x1^x2^x3) ^ x4 ^ cin; carry = maj(x1^x2^x3, x4, cin);
       cout = maj(x1, x2, x3) — the cin-independent chain output. *)
    let p1 = prob t x1 and p2 = prob t x2 and p3 = prob t x3 in
    let p4 = prob t x4 and pc = prob t cin in
    let pu = xor3_prob p1 p2 p3 in
    let out_probs =
      [| xor3_prob pu p4 pc; maj3_prob pu p4 pc; maj3_prob p1 p2 p3 |]
    in
    let outs = add_cell t Dp_tech.Cell_kind.C42 nets ~out_probs in
    (outs.(0), outs.(1), outs.(2))

let set_output t name nets =
  if Hashtbl.mem t.output_index name then
    invalid_arg (Printf.sprintf "Netlist.set_output: duplicate output %s" name);
  let nets = Array.copy nets in
  t.outputs <- (name, nets) :: t.outputs;
  Hashtbl.replace t.output_index name nets

let inputs t = List.rev t.inputs
let outputs t = List.rev t.outputs

let find_output t name =
  match Hashtbl.find_opt t.output_index name with
  | Some nets -> nets
  | None -> invalid_arg (Printf.sprintf "Netlist.find_output: no output %s" name)

let iter_cells f t = Vec.iteri f t.cells
let fold_cells f acc t = Vec.fold f acc t.cells

let area t =
  fold_cells (fun acc c -> acc +. Dp_tech.Tech.area t.tech c.kind) 0.0 t

module Mutate = struct
  let set_driver t n d = Vec.set t.drivers n d
  let set_prob t n p = Vec.set t.prob n p
  let set_cell t i c = Vec.set t.cells i c

  let set_cell_input t ~cell ~pin net =
    let c = Vec.get t.cells cell in
    let inputs = Array.copy c.inputs in
    inputs.(pin) <- net;
    Vec.set t.cells cell { c with inputs }
end

let max_output_arrival t =
  List.fold_left
    (fun acc (_, nets) ->
      Array.fold_left (fun acc n -> Float.max acc (arrival t n)) acc nets)
    neg_infinity (outputs t)
